// Command experiments regenerates the reproduction's evaluation: every
// table of EXPERIMENTS.md's experiment index (E1-E13), printed in paper
// style.
//
// Usage:
//
//	experiments                # run everything at full scale
//	experiments -run E2        # one experiment
//	experiments -quick         # reduced scale (the test-suite settings)
//	experiments -seed 7        # change the world seed
//	experiments -seeds 1,2,3   # repeat the suite under several seeds
//	experiments -parallel      # fan independent cells across all CPUs
//	experiments -workers 4     # cap the parallel worker pool
//	experiments -shards 4      # partition each world across 4 lock-step shards
//	experiments -cps PCE-CP,ALT  # restrict to some control planes
//	experiments -markdown      # emit GitHub-flavoured tables (EXPERIMENTS.md)
//	experiments -cpuprofile cpu.out   # profile a real run (go tool pprof)
//	experiments -memprofile mem.out   # heap profile after the run
//
// -parallel distributes each experiment's independent cells (one
// simulated world each) across GOMAXPROCS goroutines and merges results
// in canonical order, so its output is byte-identical to the serial run
// for the same seeds.
//
// -shards instead parallelizes *inside* each cell: one logical world is
// partitioned into N per-shard event queues advancing in conservative
// lock-step epochs. Output is byte-identical for any shard count; the
// flag only changes how the simulation is scheduled across cores, which
// is what makes the E12-scale worlds tractable.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"github.com/pcelisp/pcelisp/internal/experiments"
	"github.com/pcelisp/pcelisp/internal/runner"
)

func main() {
	os.Exit(run())
}

func run() int {
	run := flag.String("run", "", "comma-separated experiment IDs (default: all)")
	seed := flag.Int64("seed", 1, "world seed")
	seeds := flag.String("seeds", "", "comma-separated world seeds (overrides -seed)")
	quick := flag.Bool("quick", false, "reduced scale")
	parallel := flag.Bool("parallel", false, "fan each experiment's cells across all CPUs")
	workers := flag.Int("workers", 0, "worker-pool size for -parallel (0 = GOMAXPROCS)")
	cps := flag.String("cps", "", "comma-separated control planes to keep (default: all; see -list-cps)")
	listCPs := flag.Bool("list-cps", false, "list control planes and exit")
	shards := flag.Int("shards", 1, "partition each world across N lock-step shards (output is byte-identical for any N)")
	markdown := flag.Bool("markdown", false, "emit markdown tables")
	list := flag.Bool("list", false, "list experiments and exit")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile taken after the run to this file")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
		}()
	}

	all := experiments.All()
	if *list {
		for _, e := range all {
			fmt.Printf("%-4s %-45s %s\n", e.ID, e.Title, e.Claim)
		}
		return 0
	}
	if *listCPs {
		for _, cp := range experiments.AllCPs {
			fmt.Println(cp)
		}
		return 0
	}

	var selected []experiments.Experiment
	if *run == "" {
		selected = all
	} else {
		for _, id := range strings.Split(*run, ",") {
			e, ok := experiments.ByID(strings.TrimSpace(strings.ToUpper(id)))
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	keep := parseCPs(*cps)
	seedList := parseSeeds(*seeds, *seed)
	experiments.SetWorldShards(*shards)
	poolSize := runner.Serial
	if *parallel || *workers > 1 {
		poolSize = *workers // 0 = runner.Auto = GOMAXPROCS
	}

	for _, s := range seedList {
		if len(seedList) > 1 {
			fmt.Printf("==== seed %d ====\n\n", s)
		}
		for _, e := range selected {
			fmt.Printf("== %s: %s ==\n   %s\n\n", e.ID, e.Title, e.Claim)
			for _, tbl := range e.RunCPs(s, *quick, poolSize, keep) {
				if *markdown {
					fmt.Println(tbl.Markdown())
				} else {
					fmt.Println(tbl.String())
				}
			}
		}
	}
	return 0
}

// parseCPs resolves a comma-separated control-plane filter against the
// canonical names (case-insensitive).
func parseCPs(s string) []experiments.CP {
	if s == "" {
		return nil
	}
	var keep []experiments.CP
	for _, name := range strings.Split(s, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		found := false
		for _, cp := range experiments.AllCPs {
			if strings.EqualFold(string(cp), name) {
				keep = append(keep, cp)
				found = true
				break
			}
		}
		if !found {
			fmt.Fprintf(os.Stderr, "unknown control plane %q (use -list-cps)\n", name)
			os.Exit(2)
		}
	}
	return keep
}

// parseSeeds returns the -seeds list, or the single -seed fallback.
func parseSeeds(s string, fallback int64) []int64 {
	if s == "" {
		return []int64{fallback}
	}
	var seeds []int64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseInt(part, 10, 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad seed %q: %v\n", part, err)
			os.Exit(2)
		}
		seeds = append(seeds, v)
	}
	if len(seeds) == 0 {
		return []int64{fallback}
	}
	return seeds
}
