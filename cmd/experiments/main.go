// Command experiments regenerates the reproduction's evaluation: every
// table of DESIGN.md's experiment index (E1-E8), printed in paper style.
//
// Usage:
//
//	experiments            # run everything at full scale
//	experiments -run E2    # one experiment
//	experiments -quick     # reduced scale (the test-suite settings)
//	experiments -seed 7    # change the world seed
//	experiments -markdown  # emit GitHub-flavoured tables (EXPERIMENTS.md)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/pcelisp/pcelisp/internal/experiments"
)

func main() {
	run := flag.String("run", "", "comma-separated experiment IDs (default: all)")
	seed := flag.Int64("seed", 1, "world seed")
	quick := flag.Bool("quick", false, "reduced scale")
	markdown := flag.Bool("markdown", false, "emit markdown tables")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	all := experiments.All()
	if *list {
		for _, e := range all {
			fmt.Printf("%-4s %-45s %s\n", e.ID, e.Title, e.Claim)
		}
		return
	}

	var selected []experiments.Experiment
	if *run == "" {
		selected = all
	} else {
		for _, id := range strings.Split(*run, ",") {
			e, ok := experiments.ByID(strings.TrimSpace(strings.ToUpper(id)))
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	for _, e := range selected {
		fmt.Printf("== %s: %s ==\n   %s\n\n", e.ID, e.Title, e.Claim)
		for _, tbl := range e.Run(*seed, *quick) {
			if *markdown {
				fmt.Println(tbl.Markdown())
			} else {
				fmt.Println(tbl.String())
			}
		}
	}
}
