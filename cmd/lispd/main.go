// Lispd runs the PCE-LISP protocol core as a real UDP daemon: an xTR
// (encap/decap data plane), a PCE (PCED+PCES control plane) or both,
// with a split-horizon DNS front end, from a declarative JSON config.
// The protocol state machines are the exact code the deterministic
// simulator runs; only the runtime underneath differs.
//
// Usage:
//
//	lispd -config site-a.json
//
// SIGHUP reloads the config file: DNS records, views, forwarders and
// peers swap atomically; structural changes (listen, roles, prefixes)
// are rejected and the old config stays in force.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"github.com/pcelisp/pcelisp/internal/lispd"
)

func main() {
	configPath := flag.String("config", "", "path to the daemon config (JSON)")
	flag.Parse()
	if *configPath == "" {
		fmt.Fprintln(os.Stderr, "lispd: -config is required")
		os.Exit(2)
	}

	cfg, err := lispd.Load(*configPath)
	if err != nil {
		log.Fatalf("lispd: %v", err)
	}
	d, err := lispd.New(cfg)
	if err != nil {
		log.Fatalf("lispd: %v", err)
	}
	d.Start()
	log.Printf("lispd: %s listening on %v", cfg.Name, d.RealAddr())
	if addr := d.AdminAddr(); addr != "" {
		log.Printf("lispd: admin endpoint on http://%s", addr)
	}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGHUP, syscall.SIGINT, syscall.SIGTERM)
	for sig := range sigs {
		switch sig {
		case syscall.SIGHUP:
			next, err := lispd.Load(*configPath)
			if err != nil {
				log.Printf("lispd: reload rejected: %v", err)
				continue
			}
			if err := d.Reload(next); err != nil {
				log.Printf("lispd: reload rejected: %v", err)
				continue
			}
			log.Printf("lispd: config reloaded")
		default:
			log.Printf("lispd: %v, shutting down", sig)
			d.Close()
			return
		}
	}
}
