// Command lispsim runs a single configurable scenario on the simulated
// internet and reports flow and control-plane statistics — the quick way
// to poke at the system without the full experiment harness.
//
// Usage:
//
//	lispsim -cp PCE-CP -domains 4 -flows 20 -policy queue -trace
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/pcelisp/pcelisp/internal/experiments"
	"github.com/pcelisp/pcelisp/internal/lisp"
	"github.com/pcelisp/pcelisp/internal/metrics"
	"github.com/pcelisp/pcelisp/internal/simnet"
)

func main() {
	cpName := flag.String("cp", "PCE-CP", "control plane: ideal|ALT|CONS|MS/MR|NERD|PCE-CP")
	domains := flag.Int("domains", 4, "number of LISP domains")
	flows := flag.Int("flows", 12, "number of flows to run")
	seed := flag.Int64("seed", 1, "world seed")
	policy := flag.String("policy", "drop", "ITR miss policy: drop|queue")
	trace := flag.Bool("trace", false, "print per-packet trace events")
	flag.Parse()

	miss := lisp.MissDrop
	if *policy == "queue" {
		miss = lisp.MissQueue
	}
	w := experiments.BuildWorld(experiments.WorldConfig{
		CP:         experiments.CP(*cpName),
		Domains:    *domains,
		Seed:       *seed,
		MissPolicy: miss,
	})
	if *trace {
		w.Sim.Trace = func(ev simnet.TraceEvent) {
			if ev.Kind == simnet.TraceDrop {
				fmt.Printf("%12v  %-8s %-12s %s\n", ev.At, ev.Kind, ev.Node, ev.Reason)
			}
		}
	}
	w.Settle()

	setup := metrics.NewSummary("setup")
	tdns := metrics.NewSummary("tdns")
	ok := 0
	for i := 0; i < *flows; i++ {
		i := i
		srcD := i % *domains
		dstD := (i + 1 + i/(*domains)) % *domains
		if dstD == srcD {
			dstD = (dstD + 1) % *domains
		}
		w.Sim.ScheduleFunc(time.Duration(i)*2*time.Second, func() {
			w.StartFlow(srcD, 0, dstD, 0, func(res experiments.FlowResult) {
				if res.OK {
					ok++
					setup.AddDuration(res.Setup)
					tdns.AddDuration(res.TDNS)
				}
			})
		})
	}
	w.Sim.RunFor(time.Duration(*flows)*2*time.Second + 90*time.Second)

	tbl := metrics.NewTable(
		fmt.Sprintf("lispsim: %s, %d domains, %d flows (seed %d)", *cpName, *domains, *flows, *seed),
		"metric", "value")
	tbl.AddRow("flows completed", fmt.Sprintf("%d/%d", ok, *flows))
	tbl.AddRow("mean TDNS", metrics.FormatMs(tdns.Mean()))
	tbl.AddRow("mean setup", metrics.FormatMs(setup.Mean()))
	tbl.AddRow("p95 setup", metrics.FormatMs(setup.P95()))
	tbl.AddRow("ITR drops", w.ITRDrops())
	tbl.AddRow("ITR state entries", w.ITRStateEntries())
	msgs, bytes := w.ControlTotals()
	tbl.AddRow("control messages", msgs)
	tbl.AddRow("control KB", float64(bytes)/1024)
	fmt.Println(tbl.String())

	if ok == 0 {
		os.Exit(1)
	}
}
