// Command benchjson converts `go test -bench` output into a stable JSON
// document, so benchmark baselines can be committed (BENCH_PR6.json) and
// compared across PRs by machines instead of eyeballs.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem ./... | go run ./cmd/benchjson -o BENCH.json
//	go run ./cmd/benchjson -diff [-tolerance 0.05] [-time-tolerance 0.10] [-metric all|ns|allocs] old.json new.json
//
// In convert mode, lines that are not benchmark results (pkg headers,
// PASS/ok, cpu info) pass through to stderr untouched, so the tool can
// sit at the end of a pipe without hiding the raw run.
//
// In diff mode, the tool compares every benchmark present in both files
// and exits nonzero if any regressed by more than its tolerance.
// allocs/op is deterministic and gates at -tolerance; ns/op is noisy
// (scheduling, turbo, co-tenancy) and gates at the separate, looser
// -time-tolerance, so wall-time regressions are still caught without
// the alloc gate inheriting timing noise. ns/op only compares
// meaningfully between runs on comparable machines; allocs/op compares
// anywhere, which is why the strict CI gate is -metric allocs against
// the committed baseline, with a -metric ns pass at a generous
// -time-tolerance on top.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"strings"
)

// Result is one benchmark line in the emitted JSON.
type Result struct {
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// Bytes/allocs are emitted unconditionally when the -benchmem columns
	// were present: a measured 0 allocs/op (the scheduler's acceptance
	// criterion) must be distinguishable from "not measured".
	BytesPerOp  *int64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64 `json:"allocs_per_op,omitempty"`
}

// Document is the emitted JSON root.
type Document struct {
	GoOS       string   `json:"goos,omitempty"`
	GoArch     string   `json:"goarch,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

// benchLine matches e.g.
//
//	BenchmarkSimThroughput-8   300   5170396 ns/op   4084704 B/op   32347 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+([0-9.]+) ns/op(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

func main() {
	out := flag.String("o", "", "output file (default: stdout)")
	diff := flag.Bool("diff", false, "compare two JSON baselines: benchjson -diff [flags] old.json new.json")
	tolerance := flag.Float64("tolerance", 0.05, "relative allocs/op regression allowed in diff mode (0.05 = 5%)")
	timeTolerance := flag.Float64("time-tolerance", 0.10, "relative ns/op regression allowed in diff mode (ns/op is noisier than allocs/op)")
	metric := flag.String("metric", "all", "which metrics gate the diff: all, ns or allocs")
	flag.Parse()

	if *diff {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -diff needs exactly two files (flags go before them): benchjson -diff [flags] old.json new.json")
			os.Exit(2)
		}
		os.Exit(runDiff(flag.Arg(0), flag.Arg(1), *tolerance, *timeTolerance, *metric))
	}

	doc := Document{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.GoOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			doc.GoArch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			fmt.Fprintln(os.Stderr, line)
			continue
		}
		r := Result{Name: strings.TrimSuffix(m[1], cpuSuffix(m[1]))}
		r.Iterations, _ = strconv.ParseInt(m[2], 10, 64)
		r.NsPerOp, _ = strconv.ParseFloat(m[3], 64)
		if m[4] != "" {
			v, _ := strconv.ParseInt(m[4], 10, 64)
			r.BytesPerOp = &v
		}
		if m[5] != "" {
			v, _ := strconv.ParseInt(m[5], 10, 64)
			r.AllocsPerOp = &v
		}
		doc.Benchmarks = append(doc.Benchmarks, r)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: reading stdin: %v\n", err)
		os.Exit(1)
	}

	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// runDiff compares two baselines and returns the process exit code: 0
// when nothing regressed past its tolerance (allocs/op against
// tolerance, ns/op against timeTolerance), 1 otherwise. Benchmarks
// appearing in only one file are reported but never fail the gate — new
// benchmarks and retired ones are normal across PRs.
func runDiff(oldPath, newPath string, tolerance, timeTolerance float64, metric string) int {
	if metric != "all" && metric != "ns" && metric != "allocs" {
		fmt.Fprintf(os.Stderr, "benchjson: unknown -metric %q (want all, ns or allocs)\n", metric)
		return 2
	}
	oldDoc, err := loadDoc(oldPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		return 2
	}
	newDoc, err := loadDoc(newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		return 2
	}
	oldBy := make(map[string]Result, len(oldDoc.Benchmarks))
	for _, r := range oldDoc.Benchmarks {
		oldBy[r.Name] = r
	}
	regressions := 0
	compared := 0
	for _, n := range newDoc.Benchmarks {
		o, ok := oldBy[n.Name]
		if !ok {
			fmt.Printf("new       %-50s (no baseline)\n", n.Name)
			continue
		}
		delete(oldBy, n.Name)
		compared++
		if (metric == "all" || metric == "ns") && o.NsPerOp > 0 {
			rel := (n.NsPerOp - o.NsPerOp) / o.NsPerOp
			if rel > timeTolerance {
				fmt.Printf("REGRESSED %-50s ns/op %12.0f -> %12.0f (%+.1f%%)\n",
					n.Name, o.NsPerOp, n.NsPerOp, rel*100)
				regressions++
			}
		}
		if (metric == "all" || metric == "allocs") && o.AllocsPerOp != nil && n.AllocsPerOp != nil && *o.AllocsPerOp > 0 {
			rel := float64(*n.AllocsPerOp-*o.AllocsPerOp) / float64(*o.AllocsPerOp)
			if rel > tolerance {
				fmt.Printf("REGRESSED %-50s allocs/op %9d -> %9d (%+.1f%%)\n",
					n.Name, *o.AllocsPerOp, *n.AllocsPerOp, rel*100)
				regressions++
			}
		}
	}
	for name := range oldBy {
		fmt.Printf("removed   %-50s (in baseline only)\n", name)
	}
	if regressions > 0 {
		fmt.Printf("benchjson: %d regression(s) past tolerance (allocs %.0f%%, ns %.0f%%) across %d compared benchmarks\n",
			regressions, tolerance*100, timeTolerance*100, compared)
		return 1
	}
	fmt.Printf("benchjson: no regressions past tolerance (allocs %.0f%%, ns %.0f%%) across %d compared benchmarks\n",
		tolerance*100, timeTolerance*100, compared)
	return 0
}

func loadDoc(path string) (Document, error) {
	var d Document
	b, err := os.ReadFile(path)
	if err != nil {
		return d, err
	}
	if err := json.Unmarshal(b, &d); err != nil {
		return d, fmt.Errorf("%s: %v", path, err)
	}
	return d, nil
}

// cpuSuffix returns the trailing "-N" GOMAXPROCS tag of a benchmark name
// (empty if absent), so names stay stable across machines. Only a suffix
// matching this process's GOMAXPROCS is treated as the tag: go test
// omits it entirely at GOMAXPROCS=1, and a parameterized sub-benchmark
// name that happens to end in digits ("/cap-1024") must not be mangled.
func cpuSuffix(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return ""
	}
	n, err := strconv.Atoi(name[i+1:])
	if err != nil || n != runtime.GOMAXPROCS(0) {
		return ""
	}
	return name[i:]
}
