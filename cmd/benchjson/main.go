// Command benchjson converts `go test -bench` output into a stable JSON
// document, so benchmark baselines can be committed (BENCH_PR3.json) and
// compared across PRs by machines instead of eyeballs.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem ./... | go run ./cmd/benchjson -o BENCH.json
//
// Lines that are not benchmark results (pkg headers, PASS/ok, cpu info)
// pass through to stderr untouched, so the tool can sit at the end of a
// pipe without hiding the raw run.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"strings"
)

// Result is one benchmark line in the emitted JSON.
type Result struct {
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// Bytes/allocs are emitted unconditionally when the -benchmem columns
	// were present: a measured 0 allocs/op (the scheduler's acceptance
	// criterion) must be distinguishable from "not measured".
	BytesPerOp  *int64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64 `json:"allocs_per_op,omitempty"`
}

// Document is the emitted JSON root.
type Document struct {
	GoOS       string   `json:"goos,omitempty"`
	GoArch     string   `json:"goarch,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

// benchLine matches e.g.
//
//	BenchmarkSimThroughput-8   300   5170396 ns/op   4084704 B/op   32347 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+([0-9.]+) ns/op(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

func main() {
	out := flag.String("o", "", "output file (default: stdout)")
	flag.Parse()

	doc := Document{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.GoOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			doc.GoArch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			fmt.Fprintln(os.Stderr, line)
			continue
		}
		r := Result{Name: strings.TrimSuffix(m[1], cpuSuffix(m[1]))}
		r.Iterations, _ = strconv.ParseInt(m[2], 10, 64)
		r.NsPerOp, _ = strconv.ParseFloat(m[3], 64)
		if m[4] != "" {
			v, _ := strconv.ParseInt(m[4], 10, 64)
			r.BytesPerOp = &v
		}
		if m[5] != "" {
			v, _ := strconv.ParseInt(m[5], 10, 64)
			r.AllocsPerOp = &v
		}
		doc.Benchmarks = append(doc.Benchmarks, r)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: reading stdin: %v\n", err)
		os.Exit(1)
	}

	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// cpuSuffix returns the trailing "-N" GOMAXPROCS tag of a benchmark name
// (empty if absent), so names stay stable across machines. Only a suffix
// matching this process's GOMAXPROCS is treated as the tag: go test
// omits it entirely at GOMAXPROCS=1, and a parameterized sub-benchmark
// name that happens to end in digits ("/cap-1024") must not be mangled.
func cpuSuffix(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return ""
	}
	n, err := strconv.Atoi(name[i+1:])
	if err != nil || n != runtime.GOMAXPROCS(0) {
		return ""
	}
	return name[i:]
}
