package packet

import (
	"testing"

	"github.com/pcelisp/pcelisp/internal/netaddr"
)

func TestDNSQueryRoundTrip(t *testing.T) {
	in := QuestionFor(0x1234, "www.example.com", DNSTypeA)
	data := Serialize(in)
	p := NewPacket(data, LayerTypeDNS, Default)
	if p.ErrorLayer() != nil {
		t.Fatalf("decode error: %v", p.ErrorLayer().Error())
	}
	out := p.Layer(LayerTypeDNS).(*DNS)
	if out.ID != 0x1234 || out.QR || out.OpCode != DNSOpCodeQuery {
		t.Fatalf("header = %+v", out)
	}
	if len(out.Questions) != 1 {
		t.Fatalf("questions = %d", len(out.Questions))
	}
	q := out.Questions[0]
	if q.Name != "www.example.com" || q.Type != DNSTypeA || q.Class != DNSClassIN {
		t.Fatalf("question = %+v", q)
	}
}

func TestDNSResponseRoundTrip(t *testing.T) {
	addr := netaddr.MustParseAddr("12.0.1.9")
	in := &DNS{
		ID: 7, QR: true, AA: true, RA: true, RCode: DNSRCodeNoError,
		Questions: []DNSQuestion{{Name: "ed.dst.example", Type: DNSTypeA, Class: DNSClassIN}},
		Answers: []DNSResourceRecord{
			{Name: "ed.dst.example", Type: DNSTypeA, Class: DNSClassIN, TTL: 300, IP: addr},
		},
		Authorities: []DNSResourceRecord{
			{Name: "dst.example", Type: DNSTypeNS, Class: DNSClassIN, TTL: 3600, NSName: "ns1.dst.example"},
		},
		Additionals: []DNSResourceRecord{
			{Name: "ns1.dst.example", Type: DNSTypeA, Class: DNSClassIN, TTL: 3600, IP: netaddr.MustParseAddr("12.0.0.53")},
		},
	}
	data := Serialize(in)
	out := &DNS{}
	if err := out.DecodeFromBytes(data); err != nil {
		t.Fatal(err)
	}
	if !out.QR || !out.AA || !out.RA || out.RCode != DNSRCodeNoError {
		t.Fatalf("flags = %+v", out)
	}
	if got, ok := out.FirstA(); !ok || got != addr {
		t.Fatalf("FirstA = %v, %v", got, ok)
	}
	if out.Authorities[0].NSName != "ns1.dst.example" {
		t.Fatalf("authority = %+v", out.Authorities[0])
	}
	if out.Additionals[0].IP != netaddr.MustParseAddr("12.0.0.53") {
		t.Fatalf("additional = %+v", out.Additionals[0])
	}
}

func TestDNSRootName(t *testing.T) {
	in := QuestionFor(1, ".", DNSTypeNS)
	data := Serialize(in)
	out := &DNS{}
	if err := out.DecodeFromBytes(data); err != nil {
		t.Fatal(err)
	}
	if out.Questions[0].Name != "." {
		t.Fatalf("root name = %q", out.Questions[0].Name)
	}
}

func TestDNSCNAMERecord(t *testing.T) {
	in := &DNS{ID: 9, QR: true,
		Answers: []DNSResourceRecord{{Name: "alias.example", Type: DNSTypeCNAME, Class: DNSClassIN, TTL: 60, NSName: "real.example"}}}
	out := &DNS{}
	if err := out.DecodeFromBytes(Serialize(in)); err != nil {
		t.Fatal(err)
	}
	if out.Answers[0].NSName != "real.example" {
		t.Fatalf("CNAME = %+v", out.Answers[0])
	}
}

func TestDNSUnknownRecordTypePassthrough(t *testing.T) {
	in := &DNS{ID: 9, QR: true,
		Answers: []DNSResourceRecord{{Name: "x.example", Type: DNSType(16), Class: DNSClassIN, TTL: 60, Data: []byte("v=spf1")}}}
	out := &DNS{}
	if err := out.DecodeFromBytes(Serialize(in)); err != nil {
		t.Fatal(err)
	}
	if string(out.Answers[0].Data) != "v=spf1" {
		t.Fatalf("raw rdata = %q", out.Answers[0].Data)
	}
}

func TestDNSCompressionPointerDecode(t *testing.T) {
	// Hand-build a response whose answer name is a pointer to the question
	// name (offset 12), the classic compression layout.
	q := QuestionFor(0xaaaa, "ed.dst.example", DNSTypeA)
	msg := Serialize(q)
	msg[2] |= 0x80                                         // QR
	msg[7] = 1                                             // ANCOUNT = 1
	answer := []byte{0xc0, 12}                             // pointer to offset 12
	answer = append(answer, 0, 1, 0, 1, 0, 0, 1, 44, 0, 4) // A IN TTL=300 rdlen=4
	answer = append(answer, 12, 0, 1, 9)
	msg = append(msg, answer...)

	out := &DNS{}
	if err := out.DecodeFromBytes(msg); err != nil {
		t.Fatal(err)
	}
	if out.Answers[0].Name != "ed.dst.example" {
		t.Fatalf("compressed name = %q", out.Answers[0].Name)
	}
	if out.Answers[0].IP != netaddr.MustParseAddr("12.0.1.9") {
		t.Fatalf("A = %v", out.Answers[0].IP)
	}
}

func TestDNSCompressionLoopRejected(t *testing.T) {
	// A name that is a pointer to itself must be rejected, not loop.
	msg := Serialize(QuestionFor(1, "a.example", DNSTypeA))
	msg[7] = 1
	// Answer name: pointer to offset 12; but we overwrite offset 12 to be a
	// pointer back to itself first.
	msg[12], msg[13] = 0xc0, 12
	answer := []byte{0xc0, 12, 0, 1, 0, 1, 0, 0, 0, 1, 0, 4, 1, 2, 3, 4}
	msg = append(msg, answer...)
	out := &DNS{}
	if err := out.DecodeFromBytes(msg); err == nil {
		t.Fatal("self-pointing name must fail")
	}
}

func TestDNSForwardPointerRejected(t *testing.T) {
	msg := Serialize(QuestionFor(1, "a.example", DNSTypeA))
	msg[7] = 1
	answer := []byte{0xc0, 200, 0, 1, 0, 1, 0, 0, 0, 1, 0, 4, 1, 2, 3, 4}
	msg = append(msg, answer...)
	out := &DNS{}
	if err := out.DecodeFromBytes(msg); err == nil {
		t.Fatal("forward pointer must fail")
	}
}

func TestDNSBadLabelRejected(t *testing.T) {
	in := &DNS{Questions: []DNSQuestion{{Name: "a..b", Type: DNSTypeA, Class: DNSClassIN}}}
	if err := SerializeLayers(NewSerializeBuffer(), FixAll, in); err == nil {
		t.Fatal("empty label must fail to encode")
	}
	long := make([]byte, 70)
	for i := range long {
		long[i] = 'x'
	}
	in2 := &DNS{Questions: []DNSQuestion{{Name: string(long), Type: DNSTypeA, Class: DNSClassIN}}}
	if err := SerializeLayers(NewSerializeBuffer(), FixAll, in2); err == nil {
		t.Fatal("64-byte label must fail to encode")
	}
}

func TestDNSTruncatedMessages(t *testing.T) {
	full := Serialize(&DNS{
		ID: 3, QR: true,
		Questions: []DNSQuestion{{Name: "q.example", Type: DNSTypeA, Class: DNSClassIN}},
		Answers:   []DNSResourceRecord{{Name: "q.example", Type: DNSTypeA, Class: DNSClassIN, TTL: 1, IP: 0x01020304}},
	})
	for n := 0; n < len(full); n++ {
		out := &DNS{}
		if err := out.DecodeFromBytes(full[:n]); err == nil {
			// Truncations that happen to end exactly at a section boundary
			// with zero remaining counts are not errors; but counts are
			// non-zero here, so every strict prefix must fail.
			t.Fatalf("truncation to %d bytes decoded successfully", n)
		}
	}
}

func TestDNSOverUDPPort53(t *testing.T) {
	dns := QuestionFor(0x77, "host.example", DNSTypeA)
	ip := &IPv4{TTL: 64, Protocol: IPProtocolUDP, SrcIP: srcIP, DstIP: dstIP}
	udp := &UDP{SrcPort: 30000, DstPort: PortDNS}
	udp.SetNetworkLayerForChecksum(ip)
	data := Serialize(ip, udp, dns)
	p := NewPacket(data, LayerTypeIPv4, Default)
	if p.ErrorLayer() != nil {
		t.Fatalf("decode error: %v", p.ErrorLayer().Error())
	}
	l := p.Layer(LayerTypeDNS)
	if l == nil {
		t.Fatal("DNS not decoded via port 53")
	}
	if l.(*DNS).Questions[0].Name != "host.example" {
		t.Fatalf("question = %+v", l.(*DNS).Questions[0])
	}
	// Reply direction: src port 53 also triggers DNS decoding.
	udp2 := &UDP{SrcPort: PortDNS, DstPort: 30000}
	udp2.SetNetworkLayerForChecksum(ip)
	data2 := Serialize(ip, udp2, dns)
	if NewPacket(data2, LayerTypeIPv4, Default).Layer(LayerTypeDNS) == nil {
		t.Fatal("DNS not decoded via source port 53")
	}
}

func TestDNSAppendBytesDeterministic(t *testing.T) {
	in := &DNS{ID: 42, Questions: []DNSQuestion{{Name: "d.example", Type: DNSTypeA, Class: DNSClassIN}}}
	a, err := in.AppendBytes(nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := in.AppendBytes(nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("encoding must be deterministic")
	}
}
