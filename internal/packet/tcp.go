package packet

import (
	"fmt"

	"github.com/pcelisp/pcelisp/internal/netaddr"
)

// TCPHeaderLen is the length of an option-less TCP header.
const TCPHeaderLen = 20

// TCP is the Transmission Control Protocol header. The reproduction models
// connection establishment (SYN / SYN-ACK / ACK with RFC 6298 SYN
// retransmission) and data segments; it does not implement full congestion
// control, which none of the paper's claims depend on.
type TCP struct {
	BaseLayer
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	DataOffset       uint8 // header length in 32-bit words
	FIN, SYN, RST    bool
	PSH, ACK, URG    bool
	Window           uint16
	Checksum         uint16
	Urgent           uint16
	Options          []byte

	netSrc, netDst netaddr.Addr
	netSet         bool
}

// LayerType returns LayerTypeTCP.
func (*TCP) LayerType() LayerType { return LayerTypeTCP }

// TransportFlow returns the src->dst port flow.
func (t *TCP) TransportFlow() Flow {
	return NewFlow(NewTCPPortEndpoint(t.SrcPort), NewTCPPortEndpoint(t.DstPort))
}

// SetNetworkLayerForChecksum records the enclosing IPv4 header for
// pseudo-header checksum computation.
func (t *TCP) SetNetworkLayerForChecksum(ip *IPv4) {
	t.netSrc, t.netDst, t.netSet = ip.SrcIP, ip.DstIP, true
}

func decodeTCP(data []byte, p PacketBuilder) error {
	if len(data) < TCPHeaderLen {
		return fmt.Errorf("TCP: %d bytes is too short for a header", len(data))
	}
	t := &TCP{
		SrcPort:    uint16(data[0])<<8 | uint16(data[1]),
		DstPort:    uint16(data[2])<<8 | uint16(data[3]),
		Seq:        uint32(data[4])<<24 | uint32(data[5])<<16 | uint32(data[6])<<8 | uint32(data[7]),
		Ack:        uint32(data[8])<<24 | uint32(data[9])<<16 | uint32(data[10])<<8 | uint32(data[11]),
		DataOffset: data[12] >> 4,
		Window:     uint16(data[14])<<8 | uint16(data[15]),
		Checksum:   uint16(data[16])<<8 | uint16(data[17]),
		Urgent:     uint16(data[18])<<8 | uint16(data[19]),
	}
	flags := data[13]
	t.FIN = flags&0x01 != 0
	t.SYN = flags&0x02 != 0
	t.RST = flags&0x04 != 0
	t.PSH = flags&0x08 != 0
	t.ACK = flags&0x10 != 0
	t.URG = flags&0x20 != 0
	hl := int(t.DataOffset) * 4
	if hl < TCPHeaderLen || hl > len(data) {
		return fmt.Errorf("TCP: bad data offset %d (segment %d)", hl, len(data))
	}
	if hl > TCPHeaderLen {
		t.Options = data[TCPHeaderLen:hl]
	}
	t.Contents = data[:hl]
	t.Payload = data[hl:]
	p.AddLayer(t)
	p.SetTransportLayer(t)
	return p.NextDecoder(LayerTypePayload)
}

// SerializeTo implements SerializableLayer.
func (t *TCP) SerializeTo(b SerializeBuffer, opts SerializeOptions) error {
	if len(t.Options)%4 != 0 {
		return fmt.Errorf("TCP: options length %d is not a multiple of 4", len(t.Options))
	}
	hl := TCPHeaderLen + len(t.Options)
	payloadLen := len(b.Bytes())
	bytes, err := b.PrependBytes(hl)
	if err != nil {
		return err
	}
	if opts.FixLengths {
		t.DataOffset = uint8(hl / 4)
	}
	bytes[0], bytes[1] = byte(t.SrcPort>>8), byte(t.SrcPort)
	bytes[2], bytes[3] = byte(t.DstPort>>8), byte(t.DstPort)
	bytes[4], bytes[5], bytes[6], bytes[7] = byte(t.Seq>>24), byte(t.Seq>>16), byte(t.Seq>>8), byte(t.Seq)
	bytes[8], bytes[9], bytes[10], bytes[11] = byte(t.Ack>>24), byte(t.Ack>>16), byte(t.Ack>>8), byte(t.Ack)
	bytes[12] = t.DataOffset << 4
	var flags byte
	if t.FIN {
		flags |= 0x01
	}
	if t.SYN {
		flags |= 0x02
	}
	if t.RST {
		flags |= 0x04
	}
	if t.PSH {
		flags |= 0x08
	}
	if t.ACK {
		flags |= 0x10
	}
	if t.URG {
		flags |= 0x20
	}
	bytes[13] = flags
	bytes[14], bytes[15] = byte(t.Window>>8), byte(t.Window)
	bytes[16], bytes[17] = 0, 0
	bytes[18], bytes[19] = byte(t.Urgent>>8), byte(t.Urgent)
	copy(bytes[TCPHeaderLen:], t.Options)
	if opts.ComputeChecksums && t.netSet {
		segment := b.Bytes()[:hl+payloadLen]
		sum := pseudoHeaderChecksum(t.netSrc, t.netDst, IPProtocolTCP, len(segment))
		t.Checksum = finishChecksum(sumBytes(sum, segment))
	}
	bytes[16], bytes[17] = byte(t.Checksum>>8), byte(t.Checksum)
	return nil
}
