package packet

import (
	"crypto/hmac"
	"crypto/sha1"
	"fmt"

	"github.com/pcelisp/pcelisp/internal/netaddr"
)

// PCECPType identifies a PCE control-plane message. The paper defines the
// message flow in prose; this package gives it a concrete wire format.
type PCECPType uint8

// PCE-CP message types.
const (
	// PCECPEncapDNSReply is the paper's step 6: PCED encapsulates the
	// authoritative DNS reply in a new UDP message toward DNSS on port P,
	// with the EID-to-RLOC mapping for ED in the outer payload and the
	// original DNS reply as the inner payload.
	PCECPEncapDNSReply PCECPType = 1
	// PCECPMappingPush is step 7b: PCES pushes the mapping tuple
	// (ES, ED, RLOCS, RLOCD) to all local ITRs.
	PCECPMappingPush PCECPType = 2
	// PCECPReverseMapPush is the ETR multicast: on the first data packet,
	// the receiving ETR distributes the reverse mapping to its sibling
	// ETRs and the PCED database.
	PCECPReverseMapPush PCECPType = 3
	// PCECPMappingAck acknowledges a push (used by reliability ablations).
	PCECPMappingAck PCECPType = 4
	// PCECPMapFetch is an explicit PCES->PCED mapping query, the fallback
	// when the DNS-reply race is lost (e.g. the answer came from a cache).
	PCECPMapFetch PCECPType = 5
	// PCECPMapFetchReply answers a PCECPMapFetch.
	PCECPMapFetchReply PCECPType = 6
	// PCECPLoadReport is xTR-to-PCE telemetry: per-provider-link goodput
	// counters sampled over a reporting window, the input of the PCE's
	// closed-loop inbound TE optimizer.
	PCECPLoadReport PCECPType = 7
	// PCECPMappingUpdate is an unsolicited PCED-to-PCES prefix mapping
	// refresh: after the TE optimizer changes locator priorities/weights,
	// the destination PCE pushes the new vector to every PCE that learned
	// the old one, which re-pushes affected live flows within one RTT —
	// the reaction pull-based planes only get at TTL expiry.
	PCECPMappingUpdate PCECPType = 8
)

// String names the message type.
func (t PCECPType) String() string {
	switch t {
	case PCECPEncapDNSReply:
		return "EncapDNSReply"
	case PCECPMappingPush:
		return "MappingPush"
	case PCECPReverseMapPush:
		return "ReverseMapPush"
	case PCECPMappingAck:
		return "MappingAck"
	case PCECPMapFetch:
		return "MapFetch"
	case PCECPMapFetchReply:
		return "MapFetchReply"
	case PCECPLoadReport:
		return "LoadReport"
	case PCECPMappingUpdate:
		return "MappingUpdate"
	default:
		return fmt.Sprintf("PCECPType(%d)", uint8(t))
	}
}

// PCEFlowMapping is the paper's per-flow mapping tuple (ES, ED, RLOCS,
// RLOCD): it lets an ITR encapsulate traffic from SrcEID to DstEID using a
// source RLOC that may differ from the ITR's own address, realizing the
// "two independent one-way tunnels" of step 7b.
type PCEFlowMapping struct {
	// TTL is the entry lifetime in seconds.
	TTL uint32
	// SrcEID and DstEID identify the flow (ES, ED).
	SrcEID, DstEID netaddr.Addr
	// SrcRLOC is the local RLOC to stamp as the outer source (RLOCS),
	// chosen by PCES in step 1 to engineer the inbound direction.
	SrcRLOC netaddr.Addr
	// DstRLOC is the remote RLOC to tunnel to (RLOCD), chosen by the
	// destination domain's IRC engine.
	DstRLOC netaddr.Addr
}

// PCEPrefixMapping is an EID-prefix-to-RLOC-set mapping, used when the
// destination PCE advertises a whole prefix rather than a single flow.
type PCEPrefixMapping struct {
	// Prefix is the covered EID range.
	Prefix netaddr.Prefix
	// TTL is the entry lifetime in seconds.
	TTL uint32
	// Locators is the RLOC set with priorities and weights.
	Locators []LISPLocator
}

// PCELoadRecord is one provider link's telemetry sample: the goodput
// carried in each direction during the reporting window, plus the link's
// provisioned capacity so the collector can normalize to utilization
// without holding per-link configuration.
type PCELoadRecord struct {
	// RLOC identifies the provider link by its locator address.
	RLOC netaddr.Addr
	// OutBytes and InBytes are the delivered (goodput) byte counts in the
	// egress and ingress directions over the window.
	OutBytes, InBytes uint64
	// CapacityBps is the link's provisioned capacity.
	CapacityBps uint64
	// WindowMs is the sampling window in milliseconds.
	WindowMs uint32
}

// Record kind tags on the wire.
const (
	pceKindPrefix = 1
	pceKindFlow   = 2
	pceKindLoad   = 3
)

// pceLoadRecordLen is the on-wire size of one load record (kind byte,
// pad, RLOC, out, in, capacity, window).
const pceLoadRecordLen = 2 + 4 + 8 + 8 + 8 + 4

// PCECPHeaderLen is the fixed PCE-CP message header size.
const PCECPHeaderLen = 16

// PCECPFlagAuth marks an authenticated message: the header is followed by
// an auth block — KeyID (2), AuthLen (2), AuthData — before the records.
// The block sits header-adjacent (not trailing) because EncapDNSReply
// carries the inner DNS message after the records.
const PCECPFlagAuth = 0x01

// PCECP is a PCE control-plane message.
//
// Wire format (16-byte header, then records, then optional inner payload):
//
//	byte 0     Version(4) | Type(4)
//	byte 1     Flags
//	bytes 2-3  Record count
//	bytes 4-11 Nonce
//	bytes 12-15 Sender PCE address
//
// For PCECPEncapDNSReply the bytes after the records are the original DNS
// message, so the layer's NextDecoder is DNS; a PCES that is not
// PCE-capable would never see port P traffic, and a legacy DNSS receiving
// it would drop it — preserving the paper's incremental deployability.
type PCECP struct {
	BaseLayer
	// Version is the protocol version (1).
	Version uint8
	// Type selects the message semantics.
	Type PCECPType
	// Flags carries PCECPFlagAuth; other bits are reserved.
	Flags uint8
	// Nonce correlates acks and fetch replies.
	Nonce uint64
	// PCEAddr is the sending PCE's address; PCES learns PCED from it
	// (step 7) without any configuration.
	PCEAddr netaddr.Addr
	// KeyID selects the shared key (1 = HMAC-SHA1 here).
	KeyID uint16
	// AuthData is the HMAC over the header and records with this field
	// zeroed (the inner DNS payload of EncapDNSReply is not covered —
	// the mapping records are the security-critical content).
	AuthData []byte
	// Prefixes carries prefix-granularity mappings.
	Prefixes []PCEPrefixMapping
	// Flows carries flow-granularity mappings.
	Flows []PCEFlowMapping
	// Loads carries telemetry samples (PCECPLoadReport).
	Loads []PCELoadRecord
	// AuthKey, when non-nil, makes SerializeTo compute AuthData and set
	// PCECPFlagAuth. It is never serialized.
	AuthKey []byte
}

// PCECPVersion is the current protocol version.
const PCECPVersion = 1

// LayerType returns LayerTypePCECP.
func (*PCECP) LayerType() LayerType { return LayerTypePCECP }

// SerializeTo implements SerializableLayer. With a non-nil AuthKey and
// ComputeChecksums set, the HMAC is computed over the header and records
// with the auth-data field zeroed.
func (m *PCECP) SerializeTo(b SerializeBuffer, opts SerializeOptions) error {
	n := len(m.Prefixes) + len(m.Flows) + len(m.Loads)
	if n > 0xffff {
		return fmt.Errorf("PCECP: %d records (max 65535)", n)
	}
	auth := m.AuthData
	if m.AuthKey != nil && opts.ComputeChecksums {
		auth = make([]byte, lispAuthLen)
	}
	flags := m.Flags
	if len(auth) > 0 {
		flags |= PCECPFlagAuth
	}
	enc := make([]byte, 0, PCECPHeaderLen+len(auth)+n*24)
	enc = append(enc, m.Version<<4|byte(m.Type), flags, byte(n>>8), byte(n))
	enc = appendUint64(enc, m.Nonce)
	enc = m.PCEAddr.AppendBytes(enc)
	if flags&PCECPFlagAuth != 0 {
		enc = append(enc, byte(m.KeyID>>8), byte(m.KeyID), byte(len(auth)>>8), byte(len(auth)))
		enc = append(enc, auth...)
	}
	for _, pm := range m.Prefixes {
		if len(pm.Locators) > 255 {
			return fmt.Errorf("PCECP: prefix mapping with %d locators", len(pm.Locators))
		}
		enc = append(enc, pceKindPrefix, byte(pm.Prefix.Bits()))
		enc = pm.Prefix.Addr().AppendBytes(enc)
		enc = append(enc, byte(pm.TTL>>24), byte(pm.TTL>>16), byte(pm.TTL>>8), byte(pm.TTL))
		enc = append(enc, byte(len(pm.Locators)), 0)
		for _, l := range pm.Locators {
			enc = appendLocator(enc, l)
		}
	}
	for _, fm := range m.Flows {
		enc = append(enc, pceKindFlow, 0)
		enc = append(enc, byte(fm.TTL>>24), byte(fm.TTL>>16), byte(fm.TTL>>8), byte(fm.TTL))
		enc = fm.SrcEID.AppendBytes(enc)
		enc = fm.DstEID.AppendBytes(enc)
		enc = fm.SrcRLOC.AppendBytes(enc)
		enc = fm.DstRLOC.AppendBytes(enc)
	}
	for _, lr := range m.Loads {
		enc = append(enc, pceKindLoad, 0)
		enc = lr.RLOC.AppendBytes(enc)
		enc = appendUint64(enc, lr.OutBytes)
		enc = appendUint64(enc, lr.InBytes)
		enc = appendUint64(enc, lr.CapacityBps)
		enc = append(enc, byte(lr.WindowMs>>24), byte(lr.WindowMs>>16), byte(lr.WindowMs>>8), byte(lr.WindowMs))
	}
	if m.AuthKey != nil && opts.ComputeChecksums {
		mac := hmac.New(sha1.New, m.AuthKey)
		mac.Write(enc)
		m.AuthData = mac.Sum(nil)
		copy(enc[pceAuthOff:pceAuthOff+lispAuthLen], m.AuthData)
	}
	out, err := b.PrependBytes(len(enc))
	if err != nil {
		return err
	}
	copy(out, enc)
	return nil
}

// pceAuthOff is the byte offset of the auth data within an authenticated
// PCECP message (header, then KeyID+AuthLen).
const pceAuthOff = PCECPHeaderLen + 4

// VerifyAuth recomputes the HMAC over the received header and records
// with the auth field zeroed and compares in constant time. A message
// without an auth block never verifies.
func (m *PCECP) VerifyAuth(key []byte) bool {
	if m.Flags&PCECPFlagAuth == 0 || len(m.AuthData) != lispAuthLen || len(m.Contents) < pceAuthOff+lispAuthLen {
		return false
	}
	msg := make([]byte, len(m.Contents))
	copy(msg, m.Contents)
	for i := pceAuthOff; i < pceAuthOff+lispAuthLen; i++ {
		msg[i] = 0
	}
	mac := hmac.New(sha1.New, key)
	mac.Write(msg)
	return hmac.Equal(mac.Sum(nil), m.AuthData)
}

func decodePCECP(data []byte, p PacketBuilder) error {
	if len(data) < PCECPHeaderLen {
		return fmt.Errorf("PCECP: truncated header (%d bytes)", len(data))
	}
	m := &PCECP{
		Version: data[0] >> 4,
		Type:    PCECPType(data[0] & 0x0f),
		Flags:   data[1],
		Nonce:   readUint64(data[4:]),
		PCEAddr: netaddr.AddrFromBytes(data[12:16]),
	}
	if m.Version != PCECPVersion {
		return fmt.Errorf("PCECP: unsupported version %d", m.Version)
	}
	n := int(uint16(data[2])<<8 | uint16(data[3]))
	off := PCECPHeaderLen
	if m.Flags&PCECPFlagAuth != 0 {
		if off+4 > len(data) {
			return fmt.Errorf("PCECP: auth header truncated")
		}
		m.KeyID = uint16(data[off])<<8 | uint16(data[off+1])
		authLen := int(uint16(data[off+2])<<8 | uint16(data[off+3]))
		off += 4
		if off+authLen > len(data) {
			return fmt.Errorf("PCECP: auth data truncated")
		}
		m.AuthData = data[off : off+authLen]
		off += authLen
	}
	for i := 0; i < n; i++ {
		if off >= len(data) {
			return fmt.Errorf("PCECP: record %d truncated", i)
		}
		switch data[off] {
		case pceKindPrefix:
			if off+12 > len(data) {
				return fmt.Errorf("PCECP: prefix record %d truncated", i)
			}
			maskLen := int(data[off+1])
			if maskLen > 32 {
				return fmt.Errorf("PCECP: prefix record %d mask length %d", i, maskLen)
			}
			pm := PCEPrefixMapping{
				Prefix: netaddr.PrefixFrom(netaddr.AddrFromBytes(data[off+2:off+6]), maskLen),
				TTL:    uint32(data[off+6])<<24 | uint32(data[off+7])<<16 | uint32(data[off+8])<<8 | uint32(data[off+9]),
			}
			locCount := int(data[off+10])
			off += 12
			for j := 0; j < locCount; j++ {
				loc, sz, err := decodeLocator(data[off:])
				if err != nil {
					return fmt.Errorf("PCECP: prefix record %d locator %d: %w", i, j, err)
				}
				pm.Locators = append(pm.Locators, loc)
				off += sz
			}
			m.Prefixes = append(m.Prefixes, pm)
		case pceKindFlow:
			if off+22 > len(data) {
				return fmt.Errorf("PCECP: flow record %d truncated", i)
			}
			m.Flows = append(m.Flows, PCEFlowMapping{
				TTL:     uint32(data[off+2])<<24 | uint32(data[off+3])<<16 | uint32(data[off+4])<<8 | uint32(data[off+5]),
				SrcEID:  netaddr.AddrFromBytes(data[off+6 : off+10]),
				DstEID:  netaddr.AddrFromBytes(data[off+10 : off+14]),
				SrcRLOC: netaddr.AddrFromBytes(data[off+14 : off+18]),
				DstRLOC: netaddr.AddrFromBytes(data[off+18 : off+22]),
			})
			off += 22
		case pceKindLoad:
			if off+pceLoadRecordLen > len(data) {
				return fmt.Errorf("PCECP: load record %d truncated", i)
			}
			m.Loads = append(m.Loads, PCELoadRecord{
				RLOC:        netaddr.AddrFromBytes(data[off+2 : off+6]),
				OutBytes:    readUint64(data[off+6:]),
				InBytes:     readUint64(data[off+14:]),
				CapacityBps: readUint64(data[off+22:]),
				WindowMs:    uint32(data[off+30])<<24 | uint32(data[off+31])<<16 | uint32(data[off+32])<<8 | uint32(data[off+33]),
			})
			off += pceLoadRecordLen
		default:
			return fmt.Errorf("PCECP: record %d has unknown kind %d", i, data[off])
		}
	}
	m.Contents = data[:off]
	m.Payload = data[off:]
	p.AddLayer(m)
	if m.Type == PCECPEncapDNSReply && len(m.Payload) > 0 {
		return p.NextDecoder(LayerTypeDNS)
	}
	return p.NextDecoder(LayerTypePayload)
}
