package packet

import "fmt"

// LISPHeaderLen is the size of the LISP data-plane encapsulation header
// that sits between the outer UDP header (port 4341) and the inner IPv4
// packet (draft-farinacci-lisp-08 §5.2).
const LISPHeaderLen = 8

// LISP is the data-plane encapsulation header. An encapsulated packet on
// the wire is: outer IPv4 (RLOC->RLOC) / UDP (dport 4341) / LISP / inner
// IPv4 (EID->EID) / ... .
type LISP struct {
	BaseLayer
	// NonceP (N bit) indicates the Nonce field is set.
	NonceP bool
	// LSBP (L bit) indicates the Locator-Status-Bits field is set.
	LSBP bool
	// Echo (E bit) requests nonce echo (RFC 6830 echo-nonce algorithm).
	Echo bool
	// MapVersionP (V bit) indicates map-version numbers are present.
	MapVersionP bool
	// InstanceP (I bit) indicates the second word holds an Instance ID.
	InstanceP bool
	// Nonce is a 24-bit random value when NonceP is set.
	Nonce uint32
	// InstanceID is a 24-bit VPN discriminator when InstanceP is set.
	InstanceID uint32
	// LSB holds locator-status bits when InstanceP is clear.
	LSB uint32
}

// LayerType returns LayerTypeLISP.
func (*LISP) LayerType() LayerType { return LayerTypeLISP }

func decodeLISP(data []byte, p PacketBuilder) error {
	if len(data) < LISPHeaderLen {
		return fmt.Errorf("LISP: %d bytes is too short for the data header", len(data))
	}
	l := &LISP{
		NonceP:      data[0]&0x80 != 0,
		LSBP:        data[0]&0x40 != 0,
		Echo:        data[0]&0x20 != 0,
		MapVersionP: data[0]&0x10 != 0,
		InstanceP:   data[0]&0x08 != 0,
		Nonce:       uint32(data[1])<<16 | uint32(data[2])<<8 | uint32(data[3]),
	}
	word2 := uint32(data[4])<<24 | uint32(data[5])<<16 | uint32(data[6])<<8 | uint32(data[7])
	if l.InstanceP {
		l.InstanceID = word2 >> 8
		l.LSB = word2 & 0xff
	} else {
		l.LSB = word2
	}
	l.Contents = data[:LISPHeaderLen]
	l.Payload = data[LISPHeaderLen:]
	p.AddLayer(l)
	return p.NextDecoder(LayerTypeIPv4)
}

// SerializeTo implements SerializableLayer.
func (l *LISP) SerializeTo(b SerializeBuffer, _ SerializeOptions) error {
	bytes, err := b.PrependBytes(LISPHeaderLen)
	if err != nil {
		return err
	}
	var flags byte
	if l.NonceP {
		flags |= 0x80
	}
	if l.LSBP {
		flags |= 0x40
	}
	if l.Echo {
		flags |= 0x20
	}
	if l.MapVersionP {
		flags |= 0x10
	}
	if l.InstanceP {
		flags |= 0x08
	}
	bytes[0] = flags
	bytes[1], bytes[2], bytes[3] = byte(l.Nonce>>16), byte(l.Nonce>>8), byte(l.Nonce)
	var word2 uint32
	if l.InstanceP {
		word2 = l.InstanceID<<8 | l.LSB&0xff
	} else {
		word2 = l.LSB
	}
	bytes[4], bytes[5], bytes[6], bytes[7] = byte(word2>>24), byte(word2>>16), byte(word2>>8), byte(word2)
	return nil
}
