package packet

import (
	"fmt"
	"sync"
)

// SerializeOptions controls how layers serialize themselves.
type SerializeOptions struct {
	// FixLengths recomputes length fields from actual payload sizes.
	FixLengths bool
	// ComputeChecksums recomputes checksum fields.
	ComputeChecksums bool
}

// FixAll is the common case: lengths and checksums both recomputed.
var FixAll = SerializeOptions{FixLengths: true, ComputeChecksums: true}

// SerializableLayer is a layer that can write itself into a buffer.
type SerializableLayer interface {
	// SerializeTo prepends this layer's bytes to b. SerializeTo is called
	// in reverse layer order (innermost first) so that length and checksum
	// computation can see the already-serialized payload.
	SerializeTo(b SerializeBuffer, opts SerializeOptions) error
	// LayerType identifies the layer being serialized.
	LayerType() LayerType
}

// SerializeBuffer accumulates packet bytes. Data is built back-to-front:
// each layer prepends its header in front of what is already there.
type SerializeBuffer interface {
	// Bytes returns the accumulated packet data.
	Bytes() []byte
	// PrependBytes returns n fresh bytes at the start of the packet.
	PrependBytes(n int) ([]byte, error)
	// AppendBytes returns n fresh bytes at the end of the packet.
	AppendBytes(n int) ([]byte, error)
	// Clear resets the buffer for reuse.
	Clear() error
}

// serializeBuffer grows a byte slice in both directions, keeping headroom
// at the front so repeated PrependBytes calls seldom reallocate.
type serializeBuffer struct {
	data  []byte
	start int // offset of packet start within data
	head  int // headroom restored by Clear
}

// NewSerializeBuffer returns an empty buffer with a modest default headroom.
func NewSerializeBuffer() SerializeBuffer {
	return NewSerializeBufferExpectedSize(64, 256)
}

// NewSerializeBufferExpectedSize returns a buffer pre-sized for the given
// expected header (prepend) and payload (append) sizes.
func NewSerializeBufferExpectedSize(headroom, tail int) SerializeBuffer {
	return &serializeBuffer{data: make([]byte, headroom, headroom+tail), start: headroom, head: headroom}
}

func (b *serializeBuffer) Bytes() []byte { return b.data[b.start:] }

func (b *serializeBuffer) PrependBytes(n int) ([]byte, error) {
	if n < 0 {
		return nil, fmt.Errorf("packet: PrependBytes(%d)", n)
	}
	if b.start < n {
		// Grow at the front: reallocate with doubled headroom. The new
		// capacity is sized from the live contents, not the old capacity,
		// so repeated reuse cannot compound allocations.
		newHead := 2 * (n + 32)
		live := len(b.data) - b.start
		nd := make([]byte, newHead+live, newHead+live+(cap(b.data)-len(b.data)))
		copy(nd[newHead:], b.data[b.start:])
		b.data, b.start = nd, newHead
		if newHead > b.head {
			b.head = newHead
		}
	}
	b.start -= n
	return b.data[b.start : b.start+n], nil
}

func (b *serializeBuffer) AppendBytes(n int) ([]byte, error) {
	if n < 0 {
		return nil, fmt.Errorf("packet: AppendBytes(%d)", n)
	}
	old := len(b.data)
	for cap(b.data) < old+n {
		nd := make([]byte, old, 2*cap(b.data)+n)
		copy(nd, b.data)
		b.data = nd
	}
	b.data = b.data[:old+n]
	// Zero the fresh bytes: layers rely on reserved fields starting at 0.
	for i := old; i < old+n; i++ {
		b.data[i] = 0
	}
	return b.data[old:], nil
}

func (b *serializeBuffer) Clear() error {
	// Restore the buffer to its full configured headroom so reuse neither
	// loses front space nor grows without bound.
	if cap(b.data) < b.head {
		b.data = make([]byte, b.head)
	}
	b.data = b.data[:b.head]
	b.start = b.head
	return nil
}

// SerializeLayers clears the buffer and serializes the given layers into
// it, outermost first — e.g. SerializeLayers(buf, opts, ip, udp, dns).
func SerializeLayers(buf SerializeBuffer, opts SerializeOptions, layers ...SerializableLayer) error {
	if err := buf.Clear(); err != nil {
		return err
	}
	for i := len(layers) - 1; i >= 0; i-- {
		if err := layers[i].SerializeTo(buf, opts); err != nil {
			return fmt.Errorf("packet: serializing %v: %w", layers[i].LayerType(), err)
		}
	}
	return nil
}

// serializeBufferPool recycles serialize buffers across Serialize calls.
// Buffers return to the pool reset via the existing Clear, so a reused
// buffer keeps whatever headroom and capacity earlier packets grew it to.
var serializeBufferPool = sync.Pool{
	New: func() interface{} { return NewSerializeBuffer() },
}

// GetSerializeBuffer returns a cleared buffer from the package pool.
// Callers that encode many packets (the simulator's send paths) should
// pair it with PutSerializeBuffer instead of allocating fresh buffers.
func GetSerializeBuffer() SerializeBuffer {
	return serializeBufferPool.Get().(SerializeBuffer)
}

// PutSerializeBuffer returns a buffer obtained from GetSerializeBuffer to
// the pool. The buffer — and any slice obtained from it, including
// Bytes() — must not be used afterwards.
func PutSerializeBuffer(b SerializeBuffer) {
	if b == nil {
		return
	}
	b.Clear()
	serializeBufferPool.Put(b)
}

// Serialize is a convenience wrapper returning the encoded bytes of the
// given layer stack using FixAll options. It panics on error, which can
// only result from a programming mistake in layer construction — callers
// building packets from their own structs, not attacker input. The scratch
// buffer comes from the package pool; only the returned copy allocates.
func Serialize(layers ...SerializableLayer) []byte {
	buf := GetSerializeBuffer()
	if err := SerializeLayers(buf, FixAll, layers...); err != nil {
		panic(err)
	}
	out := make([]byte, len(buf.Bytes()))
	copy(out, buf.Bytes())
	PutSerializeBuffer(buf)
	return out
}
