package packet

import (
	"testing"

	"github.com/pcelisp/pcelisp/internal/netaddr"
)

var (
	srcIP = netaddr.MustParseAddr("10.0.0.1")
	dstIP = netaddr.MustParseAddr("11.0.0.2")
)

// shimLayer is the custom layer used by TestCustomDecoderRegistration.
type shimLayer struct {
	BaseLayer
	typ LayerType
}

func (s *shimLayer) LayerType() LayerType { return s.typ }

// buildUDPPacket serializes IPv4/UDP/payload for use across tests.
func buildUDPPacket(t testing.TB, sport, dport uint16, payload []byte) []byte {
	t.Helper()
	ip := &IPv4{TTL: DefaultTTL, Protocol: IPProtocolUDP, SrcIP: srcIP, DstIP: dstIP}
	udp := &UDP{SrcPort: sport, DstPort: dport}
	udp.SetNetworkLayerForChecksum(ip)
	return Serialize(ip, udp, Payload(payload))
}

func TestNewPacketEagerDecode(t *testing.T) {
	data := buildUDPPacket(t, 1234, 9999, []byte("hello"))
	p := NewPacket(data, LayerTypeIPv4, Default)
	if p.ErrorLayer() != nil {
		t.Fatalf("decode error: %v", p.ErrorLayer().Error())
	}
	if got := p.String(); got != "IPv4/UDP/Payload" {
		t.Fatalf("layer stack = %q", got)
	}
	ip := p.Layer(LayerTypeIPv4).(*IPv4)
	if ip.SrcIP != srcIP || ip.DstIP != dstIP {
		t.Fatalf("addresses = %v -> %v", ip.SrcIP, ip.DstIP)
	}
	if ip.TTL != DefaultTTL {
		t.Fatalf("TTL = %d", ip.TTL)
	}
	udp := p.Layer(LayerTypeUDP).(*UDP)
	if udp.SrcPort != 1234 || udp.DstPort != 9999 {
		t.Fatalf("ports = %d -> %d", udp.SrcPort, udp.DstPort)
	}
	app := p.ApplicationLayer()
	if app == nil || string(app.Payload()) != "hello" {
		t.Fatalf("application layer = %v", app)
	}
}

func TestNewPacketKnownLayerPointers(t *testing.T) {
	data := buildUDPPacket(t, 1, 2, []byte("x"))
	p := NewPacket(data, LayerTypeIPv4, Default)
	if p.NetworkLayer() == nil || p.NetworkLayer().LayerType() != LayerTypeIPv4 {
		t.Fatal("network layer not set")
	}
	if p.TransportLayer() == nil || p.TransportLayer().LayerType() != LayerTypeUDP {
		t.Fatal("transport layer not set")
	}
	nf := p.NetworkLayer().NetworkFlow()
	if nf.Src().Addr() != srcIP || nf.Dst().Addr() != dstIP {
		t.Fatalf("network flow = %v", nf)
	}
}

func TestNewPacketLazy(t *testing.T) {
	data := buildUDPPacket(t, 1, 2, []byte("lazy"))
	p := NewPacket(data, LayerTypeIPv4, Lazy)
	// Requesting the UDP layer must decode exactly up to UDP.
	if l := p.Layer(LayerTypeUDP); l == nil {
		t.Fatal("UDP layer not found lazily")
	}
	// Payload not yet decoded: internal state should still hold a next
	// decoder. Asking for all layers finishes the job.
	all := p.Layers()
	if len(all) != 3 {
		t.Fatalf("Layers() = %d layers", len(all))
	}
	if p.Layer(LayerTypePayload) == nil {
		t.Fatal("payload missing after full decode")
	}
}

func TestNewPacketLazyStopsEarly(t *testing.T) {
	data := buildUDPPacket(t, 1, 2, []byte("payload"))
	p := NewPacket(data, LayerTypeIPv4, Lazy)
	ip := p.Layer(LayerTypeIPv4)
	if ip == nil {
		t.Fatal("IPv4 missing")
	}
	if n := len(p.layers); n != 1 {
		t.Fatalf("lazy decode produced %d layers before being asked, want 1", n)
	}
}

func TestNewPacketCopySemantics(t *testing.T) {
	data := buildUDPPacket(t, 1, 2, []byte("copyme"))
	p := NewPacket(data, LayerTypeIPv4, Default)
	// Mutating the caller's slice must not affect a copied packet.
	for i := range data {
		data[i] = 0xff
	}
	if p.ErrorLayer() != nil {
		t.Fatal("copied packet corrupted by caller mutation")
	}
	if string(p.ApplicationLayer().Payload()) != "copyme" {
		t.Fatal("payload corrupted by caller mutation")
	}
}

func TestNewPacketNoCopySharesMemory(t *testing.T) {
	data := buildUDPPacket(t, 1, 2, []byte("shared"))
	p := NewPacket(data, LayerTypeIPv4, NoCopy)
	if &p.Data()[0] != &data[0] {
		t.Fatal("NoCopy must alias the caller's slice")
	}
}

func TestDecodeFailurePreservesOuterLayers(t *testing.T) {
	data := buildUDPPacket(t, 1, 2, []byte("ok"))
	// Truncate inside the UDP header: IPv4 length will disagree, IPv4
	// decode fails cleanly with a DecodeFailure and no panic.
	trunc := data[:22]
	p := NewPacket(trunc, LayerTypeIPv4, Default)
	if p.ErrorLayer() == nil {
		t.Fatal("expected decode failure")
	}
}

func TestDecodeFailureMidStack(t *testing.T) {
	ip := &IPv4{TTL: 64, Protocol: IPProtocolUDP, SrcIP: srcIP, DstIP: dstIP}
	udp := &UDP{SrcPort: 5, DstPort: PortDNS} // DNS payload expected
	udp.SetNetworkLayerForChecksum(ip)
	data := Serialize(ip, udp, Payload([]byte{1, 2, 3})) // 3 bytes: not a DNS header
	p := NewPacket(data, LayerTypeIPv4, Default)
	if p.ErrorLayer() == nil {
		t.Fatal("expected DNS decode failure")
	}
	// Outer layers remain accessible.
	if p.Layer(LayerTypeIPv4) == nil || p.Layer(LayerTypeUDP) == nil {
		t.Fatal("outer layers lost on inner decode failure")
	}
}

func TestPacketString(t *testing.T) {
	data := buildUDPPacket(t, 7, 8, nil)
	p := NewPacket(data, LayerTypeIPv4, Default)
	if got := p.String(); got != "IPv4/UDP" {
		t.Fatalf("String() = %q", got)
	}
}

func TestEmptyUDPPayloadCompletesCleanly(t *testing.T) {
	data := buildUDPPacket(t, 7, 8, nil)
	p := NewPacket(data, LayerTypeIPv4, Default)
	if p.ErrorLayer() != nil {
		t.Fatalf("decode error: %v", p.ErrorLayer().Error())
	}
	if got := len(p.Layers()); got != 2 {
		t.Fatalf("layers = %d, want 2", got)
	}
}

// TestCustomDecoderRegistration mirrors the gopacket guide's "Implementing
// Your Own Decoder": a 4-byte shim header in front of IPv4.
func TestCustomDecoderRegistration(t *testing.T) {
	shimType := RegisterLayerType(12345, LayerTypeMetadata{Name: "Shim"})
	shimDecode := DecodeFunc(func(data []byte, p PacketBuilder) error {
		if len(data) < 4 {
			t.Fatal("shim too short")
		}
		l := &shimLayer{typ: shimType, BaseLayer: BaseLayer{Contents: data[:4], Payload: data[4:]}}
		p.AddLayer(l)
		return p.NextDecoder(LayerTypeIPv4)
	})
	inner := buildUDPPacket(t, 1, 2, []byte("inner"))
	data := append([]byte{0xde, 0xad, 0xbe, 0xef}, inner...)
	p := NewPacket(data, shimDecode, Default)
	if p.ErrorLayer() != nil {
		t.Fatalf("decode error: %v", p.ErrorLayer().Error())
	}
	if p.Layer(LayerTypeIPv4) == nil {
		t.Fatal("IPv4 not reached through custom decoder")
	}
}

func TestRegisterLayerTypeDuplicatePanics(t *testing.T) {
	RegisterLayerType(22222, LayerTypeMetadata{Name: "Once"})
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration must panic")
		}
	}()
	RegisterLayerType(22222, LayerTypeMetadata{Name: "Twice"})
}

func TestLayerTypeString(t *testing.T) {
	if LayerTypeIPv4.String() != "IPv4" {
		t.Fatalf("IPv4 name = %q", LayerTypeIPv4.String())
	}
	if got := LayerType(99999).String(); got != "LayerType(99999)" {
		t.Fatalf("unknown type name = %q", got)
	}
}

func TestSerializeBufferGrowth(t *testing.T) {
	b := NewSerializeBufferExpectedSize(2, 2)
	head, err := b.PrependBytes(8)
	if err != nil {
		t.Fatal(err)
	}
	copy(head, "headhead")
	tail, err := b.AppendBytes(8)
	if err != nil {
		t.Fatal(err)
	}
	copy(tail, "tailtail")
	if got := string(b.Bytes()); got != "headheadtailtail" {
		t.Fatalf("Bytes = %q", got)
	}
	if err := b.Clear(); err != nil {
		t.Fatal(err)
	}
	if len(b.Bytes()) != 0 {
		t.Fatal("Clear must empty the buffer")
	}
	if _, err := b.PrependBytes(-1); err == nil {
		t.Fatal("negative prepend must error")
	}
	if _, err := b.AppendBytes(-1); err == nil {
		t.Fatal("negative append must error")
	}
}

func TestSerializeBufferAppendZeroes(t *testing.T) {
	b := NewSerializeBuffer()
	x, _ := b.AppendBytes(4)
	copy(x, []byte{1, 2, 3, 4})
	if err := b.Clear(); err != nil {
		t.Fatal(err)
	}
	y, _ := b.AppendBytes(4)
	for i, v := range y {
		if v != 0 {
			t.Fatalf("AppendBytes[%d] = %d after Clear, want 0", i, v)
		}
	}
}

func TestNextDecoderErrors(t *testing.T) {
	p := &Packet{}
	if err := p.NextDecoder(nil); err == nil {
		t.Fatal("nil decoder must error")
	}
	if err := p.NextDecoder(LayerTypeIPv4); err == nil {
		t.Fatal("NextDecoder before AddLayer must error")
	}
}
