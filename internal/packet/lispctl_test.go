package packet

import (
	"testing"

	"github.com/pcelisp/pcelisp/internal/netaddr"
)

func locatorSet() []LISPLocator {
	return []LISPLocator{
		{Priority: 1, Weight: 60, Local: true, Reachable: true, Addr: netaddr.MustParseAddr("12.0.0.254")},
		{Priority: 1, Weight: 40, Reachable: true, Addr: netaddr.MustParseAddr("13.0.0.254")},
		{Priority: 255, Weight: 0, Addr: netaddr.MustParseAddr("13.0.0.253")},
	}
}

func TestMapRequestRoundTrip(t *testing.T) {
	in := &LISPMapRequest{
		Authoritative: true, SMR: false, Nonce: 0xdeadbeefcafe,
		SourceEID: netaddr.MustParseAddr("10.1.0.5"),
		ITRRLOCs:  []netaddr.Addr{netaddr.MustParseAddr("10.0.0.254"), netaddr.MustParseAddr("11.0.0.254")},
		EIDPrefixes: []netaddr.Prefix{
			netaddr.HostPrefix(netaddr.MustParseAddr("12.0.1.9")),
			netaddr.MustParsePrefix("13.1.0.0/16"),
		},
	}
	data := Serialize(in)
	p := NewPacket(data, LayerTypeLISPControl, Default)
	if p.ErrorLayer() != nil {
		t.Fatalf("decode error: %v", p.ErrorLayer().Error())
	}
	out := p.Layer(LayerTypeLISPMapRequest).(*LISPMapRequest)
	if out.Nonce != in.Nonce || !out.Authoritative || out.SMR {
		t.Fatalf("header = %+v", out)
	}
	if out.SourceEID != in.SourceEID {
		t.Fatalf("source EID = %v", out.SourceEID)
	}
	if len(out.ITRRLOCs) != 2 || out.ITRRLOCs[1] != in.ITRRLOCs[1] {
		t.Fatalf("ITR-RLOCs = %v", out.ITRRLOCs)
	}
	if len(out.EIDPrefixes) != 2 || out.EIDPrefixes[0] != in.EIDPrefixes[0] || out.EIDPrefixes[1] != in.EIDPrefixes[1] {
		t.Fatalf("EID prefixes = %v", out.EIDPrefixes)
	}
}

func TestMapRequestNoSourceEID(t *testing.T) {
	in := &LISPMapRequest{
		Nonce:       1,
		ITRRLOCs:    []netaddr.Addr{netaddr.MustParseAddr("10.0.0.254")},
		EIDPrefixes: []netaddr.Prefix{netaddr.MustParsePrefix("12.0.0.0/8")},
	}
	data := Serialize(in)
	out := NewPacket(data, LayerTypeLISPControl, Default).Layer(LayerTypeLISPMapRequest).(*LISPMapRequest)
	if out.SourceEID.IsValid() {
		t.Fatalf("source EID should be unset, got %v", out.SourceEID)
	}
}

func TestMapRequestValidation(t *testing.T) {
	noITR := &LISPMapRequest{EIDPrefixes: []netaddr.Prefix{netaddr.MustParsePrefix("10.0.0.0/8")}}
	if err := SerializeLayers(NewSerializeBuffer(), FixAll, noITR); err == nil {
		t.Fatal("Map-Request without ITR-RLOCs must fail")
	}
	noEID := &LISPMapRequest{ITRRLOCs: []netaddr.Addr{1}}
	if err := SerializeLayers(NewSerializeBuffer(), FixAll, noEID); err == nil {
		t.Fatal("Map-Request without records must fail")
	}
}

func TestMapReplyRoundTrip(t *testing.T) {
	in := &LISPMapReply{
		Nonce: 0x1122334455667788,
		Records: []LISPMapRecord{{
			TTL: 900, EIDPrefix: netaddr.MustParsePrefix("12.0.1.0/24"),
			Authoritative: true, MapVersion: 7, Locators: locatorSet(),
		}},
	}
	data := Serialize(in)
	p := NewPacket(data, LayerTypeLISPControl, Default)
	if p.ErrorLayer() != nil {
		t.Fatalf("decode error: %v", p.ErrorLayer().Error())
	}
	out := p.Layer(LayerTypeLISPMapReply).(*LISPMapReply)
	if out.Nonce != in.Nonce || len(out.Records) != 1 {
		t.Fatalf("reply = %+v", out)
	}
	r := out.Records[0]
	if r.TTL != 900 || r.EIDPrefix != in.Records[0].EIDPrefix || !r.Authoritative || r.MapVersion != 7 {
		t.Fatalf("record = %+v", r)
	}
	if len(r.Locators) != 3 {
		t.Fatalf("locators = %d", len(r.Locators))
	}
	for i, l := range r.Locators {
		w := in.Records[0].Locators[i]
		if l != w {
			t.Fatalf("locator %d = %+v, want %+v", i, l, w)
		}
	}
}

func TestBestLocator(t *testing.T) {
	r := LISPMapRecord{Locators: locatorSet()}
	best, ok := r.BestLocator()
	if !ok || best.Addr != netaddr.MustParseAddr("12.0.0.254") {
		t.Fatalf("best = %+v, %v", best, ok)
	}
	// Priority 255 and unreachable locators are never chosen.
	r2 := LISPMapRecord{Locators: []LISPLocator{
		{Priority: 255, Reachable: true, Addr: 1},
		{Priority: 1, Reachable: false, Addr: 2},
	}}
	if _, ok := r2.BestLocator(); ok {
		t.Fatal("unusable locators must yield no best")
	}
	// Tie on priority+weight breaks by lowest address.
	r3 := LISPMapRecord{Locators: []LISPLocator{
		{Priority: 1, Weight: 10, Reachable: true, Addr: 9},
		{Priority: 1, Weight: 10, Reachable: true, Addr: 3},
	}}
	if best, _ := r3.BestLocator(); best.Addr != 3 {
		t.Fatalf("tie break = %v", best.Addr)
	}
}

func TestMapRegisterAuth(t *testing.T) {
	key := []byte("shared-secret")
	in := &LISPMapRegister{
		ProxyReply: true, WantNotify: true, Nonce: 42, KeyID: 1, AuthKey: key,
		Records: []LISPMapRecord{{
			TTL: 60, EIDPrefix: netaddr.MustParsePrefix("12.0.1.0/24"),
			Locators: locatorSet()[:2],
		}},
	}
	data := Serialize(in)
	p := NewPacket(data, LayerTypeLISPControl, Default)
	if p.ErrorLayer() != nil {
		t.Fatalf("decode error: %v", p.ErrorLayer().Error())
	}
	out := p.Layer(LayerTypeLISPMapRegister).(*LISPMapRegister)
	if !out.ProxyReply || !out.WantNotify || out.Nonce != 42 || out.KeyID != 1 {
		t.Fatalf("register = %+v", out)
	}
	if !out.VerifyAuth(key) {
		t.Fatal("valid HMAC must verify")
	}
	if out.VerifyAuth([]byte("wrong-key")) {
		t.Fatal("wrong key must not verify")
	}
	// Bit-flip in a record invalidates the signature.
	tampered := make([]byte, len(data))
	copy(tampered, data)
	tampered[len(tampered)-1] ^= 1
	out2 := NewPacket(tampered, LayerTypeLISPControl, Default).Layer(LayerTypeLISPMapRegister).(*LISPMapRegister)
	if out2 != nil && out2.VerifyAuth(key) {
		t.Fatal("tampered message must not verify")
	}
}

func TestMapNotifyRoundTrip(t *testing.T) {
	key := []byte("notify-key")
	in := &LISPMapNotify{LISPMapRegister{
		Nonce: 7, KeyID: 1, AuthKey: key,
		Records: []LISPMapRecord{{TTL: 1, EIDPrefix: netaddr.MustParsePrefix("10.0.0.0/8")}},
	}}
	data := Serialize(in)
	p := NewPacket(data, LayerTypeLISPControl, Default)
	if p.ErrorLayer() != nil {
		t.Fatalf("decode error: %v", p.ErrorLayer().Error())
	}
	out := p.Layer(LayerTypeLISPMapNotify).(*LISPMapNotify)
	if out.Nonce != 7 || len(out.Records) != 1 {
		t.Fatalf("notify = %+v", out)
	}
	if !out.VerifyAuth(key) {
		t.Fatal("notify HMAC must verify")
	}
}

func TestECMCarriesInnerControlPacket(t *testing.T) {
	// A Map-Request wrapped in IP/UDP wrapped in an ECM, as sent to a
	// Map-Resolver (RFC 6833).
	req := &LISPMapRequest{
		Nonce:       99,
		ITRRLOCs:    []netaddr.Addr{netaddr.MustParseAddr("10.0.0.254")},
		EIDPrefixes: []netaddr.Prefix{netaddr.HostPrefix(netaddr.MustParseAddr("12.0.1.9"))},
	}
	innerIP := &IPv4{TTL: 64, Protocol: IPProtocolUDP,
		SrcIP: netaddr.MustParseAddr("10.0.0.254"), DstIP: netaddr.MustParseAddr("198.51.100.1")}
	innerUDP := &UDP{SrcPort: PortLISPControl, DstPort: PortLISPControl}
	innerUDP.SetNetworkLayerForChecksum(innerIP)
	inner := Serialize(innerIP, innerUDP, req)

	data := Serialize(&LISPECM{}, Payload(inner))
	p := NewPacket(data, LayerTypeLISPControl, Default)
	if p.ErrorLayer() != nil {
		t.Fatalf("decode error: %v", p.ErrorLayer().Error())
	}
	if p.Layer(LayerTypeLISPECM) == nil {
		t.Fatal("ECM layer missing")
	}
	got := p.Layer(LayerTypeLISPMapRequest)
	if got == nil {
		t.Fatal("inner Map-Request not decoded through ECM")
	}
	if got.(*LISPMapRequest).Nonce != 99 {
		t.Fatalf("inner nonce = %d", got.(*LISPMapRequest).Nonce)
	}
}

func TestControlDispatchUnknownType(t *testing.T) {
	p := NewPacket([]byte{0xf0, 0, 0, 0}, LayerTypeLISPControl, Default)
	if p.ErrorLayer() == nil {
		t.Fatal("unknown control type must fail")
	}
}

func TestMapRecordBadMaskLen(t *testing.T) {
	in := &LISPMapReply{Nonce: 1, Records: []LISPMapRecord{{TTL: 1, EIDPrefix: netaddr.MustParsePrefix("10.0.0.0/8")}}}
	data := Serialize(in)
	data[12+5] = 40 // mask length byte of first record
	p := NewPacket(data, LayerTypeLISPControl, Default)
	if p.ErrorLayer() == nil {
		t.Fatal("mask length 40 must fail")
	}
}

func TestMapReplyOverUDPPort4342(t *testing.T) {
	reply := &LISPMapReply{Nonce: 5, Records: []LISPMapRecord{{TTL: 10, EIDPrefix: netaddr.MustParsePrefix("12.0.0.0/8"), Locators: locatorSet()[:1]}}}
	ip := &IPv4{TTL: 64, Protocol: IPProtocolUDP, SrcIP: srcIP, DstIP: dstIP}
	udp := &UDP{SrcPort: PortLISPControl, DstPort: 61000}
	udp.SetNetworkLayerForChecksum(ip)
	data := Serialize(ip, udp, reply)
	p := NewPacket(data, LayerTypeIPv4, Default)
	if p.Layer(LayerTypeLISPMapReply) == nil {
		t.Fatal("Map-Reply not decoded via port 4342")
	}
}

func BenchmarkMapReplySerialize(b *testing.B) {
	in := &LISPMapReply{Nonce: 1, Records: []LISPMapRecord{{
		TTL: 900, EIDPrefix: netaddr.MustParsePrefix("12.0.1.0/24"), Locators: locatorSet(),
	}}}
	buf := NewSerializeBuffer()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := SerializeLayers(buf, FixAll, in); err != nil {
			b.Fatal(err)
		}
	}
}
