package packet

import (
	"testing"

	"github.com/pcelisp/pcelisp/internal/netaddr"
)

var (
	pceD  = netaddr.MustParseAddr("12.0.0.53")
	dnsS  = netaddr.MustParseAddr("10.0.0.53")
	es    = netaddr.MustParseAddr("10.1.0.5")
	ed    = netaddr.MustParseAddr("12.1.0.9")
	rlocS = netaddr.MustParseAddr("11.0.0.254")
	rlocD = netaddr.MustParseAddr("13.0.0.254")
)

func TestPCECPEncapDNSReplyRoundTrip(t *testing.T) {
	// The paper's step 6 message: outer UDP toward DNSS on port P, PCECP
	// header with the ED mapping, inner payload = the original DNS reply.
	dnsReply := &DNS{
		ID: 0x99, QR: true, AA: true,
		Questions: []DNSQuestion{{Name: "ed.dst.example", Type: DNSTypeA, Class: DNSClassIN}},
		Answers:   []DNSResourceRecord{{Name: "ed.dst.example", Type: DNSTypeA, Class: DNSClassIN, TTL: 300, IP: ed}},
	}
	msg := &PCECP{
		Version: PCECPVersion, Type: PCECPEncapDNSReply, Nonce: 0xabc, PCEAddr: pceD,
		Prefixes: []PCEPrefixMapping{{
			Prefix: netaddr.MustParsePrefix("12.1.0.0/16"), TTL: 900,
			Locators: []LISPLocator{
				{Priority: 1, Weight: 70, Reachable: true, Addr: netaddr.MustParseAddr("12.0.0.254")},
				{Priority: 2, Weight: 30, Reachable: true, Addr: rlocD},
			},
		}},
	}
	ip := &IPv4{TTL: 64, Protocol: IPProtocolUDP, SrcIP: pceD, DstIP: dnsS}
	udp := &UDP{SrcPort: PortPCECP, DstPort: PortPCECP}
	udp.SetNetworkLayerForChecksum(ip)
	data := Serialize(ip, udp, msg, dnsReply)

	p := NewPacket(data, LayerTypeIPv4, Default)
	if p.ErrorLayer() != nil {
		t.Fatalf("decode error: %v", p.ErrorLayer().Error())
	}
	if got := p.String(); got != "IPv4/UDP/PCECP/DNS" {
		t.Fatalf("stack = %q", got)
	}
	out := p.Layer(LayerTypePCECP).(*PCECP)
	if out.Type != PCECPEncapDNSReply || out.PCEAddr != pceD || out.Nonce != 0xabc {
		t.Fatalf("header = %+v", out)
	}
	if len(out.Prefixes) != 1 || out.Prefixes[0].Prefix != netaddr.MustParsePrefix("12.1.0.0/16") {
		t.Fatalf("prefixes = %+v", out.Prefixes)
	}
	if len(out.Prefixes[0].Locators) != 2 || out.Prefixes[0].Locators[1].Addr != rlocD {
		t.Fatalf("locators = %+v", out.Prefixes[0].Locators)
	}
	// The inner DNS reply survives the encapsulation intact (step 7a).
	inner := p.Layer(LayerTypeDNS).(*DNS)
	if a, ok := inner.FirstA(); !ok || a != ed {
		t.Fatalf("inner DNS answer = %v, %v", a, ok)
	}
}

func TestPCECPMappingPushRoundTrip(t *testing.T) {
	// Step 7b: the flow 4-tuple (ES, ED, RLOCS, RLOCD) pushed to ITRs.
	msg := &PCECP{
		Version: PCECPVersion, Type: PCECPMappingPush, Nonce: 7, PCEAddr: dnsS,
		Flows: []PCEFlowMapping{{TTL: 300, SrcEID: es, DstEID: ed, SrcRLOC: rlocS, DstRLOC: rlocD}},
	}
	data := Serialize(msg)
	p := NewPacket(data, LayerTypePCECP, Default)
	if p.ErrorLayer() != nil {
		t.Fatalf("decode error: %v", p.ErrorLayer().Error())
	}
	out := p.Layer(LayerTypePCECP).(*PCECP)
	if out.Type != PCECPMappingPush || len(out.Flows) != 1 {
		t.Fatalf("push = %+v", out)
	}
	f := out.Flows[0]
	if f.SrcEID != es || f.DstEID != ed || f.SrcRLOC != rlocS || f.DstRLOC != rlocD || f.TTL != 300 {
		t.Fatalf("flow = %+v", f)
	}
}

func TestPCECPMixedRecords(t *testing.T) {
	msg := &PCECP{
		Version: PCECPVersion, Type: PCECPReverseMapPush, PCEAddr: pceD,
		Prefixes: []PCEPrefixMapping{{Prefix: netaddr.MustParsePrefix("10.0.0.0/8"), TTL: 60,
			Locators: []LISPLocator{{Priority: 1, Reachable: true, Addr: rlocS}}}},
		Flows: []PCEFlowMapping{
			{TTL: 30, SrcEID: ed, DstEID: es, SrcRLOC: rlocD, DstRLOC: rlocS},
			{TTL: 31, SrcEID: ed.Next(), DstEID: es.Next(), SrcRLOC: rlocD, DstRLOC: rlocS},
		},
	}
	data := Serialize(msg)
	out := NewPacket(data, LayerTypePCECP, Default).Layer(LayerTypePCECP).(*PCECP)
	if len(out.Prefixes) != 1 || len(out.Flows) != 2 {
		t.Fatalf("records = %d prefixes, %d flows", len(out.Prefixes), len(out.Flows))
	}
	if out.Flows[1].TTL != 31 {
		t.Fatalf("second flow = %+v", out.Flows[1])
	}
}

func TestPCECPVersionRejected(t *testing.T) {
	data := Serialize(&PCECP{Version: 2, Type: PCECPMappingAck, PCEAddr: pceD})
	if NewPacket(data, LayerTypePCECP, Default).ErrorLayer() == nil {
		t.Fatal("version 2 must be rejected")
	}
}

func TestPCECPTruncations(t *testing.T) {
	msg := &PCECP{
		Version: PCECPVersion, Type: PCECPMappingPush, PCEAddr: pceD,
		Flows:    []PCEFlowMapping{{TTL: 30, SrcEID: es, DstEID: ed, SrcRLOC: rlocS, DstRLOC: rlocD}},
		Prefixes: []PCEPrefixMapping{{Prefix: netaddr.MustParsePrefix("10.0.0.0/8"), TTL: 60, Locators: []LISPLocator{{Priority: 1, Addr: rlocS}}}},
	}
	full := Serialize(msg)
	for n := 0; n < len(full); n++ {
		p := NewPacket(full[:n], LayerTypePCECP, Default)
		p.Layers()
	}
}

func TestPCECPUnknownRecordKind(t *testing.T) {
	data := Serialize(&PCECP{Version: PCECPVersion, Type: PCECPMappingPush, PCEAddr: pceD})
	data[3] = 1 // claim one record, then provide garbage
	data = append(data, 0x7f)
	if NewPacket(data, LayerTypePCECP, Default).ErrorLayer() == nil {
		t.Fatal("unknown record kind must fail")
	}
}

func TestPCECPTypeString(t *testing.T) {
	names := map[PCECPType]string{
		PCECPEncapDNSReply: "EncapDNSReply", PCECPMappingPush: "MappingPush",
		PCECPReverseMapPush: "ReverseMapPush", PCECPMappingAck: "MappingAck",
		PCECPMapFetch: "MapFetch", PCECPMapFetchReply: "MapFetchReply",
		PCECPType(15): "PCECPType(15)",
	}
	for typ, want := range names {
		if got := typ.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", typ, got, want)
		}
	}
}

func TestPCECPOverPortP(t *testing.T) {
	// Port P demultiplexing: a PCES snooping for port P sees the PCECP
	// layer without knowing anything beyond IPv4/UDP.
	msg := &PCECP{Version: PCECPVersion, Type: PCECPMappingAck, Nonce: 3, PCEAddr: pceD}
	ip := &IPv4{TTL: 64, Protocol: IPProtocolUDP, SrcIP: pceD, DstIP: dnsS}
	udp := &UDP{SrcPort: 50000, DstPort: PortPCECP}
	udp.SetNetworkLayerForChecksum(ip)
	data := Serialize(ip, udp, msg)
	p := NewPacket(data, LayerTypeIPv4, Default)
	got := p.Layer(LayerTypePCECP)
	if got == nil || got.(*PCECP).Nonce != 3 {
		t.Fatal("PCECP not demultiplexed via port P")
	}
}

func BenchmarkPCECPEncapDNSReply(b *testing.B) {
	dnsReply := &DNS{ID: 1, QR: true,
		Answers: []DNSResourceRecord{{Name: "ed.dst.example", Type: DNSTypeA, Class: DNSClassIN, TTL: 300, IP: ed}}}
	msg := &PCECP{Version: PCECPVersion, Type: PCECPEncapDNSReply, PCEAddr: pceD,
		Prefixes: []PCEPrefixMapping{{Prefix: netaddr.MustParsePrefix("12.1.0.0/16"), TTL: 900,
			Locators: []LISPLocator{{Priority: 1, Weight: 100, Reachable: true, Addr: rlocD}}}}}
	buf := NewSerializeBuffer()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := SerializeLayers(buf, FixAll, msg, dnsReply); err != nil {
			b.Fatal(err)
		}
	}
}
