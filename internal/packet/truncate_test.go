package packet

import (
	"testing"

	"github.com/pcelisp/pcelisp/internal/netaddr"
)

// TestPCECPTelemetryRoundTrip covers the closed-loop TE wire additions:
// a LoadReport full of link samples and a MappingUpdate carrying the
// recomputed weight vector.
func TestPCECPTelemetryRoundTrip(t *testing.T) {
	report := &PCECP{
		Version: PCECPVersion, Type: PCECPLoadReport, Nonce: 0x1122334455667788,
		Loads: []PCELoadRecord{
			{RLOC: rlocS, OutBytes: 123456789, InBytes: 987654321012, CapacityBps: 4_000_000, WindowMs: 1000},
			{RLOC: rlocD, OutBytes: 0, InBytes: 1, CapacityBps: 10_000_000_000, WindowMs: 250},
		},
	}
	p := NewPacket(Serialize(report), LayerTypePCECP, Default)
	if p.ErrorLayer() != nil {
		t.Fatalf("decode error: %v", p.ErrorLayer().Error())
	}
	out := p.Layer(LayerTypePCECP).(*PCECP)
	if out.Type != PCECPLoadReport || len(out.Loads) != 2 {
		t.Fatalf("decoded = %+v", out)
	}
	for i, want := range report.Loads {
		if out.Loads[i] != want {
			t.Fatalf("load %d = %+v, want %+v", i, out.Loads[i], want)
		}
	}
	if out.Type.String() != "LoadReport" {
		t.Fatalf("String() = %q", out.Type.String())
	}

	update := &PCECP{
		Version: PCECPVersion, Type: PCECPMappingUpdate, Nonce: 7, PCEAddr: pceD,
		Prefixes: []PCEPrefixMapping{{
			Prefix: netaddr.MustParsePrefix("12.1.0.0/16"), TTL: 300,
			Locators: []LISPLocator{
				{Priority: 1, Weight: 66, Reachable: true, Addr: rlocS},
				{Priority: 1, Weight: 34, Reachable: true, Addr: rlocD},
			},
		}},
	}
	p = NewPacket(Serialize(update), LayerTypePCECP, Default)
	if p.ErrorLayer() != nil {
		t.Fatalf("decode error: %v", p.ErrorLayer().Error())
	}
	got := p.Layer(LayerTypePCECP).(*PCECP)
	if got.Type != PCECPMappingUpdate || got.Type.String() != "MappingUpdate" {
		t.Fatalf("decoded = %+v", got)
	}
	if len(got.Prefixes) != 1 || got.Prefixes[0].Locators[0].Weight != 66 || got.Prefixes[0].Locators[1].Weight != 34 {
		t.Fatalf("weights lost: %+v", got.Prefixes)
	}
}

// TestPCECPMixedRecordKinds round-trips a message carrying all three
// record kinds at once — the decoder walks one shared record count.
func TestPCECPMixedRecordKinds(t *testing.T) {
	msg := &PCECP{
		Version: PCECPVersion, Type: PCECPMappingPush, Nonce: 9, PCEAddr: pceD,
		Prefixes: []PCEPrefixMapping{{
			Prefix: netaddr.MustParsePrefix("12.1.0.0/16"), TTL: 60,
			Locators: []LISPLocator{{Priority: 1, Weight: 100, Reachable: true, Addr: rlocD}},
		}},
		Flows: []PCEFlowMapping{{TTL: 60, SrcEID: es, DstEID: ed, SrcRLOC: rlocS, DstRLOC: rlocD}},
		Loads: []PCELoadRecord{{RLOC: rlocS, OutBytes: 5, InBytes: 6, CapacityBps: 7, WindowMs: 8}},
	}
	p := NewPacket(Serialize(msg), LayerTypePCECP, Default)
	if p.ErrorLayer() != nil {
		t.Fatalf("decode error: %v", p.ErrorLayer().Error())
	}
	out := p.Layer(LayerTypePCECP).(*PCECP)
	if len(out.Prefixes) != 1 || len(out.Flows) != 1 || len(out.Loads) != 1 {
		t.Fatalf("records lost: %+v", out)
	}
}

// truncationCases builds one valid serialized message per wire codec in
// the package: every PCECP message shape and every LISP control message,
// plus a DNS reply.
func truncationCases(t *testing.T) map[string][]byte {
	t.Helper()
	locs := []LISPLocator{
		{Priority: 1, Weight: 60, Reachable: true, Addr: rlocS},
		{Priority: 1, Weight: 40, Reachable: true, Addr: rlocD},
	}
	record := LISPMapRecord{TTL: 300, EIDPrefix: netaddr.MustParsePrefix("12.1.0.0/16"), Authoritative: true, Locators: locs}
	dns := &DNS{
		ID: 1, QR: true, AA: true,
		Questions: []DNSQuestion{{Name: "h.example", Type: DNSTypeA, Class: DNSClassIN}},
		Answers:   []DNSResourceRecord{{Name: "h.example", Type: DNSTypeA, Class: DNSClassIN, TTL: 60, IP: ed}},
	}
	cases := map[string][]byte{
		"PCECP/EncapDNSReply": Serialize(&PCECP{
			Version: PCECPVersion, Type: PCECPEncapDNSReply, Nonce: 1, PCEAddr: pceD,
			Prefixes: []PCEPrefixMapping{{Prefix: netaddr.MustParsePrefix("12.1.0.0/16"), TTL: 300, Locators: locs}},
		}, dns),
		"PCECP/MappingPush": Serialize(&PCECP{
			Version: PCECPVersion, Type: PCECPMappingPush, Nonce: 2, PCEAddr: pceD,
			Flows: []PCEFlowMapping{{TTL: 60, SrcEID: es, DstEID: ed, SrcRLOC: rlocS, DstRLOC: rlocD}},
		}),
		"PCECP/ReverseMapPush": Serialize(&PCECP{
			Version: PCECPVersion, Type: PCECPReverseMapPush, Nonce: 3, PCEAddr: pceD,
			Flows: []PCEFlowMapping{{TTL: 60, SrcEID: ed, DstEID: es, SrcRLOC: rlocD, DstRLOC: rlocS}},
		}),
		"PCECP/MappingAck": Serialize(&PCECP{Version: PCECPVersion, Type: PCECPMappingAck, Nonce: 4}),
		"PCECP/MapFetch": Serialize(&PCECP{
			Version: PCECPVersion, Type: PCECPMapFetch, Nonce: 5, PCEAddr: pceD,
			Flows: []PCEFlowMapping{{DstEID: ed, SrcRLOC: dnsS}},
		}),
		"PCECP/MapFetchReply": Serialize(&PCECP{
			Version: PCECPVersion, Type: PCECPMapFetchReply, Nonce: 6, PCEAddr: pceD,
			Prefixes: []PCEPrefixMapping{{Prefix: netaddr.MustParsePrefix("12.1.0.0/16"), TTL: 300, Locators: locs}},
		}),
		"PCECP/LoadReport": Serialize(&PCECP{
			Version: PCECPVersion, Type: PCECPLoadReport, Nonce: 7,
			Loads: []PCELoadRecord{{RLOC: rlocS, OutBytes: 1, InBytes: 2, CapacityBps: 3, WindowMs: 4}},
		}),
		"PCECP/MappingUpdate": Serialize(&PCECP{
			Version: PCECPVersion, Type: PCECPMappingUpdate, Nonce: 8, PCEAddr: pceD,
			Prefixes: []PCEPrefixMapping{{Prefix: netaddr.MustParsePrefix("12.1.0.0/16"), TTL: 300, Locators: locs}},
		}),
		"LISP/MapRequest": Serialize(&LISPMapRequest{
			Nonce: 9, Probe: true, ITRRLOCs: []netaddr.Addr{rlocS},
			EIDPrefixes: []netaddr.Prefix{netaddr.HostPrefix(ed)},
		}),
		"LISP/MapReply":    Serialize(&LISPMapReply{Nonce: 10, Records: []LISPMapRecord{record}}),
		"LISP/MapRegister": Serialize(&LISPMapRegister{Nonce: 11, WantNotify: true, AuthData: []byte("k"), Records: []LISPMapRecord{record}}),
		"LISP/MapNotify":   Serialize(&LISPMapNotify{LISPMapRegister: LISPMapRegister{Nonce: 12, AuthData: []byte("k"), Records: []LISPMapRecord{record}}}),
		"DNS/reply":        Serialize(dns),
		// Signed variants: the S-bit auth block of the reply plane and
		// the authenticated PCECP channel (E13's defense layers).
		"LISP/MapReplySigned": Serialize(&LISPMapReply{
			Nonce: 13, KeyID: 1, AuthKey: []byte("reply-key"), Records: []LISPMapRecord{record},
		}),
		"LISP/MapReplySignedNegative": Serialize(&LISPMapReply{
			Nonce: 14, KeyID: 1, AuthKey: []byte("reply-key"),
		}),
		"PCECP/MapFetchSigned": Serialize(&PCECP{
			Version: PCECPVersion, Type: PCECPMapFetch, Nonce: 15, PCEAddr: pceD,
			KeyID: 1, AuthKey: []byte("pcecp-key"),
			Flows: []PCEFlowMapping{{DstEID: ed, SrcRLOC: dnsS}},
		}),
		"PCECP/MappingPushSigned": Serialize(&PCECP{
			Version: PCECPVersion, Type: PCECPMappingPush, Nonce: 16, PCEAddr: pceD,
			KeyID: 1, AuthKey: []byte("pcecp-key"),
			Flows: []PCEFlowMapping{{TTL: 60, SrcEID: es, DstEID: ed, SrcRLOC: rlocS, DstRLOC: rlocD}},
		}),
	}
	return cases
}

// TestTruncatedDecodesDoNotPanic is the fuzz-style robustness pass: a
// decoder fed any prefix of a valid message may reject it, but must
// never panic or accept records past the cut.
func TestTruncatedDecodesDoNotPanic(t *testing.T) {
	first := func(name string) Decoder {
		if name[0] == 'P' {
			return LayerTypePCECP
		}
		if name[0] == 'D' {
			return LayerTypeDNS
		}
		return LayerTypeLISPControl
	}
	for name, data := range truncationCases(t) {
		for cut := 0; cut <= len(data); cut++ {
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("%s truncated to %d/%d bytes panicked: %v", name, cut, len(data), r)
					}
				}()
				p := NewPacket(data[:cut], first(name), NoCopy)
				_ = p.String()
				if cut == len(data) && p.ErrorLayer() != nil {
					t.Fatalf("%s full message failed to decode: %v", name, p.ErrorLayer().Error())
				}
			}()
		}
	}
}

// TestMutatedSignedMessagesFailVerify is the bit-flip complement to the
// truncation pass: every single-bit mutation of a signed message must
// either fail to decode or fail HMAC verification — the auth block covers
// the whole message, so there is no mutable bit an attacker can use.
func TestMutatedSignedMessagesFailVerify(t *testing.T) {
	key := []byte("mutation-key")
	record := LISPMapRecord{
		TTL: 300, EIDPrefix: netaddr.MustParsePrefix("12.1.0.0/16"), Authoritative: true,
		Locators: []LISPLocator{{Priority: 1, Weight: 100, Reachable: true, Addr: rlocD}},
	}

	reply := Serialize(&LISPMapReply{Nonce: 99, KeyID: 1, AuthKey: key, Records: []LISPMapRecord{record}})
	if p := NewPacket(reply, LayerTypeLISPControl, Default); p.ErrorLayer() != nil ||
		!p.Layer(LayerTypeLISPMapReply).(*LISPMapReply).VerifyAuth(key) {
		t.Fatal("unmutated signed Map-Reply must verify")
	}
	for i := range reply {
		for bit := 0; bit < 8; bit++ {
			mut := make([]byte, len(reply))
			copy(mut, reply)
			mut[i] ^= 1 << bit
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("Map-Reply bit %d of byte %d panicked: %v", bit, i, r)
					}
				}()
				p := NewPacket(mut, LayerTypeLISPControl, Default)
				if l := p.Layer(LayerTypeLISPMapReply); l != nil {
					if l.(*LISPMapReply).VerifyAuth(key) {
						t.Fatalf("Map-Reply with bit %d of byte %d flipped still verifies", bit, i)
					}
				}
			}()
		}
	}

	fetch := Serialize(&PCECP{
		Version: PCECPVersion, Type: PCECPMapFetch, Nonce: 98, PCEAddr: pceD,
		KeyID: 1, AuthKey: key,
		Flows: []PCEFlowMapping{{DstEID: ed, SrcRLOC: dnsS}},
	})
	if p := NewPacket(fetch, LayerTypePCECP, Default); p.ErrorLayer() != nil ||
		!p.Layer(LayerTypePCECP).(*PCECP).VerifyAuth(key) {
		t.Fatal("unmutated signed MapFetch must verify")
	}
	for i := range fetch {
		for bit := 0; bit < 8; bit++ {
			mut := make([]byte, len(fetch))
			copy(mut, fetch)
			mut[i] ^= 1 << bit
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("MapFetch bit %d of byte %d panicked: %v", bit, i, r)
					}
				}()
				p := NewPacket(mut, LayerTypePCECP, Default)
				if l := p.Layer(LayerTypePCECP); l != nil {
					if l.(*PCECP).VerifyAuth(key) {
						t.Fatalf("MapFetch with bit %d of byte %d flipped still verifies", bit, i)
					}
				}
			}()
		}
	}

	// Verification is key-bound, not just integrity-bound.
	p := NewPacket(reply, LayerTypeLISPControl, Default)
	if p.Layer(LayerTypeLISPMapReply).(*LISPMapReply).VerifyAuth([]byte("wrong-key")) {
		t.Fatal("signed Map-Reply verifies under the wrong key")
	}
}
