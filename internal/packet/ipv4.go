package packet

import (
	"fmt"

	"github.com/pcelisp/pcelisp/internal/netaddr"
)

// IPProtocol is the IPv4 protocol field.
type IPProtocol uint8

// Protocol numbers used in this codebase.
const (
	// IPProtocolTCP is protocol 6.
	IPProtocolTCP IPProtocol = 6
	// IPProtocolUDP is protocol 17.
	IPProtocolUDP IPProtocol = 17
	// IPProtocolIPv4 is IP-in-IP (protocol 4); LISP does not use it — LISP
	// tunnels are IP/UDP — but the simulator's raw tunnel tests do.
	IPProtocolIPv4 IPProtocol = 4
)

// String names the protocol.
func (p IPProtocol) String() string {
	switch p {
	case IPProtocolTCP:
		return "TCP"
	case IPProtocolUDP:
		return "UDP"
	case IPProtocolIPv4:
		return "IPv4"
	default:
		return fmt.Sprintf("IPProtocol(%d)", uint8(p))
	}
}

// nextDecoder returns the decoder for this protocol's payload.
func (p IPProtocol) nextDecoder() Decoder {
	switch p {
	case IPProtocolTCP:
		return LayerTypeTCP
	case IPProtocolUDP:
		return LayerTypeUDP
	case IPProtocolIPv4:
		return LayerTypeIPv4
	default:
		return LayerTypePayload
	}
}

// IPv4 header field offsets and flags.
const (
	// IPv4HeaderLen is the length of an option-less IPv4 header.
	IPv4HeaderLen = 20
	// IPv4DontFragment is the DF flag bit.
	IPv4DontFragment = 0x2
	// IPv4MoreFragments is the MF flag bit.
	IPv4MoreFragments = 0x1
	// DefaultTTL is the initial TTL stamped on generated packets.
	DefaultTTL = 64
)

// IPv4 is the Internet Protocol version 4 header.
type IPv4 struct {
	BaseLayer
	Version    uint8
	IHL        uint8 // header length in 32-bit words
	TOS        uint8
	Length     uint16 // total length including header
	ID         uint16
	Flags      uint8  // 3 bits: evil/DF/MF
	FragOffset uint16 // 13 bits
	TTL        uint8
	Protocol   IPProtocol
	Checksum   uint16
	SrcIP      netaddr.Addr
	DstIP      netaddr.Addr
	Options    []byte
}

// LayerType returns LayerTypeIPv4.
func (*IPv4) LayerType() LayerType { return LayerTypeIPv4 }

// NetworkFlow returns the src->dst address flow.
func (ip *IPv4) NetworkFlow() Flow {
	return NewFlow(NewIPv4Endpoint(ip.SrcIP), NewIPv4Endpoint(ip.DstIP))
}

func decodeIPv4(data []byte, p PacketBuilder) error {
	if len(data) < IPv4HeaderLen {
		return fmt.Errorf("IPv4: %d bytes is too short for a header", len(data))
	}
	ip := &IPv4{
		Version:    data[0] >> 4,
		IHL:        data[0] & 0x0f,
		TOS:        data[1],
		Length:     uint16(data[2])<<8 | uint16(data[3]),
		ID:         uint16(data[4])<<8 | uint16(data[5]),
		Flags:      data[6] >> 5,
		FragOffset: (uint16(data[6]&0x1f)<<8 | uint16(data[7])),
		TTL:        data[8],
		Protocol:   IPProtocol(data[9]),
		Checksum:   uint16(data[10])<<8 | uint16(data[11]),
		SrcIP:      netaddr.AddrFromBytes(data[12:16]),
		DstIP:      netaddr.AddrFromBytes(data[16:20]),
	}
	if ip.Version != 4 {
		return fmt.Errorf("IPv4: bad version %d", ip.Version)
	}
	hl := int(ip.IHL) * 4
	if hl < IPv4HeaderLen || hl > len(data) {
		return fmt.Errorf("IPv4: bad header length %d (packet %d)", hl, len(data))
	}
	if int(ip.Length) < hl || int(ip.Length) > len(data) {
		return fmt.Errorf("IPv4: bad total length %d (packet %d)", ip.Length, len(data))
	}
	if hl > IPv4HeaderLen {
		ip.Options = data[IPv4HeaderLen:hl]
	}
	ip.Contents = data[:hl]
	ip.Payload = data[hl:ip.Length]
	p.AddLayer(ip)
	p.SetNetworkLayer(ip)
	return p.NextDecoder(ip.Protocol.nextDecoder())
}

// SerializeTo implements SerializableLayer.
func (ip *IPv4) SerializeTo(b SerializeBuffer, opts SerializeOptions) error {
	if len(ip.Options)%4 != 0 {
		return fmt.Errorf("IPv4: options length %d is not a multiple of 4", len(ip.Options))
	}
	hl := IPv4HeaderLen + len(ip.Options)
	payloadLen := len(b.Bytes())
	bytes, err := b.PrependBytes(hl)
	if err != nil {
		return err
	}
	if opts.FixLengths {
		ip.Version = 4
		ip.IHL = uint8(hl / 4)
		ip.Length = uint16(hl + payloadLen)
	}
	bytes[0] = ip.Version<<4 | ip.IHL
	bytes[1] = ip.TOS
	bytes[2], bytes[3] = byte(ip.Length>>8), byte(ip.Length)
	bytes[4], bytes[5] = byte(ip.ID>>8), byte(ip.ID)
	bytes[6] = ip.Flags<<5 | byte(ip.FragOffset>>8)
	bytes[7] = byte(ip.FragOffset)
	bytes[8] = ip.TTL
	bytes[9] = byte(ip.Protocol)
	bytes[10], bytes[11] = 0, 0
	ip.SrcIP.PutBytes(bytes[12:16])
	ip.DstIP.PutBytes(bytes[16:20])
	copy(bytes[IPv4HeaderLen:], ip.Options)
	if opts.ComputeChecksums {
		ip.Checksum = Checksum(bytes[:hl])
	}
	bytes[10], bytes[11] = byte(ip.Checksum>>8), byte(ip.Checksum)
	return nil
}

// VerifyIPv4Checksum reports whether the header checksum of the IPv4
// packet at the start of data is correct.
func VerifyIPv4Checksum(data []byte) bool {
	if len(data) < IPv4HeaderLen {
		return false
	}
	hl := int(data[0]&0x0f) * 4
	if hl < IPv4HeaderLen || hl > len(data) {
		return false
	}
	return Checksum(data[:hl]) == 0
}

// PeekIPv4Dst extracts the destination address from raw IPv4 packet bytes
// without a full decode. Forwarding nodes call this on every hop.
func PeekIPv4Dst(data []byte) (netaddr.Addr, bool) {
	if len(data) < IPv4HeaderLen || data[0]>>4 != 4 {
		return 0, false
	}
	return netaddr.AddrFromBytes(data[16:20]), true
}

// PeekIPv4Src extracts the source address from raw IPv4 packet bytes.
func PeekIPv4Src(data []byte) (netaddr.Addr, bool) {
	if len(data) < IPv4HeaderLen || data[0]>>4 != 4 {
		return 0, false
	}
	return netaddr.AddrFromBytes(data[12:16]), true
}

// PeekUDPPayload extracts the UDP ports and payload from raw IPv4/UDP
// packet bytes without building layer structs, applying exactly the
// validation the IPv4 and UDP decoders would. ok is false when the bytes
// are not a well-formed IPv4/UDP datagram; callers must then fall back to
// the decoding path so malformed traffic is accounted identically.
func PeekUDPPayload(data []byte) (src, dst uint16, payload []byte, ok bool) {
	if len(data) < IPv4HeaderLen || data[0]>>4 != 4 {
		return 0, 0, nil, false
	}
	hl := int(data[0]&0x0f) * 4
	totalLen := int(data[2])<<8 | int(data[3])
	if hl < IPv4HeaderLen || totalLen < hl || totalLen > len(data) {
		return 0, 0, nil, false
	}
	if IPProtocol(data[9]) != IPProtocolUDP {
		return 0, 0, nil, false
	}
	dgram := data[hl:totalLen]
	if len(dgram) < UDPHeaderLen {
		return 0, 0, nil, false
	}
	udpLen := int(dgram[4])<<8 | int(dgram[5])
	if udpLen < UDPHeaderLen || udpLen > len(dgram) {
		return 0, 0, nil, false
	}
	return uint16(dgram[0])<<8 | uint16(dgram[1]),
		uint16(dgram[2])<<8 | uint16(dgram[3]),
		dgram[UDPHeaderLen:udpLen], true
}

// PeekTCPSegment extracts the TCP flag byte and payload length from raw
// IPv4/TCP packet bytes without building layer structs, applying the same
// validation as the IPv4 and TCP decoders. End-host data hot paths use it
// to count established-flow segments without decoding; anything that
// fails validation (or needs the full header) goes through the decoder.
func PeekTCPSegment(data []byte) (flags byte, payloadLen int, ok bool) {
	if len(data) < IPv4HeaderLen || data[0]>>4 != 4 {
		return 0, 0, false
	}
	hl := int(data[0]&0x0f) * 4
	totalLen := int(data[2])<<8 | int(data[3])
	if hl < IPv4HeaderLen || totalLen < hl || totalLen > len(data) {
		return 0, 0, false
	}
	if IPProtocol(data[9]) != IPProtocolTCP {
		return 0, 0, false
	}
	seg := data[hl:totalLen]
	if len(seg) < TCPHeaderLen {
		return 0, 0, false
	}
	doff := int(seg[12]>>4) * 4
	if doff < TCPHeaderLen || doff > len(seg) {
		return 0, 0, false
	}
	return seg[13], len(seg) - doff, true
}

// PatchIPv4TTL decrements the TTL in place and fixes the checksum
// incrementally (RFC 1624). It reports false when the TTL is already 0.
func PatchIPv4TTL(data []byte) bool {
	if len(data) < IPv4HeaderLen {
		return false
	}
	if data[8] == 0 {
		return false
	}
	data[8]--
	// Incremental update: HC' = ~(~HC + ~m + m') over the 16-bit word
	// containing TTL (bytes 8-9).
	old := uint32(uint16(data[8]+1)<<8 | uint16(data[9]))
	new := uint32(uint16(data[8])<<8 | uint16(data[9]))
	hc := uint32(uint16(data[10])<<8 | uint16(data[11]))
	sum := (^hc)&0xffff + (^old)&0xffff + new
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	hc = ^sum & 0xffff
	data[10], data[11] = byte(hc>>8), byte(hc)
	return true
}

// PatchIPv4Dst rewrites the destination address of the IPv4 packet in
// place and recomputes the header checksum. The simulator uses it for
// head-end replication of multicast control messages.
func PatchIPv4Dst(data []byte, dst netaddr.Addr) bool {
	if len(data) < IPv4HeaderLen {
		return false
	}
	hl := int(data[0]&0x0f) * 4
	if hl < IPv4HeaderLen || hl > len(data) {
		return false
	}
	dst.PutBytes(data[16:20])
	data[10], data[11] = 0, 0
	ck := Checksum(data[:hl])
	data[10], data[11] = byte(ck>>8), byte(ck)
	return true
}
