package packet

import "github.com/pcelisp/pcelisp/internal/netaddr"

// Checksum computes the RFC 1071 Internet checksum over data.
func Checksum(data []byte) uint16 {
	return finishChecksum(sumBytes(0, data))
}

// sumBytes adds data to a running 32-bit ones-complement accumulator.
func sumBytes(sum uint32, data []byte) uint32 {
	n := len(data)
	for i := 0; i+1 < n; i += 2 {
		sum += uint32(data[i])<<8 | uint32(data[i+1])
	}
	if n%2 == 1 {
		sum += uint32(data[n-1]) << 8
	}
	return sum
}

func finishChecksum(sum uint32) uint16 {
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// pseudoHeaderChecksum starts a transport checksum with the IPv4
// pseudo-header (RFC 768 / RFC 793): src, dst, zero+protocol, length.
func pseudoHeaderChecksum(src, dst netaddr.Addr, proto IPProtocol, length int) uint32 {
	var sum uint32
	sum += uint32(src >> 16)
	sum += uint32(src & 0xffff)
	sum += uint32(dst >> 16)
	sum += uint32(dst & 0xffff)
	sum += uint32(proto)
	sum += uint32(length)
	return sum
}
