package packet

import (
	"encoding/binary"

	"github.com/pcelisp/pcelisp/internal/netaddr"
)

// Checksum computes the RFC 1071 Internet checksum over data.
func Checksum(data []byte) uint16 {
	return finishChecksum(sumBytes(0, data))
}

// sumBytes adds data to a running 32-bit ones-complement accumulator.
// It consumes 8 bytes per step in a 64-bit accumulator: ones-complement
// addition is associative, so summing big-endian 32-bit words and folding
// the carries afterwards is congruent (mod 0xffff) to the word-at-a-time
// definition.
func sumBytes(sum uint32, data []byte) uint32 {
	s := uint64(sum)
	for len(data) >= 8 {
		s += uint64(binary.BigEndian.Uint32(data)) + uint64(binary.BigEndian.Uint32(data[4:]))
		data = data[8:]
	}
	if len(data) >= 4 {
		s += uint64(binary.BigEndian.Uint32(data))
		data = data[4:]
	}
	if len(data) >= 2 {
		s += uint64(binary.BigEndian.Uint16(data))
		data = data[2:]
	}
	if len(data) == 1 {
		s += uint64(data[0]) << 8
	}
	for s>>32 != 0 {
		s = s&0xffffffff + s>>32
	}
	return uint32(s)
}

func finishChecksum(sum uint32) uint16 {
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// pseudoHeaderChecksum starts a transport checksum with the IPv4
// pseudo-header (RFC 768 / RFC 793): src, dst, zero+protocol, length.
func pseudoHeaderChecksum(src, dst netaddr.Addr, proto IPProtocol, length int) uint32 {
	var sum uint32
	sum += uint32(src >> 16)
	sum += uint32(src & 0xffff)
	sum += uint32(dst >> 16)
	sum += uint32(dst & 0xffff)
	sum += uint32(proto)
	sum += uint32(length)
	return sum
}
