package packet

import (
	"crypto/hmac"
	"crypto/sha1"
	"fmt"

	"github.com/pcelisp/pcelisp/internal/netaddr"
)

// LISP control message types (first nibble of the message).
const (
	lispTypeMapRequest  = 1
	lispTypeMapReply    = 2
	lispTypeMapRegister = 3
	lispTypeMapNotify   = 4
	lispTypeECM         = 8
)

// Layer types for the individual control messages. The generic
// LayerTypeLISPControl decoder inspects the type nibble and adds one of
// these concrete layers.
var (
	// LayerTypeLISPMapRequest is a Map-Request message.
	LayerTypeLISPMapRequest = RegisterLayerType(100, LayerTypeMetadata{Name: "LISPMapRequest", Decoder: DecodeFunc(decodeLISPMapRequest)})
	// LayerTypeLISPMapReply is a Map-Reply message.
	LayerTypeLISPMapReply = RegisterLayerType(101, LayerTypeMetadata{Name: "LISPMapReply", Decoder: DecodeFunc(decodeLISPMapReply)})
	// LayerTypeLISPMapRegister is a Map-Register message.
	LayerTypeLISPMapRegister = RegisterLayerType(102, LayerTypeMetadata{Name: "LISPMapRegister", Decoder: DecodeFunc(decodeLISPMapRegister)})
	// LayerTypeLISPMapNotify is a Map-Notify message.
	LayerTypeLISPMapNotify = RegisterLayerType(103, LayerTypeMetadata{Name: "LISPMapNotify", Decoder: DecodeFunc(decodeLISPMapNotify)})
	// LayerTypeLISPECM is an Encapsulated Control Message.
	LayerTypeLISPECM = RegisterLayerType(104, LayerTypeMetadata{Name: "LISPECM", Decoder: DecodeFunc(decodeLISPECM)})
)

// decodeLISPControl dispatches on the control message type nibble.
func decodeLISPControl(data []byte, p PacketBuilder) error {
	if len(data) < 1 {
		return fmt.Errorf("LISPControl: empty message")
	}
	switch data[0] >> 4 {
	case lispTypeMapRequest:
		return decodeLISPMapRequest(data, p)
	case lispTypeMapReply:
		return decodeLISPMapReply(data, p)
	case lispTypeMapRegister:
		return decodeLISPMapRegister(data, p)
	case lispTypeMapNotify:
		return decodeLISPMapNotify(data, p)
	case lispTypeECM:
		return decodeLISPECM(data, p)
	default:
		return fmt.Errorf("LISPControl: unknown type %d", data[0]>>4)
	}
}

const afiIPv4 = 1

// LISPLocator is one RLOC entry of a mapping record (RFC 6830 §6.1.4).
type LISPLocator struct {
	// Priority selects among locators: lower is preferred; 255 means
	// "do not use".
	Priority uint8
	// Weight splits load among locators of equal priority.
	Weight uint8
	// MPriority and MWeight are the multicast equivalents.
	MPriority, MWeight uint8
	// Local is the L bit: the locator belongs to the sender.
	Local bool
	// Probe is the p bit: reply to a locator reachability probe.
	Probe bool
	// Reachable is the R bit.
	Reachable bool
	// Addr is the locator address.
	Addr netaddr.Addr
}

const lispLocatorLen = 12

func appendLocator(b []byte, l LISPLocator) []byte {
	var flags byte
	if l.Local {
		flags |= 0x04
	}
	if l.Probe {
		flags |= 0x02
	}
	if l.Reachable {
		flags |= 0x01
	}
	b = append(b, l.Priority, l.Weight, l.MPriority, l.MWeight, 0, flags, 0, afiIPv4)
	return l.Addr.AppendBytes(b)
}

func decodeLocator(data []byte) (LISPLocator, int, error) {
	if len(data) < lispLocatorLen {
		return LISPLocator{}, 0, fmt.Errorf("locator truncated (%d bytes)", len(data))
	}
	if afi := uint16(data[6])<<8 | uint16(data[7]); afi != afiIPv4 {
		return LISPLocator{}, 0, fmt.Errorf("locator AFI %d unsupported", afi)
	}
	return LISPLocator{
		Priority:  data[0],
		Weight:    data[1],
		MPriority: data[2],
		MWeight:   data[3],
		Local:     data[5]&0x04 != 0,
		Probe:     data[5]&0x02 != 0,
		Reachable: data[5]&0x01 != 0,
		Addr:      netaddr.AddrFromBytes(data[8:12]),
	}, lispLocatorLen, nil
}

// LISPMapRecord is one EID-to-RLOC mapping record carried by Map-Reply,
// Map-Register and Map-Notify messages.
type LISPMapRecord struct {
	// TTL is the record lifetime in seconds. (RFC 6830 uses minutes; the
	// simulator works in seconds for finer-grained ageing experiments.)
	TTL uint32
	// EIDPrefix is the EID range the record covers.
	EIDPrefix netaddr.Prefix
	// Action is the negative-reply action (0 = no action).
	Action uint8
	// Authoritative is the A bit.
	Authoritative bool
	// MapVersion is the 12-bit mapping version number.
	MapVersion uint16
	// Locators is the RLOC set.
	Locators []LISPLocator
}

const lispRecordFixedLen = 16

func appendMapRecord(b []byte, r LISPMapRecord) ([]byte, error) {
	if len(r.Locators) > 255 {
		return nil, fmt.Errorf("record has %d locators (max 255)", len(r.Locators))
	}
	b = append(b, byte(r.TTL>>24), byte(r.TTL>>16), byte(r.TTL>>8), byte(r.TTL))
	actA := r.Action << 5
	if r.Authoritative {
		actA |= 0x10
	}
	b = append(b, byte(len(r.Locators)), byte(r.EIDPrefix.Bits()), actA, 0)
	b = append(b, byte(r.MapVersion>>8), byte(r.MapVersion), 0, afiIPv4)
	b = r.EIDPrefix.Addr().AppendBytes(b)
	for _, l := range r.Locators {
		b = appendLocator(b, l)
	}
	return b, nil
}

func decodeMapRecord(data []byte) (LISPMapRecord, int, error) {
	if len(data) < lispRecordFixedLen {
		return LISPMapRecord{}, 0, fmt.Errorf("record truncated (%d bytes)", len(data))
	}
	r := LISPMapRecord{
		TTL:           uint32(data[0])<<24 | uint32(data[1])<<16 | uint32(data[2])<<8 | uint32(data[3]),
		Action:        data[6] >> 5,
		Authoritative: data[6]&0x10 != 0,
		MapVersion:    uint16(data[8])<<8 | uint16(data[9]),
	}
	locCount := int(data[4])
	maskLen := int(data[5])
	if maskLen > 32 {
		return LISPMapRecord{}, 0, fmt.Errorf("record mask length %d", maskLen)
	}
	if afi := uint16(data[10])<<8 | uint16(data[11]); afi != afiIPv4 {
		return LISPMapRecord{}, 0, fmt.Errorf("record EID AFI %d unsupported", afi)
	}
	r.EIDPrefix = netaddr.PrefixFrom(netaddr.AddrFromBytes(data[12:16]), maskLen)
	off := lispRecordFixedLen
	for i := 0; i < locCount; i++ {
		loc, n, err := decodeLocator(data[off:])
		if err != nil {
			return LISPMapRecord{}, 0, fmt.Errorf("record locator %d: %w", i, err)
		}
		r.Locators = append(r.Locators, loc)
		off += n
	}
	return r, off, nil
}

// BestLocator returns the usable locator with the lowest priority value,
// breaking ties by highest weight then lowest address for determinism.
func (r LISPMapRecord) BestLocator() (LISPLocator, bool) {
	best, found := LISPLocator{}, false
	for _, l := range r.Locators {
		if l.Priority == 255 || !l.Reachable {
			continue
		}
		if !found || l.Priority < best.Priority ||
			(l.Priority == best.Priority && l.Weight > best.Weight) ||
			(l.Priority == best.Priority && l.Weight == best.Weight && l.Addr < best.Addr) {
			best, found = l, true
		}
	}
	return best, found
}

// LISPMapRequest is the Map-Request control message (type 1).
type LISPMapRequest struct {
	BaseLayer
	// Authoritative (A) requests an authoritative reply only.
	Authoritative bool
	// MapDataPresent (M) indicates a piggybacked mapping record.
	MapDataPresent bool
	// Probe (P) marks an RLOC reachability probe.
	Probe bool
	// SMR (S) marks a solicit-map-request.
	SMR bool
	// Nonce correlates the reply.
	Nonce uint64
	// SourceEID is the querying host's EID (zero when unknown).
	SourceEID netaddr.Addr
	// ITRRLOCs lists the requester's RLOCs; replies go to one of these.
	ITRRLOCs []netaddr.Addr
	// EIDPrefixes are the queried EIDs (as host prefixes for single EIDs).
	EIDPrefixes []netaddr.Prefix
}

// LayerType returns LayerTypeLISPMapRequest.
func (*LISPMapRequest) LayerType() LayerType { return LayerTypeLISPMapRequest }

// Payload returns nil (application layer).
func (*LISPMapRequest) Payload() []byte { return nil }

// SerializeTo implements SerializableLayer.
func (m *LISPMapRequest) SerializeTo(b SerializeBuffer, _ SerializeOptions) error {
	if len(m.ITRRLOCs) < 1 || len(m.ITRRLOCs) > 32 {
		return fmt.Errorf("Map-Request needs 1..32 ITR-RLOCs, have %d", len(m.ITRRLOCs))
	}
	if len(m.EIDPrefixes) < 1 || len(m.EIDPrefixes) > 255 {
		return fmt.Errorf("Map-Request needs 1..255 records, have %d", len(m.EIDPrefixes))
	}
	var flags byte = lispTypeMapRequest << 4
	if m.Authoritative {
		flags |= 0x08
	}
	if m.MapDataPresent {
		flags |= 0x04
	}
	if m.Probe {
		flags |= 0x02
	}
	if m.SMR {
		flags |= 0x01
	}
	enc := []byte{flags, 0, byte(len(m.ITRRLOCs) - 1), byte(len(m.EIDPrefixes))}
	enc = appendUint64(enc, m.Nonce)
	if m.SourceEID.IsValid() {
		enc = append(enc, 0, afiIPv4)
		enc = m.SourceEID.AppendBytes(enc)
	} else {
		enc = append(enc, 0, 0)
	}
	for _, rloc := range m.ITRRLOCs {
		enc = append(enc, 0, afiIPv4)
		enc = rloc.AppendBytes(enc)
	}
	for _, p := range m.EIDPrefixes {
		enc = append(enc, 0, byte(p.Bits()), 0, afiIPv4)
		enc = p.Addr().AppendBytes(enc)
	}
	out, err := b.PrependBytes(len(enc))
	if err != nil {
		return err
	}
	copy(out, enc)
	return nil
}

func decodeLISPMapRequest(data []byte, p PacketBuilder) error {
	if len(data) < 12 {
		return fmt.Errorf("Map-Request: truncated header (%d bytes)", len(data))
	}
	if data[0]>>4 != lispTypeMapRequest {
		return fmt.Errorf("Map-Request: wrong type %d", data[0]>>4)
	}
	m := &LISPMapRequest{
		Authoritative:  data[0]&0x08 != 0,
		MapDataPresent: data[0]&0x04 != 0,
		Probe:          data[0]&0x02 != 0,
		SMR:            data[0]&0x01 != 0,
		Nonce:          readUint64(data[4:]),
	}
	itrCount := int(data[2]) + 1
	recCount := int(data[3])
	off := 12
	var err error
	if m.SourceEID, off, err = decodeAFIAddr(data, off); err != nil {
		return fmt.Errorf("Map-Request: source EID: %w", err)
	}
	for i := 0; i < itrCount; i++ {
		var a netaddr.Addr
		if a, off, err = decodeAFIAddr(data, off); err != nil {
			return fmt.Errorf("Map-Request: ITR-RLOC %d: %w", i, err)
		}
		m.ITRRLOCs = append(m.ITRRLOCs, a)
	}
	for i := 0; i < recCount; i++ {
		if off+8 > len(data) {
			return fmt.Errorf("Map-Request: record %d truncated", i)
		}
		maskLen := int(data[off+1])
		if maskLen > 32 {
			return fmt.Errorf("Map-Request: record %d mask length %d", i, maskLen)
		}
		if afi := uint16(data[off+2])<<8 | uint16(data[off+3]); afi != afiIPv4 {
			return fmt.Errorf("Map-Request: record %d AFI %d unsupported", i, afi)
		}
		m.EIDPrefixes = append(m.EIDPrefixes,
			netaddr.PrefixFrom(netaddr.AddrFromBytes(data[off+4:off+8]), maskLen))
		off += 8
	}
	m.Contents = data[:off]
	p.AddLayer(m)
	p.SetApplicationLayer(m)
	return nil
}

// decodeAFIAddr reads a (AFI, address) pair; AFI 0 means "no address".
func decodeAFIAddr(data []byte, off int) (netaddr.Addr, int, error) {
	if off+2 > len(data) {
		return 0, 0, fmt.Errorf("AFI truncated")
	}
	afi := uint16(data[off])<<8 | uint16(data[off+1])
	off += 2
	switch afi {
	case 0:
		return 0, off, nil
	case afiIPv4:
		if off+4 > len(data) {
			return 0, 0, fmt.Errorf("IPv4 address truncated")
		}
		return netaddr.AddrFromBytes(data[off : off+4]), off + 4, nil
	default:
		return 0, 0, fmt.Errorf("AFI %d unsupported", afi)
	}
}

// LISPMapReply is the Map-Reply control message (type 2).
//
// When the Security (S) bit is set the 12-byte header is followed by an
// authentication block — KeyID (2), AuthLen (2), AuthData — before the
// records, mirroring the Map-Register layout at the same byte offsets.
// The HMAC is computed over the whole message with the auth-data field
// zeroed, so an on-path attacker cannot splice forged records into a
// signed reply.
type LISPMapReply struct {
	BaseLayer
	// Probe (P) marks a probe reply.
	Probe bool
	// Echo (E) requests echo-nonce.
	Echo bool
	// Security (S) marks an authenticated reply carrying an auth block.
	Security bool
	// Nonce echoes the request nonce.
	Nonce uint64
	// KeyID selects the shared key (1 = HMAC-SHA1 here).
	KeyID uint16
	// AuthData is the HMAC over the message with this field zeroed.
	AuthData []byte
	// Records holds the mappings.
	Records []LISPMapRecord
	// AuthKey, when non-nil, makes SerializeTo compute AuthData and set
	// the Security bit. It is never serialized.
	AuthKey []byte
}

// LayerType returns LayerTypeLISPMapReply.
func (*LISPMapReply) LayerType() LayerType { return LayerTypeLISPMapReply }

// Payload returns nil (application layer).
func (*LISPMapReply) Payload() []byte { return nil }

// SerializeTo implements SerializableLayer. With a non-nil AuthKey and
// ComputeChecksums set, the HMAC is computed over the message with the
// auth-data field zeroed, as for Map-Register.
func (m *LISPMapReply) SerializeTo(b SerializeBuffer, opts SerializeOptions) error {
	if len(m.Records) > 255 {
		return fmt.Errorf("Map-Reply has %d records (max 255)", len(m.Records))
	}
	auth := m.AuthData
	if m.AuthKey != nil && opts.ComputeChecksums {
		auth = make([]byte, lispAuthLen)
	}
	signed := m.Security || len(auth) > 0
	var flags byte = lispTypeMapReply << 4
	if m.Probe {
		flags |= 0x08
	}
	if m.Echo {
		flags |= 0x04
	}
	if signed {
		flags |= 0x02
	}
	enc := []byte{flags, 0, 0, byte(len(m.Records))}
	enc = appendUint64(enc, m.Nonce)
	if signed {
		enc = append(enc, byte(m.KeyID>>8), byte(m.KeyID), byte(len(auth)>>8), byte(len(auth)))
		enc = append(enc, auth...)
	}
	var err error
	for _, r := range m.Records {
		if enc, err = appendMapRecord(enc, r); err != nil {
			return err
		}
	}
	if m.AuthKey != nil && opts.ComputeChecksums {
		mac := hmac.New(sha1.New, m.AuthKey)
		mac.Write(enc)
		m.AuthData = mac.Sum(nil)
		copy(enc[16:16+lispAuthLen], m.AuthData)
	}
	out, err := b.PrependBytes(len(enc))
	if err != nil {
		return err
	}
	copy(out, enc)
	return nil
}

func decodeLISPMapReply(data []byte, p PacketBuilder) error {
	if len(data) < 12 {
		return fmt.Errorf("Map-Reply: truncated header (%d bytes)", len(data))
	}
	if data[0]>>4 != lispTypeMapReply {
		return fmt.Errorf("Map-Reply: wrong type %d", data[0]>>4)
	}
	m := &LISPMapReply{
		Probe:    data[0]&0x08 != 0,
		Echo:     data[0]&0x04 != 0,
		Security: data[0]&0x02 != 0,
		Nonce:    readUint64(data[4:]),
	}
	recCount := int(data[3])
	off := 12
	if m.Security {
		if off+4 > len(data) {
			return fmt.Errorf("Map-Reply: auth header truncated")
		}
		m.KeyID = uint16(data[off])<<8 | uint16(data[off+1])
		authLen := int(uint16(data[off+2])<<8 | uint16(data[off+3]))
		off += 4
		if off+authLen > len(data) {
			return fmt.Errorf("Map-Reply: auth data truncated")
		}
		m.AuthData = data[off : off+authLen]
		off += authLen
	}
	for i := 0; i < recCount; i++ {
		r, n, err := decodeMapRecord(data[off:])
		if err != nil {
			return fmt.Errorf("Map-Reply: record %d: %w", i, err)
		}
		m.Records = append(m.Records, r)
		off += n
	}
	m.Contents = data[:off]
	p.AddLayer(m)
	p.SetApplicationLayer(m)
	return nil
}

// VerifyAuth recomputes the HMAC over the received Map-Reply bytes with
// the auth field zeroed and compares in constant time. A reply without an
// auth block never verifies.
func (m *LISPMapReply) VerifyAuth(key []byte) bool {
	if !m.Security || len(m.AuthData) != lispAuthLen || len(m.Contents) < 16+lispAuthLen {
		return false
	}
	msg := make([]byte, len(m.Contents))
	copy(msg, m.Contents)
	for i := 16; i < 16+lispAuthLen; i++ {
		msg[i] = 0
	}
	mac := hmac.New(sha1.New, key)
	mac.Write(msg)
	return hmac.Equal(mac.Sum(nil), m.AuthData)
}

// lispAuthLen is the HMAC-SHA1 authentication data length used by
// Map-Register and Map-Notify (key ID 1, RFC 6833 §4.4).
const lispAuthLen = sha1.Size

// LISPMapRegister is the Map-Register control message (type 3) sent by an
// ETR to its map-server, authenticated with HMAC-SHA1.
type LISPMapRegister struct {
	BaseLayer
	// ProxyReply (P) asks the map-server to proxy-reply on the ETR's behalf.
	ProxyReply bool
	// WantNotify (M) requests a Map-Notify acknowledgement.
	WantNotify bool
	// Nonce correlates the Map-Notify.
	Nonce uint64
	// KeyID selects the shared key (1 = HMAC-SHA1 here).
	KeyID uint16
	// AuthData is the HMAC over the message with this field zeroed.
	AuthData []byte
	// Records holds the registered mappings.
	Records []LISPMapRecord
	// AuthKey, when non-nil, makes SerializeTo compute AuthData.
	// It is never serialized.
	AuthKey []byte
}

// LayerType returns LayerTypeLISPMapRegister.
func (*LISPMapRegister) LayerType() LayerType { return LayerTypeLISPMapRegister }

// Payload returns nil (application layer).
func (*LISPMapRegister) Payload() []byte { return nil }

func appendRegisterBody(enc []byte, nonce uint64, keyID uint16, auth []byte, records []LISPMapRecord) ([]byte, error) {
	enc = appendUint64(enc, nonce)
	enc = append(enc, byte(keyID>>8), byte(keyID), byte(len(auth)>>8), byte(len(auth)))
	enc = append(enc, auth...)
	var err error
	for _, r := range records {
		if enc, err = appendMapRecord(enc, r); err != nil {
			return nil, err
		}
	}
	return enc, nil
}

// SerializeTo implements SerializableLayer. With a non-nil AuthKey and
// ComputeChecksums set, the HMAC is computed over the message with the
// auth-data field zeroed, per RFC 6833.
func (m *LISPMapRegister) SerializeTo(b SerializeBuffer, opts SerializeOptions) error {
	if len(m.Records) > 255 {
		return fmt.Errorf("Map-Register has %d records (max 255)", len(m.Records))
	}
	var flags byte = lispTypeMapRegister << 4
	if m.ProxyReply {
		flags |= 0x08
	}
	var b2 byte
	if m.WantNotify {
		b2 |= 0x01
	}
	auth := m.AuthData
	if m.AuthKey != nil && opts.ComputeChecksums {
		auth = make([]byte, lispAuthLen)
	}
	enc := []byte{flags, 0, b2, byte(len(m.Records))}
	enc, err := appendRegisterBody(enc, m.Nonce, m.KeyID, auth, m.Records)
	if err != nil {
		return err
	}
	if m.AuthKey != nil && opts.ComputeChecksums {
		mac := hmac.New(sha1.New, m.AuthKey)
		mac.Write(enc)
		m.AuthData = mac.Sum(nil)
		copy(enc[16:16+lispAuthLen], m.AuthData)
	}
	out, err := b.PrependBytes(len(enc))
	if err != nil {
		return err
	}
	copy(out, enc)
	return nil
}

func decodeLISPMapRegister(data []byte, p PacketBuilder) error {
	m := &LISPMapRegister{}
	off, err := m.decodeCommon(data, lispTypeMapRegister, "Map-Register")
	if err != nil {
		return err
	}
	m.ProxyReply = data[0]&0x08 != 0
	m.WantNotify = data[2]&0x01 != 0
	m.Contents = data[:off]
	p.AddLayer(m)
	p.SetApplicationLayer(m)
	return nil
}

func (m *LISPMapRegister) decodeCommon(data []byte, wantType byte, what string) (int, error) {
	if len(data) < 16 {
		return 0, fmt.Errorf("%s: truncated header (%d bytes)", what, len(data))
	}
	if data[0]>>4 != wantType {
		return 0, fmt.Errorf("%s: wrong type %d", what, data[0]>>4)
	}
	m.Nonce = readUint64(data[4:])
	m.KeyID = uint16(data[12])<<8 | uint16(data[13])
	authLen := int(uint16(data[14])<<8 | uint16(data[15]))
	if 16+authLen > len(data) {
		return 0, fmt.Errorf("%s: auth data truncated", what)
	}
	m.AuthData = data[16 : 16+authLen]
	recCount := int(data[3])
	off := 16 + authLen
	for i := 0; i < recCount; i++ {
		r, n, err := decodeMapRecord(data[off:])
		if err != nil {
			return 0, fmt.Errorf("%s: record %d: %w", what, i, err)
		}
		m.Records = append(m.Records, r)
		off += n
	}
	return off, nil
}

// VerifyAuth recomputes the HMAC over the received message bytes with the
// auth field zeroed and compares in constant time.
func (m *LISPMapRegister) VerifyAuth(key []byte) bool {
	if len(m.AuthData) != lispAuthLen || len(m.Contents) < 16+lispAuthLen {
		return false
	}
	msg := make([]byte, len(m.Contents))
	copy(msg, m.Contents)
	for i := 16; i < 16+lispAuthLen; i++ {
		msg[i] = 0
	}
	mac := hmac.New(sha1.New, key)
	mac.Write(msg)
	return hmac.Equal(mac.Sum(nil), m.AuthData)
}

// LISPMapNotify is the Map-Notify acknowledgement (type 4); same body
// layout as Map-Register.
type LISPMapNotify struct {
	LISPMapRegister
}

// LayerType returns LayerTypeLISPMapNotify.
func (*LISPMapNotify) LayerType() LayerType { return LayerTypeLISPMapNotify }

// SerializeTo implements SerializableLayer.
func (m *LISPMapNotify) SerializeTo(b SerializeBuffer, opts SerializeOptions) error {
	if len(m.Records) > 255 {
		return fmt.Errorf("Map-Notify has %d records (max 255)", len(m.Records))
	}
	auth := m.AuthData
	if m.AuthKey != nil && opts.ComputeChecksums {
		auth = make([]byte, lispAuthLen)
	}
	enc := []byte{lispTypeMapNotify << 4, 0, 0, byte(len(m.Records))}
	enc, err := appendRegisterBody(enc, m.Nonce, m.KeyID, auth, m.Records)
	if err != nil {
		return err
	}
	if m.AuthKey != nil && opts.ComputeChecksums {
		mac := hmac.New(sha1.New, m.AuthKey)
		mac.Write(enc)
		m.AuthData = mac.Sum(nil)
		copy(enc[16:16+lispAuthLen], m.AuthData)
	}
	out, err := b.PrependBytes(len(enc))
	if err != nil {
		return err
	}
	copy(out, enc)
	return nil
}

func decodeLISPMapNotify(data []byte, p PacketBuilder) error {
	m := &LISPMapNotify{}
	off, err := m.decodeCommon(data, lispTypeMapNotify, "Map-Notify")
	if err != nil {
		return err
	}
	m.Contents = data[:off]
	p.AddLayer(m)
	p.SetApplicationLayer(m)
	return nil
}

// LISPECM is the Encapsulated Control Message (type 8): a 4-byte header
// followed by a full inner IPv4/UDP control packet. Map-Resolvers receive
// Map-Requests inside ECMs.
type LISPECM struct {
	BaseLayer
	// Security (S) is unused here.
	Security bool
}

// LISPECMHeaderLen is the ECM header size.
const LISPECMHeaderLen = 4

// LayerType returns LayerTypeLISPECM.
func (*LISPECM) LayerType() LayerType { return LayerTypeLISPECM }

// SerializeTo implements SerializableLayer.
func (m *LISPECM) SerializeTo(b SerializeBuffer, _ SerializeOptions) error {
	bytes, err := b.PrependBytes(LISPECMHeaderLen)
	if err != nil {
		return err
	}
	bytes[0] = lispTypeECM << 4
	if m.Security {
		bytes[0] |= 0x08
	}
	bytes[1], bytes[2], bytes[3] = 0, 0, 0
	return nil
}

func decodeLISPECM(data []byte, p PacketBuilder) error {
	if len(data) < LISPECMHeaderLen {
		return fmt.Errorf("ECM: truncated header (%d bytes)", len(data))
	}
	if data[0]>>4 != lispTypeECM {
		return fmt.Errorf("ECM: wrong type %d", data[0]>>4)
	}
	m := &LISPECM{Security: data[0]&0x08 != 0}
	m.Contents = data[:LISPECMHeaderLen]
	m.Payload = data[LISPECMHeaderLen:]
	p.AddLayer(m)
	return p.NextDecoder(LayerTypeIPv4)
}

func appendUint64(b []byte, v uint64) []byte {
	return append(b, byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
		byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func readUint64(b []byte) uint64 {
	return uint64(b[0])<<56 | uint64(b[1])<<48 | uint64(b[2])<<40 | uint64(b[3])<<32 |
		uint64(b[4])<<24 | uint64(b[5])<<16 | uint64(b[6])<<8 | uint64(b[7])
}
