package packet

import (
	"fmt"
	"sync"
)

// LayerType identifies a protocol layer. Types below 1000 are reserved for
// the layers built into this package; callers may register their own with
// RegisterLayerType, mirroring gopacket's extension mechanism.
type LayerType int

// Built-in layer types.
const (
	// LayerTypeZero is the invalid zero LayerType.
	LayerTypeZero LayerType = iota
	// LayerTypeDecodeFailure marks bytes that failed to decode.
	LayerTypeDecodeFailure
	// LayerTypePayload is opaque application bytes.
	LayerTypePayload
	// LayerTypeIPv4 is the IPv4 header.
	LayerTypeIPv4
	// LayerTypeUDP is the UDP header.
	LayerTypeUDP
	// LayerTypeTCP is the TCP header.
	LayerTypeTCP
	// LayerTypeDNS is a DNS message.
	LayerTypeDNS
	// LayerTypeLISP is the LISP data-plane encapsulation header
	// (draft-farinacci-lisp-08 §5.2); its payload is the inner IPv4 packet.
	LayerTypeLISP
	// LayerTypeLISPControl is a LISP control message (Map-Request,
	// Map-Reply, Map-Register, Map-Notify or ECM).
	LayerTypeLISPControl
	// LayerTypePCECP is the PCE control-plane message introduced by the
	// paper: the UDP-encapsulated DNS reply carrying a mapping (step 6),
	// the mapping push to ITRs (step 7b) and the ETR reverse-mapping
	// multicast.
	LayerTypePCECP
)

// LayerTypeMetadata describes a registered LayerType.
type LayerTypeMetadata struct {
	// Name appears in Packet.String output.
	Name string
	// Decoder decodes a layer of this type.
	Decoder Decoder
}

var (
	layerTypeMu   sync.RWMutex
	layerTypeMeta = map[LayerType]LayerTypeMetadata{}
)

// RegisterLayerType registers a new layer type with its metadata. It
// panics if the type number is already taken, since that is a programming
// error caught at init time.
func RegisterLayerType(num int, meta LayerTypeMetadata) LayerType {
	t := LayerType(num)
	layerTypeMu.Lock()
	defer layerTypeMu.Unlock()
	if _, dup := layerTypeMeta[t]; dup {
		panic(fmt.Sprintf("packet: layer type %d registered twice", num))
	}
	layerTypeMeta[t] = meta
	return t
}

// OverrideLayerType replaces the metadata of an existing layer type. Tests
// use it to splice probe decoders in.
func OverrideLayerType(num int, meta LayerTypeMetadata) LayerType {
	t := LayerType(num)
	layerTypeMu.Lock()
	defer layerTypeMu.Unlock()
	layerTypeMeta[t] = meta
	return t
}

// String returns the registered name of t.
func (t LayerType) String() string {
	layerTypeMu.RLock()
	meta, ok := layerTypeMeta[t]
	layerTypeMu.RUnlock()
	if !ok {
		return fmt.Sprintf("LayerType(%d)", int(t))
	}
	return meta.Name
}

// Decode implements Decoder by delegating to the registered decoder for t,
// so LayerTypes can be used directly as NextDecoder arguments.
func (t LayerType) Decode(data []byte, p PacketBuilder) error {
	layerTypeMu.RLock()
	meta, ok := layerTypeMeta[t]
	layerTypeMu.RUnlock()
	if !ok || meta.Decoder == nil {
		return fmt.Errorf("packet: no decoder registered for %v", t)
	}
	return meta.Decoder.Decode(data, p)
}

func init() {
	for t, m := range map[LayerType]LayerTypeMetadata{
		LayerTypeDecodeFailure: {Name: "DecodeFailure"},
		LayerTypePayload:       {Name: "Payload", Decoder: DecodeFunc(decodePayload)},
		LayerTypeIPv4:          {Name: "IPv4", Decoder: DecodeFunc(decodeIPv4)},
		LayerTypeUDP:           {Name: "UDP", Decoder: DecodeFunc(decodeUDP)},
		LayerTypeTCP:           {Name: "TCP", Decoder: DecodeFunc(decodeTCP)},
		LayerTypeDNS:           {Name: "DNS", Decoder: DecodeFunc(decodeDNS)},
		LayerTypeLISP:          {Name: "LISP", Decoder: DecodeFunc(decodeLISP)},
		LayerTypeLISPControl:   {Name: "LISPControl", Decoder: DecodeFunc(decodeLISPControl)},
		LayerTypePCECP:         {Name: "PCECP", Decoder: DecodeFunc(decodePCECP)},
	} {
		layerTypeMeta[t] = m
	}
}

// UDP port numbers with registered meanings in this codebase.
const (
	// PortDNS is the DNS server port.
	PortDNS = 53
	// PortLISPData is the LISP data-plane encapsulation port (RFC-to-be 4341).
	PortLISPData = 4341
	// PortLISPControl is the LISP control-plane port (4342).
	PortLISPControl = 4342
	// PortPCECP is the paper's "special transport port P" listened on by
	// PCES for encapsulated DNS replies, and reused for mapping pushes.
	PortPCECP = 4344
	// PortRLOCProbe carries xTR RLOC-liveness probes (Map-Request with
	// the P bit) and their Map-Reply echoes. A dedicated port keeps the
	// prober off 4342, which mapping-system control agents own on the
	// same nodes.
	PortRLOCProbe = 4345
)

var (
	udpPortMu    sync.RWMutex
	udpPortTypes = map[uint16]LayerType{
		PortDNS:         LayerTypeDNS,
		PortLISPData:    LayerTypeLISP,
		PortLISPControl: LayerTypeLISPControl,
		PortPCECP:       LayerTypePCECP,
	}
)

// RegisterUDPPortLayerType maps a UDP port (source or destination) to the
// layer type used to decode its payload.
func RegisterUDPPortLayerType(port uint16, t LayerType) {
	udpPortMu.Lock()
	udpPortTypes[port] = t
	udpPortMu.Unlock()
}

func udpPortLayerType(src, dst uint16) Decoder {
	udpPortMu.RLock()
	defer udpPortMu.RUnlock()
	if t, ok := udpPortTypes[dst]; ok {
		return t
	}
	if t, ok := udpPortTypes[src]; ok {
		return t
	}
	return LayerTypePayload
}
