package packet

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// LayerType identifies a protocol layer. Types below 1000 are reserved for
// the layers built into this package; callers may register their own with
// RegisterLayerType, mirroring gopacket's extension mechanism.
type LayerType int

// Built-in layer types.
const (
	// LayerTypeZero is the invalid zero LayerType.
	LayerTypeZero LayerType = iota
	// LayerTypeDecodeFailure marks bytes that failed to decode.
	LayerTypeDecodeFailure
	// LayerTypePayload is opaque application bytes.
	LayerTypePayload
	// LayerTypeIPv4 is the IPv4 header.
	LayerTypeIPv4
	// LayerTypeUDP is the UDP header.
	LayerTypeUDP
	// LayerTypeTCP is the TCP header.
	LayerTypeTCP
	// LayerTypeDNS is a DNS message.
	LayerTypeDNS
	// LayerTypeLISP is the LISP data-plane encapsulation header
	// (draft-farinacci-lisp-08 §5.2); its payload is the inner IPv4 packet.
	LayerTypeLISP
	// LayerTypeLISPControl is a LISP control message (Map-Request,
	// Map-Reply, Map-Register, Map-Notify or ECM).
	LayerTypeLISPControl
	// LayerTypePCECP is the PCE control-plane message introduced by the
	// paper: the UDP-encapsulated DNS reply carrying a mapping (step 6),
	// the mapping push to ITRs (step 7b) and the ETR reverse-mapping
	// multicast.
	LayerTypePCECP
)

// LayerTypeMetadata describes a registered LayerType.
type LayerTypeMetadata struct {
	// Name appears in Packet.String output.
	Name string
	// Decoder decodes a layer of this type.
	Decoder Decoder
}

// The layer-type registry is copy-on-write: readers load an immutable map
// through one atomic pointer (registration clones and republishes), so the
// per-layer decode hot path pays no lock at all. Registration is rare —
// init time and test setup — so cloning is free in practice.
var (
	layerTypeMu   sync.Mutex // serializes writers only
	layerTypeMeta atomic.Pointer[map[LayerType]LayerTypeMetadata]
)

// loadLayerTypes tolerates the nil before first publication: package-level
// RegisterLayerType calls in other files run before this file's init.
func loadLayerTypes() map[LayerType]LayerTypeMetadata {
	if p := layerTypeMeta.Load(); p != nil {
		return *p
	}
	return nil
}

func cloneLayerTypes() map[LayerType]LayerTypeMetadata {
	old := loadLayerTypes()
	m := make(map[LayerType]LayerTypeMetadata, len(old)+1)
	for k, v := range old {
		m[k] = v
	}
	return m
}

// RegisterLayerType registers a new layer type with its metadata. It
// panics if the type number is already taken, since that is a programming
// error caught at init time.
func RegisterLayerType(num int, meta LayerTypeMetadata) LayerType {
	t := LayerType(num)
	layerTypeMu.Lock()
	defer layerTypeMu.Unlock()
	m := cloneLayerTypes()
	if _, dup := m[t]; dup {
		panic(fmt.Sprintf("packet: layer type %d registered twice", num))
	}
	m[t] = meta
	layerTypeMeta.Store(&m)
	return t
}

// OverrideLayerType replaces the metadata of an existing layer type. Tests
// use it to splice probe decoders in.
func OverrideLayerType(num int, meta LayerTypeMetadata) LayerType {
	t := LayerType(num)
	layerTypeMu.Lock()
	defer layerTypeMu.Unlock()
	m := cloneLayerTypes()
	m[t] = meta
	layerTypeMeta.Store(&m)
	return t
}

// String returns the registered name of t.
func (t LayerType) String() string {
	meta, ok := loadLayerTypes()[t]
	if !ok {
		return fmt.Sprintf("LayerType(%d)", int(t))
	}
	return meta.Name
}

// Decode implements Decoder by delegating to the registered decoder for t,
// so LayerTypes can be used directly as NextDecoder arguments.
func (t LayerType) Decode(data []byte, p PacketBuilder) error {
	meta, ok := loadLayerTypes()[t]
	if !ok || meta.Decoder == nil {
		return fmt.Errorf("packet: no decoder registered for %v", t)
	}
	return meta.Decoder.Decode(data, p)
}

func init() {
	// Merge under the writer lock: sibling files' package-level
	// RegisterLayerType calls may already have published entries.
	layerTypeMu.Lock()
	defer layerTypeMu.Unlock()
	m := cloneLayerTypes()
	for t, meta := range map[LayerType]LayerTypeMetadata{
		LayerTypeDecodeFailure: {Name: "DecodeFailure"},
		LayerTypePayload:       {Name: "Payload", Decoder: DecodeFunc(decodePayload)},
		LayerTypeIPv4:          {Name: "IPv4", Decoder: DecodeFunc(decodeIPv4)},
		LayerTypeUDP:           {Name: "UDP", Decoder: DecodeFunc(decodeUDP)},
		LayerTypeTCP:           {Name: "TCP", Decoder: DecodeFunc(decodeTCP)},
		LayerTypeDNS:           {Name: "DNS", Decoder: DecodeFunc(decodeDNS)},
		LayerTypeLISP:          {Name: "LISP", Decoder: DecodeFunc(decodeLISP)},
		LayerTypeLISPControl:   {Name: "LISPControl", Decoder: DecodeFunc(decodeLISPControl)},
		LayerTypePCECP:         {Name: "PCECP", Decoder: DecodeFunc(decodePCECP)},
	} {
		m[t] = meta
	}
	layerTypeMeta.Store(&m)
}

// UDP port numbers with registered meanings in this codebase.
const (
	// PortDNS is the DNS server port.
	PortDNS = 53
	// PortLISPData is the LISP data-plane encapsulation port (RFC-to-be 4341).
	PortLISPData = 4341
	// PortLISPControl is the LISP control-plane port (4342).
	PortLISPControl = 4342
	// PortPCECP is the paper's "special transport port P" listened on by
	// PCES for encapsulated DNS replies, and reused for mapping pushes.
	PortPCECP = 4344
	// PortRLOCProbe carries xTR RLOC-liveness probes (Map-Request with
	// the P bit) and their Map-Reply echoes. A dedicated port keeps the
	// prober off 4342, which mapping-system control agents own on the
	// same nodes.
	PortRLOCProbe = 4345
)

// The port registry is copy-on-write like the layer-type registry above:
// udpPortLayerType runs once per decoded UDP header, so its read path is a
// single atomic load plus map lookups on an immutable map.
var (
	udpPortMu    sync.Mutex // serializes writers only
	udpPortTypes atomic.Pointer[map[uint16]LayerType]
)

func init() {
	m := map[uint16]LayerType{
		PortDNS:         LayerTypeDNS,
		PortLISPData:    LayerTypeLISP,
		PortLISPControl: LayerTypeLISPControl,
		PortPCECP:       LayerTypePCECP,
	}
	udpPortTypes.Store(&m)
}

// RegisterUDPPortLayerType maps a UDP port (source or destination) to the
// layer type used to decode its payload.
func RegisterUDPPortLayerType(port uint16, t LayerType) {
	udpPortMu.Lock()
	defer udpPortMu.Unlock()
	old := *udpPortTypes.Load()
	m := make(map[uint16]LayerType, len(old)+1)
	for k, v := range old {
		m[k] = v
	}
	m[port] = t
	udpPortTypes.Store(&m)
}

func udpPortLayerType(src, dst uint16) Decoder {
	ports := *udpPortTypes.Load()
	if t, ok := ports[dst]; ok {
		return t
	}
	if t, ok := ports[src]; ok {
		return t
	}
	return LayerTypePayload
}
