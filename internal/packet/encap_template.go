package packet

import "github.com/pcelisp/pcelisp/internal/netaddr"

// EncapTemplateLen is the serialized outer-header size of a LISP data
// encapsulation: IPv4 / UDP / LISP.
const EncapTemplateLen = IPv4HeaderLen + UDPHeaderLen + LISPHeaderLen

// EncapTemplate is a pre-serialized LISP outer header for one (source
// RLOC, destination RLOC, port pair) tunnel. Building the template pays
// the full layer-by-layer serialization once; Encap then copies the fixed
// 36 bytes and patches only what varies per packet — the two length
// fields, the two checksums and the nonce — instead of re-serializing
// four layers. The produced bytes are bit-identical to
//
//	Serialize(&IPv4{TTL: DefaultTTL, Protocol: IPProtocolUDP, SrcIP: src, DstIP: dst},
//	          &UDP{SrcPort: sport, DstPort: dport},   // with checksum
//	          &LISP{NonceP: true, Nonce: nonce},
//	          Payload(inner))
//
// which the differential tests assert; any change to those layers'
// serialization must be mirrored here.
type EncapTemplate struct {
	hdr [EncapTemplateLen]byte
	// ipSum is the ones-complement sum of the 20-byte IPv4 header with
	// Length and Checksum zero; finishing it with the actual total length
	// yields the header checksum.
	ipSum uint32
	// udpSum is the ones-complement sum of the UDP pseudo-header (minus
	// the length, counted twice per packet), the port words and the LISP
	// flags word; adding the lengths, the nonce words and the inner bytes
	// yields the datagram checksum.
	udpSum uint32
}

// NewEncapTemplate builds the outer-header template for a tunnel.
func NewEncapTemplate(src, dst netaddr.Addr, sport, dport uint16) *EncapTemplate {
	t := &EncapTemplate{}
	b := t.hdr[:]
	// IPv4: version 4, IHL 5, TOS/ID/flags/frag zero, default TTL, UDP.
	b[0] = 4<<4 | 5
	b[8] = DefaultTTL
	b[9] = byte(IPProtocolUDP)
	src.PutBytes(b[12:16])
	dst.PutBytes(b[16:20])
	// UDP ports; lengths and checksums are patched per packet.
	b[20], b[21] = byte(sport>>8), byte(sport)
	b[22], b[23] = byte(dport>>8), byte(dport)
	// LISP: N bit set, nonce patched per packet, word2 zero.
	b[28] = 0x80
	t.ipSum = sumBytes(0, b[:IPv4HeaderLen])
	// The LISP flags byte sits at an even offset in the UDP datagram, so
	// its word contribution is 0x8000 plus the nonce's high byte.
	t.udpSum = pseudoHeaderChecksum(src, dst, IPProtocolUDP, 0) +
		uint32(sport) + uint32(dport) + 0x8000
	return t
}

// Encap wraps inner in the templated outer header with the given 24-bit
// nonce, returning a freshly allocated packet (the only allocation on
// this path).
func (t *EncapTemplate) Encap(inner []byte, nonce uint32) []byte {
	nonce &= 0xffffff
	total := EncapTemplateLen + len(inner)
	out := make([]byte, total)
	copy(out, t.hdr[:])
	copy(out[EncapTemplateLen:], inner)
	// IPv4 total length and header checksum.
	out[2], out[3] = byte(total>>8), byte(total)
	ipck := finishChecksum(t.ipSum + uint32(total))
	out[10], out[11] = byte(ipck>>8), byte(ipck)
	// UDP length (header + LISP + inner) and LISP nonce.
	udpLen := UDPHeaderLen + LISPHeaderLen + len(inner)
	out[24], out[25] = byte(udpLen>>8), byte(udpLen)
	out[29], out[30], out[31] = byte(nonce>>16), byte(nonce>>8), byte(nonce)
	// UDP checksum: the length appears twice (pseudo-header and header
	// field); the LISP header is even-aligned, so the inner bytes sum
	// composes additively.
	sum := t.udpSum + 2*uint32(udpLen) + (nonce >> 16) + (nonce & 0xffff)
	ck := finishChecksum(sumBytes(sum, inner))
	if ck == 0 {
		ck = 0xffff // 0 is reserved for "no checksum"
	}
	out[26], out[27] = byte(ck>>8), byte(ck)
	return out
}
