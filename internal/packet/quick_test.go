package packet

import (
	"reflect"
	"testing"
	"testing/quick"

	"github.com/pcelisp/pcelisp/internal/netaddr"
)

// Property-based round trips for the control-message codecs: any
// structurally valid message must survive serialize -> decode exactly.

func normLocators(raw []uint32, n int) []LISPLocator {
	if n <= 0 {
		return nil
	}
	out := make([]LISPLocator, 0, n)
	for i := 0; i < n && i < len(raw); i++ {
		v := raw[i]
		out = append(out, LISPLocator{
			Priority:  uint8(v),
			Weight:    uint8(v >> 8),
			MPriority: uint8(v >> 16),
			MWeight:   uint8(v >> 24),
			Local:     v&1 != 0,
			Probe:     v&2 != 0,
			Reachable: v&4 != 0,
			Addr:      netaddr.Addr(v*2654435761 + 1),
		})
	}
	return out
}

func TestQuickMapReplyRoundTrip(t *testing.T) {
	f := func(nonce uint64, ttl uint32, addr uint32, bits uint8, locRaw []uint32, nLoc uint8) bool {
		rec := LISPMapRecord{
			TTL:           ttl,
			EIDPrefix:     netaddr.PrefixFrom(netaddr.Addr(addr), int(bits%33)),
			Action:        uint8(nonce % 8),
			Authoritative: nonce%2 == 0,
			MapVersion:    uint16(ttl % 4096),
			Locators:      normLocators(locRaw, int(nLoc%5)),
		}
		in := &LISPMapReply{Nonce: nonce, Probe: ttl%2 == 0, Records: []LISPMapRecord{rec}}
		data := Serialize(in)
		p := NewPacket(data, LayerTypeLISPControl, Default)
		l := p.Layer(LayerTypeLISPMapReply)
		if l == nil {
			return false
		}
		out := l.(*LISPMapReply)
		if out.Nonce != in.Nonce || out.Probe != in.Probe || len(out.Records) != 1 {
			return false
		}
		got := out.Records[0]
		if got.TTL != rec.TTL || got.EIDPrefix != rec.EIDPrefix ||
			got.Action != rec.Action || got.Authoritative != rec.Authoritative ||
			got.MapVersion != rec.MapVersion {
			return false
		}
		if len(got.Locators) != len(rec.Locators) {
			return false
		}
		for i := range got.Locators {
			if got.Locators[i] != rec.Locators[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMapRequestRoundTrip(t *testing.T) {
	f := func(nonce uint64, src uint32, itrs []uint32, eids []uint32, flags uint8) bool {
		in := &LISPMapRequest{
			Authoritative:  flags&1 != 0,
			MapDataPresent: flags&2 != 0,
			Probe:          flags&4 != 0,
			SMR:            flags&8 != 0,
			Nonce:          nonce,
			SourceEID:      netaddr.Addr(src),
		}
		for i := 0; i < len(itrs)%32+1; i++ {
			v := uint32(i) + 1
			if i < len(itrs) {
				v = itrs[i] | 1
			}
			in.ITRRLOCs = append(in.ITRRLOCs, netaddr.Addr(v))
		}
		for i := 0; i < len(eids)%8+1; i++ {
			v := uint32(i) * 7
			if i < len(eids) {
				v = eids[i]
			}
			in.EIDPrefixes = append(in.EIDPrefixes, netaddr.PrefixFrom(netaddr.Addr(v), int(v%33)))
		}
		data := Serialize(in)
		p := NewPacket(data, LayerTypeLISPControl, Default)
		l := p.Layer(LayerTypeLISPMapRequest)
		if l == nil {
			return false
		}
		out := l.(*LISPMapRequest)
		return out.Nonce == in.Nonce &&
			out.Authoritative == in.Authoritative &&
			out.MapDataPresent == in.MapDataPresent &&
			out.Probe == in.Probe && out.SMR == in.SMR &&
			out.SourceEID == in.SourceEID &&
			reflect.DeepEqual(out.ITRRLOCs, in.ITRRLOCs) &&
			reflect.DeepEqual(out.EIDPrefixes, in.EIDPrefixes)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickPCECPRoundTrip(t *testing.T) {
	f := func(nonce uint64, pce uint32, typ uint8, flows []uint32, prefixes []uint32) bool {
		in := &PCECP{
			Version: PCECPVersion,
			Type:    PCECPType(typ%6 + 1),
			Nonce:   nonce,
			PCEAddr: netaddr.Addr(pce),
		}
		if in.Type == PCECPEncapDNSReply {
			in.Type = PCECPMappingPush // the DNS-payload variant is covered elsewhere
		}
		for i := 0; i < len(flows)%6; i++ {
			v := flows[i]
			in.Flows = append(in.Flows, PCEFlowMapping{
				TTL:     v,
				SrcEID:  netaddr.Addr(v + 1),
				DstEID:  netaddr.Addr(v + 2),
				SrcRLOC: netaddr.Addr(v + 3),
				DstRLOC: netaddr.Addr(v + 4),
			})
		}
		for i := 0; i < len(prefixes)%4; i++ {
			v := prefixes[i]
			in.Prefixes = append(in.Prefixes, PCEPrefixMapping{
				Prefix:   netaddr.PrefixFrom(netaddr.Addr(v), int(v%33)),
				TTL:      v,
				Locators: normLocators([]uint32{v, v ^ 0xffffffff}, int(v%3)),
			})
		}
		data := Serialize(in)
		p := NewPacket(data, LayerTypePCECP, Default)
		l := p.Layer(LayerTypePCECP)
		if l == nil {
			return false
		}
		out := l.(*PCECP)
		if out.Type != in.Type || out.Nonce != in.Nonce || out.PCEAddr != in.PCEAddr {
			return false
		}
		if !reflect.DeepEqual(out.Flows, in.Flows) {
			return false
		}
		if len(out.Prefixes) != len(in.Prefixes) {
			return false
		}
		for i := range in.Prefixes {
			if out.Prefixes[i].Prefix != in.Prefixes[i].Prefix ||
				out.Prefixes[i].TTL != in.Prefixes[i].TTL ||
				!reflect.DeepEqual(out.Prefixes[i].Locators, in.Prefixes[i].Locators) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDNSRoundTrip(t *testing.T) {
	f := func(id uint16, ttl uint32, a uint32, labels []byte) bool {
		// Build a legal name from the fuzz input.
		name := "h"
		for i, b := range labels {
			if i >= 3 {
				break
			}
			name += string(rune('a'+int(b%26))) + "."
		}
		name += "example"
		in := &DNS{
			ID: id, QR: true, AA: ttl%2 == 0, RD: ttl%3 == 0, RA: ttl%5 == 0,
			RCode:     DNSResponseCode(ttl % 6 % 4),
			Questions: []DNSQuestion{{Name: name, Type: DNSTypeA, Class: DNSClassIN}},
			Answers: []DNSResourceRecord{{
				Name: name, Type: DNSTypeA, Class: DNSClassIN, TTL: ttl, IP: netaddr.Addr(a),
			}},
		}
		out := &DNS{}
		if err := out.DecodeFromBytes(Serialize(in)); err != nil {
			return false
		}
		return out.ID == in.ID && out.QR && out.AA == in.AA &&
			out.RD == in.RD && out.RA == in.RA && out.RCode == in.RCode &&
			out.Questions[0].Name == name &&
			out.Answers[0].IP == netaddr.Addr(a) && out.Answers[0].TTL == ttl
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickTCPRoundTrip(t *testing.T) {
	f := func(sp, dp uint16, seq, ack uint32, flags uint8, win uint16) bool {
		in := &TCP{
			SrcPort: sp, DstPort: dp, Seq: seq, Ack: ack,
			FIN: flags&1 != 0, SYN: flags&2 != 0, RST: flags&4 != 0,
			PSH: flags&8 != 0, ACK: flags&16 != 0, URG: flags&32 != 0,
			Window: win,
		}
		data := Serialize(in)
		p := NewPacket(data, LayerTypeTCP, Default)
		l := p.Layer(LayerTypeTCP)
		if l == nil {
			return false
		}
		out := l.(*TCP)
		return out.SrcPort == sp && out.DstPort == dp && out.Seq == seq &&
			out.Ack == ack && out.Window == win &&
			out.FIN == in.FIN && out.SYN == in.SYN && out.RST == in.RST &&
			out.PSH == in.PSH && out.ACK == in.ACK && out.URG == in.URG
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
