package packet

import (
	"fmt"
	"strings"

	"github.com/pcelisp/pcelisp/internal/netaddr"
)

// DNSOpCode is the DNS header opcode.
type DNSOpCode uint8

// DNSOpCodeQuery is a standard query.
const DNSOpCodeQuery DNSOpCode = 0

// DNSResponseCode is the DNS header RCODE.
type DNSResponseCode uint8

// Response codes used in this codebase.
const (
	// DNSRCodeNoError is RCODE 0.
	DNSRCodeNoError DNSResponseCode = 0
	// DNSRCodeNXDomain is RCODE 3 (name does not exist).
	DNSRCodeNXDomain DNSResponseCode = 3
	// DNSRCodeServFail is RCODE 2.
	DNSRCodeServFail DNSResponseCode = 2
)

// DNSType is a DNS record type.
type DNSType uint16

// Record types used in this codebase.
const (
	// DNSTypeA is an IPv4 address record.
	DNSTypeA DNSType = 1
	// DNSTypeNS is a name-server delegation record.
	DNSTypeNS DNSType = 2
	// DNSTypeCNAME is a canonical-name alias record.
	DNSTypeCNAME DNSType = 5
)

// String names the type.
func (t DNSType) String() string {
	switch t {
	case DNSTypeA:
		return "A"
	case DNSTypeNS:
		return "NS"
	case DNSTypeCNAME:
		return "CNAME"
	default:
		return fmt.Sprintf("DNSType(%d)", uint16(t))
	}
}

// DNSClass is a DNS record class.
type DNSClass uint16

// DNSClassIN is the Internet class.
const DNSClassIN DNSClass = 1

// dnsHeaderLen is the fixed DNS message header size.
const dnsHeaderLen = 12

// DNSQuestion is one entry of a DNS question section.
type DNSQuestion struct {
	Name  string
	Type  DNSType
	Class DNSClass
}

// DNSResourceRecord is one entry of an answer/authority/additional section.
type DNSResourceRecord struct {
	Name  string
	Type  DNSType
	Class DNSClass
	TTL   uint32
	// IP is the record data for A records.
	IP netaddr.Addr
	// NSName is the record data for NS and CNAME records.
	NSName string
	// Data carries the raw RDATA for record types this package does not
	// interpret.
	Data []byte
}

// DNS is a DNS message (RFC 1035 wire format). Decoding understands name
// compression pointers; encoding emits uncompressed names, which is always
// legal.
type DNS struct {
	BaseLayer
	ID     uint16
	QR     bool // response flag
	OpCode DNSOpCode
	AA     bool // authoritative answer
	TC     bool // truncated
	RD     bool // recursion desired
	RA     bool // recursion available
	RCode  DNSResponseCode

	Questions   []DNSQuestion
	Answers     []DNSResourceRecord
	Authorities []DNSResourceRecord
	Additionals []DNSResourceRecord
}

// LayerType returns LayerTypeDNS.
func (*DNS) LayerType() LayerType { return LayerTypeDNS }

// Payload returns nil: DNS is an application layer.
func (*DNS) Payload() []byte { return nil }

func decodeDNS(data []byte, p PacketBuilder) error {
	d := &DNS{}
	if err := d.DecodeFromBytes(data); err != nil {
		return err
	}
	p.AddLayer(d)
	p.SetApplicationLayer(d)
	return nil
}

// DecodeFromBytes parses a DNS message from data.
func (d *DNS) DecodeFromBytes(data []byte) error {
	if len(data) < dnsHeaderLen {
		return fmt.Errorf("DNS: %d bytes is too short for a header", len(data))
	}
	d.ID = uint16(data[0])<<8 | uint16(data[1])
	d.QR = data[2]&0x80 != 0
	d.OpCode = DNSOpCode((data[2] >> 3) & 0x0f)
	d.AA = data[2]&0x04 != 0
	d.TC = data[2]&0x02 != 0
	d.RD = data[2]&0x01 != 0
	d.RA = data[3]&0x80 != 0
	d.RCode = DNSResponseCode(data[3] & 0x0f)
	qd := int(uint16(data[4])<<8 | uint16(data[5]))
	an := int(uint16(data[6])<<8 | uint16(data[7]))
	ns := int(uint16(data[8])<<8 | uint16(data[9]))
	ar := int(uint16(data[10])<<8 | uint16(data[11]))

	off := dnsHeaderLen
	d.Questions = d.Questions[:0]
	for i := 0; i < qd; i++ {
		name, n, err := decodeDNSName(data, off)
		if err != nil {
			return fmt.Errorf("DNS: question %d: %w", i, err)
		}
		off = n
		if off+4 > len(data) {
			return fmt.Errorf("DNS: question %d truncated", i)
		}
		d.Questions = append(d.Questions, DNSQuestion{
			Name:  name,
			Type:  DNSType(uint16(data[off])<<8 | uint16(data[off+1])),
			Class: DNSClass(uint16(data[off+2])<<8 | uint16(data[off+3])),
		})
		off += 4
	}
	var err error
	if d.Answers, off, err = decodeDNSRRs(data, off, an); err != nil {
		return fmt.Errorf("DNS: answers: %w", err)
	}
	if d.Authorities, off, err = decodeDNSRRs(data, off, ns); err != nil {
		return fmt.Errorf("DNS: authorities: %w", err)
	}
	if d.Additionals, off, err = decodeDNSRRs(data, off, ar); err != nil {
		return fmt.Errorf("DNS: additionals: %w", err)
	}
	d.Contents = data[:off]
	d.BaseLayer.Payload = nil
	return nil
}

func decodeDNSRRs(data []byte, off, count int) ([]DNSResourceRecord, int, error) {
	if count == 0 {
		return nil, off, nil
	}
	rrs := make([]DNSResourceRecord, 0, count)
	for i := 0; i < count; i++ {
		name, n, err := decodeDNSName(data, off)
		if err != nil {
			return nil, 0, fmt.Errorf("record %d: %w", i, err)
		}
		off = n
		if off+10 > len(data) {
			return nil, 0, fmt.Errorf("record %d truncated", i)
		}
		rr := DNSResourceRecord{
			Name:  name,
			Type:  DNSType(uint16(data[off])<<8 | uint16(data[off+1])),
			Class: DNSClass(uint16(data[off+2])<<8 | uint16(data[off+3])),
			TTL:   uint32(data[off+4])<<24 | uint32(data[off+5])<<16 | uint32(data[off+6])<<8 | uint32(data[off+7]),
		}
		rdlen := int(uint16(data[off+8])<<8 | uint16(data[off+9]))
		off += 10
		if off+rdlen > len(data) {
			return nil, 0, fmt.Errorf("record %d rdata truncated", i)
		}
		rdata := data[off : off+rdlen]
		switch rr.Type {
		case DNSTypeA:
			if rdlen != 4 {
				return nil, 0, fmt.Errorf("record %d: A rdata length %d", i, rdlen)
			}
			rr.IP = netaddr.AddrFromBytes(rdata)
		case DNSTypeNS, DNSTypeCNAME:
			nsName, _, err := decodeDNSName(data, off)
			if err != nil {
				return nil, 0, fmt.Errorf("record %d: ns name: %w", i, err)
			}
			rr.NSName = nsName
		default:
			rr.Data = rdata
		}
		off += rdlen
		rrs = append(rrs, rr)
	}
	return rrs, off, nil
}

// decodeDNSName reads a possibly-compressed domain name starting at off,
// returning the dotted name and the offset just past it in the message.
func decodeDNSName(data []byte, off int) (string, int, error) {
	var sb strings.Builder
	end := -1 // offset after the name in the original (pre-jump) stream
	hops := 0
	for {
		if off >= len(data) {
			return "", 0, fmt.Errorf("name runs past message end")
		}
		c := int(data[off])
		switch {
		case c == 0:
			if end < 0 {
				end = off + 1
			}
			name := sb.String()
			if name == "" {
				name = "."
			}
			return name, end, nil
		case c&0xc0 == 0xc0: // compression pointer
			if off+1 >= len(data) {
				return "", 0, fmt.Errorf("truncated compression pointer")
			}
			if hops++; hops > 32 {
				return "", 0, fmt.Errorf("compression pointer loop")
			}
			ptr := (c&0x3f)<<8 | int(data[off+1])
			if end < 0 {
				end = off + 2
			}
			if ptr >= off {
				return "", 0, fmt.Errorf("forward compression pointer")
			}
			off = ptr
		case c&0xc0 != 0:
			return "", 0, fmt.Errorf("bad label length byte 0x%02x", c)
		default:
			if off+1+c > len(data) {
				return "", 0, fmt.Errorf("label runs past message end")
			}
			if sb.Len() > 0 {
				sb.WriteByte('.')
			}
			sb.Write(data[off+1 : off+1+c])
			off += 1 + c
			if sb.Len() > 255 {
				return "", 0, fmt.Errorf("name longer than 255 bytes")
			}
		}
	}
}

// encodeDNSName appends the uncompressed wire encoding of name to b.
func encodeDNSName(b []byte, name string) ([]byte, error) {
	if name == "." || name == "" {
		return append(b, 0), nil
	}
	for _, label := range strings.Split(strings.TrimSuffix(name, "."), ".") {
		if len(label) == 0 || len(label) > 63 {
			return nil, fmt.Errorf("DNS: bad label %q in %q", label, name)
		}
		b = append(b, byte(len(label)))
		b = append(b, label...)
	}
	return append(b, 0), nil
}

// AppendBytes encodes the message and appends it to b.
func (d *DNS) AppendBytes(b []byte) ([]byte, error) {
	var flags2, flags3 byte
	if d.QR {
		flags2 |= 0x80
	}
	flags2 |= byte(d.OpCode&0x0f) << 3
	if d.AA {
		flags2 |= 0x04
	}
	if d.TC {
		flags2 |= 0x02
	}
	if d.RD {
		flags2 |= 0x01
	}
	if d.RA {
		flags3 |= 0x80
	}
	flags3 |= byte(d.RCode & 0x0f)
	b = append(b,
		byte(d.ID>>8), byte(d.ID), flags2, flags3,
		byte(len(d.Questions)>>8), byte(len(d.Questions)),
		byte(len(d.Answers)>>8), byte(len(d.Answers)),
		byte(len(d.Authorities)>>8), byte(len(d.Authorities)),
		byte(len(d.Additionals)>>8), byte(len(d.Additionals)),
	)
	var err error
	for _, q := range d.Questions {
		if b, err = encodeDNSName(b, q.Name); err != nil {
			return nil, err
		}
		b = append(b, byte(q.Type>>8), byte(q.Type), byte(q.Class>>8), byte(q.Class))
	}
	for _, sec := range [][]DNSResourceRecord{d.Answers, d.Authorities, d.Additionals} {
		for _, rr := range sec {
			if b, err = appendDNSRR(b, rr); err != nil {
				return nil, err
			}
		}
	}
	return b, nil
}

func appendDNSRR(b []byte, rr DNSResourceRecord) ([]byte, error) {
	var err error
	if b, err = encodeDNSName(b, rr.Name); err != nil {
		return nil, err
	}
	b = append(b, byte(rr.Type>>8), byte(rr.Type), byte(rr.Class>>8), byte(rr.Class),
		byte(rr.TTL>>24), byte(rr.TTL>>16), byte(rr.TTL>>8), byte(rr.TTL))
	switch rr.Type {
	case DNSTypeA:
		b = append(b, 0, 4)
		b = rr.IP.AppendBytes(b)
	case DNSTypeNS, DNSTypeCNAME:
		var rdata []byte
		if rdata, err = encodeDNSName(nil, rr.NSName); err != nil {
			return nil, err
		}
		b = append(b, byte(len(rdata)>>8), byte(len(rdata)))
		b = append(b, rdata...)
	default:
		b = append(b, byte(len(rr.Data)>>8), byte(len(rr.Data)))
		b = append(b, rr.Data...)
	}
	return b, nil
}

// SerializeTo implements SerializableLayer.
func (d *DNS) SerializeTo(b SerializeBuffer, _ SerializeOptions) error {
	enc, err := d.AppendBytes(nil)
	if err != nil {
		return err
	}
	bytes, err := b.PrependBytes(len(enc))
	if err != nil {
		return err
	}
	copy(bytes, enc)
	return nil
}

// QuestionFor returns a single-question query message for name.
func QuestionFor(id uint16, name string, t DNSType) *DNS {
	return &DNS{
		ID: id, RD: false, OpCode: DNSOpCodeQuery,
		Questions: []DNSQuestion{{Name: name, Type: t, Class: DNSClassIN}},
	}
}

// FirstA returns the first A record in the answer section, if any.
func (d *DNS) FirstA() (netaddr.Addr, bool) {
	for _, rr := range d.Answers {
		if rr.Type == DNSTypeA {
			return rr.IP, true
		}
	}
	return 0, false
}
