package packet

import (
	"fmt"

	"github.com/pcelisp/pcelisp/internal/netaddr"
)

// EndpointType distinguishes the address families an Endpoint can hold.
type EndpointType int

// Endpoint types used by the built-in layers.
const (
	// EndpointInvalid is the zero EndpointType.
	EndpointInvalid EndpointType = iota
	// EndpointIPv4 holds a 4-byte IP address.
	EndpointIPv4
	// EndpointUDPPort holds a UDP port.
	EndpointUDPPort
	// EndpointTCPPort holds a TCP port.
	EndpointTCPPort
)

// Endpoint is a hashable representation of one side of a flow: an address
// or port. Endpoints are comparable and usable as map keys.
type Endpoint struct {
	typ EndpointType
	raw uint32
}

// NewIPv4Endpoint wraps an IPv4 address.
func NewIPv4Endpoint(a netaddr.Addr) Endpoint {
	return Endpoint{typ: EndpointIPv4, raw: uint32(a)}
}

// NewUDPPortEndpoint wraps a UDP port.
func NewUDPPortEndpoint(p uint16) Endpoint {
	return Endpoint{typ: EndpointUDPPort, raw: uint32(p)}
}

// NewTCPPortEndpoint wraps a TCP port.
func NewTCPPortEndpoint(p uint16) Endpoint {
	return Endpoint{typ: EndpointTCPPort, raw: uint32(p)}
}

// Type returns the endpoint's address family.
func (e Endpoint) Type() EndpointType { return e.typ }

// Addr returns the endpoint as an IPv4 address (valid for EndpointIPv4).
func (e Endpoint) Addr() netaddr.Addr { return netaddr.Addr(e.raw) }

// Port returns the endpoint as a port (valid for port endpoints).
func (e Endpoint) Port() uint16 { return uint16(e.raw) }

// FastHash returns a quick non-cryptographic hash of the endpoint.
func (e Endpoint) FastHash() uint64 {
	return fnv1a(uint64(e.typ)<<32 | uint64(e.raw))
}

// String renders the endpoint for humans.
func (e Endpoint) String() string {
	switch e.typ {
	case EndpointIPv4:
		return e.Addr().String()
	case EndpointUDPPort, EndpointTCPPort:
		return fmt.Sprintf(":%d", e.Port())
	default:
		return "invalid"
	}
}

// Flow is an ordered (source, destination) endpoint pair. Flows are
// comparable and usable as map keys.
type Flow struct {
	src, dst Endpoint
}

// NewFlow builds a flow from two endpoints.
func NewFlow(src, dst Endpoint) Flow { return Flow{src: src, dst: dst} }

// Endpoints returns the source and destination endpoints.
func (f Flow) Endpoints() (src, dst Endpoint) { return f.src, f.dst }

// Src returns the source endpoint.
func (f Flow) Src() Endpoint { return f.src }

// Dst returns the destination endpoint.
func (f Flow) Dst() Endpoint { return f.dst }

// Reverse returns the flow with source and destination swapped.
func (f Flow) Reverse() Flow { return Flow{src: f.dst, dst: f.src} }

// FastHash returns a quick hash of the flow. It is symmetric: A->B hashes
// identically to B->A, so both directions of a conversation land in the
// same bucket when load-balancing across workers.
func (f Flow) FastHash() uint64 {
	a, b := f.src.FastHash(), f.dst.FastHash()
	if a > b {
		a, b = b, a
	}
	return fnv1a(a ^ (b<<1 | b>>63))
}

// String renders "src -> dst".
func (f Flow) String() string { return f.src.String() + " -> " + f.dst.String() }

// fnv1a hashes a uint64 with the 64-bit FNV-1a construction over its bytes.
func fnv1a(v uint64) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= prime
		v >>= 8
	}
	return h
}
