package packet

import (
	"bytes"
	"testing"

	"github.com/pcelisp/pcelisp/internal/netaddr"
)

// slowEncap is the reference path: full layer-by-layer serialization.
func slowEncap(src, dst netaddr.Addr, sport, dport uint16, nonce uint32, inner []byte) []byte {
	ip := &IPv4{TTL: DefaultTTL, Protocol: IPProtocolUDP, SrcIP: src, DstIP: dst}
	udp := &UDP{SrcPort: sport, DstPort: dport}
	udp.SetNetworkLayerForChecksum(ip)
	lisp := &LISP{NonceP: true, Nonce: nonce & 0xffffff}
	pay := Payload(inner)
	return Serialize(ip, udp, lisp, &pay)
}

// TestEncapTemplateMatchesSerialize pins the bit-identity contract: the
// patched template must reproduce the full serialization exactly, across
// odd/even inner lengths, nonce extremes and checksum corner cases.
func TestEncapTemplateMatchesSerialize(t *testing.T) {
	src := netaddr.MustParseAddr("10.0.0.1")
	dst := netaddr.MustParseAddr("12.0.0.1")
	inner := make([]byte, 1500)
	for i := range inner {
		inner[i] = byte(i*31 + 7)
	}
	tmpl := NewEncapTemplate(src, dst, PortLISPData, PortLISPData)
	for _, n := range []int{0, 1, 2, 19, 20, 63, 64, 512, 513, 1499, 1500} {
		for _, nonce := range []uint32{0, 1, 0x00ff00, 0xabcdef, 0xffffff} {
			want := slowEncap(src, dst, PortLISPData, PortLISPData, nonce, inner[:n])
			got := tmpl.Encap(inner[:n], nonce)
			if !bytes.Equal(got, want) {
				t.Fatalf("inner=%d nonce=%06x: template output diverges\n got %x\nwant %x", n, nonce, got, want)
			}
		}
	}
}

// TestEncapTemplateChecksumZeroRule exercises the UDP 0 -> 0xffff rule by
// brute-forcing an inner payload whose datagram checksum lands on zero.
func TestEncapTemplateChecksumZeroRule(t *testing.T) {
	src := netaddr.MustParseAddr("10.0.0.1")
	dst := netaddr.MustParseAddr("12.0.0.1")
	tmpl := NewEncapTemplate(src, dst, PortLISPData, PortLISPData)
	inner := make([]byte, 2)
	found := false
	for v := 0; v < 1<<16; v++ {
		inner[0], inner[1] = byte(v>>8), byte(v)
		got := tmpl.Encap(inner, 0x123456)
		if got[26] == 0xff && got[27] == 0xff {
			found = true
		}
		want := slowEncap(src, dst, PortLISPData, PortLISPData, 0x123456, inner)
		if !bytes.Equal(got, want) {
			t.Fatalf("inner=%x: template output diverges", inner)
		}
	}
	if !found {
		t.Fatal("no payload exercised the 0xffff checksum rule")
	}
}

// TestEncapTemplateSingleAlloc pins the fast path's allocation budget:
// one output buffer per packet, nothing else.
func TestEncapTemplateSingleAlloc(t *testing.T) {
	src := netaddr.MustParseAddr("10.0.0.1")
	dst := netaddr.MustParseAddr("12.0.0.1")
	tmpl := NewEncapTemplate(src, dst, PortLISPData, PortLISPData)
	inner := make([]byte, 512)
	var sink []byte
	per := testing.AllocsPerRun(200, func() {
		sink = tmpl.Encap(inner, 0x42)
	})
	_ = sink
	if per != 1 {
		t.Fatalf("EncapTemplate.Encap allocates %.1f per packet, want 1", per)
	}
}
