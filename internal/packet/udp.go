package packet

import (
	"fmt"

	"github.com/pcelisp/pcelisp/internal/netaddr"
)

// UDPHeaderLen is the fixed UDP header size.
const UDPHeaderLen = 8

// UDP is the User Datagram Protocol header.
type UDP struct {
	BaseLayer
	SrcPort  uint16
	DstPort  uint16
	Length   uint16
	Checksum uint16

	// netForChecksum, when set, provides the pseudo-header for checksum
	// computation during serialization.
	netSrc, netDst netaddr.Addr
	netSet         bool
}

// LayerType returns LayerTypeUDP.
func (*UDP) LayerType() LayerType { return LayerTypeUDP }

// TransportFlow returns the src->dst port flow.
func (u *UDP) TransportFlow() Flow {
	return NewFlow(NewUDPPortEndpoint(u.SrcPort), NewUDPPortEndpoint(u.DstPort))
}

// SetNetworkLayerForChecksum records the enclosing IPv4 header so
// SerializeTo can compute the pseudo-header checksum, mirroring gopacket.
func (u *UDP) SetNetworkLayerForChecksum(ip *IPv4) {
	u.netSrc, u.netDst, u.netSet = ip.SrcIP, ip.DstIP, true
}

func decodeUDP(data []byte, p PacketBuilder) error {
	if len(data) < UDPHeaderLen {
		return fmt.Errorf("UDP: %d bytes is too short for a header", len(data))
	}
	u := &UDP{
		SrcPort:  uint16(data[0])<<8 | uint16(data[1]),
		DstPort:  uint16(data[2])<<8 | uint16(data[3]),
		Length:   uint16(data[4])<<8 | uint16(data[5]),
		Checksum: uint16(data[6])<<8 | uint16(data[7]),
	}
	if int(u.Length) < UDPHeaderLen || int(u.Length) > len(data) {
		return fmt.Errorf("UDP: bad length %d (datagram %d)", u.Length, len(data))
	}
	u.Contents = data[:UDPHeaderLen]
	u.Payload = data[UDPHeaderLen:u.Length]
	p.AddLayer(u)
	p.SetTransportLayer(u)
	return p.NextDecoder(udpPortLayerType(u.SrcPort, u.DstPort))
}

// SerializeTo implements SerializableLayer.
func (u *UDP) SerializeTo(b SerializeBuffer, opts SerializeOptions) error {
	payloadLen := len(b.Bytes())
	bytes, err := b.PrependBytes(UDPHeaderLen)
	if err != nil {
		return err
	}
	if opts.FixLengths {
		u.Length = uint16(UDPHeaderLen + payloadLen)
	}
	bytes[0], bytes[1] = byte(u.SrcPort>>8), byte(u.SrcPort)
	bytes[2], bytes[3] = byte(u.DstPort>>8), byte(u.DstPort)
	bytes[4], bytes[5] = byte(u.Length>>8), byte(u.Length)
	bytes[6], bytes[7] = 0, 0
	if opts.ComputeChecksums {
		if !u.netSet {
			// A zero UDP checksum is legal in IPv4 ("not computed"); layers
			// serialized without a network layer for checksum emit 0.
			u.Checksum = 0
		} else {
			datagram := b.Bytes()[:UDPHeaderLen+payloadLen]
			sum := pseudoHeaderChecksum(u.netSrc, u.netDst, IPProtocolUDP, len(datagram))
			u.Checksum = finishChecksum(sumBytes(sum, datagram))
			if u.Checksum == 0 {
				u.Checksum = 0xffff // 0 is reserved for "no checksum"
			}
		}
	}
	bytes[6], bytes[7] = byte(u.Checksum>>8), byte(u.Checksum)
	return nil
}

// VerifyUDPChecksum checks the checksum of the UDP datagram in data
// against the given pseudo-header addresses. A zero stored checksum
// verifies trivially per RFC 768.
func VerifyUDPChecksum(src, dst netaddr.Addr, datagram []byte) bool {
	if len(datagram) < UDPHeaderLen {
		return false
	}
	stored := uint16(datagram[6])<<8 | uint16(datagram[7])
	if stored == 0 {
		return true
	}
	sum := pseudoHeaderChecksum(src, dst, IPProtocolUDP, len(datagram))
	return finishChecksum(sumBytes(sum, datagram)) == 0
}
