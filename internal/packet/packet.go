// Package packet provides wire-format encoding and decoding for every
// protocol in the LISP/PCE reproduction: IPv4, UDP, TCP, DNS, the LISP
// data-plane encapsulation header, LISP control messages (Map-Request,
// Map-Reply, Map-Register, Map-Notify, Encapsulated Control Message) and
// the PCE control-plane messages introduced by the paper.
//
// The architecture follows gopacket: a packet is a []byte decoded into a
// stack of Layers; each Layer knows its own contents and payload; decoding
// proceeds through a chain of Decoders driven by a PacketBuilder; packets
// may be decoded eagerly or lazily, with or without copying the input; and
// serialization writes layers back-to-front into a SerializeBuffer so
// lengths and checksums can be fixed up as outer layers are prepended.
//
// Every byte that crosses a simulated link or a real UDP socket in this
// repository is produced and parsed by this package — the simulator never
// cheats by passing Go structs around.
package packet

import (
	"fmt"
	"sync"
)

// Layer represents one decoded protocol header within a packet.
type Layer interface {
	// LayerType returns the registered type of this layer.
	LayerType() LayerType
	// LayerContents returns the bytes that make up this layer's header.
	LayerContents() []byte
	// LayerPayload returns the bytes following this layer's header.
	LayerPayload() []byte
}

// NetworkLayer is a Layer that carries network-level (IP) addressing.
type NetworkLayer interface {
	Layer
	// NetworkFlow returns the source/destination endpoints of this layer.
	NetworkFlow() Flow
}

// TransportLayer is a Layer that carries transport-level (port) addressing.
type TransportLayer interface {
	Layer
	// TransportFlow returns the source/destination port endpoints.
	TransportFlow() Flow
}

// ApplicationLayer is the innermost payload-bearing layer of a packet.
type ApplicationLayer interface {
	Layer
	// Payload returns the application bytes.
	Payload() []byte
}

// Decoder turns bytes into one Layer and tells the PacketBuilder how to
// continue with the remaining payload.
type Decoder interface {
	Decode(data []byte, p PacketBuilder) error
}

// DecodeFunc adapts a function to the Decoder interface.
type DecodeFunc func(data []byte, p PacketBuilder) error

// Decode implements Decoder.
func (f DecodeFunc) Decode(data []byte, p PacketBuilder) error { return f(data, p) }

// PacketBuilder is handed to Decoders so they can attach layers and
// schedule the next decoder for their payload.
type PacketBuilder interface {
	// AddLayer appends a freshly decoded layer to the packet.
	AddLayer(l Layer)
	// SetNetworkLayer records l as the packet's network layer (first wins,
	// so the outer header of an IP-in-IP packet is the network layer).
	SetNetworkLayer(l NetworkLayer)
	// SetTransportLayer records l as the packet's transport layer (first wins).
	SetTransportLayer(l TransportLayer)
	// SetApplicationLayer records l as the packet's application layer (last wins).
	SetApplicationLayer(l ApplicationLayer)
	// NextDecoder schedules d to decode the most recent layer's payload.
	NextDecoder(d Decoder) error
}

// DecodeOptions controls NewPacket behaviour, mirroring gopacket.
type DecodeOptions struct {
	// Lazy postpones decoding until layers are requested. Lazily decoded
	// packets are not safe for concurrent use.
	Lazy bool
	// NoCopy uses the caller's slice directly instead of copying. The
	// caller must not modify the slice afterwards.
	NoCopy bool
}

// Predefined option sets.
var (
	// Default decodes eagerly and copies the input.
	Default = DecodeOptions{}
	// Lazy decodes on demand and copies the input.
	Lazy = DecodeOptions{Lazy: true}
	// NoCopy decodes eagerly without copying the input.
	NoCopy = DecodeOptions{NoCopy: true}
	// LazyNoCopy is the fastest and least safe combination.
	LazyNoCopy = DecodeOptions{Lazy: true, NoCopy: true}
)

// Packet is a decoded packet: the raw data plus its stack of layers.
type Packet struct {
	data   []byte
	layers []Layer

	network     NetworkLayer
	transport   TransportLayer
	application ApplicationLayer
	failure     *DecodeFailure

	// Lazy-decoding state: the decoder to run next and the bytes it will
	// consume. nil next means decoding has finished.
	next Decoder
	rest []byte
}

// NewPacket decodes data starting with the given decoder. It never returns
// an error: malformed packets carry a DecodeFailure layer instead, because
// the outer layers that did decode are usually still useful.
func NewPacket(data []byte, first Decoder, opts DecodeOptions) *Packet {
	if !opts.NoCopy {
		c := make([]byte, len(data))
		copy(c, data)
		data = c
	}
	p := &Packet{data: data, next: first, rest: data}
	if !opts.Lazy {
		p.decodeAll()
	}
	return p
}

// packetPool recycles Packet containers (the struct and its layer-slice
// scratch) across decodes. Decoded layer structs are NOT pooled, so
// references handlers keep to individual layers stay valid after Release.
var packetPool = sync.Pool{
	New: func() interface{} { return &Packet{layers: make([]Layer, 0, 8)} },
}

// NewPooledPacket is NewPacket drawing the Packet container from an
// internal pool. The caller owns the packet until Release; afterwards the
// packet and the slice returned by Layers must not be used. The simulator
// uses it for per-delivery decoding, where the packet dies with the event.
func NewPooledPacket(data []byte, first Decoder, opts DecodeOptions) *Packet {
	if !opts.NoCopy {
		c := make([]byte, len(data))
		copy(c, data)
		data = c
	}
	p := packetPool.Get().(*Packet)
	p.data, p.next, p.rest = data, first, data
	if !opts.Lazy {
		p.decodeAll()
	}
	return p
}

// Release resets p and returns it to the decode pool. Individual layer
// structs obtained from the packet remain valid; only the container and
// its layer slice are recycled.
func (p *Packet) Release() {
	p.data, p.next, p.rest = nil, nil, nil
	for i := range p.layers {
		p.layers[i] = nil
	}
	p.layers = p.layers[:0]
	p.network, p.transport, p.application, p.failure = nil, nil, nil, nil
	packetPool.Put(p)
}

// Data returns the raw bytes of the packet.
func (p *Packet) Data() []byte { return p.data }

// Layers decodes (if necessary) and returns all layers of the packet.
func (p *Packet) Layers() []Layer {
	p.decodeAll()
	return p.layers
}

// Layer returns the first layer of type t, decoding lazily as needed, or
// nil if the packet holds no such layer.
func (p *Packet) Layer(t LayerType) Layer {
	for _, l := range p.layers {
		if l.LayerType() == t {
			return l
		}
	}
	for p.next != nil {
		n := len(p.layers)
		p.decodeOne()
		for _, l := range p.layers[n:] {
			if l.LayerType() == t {
				return l
			}
		}
	}
	return nil
}

// NetworkLayer returns the packet's network layer (outermost IP header).
func (p *Packet) NetworkLayer() NetworkLayer {
	for p.network == nil && p.next != nil {
		p.decodeOne()
	}
	return p.network
}

// TransportLayer returns the packet's transport layer (outermost UDP/TCP).
func (p *Packet) TransportLayer() TransportLayer {
	for p.transport == nil && p.next != nil {
		p.decodeOne()
	}
	return p.transport
}

// ApplicationLayer returns the innermost payload-bearing layer.
func (p *Packet) ApplicationLayer() ApplicationLayer {
	p.decodeAll()
	return p.application
}

// ErrorLayer returns the DecodeFailure layer if any part of the packet
// failed to decode, or nil.
func (p *Packet) ErrorLayer() *DecodeFailure {
	p.decodeAll()
	return p.failure
}

// String summarizes the layer stack, e.g. "IPv4/UDP/DNS".
func (p *Packet) String() string {
	p.decodeAll()
	s := ""
	for i, l := range p.layers {
		if i > 0 {
			s += "/"
		}
		s += l.LayerType().String()
	}
	return s
}

func (p *Packet) decodeAll() {
	for p.next != nil {
		p.decodeOne()
	}
}

func (p *Packet) decodeOne() {
	d := p.next
	data := p.rest
	p.next, p.rest = nil, nil
	if err := d.Decode(data, p); err != nil {
		p.failure = &DecodeFailure{data: data, err: err}
		p.layers = append(p.layers, p.failure)
		p.next = nil
	}
}

// AddLayer implements PacketBuilder.
func (p *Packet) AddLayer(l Layer) { p.layers = append(p.layers, l) }

// SetNetworkLayer implements PacketBuilder.
func (p *Packet) SetNetworkLayer(l NetworkLayer) {
	if p.network == nil {
		p.network = l
	}
}

// SetTransportLayer implements PacketBuilder.
func (p *Packet) SetTransportLayer(l TransportLayer) {
	if p.transport == nil {
		p.transport = l
	}
}

// SetApplicationLayer implements PacketBuilder.
func (p *Packet) SetApplicationLayer(l ApplicationLayer) { p.application = l }

// NextDecoder implements PacketBuilder: it schedules d to run over the
// payload of the most recently added layer.
func (p *Packet) NextDecoder(d Decoder) error {
	if d == nil {
		return fmt.Errorf("packet: NextDecoder called with nil decoder")
	}
	if len(p.layers) == 0 {
		return fmt.Errorf("packet: NextDecoder called before any layer was added")
	}
	rest := p.layers[len(p.layers)-1].LayerPayload()
	if len(rest) == 0 {
		return nil // nothing left; decoding completes cleanly
	}
	p.next, p.rest = d, rest
	return nil
}

// BaseLayer holds the two byte slices common to every concrete layer.
// Embedding it provides LayerContents and LayerPayload for free.
type BaseLayer struct {
	// Contents is the set of bytes that make up this layer's header.
	Contents []byte
	// Payload is the set of bytes contained by (but not part of) this layer.
	Payload []byte
}

// LayerContents returns the header bytes of this layer.
func (b *BaseLayer) LayerContents() []byte { return b.Contents }

// LayerPayload returns the bytes following this layer's header.
func (b *BaseLayer) LayerPayload() []byte { return b.Payload }

// Payload is a trivial ApplicationLayer wrapping raw application bytes.
type Payload []byte

// LayerType returns LayerTypePayload.
func (Payload) LayerType() LayerType { return LayerTypePayload }

// LayerContents returns the payload bytes.
func (p Payload) LayerContents() []byte { return p }

// LayerPayload returns nil; Payload is always innermost.
func (Payload) LayerPayload() []byte { return nil }

// Payload returns the payload bytes (ApplicationLayer).
func (p Payload) Payload() []byte { return p }

// SerializeTo implements SerializableLayer.
func (p Payload) SerializeTo(b SerializeBuffer, _ SerializeOptions) error {
	bytes, err := b.PrependBytes(len(p))
	if err != nil {
		return err
	}
	copy(bytes, p)
	return nil
}

func decodePayload(data []byte, p PacketBuilder) error {
	pl := Payload(data)
	p.AddLayer(pl)
	p.SetApplicationLayer(pl)
	return nil
}

// DecodeFailure is the layer attached when decoding fails part-way. The
// bytes that could not be decoded are preserved.
type DecodeFailure struct {
	data []byte
	err  error
}

// LayerType returns LayerTypeDecodeFailure.
func (*DecodeFailure) LayerType() LayerType { return LayerTypeDecodeFailure }

// LayerContents returns the undecodable bytes.
func (d *DecodeFailure) LayerContents() []byte { return d.data }

// LayerPayload returns nil.
func (*DecodeFailure) LayerPayload() []byte { return nil }

// Error returns the decode error.
func (d *DecodeFailure) Error() error { return d.err }
