package packet

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/pcelisp/pcelisp/internal/netaddr"
)

func TestIPv4RoundTrip(t *testing.T) {
	in := &IPv4{
		TOS: 0x10, ID: 0xbeef, Flags: IPv4DontFragment, TTL: 17,
		Protocol: IPProtocolUDP, SrcIP: srcIP, DstIP: dstIP,
	}
	data := Serialize(in, Payload(bytes.Repeat([]byte{0xaa}, 11)))
	if !VerifyIPv4Checksum(data) {
		t.Fatal("serialized header checksum invalid")
	}
	p := NewPacket(data, LayerTypeIPv4, Default)
	out := p.Layer(LayerTypeIPv4).(*IPv4)
	if out.TOS != in.TOS || out.ID != in.ID || out.Flags != in.Flags ||
		out.TTL != in.TTL || out.Protocol != in.Protocol ||
		out.SrcIP != in.SrcIP || out.DstIP != in.DstIP {
		t.Fatalf("round trip mismatch: %+v vs %+v", out, in)
	}
	if out.Length != uint16(IPv4HeaderLen+11) {
		t.Fatalf("Length = %d", out.Length)
	}
}

func TestIPv4Options(t *testing.T) {
	in := &IPv4{TTL: 1, Protocol: IPProtocolUDP, SrcIP: srcIP, DstIP: dstIP,
		Options: []byte{7, 4, 0, 0}} // dummy 4-byte option
	data := Serialize(in)
	p := NewPacket(data, LayerTypeIPv4, Default)
	out := p.Layer(LayerTypeIPv4).(*IPv4)
	if !bytes.Equal(out.Options, in.Options) {
		t.Fatalf("options = %v", out.Options)
	}
	if out.IHL != 6 {
		t.Fatalf("IHL = %d", out.IHL)
	}
	bad := &IPv4{Options: []byte{1, 2, 3}}
	if err := SerializeLayers(NewSerializeBuffer(), FixAll, bad); err == nil {
		t.Fatal("unaligned options must fail to serialize")
	}
}

func TestIPv4DecodeErrors(t *testing.T) {
	cases := map[string][]byte{
		"short":       make([]byte, 10),
		"bad version": append([]byte{0x65}, make([]byte, 19)...),
		"bad ihl":     append([]byte{0x4f}, make([]byte, 19)...),
	}
	for name, data := range cases {
		p := NewPacket(data, LayerTypeIPv4, Default)
		if p.ErrorLayer() == nil {
			t.Errorf("%s: expected decode failure", name)
		}
	}
	// Total length longer than the buffer must fail.
	good := Serialize(&IPv4{TTL: 1, Protocol: IPProtocolUDP, SrcIP: srcIP, DstIP: dstIP})
	good[2], good[3] = 0xff, 0xff
	if NewPacket(good, LayerTypeIPv4, Default).ErrorLayer() == nil {
		t.Error("oversized total length must fail")
	}
}

func TestPeekIPv4(t *testing.T) {
	data := buildUDPPacket(t, 1, 2, nil)
	if got, ok := PeekIPv4Dst(data); !ok || got != dstIP {
		t.Fatalf("PeekIPv4Dst = %v, %v", got, ok)
	}
	if got, ok := PeekIPv4Src(data); !ok || got != srcIP {
		t.Fatalf("PeekIPv4Src = %v, %v", got, ok)
	}
	if _, ok := PeekIPv4Dst([]byte{1, 2}); ok {
		t.Fatal("short peek must fail")
	}
	if _, ok := PeekIPv4Src([]byte{0x60, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}); ok {
		t.Fatal("non-v4 peek must fail")
	}
}

func TestPatchIPv4TTL(t *testing.T) {
	data := buildUDPPacket(t, 1, 2, []byte("ttl"))
	for i := 0; i < DefaultTTL-1; i++ {
		if !PatchIPv4TTL(data) {
			t.Fatalf("patch %d failed", i)
		}
		if !VerifyIPv4Checksum(data) {
			t.Fatalf("checksum broken after %d decrements", i+1)
		}
	}
	if data[8] != 1 {
		t.Fatalf("TTL = %d, want 1", data[8])
	}
	PatchIPv4TTL(data)
	if PatchIPv4TTL(data) {
		t.Fatal("TTL 0 must refuse to decrement")
	}
}

func TestPatchIPv4Dst(t *testing.T) {
	data := buildUDPPacket(t, 1, 2, []byte("dst"))
	newDst := netaddr.MustParseAddr("203.0.113.77")
	if !PatchIPv4Dst(data, newDst) {
		t.Fatal("patch failed")
	}
	if !VerifyIPv4Checksum(data) {
		t.Fatal("checksum broken after dst patch")
	}
	if got, _ := PeekIPv4Dst(data); got != newDst {
		t.Fatalf("dst = %v", got)
	}
	if PatchIPv4Dst([]byte{1}, newDst) {
		t.Fatal("short patch must fail")
	}
}

func TestUDPRoundTripAndChecksum(t *testing.T) {
	data := buildUDPPacket(t, 5353, 53, []byte("query"))
	p := NewPacket(data, LayerTypeIPv4, Default)
	udp := p.Layer(LayerTypeUDP).(*UDP)
	if udp.Length != UDPHeaderLen+5 {
		t.Fatalf("Length = %d", udp.Length)
	}
	if udp.Checksum == 0 {
		t.Fatal("checksum not computed")
	}
	ip := p.Layer(LayerTypeIPv4).(*IPv4)
	if !VerifyUDPChecksum(ip.SrcIP, ip.DstIP, ip.LayerPayload()) {
		t.Fatal("UDP checksum does not verify")
	}
	// Corrupt one payload byte: verification must fail.
	data[len(data)-1] ^= 0xff
	if VerifyUDPChecksum(ip.SrcIP, ip.DstIP, data[IPv4HeaderLen:]) {
		t.Fatal("corrupted datagram must not verify")
	}
}

func TestUDPZeroChecksumAllowed(t *testing.T) {
	udp := &UDP{SrcPort: 1, DstPort: 2} // no network layer set
	data := Serialize(udp, Payload([]byte("x")))
	if got := uint16(data[6])<<8 | uint16(data[7]); got != 0 {
		t.Fatalf("checksum = %d, want 0 without pseudo-header", got)
	}
	if !VerifyUDPChecksum(srcIP, dstIP, data) {
		t.Fatal("zero checksum must verify trivially")
	}
}

func TestUDPDecodeErrors(t *testing.T) {
	if _, err := quickDecodeUDP(make([]byte, 4)); err == nil {
		t.Fatal("short UDP must fail")
	}
	bad := []byte{0, 1, 0, 2, 0, 3, 0, 0} // length 3 < 8
	if _, err := quickDecodeUDP(bad); err == nil {
		t.Fatal("undersized UDP length must fail")
	}
}

func quickDecodeUDP(data []byte) (*UDP, error) {
	p := &Packet{data: data, next: LayerTypeUDP, rest: data}
	p.decodeAll()
	if p.failure != nil {
		return nil, p.failure.Error()
	}
	return p.layers[0].(*UDP), nil
}

func TestTCPRoundTrip(t *testing.T) {
	ip := &IPv4{TTL: 64, Protocol: IPProtocolTCP, SrcIP: srcIP, DstIP: dstIP}
	in := &TCP{
		SrcPort: 43210, DstPort: 80, Seq: 0x12345678, Ack: 0x9abcdef0,
		SYN: true, ACK: true, Window: 65535, Urgent: 7,
	}
	in.SetNetworkLayerForChecksum(ip)
	data := Serialize(ip, in, Payload([]byte("GET /")))
	p := NewPacket(data, LayerTypeIPv4, Default)
	if p.ErrorLayer() != nil {
		t.Fatalf("decode error: %v", p.ErrorLayer().Error())
	}
	out := p.Layer(LayerTypeTCP).(*TCP)
	if out.SrcPort != in.SrcPort || out.DstPort != in.DstPort ||
		out.Seq != in.Seq || out.Ack != in.Ack ||
		!out.SYN || !out.ACK || out.FIN || out.RST || out.PSH || out.URG ||
		out.Window != in.Window || out.Urgent != in.Urgent {
		t.Fatalf("round trip mismatch: %+v", out)
	}
	if string(out.LayerPayload()) != "GET /" {
		t.Fatalf("payload = %q", out.LayerPayload())
	}
	if out.Checksum == 0 {
		t.Fatal("TCP checksum not computed")
	}
	tf := out.TransportFlow()
	if tf.Src().Port() != 43210 || tf.Dst().Port() != 80 {
		t.Fatalf("transport flow = %v", tf)
	}
}

func TestTCPAllFlags(t *testing.T) {
	in := &TCP{FIN: true, SYN: true, RST: true, PSH: true, ACK: true, URG: true}
	data := Serialize(in)
	p := NewPacket(data, LayerTypeTCP, Default)
	out := p.Layer(LayerTypeTCP).(*TCP)
	if !(out.FIN && out.SYN && out.RST && out.PSH && out.ACK && out.URG) {
		t.Fatalf("flags lost: %+v", out)
	}
}

func TestTCPDecodeErrors(t *testing.T) {
	p := NewPacket(make([]byte, 10), LayerTypeTCP, Default)
	if p.ErrorLayer() == nil {
		t.Fatal("short TCP must fail")
	}
	data := Serialize(&TCP{})
	data[12] = 0xf0 // data offset 15 words > segment
	if NewPacket(data, LayerTypeTCP, Default).ErrorLayer() == nil {
		t.Fatal("bad data offset must fail")
	}
}

func TestLISPHeaderRoundTrip(t *testing.T) {
	inner := buildUDPPacket(t, 1, 2, []byte("inner"))
	in := &LISP{NonceP: true, Nonce: 0xabcdef, LSBP: true, LSB: 0x3}
	outerIP := &IPv4{TTL: 64, Protocol: IPProtocolUDP,
		SrcIP: netaddr.MustParseAddr("10.0.0.254"), DstIP: netaddr.MustParseAddr("12.0.0.254")}
	outerUDP := &UDP{SrcPort: 4341, DstPort: PortLISPData}
	outerUDP.SetNetworkLayerForChecksum(outerIP)
	data := Serialize(outerIP, outerUDP, in, Payload(inner))

	p := NewPacket(data, LayerTypeIPv4, Default)
	if p.ErrorLayer() != nil {
		t.Fatalf("decode error: %v", p.ErrorLayer().Error())
	}
	if got := p.String(); got != "IPv4/UDP/LISP/IPv4/UDP/Payload" {
		t.Fatalf("stack = %q", got)
	}
	l := p.Layer(LayerTypeLISP).(*LISP)
	if !l.NonceP || l.Nonce != 0xabcdef || !l.LSBP || l.LSB != 3 {
		t.Fatalf("LISP header = %+v", l)
	}
	// The packet's NetworkLayer must be the *outer* header (first wins).
	if p.NetworkLayer().(*IPv4).DstIP != netaddr.MustParseAddr("12.0.0.254") {
		t.Fatal("network layer is not the outer header")
	}
	// The inner payload survives intact.
	if string(p.ApplicationLayer().Payload()) != "inner" {
		t.Fatalf("inner payload = %q", p.ApplicationLayer().Payload())
	}
}

func TestLISPInstanceID(t *testing.T) {
	in := &LISP{InstanceP: true, InstanceID: 0x0abcde, LSB: 0x5}
	data := Serialize(in, Payload(buildUDPPacket(t, 1, 2, nil)))
	p := NewPacket(data, LayerTypeLISP, Default)
	out := p.Layer(LayerTypeLISP).(*LISP)
	if !out.InstanceP || out.InstanceID != 0x0abcde || out.LSB != 5 {
		t.Fatalf("instance fields = %+v", out)
	}
}

func TestLISPDecodeTooShort(t *testing.T) {
	if NewPacket(make([]byte, 7), LayerTypeLISP, Default).ErrorLayer() == nil {
		t.Fatal("short LISP header must fail")
	}
}

func TestFlowEndpoint(t *testing.T) {
	a := NewIPv4Endpoint(srcIP)
	b := NewIPv4Endpoint(dstIP)
	f := NewFlow(a, b)
	gotA, gotB := f.Endpoints()
	if gotA != a || gotB != b {
		t.Fatal("endpoints mismatch")
	}
	if f.Reverse() != NewFlow(b, a) {
		t.Fatal("reverse mismatch")
	}
	if f.FastHash() != f.Reverse().FastHash() {
		t.Fatal("FastHash must be symmetric")
	}
	if NewFlow(a, a).FastHash() == f.FastHash() {
		t.Fatal("different flows should hash differently (sanity)")
	}
	m := map[Flow]int{f: 1}
	if m[NewFlow(a, b)] != 1 {
		t.Fatal("Flow must be a usable map key")
	}
	if a.String() != "10.0.0.1" || NewUDPPortEndpoint(53).String() != ":53" {
		t.Fatalf("endpoint strings: %q %q", a.String(), NewUDPPortEndpoint(53).String())
	}
	if f.String() != "10.0.0.1 -> 11.0.0.2" {
		t.Fatalf("flow string = %q", f.String())
	}
}

func TestEndpointTypesDistinct(t *testing.T) {
	u := NewUDPPortEndpoint(80)
	tc := NewTCPPortEndpoint(80)
	if u == tc {
		t.Fatal("UDP and TCP port 80 must be distinct endpoints")
	}
	if u.FastHash() == tc.FastHash() {
		t.Fatal("distinct endpoint types should hash apart")
	}
}

func TestChecksumKnownVector(t *testing.T) {
	// RFC 1071 example: checksum of 00 01 f2 03 f4 f5 f6 f7 == 0x220d.
	data := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := Checksum(data); got != 0x220d {
		t.Fatalf("Checksum = %#04x, want 0x220d", got)
	}
	// Odd-length input exercises the padding path.
	if Checksum([]byte{0xff}) != ^uint16(0xff00) {
		t.Fatal("odd-length checksum wrong")
	}
}

func TestIPv4QuickRoundTrip(t *testing.T) {
	f := func(src, dst uint32, tos, ttl uint8, id uint16, payload []byte) bool {
		if len(payload) > 1000 {
			payload = payload[:1000]
		}
		in := &IPv4{TOS: tos, ID: id, TTL: ttl, Protocol: IPProtocolUDP,
			SrcIP: netaddr.Addr(src), DstIP: netaddr.Addr(dst)}
		data := Serialize(in, Payload(payload))
		p := NewPacket(data, LayerTypeIPv4, Default)
		out, ok := p.Layer(LayerTypeIPv4).(*IPv4)
		if !ok {
			return false
		}
		return out.SrcIP == in.SrcIP && out.DstIP == in.DstIP &&
			out.TOS == tos && out.TTL == ttl && out.ID == id &&
			VerifyIPv4Checksum(data) &&
			bytes.Equal(out.LayerPayload(), payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestDecodersNeverPanic feeds random garbage into every registered
// decoder; all must fail cleanly via DecodeFailure, never panic.
func TestDecodersNeverPanic(t *testing.T) {
	decoders := []LayerType{
		LayerTypeIPv4, LayerTypeUDP, LayerTypeTCP, LayerTypeDNS,
		LayerTypeLISP, LayerTypeLISPControl, LayerTypePCECP,
		LayerTypeLISPMapRequest, LayerTypeLISPMapReply,
		LayerTypeLISPMapRegister, LayerTypeLISPMapNotify, LayerTypeLISPECM,
	}
	rng := rand.New(rand.NewSource(1))
	for _, d := range decoders {
		for trial := 0; trial < 300; trial++ {
			n := rng.Intn(120)
			data := make([]byte, n)
			rng.Read(data)
			p := NewPacket(data, d, Default)
			p.Layers() // force full decode
		}
	}
}

// TestTruncationRobustness serializes a full LISP-encapsulated packet and
// feeds every truncation of it to the decoder; none may panic.
func TestTruncationRobustness(t *testing.T) {
	inner := buildUDPPacket(t, 1, PortDNS, Serialize(QuestionFor(1, "www.example.com", DNSTypeA)))
	outerIP := &IPv4{TTL: 64, Protocol: IPProtocolUDP, SrcIP: srcIP, DstIP: dstIP}
	outerUDP := &UDP{SrcPort: 4341, DstPort: PortLISPData}
	outerUDP.SetNetworkLayerForChecksum(outerIP)
	full := Serialize(outerIP, outerUDP, &LISP{NonceP: true, Nonce: 1}, Payload(inner))
	for n := 0; n <= len(full); n++ {
		p := NewPacket(full[:n], LayerTypeIPv4, Default)
		p.Layers()
	}
}

func BenchmarkSerializeIPv4UDP(b *testing.B) {
	ip := &IPv4{TTL: 64, Protocol: IPProtocolUDP, SrcIP: srcIP, DstIP: dstIP}
	udp := &UDP{SrcPort: 1234, DstPort: 9999}
	udp.SetNetworkLayerForChecksum(ip)
	payload := Payload(make([]byte, 64))
	buf := NewSerializeBuffer()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := SerializeLayers(buf, FixAll, ip, udp, payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeEager(b *testing.B) {
	data := buildUDPPacket(b, 1234, 9999, make([]byte, 64))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := NewPacket(data, LayerTypeIPv4, NoCopy)
		if p.ErrorLayer() != nil {
			b.Fatal("decode failed")
		}
	}
}

func BenchmarkDecodeLazyNetworkOnly(b *testing.B) {
	data := buildUDPPacket(b, 1234, 9999, make([]byte, 64))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := NewPacket(data, LayerTypeIPv4, LazyNoCopy)
		if p.NetworkLayer() == nil {
			b.Fatal("no network layer")
		}
	}
}
