package simnet

import (
	"testing"
	"time"

	"github.com/pcelisp/pcelisp/internal/netaddr"
	"github.com/pcelisp/pcelisp/internal/packet"
)

func TestSendViaBypassesRouting(t *testing.T) {
	s := New(1)
	// One node with two links; routing prefers link A, SendVia forces B.
	n := s.NewNode("n")
	a := s.NewNode("a")
	b := s.NewNode("b")
	la := Connect(n, a, LinkConfig{Delay: time.Millisecond})
	lb := Connect(n, b, LinkConfig{Delay: time.Millisecond})
	la.A().SetAddr(netaddr.MustParseAddr("10.0.0.1"))
	la.B().SetAddr(netaddr.MustParseAddr("10.0.0.2"))
	lb.A().SetAddr(netaddr.MustParseAddr("10.0.1.1"))
	lb.B().SetAddr(netaddr.MustParseAddr("10.0.1.2"))
	n.SetDefaultRoute(la.A())
	got := ""
	b.SetLocalHandler(func(d *Delivery) bool { got = "b"; return true })
	a.SetLocalHandler(func(d *Delivery) bool { got = "a"; return true })
	// Destination routes via A, but SendVia pins the B link. The B side
	// is not the packet's destination, so B forwards (and fails, no
	// route) unless it owns the address; send to B's own address.
	data := EncodeUDP(netaddr.MustParseAddr("10.0.1.1"), netaddr.MustParseAddr("10.0.1.2"), 1, 2)
	n.SendVia(lb.A(), data)
	s.Run()
	if got != "b" && b.Stats.DeliveredLocal != 1 {
		t.Fatalf("SendVia did not use link B: %q %+v", got, b.Stats)
	}
}

func TestSendViaForeignIfacePanics(t *testing.T) {
	s := New(1)
	a := s.NewNode("a")
	b := s.NewNode("b")
	l := Connect(a, b, LinkConfig{})
	defer func() {
		if recover() == nil {
			t.Fatal("SendVia with another node's iface must panic")
		}
	}()
	a.SendVia(l.B(), []byte{1})
}

func TestIfaceByAddr(t *testing.T) {
	s := New(1)
	a := s.NewNode("a")
	b := s.NewNode("b")
	l := Connect(a, b, LinkConfig{})
	addr := netaddr.MustParseAddr("10.0.0.1")
	l.A().SetAddr(addr)
	a.AddAddr(netaddr.MustParseAddr("192.0.2.1")) // loopback-style
	if a.IfaceByAddr(addr) != l.A() {
		t.Fatal("IfaceByAddr missed the link address")
	}
	if a.IfaceByAddr(netaddr.MustParseAddr("192.0.2.1")) != nil {
		t.Fatal("loopback address has no iface")
	}
	if a.IfaceByAddr(netaddr.MustParseAddr("9.9.9.9")) != nil {
		t.Fatal("unknown address has no iface")
	}
}

func TestQueueDepthAndConfig(t *testing.T) {
	s := New(1)
	a := s.NewNode("a")
	b := s.NewNode("b")
	l := Connect(a, b, LinkConfig{Delay: time.Millisecond, RateBps: 8000, QueueBytes: 10000})
	l.A().SetAddr(netaddr.MustParseAddr("10.0.0.1"))
	l.B().SetAddr(netaddr.MustParseAddr("10.0.0.2"))
	a.SetDefaultRoute(l.A())
	if l.A().QueueDepth() != 0 {
		t.Fatal("fresh link must have empty queue")
	}
	// Two 100-byte packets at 1000 B/s: after sending, one is serializing
	// and one queued.
	payload := make([]byte, 72)
	a.SendUDP(netaddr.MustParseAddr("10.0.0.1"), netaddr.MustParseAddr("10.0.0.2"), 1, 2, packet.Payload(payload))
	a.SendUDP(netaddr.MustParseAddr("10.0.0.1"), netaddr.MustParseAddr("10.0.0.2"), 1, 2, packet.Payload(payload))
	if d := l.A().QueueDepth(); d < 150 {
		t.Fatalf("queue depth = %d, want ~200 bytes backlog", d)
	}
	if cfg := l.A().Config(); cfg.RateBps != 8000 || cfg.QueueBytes != 10000 {
		t.Fatalf("config = %+v", cfg)
	}
	if l.A().Name() != "a:b" || l.B().Name() != "b:a" {
		t.Fatalf("iface names: %q %q", l.A().Name(), l.B().Name())
	}
	if l.A().Peer() != l.B() || l.A().Node() != a {
		t.Fatal("peer/node accessors broken")
	}
	s.Run()
}

func TestConnectAsym(t *testing.T) {
	s := New(1)
	a := s.NewNode("a")
	b := s.NewNode("b")
	l := ConnectAsym(a, b,
		LinkConfig{Delay: 5 * time.Millisecond},
		LinkConfig{Delay: 50 * time.Millisecond})
	l.A().SetAddr(netaddr.MustParseAddr("10.0.0.1"))
	l.B().SetAddr(netaddr.MustParseAddr("10.0.0.2"))
	a.SetDefaultRoute(l.A())
	b.SetDefaultRoute(l.B())
	var fwdAt, revAt Time
	b.ListenUDP(7, func(d *Delivery, u *packet.UDP) {
		fwdAt = s.Now()
		b.SendUDP(netaddr.MustParseAddr("10.0.0.2"), netaddr.MustParseAddr("10.0.0.1"), 7, 8)
	})
	a.ListenUDP(8, func(d *Delivery, u *packet.UDP) { revAt = s.Now() })
	a.SendUDP(netaddr.MustParseAddr("10.0.0.1"), netaddr.MustParseAddr("10.0.0.2"), 1, 7)
	s.Run()
	if fwdAt != 5*time.Millisecond {
		t.Fatalf("forward at %v", fwdAt)
	}
	if revAt != 55*time.Millisecond {
		t.Fatalf("reverse at %v", revAt)
	}
}

func TestNodeAccessors(t *testing.T) {
	s := New(1)
	n := s.NewNode("router")
	if n.Sim() != s || n.Name() != "router" || n.String() != "router" {
		t.Fatal("basic accessors broken")
	}
	if s.Node("router") != n || s.Node("ghost") != nil {
		t.Fatal("registry lookup broken")
	}
	if len(s.Nodes()) != 1 {
		t.Fatal("Nodes() broken")
	}
	a := netaddr.MustParseAddr("10.0.0.1")
	n.AddAddr(a)
	if got := n.Addrs(); len(got) != 1 || got[0] != a {
		t.Fatalf("Addrs = %v", got)
	}
	if n.PrimaryAddr() != a {
		t.Fatal("PrimaryAddr broken")
	}
	empty := s.NewNode("empty")
	if empty.PrimaryAddr() != 0 {
		t.Fatal("empty node must have zero primary addr")
	}
	if n.Routes() == nil {
		t.Fatal("Routes accessor broken")
	}
}

func TestAddRouteValidation(t *testing.T) {
	s := New(1)
	a := s.NewNode("a")
	b := s.NewNode("b")
	l := Connect(a, b, LinkConfig{})
	defer func() {
		if recover() == nil {
			t.Fatal("route via foreign iface must panic")
		}
	}()
	a.AddRoute(netaddr.MustParsePrefix("10.0.0.0/8"), l.B())
}

func TestSendMalformed(t *testing.T) {
	s := New(1)
	n := s.NewNode("n")
	if err := n.Send([]byte{1, 2, 3}); err == nil {
		t.Fatal("malformed send must error")
	}
	if n.Stats.Malformed != 1 {
		t.Fatalf("malformed = %d", n.Stats.Malformed)
	}
}

func TestMulticastSendWithNoMembers(t *testing.T) {
	s := New(1)
	n := s.NewNode("n")
	n.AddAddr(netaddr.MustParseAddr("10.0.0.1"))
	// No members: nothing to send, no error (sender-only groups are
	// silent).
	err := n.SendUDP(netaddr.MustParseAddr("10.0.0.1"), netaddr.MustParseAddr("239.0.0.1"),
		4344, 4344, packet.Payload("lonely"))
	if err != nil {
		t.Fatalf("empty group send: %v", err)
	}
	s.Run()
}
