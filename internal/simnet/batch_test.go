package simnet

import (
	"fmt"
	"testing"
	"time"

	"github.com/pcelisp/pcelisp/internal/netaddr"
	"github.com/pcelisp/pcelisp/internal/packet"
)

// twoHopWorld is A —1ms— R —1ms— B with forwarding through R.
type twoHopWorld struct {
	sim     *Sim
	a, r, b *Node
	ar, rb  *Link
	aAddr   netaddr.Addr
	bAddr   netaddr.Addr
}

func newTwoHop(t testing.TB) *twoHopWorld {
	t.Helper()
	s := New(1)
	w := &twoHopWorld{
		sim: s,
		a:   s.NewNode("a"), r: s.NewNode("r"), b: s.NewNode("b"),
	}
	cfg := LinkConfig{Delay: time.Millisecond}
	w.ar = Connect(w.a, w.r, cfg)
	w.ar.A().SetAddr(netaddr.MustParseAddr("10.0.0.1"))
	w.ar.B().SetAddr(netaddr.MustParseAddr("10.0.0.2"))
	w.rb = Connect(w.r, w.b, cfg)
	w.rb.A().SetAddr(netaddr.MustParseAddr("10.0.1.1"))
	w.rb.B().SetAddr(netaddr.MustParseAddr("10.0.1.2"))
	w.aAddr = netaddr.MustParseAddr("10.0.0.1")
	w.bAddr = netaddr.MustParseAddr("10.0.1.2")
	w.a.SetDefaultRoute(w.ar.A())
	w.b.SetDefaultRoute(w.rb.B())
	w.r.AddRoute(netaddr.MustParsePrefix("10.0.1.0/24"), w.rb.A())
	w.r.AddRoute(netaddr.MustParsePrefix("10.0.0.0/24"), w.ar.B())
	return w
}

// TestBatchSameTickFIFO pins the frame-batch FIFO contract: frames sent
// back-to-back in one event share an arrival tick and must deliver in
// send order from a single drain.
func TestBatchSameTickFIFO(t *testing.T) {
	w := newTwoHop(t)
	var got []string
	w.b.ListenUDP(7000, func(d *Delivery, udp *packet.UDP) {
		got = append(got, string(udp.LayerPayload()))
	})
	w.sim.ScheduleFunc(0, func() {
		for i := 0; i < 5; i++ {
			w.a.SendUDP(w.aAddr, w.bAddr, 1, 7000, packet.Payload(fmt.Sprintf("pkt-%d", i)))
		}
	})
	w.sim.Run()
	if len(got) != 5 {
		t.Fatalf("delivered %d packets, want 5: %v", len(got), got)
	}
	for i, p := range got {
		if want := fmt.Sprintf("pkt-%d", i); p != want {
			t.Fatalf("delivery order = %v (position %d: got %q want %q)", got, i, p, want)
		}
	}
}

// TestBatchAdminDownFlushesToAdminDrops pins the per-frame drop
// accounting through a batch drain: frames in flight when the receiving
// interface goes admin-down are each counted as AdminDrops, exactly as
// the per-frame arrival events did before batching.
func TestBatchAdminDownFlushesToAdminDrops(t *testing.T) {
	w := newTwoHop(t)
	delivered := 0
	w.b.ListenUDP(7000, func(*Delivery, *packet.UDP) { delivered++ })
	w.sim.ScheduleFunc(0, func() {
		for i := 0; i < 4; i++ {
			w.a.SendUDP(w.aAddr, w.bAddr, 1, 7000, packet.Payload("x"))
		}
	})
	// Frames are on the wire toward R (arrive at 1ms); kill R's ingress
	// before they land.
	w.sim.ScheduleFunc(500*time.Microsecond, func() { w.ar.B().SetUp(false) })
	w.sim.Run()
	if delivered != 0 {
		t.Fatalf("delivered %d packets through a down interface", delivered)
	}
	if drops := w.ar.B().Counters().AdminDrops; drops != 4 {
		t.Fatalf("AdminDrops = %d, want 4 (one per batched frame)", drops)
	}
	if rx := w.r.Stats.RxPackets; rx != 0 {
		t.Fatalf("router received %d packets through a down interface", rx)
	}
}

// TestBatchDrainOrderVsTimers pins the deterministic interleaving of
// link-frame batches, timers and loopback deliveries at one instant: a
// batch drains contiguously at the queue position where its first frame
// armed it, and loopback deliveries keep their own scheduling position.
func TestBatchDrainOrderVsTimers(t *testing.T) {
	w := newTwoHop(t)
	var got []string
	w.r.AddSniffer(func(d *Delivery) SnifferVerdict {
		src, _, _, _ := packet.PeekUDPPayload(d.Data)
		got = append(got, fmt.Sprintf("frame-%d", src))
		return SnifferConsume
	})
	w.a.ListenUDP(7100, func(*Delivery, *packet.UDP) { got = append(got, "loopback") })
	w.sim.ScheduleFunc(0, func() {
		// Queue position 1: a timer at the arrival instant.
		w.sim.ScheduleFunc(time.Millisecond, func() { got = append(got, "timer-1") })
		// Queue position 2: the drain, armed by the first frame; the
		// second frame rides the same batch, so both deliver here.
		w.a.SendUDP(w.aAddr, w.bAddr, 1, 7000, packet.Payload("p"))
		w.a.SendUDP(w.aAddr, w.bAddr, 2, 7000, packet.Payload("p"))
		// Queue position 3: a later timer; it must see both frames
		// already delivered and schedules a loopback at its own instant,
		// which lands after it.
		w.sim.ScheduleFunc(time.Millisecond, func() {
			got = append(got, "timer-2")
			w.a.SendUDP(w.aAddr, w.aAddr, 3, 7100, packet.Payload("p"))
		})
	})
	w.sim.Run()
	want := []string{"timer-1", "frame-1", "frame-2", "timer-2", "loopback"}
	if len(got) != len(want) {
		t.Fatalf("events = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("events = %v, want %v", got, want)
		}
	}
}

// TestRouteCacheAdminStateAudit pins the route-cache / admin-state
// contract: the per-node LookupRoute memo caches only the routing-table
// result, never interface or node liveness, which transmit() and the
// batch drain re-check per frame. A warmed cache must therefore behave
// exactly like a cold one across SetUp(false) and Fail/Recover — no
// invalidation required.
func TestRouteCacheAdminStateAudit(t *testing.T) {
	w := newTwoHop(t)
	delivered := 0
	w.b.ListenUDP(7000, func(*Delivery, *packet.UDP) { delivered++ })
	send := func(n int) {
		w.sim.ScheduleFunc(0, func() {
			for i := 0; i < n; i++ {
				w.a.SendUDP(w.aAddr, w.bAddr, 1, 7000, packet.Payload("x"))
			}
		})
		w.sim.Run()
	}

	// Warm R's route cache by forwarding.
	send(2)
	if delivered != 2 {
		t.Fatalf("warmup delivered %d, want 2", delivered)
	}
	cached := false
	for _, e := range w.r.rcache {
		if e.valid && e.dst == w.bAddr && e.ok {
			cached = true
		}
	}
	if !cached {
		t.Fatal("forwarding did not warm the route cache; audit test is vacuous")
	}

	// Egress admin-down: the cached route must still hit the transmit
	// check and count AdminDrops on R's egress.
	w.rb.A().SetUp(false)
	send(3)
	if delivered != 2 {
		t.Fatalf("cached route delivered %d packets past a down egress", delivered-2)
	}
	if drops := w.rb.A().Counters().AdminDrops; drops != 3 {
		t.Fatalf("egress AdminDrops = %d, want 3", drops)
	}

	// Recovery needs no cache invalidation either.
	w.rb.A().SetUp(true)
	send(1)
	if delivered != 3 {
		t.Fatalf("delivered %d after egress recovery, want 3", delivered)
	}

	// Node failure: frames are flushed at R's ingress drain, again per
	// frame, with the cache still warm.
	w.r.Fail()
	send(2)
	if delivered != 3 {
		t.Fatalf("failed router forwarded %d packets", delivered-3)
	}
	if drops := w.ar.B().Counters().AdminDrops; drops != 2 {
		t.Fatalf("ingress AdminDrops = %d, want 2", drops)
	}
	w.r.Recover()
	send(1)
	if delivered != 4 {
		t.Fatalf("delivered %d after node recovery, want 4", delivered)
	}
}
