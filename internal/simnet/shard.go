package simnet

import (
	"fmt"
	"sort"

	"github.com/pcelisp/pcelisp/internal/runner"
)

// maxTime is the run-forever sentinel shared by Sim.Run and the shard
// coordinator.
const maxTime = Time(1<<62 - 1)

// stagedFrame is one frame transmitted on a cut link, parked in its
// source shard's exchange buffer until the epoch barrier. The exchange
// sort key (send time, source shard, per-shard sequence) is stable and
// partition-independent, which is what keeps any shard count — including
// one — byte-identical: frames from a single transmit direction are
// already ordered by send time, and cross-direction ties break by a key
// that does not depend on goroutine interleaving.
type stagedFrame struct {
	send    Time
	arrival Time
	src     int // source shard index
	seq     uint64
	to      *Iface
	data    []byte
}

// stageFrame parks a frame transmitted on a cut link for injection into
// the target shard at the next epoch barrier.
func (s *Sim) stageFrame(arrival Time, to *Iface, data []byte) {
	s.stageSeq++
	s.staged = append(s.staged, stagedFrame{
		send: s.now, arrival: arrival, src: s.shardIdx, seq: s.stageSeq, to: to, data: data,
	})
}

// shardCB is one global barrier callback: fn runs once every shard has
// processed every event with timestamp <= at. Same-time callbacks fire
// in registration order.
type shardCB struct {
	at  Time
	seq uint64
	fn  func()
}

// ShardedSim coordinates N Sim instances that together form one logical
// world, advancing them in conservative lock-step epochs.
//
// The epoch length is bounded by the lookahead L: the minimum one-way
// Delay over every cut-link direction (links created by Connect between
// nodes of different shards). An epoch (a, b] with b-a <= L is safe to
// run without mid-epoch communication: a frame sent on a cut link at
// time s in (a, b] arrives no earlier than s+L > b, strictly after the
// barrier, so staging it until the barrier delays nothing observable.
// Injection re-checks this bound per frame, so lowering a cut link's
// Delay below L mid-run panics instead of silently corrupting the
// determinism contract.
//
// With one shard there are no cut links and the coordinator degenerates
// to plain RunUntil calls plus the same barrier-callback semantics, so
// shard count never changes experiment output.
type ShardedSim struct {
	seed      int64
	shards    []*Sim
	cuts      []*Iface
	lookahead Time // 0 = recompute at next run
	now       Time

	cbs   []shardCB
	cbSeq uint64

	pool     *runner.Pool
	jobs     []func()
	epochEnd Time
	merged   []stagedFrame
}

// NewSharded creates a logical world of n lock-step shards (n >= 1).
// Shard 0 is seeded with the world seed itself — a 1-shard world is
// bit-compatible with a standalone New(seed) Sim — and shards i > 0 with
// a deterministic mix, so shard-local nonce streams never collide.
func NewSharded(seed int64, n int) *ShardedSim {
	if n < 1 {
		n = 1
	}
	ss := &ShardedSim{seed: seed}
	ss.shards = make([]*Sim, n)
	for i := 0; i < n; i++ {
		s := New(mixSeed(seed, i))
		s.worldSeed = seed
		s.shard = ss
		s.shardIdx = i
		ss.shards[i] = s
	}
	if n > 1 {
		ss.pool = runner.Shards()
		ss.jobs = make([]func(), n)
		for i := range ss.jobs {
			s := ss.shards[i]
			ss.jobs[i] = func() { s.RunUntil(ss.epochEnd) }
		}
	}
	return ss
}

// mixSeed derives shard i's Sim seed. Shard 0 keeps the world seed.
func mixSeed(seed int64, i int) int64 {
	if i == 0 {
		return seed
	}
	z := uint64(seed) + uint64(i)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// Seed returns the world seed.
func (ss *ShardedSim) Seed() int64 { return ss.seed }

// NumShards returns the shard count.
func (ss *ShardedSim) NumShards() int { return len(ss.shards) }

// Shard returns shard i's Sim. Shard 0 hosts shared infrastructure in
// the topology builders.
func (ss *ShardedSim) Shard(i int) *Sim { return ss.shards[i] }

// Now returns the coordinator's barrier clock (every shard's clock at a
// barrier).
func (ss *ShardedSim) Now() Time {
	t := ss.now
	for _, s := range ss.shards {
		if s.now > t {
			t = s.now
		}
	}
	return t
}

// Pending returns the total number of queued events plus staged frames.
func (ss *ShardedSim) Pending() int {
	n := 0
	for _, s := range ss.shards {
		n += s.Pending() + len(s.staged)
	}
	return n
}

// registerCut records a cut link's ifaces for the lookahead bound; the
// bound is recomputed at the next run, so links may still be added after
// a world has started.
func (ss *ShardedSim) registerCut(a, b *Iface) {
	ss.cuts = append(ss.cuts, a, b)
	ss.lookahead = 0
}

// computeLookahead freezes the epoch bound: the minimum one-way Delay
// over every cut-link direction. Cut links must have positive delay —
// conservative lock-step needs lookahead to make progress.
func (ss *ShardedSim) computeLookahead() {
	ss.lookahead = maxTime
	for _, i := range ss.cuts {
		d := i.dir().cfg.Delay
		if d <= 0 {
			panic(fmt.Sprintf("simnet: cut link %s needs positive Delay for lock-step lookahead", i.name))
		}
		if d < ss.lookahead {
			ss.lookahead = d
		}
	}
}

// At registers a global barrier callback: fn runs once every shard has
// processed every event with timestamp <= t — the sharded equivalent of
// a snapshot taken "at time t" in a single-Sim world. Same-time
// callbacks run in registration order; t earlier than the barrier clock
// clamps to it.
func (ss *ShardedSim) At(t Time, fn func()) {
	if now := ss.Now(); t < now {
		t = now
	}
	ss.cbSeq++
	ss.cbs = append(ss.cbs, shardCB{at: t, seq: ss.cbSeq, fn: fn})
}

// After registers a barrier callback a duration from the barrier clock.
func (ss *ShardedSim) After(d Time, fn func()) { ss.At(ss.Now()+d, fn) }

// Run advances the world until every shard's queue drains and no frames
// remain staged (barrier callbacks keep it alive until they have fired).
func (ss *ShardedSim) Run() { ss.RunUntil(maxTime) }

// RunFor advances the world a span of virtual time past the barrier
// clock.
func (ss *ShardedSim) RunFor(d Time) { ss.RunUntil(ss.Now() + d) }

// RunUntil advances every shard in lock-step epochs until all events
// with timestamps <= deadline have been processed, then advances every
// shard's clock to the deadline (mirroring Sim.RunUntil).
func (ss *ShardedSim) RunUntil(deadline Time) {
	if ss.lookahead == 0 {
		ss.computeLookahead()
	}
	ss.now = ss.Now()
	for {
		ss.inject()
		next, ok := ss.minPending()
		cbAt, cbOK := ss.peekCB()
		if !ok && !cbOK {
			if deadline < maxTime {
				for _, s := range ss.shards {
					s.RunUntil(deadline)
				}
				ss.now = deadline
			}
			return
		}
		end := deadline
		// The epoch may safely include every instant that no cut-link
		// frame sent after the previous barrier can reach: sends happen at
		// >= next, so arrivals land at >= next+L, and an inclusive end of
		// next+L-1 keeps them strictly beyond the barrier.
		if ok && ss.lookahead < maxTime {
			if lim := next + ss.lookahead - 1; lim < end {
				end = lim
			}
		}
		if cbOK && cbAt < end {
			end = cbAt
		}
		if end < ss.now {
			end = ss.now
		}
		ss.runShards(end)
		ss.now = end
		for {
			fn, ok2 := ss.popCB(end)
			if !ok2 {
				break
			}
			fn()
		}
		if end >= deadline {
			return
		}
	}
}

// runShards runs one epoch: every shard processes its events up to and
// including end. Multi-shard worlds fan out across the process-wide
// shard worker pool; the barrier is the pool batch completing.
func (ss *ShardedSim) runShards(end Time) {
	if len(ss.shards) == 1 {
		ss.shards[0].RunUntil(end)
		return
	}
	ss.epochEnd = end
	ss.pool.Do(ss.jobs)
}

// minPending returns the earliest pending timestamp across all shards'
// event queues (staged frames are injected before this is consulted).
func (ss *ShardedSim) minPending() (Time, bool) {
	var min Time
	ok := false
	for _, s := range ss.shards {
		if t, has := s.nextEventTime(); has && (!ok || t < min) {
			min, ok = t, true
		}
	}
	return min, ok
}

// peekCB returns the earliest pending barrier-callback time.
func (ss *ShardedSim) peekCB() (Time, bool) {
	best := -1
	for i := range ss.cbs {
		if best < 0 || ss.cbs[i].at < ss.cbs[best].at ||
			(ss.cbs[i].at == ss.cbs[best].at && ss.cbs[i].seq < ss.cbs[best].seq) {
			best = i
		}
	}
	if best < 0 {
		return 0, false
	}
	return ss.cbs[best].at, true
}

// popCB removes and returns the earliest barrier callback due at or
// before end, in (time, registration) order.
func (ss *ShardedSim) popCB(end Time) (func(), bool) {
	best := -1
	for i := range ss.cbs {
		if ss.cbs[i].at > end {
			continue
		}
		if best < 0 || ss.cbs[i].at < ss.cbs[best].at ||
			(ss.cbs[i].at == ss.cbs[best].at && ss.cbs[i].seq < ss.cbs[best].seq) {
			best = i
		}
	}
	if best < 0 {
		return nil, false
	}
	fn := ss.cbs[best].fn
	ss.cbs = append(ss.cbs[:best], ss.cbs[best+1:]...)
	return fn, true
}

// inject drains every shard's exchange buffer into the target shards,
// in exchange-key order (send time, source shard, sequence). Runs
// single-threaded at a barrier; all shards are quiescent at ss.now.
// Every staged arrival must land strictly after the barrier — that is
// the conservative-lookahead invariant — so a violation (a cut link's
// Delay lowered below the epoch bound mid-run) panics loudly.
func (ss *ShardedSim) inject() {
	ss.merged = ss.merged[:0]
	for _, s := range ss.shards {
		ss.merged = append(ss.merged, s.staged...)
		for i := range s.staged {
			s.staged[i].data = nil
		}
		s.staged = s.staged[:0]
	}
	if len(ss.merged) == 0 {
		return
	}
	sort.Slice(ss.merged, func(a, b int) bool {
		x, y := &ss.merged[a], &ss.merged[b]
		if x.send != y.send {
			return x.send < y.send
		}
		if x.src != y.src {
			return x.src < y.src
		}
		return x.seq < y.seq
	})
	for i := range ss.merged {
		f := &ss.merged[i]
		if f.arrival <= ss.now {
			panic(fmt.Sprintf("simnet: staged frame for %s arrives at %v, not after the %v barrier (cut-link delay below the epoch bound?)",
				f.to.name, f.arrival, ss.now))
		}
		f.to.node.sim.scheduleArrival(f.arrival, f.to, f.data)
		f.data = nil
	}
}
