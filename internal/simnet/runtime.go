package simnet

// This file adapts the simulator to the internal/runtime contract: *Sim
// is a runtime.Runtime as-is (Now/Rand/ScheduleTimer/TimerAt already
// match), and *Node gains the runtime.Host method set as thin wrappers
// over its native API. The wrappers add no behavior — the protocol layer
// driven through them schedules the exact same events in the exact same
// order as before the seam existed, which is what keeps the byte-identity
// and zero-alloc guards green.

import (
	"github.com/pcelisp/pcelisp/internal/netaddr"
	"github.com/pcelisp/pcelisp/internal/packet"
	"github.com/pcelisp/pcelisp/internal/runtime"
)

var (
	_ runtime.Runtime = (*Sim)(nil)
	_ runtime.Host    = (*Node)(nil)
)

// HostName implements runtime.Host.
func (n *Node) HostName() string { return n.name }

// EgressByAddr returns the interface carrying a as an opaque egress
// handle. The nil case must be returned as an untyped nil — boxing a nil
// *Iface into the Egress interface would defeat callers' == nil checks.
func (n *Node) EgressByAddr(a netaddr.Addr) runtime.Egress {
	if ifc := n.IfaceByAddr(a); ifc != nil {
		return ifc
	}
	return nil
}

// AddrUp reports whether the interface carrying a exists and its link is
// bidirectionally up.
func (n *Node) AddrUp(a netaddr.Addr) bool {
	ifc := n.IfaceByAddr(a)
	return ifc != nil && ifc.LinkUp()
}

// RouteUp reports whether dst currently resolves to a route whose egress
// link is up.
func (n *Node) RouteUp(dst netaddr.Addr) bool {
	r, ok := n.LookupRoute(dst)
	return ok && r.Iface.LinkUp()
}

// Output implements runtime.Host over Send.
func (n *Node) Output(data []byte) error { return n.Send(data) }

// OutputVia transmits out a specific egress handle (a *Iface obtained
// from EgressByAddr).
func (n *Node) OutputVia(e runtime.Egress, data []byte) { n.SendVia(e.(*Iface), data) }

// OutputUDP builds, sends and measures an IPv4/UDP datagram.
func (n *Node) OutputUDP(src, dst netaddr.Addr, sport, dport uint16, app ...packet.SerializableLayer) int {
	data := EncodeUDP(src, dst, sport, dport, app...)
	n.Send(data)
	return len(data)
}

// BindUDP implements runtime.Host. Sim nodes host one protocol role
// each, so the addr qualifier is not needed to disambiguate and every
// bind behaves as a wildcard bind on the port (the overlay host, where
// several roles share one socket, keys on (addr, port)).
func (n *Node) BindUDP(addr netaddr.Addr, port uint16, h runtime.UDPHandler) {
	_ = addr
	n.ListenUDP(port, func(d *Delivery, udp *packet.UDP) {
		ip := d.IPv4()
		h(ip.SrcIP, ip.DstIP, udp)
	})
}

// BindUDPRaw implements runtime.Host over the undecoded fast path.
func (n *Node) BindUDPRaw(port uint16, h runtime.RawUDPHandler) {
	n.ListenUDPRaw(port, func(d *Delivery, payload []byte) { h(d.Data, payload) })
}

// AddFrameSniffer implements runtime.Host. The verdict enums are
// numerically identical by contract.
func (n *Node) AddFrameSniffer(s runtime.FrameSniffer) {
	n.AddSniffer(func(d *Delivery) SnifferVerdict { return SnifferVerdict(s(d.Data)) })
}

// JoinGroup implements runtime.Host over Join.
func (n *Node) JoinGroup(g netaddr.Addr) { n.Join(g) }
