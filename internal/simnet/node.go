package simnet

import (
	"fmt"

	"github.com/pcelisp/pcelisp/internal/netaddr"
	"github.com/pcelisp/pcelisp/internal/packet"
)

// Route is a forwarding table entry: packets matching the prefix leave
// through Iface. Links are point-to-point, so no next-hop address is
// needed — the peer interface is the next hop.
type Route struct {
	Iface *Iface
}

// SnifferVerdict is returned by bump-in-the-wire inspectors.
type SnifferVerdict int

const (
	// SnifferPass lets the packet continue normal processing.
	SnifferPass SnifferVerdict = iota
	// SnifferConsume swallows the packet; the sniffer has taken over
	// (e.g. PCED replacing a DNS reply with its encapsulated version).
	SnifferConsume
)

// Sniffer inspects every packet traversing a node — delivered or
// forwarded — before normal processing. This is how the paper places PCEs
// "in the data path of the DNS servers" without changing DNS software.
type Sniffer func(d *Delivery) SnifferVerdict

// UDPHandler consumes a locally delivered UDP datagram.
type UDPHandler func(d *Delivery, udp *packet.UDP)

// RawUDPHandler consumes a locally delivered UDP datagram as raw payload
// bytes, without the node decoding layer structs first. Data-plane hot
// paths (LISP decap) register these; handlers that want the decoded view
// can still call d.Packet().
type RawUDPHandler func(d *Delivery, payload []byte)

// LocalHandler consumes locally delivered packets that no UDP handler
// claimed (e.g. TCP segments at end-hosts). Returning false counts the
// packet as unhandled.
type LocalHandler func(d *Delivery) bool

// NodeStats counts per-node packet dispositions.
type NodeStats struct {
	RxPackets       uint64
	TxPackets       uint64
	Forwarded       uint64
	DeliveredLocal  uint64
	SnifferConsumed uint64
	Unhandled       uint64
	NoRoute         uint64
	TTLExpired      uint64
	Malformed       uint64
}

// Node is a simulated network element: host, router, DNS server, xTR or
// PCE, depending on the handlers installed on it.
type Node struct {
	sim      *Sim
	name     string
	ifaces   []*Iface
	addrs    map[netaddr.Addr]*Iface
	addrList []netaddr.Addr
	routes   *netaddr.Trie[Route]
	sniffers []Sniffer
	udp      map[uint16]UDPHandler
	rawUDP   map[uint16]RawUDPHandler
	local    LocalHandler
	joined   []netaddr.Addr

	// rcache is a small direct-mapped memo of recent LookupRoute results:
	// forwarding is per-packet and destinations repeat heavily, while the
	// routing table almost never changes. Invalidated wholesale by
	// AddRoute.
	rcache [routeCacheSize]routeCacheEntry

	// failed marks a crashed node: it neither sends, forwards, delivers
	// nor answers until Recover. Timers still fire (the process state is
	// what failed, not the handlers' bookkeeping).
	failed bool

	// Stats exposes packet counters for experiments.
	Stats NodeStats
}

// Sim returns the simulation the node belongs to.
func (n *Node) Sim() *Sim { return n.sim }

// Name returns the node's unique name.
func (n *Node) Name() string { return n.name }

// String returns the node's name.
func (n *Node) String() string { return n.name }

// Fail crashes the node: every packet it would send, forward or deliver
// is dropped until Recover. Interfaces keep their own administrative
// state, so a recovered node comes back with the same link config.
func (n *Node) Fail() { n.failed = true }

// Recover restores a failed node.
func (n *Node) Recover() { n.failed = false }

// Failed reports whether the node is currently failed.
func (n *Node) Failed() bool { return n.failed }

// AddAddr assigns a host address not bound to any interface (loopback
// style). The first address added — by AddAddr or Iface.SetAddr — becomes
// the node's primary address.
func (n *Node) AddAddr(a netaddr.Addr) {
	n.registerAddr(a, nil)
}

func (n *Node) registerAddr(a netaddr.Addr, ifc *Iface) {
	if !a.IsValid() {
		panic(fmt.Sprintf("simnet: node %s: invalid address", n.name))
	}
	if _, dup := n.addrs[a]; dup {
		panic(fmt.Sprintf("simnet: node %s: address %v assigned twice", n.name, a))
	}
	n.addrs[a] = ifc
	n.addrList = append(n.addrList, a)
}

// Addrs returns the node's addresses in assignment order.
func (n *Node) Addrs() []netaddr.Addr { return n.addrList }

// PrimaryAddr returns the first assigned address, or the zero Addr.
func (n *Node) PrimaryAddr() netaddr.Addr {
	if len(n.addrList) == 0 {
		return 0
	}
	return n.addrList[0]
}

// HasAddr reports whether a is one of the node's addresses.
func (n *Node) HasAddr(a netaddr.Addr) bool {
	_, ok := n.addrs[a]
	return ok
}

// IfaceByAddr returns the interface carrying address a, or nil (also nil
// for loopback-style addresses added with AddAddr).
func (n *Node) IfaceByAddr(a netaddr.Addr) *Iface { return n.addrs[a] }

// SendVia transmits an already-encoded packet out a specific interface,
// bypassing the routing table. Multihomed tunnel routers use it to steer a
// flow onto the provider link matching its engineered source RLOC.
func (n *Node) SendVia(out *Iface, data []byte) {
	if out == nil || out.node != n {
		panic(fmt.Sprintf("simnet: node %s: SendVia foreign interface", n.name))
	}
	n.Stats.TxPackets++
	n.sim.trace(TraceSend, n.name, "", data)
	out.transmit(data)
}

// Ifaces returns the node's interfaces in creation order.
func (n *Node) Ifaces() []*Iface { return n.ifaces }

// routeCacheSize is the number of direct-mapped LookupRoute memo slots.
const routeCacheSize = 8

type routeCacheEntry struct {
	dst   netaddr.Addr
	route Route
	ok    bool
	valid bool
}

// AddRoute installs a forwarding entry.
func (n *Node) AddRoute(p netaddr.Prefix, out *Iface) {
	if out == nil || out.node != n {
		panic(fmt.Sprintf("simnet: node %s: route %v via foreign interface", n.name, p))
	}
	n.routes.Insert(p, Route{Iface: out})
	n.rcache = [routeCacheSize]routeCacheEntry{}
}

// SetDefaultRoute installs 0.0.0.0/0 via out.
func (n *Node) SetDefaultRoute(out *Iface) {
	n.AddRoute(netaddr.PrefixFrom(0, 0), out)
}

// LookupRoute returns the forwarding entry for dst.
func (n *Node) LookupRoute(dst netaddr.Addr) (Route, bool) {
	c := &n.rcache[uint32(dst)&(routeCacheSize-1)]
	if c.valid && c.dst == dst {
		return c.route, c.ok
	}
	r, _, ok := n.routes.Lookup(dst)
	*c = routeCacheEntry{dst: dst, route: r, ok: ok, valid: true}
	return r, ok
}

// Routes exposes the routing table (for topology debugging tools).
func (n *Node) Routes() *netaddr.Trie[Route] { return n.routes }

// AddSniffer installs a bump-in-the-wire inspector. Sniffers run in
// installation order on every packet that touches the node.
func (n *Node) AddSniffer(s Sniffer) { n.sniffers = append(n.sniffers, s) }

// ListenUDP installs the handler for locally addressed UDP datagrams with
// the given destination port. One handler per port.
func (n *Node) ListenUDP(port uint16, h UDPHandler) {
	if _, dup := n.udp[port]; dup {
		panic(fmt.Sprintf("simnet: node %s: UDP port %d bound twice", n.name, port))
	}
	if _, dup := n.rawUDP[port]; dup {
		panic(fmt.Sprintf("simnet: node %s: UDP port %d bound twice", n.name, port))
	}
	n.udp[port] = h
}

// ListenUDPRaw installs a raw handler for locally addressed UDP datagrams
// with the given destination port: the node validates the IPv4/UDP
// framing by peeking the wire bytes and hands the handler the payload
// slice directly, skipping layer-struct decoding entirely. One handler
// per port, shared with the ListenUDP namespace. Datagrams that fail the
// peek validation fall through to the decoding path, so malformed traffic
// is accounted exactly as before.
func (n *Node) ListenUDPRaw(port uint16, h RawUDPHandler) {
	if _, dup := n.udp[port]; dup {
		panic(fmt.Sprintf("simnet: node %s: UDP port %d bound twice", n.name, port))
	}
	if _, dup := n.rawUDP[port]; dup {
		panic(fmt.Sprintf("simnet: node %s: UDP port %d bound twice", n.name, port))
	}
	if n.rawUDP == nil {
		n.rawUDP = map[uint16]RawUDPHandler{}
	}
	n.rawUDP[port] = h
}

// SetLocalHandler installs the fallback handler for locally addressed
// packets that no UDP port handler consumed.
func (n *Node) SetLocalHandler(h LocalHandler) { n.local = h }

// Join subscribes the node to a multicast group. Joining twice is a safe
// no-op on both the group membership and the node's own joined list.
func (n *Node) Join(g netaddr.Addr) {
	n.sim.JoinGroup(g, n)
	if !n.inGroup(g) {
		n.joined = append(n.joined, g)
	}
}

func (n *Node) inGroup(g netaddr.Addr) bool {
	for _, j := range n.joined {
		if j == g {
			return true
		}
	}
	return false
}

// Delivery is a packet being processed at a node, handed to sniffers and
// handlers. The embedded lazy Packet decodes layers on demand. Delivery
// structs are drawn from a per-Sim free list and recycled when the node
// finishes processing, so handlers must not retain a Delivery (or its
// Packet view) past their callback; the Data bytes themselves may be
// kept.
type Delivery struct {
	// Node is the node processing the packet.
	Node *Node
	// In is the arrival interface (nil for locally originated loopback).
	In *Iface
	// Data is the full packet bytes.
	Data []byte

	pkt *packet.Packet
}

// Packet returns the lazily decoded packet view of Data. The view is
// backed by a pooled container that the node recycles when delivery
// processing completes, so handlers must not retain it past their
// callback (individual layer structs remain valid).
func (d *Delivery) Packet() *packet.Packet {
	if d.pkt == nil {
		d.pkt = packet.NewPooledPacket(d.Data, packet.LayerTypeIPv4, packet.LazyNoCopy)
	}
	return d.pkt
}

// recycle returns the decode scratch to the packet pool once the node has
// finished processing the delivery.
func (d *Delivery) recycle() {
	if d.pkt != nil {
		d.pkt.Release()
		d.pkt = nil
	}
}

// IPv4 returns the outer IPv4 header, or nil if malformed.
func (d *Delivery) IPv4() *packet.IPv4 {
	l := d.Packet().Layer(packet.LayerTypeIPv4)
	if l == nil {
		return nil
	}
	ip, _ := l.(*packet.IPv4)
	return ip
}

// Send transmits an IPv4 packet from this node. The destination is read
// from the packet header; the node routes it like any transit packet
// (without TTL decrement — the node is the origin). Send takes ownership
// of data. Multicast destinations are head-end replicated to all group
// members except the sender.
func (n *Node) Send(data []byte) error {
	if n.failed {
		n.sim.trace(TraceDrop, n.name, "node failed", data)
		return nil
	}
	dst, ok := packet.PeekIPv4Dst(data)
	if !ok {
		n.Stats.Malformed++
		return fmt.Errorf("simnet: node %s: Send of malformed packet", n.name)
	}
	n.Stats.TxPackets++
	n.sim.trace(TraceSend, n.name, "", data)
	if dst.IsMulticast() {
		return n.sendMulticast(dst, data)
	}
	return n.dispatch(dst, data, nil)
}

func (n *Node) sendMulticast(g netaddr.Addr, data []byte) error {
	members := n.sim.GroupMembers(g)
	sent := 0
	for _, m := range members {
		if m == n {
			continue
		}
		dst := m.PrimaryAddr()
		if !dst.IsValid() {
			continue
		}
		cp := make([]byte, len(data))
		copy(cp, data)
		if !packet.PatchIPv4Dst(cp, dst) {
			n.Stats.Malformed++
			continue
		}
		if err := n.dispatch(dst, cp, nil); err != nil {
			return err
		}
		sent++
	}
	if sent == 0 && len(members) > 1 {
		return fmt.Errorf("simnet: node %s: multicast %v reached nobody", n.name, g)
	}
	return nil
}

// dispatch routes data toward dst: locally delivered if dst is ours,
// otherwise out the matching interface.
func (n *Node) dispatch(dst netaddr.Addr, data []byte, in *Iface) error {
	if n.HasAddr(dst) {
		// Local destination: deliver through the event queue so handler
		// reentrancy cannot occur.
		n.sim.scheduleLoopback(n, data)
		return nil
	}
	r, ok := n.LookupRoute(dst)
	if !ok {
		n.Stats.NoRoute++
		if n.sim.Trace != nil {
			n.sim.trace(TraceDrop, n.name, "no route to "+dst.String(), data)
		}
		return nil
	}
	r.Iface.transmit(data)
	return nil
}

// receive processes a packet arriving at the node from iface in (nil for
// loopback).
func (n *Node) receive(data []byte, in *Iface) {
	n.Stats.RxPackets++
	dst, ok := packet.PeekIPv4Dst(data)
	if !ok {
		n.Stats.Malformed++
		n.sim.trace(TraceDrop, n.name, "malformed", data)
		return
	}
	d := n.sim.getDelivery()
	d.Node, d.In, d.Data = n, in, data
	defer n.sim.putDelivery(d)
	for _, s := range n.sniffers {
		if s(d) == SnifferConsume {
			n.Stats.SnifferConsumed++
			return
		}
	}
	if n.HasAddr(dst) || (dst.IsMulticast() && n.inGroup(dst)) {
		n.deliverLocal(d)
		return
	}
	n.forward(dst, data)
}

func (n *Node) deliverLocal(d *Delivery) {
	n.Stats.DeliveredLocal++
	n.sim.trace(TraceDeliver, n.name, "", d.Data)
	if len(n.rawUDP) != 0 {
		if _, dport, payload, ok := packet.PeekUDPPayload(d.Data); ok {
			if h, ok := n.rawUDP[dport]; ok {
				h(d, payload)
				return
			}
		}
	}
	ip := d.IPv4()
	if ip == nil {
		n.Stats.Malformed++
		return
	}
	if ip.Protocol == packet.IPProtocolUDP {
		if l := d.Packet().Layer(packet.LayerTypeUDP); l != nil {
			udp := l.(*packet.UDP)
			if h, ok := n.udp[udp.DstPort]; ok {
				h(d, udp)
				return
			}
		}
	}
	if n.local != nil && n.local(d) {
		return
	}
	n.Stats.Unhandled++
}

func (n *Node) forward(dst netaddr.Addr, data []byte) {
	if len(data) > 8 && data[8] <= 1 {
		n.Stats.TTLExpired++
		n.sim.trace(TraceDrop, n.name, "TTL expired", data)
		return
	}
	if !packet.PatchIPv4TTL(data) {
		n.Stats.Malformed++
		return
	}
	r, ok := n.LookupRoute(dst)
	if !ok {
		n.Stats.NoRoute++
		if n.sim.Trace != nil {
			n.sim.trace(TraceDrop, n.name, "no route to "+dst.String(), data)
		}
		return
	}
	n.Stats.Forwarded++
	n.sim.trace(TraceForward, n.name, "", data)
	r.Iface.transmit(data)
}

// SendUDP builds and sends an IPv4/UDP packet carrying the given
// application layers. This is the workhorse used by every control-plane
// implementation in the repository.
func (n *Node) SendUDP(src, dst netaddr.Addr, sport, dport uint16, app ...packet.SerializableLayer) error {
	return n.Send(EncodeUDP(src, dst, sport, dport, app...))
}

// EncodeUDP serializes an IPv4/UDP packet with computed lengths and
// checksums around the given application layers.
func EncodeUDP(src, dst netaddr.Addr, sport, dport uint16, app ...packet.SerializableLayer) []byte {
	ip := &packet.IPv4{TTL: packet.DefaultTTL, Protocol: packet.IPProtocolUDP, SrcIP: src, DstIP: dst}
	udp := &packet.UDP{SrcPort: sport, DstPort: dport}
	udp.SetNetworkLayerForChecksum(ip)
	layers := make([]packet.SerializableLayer, 0, 2+len(app))
	layers = append(layers, ip, udp)
	for _, l := range app {
		if l != nil { // tolerate "no payload" call sites
			layers = append(layers, l)
		}
	}
	return packet.Serialize(layers...)
}
