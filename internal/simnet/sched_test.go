package simnet

import (
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// diffRunner replays a pre-generated random workload script through a
// Sim, logging execution order. The same script drives the wheel and the
// reference heap; the logs must match exactly.
type diffRunner struct {
	sim       *Sim
	script    []diffStep
	log       []string
	scheduled int
	budget    int
}

type diffStep struct {
	delay    Time
	children []int
}

func (d *diffRunner) OnTimer(arg TimerArg) {
	id := int(arg.N)
	d.log = append(d.log, fmt.Sprintf("%d@%d", id, d.sim.Now()))
	for _, c := range d.script[id].children {
		if d.scheduled >= d.budget {
			return
		}
		d.scheduled++
		d.sim.ScheduleTimer(d.script[c].delay, d, TimerArg{N: int64(c)})
	}
}

// diffDelays is the quantized delay palette for the differential test:
// it deliberately mixes zero delays, sub-tick offsets, same-slot
// collisions, every wheel level, and the far-horizon heap.
var diffDelays = []Time{
	0, 0, 0, // same-instant FIFO ties
	1, 1000, // sub-tick
	65536, 65537, // one tick
	90 * time.Microsecond,
	3 * time.Millisecond,                    // level 0
	700 * time.Millisecond, 2 * time.Second, // level 1
	40 * time.Second, 9 * time.Minute, // level 2
	25 * time.Minute, 3 * time.Hour, // far heap
}

// genScript builds a random workload: each step fires after a quantized
// delay and schedules up to three later steps.
func genScript(rng *rand.Rand, n int) []diffStep {
	script := make([]diffStep, n)
	for i := range script {
		script[i].delay = diffDelays[rng.Intn(len(diffDelays))]
		for k := rng.Intn(4); k > 0 && i+1 < n; k-- {
			script[i].children = append(script[i].children, i+1+rng.Intn(n-i-1))
		}
	}
	return script
}

// TestWheelMatchesReferenceHeap is the ordering guarantee behind every
// experiment table: random workloads replayed through the timing wheel
// and the reference heap must execute in the identical order, under
// identical RunUntil slicing.
func TestWheelMatchesReferenceHeap(t *testing.T) {
	for trial := 0; trial < 40; trial++ {
		rng := rand.New(rand.NewSource(int64(trial) + 1))
		script := genScript(rng, 80)
		roots := make([]int, 1+rng.Intn(6))
		for i := range roots {
			roots[i] = rng.Intn(len(script))
		}
		slices := make([]Time, 1+rng.Intn(5))
		for i := range slices {
			slices[i] = diffDelays[rng.Intn(len(diffDelays))] + Time(rng.Intn(1000))
		}

		run := func(engine Engine) ([]string, int) {
			sim := NewWithEngine(7, engine)
			d := &diffRunner{sim: sim, script: script, budget: 5000}
			for _, r := range roots {
				d.scheduled++
				sim.ScheduleTimer(script[r].delay, d, TimerArg{N: int64(r)})
			}
			n := 0
			// Random RunUntil slicing exercises deadline clock advances
			// and scheduling after them.
			deadline := Time(0)
			for i, s := range slices {
				deadline += s
				n += sim.RunUntil(deadline)
				// Post-advance roots land relative to the advanced clock.
				extra := roots[i%len(roots)]
				d.scheduled++
				sim.ScheduleTimer(script[extra].delay, d, TimerArg{N: int64(extra)})
			}
			n += sim.Run()
			return d.log, n
		}

		wheelLog, wheelN := run(EngineWheel)
		heapLog, heapN := run(EngineHeap)
		if wheelN != heapN {
			t.Fatalf("trial %d: event counts diverged: wheel=%d heap=%d", trial, wheelN, heapN)
		}
		if len(wheelLog) != len(heapLog) {
			t.Fatalf("trial %d: log lengths diverged: wheel=%d heap=%d", trial, len(wheelLog), len(heapLog))
		}
		for i := range wheelLog {
			if wheelLog[i] != heapLog[i] {
				t.Fatalf("trial %d: execution order diverged at %d: wheel=%s heap=%s",
					trial, i, wheelLog[i], heapLog[i])
			}
		}
	}
}

// orderRecorder appends its N payload on fire.
type orderRecorder struct {
	got []int64
}

func (o *orderRecorder) OnTimer(arg TimerArg) { o.got = append(o.got, arg.N) }

// TestWheelFarHorizon exercises events beyond the level-2 window: they
// must wait in the far heap, rebase the wheel when reached, and fire in
// order.
func TestWheelFarHorizon(t *testing.T) {
	s := New(1)
	rec := &orderRecorder{}
	s.ScheduleTimer(5*time.Hour, rec, TimerArg{N: 3})
	s.ScheduleTimer(30*time.Minute, rec, TimerArg{N: 2})
	s.ScheduleTimer(time.Millisecond, rec, TimerArg{N: 1})
	s.ScheduleTimer(5*time.Hour, rec, TimerArg{N: 4}) // same instant, later seq
	if s.Pending() != 4 {
		t.Fatalf("Pending = %d", s.Pending())
	}
	if n := s.Run(); n != 4 {
		t.Fatalf("processed %d events", n)
	}
	want := []int64{1, 2, 3, 4}
	for i, w := range want {
		if rec.got[i] != w {
			t.Fatalf("order = %v, want %v", rec.got, want)
		}
	}
	if s.Now() != 5*time.Hour {
		t.Fatalf("Now = %v", s.Now())
	}
}

// TestWheelBurstFIFO schedules a large same-instant burst and checks
// strict scheduling order — the property the miss-queue and multicast
// sync logic depend on.
func TestWheelBurstFIFO(t *testing.T) {
	s := New(1)
	rec := &orderRecorder{}
	const n = 4096
	for i := 0; i < n; i++ {
		s.ScheduleTimer(time.Second, rec, TimerArg{N: int64(i)})
	}
	s.Run()
	if len(rec.got) != n {
		t.Fatalf("fired %d of %d", len(rec.got), n)
	}
	for i := 0; i < n; i++ {
		if rec.got[i] != int64(i) {
			t.Fatalf("burst order broken at %d: got %d", i, rec.got[i])
		}
	}
}

// chainTimer reschedules itself until its counter drains, crossing many
// slot and level boundaries.
type chainTimer struct {
	s    *Sim
	step Time
	left int
}

func (c *chainTimer) OnTimer(TimerArg) {
	if c.left > 0 {
		c.left--
		c.s.ScheduleTimer(c.step, c, TimerArg{})
	}
}

// TestWheelCascadeChain walks a self-rescheduling timer across level-0
// and level-1 boundaries and checks the clock lands exactly where the
// arithmetic says.
func TestWheelCascadeChain(t *testing.T) {
	for _, step := range []Time{time.Microsecond, 100 * time.Microsecond, 17 * time.Millisecond, 5 * time.Second} {
		s := New(1)
		c := &chainTimer{s: s, step: step, left: 300}
		s.ScheduleTimer(0, c, TimerArg{})
		n := s.Run()
		if n != 301 {
			t.Fatalf("step %v: processed %d events", step, n)
		}
		if s.Now() != 300*step {
			t.Fatalf("step %v: Now = %v, want %v", step, s.Now(), 300*step)
		}
	}
}

// TestWheelScheduleAfterDeadlineAdvance schedules after RunUntil advanced
// the clock into unexplored wheel territory — the stale-base regression
// case.
func TestWheelScheduleAfterDeadlineAdvance(t *testing.T) {
	s := New(1)
	rec := &orderRecorder{}
	s.ScheduleTimer(20*time.Minute, rec, TimerArg{N: 99}) // far heap
	s.RunUntil(10 * time.Minute)                          // advances clock, fires nothing
	if len(rec.got) != 0 || s.Now() != 10*time.Minute {
		t.Fatalf("premature fire or wrong clock: %v at %v", rec.got, s.Now())
	}
	// New events relative to the advanced clock, earlier than the far one.
	s.ScheduleTimer(time.Millisecond, rec, TimerArg{N: 1})
	s.ScheduleTimer(3*time.Minute, rec, TimerArg{N: 2})
	s.Run()
	want := []int64{1, 2, 99}
	if len(rec.got) != 3 {
		t.Fatalf("fired %v", rec.got)
	}
	for i, w := range want {
		if rec.got[i] != w {
			t.Fatalf("order = %v, want %v", rec.got, want)
		}
	}
}
