package simnet

import (
	"testing"
	"time"

	"github.com/pcelisp/pcelisp/internal/netaddr"
	"github.com/pcelisp/pcelisp/internal/packet"
)

func TestEventOrdering(t *testing.T) {
	s := New(1)
	var got []int
	s.ScheduleFunc(30*time.Millisecond, func() { got = append(got, 3) })
	s.ScheduleFunc(10*time.Millisecond, func() { got = append(got, 1) })
	s.ScheduleFunc(20*time.Millisecond, func() { got = append(got, 2) })
	// Same-time events fire in scheduling order, before later ones.
	s.ScheduleFunc(20*time.Millisecond, func() { got = append(got, 4) })
	n := s.Run()
	if n != 4 {
		t.Fatalf("processed %d events", n)
	}
	want := []int{1, 2, 4, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if s.Now() != 30*time.Millisecond {
		t.Fatalf("Now = %v", s.Now())
	}
}

func TestSameTimeFIFOWithinEvent(t *testing.T) {
	s := New(1)
	var got []int
	s.ScheduleFunc(0, func() {
		s.ScheduleFunc(0, func() { got = append(got, 1) })
		s.ScheduleFunc(0, func() { got = append(got, 2) })
	})
	s.Run()
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("nested order = %v", got)
	}
}

func TestRunUntilAdvancesClock(t *testing.T) {
	s := New(1)
	fired := false
	s.ScheduleFunc(100*time.Millisecond, func() { fired = true })
	s.RunUntil(50 * time.Millisecond)
	if fired {
		t.Fatal("event fired early")
	}
	if s.Now() != 50*time.Millisecond {
		t.Fatalf("Now = %v, want 50ms", s.Now())
	}
	if s.Pending() != 1 {
		t.Fatalf("Pending = %d", s.Pending())
	}
	s.RunFor(50 * time.Millisecond)
	if !fired {
		t.Fatal("event did not fire at deadline")
	}
}

func TestStop(t *testing.T) {
	s := New(1)
	n := 0
	s.ScheduleFunc(1, func() { n++; s.Stop() })
	s.ScheduleFunc(2, func() { n++ })
	s.Run()
	if n != 1 {
		t.Fatalf("Stop did not halt the loop: n=%d", n)
	}
	// Run again resumes.
	s.Run()
	if n != 2 {
		t.Fatalf("resume failed: n=%d", n)
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	s := New(1)
	s.RunUntil(10 * time.Millisecond)
	fired := Time(-1)
	s.ScheduleFunc(-5*time.Millisecond, func() { fired = s.Now() })
	s.Run()
	if fired != 10*time.Millisecond {
		t.Fatalf("clamped event fired at %v", fired)
	}
}

func TestDeterministicRand(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Rand().Uint64() != b.Rand().Uint64() {
			t.Fatal("same seed must produce the same stream")
		}
	}
}

func TestDuplicateNodePanics(t *testing.T) {
	s := New(1)
	s.NewNode("x")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate node must panic")
		}
	}()
	s.NewNode("x")
}

// twoNodes wires a <-> b with the given config and addresses.
func twoNodes(s *Sim, cfg LinkConfig) (*Node, *Node, *Link) {
	a := s.NewNode("a")
	b := s.NewNode("b")
	l := Connect(a, b, cfg)
	l.A().SetAddr(netaddr.MustParseAddr("192.0.2.1"))
	l.B().SetAddr(netaddr.MustParseAddr("192.0.2.2"))
	a.SetDefaultRoute(l.A())
	b.SetDefaultRoute(l.B())
	return a, b, l
}

func TestPointToPointDelivery(t *testing.T) {
	s := New(1)
	a, b, _ := twoNodes(s, LinkConfig{Delay: 25 * time.Millisecond})
	var at Time
	var gotPayload string
	b.ListenUDP(7777, func(d *Delivery, udp *packet.UDP) {
		at = s.Now()
		gotPayload = string(udp.LayerPayload())
	})
	err := a.SendUDP(a.PrimaryAddr(), b.PrimaryAddr(), 1234, 7777, packet.Payload("ping"))
	if err != nil {
		t.Fatal(err)
	}
	s.Run()
	if gotPayload != "ping" {
		t.Fatalf("payload = %q", gotPayload)
	}
	if at != 25*time.Millisecond {
		t.Fatalf("delivered at %v, want 25ms", at)
	}
	if a.Stats.TxPackets != 1 || b.Stats.DeliveredLocal != 1 {
		t.Fatalf("stats: %+v / %+v", a.Stats, b.Stats)
	}
}

func TestSerializationDelay(t *testing.T) {
	s := New(1)
	// 8000 bits/sec: a 100-byte packet takes 100ms to serialize.
	a, b, _ := twoNodes(s, LinkConfig{Delay: 10 * time.Millisecond, RateBps: 8000})
	var times []Time
	b.ListenUDP(7, func(d *Delivery, udp *packet.UDP) { times = append(times, s.Now()) })
	payload := make([]byte, 100-packet.IPv4HeaderLen-packet.UDPHeaderLen)
	// Two back-to-back packets: the second waits for the first to serialize.
	a.SendUDP(a.PrimaryAddr(), b.PrimaryAddr(), 1, 7, packet.Payload(payload))
	a.SendUDP(a.PrimaryAddr(), b.PrimaryAddr(), 1, 7, packet.Payload(payload))
	s.Run()
	if len(times) != 2 {
		t.Fatalf("delivered %d packets", len(times))
	}
	if times[0] != 110*time.Millisecond {
		t.Fatalf("first delivery at %v, want 110ms", times[0])
	}
	if times[1] != 210*time.Millisecond {
		t.Fatalf("second delivery at %v, want 210ms (queued behind first)", times[1])
	}
}

func TestQueueOverflowDrops(t *testing.T) {
	s := New(1)
	a, b, l := twoNodes(s, LinkConfig{Delay: time.Millisecond, RateBps: 8000, QueueBytes: 150})
	delivered := 0
	b.ListenUDP(7, func(d *Delivery, udp *packet.UDP) { delivered++ })
	payload := make([]byte, 72) // 100-byte packets
	for i := 0; i < 5; i++ {
		a.SendUDP(a.PrimaryAddr(), b.PrimaryAddr(), 1, 7, packet.Payload(payload))
	}
	s.Run()
	c := l.A().Counters()
	if c.QueueDrops == 0 {
		t.Fatal("expected tail drops")
	}
	if delivered+int(c.QueueDrops) != 5 {
		t.Fatalf("delivered %d + dropped %d != 5", delivered, c.QueueDrops)
	}
}

func TestRandomLoss(t *testing.T) {
	s := New(7)
	a, b, l := twoNodes(s, LinkConfig{Delay: time.Millisecond, Loss: 0.5})
	delivered := 0
	b.ListenUDP(7, func(d *Delivery, udp *packet.UDP) { delivered++ })
	const sent = 1000
	for i := 0; i < sent; i++ {
		a.SendUDP(a.PrimaryAddr(), b.PrimaryAddr(), 1, 7, packet.Payload("x"))
	}
	s.Run()
	c := l.A().Counters()
	if int(c.RandomLoss)+delivered != sent {
		t.Fatalf("loss %d + delivered %d != %d", c.RandomLoss, delivered, sent)
	}
	if delivered < 400 || delivered > 600 {
		t.Fatalf("delivered %d of %d at p=0.5", delivered, sent)
	}
}

func TestForwardingChainAndTTL(t *testing.T) {
	s := New(1)
	// a -- r1 -- r2 -- b, /31-style addressing per hop.
	a := s.NewNode("a")
	r1 := s.NewNode("r1")
	r2 := s.NewNode("r2")
	b := s.NewNode("b")
	cfg := LinkConfig{Delay: 5 * time.Millisecond}
	l1 := Connect(a, r1, cfg)
	l2 := Connect(r1, r2, cfg)
	l3 := Connect(r2, b, cfg)
	l1.A().SetAddr(netaddr.MustParseAddr("10.0.1.1"))
	l1.B().SetAddr(netaddr.MustParseAddr("10.0.1.2"))
	l2.A().SetAddr(netaddr.MustParseAddr("10.0.2.1"))
	l2.B().SetAddr(netaddr.MustParseAddr("10.0.2.2"))
	l3.A().SetAddr(netaddr.MustParseAddr("10.0.3.1"))
	l3.B().SetAddr(netaddr.MustParseAddr("10.0.3.2"))
	a.SetDefaultRoute(l1.A())
	r1.SetDefaultRoute(l2.A())
	r2.SetDefaultRoute(l3.A())
	b.SetDefaultRoute(l3.B())

	var at Time
	var ttl uint8
	b.ListenUDP(9, func(d *Delivery, udp *packet.UDP) {
		at = s.Now()
		ttl = d.IPv4().TTL
	})
	a.SendUDP(netaddr.MustParseAddr("10.0.1.1"), netaddr.MustParseAddr("10.0.3.2"), 1, 9, packet.Payload("fwd"))
	s.Run()
	if at != 15*time.Millisecond {
		t.Fatalf("delivered at %v, want 15ms (3 hops x 5ms)", at)
	}
	// Two forwarding nodes each decrement TTL once.
	if ttl != packet.DefaultTTL-2 {
		t.Fatalf("TTL = %d, want %d", ttl, packet.DefaultTTL-2)
	}
	if r1.Stats.Forwarded != 1 || r2.Stats.Forwarded != 1 {
		t.Fatalf("forward counters: r1=%d r2=%d", r1.Stats.Forwarded, r2.Stats.Forwarded)
	}
	// Checksum must remain valid end to end.
	if !packet.VerifyIPv4Checksum(nil) == false {
		t.Log("sanity")
	}
}

func TestTTLExpiry(t *testing.T) {
	s := New(1)
	// Two routers in a deliberate loop: packet must die, not livelock.
	r1 := s.NewNode("r1")
	r2 := s.NewNode("r2")
	l := Connect(r1, r2, LinkConfig{Delay: time.Millisecond})
	l.A().SetAddr(netaddr.MustParseAddr("10.0.0.1"))
	l.B().SetAddr(netaddr.MustParseAddr("10.0.0.2"))
	r1.SetDefaultRoute(l.A())
	r2.SetDefaultRoute(l.B())
	r1.Send(EncodeUDP(netaddr.MustParseAddr("10.0.0.1"), netaddr.MustParseAddr("99.0.0.1"), 1, 2, packet.Payload("loop")))
	s.Run()
	if r1.Stats.TTLExpired+r2.Stats.TTLExpired != 1 {
		t.Fatalf("TTL expiry count = %d", r1.Stats.TTLExpired+r2.Stats.TTLExpired)
	}
}

func TestNoRouteCounted(t *testing.T) {
	s := New(1)
	a := s.NewNode("a")
	a.AddAddr(netaddr.MustParseAddr("10.0.0.1"))
	a.Send(EncodeUDP(netaddr.MustParseAddr("10.0.0.1"), netaddr.MustParseAddr("99.0.0.1"), 1, 2))
	s.Run()
	if a.Stats.NoRoute != 1 {
		t.Fatalf("NoRoute = %d", a.Stats.NoRoute)
	}
}

func TestLocalLoopbackDelivery(t *testing.T) {
	s := New(1)
	a := s.NewNode("a")
	addr := netaddr.MustParseAddr("10.0.0.1")
	a.AddAddr(addr)
	got := ""
	a.ListenUDP(53, func(d *Delivery, udp *packet.UDP) { got = string(udp.LayerPayload()) })
	a.SendUDP(addr, addr, 53, 53, packet.Payload("self"))
	s.Run()
	if got != "self" {
		t.Fatalf("loopback payload = %q", got)
	}
}

func TestSnifferConsume(t *testing.T) {
	s := New(1)
	a, b, _ := twoNodes(s, LinkConfig{Delay: time.Millisecond})
	consumed := 0
	b.AddSniffer(func(d *Delivery) SnifferVerdict {
		if udpl := d.Packet().Layer(packet.LayerTypeUDP); udpl != nil {
			if udpl.(*packet.UDP).DstPort == 53 {
				consumed++
				return SnifferConsume
			}
		}
		return SnifferPass
	})
	delivered := 0
	b.ListenUDP(53, func(d *Delivery, udp *packet.UDP) { delivered++ })
	b.ListenUDP(54, func(d *Delivery, udp *packet.UDP) { delivered++ })
	a.SendUDP(a.PrimaryAddr(), b.PrimaryAddr(), 1, 53, packet.Payload("dns"))
	a.SendUDP(a.PrimaryAddr(), b.PrimaryAddr(), 1, 54, packet.Payload("other"))
	s.Run()
	if consumed != 1 || delivered != 1 {
		t.Fatalf("consumed=%d delivered=%d", consumed, delivered)
	}
	if b.Stats.SnifferConsumed != 1 {
		t.Fatalf("SnifferConsumed = %d", b.Stats.SnifferConsumed)
	}
}

func TestSnifferSeesTransitTraffic(t *testing.T) {
	s := New(1)
	// a -- mid -- b: sniffer on mid sees the forwarded packet.
	a := s.NewNode("a")
	mid := s.NewNode("mid")
	b := s.NewNode("b")
	cfg := LinkConfig{Delay: time.Millisecond}
	l1 := Connect(a, mid, cfg)
	l2 := Connect(mid, b, cfg)
	l1.A().SetAddr(netaddr.MustParseAddr("10.0.1.1"))
	l1.B().SetAddr(netaddr.MustParseAddr("10.0.1.2"))
	l2.A().SetAddr(netaddr.MustParseAddr("10.0.2.1"))
	l2.B().SetAddr(netaddr.MustParseAddr("10.0.2.2"))
	a.SetDefaultRoute(l1.A())
	mid.SetDefaultRoute(l2.A())
	b.SetDefaultRoute(l2.B())
	seen := 0
	mid.AddSniffer(func(d *Delivery) SnifferVerdict { seen++; return SnifferPass })
	delivered := 0
	b.ListenUDP(9, func(d *Delivery, udp *packet.UDP) { delivered++ })
	a.SendUDP(netaddr.MustParseAddr("10.0.1.1"), netaddr.MustParseAddr("10.0.2.2"), 1, 9)
	s.Run()
	if seen != 1 || delivered != 1 {
		t.Fatalf("seen=%d delivered=%d", seen, delivered)
	}
}

func TestUnhandledCounted(t *testing.T) {
	s := New(1)
	a, b, _ := twoNodes(s, LinkConfig{Delay: time.Millisecond})
	a.SendUDP(a.PrimaryAddr(), b.PrimaryAddr(), 1, 9999, packet.Payload("nobody"))
	s.Run()
	if b.Stats.Unhandled != 1 {
		t.Fatalf("Unhandled = %d", b.Stats.Unhandled)
	}
}

func TestLocalHandlerFallback(t *testing.T) {
	s := New(1)
	a, b, _ := twoNodes(s, LinkConfig{Delay: time.Millisecond})
	var got *packet.TCP
	b.SetLocalHandler(func(d *Delivery) bool {
		if l := d.Packet().Layer(packet.LayerTypeTCP); l != nil {
			got = l.(*packet.TCP)
			return true
		}
		return false
	})
	ip := &packet.IPv4{TTL: 64, Protocol: packet.IPProtocolTCP, SrcIP: a.PrimaryAddr(), DstIP: b.PrimaryAddr()}
	tcp := &packet.TCP{SrcPort: 1000, DstPort: 80, SYN: true}
	tcp.SetNetworkLayerForChecksum(ip)
	a.Send(packet.Serialize(ip, tcp))
	s.Run()
	if got == nil || !got.SYN {
		t.Fatal("TCP SYN not delivered to local handler")
	}
}

func TestMulticastHeadEndReplication(t *testing.T) {
	s := New(1)
	// hub connected to m1, m2, m3; m1 multicasts to the ETR sync group.
	hub := s.NewNode("hub")
	group := netaddr.MustParseAddr("239.1.1.1")
	members := make([]*Node, 3)
	gotAt := map[string]Time{}
	for i := range members {
		m := s.NewNode(string(rune('x' + i)))
		members[i] = m
		l := Connect(m, hub, LinkConfig{Delay: time.Duration(i+1) * time.Millisecond})
		l.A().SetAddr(netaddr.AddrFrom4(10, 0, byte(i), 1))
		l.B().SetAddr(netaddr.AddrFrom4(10, 0, byte(i), 2))
		m.SetDefaultRoute(l.A())
		hub.AddRoute(netaddr.PrefixFrom(netaddr.AddrFrom4(10, 0, byte(i), 0), 24), l.B())
		m.Join(group)
		m.ListenUDP(4344, func(d *Delivery, udp *packet.UDP) {
			gotAt[d.Node.Name()] = s.Now()
		})
	}
	err := members[0].SendUDP(members[0].PrimaryAddr(), group, 4344, 4344, packet.Payload("sync"))
	if err != nil {
		t.Fatal(err)
	}
	s.Run()
	if len(gotAt) != 2 {
		t.Fatalf("delivered to %d members, want 2 (sender excluded): %v", len(gotAt), gotAt)
	}
	if _, self := gotAt["x"]; self {
		t.Fatal("sender must not receive its own multicast")
	}
	// y is 1ms (x->hub) + 2ms (hub->y) away.
	if gotAt["y"] != 3*time.Millisecond {
		t.Fatalf("y received at %v", gotAt["y"])
	}
	if gotAt["z"] != 4*time.Millisecond {
		t.Fatalf("z received at %v", gotAt["z"])
	}
}

func TestJoinGroupValidation(t *testing.T) {
	s := New(1)
	n := s.NewNode("n")
	defer func() {
		if recover() == nil {
			t.Fatal("joining a unicast address must panic")
		}
	}()
	n.Join(netaddr.MustParseAddr("10.0.0.1"))
}

// TestJoinGroupDuplicateDelivery is the double-join regression test: a
// node joining the same group twice must receive exactly one copy of
// each multicast, and the membership list must hold it once.
func TestJoinGroupDuplicateDelivery(t *testing.T) {
	s := New(1)
	group := netaddr.MustParseAddr("239.1.1.1")
	hub := s.NewNode("hub")
	src := s.NewNode("src")
	dst := s.NewNode("dst")
	for i, m := range []*Node{src, dst} {
		l := Connect(m, hub, LinkConfig{Delay: time.Millisecond})
		l.A().SetAddr(netaddr.AddrFrom4(10, 0, byte(i), 1))
		l.B().SetAddr(netaddr.AddrFrom4(10, 0, byte(i), 2))
		m.SetDefaultRoute(l.A())
		hub.AddRoute(netaddr.PrefixFrom(netaddr.AddrFrom4(10, 0, byte(i), 0), 24), l.B())
	}
	src.Join(group)
	dst.Join(group)
	dst.Join(group) // double join must not cause double delivery
	dst.Join(group)
	if got := len(s.GroupMembers(group)); got != 2 {
		t.Fatalf("members = %d, want 2", got)
	}
	if got := len(dst.joined); got != 1 {
		t.Fatalf("dst.joined has %d entries, want 1", got)
	}
	delivered := 0
	dst.ListenUDP(4344, func(d *Delivery, udp *packet.UDP) { delivered++ })
	if err := src.SendUDP(src.PrimaryAddr(), group, 4344, 4344, packet.Payload("once")); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if delivered != 1 {
		t.Fatalf("delivered %d copies after double join, want 1", delivered)
	}
}

// TestLeaveGroupNonMember checks LeaveGroup is a safe no-op for nodes
// that never joined (and for repeated leaves).
func TestLeaveGroupNonMember(t *testing.T) {
	s := New(1)
	g := netaddr.MustParseAddr("239.0.0.2")
	member := s.NewNode("member")
	stranger := s.NewNode("stranger")
	s.JoinGroup(g, member)
	s.LeaveGroup(g, stranger) // never joined
	if m := s.GroupMembers(g); len(m) != 1 || m[0] != member {
		t.Fatalf("members after stranger leave = %v", m)
	}
	s.LeaveGroup(g, member)
	s.LeaveGroup(g, member) // double leave
	if m := s.GroupMembers(g); len(m) != 0 {
		t.Fatalf("members after double leave = %v", m)
	}
	s.LeaveGroup(netaddr.MustParseAddr("239.9.9.9"), member) // unknown group
}

func TestLeaveGroup(t *testing.T) {
	s := New(1)
	g := netaddr.MustParseAddr("239.0.0.1")
	n1 := s.NewNode("n1")
	n2 := s.NewNode("n2")
	s.JoinGroup(g, n1)
	s.JoinGroup(g, n2)
	s.JoinGroup(g, n2) // idempotent
	if len(s.GroupMembers(g)) != 2 {
		t.Fatalf("members = %d", len(s.GroupMembers(g)))
	}
	s.LeaveGroup(g, n1)
	if m := s.GroupMembers(g); len(m) != 1 || m[0] != n2 {
		t.Fatalf("members after leave = %v", m)
	}
}

func TestTraceEvents(t *testing.T) {
	s := New(1)
	var kinds []TraceEventKind
	s.Trace = func(ev TraceEvent) { kinds = append(kinds, ev.Kind) }
	a, b, _ := twoNodes(s, LinkConfig{Delay: time.Millisecond})
	b.ListenUDP(1, func(d *Delivery, udp *packet.UDP) {})
	a.SendUDP(a.PrimaryAddr(), b.PrimaryAddr(), 1, 1)
	s.Run()
	if len(kinds) != 2 || kinds[0] != TraceSend || kinds[1] != TraceDeliver {
		t.Fatalf("trace kinds = %v", kinds)
	}
	if TraceSend.String() != "send" || TraceDrop.String() != "drop" ||
		TraceForward.String() != "forward" || TraceDeliver.String() != "deliver" {
		t.Fatal("trace kind names wrong")
	}
}

func TestDuplicateAddrPanics(t *testing.T) {
	s := New(1)
	n := s.NewNode("n")
	n.AddAddr(netaddr.MustParseAddr("10.0.0.1"))
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate address must panic")
		}
	}()
	n.AddAddr(netaddr.MustParseAddr("10.0.0.1"))
}

func TestDuplicateUDPPortPanics(t *testing.T) {
	s := New(1)
	n := s.NewNode("n")
	n.ListenUDP(53, func(*Delivery, *packet.UDP) {})
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate port bind must panic")
		}
	}()
	n.ListenUDP(53, func(*Delivery, *packet.UDP) {})
}

// argRecorder logs every TimerArg it receives.
type argRecorder struct {
	got []TimerArg
	at  []Time
	s   *Sim
}

func (a *argRecorder) OnTimer(arg TimerArg) {
	a.got = append(a.got, arg)
	a.at = append(a.at, a.s.Now())
}

// TestTypedTimers covers the typed-event API directly: argument
// fidelity, negative-delay clamping and absolute scheduling.
func TestTypedTimers(t *testing.T) {
	s := New(1)
	rec := &argRecorder{s: s}
	type payload struct{ x int }
	p := &payload{x: 42}
	s.ScheduleTimer(10*time.Millisecond, rec, TimerArg{Kind: 2, N: 7, S: "qname", P: p})
	s.ScheduleTimer(-time.Second, rec, TimerArg{Kind: 1}) // clamped to now
	s.TimerAt(5*time.Millisecond, rec, TimerArg{Kind: 3})
	s.Run()
	if len(rec.got) != 3 {
		t.Fatalf("fired %d timers", len(rec.got))
	}
	if rec.got[0].Kind != 1 || rec.at[0] != 0 {
		t.Fatalf("negative delay not clamped: %+v at %v", rec.got[0], rec.at[0])
	}
	if rec.got[1].Kind != 3 || rec.at[1] != 5*time.Millisecond {
		t.Fatalf("TimerAt misfired: %+v at %v", rec.got[1], rec.at[1])
	}
	last := rec.got[2]
	if last.Kind != 2 || last.N != 7 || last.S != "qname" || last.P.(*payload) != p {
		t.Fatalf("TimerArg mangled: %+v", last)
	}
	if rec.at[2] != 10*time.Millisecond {
		t.Fatalf("delayed timer at %v", rec.at[2])
	}
}

// TestFuncShimInterleavesWithTyped checks the ScheduleFunc shim and
// typed timers share one (time, seq) order.
func TestFuncShimInterleavesWithTyped(t *testing.T) {
	s := New(1)
	var order []int
	rec := funcTimer(func() { order = append(order, 2) })
	s.ScheduleFunc(time.Millisecond, func() { order = append(order, 1) })
	s.ScheduleTimer(time.Millisecond, rec, TimerArg{})
	s.ScheduleFunc(time.Millisecond, func() { order = append(order, 3) })
	s.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
}

func BenchmarkOneHopPacket(b *testing.B) {
	s := New(1)
	a, dst, _ := twoNodes(s, LinkConfig{Delay: time.Millisecond})
	dst.ListenUDP(7, func(d *Delivery, udp *packet.UDP) {})
	payload := packet.Payload(make([]byte, 64))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.SendUDP(a.PrimaryAddr(), dst.PrimaryAddr(), 1, 7, payload)
		s.Run()
	}
}
