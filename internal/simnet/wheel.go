package simnet

import (
	"math/bits"
	"slices"
)

// wheelSched is the production scheduler: a three-level hierarchical
// timing wheel with a sorted near-future lane and a heap fallback for
// far-horizon events.
//
// Layout. Virtual time is bucketed into ticks of 2^tickShift ns (~65µs).
// Level 0 holds one slice per tick for the next 256 ticks (~16.8ms),
// level 1 one slice per 256 ticks (~4.3s total), level 2 one slice per
// 65536 ticks (~18.3 minutes total). Events beyond the level-2 horizon
// wait in a min-heap and are folded into the wheel when the levels drain
// into their range. Scheduling is O(1): compute the level window by
// comparing the event's tick against the three bases, append to the slot,
// set an occupancy bit.
//
// The lane. Execution pulls the earliest occupied level-0 slot into the
// lane, sorts it once by (at, seq), and serves events from the front.
// New events landing at or before the lane's tick — the extremely common
// "schedule for now" pattern — are inserted in sorted position directly,
// so ordering stays exact without re-sorting. When the lane and level 0
// drain, the next occupied level-1 slot cascades into level 0 (and
// level 2 into level 1), preserving O(1) amortized work per event.
//
// Ordering. Events execute in exactly (at, seq) order — byte-identical
// to the reference heap, which the differential tests in sched_test.go
// enforce. The key invariants:
//
//   - lane events all have tick <= laneTick; every other queued event has
//     tick > laneTick (insertion routes tick <= laneTick into the lane).
//   - level bases are aligned and nested: l0base is inside the l1 window,
//     l1base inside the l2 window; a tick belongs to the lowest level
//     whose window contains it.
//   - the far heap only holds ticks beyond the l2 window, and l2base only
//     moves when every level is empty, so no wheel event can tie with a
//     far event.
type wheelSched struct {
	lane     []event
	laneIdx  int
	laneTick int64 // tick of the last slot pulled into the lane; -1 initially

	l0base int64 // first tick of the level-0 window (aligned to 1<<slotBits)
	l1base int64 // aligned to 1<<(2*slotBits)
	l2base int64 // aligned to 1<<(3*slotBits)
	cur0   int   // scan cursors: lowest slot index that may be occupied
	cur1   int
	cur2   int

	slots0 [wheelSlots][]event
	slots1 [wheelSlots][]event
	slots2 [wheelSlots][]event
	occ0   [wheelSlots / 64]uint64
	occ1   [wheelSlots / 64]uint64
	occ2   [wheelSlots / 64]uint64
	n0     int
	n1     int
	n2     int

	far   eventHeap // beyond the level-2 horizon
	count int
}

const (
	// tickShift sets the level-0 granularity: 2^16 ns ≈ 65.5µs per tick,
	// fine enough that sub-tick collisions stay small (they cost one
	// sorted insert or one slot sort) and coarse enough that a multi-
	// minute simulation fits the wheel without cascade storms.
	tickShift  = 16
	slotBits   = 8
	wheelSlots = 1 << slotBits
	slotMask   = wheelSlots - 1

	l0span = int64(1) << slotBits       // ticks covered by level 0
	l1span = int64(1) << (2 * slotBits) // ticks covered by level 1
	l2span = int64(1) << (3 * slotBits) // ticks covered by level 2
)

func newWheelSched() *wheelSched {
	return &wheelSched{laneTick: -1}
}

func tickOf(t Time) int64 { return int64(t) >> tickShift }

func (w *wheelSched) schedule(e *event) {
	w.count++
	w.insert(e)
}

// insert routes one event to the lane, a wheel slot, or the far heap.
// Split from schedule so cascades can reuse it without touching count.
func (w *wheelSched) insert(e *event) {
	tick := tickOf(e.at)
	if tick <= w.laneTick {
		w.laneInsert(e)
		return
	}
	switch {
	case tick < w.l0base+l0span:
		i := int(tick & slotMask)
		w.slots0[i] = append(w.slots0[i], *e)
		w.occ0[i>>6] |= 1 << (i & 63)
		w.n0++
	case tick < w.l1base+l1span:
		i := int((tick >> slotBits) & slotMask)
		w.slots1[i] = append(w.slots1[i], *e)
		w.occ1[i>>6] |= 1 << (i & 63)
		w.n1++
	case tick < w.l2base+l2span:
		i := int((tick >> (2 * slotBits)) & slotMask)
		w.slots2[i] = append(w.slots2[i], *e)
		w.occ2[i>>6] |= 1 << (i & 63)
		w.n2++
	default:
		w.far.push(e)
	}
}

// laneInsert places e into the sorted lane at its (at, seq) position.
// Events scheduled "for now" from inside a running event land at the tail
// of their same-time run, so the usual cost is an append; only an event
// racing ahead of queued later-time work pays a copy.
func (w *wheelSched) laneInsert(e *event) {
	lo, hi := w.laneIdx, len(w.lane)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if eventLess(&w.lane[mid], e) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	w.lane = append(w.lane, event{})
	copy(w.lane[lo+1:], w.lane[lo:])
	w.lane[lo] = *e
}

func (w *wheelSched) peek() *event {
	for w.laneIdx >= len(w.lane) {
		if !w.refill() {
			return nil
		}
	}
	return &w.lane[w.laneIdx]
}

func (w *wheelSched) pop() {
	w.laneIdx++
	w.count--
	if w.laneIdx == len(w.lane) {
		// Drained: drop data/handler references in one bulk clear and
		// reset in place, so a self-rescheduling timer reuses the same
		// backing array instead of growing it forever.
		clear(w.lane)
		w.lane = w.lane[:0]
		w.laneIdx = 0
	}
}

func (w *wheelSched) pending() int { return w.count }

// refill pulls the next occupied level-0 slot into the lane, cascading
// higher levels and the far heap downward as their windows are reached.
// It returns false when nothing is queued anywhere.
func (w *wheelSched) refill() bool {
	w.lane = w.lane[:0]
	w.laneIdx = 0
	for {
		if w.n0 > 0 {
			if i, ok := nextOccupied(&w.occ0, w.cur0); ok {
				s := w.slots0[i]
				w.lane = append(w.lane, s...)
				clear(s)
				w.slots0[i] = s[:0]
				w.occ0[i>>6] &^= 1 << (i & 63)
				w.n0 -= len(w.lane)
				w.cur0 = i + 1
				w.laneTick = w.l0base + int64(i)
				if len(w.lane) > 1 {
					slices.SortFunc(w.lane, func(a, b event) int {
						if eventLess(&a, &b) {
							return -1
						}
						return 1
					})
				}
				return true
			}
		}
		if w.n1 > 0 {
			if j, ok := nextOccupied(&w.occ1, w.cur1); ok {
				w.cascade(&w.slots1[j], &w.n1, func(e *event) {
					i := int(tickOf(e.at) & slotMask)
					w.slots0[i] = append(w.slots0[i], *e)
					w.occ0[i>>6] |= 1 << (i & 63)
					w.n0++
				})
				w.occ1[j>>6] &^= 1 << (j & 63)
				w.l0base = w.l1base + int64(j)<<slotBits
				w.cur0 = 0
				w.cur1 = j + 1
				continue
			}
		}
		if w.n2 > 0 {
			if k, ok := nextOccupied(&w.occ2, w.cur2); ok {
				w.cascade(&w.slots2[k], &w.n2, func(e *event) {
					i := int((tickOf(e.at) >> slotBits) & slotMask)
					w.slots1[i] = append(w.slots1[i], *e)
					w.occ1[i>>6] |= 1 << (i & 63)
					w.n1++
				})
				w.occ2[k>>6] &^= 1 << (k & 63)
				w.l1base = w.l2base + int64(k)<<(2*slotBits)
				w.cur1 = 0
				w.cur2 = k + 1
				continue
			}
		}
		if len(w.far) > 0 {
			// Every level is empty: rebase the wheel at the earliest far
			// event and fold everything inside the new horizon back in.
			tick := tickOf(w.far[0].at)
			w.l2base = tick &^ (l2span - 1)
			w.l1base = tick &^ (l1span - 1)
			w.l0base = tick &^ (l0span - 1)
			w.cur0, w.cur1, w.cur2 = 0, 0, 0
			horizon := w.l2base + l2span
			for len(w.far) > 0 && tickOf(w.far[0].at) < horizon {
				e := w.far.popMin()
				w.insert(&e)
			}
			continue
		}
		return false
	}
}

// cascade drains one higher-level slot through put, clearing the slot and
// adjusting its level's count.
func (w *wheelSched) cascade(slot *[]event, n *int, put func(e *event)) {
	s := *slot
	for i := range s {
		put(&s[i])
	}
	*n -= len(s)
	clear(s)
	*slot = s[:0]
}

// nextOccupied scans the occupancy bitmap for the lowest set bit at index
// >= from, in O(words) with TrailingZeros.
func nextOccupied(bm *[wheelSlots / 64]uint64, from int) (int, bool) {
	if from >= wheelSlots {
		return 0, false
	}
	word := from >> 6
	cur := bm[word] &^ ((1 << (from & 63)) - 1)
	for {
		if cur != 0 {
			return word<<6 + bits.TrailingZeros64(cur), true
		}
		word++
		if word >= len(bm) {
			return 0, false
		}
		cur = bm[word]
	}
}
