package simnet

// FailureOp is one kind of scripted failure or recovery action.
type FailureOp uint8

// The failure-plan operations.
const (
	// OpIfaceDown / OpIfaceUp toggle one interface's admin state.
	OpIfaceDown FailureOp = iota
	OpIfaceUp
	// OpLinkDown / OpLinkUp cut and restore a whole link (both ends).
	OpLinkDown
	OpLinkUp
	// OpNodeFail / OpNodeRecover crash and restore a node.
	OpNodeFail
	OpNodeRecover
	// OpSetLoss sets the loss probability on both directions of a link —
	// the brown-out injection.
	OpSetLoss
)

// String names the operation.
func (op FailureOp) String() string {
	switch op {
	case OpIfaceDown:
		return "iface-down"
	case OpIfaceUp:
		return "iface-up"
	case OpLinkDown:
		return "link-down"
	case OpLinkUp:
		return "link-up"
	case OpNodeFail:
		return "node-fail"
	case OpNodeRecover:
		return "node-recover"
	case OpSetLoss:
		return "set-loss"
	default:
		return "?"
	}
}

// FailureEvent is one scheduled action of a FailurePlan. Exactly one of
// Iface, Link or Node is consulted, depending on Op.
type FailureEvent struct {
	// At is the absolute virtual time the action fires.
	At Time
	// Op selects the action.
	Op FailureOp
	// Iface is the target of OpIfaceDown/OpIfaceUp.
	Iface *Iface
	// Link is the target of OpLinkDown/OpLinkUp/OpSetLoss.
	Link *Link
	// Node is the target of OpNodeFail/OpNodeRecover.
	Node *Node
	// Loss is the probability installed by OpSetLoss.
	Loss float64
}

// FailurePlan is a scripted sequence of failure and recovery events:
// link cuts, interface flaps, node crashes and loss brown-outs, each at
// an absolute virtual time. Build the plan with the fluent helpers, then
// call Schedule once; every event rides its own typed timer, so a plan
// adds nothing to the steady-state allocation profile.
type FailurePlan struct {
	sim       *Sim
	events    []FailureEvent
	scheduled bool

	// Fired counts executed events (observability for experiments).
	Fired int
}

// NewFailurePlan builds an empty plan bound to sim.
func NewFailurePlan(sim *Sim) *FailurePlan {
	return &FailurePlan{sim: sim}
}

// Add appends a raw event. The fluent helpers below cover the common
// cases.
func (p *FailurePlan) Add(ev FailureEvent) *FailurePlan {
	if p.scheduled {
		panic("simnet: FailurePlan modified after Schedule")
	}
	p.events = append(p.events, ev)
	return p
}

// IfaceDown schedules an admin-down of one interface at time at.
func (p *FailurePlan) IfaceDown(at Time, i *Iface) *FailurePlan {
	return p.Add(FailureEvent{At: at, Op: OpIfaceDown, Iface: i})
}

// IfaceUp schedules the interface's recovery.
func (p *FailurePlan) IfaceUp(at Time, i *Iface) *FailurePlan {
	return p.Add(FailureEvent{At: at, Op: OpIfaceUp, Iface: i})
}

// LinkDown schedules a full link cut (both directions) at time at.
func (p *FailurePlan) LinkDown(at Time, l *Link) *FailurePlan {
	return p.Add(FailureEvent{At: at, Op: OpLinkDown, Link: l})
}

// LinkUp schedules the link's restoration.
func (p *FailurePlan) LinkUp(at Time, l *Link) *FailurePlan {
	return p.Add(FailureEvent{At: at, Op: OpLinkUp, Link: l})
}

// NodeFail schedules a node crash at time at.
func (p *FailurePlan) NodeFail(at Time, n *Node) *FailurePlan {
	return p.Add(FailureEvent{At: at, Op: OpNodeFail, Node: n})
}

// NodeRecover schedules the node's recovery.
func (p *FailurePlan) NodeRecover(at Time, n *Node) *FailurePlan {
	return p.Add(FailureEvent{At: at, Op: OpNodeRecover, Node: n})
}

// SetLoss schedules a loss-probability change on both directions of l —
// pair a high-loss event with a zero-loss one to script a brown-out.
func (p *FailurePlan) SetLoss(at Time, l *Link, loss float64) *FailurePlan {
	return p.Add(FailureEvent{At: at, Op: OpSetLoss, Link: l, Loss: loss})
}

// Event sides, carried in TimerArg.Kind: in a sharded world a link op
// whose endpoints live in different shards is armed as two timers, one
// per side, each mutating only its own shard's state.
const (
	failSideBoth int32 = iota
	failSideA
	failSideB
)

// Schedule arms one typed timer per event — on the Sim that owns the
// event's target, which may not be the Sim the plan was built with: in a
// sharded world each shard may only mutate its own state, and a timer
// armed on the wrong shard would race. A link op spanning two shards
// (a cut link) is split into one per-side timer. Calling Schedule twice
// panics: a plan is a one-shot script.
func (p *FailurePlan) Schedule() {
	if p.scheduled {
		panic("simnet: FailurePlan scheduled twice")
	}
	p.scheduled = true
	for i := range p.events {
		ev := &p.events[i]
		switch ev.Op {
		case OpIfaceDown, OpIfaceUp:
			ev.Iface.node.sim.TimerAt(ev.At, p, TimerArg{N: int64(i), Kind: failSideBoth})
		case OpNodeFail, OpNodeRecover:
			ev.Node.sim.TimerAt(ev.At, p, TimerArg{N: int64(i), Kind: failSideBoth})
		default: // link ops
			sa, sb := ev.Link.a.node.sim, ev.Link.b.node.sim
			if sa == sb {
				sa.TimerAt(ev.At, p, TimerArg{N: int64(i), Kind: failSideBoth})
			} else {
				sa.TimerAt(ev.At, p, TimerArg{N: int64(i), Kind: failSideA})
				sb.TimerAt(ev.At, p, TimerArg{N: int64(i), Kind: failSideB})
			}
		}
	}
}

// Events returns the scripted events in insertion order.
func (p *FailurePlan) Events() []FailureEvent { return p.events }

// OnTimer implements TimerHandler: execute the event indexed by arg.N,
// restricted to the side named by arg.Kind for a split link op. Fired
// counts each scripted event once (the B side of a split rides along).
func (p *FailurePlan) OnTimer(arg TimerArg) {
	ev := &p.events[arg.N]
	if arg.Kind != failSideB {
		p.Fired++
	}
	switch ev.Op {
	case OpIfaceDown:
		ev.Iface.SetUp(false)
	case OpIfaceUp:
		ev.Iface.SetUp(true)
	case OpLinkDown:
		switch arg.Kind {
		case failSideA:
			ev.Link.a.SetUp(false)
		case failSideB:
			ev.Link.b.SetUp(false)
		default:
			ev.Link.SetDown()
		}
	case OpLinkUp:
		switch arg.Kind {
		case failSideA:
			ev.Link.a.SetUp(true)
		case failSideB:
			ev.Link.b.SetUp(true)
		default:
			ev.Link.SetUp()
		}
	case OpNodeFail:
		ev.Node.Fail()
	case OpNodeRecover:
		ev.Node.Recover()
	case OpSetLoss:
		switch arg.Kind {
		case failSideA:
			ev.Link.a.dir().cfg.Loss = ev.Loss
		case failSideB:
			ev.Link.b.dir().cfg.Loss = ev.Loss
		default:
			ev.Link.SetLoss(ev.Loss)
		}
	}
}
