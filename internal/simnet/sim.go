// Package simnet is a deterministic discrete-event network simulator. It
// provides a virtual clock, an event queue, nodes with addressed
// interfaces, point-to-point links with propagation delay, transmission
// rate and drop-tail queues, static IPv4 longest-prefix-match forwarding,
// and head-end-replicated multicast groups.
//
// Every packet that crosses a link is a real encoded byte slice produced
// by internal/packet — protocol code cannot take shortcuts around the wire
// format, which is what lets the same control-plane code run over real UDP
// sockets in internal/wire.
//
// The event core is closure-free: packet hops and protocol timers are
// typed events (EventKind plus a fixed-size argument block) stored by
// value in a hierarchical timing wheel, so steady-state scheduling
// allocates nothing. ScheduleFunc/AtFunc remain as a compatibility shim
// for tests and cold-path scenario scripting, at the cost of one closure
// allocation per call.
//
// Determinism: all behaviour derives from the scenario seed via Rand();
// events scheduled for the same instant fire in scheduling order. Two runs
// of the same scenario produce byte-identical metric output, and the
// production timing wheel is differentially tested against the reference
// heap scheduler to execute in the identical order.
package simnet

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/pcelisp/pcelisp/internal/netaddr"
)

// Time is virtual time since simulation start.
type Time = time.Duration

// Engine selects the event-queue implementation backing a Sim.
type Engine int

const (
	// EngineWheel is the production scheduler: a hierarchical timing
	// wheel with a sorted near-future lane and a far-horizon heap.
	EngineWheel Engine = iota
	// EngineHeap is the reference binary-heap scheduler kept as the
	// executable ordering specification. It is slower and exists for
	// differential and golden-output testing.
	EngineHeap
)

// defaultEngine backs New. Overridable (SetDefaultEngine) so integration
// tests can rebuild whole experiment worlds on the reference heap and
// compare output bytes against the wheel.
var defaultEngine = EngineWheel

// SetDefaultEngine sets the scheduler used by subsequent New calls and
// returns the previous setting. Not safe to call concurrently with
// simulation construction; intended for test setup.
func SetDefaultEngine(e Engine) Engine {
	prev := defaultEngine
	defaultEngine = e
	return prev
}

// Sim is a discrete-event simulation instance. Sim is not safe for
// concurrent use: the event loop is strictly single-threaded, which is
// what makes runs reproducible.
type Sim struct {
	now Time
	// wheel is the production scheduler. ref, when non-nil, replaces it
	// with the reference heap (EngineHeap). Dispatch is a nil-check on
	// concrete types rather than an interface call: passing *event
	// through an interface would force every event to escape to the
	// heap, which is exactly what the typed-event design exists to
	// avoid.
	wheel   *wheelSched
	ref     *refSched
	seq     uint64
	rng     *rand.Rand
	nodes   map[string]*Node
	order   []*Node // deterministic iteration order
	groups  map[netaddr.Addr][]*Node
	stopped bool

	// worldSeed is the seed of the logical world this Sim belongs to. For
	// a standalone Sim it equals the New seed; for a shard it is the
	// ShardedSim's root seed, identical across every shard. Per-direction
	// loss RNGs derive from it (not from the shard-local rng) so loss
	// sequences do not depend on how the world was partitioned.
	worldSeed int64
	// shard/shardIdx identify this Sim within a ShardedSim (shard is nil
	// for a standalone Sim). shardIdx is part of the deterministic
	// exchange-buffer sort key for frames crossing shard boundaries.
	shard    *ShardedSim
	shardIdx int

	// staged holds frames transmitted on cut links (Iface.foreign) during
	// the current epoch, awaiting injection into their target shard at the
	// next barrier. stageSeq is the per-shard tiebreak of the exchange
	// sort key (send time, source shard, sequence).
	staged   []stagedFrame
	stageSeq uint64

	// dirs is the link-direction arena: every Connect appends its two
	// directions here, and Ifaces hold indexes into it. Keeping the hot
	// per-link state (config, busy horizon, counters) in one contiguous
	// slice makes the per-tick counter walks cache-friendly and spares an
	// allocation per direction.
	dirs []linkDir

	// freeDeliveries recycles Delivery scratch between packet receives;
	// Sim is single-threaded, so a plain stack suffices.
	freeDeliveries []*Delivery

	// Trace, when non-nil, receives a TraceEvent for every packet
	// milestone. Used by examples/quickstart to print the steps 1-8
	// timeline, and by tests to assert paths.
	Trace func(ev TraceEvent)
}

// New creates a simulation seeded for deterministic randomness, using the
// default scheduler engine.
func New(seed int64) *Sim { return NewWithEngine(seed, defaultEngine) }

// NewWithEngine creates a simulation on an explicit scheduler engine.
func NewWithEngine(seed int64, engine Engine) *Sim {
	s := &Sim{
		rng:       rand.New(rand.NewSource(seed)),
		worldSeed: seed,
		nodes:     make(map[string]*Node),
		groups:    make(map[netaddr.Addr][]*Node),
	}
	if engine == EngineHeap {
		s.ref = &refSched{}
	} else {
		s.wheel = newWheelSched()
	}
	return s
}

// enqueue routes one event to the active scheduler.
func (s *Sim) enqueue(e *event) {
	if s.ref != nil {
		s.ref.schedule(e)
		return
	}
	s.wheel.schedule(e)
}

func (s *Sim) peekEvent() *event {
	if s.ref != nil {
		return s.ref.peek()
	}
	return s.wheel.peek()
}

func (s *Sim) popEvent() {
	if s.ref != nil {
		s.ref.pop()
		return
	}
	s.wheel.pop()
}

// Now returns the current virtual time.
func (s *Sim) Now() Time { return s.now }

// Rand returns the simulation's deterministic random source.
func (s *Sim) Rand() *rand.Rand { return s.rng }

// ScheduleTimer arms a typed timer firing h.OnTimer(arg) after delay d
// (clamped to >= 0). This is the allocation-free way to schedule work:
// the handler is an interface pair and arg a fixed-size value, both
// copied into the scheduler's slot storage.
func (s *Sim) ScheduleTimer(d Time, h TimerHandler, arg TimerArg) {
	if d < 0 {
		d = 0
	}
	s.TimerAt(s.now+d, h, arg)
}

// TimerAt arms a typed timer at absolute virtual time t (clamped to now).
func (s *Sim) TimerAt(t Time, h TimerHandler, arg TimerArg) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	e := event{at: t, seq: s.seq, kind: evTimer, h: h, arg: arg}
	s.enqueue(&e)
}

// ScheduleFunc runs fn after delay d (clamped to >= 0). Compatibility
// shim for tests and cold-path scenario scripting ONLY: each call
// allocates the closure it captures, and a closure cannot ride the
// runtime seam to the real-time daemon. The protocol packages (lisp,
// core, irc, mapsys, dnssim) have zero call sites — they arm timers
// exclusively through runtime.Runtime.ScheduleTimer with typed
// handlers; keep it that way. The remaining users are experiment
// scenario scripts, cmd/lispsim and the examples, where one allocation
// per scripted event is irrelevant.
func (s *Sim) ScheduleFunc(d Time, fn func()) {
	if d < 0 {
		d = 0
	}
	s.AtFunc(s.now+d, fn)
}

// AtFunc runs fn at absolute virtual time t (clamped to now). See
// ScheduleFunc for the allocation caveat.
func (s *Sim) AtFunc(t Time, fn func()) {
	s.TimerAt(t, funcTimer(fn), TimerArg{})
}

// scheduleArrival appends a frame arriving at to's node at absolute time
// t to the interface's pending batch — the typed tail of Iface.transmit.
// One drain event per batch replaces one event per frame: the common case
// (arrival times per direction are monotone non-decreasing) is a plain
// append plus, at most, arming a drain; only a Delay lowered mid-flight
// pays a sorted insert.
func (s *Sim) scheduleArrival(t Time, to *Iface, data []byte) {
	if t < s.now {
		t = s.now
	}
	q := to.arrQ
	if n := len(q); n > to.arrHead && q[n-1].at > t {
		// Rare out-of-order arrival: keep the batch sorted by time, FIFO
		// within a time (insert after any equal-time frames).
		i := n
		for i > to.arrHead && q[i-1].at > t {
			i--
		}
		q = append(q, arrFrame{})
		copy(q[i+1:], q[i:n])
		q[i] = arrFrame{at: t, data: data}
		to.arrQ = q
	} else {
		to.arrQ = append(q, arrFrame{at: t, data: data})
	}
	if !to.drainArmed || t < to.drainAt {
		to.drainArmed = true
		to.drainAt = t
		s.seq++
		e := event{at: t, seq: s.seq, kind: evArrive, node: to.node, ifIdx: to.idx}
		s.enqueue(&e)
	}
}

// scheduleLoopback enqueues local delivery of a locally originated packet
// through the event queue, so handler reentrancy cannot occur.
func (s *Sim) scheduleLoopback(n *Node, data []byte) {
	s.seq++
	e := event{at: s.now, seq: s.seq, kind: evDeliver, node: n, data: data}
	s.enqueue(&e)
}

// Stop makes Run return after the current event.
func (s *Sim) Stop() { s.stopped = true }

// Run processes events until the queue drains or Stop is called. It
// returns the number of events processed.
func (s *Sim) Run() int { return s.RunUntil(1<<62 - 1) }

// RunFor processes events for a span of virtual time from now.
func (s *Sim) RunFor(d Time) int { return s.RunUntil(s.now + d) }

// RunUntil processes events with timestamps <= deadline, advancing the
// clock to deadline if the queue drains earlier.
func (s *Sim) RunUntil(deadline Time) int {
	s.stopped = false
	n := 0
	for !s.stopped {
		next := s.peekEvent()
		if next == nil || next.at > deadline {
			break
		}
		// Copy out before pop: the slot storage is recycled immediately,
		// and the event's own scheduling can reuse it.
		e := *next
		s.popEvent()
		s.now = e.at
		s.dispatch(&e)
		n++
	}
	if !s.stopped && s.now < deadline && deadline < 1<<62-1 {
		s.now = deadline
	}
	return n
}

// nextEventTime returns the timestamp of the earliest queued event, or
// (0, false) when the queue is empty. The shard coordinator uses it to
// size epochs without popping anything.
func (s *Sim) nextEventTime() (Time, bool) {
	e := s.peekEvent()
	if e == nil {
		return 0, false
	}
	return e.at, true
}

// Pending returns the number of queued events.
func (s *Sim) Pending() int {
	if s.ref != nil {
		return s.ref.pending()
	}
	return s.wheel.pending()
}

// getDelivery draws Delivery scratch from the free list.
func (s *Sim) getDelivery() *Delivery {
	if k := len(s.freeDeliveries); k > 0 {
		d := s.freeDeliveries[k-1]
		s.freeDeliveries[k-1] = nil
		s.freeDeliveries = s.freeDeliveries[:k-1]
		return d
	}
	return &Delivery{}
}

// putDelivery recycles Delivery scratch once the node finished processing
// it. Handlers must not retain the Delivery past their callback.
func (s *Sim) putDelivery(d *Delivery) {
	d.recycle()
	*d = Delivery{}
	s.freeDeliveries = append(s.freeDeliveries, d)
}

// NewNode creates and registers a named node. Names must be unique; the
// topology builders guarantee this, so duplicates panic.
func (s *Sim) NewNode(name string) *Node {
	if _, dup := s.nodes[name]; dup {
		panic(fmt.Sprintf("simnet: node %q created twice", name))
	}
	n := &Node{
		sim:    s,
		name:   name,
		addrs:  make(map[netaddr.Addr]*Iface),
		routes: netaddr.NewTrie[Route](),
		udp:    make(map[uint16]UDPHandler),
	}
	s.nodes[name] = n
	s.order = append(s.order, n)
	return n
}

// Node returns the node registered under name, or nil.
func (s *Sim) Node(name string) *Node { return s.nodes[name] }

// Nodes returns all nodes in creation order.
func (s *Sim) Nodes() []*Node { return s.order }

// JoinGroup subscribes n to multicast group g (must be 224.0.0.0/4).
// Joining is idempotent: a node already in the group is not added again,
// so a double join cannot cause double delivery. Delivery is head-end
// replication: the sending node unicasts one copy toward each member,
// patching the outer destination — behaviourally equivalent to
// intra-domain multicast for the ETR synchronization the paper uses,
// without modelling multicast routing state.
func (s *Sim) JoinGroup(g netaddr.Addr, n *Node) {
	if !g.IsMulticast() {
		panic(fmt.Sprintf("simnet: %v is not a multicast group", g))
	}
	for _, m := range s.groups[g] {
		if m == n {
			return
		}
	}
	s.groups[g] = append(s.groups[g], n)
}

// LeaveGroup removes n from group g. Leaving a group the node never
// joined (or leaving twice) is a safe no-op.
func (s *Sim) LeaveGroup(g netaddr.Addr, n *Node) {
	members := s.groups[g]
	for i, m := range members {
		if m == n {
			s.groups[g] = append(members[:i:i], members[i+1:]...)
			return
		}
	}
}

// GroupMembers returns the members of g in join order.
func (s *Sim) GroupMembers(g netaddr.Addr) []*Node { return s.groups[g] }

// TraceEventKind classifies trace events.
type TraceEventKind int

// Trace event kinds.
const (
	// TraceSend is a packet leaving a node.
	TraceSend TraceEventKind = iota
	// TraceDeliver is a packet arriving at its final node.
	TraceDeliver
	// TraceForward is a packet transiting a node.
	TraceForward
	// TraceDrop is a packet lost (queue overflow, TTL, no route, ...).
	TraceDrop
)

// String names the kind.
func (k TraceEventKind) String() string {
	switch k {
	case TraceSend:
		return "send"
	case TraceDeliver:
		return "deliver"
	case TraceForward:
		return "forward"
	case TraceDrop:
		return "drop"
	default:
		return "?"
	}
}

// TraceEvent describes one packet milestone for the optional Trace hook.
type TraceEvent struct {
	At     Time
	Kind   TraceEventKind
	Node   string
	Reason string
	Data   []byte
}

func (s *Sim) trace(kind TraceEventKind, node, reason string, data []byte) {
	if s.Trace != nil {
		s.Trace(TraceEvent{At: s.now, Kind: kind, Node: node, Reason: reason, Data: data})
	}
}
