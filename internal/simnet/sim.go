// Package simnet is a deterministic discrete-event network simulator. It
// provides a virtual clock, an event queue, nodes with addressed
// interfaces, point-to-point links with propagation delay, transmission
// rate and drop-tail queues, static IPv4 longest-prefix-match forwarding,
// and head-end-replicated multicast groups.
//
// Every packet that crosses a link is a real encoded byte slice produced
// by internal/packet — protocol code cannot take shortcuts around the wire
// format, which is what lets the same control-plane code run over real UDP
// sockets in internal/wire.
//
// Determinism: all behaviour derives from the scenario seed via Rand();
// events scheduled for the same instant fire in scheduling order. Two runs
// of the same scenario produce byte-identical metric output.
package simnet

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"

	"github.com/pcelisp/pcelisp/internal/netaddr"
)

// Time is virtual time since simulation start.
type Time = time.Duration

// Sim is a discrete-event simulation instance. Sim is not safe for
// concurrent use: the event loop is strictly single-threaded, which is
// what makes runs reproducible.
type Sim struct {
	now     Time
	events  eventHeap
	free    []*event // recycled event structs; Sim is single-threaded
	seq     uint64
	rng     *rand.Rand
	nodes   map[string]*Node
	order   []*Node // deterministic iteration order
	groups  map[netaddr.Addr][]*Node
	stopped bool

	// Trace, when non-nil, receives a TraceEvent for every packet
	// milestone. Used by examples/quickstart to print the steps 1-8
	// timeline, and by tests to assert paths.
	Trace func(ev TraceEvent)
}

// New creates a simulation seeded for deterministic randomness.
func New(seed int64) *Sim {
	return &Sim{
		rng:    rand.New(rand.NewSource(seed)),
		nodes:  make(map[string]*Node),
		groups: make(map[netaddr.Addr][]*Node),
	}
}

// Now returns the current virtual time.
func (s *Sim) Now() Time { return s.now }

// Rand returns the simulation's deterministic random source.
func (s *Sim) Rand() *rand.Rand { return s.rng }

// Schedule runs fn after delay d (clamped to >= 0).
func (s *Sim) Schedule(d Time, fn func()) {
	if d < 0 {
		d = 0
	}
	s.At(s.now+d, fn)
}

// At runs fn at absolute virtual time t (clamped to now). Event structs
// are drawn from a per-Sim free list so steady-state scheduling does not
// allocate.
func (s *Sim) At(t Time, fn func()) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	var e *event
	if k := len(s.free); k > 0 {
		e = s.free[k-1]
		s.free[k-1] = nil
		s.free = s.free[:k-1]
		e.at, e.seq, e.fn = t, s.seq, fn
	} else {
		e = &event{at: t, seq: s.seq, fn: fn}
	}
	heap.Push(&s.events, e)
}

// Stop makes Run return after the current event.
func (s *Sim) Stop() { s.stopped = true }

// Run processes events until the queue drains or Stop is called. It
// returns the number of events processed.
func (s *Sim) Run() int { return s.RunUntil(1<<62 - 1) }

// RunFor processes events for a span of virtual time from now.
func (s *Sim) RunFor(d Time) int { return s.RunUntil(s.now + d) }

// RunUntil processes events with timestamps <= deadline, advancing the
// clock to deadline if the queue drains earlier.
func (s *Sim) RunUntil(deadline Time) int {
	s.stopped = false
	n := 0
	for !s.stopped && len(s.events) > 0 {
		next := s.events[0]
		if next.at > deadline {
			break
		}
		heap.Pop(&s.events)
		s.now = next.at
		fn := next.fn
		// Recycle before running fn: the event's fields are consumed, and
		// fn's own Schedule calls can reuse the struct immediately.
		next.fn = nil
		s.free = append(s.free, next)
		fn()
		n++
	}
	if !s.stopped && s.now < deadline && deadline < 1<<62-1 {
		s.now = deadline
	}
	return n
}

// Pending returns the number of queued events.
func (s *Sim) Pending() int { return len(s.events) }

// NewNode creates and registers a named node. Names must be unique; the
// topology builders guarantee this, so duplicates panic.
func (s *Sim) NewNode(name string) *Node {
	if _, dup := s.nodes[name]; dup {
		panic(fmt.Sprintf("simnet: node %q created twice", name))
	}
	n := &Node{
		sim:    s,
		name:   name,
		addrs:  make(map[netaddr.Addr]*Iface),
		routes: netaddr.NewTrie[Route](),
		udp:    make(map[uint16]UDPHandler),
	}
	s.nodes[name] = n
	s.order = append(s.order, n)
	return n
}

// Node returns the node registered under name, or nil.
func (s *Sim) Node(name string) *Node { return s.nodes[name] }

// Nodes returns all nodes in creation order.
func (s *Sim) Nodes() []*Node { return s.order }

// JoinGroup subscribes n to multicast group g (must be 224.0.0.0/4).
// Delivery is head-end replication: the sending node unicasts one copy
// toward each member, patching the outer destination — behaviourally
// equivalent to intra-domain multicast for the ETR synchronization the
// paper uses, without modelling multicast routing state.
func (s *Sim) JoinGroup(g netaddr.Addr, n *Node) {
	if !g.IsMulticast() {
		panic(fmt.Sprintf("simnet: %v is not a multicast group", g))
	}
	for _, m := range s.groups[g] {
		if m == n {
			return
		}
	}
	s.groups[g] = append(s.groups[g], n)
}

// LeaveGroup removes n from group g.
func (s *Sim) LeaveGroup(g netaddr.Addr, n *Node) {
	members := s.groups[g]
	for i, m := range members {
		if m == n {
			s.groups[g] = append(members[:i:i], members[i+1:]...)
			return
		}
	}
}

// GroupMembers returns the members of g in join order.
func (s *Sim) GroupMembers(g netaddr.Addr) []*Node { return s.groups[g] }

// event is one scheduled callback.
type event struct {
	at  Time
	seq uint64 // tie-break: FIFO among same-time events
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// TraceEventKind classifies trace events.
type TraceEventKind int

// Trace event kinds.
const (
	// TraceSend is a packet leaving a node.
	TraceSend TraceEventKind = iota
	// TraceDeliver is a packet arriving at its final node.
	TraceDeliver
	// TraceForward is a packet transiting a node.
	TraceForward
	// TraceDrop is a packet lost (queue overflow, TTL, no route, ...).
	TraceDrop
)

// String names the kind.
func (k TraceEventKind) String() string {
	switch k {
	case TraceSend:
		return "send"
	case TraceDeliver:
		return "deliver"
	case TraceForward:
		return "forward"
	case TraceDrop:
		return "drop"
	default:
		return "?"
	}
}

// TraceEvent describes one packet milestone for the optional Trace hook.
type TraceEvent struct {
	At     Time
	Kind   TraceEventKind
	Node   string
	Reason string
	Data   []byte
}

func (s *Sim) trace(kind TraceEventKind, node, reason string, data []byte) {
	if s.Trace != nil {
		s.Trace(TraceEvent{At: s.now, Kind: kind, Node: node, Reason: reason, Data: data})
	}
}
