package simnet

import "github.com/pcelisp/pcelisp/internal/runtime"

// EventKind discriminates the fixed set of things the simulator can
// schedule. Events are plain structs dispatched through a switch, not
// closures: scheduling one copies a fixed-size value into the scheduler's
// slot storage, so the steady-state hot path (packet delivery, protocol
// timers) allocates nothing.
type EventKind uint8

const (
	evNone EventKind = iota
	// evTimer fires a typed timer: h.OnTimer(arg).
	evTimer
	// evArrive drains the pending arrival batch of one iface: every frame
	// queued with an arrival time <= now is delivered FIFO by a single
	// event, amortizing scheduler traffic across a link's per-tick burst
	// (the tail of Iface.transmit).
	evArrive
	// evDeliver loops locally originated packet bytes back into node's
	// receive path without touching a link.
	evDeliver
)

// TimerHandler is the typed-timer callback contract. The canonical
// definition lives in internal/runtime (the sim is one of two engines
// implementing it); the alias keeps every existing simnet-facing
// component compiling unchanged.
type TimerHandler = runtime.TimerHandler

// TimerArg is the fixed-size typed-timer argument block, aliased from
// internal/runtime. See runtime.TimerArg for the field contract (P must
// stay pointer-shaped to keep ScheduleTimer allocation-free).
type TimerArg = runtime.TimerArg

// event is one scheduled occurrence. Events are stored by value in the
// scheduler's slot slices and lane; they are copied, never shared, so no
// per-event allocation happens in steady state. The struct is kept as
// small as possible — it is memmoved on every insert, cascade and pop —
// which is why the arrival interface travels as an index into the node's
// iface list rather than a second pointer.
type event struct {
	at    Time
	seq   uint64 // tie-break: FIFO among same-time events
	kind  EventKind
	ifIdx uint16 // evArrive: index of the drained iface in node.ifaces
	node  *Node  // evArrive/evDeliver: receiving node
	data  []byte // evDeliver: packet bytes (evArrive frames ride the batch)
	h     TimerHandler
	arg   TimerArg
}

// eventLess orders events by (time, scheduling sequence): the exact FIFO
// contract every scheduler implementation must preserve.
func eventLess(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// funcTimer adapts a plain closure to TimerHandler for the ScheduleFunc
// compatibility shim. Func values are pointer-shaped, so the interface
// conversion itself does not allocate (the closure, if it captures, does
// — which is exactly why hot paths use typed events instead).
type funcTimer func()

// OnTimer implements TimerHandler.
func (f funcTimer) OnTimer(TimerArg) { f() }

// dispatch executes one event. Called by the run loop with s.now already
// advanced to e.at.
func (s *Sim) dispatch(e *event) {
	switch e.kind {
	case evArrive:
		s.drainArrivals(e.node.ifaces[e.ifIdx])
	case evDeliver:
		if e.node.failed {
			s.trace(TraceDrop, e.node.name, "node failed", e.data)
			return
		}
		e.node.receive(e.data, nil)
	case evTimer:
		e.h.OnTimer(e.arg)
	}
}

// drainArrivals delivers every batched frame whose arrival time has been
// reached, in FIFO order, replicating the exact per-frame semantics the
// one-event-per-packet design had: a frame arriving while the receiving
// side is down is destroyed and counted in AdminDrops (a cut loses what
// the wire was carrying); a delivered frame books goodput on the
// direction that carried it (the peer's transmit direction).
//
// Reentrancy: delivering a frame can transmit new frames onto this very
// iface (zero-delay forwarding loops), growing arrQ mid-loop — the head
// and length are re-read each iteration, and same-instant appends are
// drained inline (TTL decrements bound the loop). Spurious drains (a
// Delay lowered mid-flight arms a second, earlier drain for the same
// batch) fall through harmlessly and re-arm for whatever head remains.
func (s *Sim) drainArrivals(in *Iface) {
	in.drainArmed = false
	for in.arrHead < len(in.arrQ) && in.arrQ[in.arrHead].at <= s.now {
		data := in.arrQ[in.arrHead].data
		in.arrQ[in.arrHead].data = nil // drop the reference for GC
		in.arrHead++
		if in.down || in.node.failed {
			s.dirs[in.dirIdx].counters.AdminDrops++
			if s.Trace != nil {
				s.trace(TraceDrop, in.node.name, "iface down on "+in.name, data)
			}
			continue
		}
		// rxDirIdx is peer.dirIdx for an intra-sim link and a local mirror
		// direction for a cut link (the peer's arena belongs to another
		// shard; writing into it here would race).
		c := &s.dirs[in.rxDirIdx].counters
		c.DeliveredPackets++
		c.DeliveredBytes += uint64(len(data))
		in.node.receive(data, in)
	}
	if in.arrHead == len(in.arrQ) {
		in.arrQ = in.arrQ[:0]
		in.arrHead = 0
		return
	}
	// Future frames remain: keep exactly one drain armed at the head time
	// (unless a reentrant scheduleArrival already armed one).
	if !in.drainArmed {
		in.drainArmed = true
		in.drainAt = in.arrQ[in.arrHead].at
		s.seq++
		e := event{at: in.drainAt, seq: s.seq, kind: evArrive, node: in.node, ifIdx: in.idx}
		s.enqueue(&e)
	}
}

// scheduler is the event-queue contract shared by the production timing
// wheel and the reference heap. Implementations must pop events in exact
// (at, seq) order.
type scheduler interface {
	// schedule copies *e into the queue.
	schedule(e *event)
	// peek returns the next event, or nil when the queue is empty. The
	// pointer is only valid until the next schedule or pop call: callers
	// copy the value out before executing it.
	peek() *event
	// pop discards the event last returned by peek.
	pop()
	// pending returns the number of queued events.
	pending() int
}

// Compile-time checks that both engines honor the scheduler contract
// (Sim dispatches on the concrete types, so nothing else asserts this).
var (
	_ scheduler = (*wheelSched)(nil)
	_ scheduler = (*refSched)(nil)
)

// eventHeap is a hand-rolled binary min-heap of events ordered by
// (at, seq). It backs the reference scheduler and the wheel's far-horizon
// overflow. container/heap is avoided deliberately: its interface{}
// methods force boxing on every push.
type eventHeap []event

func (h *eventHeap) push(e *event) {
	*h = append(*h, *e)
	q := *h
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !eventLess(&q[i], &q[parent]) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
}

func (h *eventHeap) popMin() event {
	q := *h
	n := len(q) - 1
	min := q[0]
	q[0] = q[n]
	q[n] = event{} // drop references for GC
	q = q[:n]
	*h = q
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && eventLess(&q[l], &q[small]) {
			small = l
		}
		if r < n && eventLess(&q[r], &q[small]) {
			small = r
		}
		if small == i {
			break
		}
		q[i], q[small] = q[small], q[i]
		i = small
	}
	return min
}

// refSched is the reference scheduler: the straight binary heap the
// simulator shipped with originally. It is kept as the executable
// specification of event ordering — the differential tests replay random
// workloads through it and the timing wheel and demand identical
// execution order — and as the golden engine for experiment-output
// comparison tests.
type refSched struct {
	h eventHeap
}

func (r *refSched) schedule(e *event) { r.h.push(e) }

func (r *refSched) peek() *event {
	if len(r.h) == 0 {
		return nil
	}
	return &r.h[0]
}

func (r *refSched) pop() { r.h.popMin() }

func (r *refSched) pending() int { return len(r.h) }
