package simnet

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/pcelisp/pcelisp/internal/netaddr"
)

// LinkConfig describes one direction of a point-to-point link.
type LinkConfig struct {
	// Delay is the one-way propagation delay.
	Delay Time
	// RateBps is the transmission rate in bits per second; 0 means
	// infinite (no serialization delay, no queueing).
	RateBps int64
	// QueueBytes bounds the transmit queue; packets arriving when the
	// backlog exceeds it are tail-dropped. 0 means unbounded.
	QueueBytes int
	// Loss is the independent per-packet loss probability in [0,1).
	Loss float64
}

// LinkCounters accumulates per-direction statistics.
type LinkCounters struct {
	// TxPackets and TxBytes count traffic put on the wire — the offered
	// load, including frames the Loss probability destroys after
	// serialization.
	TxPackets, TxBytes uint64
	// DeliveredPackets and DeliveredBytes count frames that actually
	// reached the peer node — the goodput. They exclude random loss,
	// frames sent while either end was administratively down, and frames
	// arriving at a failed node. Utilization trackers read these.
	DeliveredPackets, DeliveredBytes uint64
	// QueueDrops counts tail drops at the transmit queue.
	QueueDrops uint64
	// RandomLoss counts packets lost to the Loss probability.
	RandomLoss uint64
	// AdminDrops counts frames destroyed by failure state at this
	// interface: handed to it for transmit while it (or its node) was
	// down, or arriving at it while down — the queued-frame semantics of
	// a link cut.
	AdminDrops uint64
}

// Iface is a node's attachment to one end of a link.
type Iface struct {
	node *Node
	peer *Iface
	addr netaddr.Addr
	name string
	// dirIdx locates the transmit direction (this iface -> peer) in the
	// Sim's linkDir arena. Directions live in one contiguous slice so the
	// per-tick counter walks (TE sampling, drains) touch adjacent memory;
	// the arena grows on Connect, so the slot is always accessed by index,
	// never through a stored pointer.
	dirIdx int32
	// rxDirIdx locates, in the *owning node's* Sim arena, the direction
	// that books goodput when a frame is delivered to this iface. For an
	// intra-sim link it is simply peer.dirIdx (the transmitting
	// direction); for a cut link the peer's counters live in another
	// shard's arena, so delivery books into a local mirror direction and
	// Counters() on the transmit side merges it back at quiescence.
	rxDirIdx int32
	// foreign marks an iface whose peer lives in another shard's Sim:
	// transmitted frames are staged into the epoch exchange buffer
	// instead of being scheduled directly.
	foreign bool
	idx     uint16 // position in node.ifaces, for compact arrival events
	down    bool   // administratively down: neither transmits nor receives

	// Pending arrival batch: frames in flight toward this iface, sorted by
	// arrival time (FIFO within a time). One drain event in the scheduler
	// covers the whole batch instead of one event per frame; drainArmed /
	// drainAt track the earliest armed drain so scheduleArrival knows when
	// a new one is needed.
	arrQ       []arrFrame
	arrHead    int
	drainArmed bool
	drainAt    Time
}

// arrFrame is one in-flight frame in an interface's arrival batch.
type arrFrame struct {
	at   Time
	data []byte
}

// dir returns the transmit direction. The pointer aims into the Sim's
// arena and is invalidated by the next Connect — use it immediately, never
// store it.
func (i *Iface) dir() *linkDir { return &i.node.sim.dirs[i.dirIdx] }

// Node returns the owning node.
func (i *Iface) Node() *Node { return i.node }

// Peer returns the interface at the other end of the link.
func (i *Iface) Peer() *Iface { return i.peer }

// Addr returns the interface address (zero if unset).
func (i *Iface) Addr() netaddr.Addr { return i.addr }

// SetAddr assigns the interface address and registers it as a local
// address of the owning node.
func (i *Iface) SetAddr(a netaddr.Addr) *Iface {
	i.addr = a
	i.node.registerAddr(a, i)
	return i
}

// Name returns "node:peer" for diagnostics.
func (i *Iface) Name() string { return i.name }

// SetUp sets the interface's administrative state. A downed interface
// neither transmits nor receives: frames handed to it are dropped and
// counted in AdminDrops, and frames already in flight toward it are
// dropped on arrival (a cut loses what the wire was carrying). Bringing
// an interface back up does not resurrect anything.
func (i *Iface) SetUp(up bool) { i.down = !up }

// Up reports whether the interface can carry traffic: administratively
// up on a node that has not failed.
func (i *Iface) Up() bool { return !i.down && !i.node.failed }

// LinkUp reports whether the whole attachment is usable end to end:
// this interface and its peer are both up. This is the predicate
// liveness watches share — refine it here, not at call sites.
func (i *Iface) LinkUp() bool { return i.Up() && i.peer.Up() }

// Config returns the transmit-direction link configuration.
func (i *Iface) Config() LinkConfig { return i.dir().cfg }

// SetConfig replaces the transmit-direction configuration (used by
// failure-injection tests to degrade a live link).
func (i *Iface) SetConfig(cfg LinkConfig) { i.dir().cfg = cfg }

// Counters returns a snapshot of the transmit-direction counters. On a
// cut link (the peer lives in another shard) delivered goodput is booked
// by the receiving shard into a local mirror direction; the snapshot
// merges it back in. The merge reads the peer shard's arena, so on a cut
// link it is only coherent at quiescence — between epochs, after a run
// returns, or inside a barrier callback — which is when experiments read
// counters.
func (i *Iface) Counters() LinkCounters {
	c := i.dir().counters
	if i.foreign {
		m := &i.peer.node.sim.dirs[i.peer.rxDirIdx].counters
		c.DeliveredPackets += m.DeliveredPackets
		c.DeliveredBytes += m.DeliveredBytes
	}
	return c
}

// QueueDepth returns the current transmit backlog in bytes.
func (i *Iface) QueueDepth() int {
	now := i.node.sim.Now()
	d := i.dir()
	if d.busyUntil <= now || d.cfg.RateBps == 0 {
		return 0
	}
	return int(float64(d.busyUntil-now) / float64(time.Second) * float64(d.cfg.RateBps) / 8)
}

// linkDir is one direction of a link.
type linkDir struct {
	cfg       LinkConfig
	busyUntil Time
	counters  LinkCounters
	// rng drives this direction's loss draws. It is created lazily on the
	// first draw (a rand.Rand is ~5KB — eager allocation would dominate
	// memory at 100k-domain scale) and seeded from the world seed and the
	// iface name, never from the shard-local rng: loss sequences must not
	// depend on how domains were partitioned across shards.
	rng *rand.Rand
}

// Link is a full-duplex point-to-point link.
type Link struct {
	a, b *Iface
}

// A returns the interface on the first node passed to Connect.
func (l *Link) A() *Iface { return l.a }

// B returns the interface on the second node passed to Connect.
func (l *Link) B() *Iface { return l.b }

// SetLoss sets the loss probability on both directions.
func (l *Link) SetLoss(p float64) {
	l.a.dir().cfg.Loss = p
	l.b.dir().cfg.Loss = p
}

// SetDown cuts the link: both interfaces go administratively down, so
// nothing new enters the wire and in-flight frames are lost on arrival.
func (l *Link) SetDown() {
	l.a.SetUp(false)
	l.b.SetUp(false)
}

// SetUp restores both interfaces after a SetDown.
func (l *Link) SetUp() {
	l.a.SetUp(true)
	l.b.SetUp(true)
}

// Connect creates a link between two nodes with the same configuration in
// both directions, returning the new link.
func Connect(a, b *Node, cfg LinkConfig) *Link {
	return ConnectAsym(a, b, cfg, cfg)
}

// ConnectAsym creates a link with per-direction configurations: ab applies
// to traffic from a to b.
//
// The two nodes may live in different shards of the same ShardedSim —
// that makes this a cut link: frames stage into the coordinator's
// per-epoch exchange buffer instead of being scheduled directly, and the
// link's Delay (both directions) participates in the epoch-length bound.
// Connecting nodes of unrelated Sims is still an error.
func ConnectAsym(a, b *Node, ab, ba LinkConfig) *Link {
	if a.sim != b.sim {
		return connectCut(a, b, ab, ba)
	}
	sim := a.sim
	dirIdx := int32(len(sim.dirs))
	sim.dirs = append(sim.dirs, linkDir{cfg: ab}, linkDir{cfg: ba})
	ia := &Iface{node: a, dirIdx: dirIdx, name: a.name + ":" + b.name, idx: uint16(len(a.ifaces))}
	ib := &Iface{node: b, dirIdx: dirIdx + 1, name: b.name + ":" + a.name, idx: uint16(len(b.ifaces))}
	ia.peer, ib.peer = ib, ia
	ia.rxDirIdx = ib.dirIdx
	ib.rxDirIdx = ia.dirIdx
	a.ifaces = append(a.ifaces, ia)
	b.ifaces = append(b.ifaces, ib)
	return &Link{a: ia, b: ib}
}

// connectCut wires a link whose endpoints live in different shards of one
// ShardedSim. Each side's transmit direction lives in its own shard's
// arena; additionally each side gets a local *mirror* direction where
// deliveries to it are booked (the transmitting direction's counters are
// not addressable from the receiving shard without racing), merged back
// by Counters() on the transmit side.
func connectCut(a, b *Node, ab, ba LinkConfig) *Link {
	sa, sb := a.sim, b.sim
	if sa.shard == nil || sa.shard != sb.shard {
		panic("simnet: Connect across unrelated simulations")
	}
	ia := &Iface{node: a, name: a.name + ":" + b.name, idx: uint16(len(a.ifaces)), foreign: true}
	ib := &Iface{node: b, name: b.name + ":" + a.name, idx: uint16(len(b.ifaces)), foreign: true}
	// a's arena: [tx a->b, mirror of b->a deliveries].
	ia.dirIdx = int32(len(sa.dirs))
	ia.rxDirIdx = ia.dirIdx + 1
	sa.dirs = append(sa.dirs, linkDir{cfg: ab}, linkDir{})
	// b's arena: [tx b->a, mirror of a->b deliveries].
	ib.dirIdx = int32(len(sb.dirs))
	ib.rxDirIdx = ib.dirIdx + 1
	sb.dirs = append(sb.dirs, linkDir{cfg: ba}, linkDir{})
	ia.peer, ib.peer = ib, ia
	a.ifaces = append(a.ifaces, ia)
	b.ifaces = append(b.ifaces, ib)
	sa.shard.registerCut(ia, ib)
	return &Link{a: ia, b: ib}
}

// transmit puts data on the wire toward the peer, modelling store-and-
// forward transmission: serialization at the link rate behind the current
// backlog, then propagation, then delivery to the peer node.
func (i *Iface) transmit(data []byte) {
	sim := i.node.sim
	d := i.dir()
	if i.down || i.node.failed {
		d.counters.AdminDrops++
		if sim.Trace != nil {
			sim.trace(TraceDrop, i.node.name, fmt.Sprintf("iface down on %s", i.name), data)
		}
		return
	}
	now := sim.Now()

	if d.cfg.QueueBytes > 0 && d.cfg.RateBps > 0 {
		// Compare in float64: truncating the backlog before adding the
		// frame admits packets that overfill the queue by up to a byte. A
		// frame that exactly fills the queue is still accepted.
		backlog := float64(d.busyUntil-now) / float64(time.Second) * float64(d.cfg.RateBps) / 8
		if backlog > 0 && backlog+float64(len(data)) > float64(d.cfg.QueueBytes) {
			d.counters.QueueDrops++
			if sim.Trace != nil {
				sim.trace(TraceDrop, i.node.name, fmt.Sprintf("queue overflow on %s", i.name), data)
			}
			return
		}
	}
	var txTime Time
	if d.cfg.RateBps > 0 {
		txTime = Time(float64(len(data)*8) / float64(d.cfg.RateBps) * float64(time.Second))
	}
	start := now
	if d.busyUntil > start {
		start = d.busyUntil
	}
	d.busyUntil = start + txTime
	d.counters.TxPackets++
	d.counters.TxBytes += uint64(len(data))

	if d.cfg.Loss > 0 {
		if d.rng == nil {
			d.rng = rand.New(rand.NewSource(lossSeed(sim.worldSeed, i.name)))
		}
		if d.rng.Float64() < d.cfg.Loss {
			d.counters.RandomLoss++
			if sim.Trace != nil {
				sim.trace(TraceDrop, i.node.name, fmt.Sprintf("random loss on %s", i.name), data)
			}
			return
		}
	}
	arrival := d.busyUntil + d.cfg.Delay
	if i.foreign {
		sim.stageFrame(arrival, i.peer, data)
		return
	}
	sim.scheduleArrival(arrival, i.peer, data)
}

// lossSeed derives a per-direction loss-RNG seed from the world seed and
// the direction's stable name (FNV-1a over the name, mixed with the
// seed). Identical for any shard count by construction.
func lossSeed(worldSeed int64, name string) int64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	h ^= uint64(worldSeed) * 0x9e3779b97f4a7c15
	return int64(h)
}
