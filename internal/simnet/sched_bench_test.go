package simnet

import (
	"testing"
	"time"
)

// hotTimer is the steady-state benchmark workload: one typed timer that
// keeps rescheduling itself a tick ahead, the shape of every protocol
// timer and generator in the simulator.
type hotTimer struct {
	s    *Sim
	step Time
	left int
}

func (h *hotTimer) OnTimer(TimerArg) {
	if h.left > 0 {
		h.left--
		h.s.ScheduleTimer(h.step, h, TimerArg{})
	}
}

// BenchmarkSchedulerHot measures the closure-free steady state: one
// event scheduled, popped and dispatched per op. This must report
// 0 allocs/op — the acceptance bar for the typed-event core.
func BenchmarkSchedulerHot(b *testing.B) {
	s := New(1)
	h := &hotTimer{s: s, step: time.Microsecond, left: b.N}
	b.ReportAllocs()
	b.ResetTimer()
	s.ScheduleTimer(0, h, TimerArg{})
	s.Run()
}

// BenchmarkSchedulerHotReference runs the same workload on the reference
// heap engine (the value-based rewrite of the original scheduler, kept
// as the ordering specification), so the wheel's structural win over
// O(log n) sift costs stays measurable as queues deepen.
func BenchmarkSchedulerHotReference(b *testing.B) {
	s := NewWithEngine(1, EngineHeap)
	h := &hotTimer{s: s, step: time.Microsecond, left: b.N}
	b.ReportAllocs()
	b.ResetTimer()
	s.ScheduleTimer(0, h, TimerArg{})
	s.Run()
}

// mixedTimer reschedules itself with a rotating mix of horizons spanning
// every wheel level and the far heap.
type mixedTimer struct {
	s    *Sim
	i    int
	left int
}

var mixedHorizons = []Time{
	0,
	30 * time.Microsecond,
	2 * time.Millisecond,
	300 * time.Millisecond, // level 1
	50 * time.Second,       // level 2
	30 * time.Minute,       // far heap
}

func (m *mixedTimer) OnTimer(TimerArg) {
	if m.left > 0 {
		m.left--
		m.i++
		m.s.ScheduleTimer(mixedHorizons[m.i%len(mixedHorizons)], m, TimerArg{})
	}
}

// BenchmarkSchedulerMixedHorizon measures scheduling across all wheel
// levels and the far heap: every op inserts at a different horizon and
// pays the matching cascade/rebase costs.
func BenchmarkSchedulerMixedHorizon(b *testing.B) {
	s := New(1)
	m := &mixedTimer{s: s, left: b.N}
	b.ReportAllocs()
	b.ResetTimer()
	s.ScheduleTimer(0, m, TimerArg{})
	s.Run()
}

// cancelTimer models the simulator's disarm idiom (the resolver, TCP and
// requester retry timers): most armed timers are superseded before they
// fire and must be recognized as stale by their generation.
type cancelTimer struct {
	s    *Sim
	gen  int64
	left int
}

func (c *cancelTimer) OnTimer(arg TimerArg) {
	if arg.N != c.gen {
		return // cancelled: superseded before firing
	}
	if c.left <= 0 {
		return
	}
	// Arm four timers; bumping gen immediately cancels the first three.
	for i := 0; i < 4 && c.left > 0; i++ {
		c.left--
		c.gen++
		c.s.ScheduleTimer(Time(i+1)*50*time.Microsecond, c, TimerArg{N: c.gen})
	}
}

// BenchmarkSchedulerCancelHeavy measures the generation-disarm pattern
// under churn: 3 of every 4 scheduled timers fire stale and do nothing.
func BenchmarkSchedulerCancelHeavy(b *testing.B) {
	s := New(1)
	c := &cancelTimer{s: s, left: b.N}
	b.ReportAllocs()
	b.ResetTimer()
	s.ScheduleTimer(0, c, TimerArg{N: 0})
	s.Run()
}

// BenchmarkSchedulerFuncShim measures the ScheduleFunc compatibility
// path, whose per-event closure allocation is the cost the typed core
// removed.
func BenchmarkSchedulerFuncShim(b *testing.B) {
	s := New(1)
	b.ReportAllocs()
	b.ResetTimer()
	n := 0
	var step func()
	step = func() {
		if n < b.N {
			n++
			s.ScheduleFunc(time.Microsecond, step)
		}
	}
	s.ScheduleFunc(0, step)
	s.Run()
}

// TestSchedulerHotPathZeroAlloc pins the acceptance criterion outside
// the bench harness: steady-state typed scheduling performs zero
// allocations per event.
func TestSchedulerHotPathZeroAlloc(t *testing.T) {
	s := New(1)
	h := &hotTimer{s: s, step: time.Microsecond}
	// Warm up the lane and slot capacity.
	h.left = 10000
	s.ScheduleTimer(0, h, TimerArg{})
	s.Run()
	per := testing.AllocsPerRun(200, func() {
		h.left = 50
		s.ScheduleTimer(0, h, TimerArg{})
		s.Run()
	})
	if per != 0 {
		t.Fatalf("steady-state scheduling allocates %.1f per 51-event run, want 0", per)
	}
}
