package simnet

import (
	"testing"
	"time"

	"github.com/pcelisp/pcelisp/internal/packet"
)

// TestIfaceDownDropsQueuedFrames: frames handed to a downed interface
// are dropped and counted in AdminDrops, without touching the offered-
// load counters; recovery carries traffic again.
func TestIfaceDownDropsQueuedFrames(t *testing.T) {
	s := New(1)
	a, b, l := twoNodes(s, LinkConfig{Delay: time.Millisecond})
	delivered := 0
	b.ListenUDP(7, func(*Delivery, *packet.UDP) { delivered++ })

	l.A().SetUp(false)
	if l.A().Up() {
		t.Fatal("iface still up after SetUp(false)")
	}
	a.SendUDP(a.PrimaryAddr(), b.PrimaryAddr(), 1, 7, packet.Payload("x"))
	s.Run()
	c := l.A().Counters()
	if delivered != 0 || c.AdminDrops != 1 {
		t.Fatalf("delivered=%d adminDrops=%d, want 0/1", delivered, c.AdminDrops)
	}
	if c.TxPackets != 0 || c.DeliveredPackets != 0 {
		t.Fatalf("downed iface counted offered load: %+v", c)
	}

	l.A().SetUp(true)
	a.SendUDP(a.PrimaryAddr(), b.PrimaryAddr(), 1, 7, packet.Payload("x"))
	s.Run()
	c = l.A().Counters()
	if delivered != 1 || c.TxPackets != 1 || c.DeliveredPackets != 1 {
		t.Fatalf("recovery failed: delivered=%d counters=%+v", delivered, c)
	}
}

// TestLinkCutLosesInFlightFrames: a frame already propagating when the
// link goes down is lost on arrival and counted at the downed receiver.
func TestLinkCutLosesInFlightFrames(t *testing.T) {
	s := New(1)
	a, b, l := twoNodes(s, LinkConfig{Delay: 10 * time.Millisecond})
	delivered := 0
	b.ListenUDP(7, func(*Delivery, *packet.UDP) { delivered++ })

	a.SendUDP(a.PrimaryAddr(), b.PrimaryAddr(), 1, 7, packet.Payload("x"))
	s.ScheduleFunc(5*time.Millisecond, func() { l.SetDown() })
	s.Run()
	if delivered != 0 {
		t.Fatal("in-flight frame survived a link cut")
	}
	// The transmit side counted it as offered, the receive side as an
	// admin drop, and nobody as delivered.
	if c := l.A().Counters(); c.TxPackets != 1 || c.DeliveredPackets != 0 {
		t.Fatalf("A counters: %+v", c)
	}
	if c := l.B().Counters(); c.AdminDrops != 1 {
		t.Fatalf("B counters: %+v", c)
	}
}

// TestNodeFailRecover: a failed node sends, forwards and delivers
// nothing; after recovery it behaves normally.
func TestNodeFailRecover(t *testing.T) {
	s := New(1)
	a, b, _ := twoNodes(s, LinkConfig{Delay: time.Millisecond})
	delivered := 0
	b.ListenUDP(7, func(*Delivery, *packet.UDP) { delivered++ })

	b.Fail()
	if !b.Failed() {
		t.Fatal("Failed() false after Fail")
	}
	a.SendUDP(a.PrimaryAddr(), b.PrimaryAddr(), 1, 7, packet.Payload("x"))
	s.Run()
	if delivered != 0 {
		t.Fatal("failed node delivered a packet")
	}
	// A failed node's own sends vanish too.
	b.SendUDP(b.PrimaryAddr(), a.PrimaryAddr(), 1, 7, packet.Payload("x"))
	s.Run()
	if a.Stats.DeliveredLocal != 0 {
		t.Fatal("failed node transmitted")
	}

	b.Recover()
	a.SendUDP(a.PrimaryAddr(), b.PrimaryAddr(), 1, 7, packet.Payload("x"))
	s.Run()
	if delivered != 1 {
		t.Fatalf("delivered=%d after recovery, want 1", delivered)
	}
}

// TestDeliveredBytesExcludeRandomLoss is the offered-vs-goodput
// regression: with Loss=1.0 every frame is still counted as offered
// (TxBytes) but none as delivered, so utilization trackers reading
// DeliveredBytes report zero goodput.
func TestDeliveredBytesExcludeRandomLoss(t *testing.T) {
	s := New(1)
	a, b, l := twoNodes(s, LinkConfig{Delay: time.Millisecond, Loss: 1.0})
	b.ListenUDP(7, func(*Delivery, *packet.UDP) {})
	for i := 0; i < 10; i++ {
		a.SendUDP(a.PrimaryAddr(), b.PrimaryAddr(), 1, 7, packet.Payload("x"))
	}
	s.Run()
	c := l.A().Counters()
	if c.TxPackets != 10 || c.RandomLoss != 10 {
		t.Fatalf("offered-load counters: %+v", c)
	}
	if c.TxBytes == 0 {
		t.Fatal("TxBytes empty")
	}
	if c.DeliveredPackets != 0 || c.DeliveredBytes != 0 {
		t.Fatalf("lost frames counted as delivered: %+v", c)
	}
}

// TestQueueBoundaryExactFill is the queue-overflow comparison
// regression: a packet exactly filling the queue is accepted, and a
// fractional backlog must not be truncated before the comparison (the
// old int() cast admitted packets overfilling the queue by a byte).
func TestQueueBoundaryExactFill(t *testing.T) {
	s := New(1)
	// 1 MB/s: a 1000-byte packet serializes in exactly 1ms.
	a, b, l := twoNodes(s, LinkConfig{Delay: time.Millisecond, RateBps: 8_000_000, QueueBytes: 1500})
	delivered := 0
	b.ListenUDP(7, func(*Delivery, *packet.UDP) { delivered++ })
	pkt := func(total int) packet.Payload {
		return packet.Payload(make([]byte, total-packet.IPv4HeaderLen-packet.UDPHeaderLen))
	}

	// 1000B in flight, backlog 999.5B at t=500ns; a 501B packet would
	// make 1500.5B — over the 1500B queue, so it must drop even though
	// int(999.5)+501 == 1500 passes the truncated comparison.
	a.SendUDP(a.PrimaryAddr(), b.PrimaryAddr(), 1, 7, pkt(1000))
	s.ScheduleFunc(500*time.Nanosecond, func() {
		a.SendUDP(a.PrimaryAddr(), b.PrimaryAddr(), 1, 7, pkt(501))
	})
	s.Run()
	if c := l.A().Counters(); c.QueueDrops != 1 {
		t.Fatalf("fractional overfill admitted: %+v", c)
	}

	// Exact fill is still accepted: 1000B in flight, backlog exactly
	// 500B halfway through, plus a 1000B packet = 1500B = QueueBytes.
	s2 := New(1)
	a2, b2, l2 := twoNodes(s2, LinkConfig{Delay: time.Millisecond, RateBps: 8_000_000, QueueBytes: 1500})
	got := 0
	b2.ListenUDP(7, func(*Delivery, *packet.UDP) { got++ })
	a2.SendUDP(a2.PrimaryAddr(), b2.PrimaryAddr(), 1, 7, pkt(1000))
	s2.ScheduleFunc(500*time.Microsecond, func() {
		a2.SendUDP(a2.PrimaryAddr(), b2.PrimaryAddr(), 1, 7, pkt(1000))
	})
	s2.Run()
	if c := l2.A().Counters(); c.QueueDrops != 0 || got != 2 {
		t.Fatalf("exact fill rejected: drops=%d delivered=%d", c.QueueDrops, got)
	}
}

// TestMidSimConfigChangeKeepsBusyUntil: degrading a live link with
// SetConfig/SetLoss leaves the in-flight serialization state intact —
// the frame being transmitted finishes at the old rate, the next one
// queues behind it at the new rate and new loss.
func TestMidSimConfigChangeKeepsBusyUntil(t *testing.T) {
	s := New(1)
	// 8000 bps: a 100-byte packet serializes in 100ms.
	a, b, l := twoNodes(s, LinkConfig{Delay: 10 * time.Millisecond, RateBps: 8000})
	var times []Time
	b.ListenUDP(7, func(*Delivery, *packet.UDP) { times = append(times, s.Now()) })
	payload := packet.Payload(make([]byte, 100-packet.IPv4HeaderLen-packet.UDPHeaderLen))

	a.SendUDP(a.PrimaryAddr(), b.PrimaryAddr(), 1, 7, payload)
	// Mid-serialization, double the rate and send a second packet: it
	// starts after the first finishes (t=100ms) and serializes in 50ms.
	s.ScheduleFunc(40*time.Millisecond, func() {
		cfg := l.A().Config()
		cfg.RateBps = 16000
		l.A().SetConfig(cfg)
		a.SendUDP(a.PrimaryAddr(), b.PrimaryAddr(), 1, 7, payload)
	})
	s.Run()
	if len(times) != 2 {
		t.Fatalf("delivered %d packets", len(times))
	}
	if times[0] != 110*time.Millisecond {
		t.Fatalf("first delivery at %v, want 110ms", times[0])
	}
	if times[1] != 160*time.Millisecond {
		t.Fatalf("second delivery at %v, want 160ms (100ms busyUntil + 50ms at new rate + 10ms delay)", times[1])
	}

	// SetLoss mid-simulation applies to subsequent transmits only: the
	// already-scheduled arrivals above were unaffected, new ones vanish.
	l.SetLoss(1.0)
	a.SendUDP(a.PrimaryAddr(), b.PrimaryAddr(), 1, 7, payload)
	s.Run()
	if len(times) != 2 {
		t.Fatal("packet survived Loss=1.0 installed mid-simulation")
	}
	if l.A().Counters().RandomLoss != 1 {
		t.Fatalf("counters: %+v", l.A().Counters())
	}
}

// TestFailurePlanScript: a scripted cut/recover sequence fires at its
// absolute times through typed timers.
func TestFailurePlanScript(t *testing.T) {
	s := New(1)
	a, b, l := twoNodes(s, LinkConfig{Delay: time.Millisecond})
	var deliveredAt []Time
	b.ListenUDP(7, func(*Delivery, *packet.UDP) { deliveredAt = append(deliveredAt, s.Now()) })

	plan := NewFailurePlan(s)
	plan.LinkDown(10*time.Millisecond, l).
		LinkUp(30*time.Millisecond, l).
		SetLoss(50*time.Millisecond, l, 1.0).
		SetLoss(70*time.Millisecond, l, 0).
		NodeFail(90*time.Millisecond, b).
		NodeRecover(110*time.Millisecond, b)
	plan.Schedule()

	// One probe packet every 20ms starting at 5ms: the ones at 25ms
	// (link down), 65ms (full loss) and 105ms (node failed) die.
	for i := 0; i < 6; i++ {
		at := time.Duration(5+20*i) * time.Millisecond
		s.AtFunc(at, func() {
			a.SendUDP(a.PrimaryAddr(), b.PrimaryAddr(), 1, 7, packet.Payload("x"))
		})
	}
	s.Run()
	if plan.Fired != 6 {
		t.Fatalf("plan fired %d of 6 events", plan.Fired)
	}
	want := []Time{6 * time.Millisecond, 46 * time.Millisecond, 86 * time.Millisecond}
	if len(deliveredAt) != len(want) {
		t.Fatalf("deliveries at %v, want %v", deliveredAt, want)
	}
	for i := range want {
		if deliveredAt[i] != want[i] {
			t.Fatalf("deliveries at %v, want %v", deliveredAt, want)
		}
	}
}
