package topo

import (
	"testing"
	"time"

	"github.com/pcelisp/pcelisp/internal/netaddr"
	"github.com/pcelisp/pcelisp/internal/packet"
	"github.com/pcelisp/pcelisp/internal/simnet"
)

func twoDomainSpec() Spec {
	return Spec{
		Seed: 42,
		Domains: []DomainSpec{
			{Hosts: 2, Providers: 2},
			{Hosts: 2, Providers: 2},
		},
	}
}

func TestBuildShape(t *testing.T) {
	in := Build(twoDomainSpec())
	if len(in.Domains) != 2 {
		t.Fatalf("domains = %d", len(in.Domains))
	}
	d0 := in.Domain(0)
	if d0.EIDPrefix != netaddr.MustParsePrefix("100.1.0.0/16") {
		t.Fatalf("d0 prefix = %v", d0.EIDPrefix)
	}
	if len(d0.Hosts) != 2 || len(d0.Providers) != 2 {
		t.Fatalf("d0 hosts=%d providers=%d", len(d0.Hosts), len(d0.Providers))
	}
	if len(d0.XTRs) != 1 {
		t.Fatalf("default must build one multihomed xTR, got %d", len(d0.XTRs))
	}
	if d0.Providers[0].RLOC != netaddr.MustParseAddr("10.0.0.1") {
		t.Fatalf("d0 provider0 RLOC = %v", d0.Providers[0].RLOC)
	}
	if d0.PCEAddr != netaddr.MustParseAddr("172.16.0.1") {
		t.Fatalf("d0 PCE addr = %v", d0.PCEAddr)
	}
	if in.HostName(1, 0) != "h0.d1.example" {
		t.Fatalf("host name = %q", in.HostName(1, 0))
	}
	if got := d0.RLOCs(); len(got) != 2 || got[1] != netaddr.MustParseAddr("10.0.1.1") {
		t.Fatalf("RLOCs = %v", got)
	}
}

func TestBuildDeterministic(t *testing.T) {
	a := Build(twoDomainSpec())
	b := Build(twoDomainSpec())
	for i := range a.Domains {
		for p := range a.Domains[i].Providers {
			da := a.Domains[i].Providers[p].CoreDelay
			db := b.Domains[i].Providers[p].CoreDelay
			if da != db {
				t.Fatalf("core delays differ across identical builds: %v vs %v", da, db)
			}
		}
	}
}

func TestDNSResolutionAcrossDomains(t *testing.T) {
	in := Build(twoDomainSpec())
	h := in.Domain(0).Hosts[0]
	var got netaddr.Addr
	var tdns simnet.Time
	ok := false
	h.DNS.Lookup(in.HostName(1, 0), func(a netaddr.Addr, d simnet.Time, success bool) {
		got, tdns, ok = a, d, success
	})
	in.Sim.RunFor(5 * time.Second)
	if !ok {
		t.Fatal("cross-domain DNS lookup failed")
	}
	if got != in.Domain(1).Hosts[0].Addr {
		t.Fatalf("resolved %v, want %v", got, in.Domain(1).Hosts[0].Addr)
	}
	// Iterative resolution: client->DNSS plus three upstream queries.
	if tdns < 50*time.Millisecond {
		t.Fatalf("TDNS = %v, implausibly fast for iterative resolution", tdns)
	}
	if in.Root.Stats.Referrals != 1 || in.TLD.Stats.Referrals != 1 {
		t.Fatalf("root/TLD referrals = %d/%d", in.Root.Stats.Referrals, in.TLD.Stats.Referrals)
	}
	if in.Domain(1).Auth.Stats.Answers != 1 {
		t.Fatalf("authoritative answers = %d", in.Domain(1).Auth.Stats.Answers)
	}
}

func TestEIDsNotRoutableNatively(t *testing.T) {
	in := Build(twoDomainSpec())
	src := in.Domain(0).Hosts[0]
	dst := in.Domain(1).Hosts[0]
	delivered := false
	dst.Node.ListenUDP(7777, func(*simnet.Delivery, *packet.UDP) { delivered = true })
	src.Node.SendUDP(src.Addr, dst.Addr, 1, 7777, packet.Payload("native?"))
	in.Sim.RunFor(2 * time.Second)
	if delivered {
		t.Fatal("EID-addressed packet must not cross the core natively")
	}
	// With MissDrop and no mapping, the xTR counted the drop.
	if in.Domain(0).XTRs[0].Stats().CacheMissDrops != 1 {
		t.Fatalf("drops = %d", in.Domain(0).XTRs[0].Stats().CacheMissDrops)
	}
}

func TestLISPDeliveryWithManualMapping(t *testing.T) {
	in := Build(twoDomainSpec())
	d0, d1 := in.Domain(0), in.Domain(1)
	// Install mappings both ways (what a control plane would do).
	d0.XTRs[0].Cache.Insert(d1.EIDPrefix, []packet.LISPLocator{
		{Priority: 1, Weight: 100, Reachable: true, Addr: d1.Providers[0].RLOC},
	}, 0)
	d1.XTRs[0].Cache.Insert(d0.EIDPrefix, []packet.LISPLocator{
		{Priority: 1, Weight: 100, Reachable: true, Addr: d0.Providers[0].RLOC},
	}, 0)
	src, dst := d0.Hosts[0], d1.Hosts[1]
	var got string
	dst.Node.ListenUDP(7777, func(d *simnet.Delivery, udp *packet.UDP) {
		got = string(udp.LayerPayload())
	})
	src.Node.SendUDP(src.Addr, dst.Addr, 1, 7777, packet.Payload("tunneled"))
	in.Sim.RunFor(2 * time.Second)
	if got != "tunneled" {
		t.Fatal("LISP delivery across the built internet failed")
	}
	if d0.XTRs[0].Stats().EncapPackets != 1 || d1.XTRs[0].Stats().DecapPackets != 1 {
		t.Fatalf("encap=%d decap=%d", d0.XTRs[0].Stats().EncapPackets, d1.XTRs[0].Stats().DecapPackets)
	}
}

func TestSplitXTRs(t *testing.T) {
	spec := twoDomainSpec()
	spec.Domains[1].SplitXTRs = true
	in := Build(spec)
	d1 := in.Domain(1)
	if len(d1.XTRs) != 2 {
		t.Fatalf("split xTRs = %d", len(d1.XTRs))
	}
	if d1.XTRs[0] == d1.XTRs[1] || d1.XTRs[0].Node() == d1.XTRs[1].Node() {
		t.Fatal("split xTRs must be distinct nodes")
	}
	if d1.Providers[1].XTR != d1.XTRs[1] {
		t.Fatal("provider 1 must map to xTR 1")
	}
	// Delivery to the secondary RLOC decapsulates at xTR 1 and still
	// reaches the host through the router.
	d0 := in.Domain(0)
	d0.XTRs[0].Cache.Insert(d1.EIDPrefix, []packet.LISPLocator{
		{Priority: 1, Weight: 100, Reachable: true, Addr: d1.Providers[1].RLOC},
	}, 0)
	dst := d1.Hosts[0]
	got := false
	dst.Node.ListenUDP(7, func(*simnet.Delivery, *packet.UDP) { got = true })
	d0.Hosts[0].Node.SendUDP(d0.Hosts[0].Addr, dst.Addr, 1, 7, packet.Payload("x"))
	in.Sim.RunFor(2 * time.Second)
	if !got {
		t.Fatal("delivery via secondary xTR failed")
	}
	if d1.XTRs[1].Stats().DecapPackets != 1 {
		t.Fatalf("secondary xTR decaps = %d", d1.XTRs[1].Stats().DecapPackets)
	}
}

func TestMultihomedEgressSteering(t *testing.T) {
	in := Build(twoDomainSpec())
	d0, d1 := in.Domain(0), in.Domain(1)
	// A flow entry whose source RLOC belongs to provider 1 must leave
	// through provider 1's link (source-based steering on the multihomed
	// xTR).
	d0.XTRs[0].InstallFlow(d0.Hosts[0].Addr, d1.Hosts[0].Addr,
		d0.Providers[1].RLOC, d1.Providers[0].RLOC, 0)
	before := d0.Providers[1].EgressIface.Counters().TxPackets
	d0.Hosts[0].Node.SendUDP(d0.Hosts[0].Addr, d1.Hosts[0].Addr, 1, 7, packet.Payload("steer"))
	in.Sim.RunFor(time.Second)
	after := d0.Providers[1].EgressIface.Counters().TxPackets
	if after != before+1 {
		t.Fatalf("provider 1 egress packets = %d -> %d, want +1", before, after)
	}
}

func TestInfraReachableFromAllDomains(t *testing.T) {
	in := Build(twoDomainSpec())
	// The resolver of d0 can reach the authoritative server of d1
	// natively (DNS infrastructure is RLOC-space).
	d0, d1 := in.Domain(0), in.Domain(1)
	reached := false
	d1.AuthNode.ListenUDP(9999, func(*simnet.Delivery, *packet.UDP) { reached = true })
	d0.ResolverNode.SendUDP(d0.Resolver.Addr(), netaddr.MustParseAddr("172.16.1.3"), 1, 9999)
	in.Sim.RunFor(2 * time.Second)
	if !reached {
		t.Fatal("cross-domain infra traffic failed")
	}
}

func TestSpecDefaults(t *testing.T) {
	in := Build(Spec{Seed: 1, Domains: []DomainSpec{{}}})
	d := in.Domain(0)
	if len(d.Hosts) != 2 || len(d.Providers) != 2 {
		t.Fatalf("defaults: hosts=%d providers=%d", len(d.Hosts), len(d.Providers))
	}
	for _, p := range d.Providers {
		if p.CoreDelay < 10*time.Millisecond || p.CoreDelay > 40*time.Millisecond {
			t.Fatalf("core delay %v outside default bounds", p.CoreDelay)
		}
	}
}

func TestQueueFor(t *testing.T) {
	if queueFor(0) != 0 {
		t.Fatal("unlimited rate must have unbounded queue")
	}
	if queueFor(8_000_000) != 50_000 {
		t.Fatalf("queueFor(8Mbps) = %d, want 50000", queueFor(8_000_000))
	}
	if queueFor(1000) != 3000 {
		t.Fatalf("queue floor = %d", queueFor(1000))
	}
}
