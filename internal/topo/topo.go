// Package topo builds the simulated internets the experiments run on:
// multihomed LISP domains in the style of the paper's Fig. 1 (a domain
// with providers A/B on one side, X/Y on the other), a non-LISP transit
// core where only RLOC and infrastructure prefixes are routable, a global
// DNS hierarchy (root, TLD, per-domain authoritative servers) and a
// per-domain DNS chain where the PCE node sits in the data path of the
// domain's DNS servers — exactly the placement the paper requires.
//
// Address plan:
//
//	EID space        100.0.0.0/8; domain d owns 100.(d+1).0.0/16
//	host h of dom d  100.(d+1).(1+h).1
//	RLOCs            10.d.p.1 = xTR address on provider p of domain d
//	infra            172.16.d.0/24: .1 PCE, .2 resolver (DNSS), .3 authoritative (DNSD)
//	root DNS         198.41.0.4, TLD DNS 192.5.6.30 (their real 2008 addresses)
//
// EIDs are not routable in the core — only LISP tunnels deliver
// inter-domain data traffic, as in the paper.
package topo

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/pcelisp/pcelisp/internal/dnssim"
	"github.com/pcelisp/pcelisp/internal/lisp"
	"github.com/pcelisp/pcelisp/internal/netaddr"
	"github.com/pcelisp/pcelisp/internal/obs"
	"github.com/pcelisp/pcelisp/internal/simnet"
)

// EIDSpace is the global EID space.
var EIDSpace = netaddr.MustParsePrefix("100.0.0.0/8")

// Spec describes the internet to build.
type Spec struct {
	// Seed drives every random choice (core link delays).
	Seed int64
	// Shards partitions the world into this many lock-step simulation
	// shards (default 1): domain i lands on shard i mod Shards, while the
	// core, the DNS hierarchy and everything hanging off the core stay on
	// shard 0. Provider-core links then become the cut links whose delays
	// (>= CoreDelayMin) bound the epoch length. Output is byte-identical
	// for every shard count.
	Shards int
	// Domains describes each LISP domain.
	Domains []DomainSpec
	// CoreDelayMin/Max bound the provider-to-core one-way delays, drawn
	// uniformly per provider (defaults 10-40ms).
	CoreDelayMin, CoreDelayMax time.Duration
	// RootDelay and TLDDelay are the core-to-DNS-infrastructure delays
	// (defaults 15ms and 20ms).
	RootDelay, TLDDelay time.Duration
	// DNSRecordTTL is the TTL of host A records in seconds (default 300).
	DNSRecordTTL uint32
	// Obs, when non-nil, registers every xTR's counters on this registry
	// (series are labeled by node name, unique within one world; do not
	// share a registry across worlds).
	Obs *obs.Registry
	// Recorder, when non-nil, receives control-plane flight events from
	// every xTR in the world. Recording never draws from the simulation
	// RNG and schedules nothing, so traces stay byte-identical with it
	// on or off.
	Recorder *obs.FlightRecorder
}

// DomainSpec describes one LISP domain.
type DomainSpec struct {
	// Hosts is the number of end-hosts (default 2).
	Hosts int
	// Providers is the multihoming degree (default 2).
	Providers int
	// ProviderCapacityBps sets the xTR-provider link rate; 0 = unlimited.
	ProviderCapacityBps int64
	// EdgeDelay is the xTR-provider delay (default 5ms).
	EdgeDelay time.Duration
	// SplitXTRs gives each provider its own xTR node (the paper's
	// separate ITR/ETR boxes); the default is one multihomed xTR node.
	SplitXTRs bool
	// MissPolicy is the ITR cache-miss policy.
	MissPolicy lisp.MissPolicy
	// CacheCapacity bounds the map-caches (0 = unbounded).
	CacheCapacity int
	// CachePolicy names the map-cache eviction policy ("lru", "lfu",
	// "2q"; "" = LRU).
	CachePolicy string
	// OverclaimFloor rejects installed mappings whose prefix is shorter
	// than this many bits (0 = accept any; see lisp.XTRConfig).
	OverclaimFloor int
	// GleanRateLimit bounds data-plane gleaning per second (0 = unbounded;
	// see lisp.XTRConfig).
	GleanRateLimit int
}

// Provider is one upstream attachment of a domain.
type Provider struct {
	// Name is "P<d>.<p>".
	Name string
	// Node is the provider's router in the core.
	Node *simnet.Node
	// RLOC is the xTR's address on this provider's customer link.
	RLOC netaddr.Addr
	// XTR is the tunnel router attached to this provider.
	XTR *lisp.XTR
	// EgressIface is the xTR-side interface of the customer link (feed
	// for utilization monitoring).
	EgressIface *simnet.Iface
	// Link is the xTR-provider customer link and CoreLink the
	// provider-core transit link — the failure-injection cut points.
	Link, CoreLink *simnet.Link
	// CoreDelay is the drawn provider-core delay.
	CoreDelay time.Duration
	// CapacityBps echoes the spec.
	CapacityBps int64
}

// Host is one end-host of a domain.
type Host struct {
	// Node is the host's node.
	Node *simnet.Node
	// Addr is the host's EID.
	Addr netaddr.Addr
	// Name is the host's DNS name ("h0.d0.example").
	Name string
	// DNS is the host's stub resolver client.
	DNS *dnssim.Client
}

// Domain is one built LISP domain.
type Domain struct {
	// Index is the domain's position in the spec.
	Index int
	// Name is "d<index>".
	Name string
	// EIDPrefix is the domain's EID /16.
	EIDPrefix netaddr.Prefix
	// Zone is the domain's DNS zone ("d<index>.example").
	Zone string
	// Router is the interior router all hosts hang off.
	Router *simnet.Node
	// Hosts are the end-hosts.
	Hosts []*Host
	// XTRs are the tunnel routers (one multihomed node, or one per
	// provider under SplitXTRs).
	XTRs []*lisp.XTR
	// Providers are the upstream attachments.
	Providers []*Provider
	// PCENode is the node on the DNS path where the PCE runs. It is a
	// plain router until internal/core attaches PCE behaviour.
	PCENode *simnet.Node
	// PCEAddr is the PCE's address (172.16.d.1).
	PCEAddr netaddr.Addr
	// Resolver is the domain's caching resolver (DNSS) at 172.16.d.2.
	Resolver *dnssim.Resolver
	// ResolverNode hosts the resolver.
	ResolverNode *simnet.Node
	// Auth is the domain's authoritative server (DNSD) at 172.16.d.3.
	Auth *dnssim.Server
	// AuthNode hosts the authoritative server.
	AuthNode *simnet.Node
	// Group is the domain's ETR-synchronization multicast group.
	Group netaddr.Addr
}

// RLOCs returns the domain's locator addresses in provider order.
func (d *Domain) RLOCs() []netaddr.Addr {
	out := make([]netaddr.Addr, len(d.Providers))
	for i, p := range d.Providers {
		out[i] = p.RLOC
	}
	return out
}

// Internet is the fully built world.
type Internet struct {
	// Sharded is the lock-step coordinator for the whole world. All run
	// control (and barrier-callback scheduling) goes through it; with one
	// shard it degenerates to plain runs of Sim.
	Sharded *simnet.ShardedSim
	// Sim is shard 0: the core, the DNS hierarchy, and domain 0 live
	// here. With Spec.Shards <= 1 it is the whole world.
	Sim *simnet.Sim
	// Core is the transit hub.
	Core *simnet.Node
	// Root and TLD are the top of the DNS hierarchy.
	Root *dnssim.Server
	// TLD serves the "example" zone.
	TLD *dnssim.Server
	// Domains are the LISP domains in spec order.
	Domains []*Domain
}

// rootAddr and tldAddr are the 2008-era real addresses of a.root-servers
// and a.gtld-servers.
var (
	rootAddr = netaddr.MustParseAddr("198.41.0.4")
	tldAddr  = netaddr.MustParseAddr("192.5.6.30")
)

func (s *Spec) fill() {
	if s.CoreDelayMin == 0 {
		s.CoreDelayMin = 10 * time.Millisecond
	}
	if s.CoreDelayMax < s.CoreDelayMin {
		s.CoreDelayMax = 4 * s.CoreDelayMin
	}
	if s.RootDelay == 0 {
		s.RootDelay = 15 * time.Millisecond
	}
	if s.TLDDelay == 0 {
		s.TLDDelay = 20 * time.Millisecond
	}
	if s.DNSRecordTTL == 0 {
		s.DNSRecordTTL = 300
	}
	for i := range s.Domains {
		d := &s.Domains[i]
		if d.Hosts == 0 {
			d.Hosts = 2
		}
		if d.Providers == 0 {
			d.Providers = 2
		}
		if d.EdgeDelay == 0 {
			d.EdgeDelay = 5 * time.Millisecond
		}
	}
}

// Build constructs the internet.
func Build(spec Spec) *Internet {
	spec.fill()
	shards := spec.Shards
	if shards < 1 {
		shards = 1
	}
	sharded := simnet.NewSharded(spec.Seed, shards)
	sim := sharded.Shard(0)
	in := &Internet{Sharded: sharded, Sim: sim, Core: sim.NewNode("core")}

	// DNS hierarchy root and TLD hang directly off the core.
	rootNode := sim.NewNode("dns-root")
	lr := simnet.Connect(rootNode, in.Core, simnet.LinkConfig{Delay: spec.RootDelay})
	lr.A().SetAddr(rootAddr)
	rootNode.SetDefaultRoute(lr.A())
	in.Core.AddRoute(netaddr.HostPrefix(rootAddr), lr.B())
	in.Root = dnssim.NewServer(rootNode, rootAddr, ".")

	tldNode := sim.NewNode("dns-tld")
	lt := simnet.Connect(tldNode, in.Core, simnet.LinkConfig{Delay: spec.TLDDelay})
	lt.A().SetAddr(tldAddr)
	tldNode.SetDefaultRoute(lt.A())
	in.Core.AddRoute(netaddr.HostPrefix(tldAddr), lt.B())
	in.TLD = dnssim.NewServer(tldNode, tldAddr, "example")
	in.Root.Delegate("example", "ns.example", tldAddr, 86400)

	// Core delays come from a spec-level stream in deterministic
	// (domain, provider) order — never from a shard-local Sim rng, whose
	// consumption would depend on how domains were partitioned.
	rng := rand.New(rand.NewSource(spec.Seed))
	for i := range spec.Domains {
		in.buildDomain(&spec, i, rng)
	}
	return in
}

func (in *Internet) buildDomain(spec *Spec, idx int, rng *rand.Rand) {
	// Domain idx lives on shard idx mod N; domain 0 therefore shares
	// shard 0 with the core and DNS infrastructure, which keeps the
	// experiment drivers (all of which act from domain 0) on one shard.
	sim := in.Sharded.Shard(idx % in.Sharded.NumShards())
	ds := spec.Domains[idx]
	d := &Domain{
		Index:     idx,
		Name:      fmt.Sprintf("d%d", idx),
		EIDPrefix: netaddr.PrefixFrom(netaddr.AddrFrom4(100, byte(idx+1), 0, 0), 16),
		Zone:      fmt.Sprintf("d%d.example", idx),
		Group:     netaddr.AddrFrom4(239, 0, 0, byte(idx+1)),
	}
	infra := netaddr.PrefixFrom(netaddr.AddrFrom4(172, 16, byte(idx), 0), 24)
	d.PCEAddr = infra.NthHost(1)
	resolverAddr := infra.NthHost(2)
	authAddr := infra.NthHost(3)

	d.Router = sim.NewNode(d.Name + "-router")
	intra := simnet.LinkConfig{Delay: time.Millisecond}

	// DNS chain: router -- pce -- {resolver, auth}. The PCE node forwards
	// all DNS traffic of the domain, putting it "in the data path of the
	// DNS servers".
	d.PCENode = sim.NewNode(d.Name + "-pce")
	lp := simnet.Connect(d.Router, d.PCENode, intra)
	lp.B().SetAddr(d.PCEAddr)
	lp.A().SetAddr(infra.NthHost(254))
	d.Router.AddRoute(infra, lp.A())
	d.PCENode.SetDefaultRoute(lp.B())

	d.ResolverNode = sim.NewNode(d.Name + "-dnss")
	lres := simnet.Connect(d.PCENode, d.ResolverNode, intra)
	lres.B().SetAddr(resolverAddr)
	lres.A().SetAddr(infra.NthHost(5))
	d.PCENode.AddRoute(netaddr.HostPrefix(resolverAddr), lres.A())
	d.ResolverNode.SetDefaultRoute(lres.B())
	d.Resolver = dnssim.NewResolver(d.ResolverNode, resolverAddr, rootAddr)

	d.AuthNode = sim.NewNode(d.Name + "-dnsd")
	lauth := simnet.Connect(d.PCENode, d.AuthNode, intra)
	lauth.B().SetAddr(authAddr)
	lauth.A().SetAddr(infra.NthHost(6))
	d.PCENode.AddRoute(netaddr.HostPrefix(authAddr), lauth.A())
	d.AuthNode.SetDefaultRoute(lauth.B())
	d.Auth = dnssim.NewServer(d.AuthNode, authAddr, d.Zone)
	in.TLD.Delegate(d.Zone, "ns."+d.Zone, authAddr, 86400)

	// Hosts on per-host /24 stub links.
	for h := 0; h < ds.Hosts; h++ {
		sub := d.EIDPrefix.Subnet(24, 1+h)
		host := &Host{
			Addr: sub.NthHost(1),
			Name: fmt.Sprintf("h%d.%s", h, d.Zone),
			Node: sim.NewNode(fmt.Sprintf("%s-h%d", d.Name, h)),
		}
		l := simnet.Connect(host.Node, d.Router, intra)
		l.A().SetAddr(host.Addr)
		l.B().SetAddr(sub.NthHost(2))
		host.Node.SetDefaultRoute(l.A())
		d.Router.AddRoute(sub, l.B())
		host.DNS = dnssim.NewClient(host.Node, host.Addr, resolverAddr)
		d.Hosts = append(d.Hosts, host)
		d.Auth.AddA(host.Name, host.Addr, spec.DNSRecordTTL)
	}

	// xTR nodes: one multihomed node, or one per provider.
	numXTRNodes := 1
	if ds.SplitXTRs {
		numXTRNodes = ds.Providers
	}
	xtrNodes := make([]*simnet.Node, numXTRNodes)
	for x := range xtrNodes {
		xtrNodes[x] = sim.NewNode(fmt.Sprintf("%s-xtr%d", d.Name, x))
		// Intra-domain side: link to the router.
		sub := d.EIDPrefix.Subnet(24, 200+x)
		l := simnet.Connect(xtrNodes[x], d.Router, intra)
		l.A().SetAddr(sub.NthHost(1))
		l.B().SetAddr(sub.NthHost(2))
		xtrNodes[x].AddRoute(d.EIDPrefix, l.A())
		xtrNodes[x].AddRoute(infra, l.A())
		if x == 0 {
			d.Router.SetDefaultRoute(l.B())
		} else {
			// Return traffic decapsulated at secondary xTRs re-enters via
			// the router; the router reaches them by their stub subnet.
			d.Router.AddRoute(sub, l.B())
		}
	}

	// Providers: core -- provider -- xTR. The provider node belongs to
	// the domain's shard, so the provider-core transit link is the cut
	// link in a sharded world.
	for p := 0; p < ds.Providers; p++ {
		provNode := sim.NewNode(fmt.Sprintf("%s-prov%d", d.Name, p))
		coreDelay := spec.CoreDelayMin +
			time.Duration(rng.Int63n(int64(spec.CoreDelayMax-spec.CoreDelayMin)+1))
		lc := simnet.Connect(provNode, in.Core, simnet.LinkConfig{Delay: coreDelay})
		lc.A().SetAddr(netaddr.AddrFrom4(192, 168, byte(idx), byte(p*2+1)))
		provNode.SetDefaultRoute(lc.A())

		xtrNode := xtrNodes[0]
		if ds.SplitXTRs {
			xtrNode = xtrNodes[p]
		}
		custNet := netaddr.PrefixFrom(netaddr.AddrFrom4(10, byte(idx), byte(p), 0), 24)
		rloc := custNet.NthHost(1)
		le := simnet.Connect(xtrNode, provNode, simnet.LinkConfig{
			Delay: ds.EdgeDelay, RateBps: ds.ProviderCapacityBps,
			QueueBytes: queueFor(ds.ProviderCapacityBps),
		})
		le.A().SetAddr(rloc)
		le.B().SetAddr(custNet.NthHost(2))
		provNode.AddRoute(custNet, le.B())
		provNode.AddRoute(infra, le.B())
		in.Core.AddRoute(custNet, lc.B())
		if p == 0 {
			// Infrastructure (DNS/PCE) prefixes ride the first provider.
			in.Core.AddRoute(infra, lc.B())
			xtrNode.SetDefaultRoute(le.A())
		} else if ds.SplitXTRs {
			xtrNode.SetDefaultRoute(le.A())
		}

		d.Providers = append(d.Providers, &Provider{
			Name:        fmt.Sprintf("P%d.%d", idx, p),
			Node:        provNode,
			RLOC:        rloc,
			EgressIface: le.A(),
			Link:        le,
			CoreLink:    lc,
			CoreDelay:   coreDelay,
			CapacityBps: ds.ProviderCapacityBps,
		})
	}

	// Install the LISP data plane.
	for x, xtrNode := range xtrNodes {
		xtr := lisp.InstallXTR(xtrNode, lisp.XTRConfig{
			RLOC:           d.Providers[min(x, len(d.Providers)-1)].RLOC,
			LocalEIDs:      d.EIDPrefix,
			EIDSpace:       EIDSpace,
			CacheCapacity:  ds.CacheCapacity,
			CachePolicy:    ds.CachePolicy,
			MissPolicy:     ds.MissPolicy,
			OverclaimFloor: ds.OverclaimFloor,
			GleanRateLimit: ds.GleanRateLimit,
			Obs:            spec.Obs,
			Recorder:       spec.Recorder,
		})
		d.XTRs = append(d.XTRs, xtr)
	}
	for p := range d.Providers {
		if ds.SplitXTRs {
			d.Providers[p].XTR = d.XTRs[p]
		} else {
			d.Providers[p].XTR = d.XTRs[0]
		}
	}

	in.Domains = append(in.Domains, d)
}

// queueFor sizes drop-tail queues to ~50ms of line rate, a common rule of
// thumb; unlimited-rate links get unbounded queues.
func queueFor(rateBps int64) int {
	if rateBps == 0 {
		return 0
	}
	q := int(rateBps / 8 / 20)
	if q < 3000 {
		q = 3000
	}
	return q
}

// AttachCoreStub hangs an extra node directly off the core with its own
// routable /24 (198.51.octet.0/24), the node at .1. Mapping-system
// infrastructure and adversary nodes use it. The node lives on shard 0
// with the core, so attached behaviors stay deterministic at any shard
// count.
func (in *Internet) AttachCoreStub(name string, octet byte, delay time.Duration) (*simnet.Node, netaddr.Addr) {
	n := in.Sim.NewNode(name)
	l := simnet.Connect(n, in.Core, simnet.LinkConfig{Delay: delay})
	addr := netaddr.AddrFrom4(198, 51, octet, 1)
	l.A().SetAddr(addr)
	n.SetDefaultRoute(l.A())
	in.Core.AddRoute(netaddr.PrefixFrom(netaddr.AddrFrom4(198, 51, octet, 0), 24), l.B())
	return n, addr
}

// Domain returns the i-th domain.
func (in *Internet) Domain(i int) *Domain { return in.Domains[i] }

// HostName returns the DNS name of host h in domain d.
func (in *Internet) HostName(d, h int) string { return in.Domains[d].Hosts[h].Name }
