package dnssim

import (
	"time"

	"github.com/pcelisp/pcelisp/internal/netaddr"
	"github.com/pcelisp/pcelisp/internal/simnet"
)

// cacheEntry is one cached positive answer.
type cacheEntry struct {
	addr    netaddr.Addr
	expires simnet.Time
}

// Cache is the resolver's positive answer cache with TTL expiry driven by
// virtual time.
type Cache struct {
	sim     *simnet.Sim
	entries map[string]cacheEntry

	// Hits and Misses count lookups for the experiments.
	Hits, Misses uint64
}

// NewCache returns an empty cache bound to the simulation clock.
func NewCache(sim *simnet.Sim) *Cache {
	return &Cache{sim: sim, entries: make(map[string]cacheEntry)}
}

// Put stores an answer with its TTL in seconds.
func (c *Cache) Put(name string, addr netaddr.Addr, ttl uint32) {
	c.entries[CanonicalName(name)] = cacheEntry{
		addr:    addr,
		expires: c.sim.Now() + simnet.Time(ttl)*simnet.Time(time.Second),
	}
}

// Get returns the cached answer for name if present and fresh, along with
// the remaining TTL in seconds (rounded down, minimum 1 for fresh entries).
func (c *Cache) Get(name string) (netaddr.Addr, uint32, bool) {
	e, ok := c.entries[CanonicalName(name)]
	if !ok || c.sim.Now() >= e.expires {
		if ok {
			delete(c.entries, CanonicalName(name))
		}
		c.Misses++
		return 0, 0, false
	}
	c.Hits++
	ttl := uint32((e.expires - c.sim.Now()) / simnet.Time(time.Second))
	if ttl == 0 {
		ttl = 1
	}
	return e.addr, ttl, true
}

// Len returns the number of entries, counting expired ones not yet
// evicted (eviction is lazy).
func (c *Cache) Len() int { return len(c.entries) }

// Flush drops all entries (used between experiment phases).
func (c *Cache) Flush() {
	c.entries = make(map[string]cacheEntry)
}
