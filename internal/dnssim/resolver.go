package dnssim

import (
	"time"

	"github.com/pcelisp/pcelisp/internal/netaddr"
	"github.com/pcelisp/pcelisp/internal/packet"
	"github.com/pcelisp/pcelisp/internal/simnet"
)

// ResolverStats counts resolver activity.
type ResolverStats struct {
	ClientQueries uint64
	CacheHits     uint64
	Iterations    uint64
	Retries       uint64
	ServFails     uint64
	NXDomains     uint64
	Answered      uint64
}

// Resolver is a caching recursive resolver (the paper's DNSS): it accepts
// client queries and resolves them iteratively from the root, following
// referrals. Like 2008-era resolvers it sources upstream queries from port
// 53, so one UDP binding serves both roles.
type Resolver struct {
	node *simnet.Node
	addr netaddr.Addr
	root netaddr.Addr

	// Cache is the positive answer cache.
	Cache *Cache
	// Timeout is the per-upstream-query timeout.
	Timeout simnet.Time
	// MaxRetries bounds re-sends of one upstream query.
	MaxRetries int
	// MaxSteps bounds referral chain length.
	MaxSteps int

	// OnClientQuery is the paper's step-1 IPC hook: invoked when a client
	// query arrives, before resolution. PCES uses it to learn ES and
	// precompute the ingress RLOC for the reverse mapping.
	OnClientQuery func(client netaddr.Addr, qname string)
	// OnAnswer is invoked when the resolver answers a client, with
	// fromCache reporting whether the answer bypassed iterative
	// resolution. PCES uses it to detect cache-hit answers whose mapping
	// never traversed PCED (the MapFetch fallback, experiment E8).
	OnAnswer func(client netaddr.Addr, qname string, addr netaddr.Addr, fromCache bool)

	inflight map[string]*resolution
	// Stats counts resolver activity for the experiments.
	Stats ResolverStats
}

type waiter struct {
	addr netaddr.Addr
	port uint16
	id   uint16
}

type resolution struct {
	qname   string
	waiters []waiter
	server  netaddr.Addr
	steps   int
	tries   int
	gen     int
	started simnet.Time
}

// NewResolver attaches a recursive resolver to node at addr with the given
// root server hint, binding UDP port 53.
func NewResolver(node *simnet.Node, addr, rootAddr netaddr.Addr) *Resolver {
	r := &Resolver{
		node:       node,
		addr:       addr,
		root:       rootAddr,
		Cache:      NewCache(node.Sim()),
		Timeout:    2 * time.Second,
		MaxRetries: 2,
		MaxSteps:   12,
		inflight:   make(map[string]*resolution),
	}
	node.ListenUDP(packet.PortDNS, r.handle)
	return r
}

// Addr returns the resolver's address.
func (r *Resolver) Addr() netaddr.Addr { return r.addr }

// Node returns the node hosting the resolver.
func (r *Resolver) Node() *simnet.Node { return r.node }

func (r *Resolver) handle(d *simnet.Delivery, udp *packet.UDP) {
	msg := &packet.DNS{}
	if err := msg.DecodeFromBytes(udp.LayerPayload()); err != nil || len(msg.Questions) == 0 {
		return
	}
	src := d.IPv4().SrcIP
	if msg.QR {
		r.handleUpstream(msg)
		return
	}
	r.handleClient(src, udp.SrcPort, msg)
}

func (r *Resolver) handleClient(client netaddr.Addr, port uint16, q *packet.DNS) {
	r.Stats.ClientQueries++
	qname := CanonicalName(q.Questions[0].Name)
	if r.OnClientQuery != nil {
		r.OnClientQuery(client, qname)
	}
	w := waiter{addr: client, port: port, id: q.ID}
	if addr, ttl, ok := r.Cache.Get(qname); ok {
		r.Stats.CacheHits++
		r.answer(w, qname, addr, ttl, true)
		return
	}
	if res, ok := r.inflight[qname]; ok {
		res.waiters = append(res.waiters, w)
		return
	}
	res := &resolution{
		qname:   qname,
		waiters: []waiter{w},
		server:  r.root,
		started: r.node.Sim().Now(),
	}
	r.inflight[qname] = res
	r.sendQuery(res)
}

func (r *Resolver) sendQuery(res *resolution) {
	res.gen++
	r.Stats.Iterations++
	q := packet.QuestionFor(uint16(res.gen)^uint16(res.steps<<8), res.qname, packet.DNSTypeA)
	r.node.SendUDP(r.addr, res.server, packet.PortDNS, packet.PortDNS, q)
	r.node.Sim().ScheduleTimer(r.Timeout, r,
		simnet.TimerArg{P: res, N: int64(res.gen)})
}

// OnTimer implements simnet.TimerHandler: the per-upstream-query timeout.
// TimerArg.P holds the resolution, TimerArg.N the generation the timer
// was armed for; a stale generation means the query was superseded.
func (r *Resolver) OnTimer(arg simnet.TimerArg) {
	res := arg.P.(*resolution)
	cur, ok := r.inflight[res.qname]
	if !ok || cur != res || res.gen != int(arg.N) {
		return // superseded or finished
	}
	res.tries++
	if res.tries > r.MaxRetries {
		r.fail(res, packet.DNSRCodeServFail)
		return
	}
	r.Stats.Retries++
	r.sendQuery(res)
}

func (r *Resolver) handleUpstream(msg *packet.DNS) {
	qname := CanonicalName(msg.Questions[0].Name)
	res, ok := r.inflight[qname]
	if !ok {
		return // stale or duplicate
	}
	if a, found := msg.FirstA(); found {
		ttl := msg.Answers[0].TTL
		r.Cache.Put(qname, a, ttl)
		delete(r.inflight, qname)
		for _, w := range res.waiters {
			r.answer(w, qname, a, ttl, false)
		}
		return
	}
	if msg.RCode == packet.DNSRCodeNXDomain {
		r.Stats.NXDomains++
		r.fail(res, packet.DNSRCodeNXDomain)
		return
	}
	// Referral: follow the glue.
	var next netaddr.Addr
	if len(msg.Authorities) > 0 && msg.Authorities[0].Type == packet.DNSTypeNS {
		ns := msg.Authorities[0].NSName
		for _, add := range msg.Additionals {
			if add.Type == packet.DNSTypeA && CanonicalName(add.Name) == CanonicalName(ns) {
				next = add.IP
				break
			}
		}
	}
	if !next.IsValid() || res.steps >= r.MaxSteps {
		r.fail(res, packet.DNSRCodeServFail)
		return
	}
	res.steps++
	res.tries = 0
	res.server = next
	r.sendQuery(res)
}

func (r *Resolver) fail(res *resolution, code packet.DNSResponseCode) {
	delete(r.inflight, res.qname)
	if code == packet.DNSRCodeServFail {
		r.Stats.ServFails++
	}
	for _, w := range res.waiters {
		resp := &packet.DNS{
			ID: w.id, QR: true, RA: true, RCode: code,
			Questions: []packet.DNSQuestion{{Name: res.qname, Type: packet.DNSTypeA, Class: packet.DNSClassIN}},
		}
		r.node.SendUDP(r.addr, w.addr, packet.PortDNS, w.port, resp)
	}
}

func (r *Resolver) answer(w waiter, qname string, addr netaddr.Addr, ttl uint32, fromCache bool) {
	r.Stats.Answered++
	resp := &packet.DNS{
		ID: w.id, QR: true, RA: true,
		Questions: []packet.DNSQuestion{{Name: qname, Type: packet.DNSTypeA, Class: packet.DNSClassIN}},
		Answers: []packet.DNSResourceRecord{{
			Name: qname, Type: packet.DNSTypeA, Class: packet.DNSClassIN, TTL: ttl, IP: addr,
		}},
	}
	if r.OnAnswer != nil {
		r.OnAnswer(w.addr, qname, addr, fromCache)
	}
	r.node.SendUDP(r.addr, w.addr, packet.PortDNS, w.port, resp)
}

// ClientStats counts stub client activity.
type ClientStats struct {
	Lookups  uint64
	Answers  uint64
	Failures uint64
}

// Client is a stub resolver for end-hosts: fire a query at the local
// resolver, get a callback with the answer.
type Client struct {
	node     *simnet.Node
	addr     netaddr.Addr
	resolver netaddr.Addr
	nextID   uint16
	pending  map[uint16]clientPending
	// Stats counts lookups for the experiments.
	Stats ClientStats
}

type clientPending struct {
	started simnet.Time
	cb      func(netaddr.Addr, simnet.Time, bool)
}

// ClientPort is the source port stub clients use.
const ClientPort = 5353

// NewClient attaches a stub resolver client to node at addr, using the
// given recursive resolver.
func NewClient(node *simnet.Node, addr, resolver netaddr.Addr) *Client {
	c := &Client{node: node, addr: addr, resolver: resolver, pending: make(map[uint16]clientPending)}
	node.ListenUDP(ClientPort, c.handle)
	return c
}

// Lookup resolves name and calls cb with the address, the elapsed
// resolution time (TDNS for this flow) and success. The callback fires at
// most once; a lost reply leaves the lookup pending forever, as real stub
// resolvers' timeouts are out of scope for the claims.
func (c *Client) Lookup(name string, cb func(addr netaddr.Addr, tdns simnet.Time, ok bool)) {
	c.nextID++
	id := c.nextID
	c.Stats.Lookups++
	c.pending[id] = clientPending{started: c.node.Sim().Now(), cb: cb}
	q := packet.QuestionFor(id, name, packet.DNSTypeA)
	q.RD = true
	c.node.SendUDP(c.addr, c.resolver, ClientPort, packet.PortDNS, q)
}

func (c *Client) handle(d *simnet.Delivery, udp *packet.UDP) {
	msg := &packet.DNS{}
	if err := msg.DecodeFromBytes(udp.LayerPayload()); err != nil || !msg.QR {
		return
	}
	p, ok := c.pending[msg.ID]
	if !ok {
		return
	}
	delete(c.pending, msg.ID)
	elapsed := c.node.Sim().Now() - p.started
	if a, found := msg.FirstA(); found && msg.RCode == packet.DNSRCodeNoError {
		c.Stats.Answers++
		p.cb(a, elapsed, true)
		return
	}
	c.Stats.Failures++
	p.cb(0, elapsed, false)
}
