package dnssim

import (
	"testing"
	"time"

	"github.com/pcelisp/pcelisp/internal/netaddr"
	"github.com/pcelisp/pcelisp/internal/packet"
	"github.com/pcelisp/pcelisp/internal/simnet"
)

// dnsWorld is a hub-and-spoke DNS hierarchy for tests:
//
//	client -- resolver(DNSS) -- hub -- root
//	                                 \- tld ("example")
//	                                 \- auth ("dst.example")
type dnsWorld struct {
	sim      *simnet.Sim
	client   *Client
	resolver *Resolver
	root     *Server
	tld      *Server
	auth     *Server
	hostAddr netaddr.Addr
	links    map[string]*simnet.Link
}

func newDNSWorld(t testing.TB, hubDelay time.Duration) *dnsWorld {
	t.Helper()
	s := simnet.New(1)
	hub := s.NewNode("hub")
	w := &dnsWorld{sim: s, links: map[string]*simnet.Link{}}

	mk := func(name string, octet byte, delay time.Duration) (*simnet.Node, netaddr.Addr) {
		n := s.NewNode(name)
		l := simnet.Connect(n, hub, simnet.LinkConfig{Delay: delay})
		addr := netaddr.AddrFrom4(10, octet, 0, 1)
		hubSide := netaddr.AddrFrom4(10, octet, 0, 2)
		l.A().SetAddr(addr)
		l.B().SetAddr(hubSide)
		n.SetDefaultRoute(l.A())
		hub.AddRoute(netaddr.PrefixFrom(netaddr.AddrFrom4(10, octet, 0, 0), 24), l.B())
		w.links[name] = l
		return n, addr
	}

	clientNode, clientAddr := mk("client", 1, time.Millisecond)
	resolverNode, resolverAddr := mk("resolver", 2, time.Millisecond)
	rootNode, rootAddr := mk("root", 3, 20*time.Millisecond)
	tldNode, tldAddr := mk("tld", 4, 25*time.Millisecond)
	authNode, authAddr := mk("auth", 5, 40*time.Millisecond)

	w.root = NewServer(rootNode, rootAddr, ".")
	w.root.Delegate("example", "ns.example", tldAddr, 3600)
	w.tld = NewServer(tldNode, tldAddr, "example")
	w.tld.Delegate("dst.example", "ns.dst.example", authAddr, 3600)
	w.auth = NewServer(authNode, authAddr, "dst.example")
	w.hostAddr = netaddr.MustParseAddr("12.1.0.9")
	w.auth.AddA("ed.dst.example", w.hostAddr, 300)

	w.resolver = NewResolver(resolverNode, resolverAddr, rootAddr)
	w.client = NewClient(clientNode, clientAddr, resolverAddr)
	_ = hubDelay
	return w
}

func TestIterativeResolution(t *testing.T) {
	w := newDNSWorld(t, 0)
	var got netaddr.Addr
	var tdns simnet.Time
	ok := false
	w.client.Lookup("ed.dst.example", func(a netaddr.Addr, d simnet.Time, success bool) {
		got, tdns, ok = a, d, success
	})
	w.sim.Run()
	if !ok || got != w.hostAddr {
		t.Fatalf("lookup = %v ok=%v", got, ok)
	}
	// TDNS = client->resolver (2x2ms) + root (2x21ms) + tld (2x26ms) +
	// auth (2x41ms) = 4 + 42 + 52 + 82 = 180ms.
	want := 180 * time.Millisecond
	if tdns != want {
		t.Fatalf("TDNS = %v, want %v", tdns, want)
	}
	if w.resolver.Stats.Iterations != 3 {
		t.Fatalf("iterations = %d, want 3", w.resolver.Stats.Iterations)
	}
	if w.root.Stats.Referrals != 1 || w.tld.Stats.Referrals != 1 || w.auth.Stats.Answers != 1 {
		t.Fatalf("server stats: root=%+v tld=%+v auth=%+v", w.root.Stats, w.tld.Stats, w.auth.Stats)
	}
}

func TestResolverCacheHit(t *testing.T) {
	w := newDNSWorld(t, 0)
	w.client.Lookup("ed.dst.example", func(netaddr.Addr, simnet.Time, bool) {})
	w.sim.Run()
	var tdns simnet.Time
	w.client.Lookup("ed.dst.example", func(a netaddr.Addr, d simnet.Time, ok bool) { tdns = d })
	w.sim.Run()
	if w.resolver.Stats.CacheHits != 1 {
		t.Fatalf("cache hits = %d", w.resolver.Stats.CacheHits)
	}
	// Cached answer: only the client<->resolver round trip.
	if tdns != 4*time.Millisecond {
		t.Fatalf("cached TDNS = %v", tdns)
	}
	if w.auth.Stats.Queries != 1 {
		t.Fatalf("authoritative queried %d times", w.auth.Stats.Queries)
	}
}

func TestCacheExpiry(t *testing.T) {
	w := newDNSWorld(t, 0)
	w.client.Lookup("ed.dst.example", func(netaddr.Addr, simnet.Time, bool) {})
	w.sim.Run()
	// Advance past the 300s record TTL: the next lookup re-resolves.
	w.sim.RunFor(301 * time.Second)
	w.client.Lookup("ed.dst.example", func(netaddr.Addr, simnet.Time, bool) {})
	w.sim.Run()
	if w.auth.Stats.Queries != 2 {
		t.Fatalf("authoritative queried %d times, want 2 after expiry", w.auth.Stats.Queries)
	}
}

func TestNXDomain(t *testing.T) {
	w := newDNSWorld(t, 0)
	var ok, answered bool
	w.client.Lookup("missing.dst.example", func(a netaddr.Addr, d simnet.Time, success bool) {
		answered, ok = true, success
	})
	w.sim.Run()
	if !answered || ok {
		t.Fatalf("answered=%v ok=%v, want answered, not ok", answered, ok)
	}
	if w.resolver.Stats.NXDomains != 1 {
		t.Fatalf("NXDomains = %d", w.resolver.Stats.NXDomains)
	}
	if w.client.Stats.Failures != 1 {
		t.Fatalf("client failures = %d", w.client.Stats.Failures)
	}
}

func TestQueryCoalescing(t *testing.T) {
	w := newDNSWorld(t, 0)
	answers := 0
	for i := 0; i < 5; i++ {
		w.client.Lookup("ed.dst.example", func(a netaddr.Addr, d simnet.Time, ok bool) {
			if ok {
				answers++
			}
		})
	}
	w.sim.Run()
	if answers != 5 {
		t.Fatalf("answers = %d", answers)
	}
	// All five lookups share one resolution: the authoritative server saw
	// exactly one query.
	if w.auth.Stats.Queries != 1 {
		t.Fatalf("auth queries = %d, want 1 (coalesced)", w.auth.Stats.Queries)
	}
}

func TestRetryOnLoss(t *testing.T) {
	w := newDNSWorld(t, 0)
	// Break the root link completely for the first second, then heal it.
	w.links["root"].SetLoss(1.0)
	ok := false
	w.client.Lookup("ed.dst.example", func(a netaddr.Addr, d simnet.Time, success bool) { ok = success })
	w.sim.RunFor(time.Second)
	w.links["root"].SetLoss(0)
	w.sim.Run()
	if !ok {
		t.Fatal("lookup must succeed after retry")
	}
	if w.resolver.Stats.Retries == 0 {
		t.Fatal("expected at least one retry")
	}
}

func TestServFailAfterRetriesExhausted(t *testing.T) {
	w := newDNSWorld(t, 0)
	w.links["root"].SetLoss(1.0)
	var answered, ok bool
	w.client.Lookup("ed.dst.example", func(a netaddr.Addr, d simnet.Time, success bool) {
		answered, ok = true, success
	})
	w.sim.Run()
	if !answered || ok {
		t.Fatalf("answered=%v ok=%v, want SERVFAIL", answered, ok)
	}
	if w.resolver.Stats.ServFails != 1 {
		t.Fatalf("ServFails = %d", w.resolver.Stats.ServFails)
	}
}

func TestOnClientQueryIPC(t *testing.T) {
	w := newDNSWorld(t, 0)
	var ipcClient netaddr.Addr
	var ipcName string
	ipcAt := simnet.Time(-1)
	w.resolver.OnClientQuery = func(client netaddr.Addr, qname string) {
		ipcClient, ipcName, ipcAt = client, qname, w.sim.Now()
	}
	var answeredAt simnet.Time
	w.client.Lookup("ed.dst.example", func(netaddr.Addr, simnet.Time, bool) { answeredAt = w.sim.Now() })
	w.sim.Run()
	if ipcName != "ed.dst.example" {
		t.Fatalf("IPC qname = %q", ipcName)
	}
	if ipcClient != netaddr.AddrFrom4(10, 1, 0, 1) {
		t.Fatalf("IPC client = %v", ipcClient)
	}
	// The paper's step 1: the PCE learns ES as soon as the query reaches
	// DNSS, long before the answer.
	if ipcAt <= 0 || ipcAt >= answeredAt {
		t.Fatalf("IPC at %v, answer at %v", ipcAt, answeredAt)
	}
}

func TestOnAnswerHookReportsCacheness(t *testing.T) {
	w := newDNSWorld(t, 0)
	var fromCache []bool
	w.resolver.OnAnswer = func(client netaddr.Addr, qname string, addr netaddr.Addr, cached bool) {
		fromCache = append(fromCache, cached)
	}
	w.client.Lookup("ed.dst.example", func(netaddr.Addr, simnet.Time, bool) {})
	w.sim.Run()
	w.client.Lookup("ed.dst.example", func(netaddr.Addr, simnet.Time, bool) {})
	w.sim.Run()
	if len(fromCache) != 2 || fromCache[0] || !fromCache[1] {
		t.Fatalf("fromCache = %v, want [false true]", fromCache)
	}
}

func TestCanonicalName(t *testing.T) {
	cases := map[string]string{
		"WWW.Example.COM.": "www.example.com",
		"a.b":              "a.b",
		".":                "",
	}
	for in, want := range cases {
		if got := CanonicalName(in); got != want {
			t.Errorf("CanonicalName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestNameUnder(t *testing.T) {
	if !nameUnder("a.example", "example") || !nameUnder("example", "example") {
		t.Fatal("subdomain matching broken")
	}
	if nameUnder("badexample", "example") {
		t.Fatal("suffix without dot must not match")
	}
	if !nameUnder("anything.at.all", "") {
		t.Fatal("root zone contains everything")
	}
}

func TestServerRespondDirect(t *testing.T) {
	s := simnet.New(1)
	n := s.NewNode("auth")
	addr := netaddr.MustParseAddr("12.0.0.53")
	n.AddAddr(addr)
	srv := NewServer(n, addr, "dst.example")
	srv.AddA("h.dst.example", netaddr.MustParseAddr("12.1.0.1"), 60)

	resp := srv.Respond(packet.QuestionFor(9, "h.dst.example", packet.DNSTypeA))
	if !resp.AA || len(resp.Answers) != 1 {
		t.Fatalf("direct respond = %+v", resp)
	}
	resp = srv.Respond(packet.QuestionFor(9, "nope.dst.example", packet.DNSTypeA))
	if resp.RCode != packet.DNSRCodeNXDomain || !resp.AA {
		t.Fatalf("NXDOMAIN respond = %+v", resp)
	}
	// Out-of-zone query without delegation: NXDOMAIN without AA.
	resp = srv.Respond(packet.QuestionFor(9, "other.zone", packet.DNSTypeA))
	if resp.RCode != packet.DNSRCodeNXDomain || resp.AA {
		t.Fatalf("out-of-zone respond = %+v", resp)
	}
}

func TestCacheRemainingTTL(t *testing.T) {
	s := simnet.New(1)
	c := NewCache(s)
	c.Put("x.example", netaddr.MustParseAddr("1.2.3.4"), 100)
	s.RunFor(40 * time.Second)
	_, ttl, ok := c.Get("x.example")
	if !ok || ttl != 60 {
		t.Fatalf("remaining TTL = %d ok=%v, want 60", ttl, ok)
	}
	s.RunFor(60 * time.Second)
	if _, _, ok := c.Get("x.example"); ok {
		t.Fatal("expired entry must miss")
	}
	if c.Hits != 1 || c.Misses != 1 {
		t.Fatalf("hits=%d misses=%d", c.Hits, c.Misses)
	}
	c.Put("y", 1, 10)
	c.Flush()
	if c.Len() != 0 {
		t.Fatal("flush must empty the cache")
	}
}

func BenchmarkFullResolution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		w := newDNSWorld(b, 0)
		done := false
		w.client.Lookup("ed.dst.example", func(netaddr.Addr, simnet.Time, bool) { done = true })
		w.sim.Run()
		if !done {
			b.Fatal("lookup did not finish")
		}
	}
}
