// Package dnssim implements the DNS substrate of the reproduction: an
// authoritative server with delegations, a caching recursive resolver that
// performs iterative resolution (root -> TLD -> authoritative), and a stub
// client. All messages use the RFC 1035 wire format from internal/packet
// and travel over simnet links, so DNS resolution time TDNS emerges from
// topology latencies rather than being a configured constant — which is
// what makes the paper's claim (ii), TDNS+Tmap ~= TDNS, measurable.
//
// The resolver exposes the OnClientQuery hook: the paper's step 1, where
// "PCES obtains ES by Inter-Process Communication (IPC) with the DNS".
package dnssim

import (
	"strings"

	"github.com/pcelisp/pcelisp/internal/netaddr"
	"github.com/pcelisp/pcelisp/internal/packet"
	"github.com/pcelisp/pcelisp/internal/simnet"
)

// CanonicalName lowercases and strips the trailing dot, the name form used
// as map keys throughout the package.
func CanonicalName(name string) string {
	return strings.TrimSuffix(strings.ToLower(name), ".")
}

// nameUnder reports whether name equals zone or is a subdomain of it.
// The empty zone is the root and contains everything.
func nameUnder(name, zone string) bool {
	if zone == "" {
		return true
	}
	return name == zone || strings.HasSuffix(name, "."+zone)
}

// delegation is a child-zone referral.
type delegation struct {
	zone   string
	nsName string
	nsAddr netaddr.Addr
	ttl    uint32
}

// ServerStats counts authoritative server activity.
type ServerStats struct {
	Queries   uint64
	Answers   uint64
	Referrals uint64
	NXDomain  uint64
}

// Server is an authoritative DNS server for one zone, optionally holding
// delegations to child zones (root and TLD servers are just Servers whose
// answers are referrals).
type Server struct {
	node *simnet.Node
	addr netaddr.Addr
	zone string
	as   map[string][]packet.DNSResourceRecord
	dels []delegation

	// Stats counts server activity for the experiments.
	Stats ServerStats
}

// NewServer attaches an authoritative server for zone to node at addr,
// binding UDP port 53.
func NewServer(node *simnet.Node, addr netaddr.Addr, zone string) *Server {
	s := &Server{
		node: node,
		addr: addr,
		zone: CanonicalName(zone),
		as:   make(map[string][]packet.DNSResourceRecord),
	}
	node.ListenUDP(packet.PortDNS, s.handle)
	return s
}

// Addr returns the server's address.
func (s *Server) Addr() netaddr.Addr { return s.addr }

// Zone returns the served zone origin ("" for the root).
func (s *Server) Zone() string { return s.zone }

// AddA publishes an A record.
func (s *Server) AddA(name string, ip netaddr.Addr, ttl uint32) {
	n := CanonicalName(name)
	s.as[n] = append(s.as[n], packet.DNSResourceRecord{
		Name: n, Type: packet.DNSTypeA, Class: packet.DNSClassIN, TTL: ttl, IP: ip,
	})
}

// Delegate publishes a child-zone NS referral with glue.
func (s *Server) Delegate(childZone, nsName string, nsAddr netaddr.Addr, ttl uint32) {
	s.dels = append(s.dels, delegation{
		zone: CanonicalName(childZone), nsName: CanonicalName(nsName), nsAddr: nsAddr, ttl: ttl,
	})
}

func (s *Server) handle(d *simnet.Delivery, udp *packet.UDP) {
	q := &packet.DNS{}
	if err := q.DecodeFromBytes(udp.LayerPayload()); err != nil || q.QR || len(q.Questions) == 0 {
		return
	}
	s.Stats.Queries++
	resp := s.Respond(q)
	ip := d.IPv4()
	s.node.SendUDP(s.addr, ip.SrcIP, packet.PortDNS, udp.SrcPort, resp)
}

// Respond builds the authoritative response for query q. Exposed so tests
// and the PCE fallback path can ask "what would the server say" without a
// round trip.
func (s *Server) Respond(q *packet.DNS) *packet.DNS {
	resp := &packet.DNS{
		ID: q.ID, QR: true, OpCode: q.OpCode, RD: q.RD,
		Questions: q.Questions,
	}
	name := CanonicalName(q.Questions[0].Name)
	if q.Questions[0].Type == packet.DNSTypeA {
		if rrs, ok := s.as[name]; ok {
			resp.AA = true
			resp.Answers = rrs
			s.Stats.Answers++
			return resp
		}
	}
	// Longest delegation whose zone contains the name.
	best := -1
	for i, del := range s.dels {
		if nameUnder(name, del.zone) && (best < 0 || len(del.zone) > len(s.dels[best].zone)) {
			best = i
		}
	}
	if best >= 0 {
		del := s.dels[best]
		resp.Authorities = []packet.DNSResourceRecord{{
			Name: del.zone, Type: packet.DNSTypeNS, Class: packet.DNSClassIN, TTL: del.ttl, NSName: del.nsName,
		}}
		resp.Additionals = []packet.DNSResourceRecord{{
			Name: del.nsName, Type: packet.DNSTypeA, Class: packet.DNSClassIN, TTL: del.ttl, IP: del.nsAddr,
		}}
		s.Stats.Referrals++
		return resp
	}
	if nameUnder(name, s.zone) {
		resp.AA = true
	}
	resp.RCode = packet.DNSRCodeNXDomain
	s.Stats.NXDomain++
	return resp
}
