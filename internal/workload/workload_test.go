package workload

import (
	"math/rand"
	"testing"
	"time"

	"github.com/pcelisp/pcelisp/internal/netaddr"
	"github.com/pcelisp/pcelisp/internal/packet"
	"github.com/pcelisp/pcelisp/internal/simnet"
)

// tcpWorld is two hosts over one 25ms link.
func tcpWorld(t testing.TB, loss float64) (*simnet.Sim, *TCPHost, *TCPHost, *simnet.Link) {
	t.Helper()
	s := simnet.New(1)
	a := s.NewNode("a")
	b := s.NewNode("b")
	l := simnet.Connect(a, b, simnet.LinkConfig{Delay: 25 * time.Millisecond, Loss: loss})
	l.A().SetAddr(netaddr.MustParseAddr("10.0.0.1"))
	l.B().SetAddr(netaddr.MustParseAddr("10.0.0.2"))
	a.SetDefaultRoute(l.A())
	b.SetDefaultRoute(l.B())
	return s, NewTCPHost(a, netaddr.MustParseAddr("10.0.0.1")), NewTCPHost(b, netaddr.MustParseAddr("10.0.0.2")), l
}

func TestTCPHandshake(t *testing.T) {
	s, client, server, _ := tcpWorld(t, 0)
	server.Listen(80)
	var res ConnResult
	client.Connect(server.Addr(), 80, func(r ConnResult) { res = r })
	s.Run()
	if !res.OK {
		t.Fatal("handshake failed")
	}
	// SYN out (25ms) + SYN-ACK back (25ms) = 50ms at the client.
	if res.Elapsed != 50*time.Millisecond {
		t.Fatalf("handshake = %v, want 50ms", res.Elapsed)
	}
	if res.Retransmits != 0 {
		t.Fatalf("retransmits = %d", res.Retransmits)
	}
	if client.Stats.Established != 1 || server.Stats.SynAckSent != 1 {
		t.Fatalf("stats: client=%+v server=%+v", client.Stats, server.Stats)
	}
}

func TestTCPSynRetransmissionAfterLoss(t *testing.T) {
	s, client, server, link := tcpWorld(t, 0)
	server.Listen(80)
	// Break the link for the first 100ms: the first SYN dies; the
	// RFC 6298 1s RTO dominates the handshake time.
	link.SetLoss(1.0)
	var res ConnResult
	client.Connect(server.Addr(), 80, func(r ConnResult) { res = r })
	s.RunFor(100 * time.Millisecond)
	link.SetLoss(0)
	s.Run()
	if !res.OK || res.Retransmits != 1 {
		t.Fatalf("res = %+v", res)
	}
	if res.Elapsed != 1050*time.Millisecond {
		t.Fatalf("handshake with one lost SYN = %v, want 1.05s", res.Elapsed)
	}
	if client.Stats.SynRetransmits != 1 {
		t.Fatalf("retransmit counter = %d", client.Stats.SynRetransmits)
	}
}

func TestTCPExponentialBackoffAndAbort(t *testing.T) {
	s, client, server, link := tcpWorld(t, 0)
	client.MaxSynRetries = 3
	server.Listen(80)
	link.SetLoss(1.0) // never heal
	var res ConnResult
	gotAt := simnet.Time(0)
	client.Connect(server.Addr(), 80, func(r ConnResult) { res = r; gotAt = s.Now() })
	s.RunFor(60 * time.Second)
	if res.OK {
		t.Fatal("connect through dead link must fail")
	}
	if res.Retransmits != 3 {
		t.Fatalf("retransmits = %d", res.Retransmits)
	}
	// RTOs: 1s + 2s + 4s + 8s = 15s until abort.
	if gotAt != 15*time.Second {
		t.Fatalf("aborted at %v, want 15s", gotAt)
	}
	if client.Stats.Aborted != 1 {
		t.Fatalf("aborted counter = %d", client.Stats.Aborted)
	}
}

func TestTCPNoListener(t *testing.T) {
	s, client, server, _ := tcpWorld(t, 0)
	client.MaxSynRetries = 1
	var res ConnResult
	client.Connect(server.Addr(), 81, func(r ConnResult) { res = r })
	s.RunFor(30 * time.Second)
	if res.OK {
		t.Fatal("connect to closed port must fail")
	}
	_ = server
}

func TestTCPDataSegments(t *testing.T) {
	s, client, server, _ := tcpWorld(t, 0)
	server.Listen(80)
	established := false
	client.Connect(server.Addr(), 80, func(r ConnResult) {
		established = r.OK
		client.SendData(server.Addr(), 32769, 80, 10, 512)
	})
	s.Run()
	if !established {
		t.Fatal("handshake failed")
	}
	if server.Stats.DataReceived != 10 {
		t.Fatalf("data received = %d", server.Stats.DataReceived)
	}
}

func TestPump(t *testing.T) {
	s := simnet.New(1)
	a := s.NewNode("a")
	b := s.NewNode("b")
	l := simnet.Connect(a, b, simnet.LinkConfig{Delay: time.Millisecond})
	l.A().SetAddr(netaddr.MustParseAddr("10.0.0.1"))
	l.B().SetAddr(netaddr.MustParseAddr("10.0.0.2"))
	a.SetDefaultRoute(l.A())
	got := 0
	b.ListenUDP(9, func(*simnet.Delivery, *packet.UDP) { got++ })
	// 800kbps at 1000-byte packets = 100 packets/second.
	p := NewPump(a, netaddr.MustParseAddr("10.0.0.1"), netaddr.MustParseAddr("10.0.0.2"), 9, 800_000, 1000)
	p.Start()
	s.RunUntil(2 * time.Second)
	p.Stop()
	s.RunUntil(3 * time.Second)
	if p.Sent < 198 || p.Sent > 202 {
		t.Fatalf("pump sent %d packets in 2s, want ~200", p.Sent)
	}
	if uint64(got) != p.Sent {
		t.Fatalf("delivered %d of %d", got, p.Sent)
	}
	// Stopped pumps stay stopped.
	sent := p.Sent
	s.RunUntil(4 * time.Second)
	if p.Sent != sent {
		t.Fatal("pump kept sending after Stop")
	}
}

func TestPoissonMeanRate(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := NewPoisson(rng, 50)
	var total simnet.Time
	const n = 20000
	for i := 0; i < n; i++ {
		total += p.Next()
	}
	mean := total / n
	want := 20 * time.Millisecond
	if mean < want*8/10 || mean > want*12/10 {
		t.Fatalf("mean inter-arrival = %v, want ~%v", mean, want)
	}
}

func TestZipfSkewAndUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	z := NewZipf(rng, 100, 1.3)
	counts := make([]int, 100)
	for i := 0; i < 20000; i++ {
		idx := z.Next()
		if idx < 0 || idx >= 100 {
			t.Fatalf("index %d out of range", idx)
		}
		counts[idx]++
	}
	if counts[0] <= counts[50]*5 {
		t.Fatalf("Zipf head not dominant: head=%d mid=%d", counts[0], counts[50])
	}
	// Skew <= 1 degenerates to uniform.
	u := NewZipf(rng, 10, 0)
	uc := make([]int, 10)
	for i := 0; i < 10000; i++ {
		uc[u.Next()]++
	}
	for i, c := range uc {
		if c < 700 || c > 1300 {
			t.Fatalf("uniform bucket %d = %d", i, c)
		}
	}
}

func TestParetoTail(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := NewPareto(rng, 1.2, 3, 10000)
	saw := map[bool]int{}
	for i := 0; i < 10000; i++ {
		v := p.Next()
		if v < 3 || v > 10000 {
			t.Fatalf("sample %d outside bounds", v)
		}
		saw[v > 30]++
	}
	// Heavy tail: a visible fraction of samples is an order of magnitude
	// above the minimum.
	if saw[true] < 200 {
		t.Fatalf("tail samples = %d, distribution not heavy-tailed", saw[true])
	}
}

func TestGeneratorValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for name, fn := range map[string]func(){
		"poisson": func() { NewPoisson(rng, 0) },
		"zipf":    func() { NewZipf(rng, 0, 1.2) },
		"pareto":  func() { NewPareto(rng, 0, 1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: bad parameters must panic", name)
				}
			}()
			fn()
		}()
	}
}
