// Package workload generates the traffic the experiments measure: a
// minimal but faithful TCP connection model (SYN / SYN-ACK / ACK with RFC
// 6298 initial-RTO retransmission — the mechanism that makes LISP's
// dropped first packets so expensive), constant-rate UDP pumps for the TE
// experiments, and the classic generator distributions (Poisson arrivals,
// Zipf destination popularity, Pareto flow sizes).
package workload

import (
	"fmt"
	"time"

	"github.com/pcelisp/pcelisp/internal/netaddr"
	"github.com/pcelisp/pcelisp/internal/packet"
	"github.com/pcelisp/pcelisp/internal/simnet"
)

// DefaultInitialRTO is the RFC 6298 initial retransmission timeout.
const DefaultInitialRTO = time.Second

// connKey identifies a TCP connection endpoint-pair at one host.
type connKey struct {
	peer          netaddr.Addr
	local, remote uint16
}

// TCPHostStats counts per-host TCP activity.
type TCPHostStats struct {
	SynSent        uint64
	SynRetransmits uint64
	SynAckSent     uint64
	Established    uint64
	Aborted        uint64
	DataSegments   uint64
	DataReceived   uint64
}

// TCPHost attaches a minimal TCP endpoint to a simulated host: it can
// listen (answer SYNs with SYN-ACKs and count data) and connect (send
// SYNs with exponential-backoff retransmission until established).
type TCPHost struct {
	node *simnet.Node
	addr netaddr.Addr

	// InitialRTO is the first SYN retransmission timeout (default 1s).
	InitialRTO simnet.Time
	// MaxSynRetries bounds retransmissions before giving up (default 5).
	MaxSynRetries int

	listeners map[uint16]bool
	conns     map[connKey]*tcpConn
	nextPort  uint16

	// Serialization scratch reused across segments: the Sim is single-
	// threaded and packet.Serialize copies everything into its output
	// buffer, so rebuilding headers in place avoids per-segment
	// allocations on the data hot path.
	synScratch packet.TCP
	segScratch packet.TCP
	ipScratch  packet.IPv4
	payScratch packet.Payload
	layScratch [3]packet.SerializableLayer
	payload    []byte // zero-filled data payload, grown on demand

	// Stats counts activity.
	Stats TCPHostStats
}

// tcpConn is the client-side connection state.
type tcpConn struct {
	key         connKey
	established bool
	retries     int
	gen         int
	started     simnet.Time
	synSentAt   simnet.Time
	onOpen      func(ConnResult)
}

// ConnResult reports a finished connection attempt.
type ConnResult struct {
	// OK is true when the handshake completed.
	OK bool
	// Elapsed is the time from Connect to established (client side).
	Elapsed simnet.Time
	// Retransmits counts SYN retransmissions.
	Retransmits int
}

// NewTCPHost attaches TCP behaviour to a host node.
func NewTCPHost(node *simnet.Node, addr netaddr.Addr) *TCPHost {
	h := &TCPHost{
		node:          node,
		addr:          addr,
		InitialRTO:    DefaultInitialRTO,
		MaxSynRetries: 5,
		listeners:     make(map[uint16]bool),
		conns:         make(map[connKey]*tcpConn),
		nextPort:      32768,
	}
	node.SetLocalHandler(h.handle)
	return h
}

// Addr returns the host's address.
func (h *TCPHost) Addr() netaddr.Addr { return h.addr }

// Listen accepts connections on a port.
func (h *TCPHost) Listen(port uint16) { h.listeners[port] = true }

// Connect starts a TCP handshake to addr:port and calls onOpen exactly
// once with the outcome.
func (h *TCPHost) Connect(addr netaddr.Addr, port uint16, onOpen func(ConnResult)) {
	h.nextPort++
	key := connKey{peer: addr, local: h.nextPort, remote: port}
	c := &tcpConn{key: key, started: h.node.Sim().Now(), onOpen: onOpen}
	h.conns[key] = c
	h.sendSyn(c)
}

func (h *TCPHost) sendSyn(c *tcpConn) {
	c.gen++
	c.synSentAt = h.node.Sim().Now()
	h.Stats.SynSent++
	h.synScratch = packet.TCP{SYN: true, Seq: 1}
	h.sendSegment(c.key.peer, c.key.local, c.key.remote, &h.synScratch, nil)
	rto := h.InitialRTO << uint(c.retries) // exponential backoff
	h.node.Sim().ScheduleTimer(rto, h, simnet.TimerArg{P: c, N: int64(c.gen)})
}

// OnTimer implements simnet.TimerHandler: the SYN retransmission timeout.
// TimerArg.P holds the connection, TimerArg.N the generation the timer
// was armed for; a stale generation means the SYN was already superseded.
func (h *TCPHost) OnTimer(arg simnet.TimerArg) {
	c := arg.P.(*tcpConn)
	cur, ok := h.conns[c.key]
	if !ok || cur != c || c.established || c.gen != int(arg.N) {
		return
	}
	c.retries++
	if c.retries > h.MaxSynRetries {
		delete(h.conns, c.key)
		h.Stats.Aborted++
		c.onOpen(ConnResult{OK: false, Elapsed: h.node.Sim().Now() - c.started, Retransmits: c.retries - 1})
		return
	}
	h.Stats.SynRetransmits++
	h.sendSyn(c)
}

// SendData transmits n data segments of segSize bytes on an established
// connection path (fire-and-forget; the receiver counts them).
func (h *TCPHost) SendData(peer netaddr.Addr, localPort, remotePort uint16, n, segSize int) {
	if cap(h.payload) < segSize {
		h.payload = make([]byte, segSize)
	}
	payload := h.payload[:segSize]
	for i := 0; i < n; i++ {
		h.Stats.DataSegments++
		h.segScratch = packet.TCP{ACK: true, PSH: true, Seq: uint32(2 + i)}
		h.sendSegment(peer, localPort, remotePort, &h.segScratch, payload)
	}
}

func (h *TCPHost) sendSegment(dst netaddr.Addr, sport, dport uint16, seg *packet.TCP, payload []byte) {
	h.ipScratch = packet.IPv4{TTL: packet.DefaultTTL, Protocol: packet.IPProtocolTCP, SrcIP: h.addr, DstIP: dst}
	seg.SrcPort, seg.DstPort = sport, dport
	seg.Window = 65535
	seg.SetNetworkLayerForChecksum(&h.ipScratch)
	layers := h.layScratch[:2]
	layers[0], layers[1] = &h.ipScratch, seg
	if len(payload) > 0 {
		h.payScratch = packet.Payload(payload)
		layers = h.layScratch[:3]
		layers[2] = &h.payScratch
	}
	h.node.Send(packet.Serialize(layers...))
}

func (h *TCPHost) handle(d *simnet.Delivery) bool {
	// Established-flow fast path: a data segment (ACK set, SYN clear,
	// payload present) only needs counting, so peek the wire bytes and
	// skip layer decoding. Handshake segments and anything the peek
	// cannot validate fall through to the full decoder below, which
	// behaves exactly as before.
	if flags, payloadLen, ok := packet.PeekTCPSegment(d.Data); ok {
		if flags&0x02 == 0 && flags&0x10 != 0 && payloadLen > 0 {
			h.Stats.DataReceived++
			return true
		}
	}
	l := d.Packet().Layer(packet.LayerTypeTCP)
	if l == nil {
		return false
	}
	seg := l.(*packet.TCP)
	src := d.IPv4().SrcIP
	switch {
	case seg.SYN && !seg.ACK:
		if !h.listeners[seg.DstPort] {
			return true // silently ignore; RSTs add nothing to the claims
		}
		h.Stats.SynAckSent++
		h.segScratch = packet.TCP{SYN: true, ACK: true, Seq: 1, Ack: seg.Seq + 1}
		h.sendSegment(src, seg.DstPort, seg.SrcPort, &h.segScratch, nil)
	case seg.SYN && seg.ACK:
		key := connKey{peer: src, local: seg.DstPort, remote: seg.SrcPort}
		c, ok := h.conns[key]
		if !ok || c.established {
			return true
		}
		c.established = true
		h.Stats.Established++
		h.segScratch = packet.TCP{ACK: true, Seq: 2, Ack: seg.Seq + 1}
		h.sendSegment(src, seg.DstPort, seg.SrcPort, &h.segScratch, nil)
		c.onOpen(ConnResult{
			OK:          true,
			Elapsed:     h.node.Sim().Now() - c.started,
			Retransmits: c.retries,
		})
	case seg.ACK && len(seg.LayerPayload()) > 0:
		h.Stats.DataReceived++
	}
	return true
}

// Pump sends UDP datagrams from a node at a constant bit rate toward a
// destination — the elephant-flow generator for the TE experiments.
type Pump struct {
	node    *simnet.Node
	src     netaddr.Addr
	dst     netaddr.Addr
	dport   uint16
	payload []byte
	period  simnet.Time
	stopped bool

	// Sent counts datagrams.
	Sent uint64
}

// NewPump builds a pump sending rateBps toward dst:dport in packets of
// pktBytes (default 1000).
func NewPump(node *simnet.Node, src, dst netaddr.Addr, dport uint16, rateBps int64, pktBytes int) *Pump {
	if pktBytes <= 0 {
		pktBytes = 1000
	}
	if rateBps <= 0 {
		panic(fmt.Sprintf("workload: pump rate %d", rateBps))
	}
	period := simnet.Time(float64(pktBytes*8) / float64(rateBps) * float64(time.Second))
	if period <= 0 {
		period = time.Microsecond
	}
	return &Pump{
		node: node, src: src, dst: dst, dport: dport,
		payload: make([]byte, pktBytes), period: period,
	}
}

// Start begins pumping until Stop (keeps the event queue alive).
func (p *Pump) Start() {
	p.stopped = false
	p.tick()
}

func (p *Pump) tick() {
	if p.stopped {
		return
	}
	p.Sent++
	p.node.SendUDP(p.src, p.dst, 40000, p.dport, packet.Payload(p.payload))
	p.node.Sim().ScheduleTimer(p.period, p, simnet.TimerArg{})
}

// OnTimer implements simnet.TimerHandler: the generator tick.
func (p *Pump) OnTimer(simnet.TimerArg) { p.tick() }

// Stop halts the pump at the next tick.
func (p *Pump) Stop() { p.stopped = true }
