package workload

import (
	"math"
	"math/rand"
	"time"

	"github.com/pcelisp/pcelisp/internal/simnet"
)

// Poisson yields exponentially distributed inter-arrival times for a
// given mean rate (flows per second).
type Poisson struct {
	rng  *rand.Rand
	rate float64
}

// NewPoisson builds a Poisson arrival process.
func NewPoisson(rng *rand.Rand, flowsPerSecond float64) *Poisson {
	if flowsPerSecond <= 0 {
		panic("workload: non-positive arrival rate")
	}
	return &Poisson{rng: rng, rate: flowsPerSecond}
}

// Next returns the time until the next arrival.
func (p *Poisson) Next() simnet.Time {
	return simnet.Time(p.rng.ExpFloat64() / p.rate * float64(time.Second))
}

// Zipf yields destination indexes with Zipfian popularity: index 0 is the
// most popular. A skew of 0 degenerates to uniform.
type Zipf struct {
	rng  *rand.Rand
	zipf *rand.Zipf
	n    int
}

// NewZipf builds a sampler over [0, n) with the given skew (s > 1 in the
// rand.Zipf parameterization; 1.2 is a webby default).
func NewZipf(rng *rand.Rand, n int, skew float64) *Zipf {
	if n <= 0 {
		panic("workload: empty Zipf domain")
	}
	z := &Zipf{rng: rng, n: n}
	if skew > 1 {
		z.zipf = rand.NewZipf(rng, skew, 1, uint64(n-1))
	}
	return z
}

// Next samples an index.
func (z *Zipf) Next() int {
	if z.zipf == nil {
		return z.rng.Intn(z.n)
	}
	return int(z.zipf.Uint64())
}

// Pareto yields heavy-tailed flow sizes (in segments) with shape alpha
// and minimum xm.
type Pareto struct {
	rng   *rand.Rand
	alpha float64
	xm    float64
	max   int
}

// NewPareto builds a sampler; max bounds the tail (0 = unbounded).
func NewPareto(rng *rand.Rand, alpha, xm float64, max int) *Pareto {
	if alpha <= 0 || xm <= 0 {
		panic("workload: bad Pareto parameters")
	}
	return &Pareto{rng: rng, alpha: alpha, xm: xm, max: max}
}

// Next samples a size.
func (p *Pareto) Next() int {
	u := p.rng.Float64()
	for u == 0 {
		u = p.rng.Float64()
	}
	v := int(p.xm / math.Pow(u, 1/p.alpha))
	if v < int(p.xm) {
		v = int(p.xm)
	}
	if p.max > 0 && v > p.max {
		v = p.max
	}
	return v
}
