// Package runner executes independent units of experiment work — cells —
// across a pool of worker goroutines and returns their results in
// canonical order.
//
// Parallelism here is safe by construction: every cell builds and owns its
// own simnet.Sim, so cells share no mutable state. The only coordination
// is the typed Result channel the workers feed; the collector scatters
// results back into input order, which is what keeps parallel output
// byte-identical to a serial run of the same cells.
package runner

import (
	"runtime"
	"sync"
	"time"
)

// Worker-count sentinels for Run.
const (
	// Auto sizes the pool to GOMAXPROCS.
	Auto = 0
	// Serial runs every cell on the calling goroutine, in order.
	Serial = 1
)

// Cell is one independently runnable unit of work.
type Cell struct {
	// Experiment and Label identify the cell for diagnostics ("E5",
	// "CONS"). Neither affects execution.
	Experiment string
	Label      string
	// Run executes the cell and returns its partial result.
	Run func() interface{}
}

// Result pairs a cell's canonical index with what its Run returned.
type Result struct {
	// Index is the cell's position in the input slice.
	Index int
	// Value is Run's return value (nil if the cell panicked).
	Value interface{}
	// Elapsed is the cell's wall-clock execution time.
	Elapsed time.Duration
	// Panic holds a value recovered from the cell, or nil. Run re-raises
	// the first panic (in canonical order) after all cells finish, so
	// callers normally never see this field set.
	Panic interface{}
}

// Run executes cells on `workers` goroutines and returns the results
// indexed exactly as the cells were given, regardless of completion
// order. workers <= 0 (Auto) uses GOMAXPROCS; Serial (1) runs inline on
// the calling goroutine. If any cell panics, Run re-panics with the first
// panicking cell's value once every cell has finished.
func Run(cells []Cell, workers int) []Result {
	out := make([]Result, len(cells))
	if len(cells) == 0 {
		return out
	}
	if workers <= Auto {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cells) {
		workers = len(cells)
	}

	if workers == Serial {
		for i := range cells {
			out[i] = runCell(i, cells[i])
		}
	} else {
		indexes := make(chan int)
		results := make(chan Result, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range indexes {
					results <- runCell(i, cells[i])
				}
			}()
		}
		go func() {
			for i := range cells {
				indexes <- i
			}
			close(indexes)
			wg.Wait()
			close(results)
		}()
		for r := range results {
			out[r.Index] = r
		}
	}

	for _, r := range out {
		if r.Panic != nil {
			panic(r.Panic)
		}
	}
	return out
}

// Values projects results onto the plain cell return values, preserving
// canonical order.
func Values(results []Result) []interface{} {
	vals := make([]interface{}, len(results))
	for i, r := range results {
		vals[i] = r.Value
	}
	return vals
}

// runCell executes one cell, converting a panic into a Result field so a
// crashing cell cannot take down sibling workers mid-flight.
func runCell(i int, c Cell) (r Result) {
	r.Index = i
	start := time.Now()
	defer func() {
		r.Elapsed = time.Since(start)
		if p := recover(); p != nil {
			r.Panic = p
		}
	}()
	r.Value = c.Run()
	return r
}
