package runner

import (
	"fmt"
	"sync/atomic"
	"testing"
)

func squareCells(n int) []Cell {
	cells := make([]Cell, n)
	for i := 0; i < n; i++ {
		i := i
		cells[i] = Cell{Label: fmt.Sprint(i), Run: func() interface{} { return i * i }}
	}
	return cells
}

// TestCanonicalOrder verifies results come back in input order for every
// pool size, including pools larger than the cell count.
func TestCanonicalOrder(t *testing.T) {
	for _, workers := range []int{Auto, Serial, 2, 3, 64} {
		results := Run(squareCells(17), workers)
		if len(results) != 17 {
			t.Fatalf("workers=%d: %d results", workers, len(results))
		}
		for i, r := range results {
			if r.Index != i || r.Value.(int) != i*i {
				t.Errorf("workers=%d: result %d = %+v", workers, i, r)
			}
		}
	}
}

// TestSerialMatchesParallel is the engine's core guarantee: a parallel
// run's projected values equal the serial run's.
func TestSerialMatchesParallel(t *testing.T) {
	serial := Values(Run(squareCells(31), Serial))
	parallel := Values(Run(squareCells(31), Auto))
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("cell %d: serial %v != parallel %v", i, serial[i], parallel[i])
		}
	}
}

// TestAllCellsRun checks every cell executes exactly once under
// contention.
func TestAllCellsRun(t *testing.T) {
	var ran int64
	cells := make([]Cell, 100)
	for i := range cells {
		cells[i] = Cell{Run: func() interface{} { return atomic.AddInt64(&ran, 1) }}
	}
	Run(cells, 8)
	if ran != 100 {
		t.Fatalf("ran %d cells, want 100", ran)
	}
}

// TestEmpty runs the degenerate empty input.
func TestEmpty(t *testing.T) {
	if got := Run(nil, Auto); len(got) != 0 {
		t.Fatalf("Run(nil) = %v", got)
	}
}

// TestPanicPropagates verifies a panicking cell surfaces after all cells
// complete, and does not kill sibling cells.
func TestPanicPropagates(t *testing.T) {
	for _, workers := range []int{Serial, 4} {
		var survivors int64
		cells := []Cell{
			{Run: func() interface{} { atomic.AddInt64(&survivors, 1); return nil }},
			{Run: func() interface{} { panic("cell exploded") }},
			{Run: func() interface{} { atomic.AddInt64(&survivors, 1); return nil }},
		}
		func() {
			defer func() {
				if p := recover(); p != "cell exploded" {
					t.Errorf("workers=%d: recovered %v", workers, p)
				}
			}()
			Run(cells, workers)
			t.Errorf("workers=%d: Run did not panic", workers)
		}()
		if survivors != 2 {
			t.Errorf("workers=%d: %d surviving cells ran, want 2", workers, survivors)
		}
	}
}
