package runner

import (
	"runtime"
	"sync"
)

// Pool is a persistent set of worker goroutines for small, frequent
// fan-outs — the per-epoch shard dispatch of a sharded simulation. Unlike
// Run (which spins a fresh pool per call, fine for long-lived cells), a
// Pool amortizes goroutine startup across the thousands of lock-step
// epochs a single simulated world executes.
//
// Jobs submitted through Do never block on other jobs, so multiple
// callers (cells running in parallel, each dispatching its own shards)
// can share one Pool without deadlock: the work simply queues.
type Pool struct {
	jobs chan poolJob
}

type poolJob struct {
	fn   func()
	done *poolBatch
}

// poolBatch tracks one Do call: outstanding jobs plus the first panic.
type poolBatch struct {
	wg    sync.WaitGroup
	mu    sync.Mutex
	panic interface{}
}

// NewPool starts a pool of n worker goroutines (n <= 0 means
// GOMAXPROCS). The workers live until Close; pools meant to outlive a
// single world should be shared (see Shards).
func NewPool(n int) *Pool {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	p := &Pool{jobs: make(chan poolJob)}
	for i := 0; i < n; i++ {
		go func() {
			for j := range p.jobs {
				runPoolJob(j)
			}
		}()
	}
	return p
}

// runPoolJob executes one job, capturing a panic into the batch so a
// crashing shard cannot kill a shared worker; Do re-raises it on the
// submitting goroutine.
func runPoolJob(j poolJob) {
	defer func() {
		if r := recover(); r != nil {
			j.done.mu.Lock()
			if j.done.panic == nil {
				j.done.panic = r
			}
			j.done.mu.Unlock()
		}
		j.done.wg.Done()
	}()
	j.fn()
}

// Do runs every fn on the pool and waits for all of them. If any fn
// panicked, Do re-panics with the first recovered value after the whole
// batch has finished.
func (p *Pool) Do(fns []func()) {
	b := &poolBatch{}
	b.wg.Add(len(fns))
	for _, fn := range fns {
		p.jobs <- poolJob{fn: fn, done: b}
	}
	b.wg.Wait()
	if b.panic != nil {
		panic(b.panic)
	}
}

// Close terminates the pool's workers once queued jobs drain.
func (p *Pool) Close() { close(p.jobs) }

var (
	shardPoolOnce sync.Once
	shardPool     *Pool
)

// Shards returns the process-wide pool used to dispatch simulation
// shards. It is sized to GOMAXPROCS and never closed: worlds come and go
// per experiment cell, and a per-world pool would leak its goroutines
// (nothing closes a world). Cell-level parallelism composes with it —
// shard jobs never submit further shard jobs, so sharing cannot
// deadlock, it only queues.
func Shards() *Pool {
	shardPoolOnce.Do(func() { shardPool = NewPool(0) })
	return shardPool
}
