package mapsys

import (
	"github.com/pcelisp/pcelisp/internal/lisp"
	"github.com/pcelisp/pcelisp/internal/netaddr"
	"github.com/pcelisp/pcelisp/internal/packet"
	"github.com/pcelisp/pcelisp/internal/simnet"
)

// ALT implements the LISP Alternative Topology (draft-ietf-lisp-alt): an
// overlay of routers interconnected by tunnels, carrying EID-prefix
// reachability in a BGP-like hierarchy. Map-Requests are routed hop-by-hop
// across the overlay toward the ETR owning the queried prefix; the ETR
// answers with a Map-Reply sent *natively* (not over the overlay) straight
// to the requesting ITR.
//
// T_map under ALT is therefore (hops-to-ETR x overlay hop delay) + the
// native return path — typically several times an Internet RTT, which is
// exactly the latency the paper's control plane hides inside TDNS.
type ALT struct {
	tree       *overlayTree
	siteAgents []*ControlAgent

	// ReplySignKey, when non-nil, signs the overlay's negative replies
	// (positive replies come from the ETRs, signed with the site key).
	ReplySignKey []byte

	// Stats counts overlay activity.
	Stats ALTStats
}

// ALTStats counts overlay activity.
type ALTStats struct {
	// RequestsForwarded counts request hops across the overlay.
	RequestsForwarded uint64
	// RootMisses counts requests that died at the root (negative reply).
	RootMisses uint64
}

// BuildALT constructs the ALT overlay inside sim.
func BuildALT(sim *simnet.Sim, cfg OverlayConfig) *ALT {
	t := buildOverlayTree(sim, "alt", cfg)
	a := &ALT{tree: t}
	for _, r := range t.routers {
		r.agent = NewControlAgent(r.node, r.addr)
		router := r
		r.agent.OnMapRegister = router.onAnnounce
		r.agent.OnMapRequest = func(src netaddr.Addr, m *packet.LISPMapRequest) {
			a.routeRequest(router, m)
		}
	}
	return a
}

// routeRequest forwards a Map-Request one overlay hop, or answers
// negatively at the root.
func (a *ALT) routeRequest(r *overlayRouter, m *packet.LISPMapRequest) {
	if len(m.EIDPrefixes) == 0 || len(m.ITRRLOCs) == 0 {
		return
	}
	eid := m.EIDPrefixes[0].Addr()
	next, ok := r.routeFor(eid)
	if !ok {
		a.Stats.RootMisses++
		r.agent.Send(m.ITRRLOCs[0], &packet.LISPMapReply{Nonce: m.Nonce, KeyID: 1, AuthKey: a.ReplySignKey})
		return
	}
	a.Stats.RequestsForwarded++
	r.agent.Send(next, m)
}

// Name implements System.
func (a *ALT) Name() string { return "ALT" }

// AttachSite tunnels the site to a leaf router, announces its prefix up
// the hierarchy, installs the ETR responder, and returns the ITR-side
// resolver targeting the leaf.
func (a *ALT) AttachSite(site *Site) lisp.Resolver {
	leaf := a.tree.attachSite(site)
	leaf.announceUp(site.Prefix, site.Addr)

	agent := NewControlAgent(site.Node, site.Addr)
	a.siteAgents = append(a.siteAgents, agent)
	ETRResponder(agent, site)
	req := NewRequester(agent)
	leafAddr := leaf.addr
	req.Target = func(netaddr.Addr) netaddr.Addr { return leafAddr }
	return req
}

// RefreshSite implements System. ALT ETRs answer from the live site
// record, so a changed record needs no re-announcement (the overlay
// carries reachability, not locator sets).
func (a *ALT) RefreshSite(*Site) {}

// RootTableSize returns the number of prefixes held at the overlay root —
// the state concentration the scalability experiment tracks.
func (a *ALT) RootTableSize() int { return a.tree.tableSize(0) }

// ControlTotals sums control traffic across overlay routers and site
// agents.
func (a *ALT) ControlTotals() ControlStats {
	agents := append([]*ControlAgent(nil), a.siteAgents...)
	for _, r := range a.tree.routers {
		agents = append(agents, r.agent)
	}
	return SumControlStats(agents)
}

// Routers returns the number of overlay routers.
func (a *ALT) Routers() int { return len(a.tree.routers) }
