// Package mapsys implements the LISP mapping systems the paper compares
// against: the Map-Server/Map-Resolver infrastructure (draft-ietf-lisp-ms,
// later RFC 6833), the ALT aggregated overlay (draft-ietf-lisp-alt), the
// CONS hierarchical content distribution overlay (draft-meyer-lisp-cons)
// and the NERD push-database (draft-lear-lisp-nerd).
//
// All four present the same ITR-facing interface — lisp.Resolver — so the
// experiment harness can swap control planes under an unchanged data
// plane, and all four exchange real wire-format control messages over the
// simulated network (Map-Request/Map-Reply/Map-Register/Map-Notify/ECM on
// UDP 4342). Their different message paths are exactly what produces the
// different T_map-resolution profiles in experiments E1-E3.
package mapsys

import (
	"fmt"
	"time"

	"github.com/pcelisp/pcelisp/internal/lisp"
	"github.com/pcelisp/pcelisp/internal/netaddr"
	"github.com/pcelisp/pcelisp/internal/packet"
	"github.com/pcelisp/pcelisp/internal/runtime"
	"github.com/pcelisp/pcelisp/internal/simnet"
)

// Site describes one LISP site from the mapping system's point of view:
// the EID prefix it owns, its locator set, and the control-plane address
// of its xTR.
type Site struct {
	// Prefix is the site's EID prefix.
	Prefix netaddr.Prefix
	// Locators is the site's RLOC set.
	Locators []packet.LISPLocator
	// Node hosts the site's control plane (normally the xTR node).
	Node *simnet.Node
	// Addr is the control-plane address (normally the xTR's RLOC).
	Addr netaddr.Addr
	// TTL is the record TTL in seconds handed out for this site.
	TTL uint32
	// AuthKey authenticates the site's Map-Register messages.
	AuthKey []byte
	// ReplySignKey, when non-nil, makes the site's responders sign their
	// Map-Replies (HMAC-SHA1 over the message). Nil keeps replies
	// unsigned and byte-identical to the pre-defense wire format.
	ReplySignKey []byte
}

// Record returns the site's mapping record with a snapshot of the
// locator set: stored copies (CONS CAR databases, the NERD authority)
// must not change retroactively when a LocatorWatch later flips the
// live site's R bits — re-publication goes through RefreshSite.
func (s *Site) Record() packet.LISPMapRecord {
	locs := make([]packet.LISPLocator, len(s.Locators))
	copy(locs, s.Locators)
	return packet.LISPMapRecord{
		TTL: s.TTL, EIDPrefix: s.Prefix, Authoritative: true, Locators: locs,
	}
}

// ControlAgent owns UDP port 4342 on one node and dispatches LISP control
// messages to role handlers. ECMs are unwrapped transparently: handlers
// receive the inner message with the inner source address, plus the outer
// source that delivered it.
type ControlAgent struct {
	node *simnet.Node
	rt   runtime.Runtime
	addr netaddr.Addr

	// OnMapRequest handles Map-Requests (possibly ECM-unwrapped).
	OnMapRequest func(src netaddr.Addr, m *packet.LISPMapRequest)
	// OnMapReply handles Map-Replies.
	OnMapReply func(src netaddr.Addr, m *packet.LISPMapReply)
	// OnMapRegister handles Map-Registers.
	OnMapRegister func(src netaddr.Addr, m *packet.LISPMapRegister)
	// OnMapNotify handles Map-Notifies.
	OnMapNotify func(src netaddr.Addr, m *packet.LISPMapNotify)

	// Stats counts control messages by direction.
	Stats ControlStats
}

// ControlStats counts control-plane traffic through an agent.
type ControlStats struct {
	RxMessages uint64
	RxBytes    uint64
	TxMessages uint64
	TxBytes    uint64
	Malformed  uint64
}

// NewControlAgent binds a control agent to node:4342 at addr.
func NewControlAgent(node *simnet.Node, addr netaddr.Addr) *ControlAgent {
	a := &ControlAgent{node: node, rt: node.Sim(), addr: addr}
	node.ListenUDP(packet.PortLISPControl, a.handle)
	return a
}

// Node returns the hosting node.
func (a *ControlAgent) Node() *simnet.Node { return a.node }

// Addr returns the agent's control address.
func (a *ControlAgent) Addr() netaddr.Addr { return a.addr }

func (a *ControlAgent) handle(d *simnet.Delivery, udp *packet.UDP) {
	a.Stats.RxMessages++
	a.Stats.RxBytes += uint64(len(d.Data))
	src := d.IPv4().SrcIP
	a.dispatch(src, udp.LayerPayload())
}

func (a *ControlAgent) dispatch(src netaddr.Addr, msg []byte) {
	p := packet.NewPacket(msg, packet.LayerTypeLISPControl, packet.NoCopy)
	if p.ErrorLayer() != nil {
		a.Stats.Malformed++
		return
	}
	if ecm := p.Layer(packet.LayerTypeLISPECM); ecm != nil {
		// Unwrap: the inner packet is IP/UDP/control; dispatch the inner
		// control message with the *inner* source (the original sender).
		innerIP := p.Layer(packet.LayerTypeIPv4)
		innerUDP := p.Layer(packet.LayerTypeUDP)
		if innerIP == nil || innerUDP == nil {
			a.Stats.Malformed++
			return
		}
		a.dispatch(innerIP.(*packet.IPv4).SrcIP, innerUDP.(*packet.UDP).LayerPayload())
		return
	}
	switch {
	case p.Layer(packet.LayerTypeLISPMapRequest) != nil:
		if a.OnMapRequest != nil {
			a.OnMapRequest(src, p.Layer(packet.LayerTypeLISPMapRequest).(*packet.LISPMapRequest))
		}
	case p.Layer(packet.LayerTypeLISPMapReply) != nil:
		if a.OnMapReply != nil {
			a.OnMapReply(src, p.Layer(packet.LayerTypeLISPMapReply).(*packet.LISPMapReply))
		}
	case p.Layer(packet.LayerTypeLISPMapRegister) != nil:
		if a.OnMapRegister != nil {
			a.OnMapRegister(src, p.Layer(packet.LayerTypeLISPMapRegister).(*packet.LISPMapRegister))
		}
	case p.Layer(packet.LayerTypeLISPMapNotify) != nil:
		if a.OnMapNotify != nil {
			a.OnMapNotify(src, p.Layer(packet.LayerTypeLISPMapNotify).(*packet.LISPMapNotify))
		}
	default:
		a.Stats.Malformed++
	}
}

// Send transmits a control message to dst:4342.
func (a *ControlAgent) Send(dst netaddr.Addr, msg packet.SerializableLayer) {
	data := simnet.EncodeUDP(a.addr, dst, packet.PortLISPControl, packet.PortLISPControl, msg)
	a.Stats.TxMessages++
	a.Stats.TxBytes += uint64(len(data))
	a.node.Send(data)
}

// SendECM wraps msg in inner IP/UDP and an Encapsulated Control Message
// toward dst:4342, per RFC 6833 §4.3.
func (a *ControlAgent) SendECM(dst netaddr.Addr, msg packet.SerializableLayer) {
	inner := simnet.EncodeUDP(a.addr, dst, packet.PortLISPControl, packet.PortLISPControl, msg)
	data := simnet.EncodeUDP(a.addr, dst, packet.PortLISPControl, packet.PortLISPControl,
		&packet.LISPECM{}, packet.Payload(inner))
	a.Stats.TxMessages++
	a.Stats.TxBytes += uint64(len(data))
	a.node.Send(data)
}

// RecordToEntry converts a wire mapping record into a data-plane map-cache
// entry with an absolute expiry.
func RecordToEntry(rt runtime.Runtime, r packet.LISPMapRecord) *lisp.MapEntry {
	e := &lisp.MapEntry{EIDPrefix: r.EIDPrefix, Locators: r.Locators}
	if r.TTL > 0 {
		e.Expires = rt.Now() + simnet.Time(r.TTL)*simnet.Time(time.Second)
	}
	return e
}

// Requester is the ITR-side resolution engine shared by all pull-based
// mapping systems: it issues Map-Requests toward a system-specific target,
// correlates Map-Replies by nonce, retries on timeout and fails over.
type Requester struct {
	agent *ControlAgent
	// Target returns the address to which the Map-Request for eid is
	// sent (the Map-Resolver, the edge ALT router, the local CAR...).
	Target func(eid netaddr.Addr) netaddr.Addr
	// ECM wraps requests in an Encapsulated Control Message (MS/MR mode).
	ECM bool
	// Timeout is the per-attempt timeout.
	Timeout simnet.Time
	// MaxRetries bounds re-sends.
	MaxRetries int
	// StrictNonce (the default) accepts a reply only when its nonce
	// exactly matches an outstanding request — the nonce-echo defense of
	// RFC 6830 §6.1.4. When false the requester behaves like early
	// implementations: a positive reply whose record covers a pending
	// EID is accepted whatever its nonce, and unsolicited positive
	// replies are gleaned through OnUnsolicited. Negative replies always
	// require the exact nonce — a forged "no mapping" must never seed
	// the negative cache.
	StrictNonce bool
	// VerifyKey, when non-nil, rejects any reply without a valid
	// HMAC-SHA1 auth block under this key.
	VerifyKey []byte
	// OnUnsolicited, when set and StrictNonce is off, installs positive
	// replies that match no pending resolution (historic Map-Reply
	// gleaning — the cache-injection hole the E13 attacker exploits).
	OnUnsolicited func(*lisp.MapEntry)

	pending map[uint64]*pendingResolve

	// Stats counts requester activity.
	Stats RequesterStats
}

// RequesterStats counts ITR-side resolution activity.
type RequesterStats struct {
	Requests  uint64
	Retries   uint64
	Timeouts  uint64
	Answers   uint64
	Negatives uint64
	// AuthRejects counts replies dropped for a missing or bad signature.
	AuthRejects uint64
	// NonceMismatch counts replies matching no outstanding nonce
	// (duplicates, stale retries, or forgeries caught by StrictNonce).
	NonceMismatch uint64
	// SloppyAccepts counts replies accepted by EID match despite a nonce
	// mismatch (StrictNonce off).
	SloppyAccepts uint64
	// Unsolicited counts gleaned replies handed to OnUnsolicited.
	Unsolicited uint64
}

type pendingResolve struct {
	eid     netaddr.Addr
	done    func(*lisp.MapEntry, bool)
	tries   int
	gen     int
	started simnet.Time
}

// NewRequester builds a requester on an agent. The agent's OnMapReply is
// claimed by the requester.
func NewRequester(agent *ControlAgent) *Requester {
	r := &Requester{
		agent:   agent,
		Timeout: 1 * time.Second,
		// One retry by default: the paper's drop analysis is about the
		// first packets, not about endless retransmission.
		MaxRetries:  2,
		StrictNonce: true,
		pending:     make(map[uint64]*pendingResolve),
	}
	agent.OnMapReply = r.onReply
	return r
}

// Resolve implements lisp.Resolver.
func (r *Requester) Resolve(eid netaddr.Addr, done func(*lisp.MapEntry, bool)) {
	if r.Target == nil {
		panic("mapsys: Requester without Target")
	}
	// Nonces come from the simulation RNG: deterministic per seed, and
	// collision-free across the requesters of different sites (a plain
	// per-requester counter would collide in CONS reverse-path state).
	nonce := r.agent.rt.Rand().Uint64()
	for _, exists := r.pending[nonce]; exists; _, exists = r.pending[nonce] {
		nonce = r.agent.rt.Rand().Uint64()
	}
	p := &pendingResolve{eid: eid, done: done, started: r.agent.rt.Now()}
	r.pending[nonce] = p
	r.sendAttempt(nonce, p)
}

func (r *Requester) sendAttempt(nonce uint64, p *pendingResolve) {
	p.gen++
	gen := p.gen
	r.Stats.Requests++
	req := &packet.LISPMapRequest{
		Nonce:       nonce,
		ITRRLOCs:    []netaddr.Addr{r.agent.addr},
		EIDPrefixes: []netaddr.Prefix{netaddr.HostPrefix(p.eid)},
	}
	target := r.Target(p.eid)
	if r.ECM {
		r.agent.SendECM(target, req)
	} else {
		r.agent.Send(target, req)
	}
	r.agent.rt.ScheduleTimer(r.Timeout, r,
		simnet.TimerArg{P: p, N: int64(nonce), Kind: int32(gen)})
}

// OnTimer implements simnet.TimerHandler: the per-attempt Map-Request
// timeout. TimerArg.P holds the pending resolve, N its nonce and Kind the
// generation the timer was armed for (the requester has a single timer,
// so Kind is free to carry it).
func (r *Requester) OnTimer(arg simnet.TimerArg) {
	p := arg.P.(*pendingResolve)
	nonce := uint64(arg.N)
	cur, ok := r.pending[nonce]
	if !ok || cur != p || p.gen != int(arg.Kind) {
		return
	}
	p.tries++
	if p.tries > r.MaxRetries {
		delete(r.pending, nonce)
		r.Stats.Timeouts++
		p.done(nil, false)
		return
	}
	r.Stats.Retries++
	r.sendAttempt(nonce, p)
}

func (r *Requester) onReply(src netaddr.Addr, m *packet.LISPMapReply) {
	if r.VerifyKey != nil && !m.VerifyAuth(r.VerifyKey) {
		r.Stats.AuthRejects++
		return
	}
	nonce := m.Nonce
	p, ok := r.pending[nonce]
	if !ok && !r.StrictNonce && len(m.Records) > 0 && len(m.Records[0].Locators) > 0 {
		if n2, p2, found := r.findByEID(m.Records[0].EIDPrefix); found {
			nonce, p, ok = n2, p2, true
			r.Stats.SloppyAccepts++
		} else if r.OnUnsolicited != nil {
			r.Stats.Unsolicited++
			r.OnUnsolicited(RecordToEntry(r.agent.rt, m.Records[0]))
			return
		}
	}
	if !ok {
		r.Stats.NonceMismatch++
		return // duplicate, stale, or forged
	}
	delete(r.pending, nonce)
	if len(m.Records) == 0 || len(m.Records[0].Locators) == 0 {
		// An authoritative empty reply, not a timeout: hand the ITR a
		// negative entry so it can negative-cache the answer instead of
		// re-resolving on every subsequent miss.
		r.Stats.Negatives++
		p.done(&lisp.MapEntry{EIDPrefix: netaddr.HostPrefix(p.eid), Negative: true}, false)
		return
	}
	r.Stats.Answers++
	p.done(RecordToEntry(r.agent.rt, m.Records[0]), true)
}

// findByEID returns the pending resolution whose EID the record prefix
// covers, choosing the smallest (EID, nonce) pair so map iteration order
// never influences behavior.
func (r *Requester) findByEID(prefix netaddr.Prefix) (uint64, *pendingResolve, bool) {
	var bestNonce uint64
	var best *pendingResolve
	for n, p := range r.pending {
		if !prefix.Contains(p.eid) {
			continue
		}
		if best == nil || p.eid < best.eid || (p.eid == best.eid && n < bestNonce) {
			bestNonce, best = n, p
		}
	}
	return bestNonce, best, best != nil
}

// ETRResponder makes a site's control agent answer Map-Requests with the
// site's authoritative record, the ETR role of RFC 6833 §4.4.
func ETRResponder(agent *ControlAgent, site *Site) {
	agent.OnMapRequest = func(src netaddr.Addr, m *packet.LISPMapRequest) {
		if len(m.ITRRLOCs) == 0 {
			return
		}
		covers := false
		for _, q := range m.EIDPrefixes {
			if site.Prefix.Overlaps(q) {
				covers = true
				break
			}
		}
		reply := &packet.LISPMapReply{Nonce: m.Nonce, KeyID: 1, AuthKey: site.ReplySignKey}
		if covers {
			reply.Records = []packet.LISPMapRecord{site.Record()}
		}
		agent.Send(m.ITRRLOCs[0], reply)
	}
}

// System is the common face of a mapping-system deployment: it wires one
// site's xTR into the control plane and names itself for experiment
// tables.
type System interface {
	// Name identifies the control plane in tables ("ALT", "NERD", ...).
	Name() string
	// AttachSite registers a site and returns the lisp.Resolver its ITRs
	// should use (nil for pure-push systems whose ITRs never resolve).
	AttachSite(site *Site) lisp.Resolver
	// RefreshSite re-announces an attached site after its record changed
	// (a locator's R bit flipped, say). Systems answering live from the
	// site struct (ALT, MS/MR's ETR) need no message, ones holding
	// copies (CONS CARs, the NERD authority) re-publish. Refreshing
	// updates only the system's own state: remote ITR caches still hold
	// the old record until TTL expiry — the pull-based reconvergence
	// delay the paper's control plane avoids.
	RefreshSite(site *Site)
}

// LocatorWatch drives a site's advertised locator R bits from interface
// state: each tick it checks the interface carrying each locator, flips
// the site record on transitions and calls Refresh so the mapping
// system re-publishes. This is the site-local half of failure handling
// every control plane gets for free (a border router sees its own link
// die); the difference under test is how long *remote* caches keep the
// stale record.
type LocatorWatch struct {
	sim    *simnet.Sim
	site   *Site
	ifaces []*simnet.Iface // parallel to site.Locators; nil entries skipped
	// Refresh, when non-nil, runs after any flip (normally
	// System.RefreshSite).
	Refresh func()
	// Interval is the check period (default 1s).
	Interval simnet.Time
	started  bool

	// Changes counts R-bit flips (observability for experiments).
	Changes uint64
}

// WatchSiteLocators builds a watch binding site.Locators[i] to ifaces[i].
func WatchSiteLocators(sim *simnet.Sim, site *Site, ifaces []*simnet.Iface, refresh func()) *LocatorWatch {
	if len(ifaces) != len(site.Locators) {
		panic("mapsys: locator watch needs one iface per locator")
	}
	return &LocatorWatch{sim: sim, site: site, ifaces: ifaces, Refresh: refresh, Interval: time.Second}
}

// Start begins periodic checks (keeps the event queue alive forever; run
// the simulation with bounded windows).
func (lw *LocatorWatch) Start() {
	if lw.started {
		return
	}
	lw.started = true
	lw.sim.ScheduleTimer(lw.Interval, lw, simnet.TimerArg{})
}

// OnTimer implements simnet.TimerHandler: one state check.
func (lw *LocatorWatch) OnTimer(simnet.TimerArg) {
	changed := false
	for i, ifc := range lw.ifaces {
		if ifc == nil {
			continue
		}
		up := ifc.LinkUp()
		if lw.site.Locators[i].Reachable != up {
			lw.site.Locators[i].Reachable = up
			lw.Changes++
			changed = true
		}
	}
	if changed && lw.Refresh != nil {
		lw.Refresh()
	}
	lw.sim.ScheduleTimer(lw.Interval, lw, simnet.TimerArg{})
}

// ErrNoSite is returned by deployments asked about an unknown EID.
var ErrNoSite = fmt.Errorf("mapsys: no site covers the EID")

// SumControlStats adds up the counters of a set of agents (experiment E5).
func SumControlStats(agents []*ControlAgent) ControlStats {
	var out ControlStats
	for _, a := range agents {
		out.RxMessages += a.Stats.RxMessages
		out.RxBytes += a.Stats.RxBytes
		out.TxMessages += a.Stats.TxMessages
		out.TxBytes += a.Stats.TxBytes
		out.Malformed += a.Stats.Malformed
	}
	return out
}
