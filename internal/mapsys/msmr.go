package mapsys

import (
	"time"

	"github.com/pcelisp/pcelisp/internal/lisp"
	"github.com/pcelisp/pcelisp/internal/netaddr"
	"github.com/pcelisp/pcelisp/internal/obs"
	"github.com/pcelisp/pcelisp/internal/packet"
	"github.com/pcelisp/pcelisp/internal/simnet"
)

// MapServer is the registration point of the MS/MR mapping system
// (draft-ietf-lisp-ms): ETRs register their prefixes with authenticated
// Map-Registers; Map-Requests arriving (via Map-Resolvers) are forwarded
// to the registered ETR, which map-replies directly to the querying ITR.
type MapServer struct {
	agent   *ControlAgent
	authKey []byte
	sites   *netaddr.Trie[registeredSite]

	// ReplySignKey, when non-nil, signs the server's negative Map-Replies
	// so forged "no mapping" answers cannot impersonate it.
	ReplySignKey []byte

	met msMetrics
}

// MapServerStats counts map-server activity.
type MapServerStats struct {
	Registers    uint64
	BadAuth      uint64
	Forwarded    uint64
	Negatives    uint64
	NotifiesSent uint64
}

// msMetrics is the live counter set behind MapServerStats.
type msMetrics struct {
	Registers    obs.Counter
	BadAuth      obs.Counter
	Forwarded    obs.Counter
	Negatives    obs.Counter
	NotifiesSent obs.Counter
}

func (m *msMetrics) register(r *obs.Registry, node string) {
	l := obs.Label{Key: "node", Value: node}
	r.RegisterCounter("pcelisp_ms_registers_total", "Map-Registers accepted by the map-server.", &m.Registers, l)
	r.RegisterCounter("pcelisp_ms_bad_auth_total", "Map-Registers rejected for bad authentication.", &m.BadAuth, l)
	r.RegisterCounter("pcelisp_ms_forwarded_total", "Map-Requests forwarded to a registered ETR.", &m.Forwarded, l)
	r.RegisterCounter("pcelisp_ms_negatives_total", "Negative Map-Replies sent for unregistered prefixes.", &m.Negatives, l)
	r.RegisterCounter("pcelisp_ms_notifies_sent_total", "Map-Notify messages sent.", &m.NotifiesSent, l)
}

func (m *msMetrics) snapshot() MapServerStats {
	return MapServerStats{
		Registers:    m.Registers.Load(),
		BadAuth:      m.BadAuth.Load(),
		Forwarded:    m.Forwarded.Load(),
		Negatives:    m.Negatives.Load(),
		NotifiesSent: m.NotifiesSent.Load(),
	}
}

// Stats returns a snapshot of the server's counters.
func (ms *MapServer) Stats() MapServerStats { return ms.met.snapshot() }

// RegisterMetrics publishes the server's counters on r under
// pcelisp_ms_* with a node label.
func (ms *MapServer) RegisterMetrics(r *obs.Registry) {
	ms.met.register(r, ms.agent.node.Name())
}

type registeredSite struct {
	record  packet.LISPMapRecord
	etrAddr netaddr.Addr
}

// NewMapServer attaches a map-server to node at addr. authKey
// authenticates all sites (per-site keys are an easy extension the
// experiments do not need).
func NewMapServer(node *simnet.Node, addr netaddr.Addr, authKey []byte) *MapServer {
	ms := &MapServer{
		agent:   NewControlAgent(node, addr),
		authKey: authKey,
		sites:   netaddr.NewTrie[registeredSite](),
	}
	ms.agent.OnMapRegister = ms.onRegister
	ms.agent.OnMapRequest = ms.onRequest
	return ms
}

// Addr returns the map-server's address.
func (ms *MapServer) Addr() netaddr.Addr { return ms.addrOf() }

func (ms *MapServer) addrOf() netaddr.Addr { return ms.agent.addr }

// RegisteredSites returns the number of registered prefixes.
func (ms *MapServer) RegisteredSites() int { return ms.sites.Len() }

func (ms *MapServer) onRegister(src netaddr.Addr, m *packet.LISPMapRegister) {
	if !m.VerifyAuth(ms.authKey) {
		ms.met.BadAuth.Inc()
		return
	}
	ms.met.Registers.Inc()
	for _, r := range m.Records {
		ms.sites.Insert(r.EIDPrefix, registeredSite{record: r, etrAddr: src})
	}
	if m.WantNotify {
		ms.met.NotifiesSent.Inc()
		notify := &packet.LISPMapNotify{LISPMapRegister: packet.LISPMapRegister{
			Nonce: m.Nonce, KeyID: m.KeyID, AuthKey: ms.authKey, Records: m.Records,
		}}
		ms.agent.Send(src, notify)
	}
}

func (ms *MapServer) onRequest(src netaddr.Addr, m *packet.LISPMapRequest) {
	if len(m.EIDPrefixes) == 0 || len(m.ITRRLOCs) == 0 {
		return
	}
	eid := m.EIDPrefixes[0].Addr()
	site, _, ok := ms.sites.Lookup(eid)
	if !ok {
		ms.met.Negatives.Inc()
		ms.agent.Send(m.ITRRLOCs[0], &packet.LISPMapReply{Nonce: m.Nonce, KeyID: 1, AuthKey: ms.ReplySignKey})
		return
	}
	ms.met.Forwarded.Inc()
	ms.agent.SendECM(site.etrAddr, m)
}

// MapResolver accepts ECM Map-Requests from ITRs and forwards them to the
// map-server (RFC 6833 §4.4). The indirection leg is part of T_map.
//
// By default the resolver forwards immediately (infinite capacity — the
// pre-E13 behavior, byte-identical). With ServiceRate set it models a
// bounded control-plane processor: each request costs 1/ServiceRate
// seconds of a single FIFO server, requests arriving when the backlog
// exceeds QueueCap service slots are dropped, and a per-source quota can
// shield the queue from a flooding source.
type MapResolver struct {
	agent *ControlAgent
	ms    netaddr.Addr

	// ServiceRate is the requests-per-second the resolver can process
	// (0 = infinite, forward immediately).
	ServiceRate int
	// QueueCap bounds the backlog in service slots when ServiceRate is
	// set (0 = a default of 64).
	QueueCap int
	// Quota, when non-nil, is consulted per source before queueing.
	Quota *lisp.SourceQuota

	busyUntil simnet.Time

	met mrMetrics
}

// MapResolverStats counts map-resolver activity.
type MapResolverStats struct {
	Forwarded uint64
	// QueueDrops counts requests shed because the service backlog
	// exceeded QueueCap.
	QueueDrops uint64
	// QuotaDrops counts requests shed by the per-source quota.
	QuotaDrops uint64
}

// mrMetrics is the live counter set behind MapResolverStats, plus the
// instantaneous service-queue depth in slots.
type mrMetrics struct {
	Forwarded  obs.Counter
	QueueDrops obs.Counter
	QuotaDrops obs.Counter
	QueueDepth obs.Gauge
}

func (m *mrMetrics) register(r *obs.Registry, node string) {
	l := obs.Label{Key: "node", Value: node}
	r.RegisterCounter("pcelisp_mr_forwarded_total", "Map-Requests forwarded to the map-server.", &m.Forwarded, l)
	r.RegisterCounter("pcelisp_mr_queue_drops_total", "Map-Requests shed because the service backlog exceeded QueueCap.", &m.QueueDrops, l)
	r.RegisterCounter("pcelisp_mr_quota_drops_total", "Map-Requests shed by the per-source quota.", &m.QuotaDrops, l)
	r.RegisterGauge("pcelisp_mr_queue_depth", "Service-queue backlog in request slots.", &m.QueueDepth, l)
}

// Stats returns a snapshot of the resolver's counters.
func (mr *MapResolver) Stats() MapResolverStats {
	return MapResolverStats{
		Forwarded:  mr.met.Forwarded.Load(),
		QueueDrops: mr.met.QueueDrops.Load(),
		QuotaDrops: mr.met.QuotaDrops.Load(),
	}
}

// RegisterMetrics publishes the resolver's counters on r under
// pcelisp_mr_* with a node label.
func (mr *MapResolver) RegisterMetrics(r *obs.Registry) {
	mr.met.register(r, mr.agent.node.Name())
}

// NewMapResolver attaches a map-resolver to node at addr, forwarding to
// the map-server at ms.
func NewMapResolver(node *simnet.Node, addr, ms netaddr.Addr) *MapResolver {
	mr := &MapResolver{agent: NewControlAgent(node, addr), ms: ms}
	mr.agent.OnMapRequest = mr.onRequest
	return mr
}

func (mr *MapResolver) onRequest(src netaddr.Addr, m *packet.LISPMapRequest) {
	now := mr.agent.node.Sim().Now()
	if mr.Quota != nil && !mr.Quota.Allow(now, src) {
		mr.met.QuotaDrops.Inc()
		return
	}
	if mr.ServiceRate <= 0 {
		mr.met.Forwarded.Inc()
		mr.agent.SendECM(mr.ms, m)
		return
	}
	cost := simnet.Time(time.Second) / simnet.Time(mr.ServiceRate)
	cap := mr.QueueCap
	if cap <= 0 {
		cap = 64
	}
	start := mr.busyUntil
	if start < now {
		start = now
	}
	if start-now > cost*simnet.Time(cap) {
		mr.met.QueueDrops.Inc()
		return
	}
	mr.busyUntil = start + cost
	mr.met.QueueDepth.Set(int64((mr.busyUntil - now) / cost))
	// Each queued request carries its own completion timer: the queue
	// itself is implicit in busyUntil, so no container to drain.
	mr.agent.node.Sim().ScheduleTimer(mr.busyUntil-now, mr, simnet.TimerArg{P: m})
}

// OnTimer implements simnet.TimerHandler: one request leaves the service
// queue and is forwarded to the map-server.
func (mr *MapResolver) OnTimer(arg simnet.TimerArg) {
	mr.met.Forwarded.Inc()
	mr.met.QueueDepth.Add(-1)
	mr.agent.SendECM(mr.ms, arg.P.(*packet.LISPMapRequest))
}

// Addr returns the map-resolver's address.
func (mr *MapResolver) Addr() netaddr.Addr { return mr.agent.addr }

// MSMR is a full Map-Server/Map-Resolver deployment.
type MSMR struct {
	// MS is the map-server.
	MS *MapServer
	// MR is the map-resolver ITRs query.
	MR *MapResolver
	// RegisterInterval is the periodic re-registration period
	// (default 60s, RFC 6833 suggests 1 minute).
	RegisterInterval simnet.Time
	authKey          []byte
	agents           map[*simnet.Node]*ControlAgent
	regs             map[*Site]*registration
}

// NewMSMR builds the deployment with the map-server on msNode and the
// map-resolver on mrNode (they may be the same node only if different
// addresses are used — each binds its own agent, so distinct nodes are
// expected).
func NewMSMR(msNode *simnet.Node, msAddr netaddr.Addr, mrNode *simnet.Node, mrAddr netaddr.Addr, authKey []byte) *MSMR {
	return &MSMR{
		MS:               NewMapServer(msNode, msAddr, authKey),
		MR:               NewMapResolver(mrNode, mrAddr, msAddr),
		RegisterInterval: 60 * time.Second,
		authKey:          authKey,
		agents:           make(map[*simnet.Node]*ControlAgent),
		regs:             make(map[*Site]*registration),
	}
}

// Name implements System.
func (m *MSMR) Name() string { return "MS/MR" }

// ControlTotals sums control traffic across the map-server, map-resolver
// and every site agent.
func (m *MSMR) ControlTotals() ControlStats {
	agents := []*ControlAgent{m.MS.agent, m.MR.agent}
	for _, a := range m.agents {
		agents = append(agents, a)
	}
	return SumControlStats(agents)
}

// AttachSite wires a site: its agent answers Map-Requests (ETR role),
// registers with the map-server now and periodically, and the returned
// resolver sends ECM Map-Requests to the map-resolver (ITR role).
func (m *MSMR) AttachSite(site *Site) lisp.Resolver {
	agent := m.agentFor(site.Node, site.Addr)
	ETRResponder(agent, site)
	reg := &registration{agent: agent, site: site}
	m.regs[site] = reg
	m.register(reg)

	req := NewRequester(agent)
	req.ECM = true
	mrAddr := m.MR.Addr()
	req.Target = func(netaddr.Addr) netaddr.Addr { return mrAddr }
	return req
}

func (m *MSMR) agentFor(node *simnet.Node, addr netaddr.Addr) *ControlAgent {
	if a, ok := m.agents[node]; ok {
		return a
	}
	a := NewControlAgent(node, addr)
	m.agents[node] = a
	return a
}

func (m *MSMR) register(reg *registration) {
	m.sendRegister(reg)
	reg.agent.node.Sim().ScheduleTimer(m.RegisterInterval, m, simnet.TimerArg{P: reg})
}

// sendRegister issues one Map-Register without touching the periodic
// re-arm (RefreshSite uses it for out-of-band updates).
func (m *MSMR) sendRegister(reg *registration) {
	agent, site := reg.agent, reg.site
	key := site.AuthKey
	if key == nil {
		key = m.authKey
	}
	msg := &packet.LISPMapRegister{
		ProxyReply: false, WantNotify: false,
		Nonce:   agent.node.Sim().Rand().Uint64(),
		KeyID:   1,
		AuthKey: key,
		Records: []packet.LISPMapRecord{site.Record()},
	}
	agent.Send(m.MS.Addr(), msg)
}

// RefreshSite implements System: re-register immediately so the
// map-server's stored copy reflects the changed record (the ETR itself
// already answers live).
func (m *MSMR) RefreshSite(site *Site) {
	if reg, ok := m.regs[site]; ok {
		m.sendRegister(reg)
	}
}

// registration carries one ETR's periodic re-registration context
// through the typed register timer. Allocated once per attached site and
// reused by every re-arm.
type registration struct {
	agent *ControlAgent
	site  *Site
}

// OnTimer implements simnet.TimerHandler: the periodic re-registration.
func (m *MSMR) OnTimer(arg simnet.TimerArg) {
	m.register(arg.P.(*registration))
}
