package mapsys

import (
	"fmt"
	"testing"
	"time"

	"github.com/pcelisp/pcelisp/internal/lisp"
	"github.com/pcelisp/pcelisp/internal/netaddr"
	"github.com/pcelisp/pcelisp/internal/packet"
	"github.com/pcelisp/pcelisp/internal/simnet"
)

var testKey = []byte("mapsys-test-key")

// msWorld is a hub-and-spoke internet with n LISP sites:
// site i owns EID prefix 100.(i+1).0.0/16 with RLOC 10.0.i.1, 15ms from
// the hub.
type msWorld struct {
	sim   *simnet.Sim
	hub   *simnet.Node
	sites []*Site
}

func newMSWorld(t testing.TB, n int) *msWorld {
	t.Helper()
	s := simnet.New(1)
	w := &msWorld{sim: s, hub: s.NewNode("hub")}
	for i := 0; i < n; i++ {
		node := s.NewNode(fmt.Sprintf("site%d", i))
		l := simnet.Connect(node, w.hub, simnet.LinkConfig{Delay: 15 * time.Millisecond})
		addr := netaddr.AddrFrom4(10, 0, byte(i), 1)
		l.A().SetAddr(addr)
		l.B().SetAddr(netaddr.AddrFrom4(10, 0, byte(i), 2))
		node.SetDefaultRoute(l.A())
		w.hub.AddRoute(netaddr.PrefixFrom(netaddr.AddrFrom4(10, 0, byte(i), 0), 24), l.B())
		w.sites = append(w.sites, &Site{
			Prefix: netaddr.PrefixFrom(netaddr.AddrFrom4(100, byte(i+1), 0, 0), 16),
			Locators: []packet.LISPLocator{
				{Priority: 1, Weight: 100, Reachable: true, Addr: addr},
			},
			Node: node,
			Addr: addr,
			TTL:  300,
		})
	}
	return w
}

// addInfraNode attaches an infrastructure node (MS, MR, NERD authority)
// to the hub with the given delay and /24-allocated address.
func (w *msWorld) addInfraNode(name string, octet byte, delay time.Duration) (*simnet.Node, netaddr.Addr) {
	n := w.sim.NewNode(name)
	l := simnet.Connect(n, w.hub, simnet.LinkConfig{Delay: delay})
	addr := netaddr.AddrFrom4(198, 51, octet, 1)
	l.A().SetAddr(addr)
	l.B().SetAddr(netaddr.AddrFrom4(198, 51, octet, 2))
	n.SetDefaultRoute(l.A())
	w.hub.AddRoute(netaddr.PrefixFrom(netaddr.AddrFrom4(198, 51, octet, 0), 24), l.B())
	return n, addr
}

// resolveOnce runs one resolution and returns (entry, ok, elapsed). The
// run window is bounded because periodic control-plane chatter (MS/MR
// re-registration, NERD polling) keeps the event queue non-empty forever.
func resolveOnce(w *msWorld, r lisp.Resolver, eid netaddr.Addr) (*lisp.MapEntry, bool, simnet.Time) {
	var entry *lisp.MapEntry
	ok := false
	start := w.sim.Now()
	at := start
	r.Resolve(eid, func(e *lisp.MapEntry, success bool) {
		entry, ok, at = e, success, w.sim.Now()
	})
	w.sim.RunFor(20 * time.Second)
	return entry, ok, at - start
}

// aboutEq tolerates the distinct per-hop overlay delay offsets (a few
// hundred ns per hop) on top of the nominal path-delay sum.
func aboutEq(elapsed, want simnet.Time) bool {
	d := elapsed - want
	return d >= 0 && d < 100*time.Microsecond
}

func TestMSMRResolution(t *testing.T) {
	w := newMSWorld(t, 3)
	msNode, msAddr := w.addInfraNode("ms", 1, 12*time.Millisecond)
	mrNode, mrAddr := w.addInfraNode("mr", 2, 10*time.Millisecond)
	sys := NewMSMR(msNode, msAddr, mrNode, mrAddr, testKey)
	resolvers := make([]lisp.Resolver, len(w.sites))
	for i, site := range w.sites {
		resolvers[i] = sys.AttachSite(site)
	}
	w.sim.RunFor(time.Second) // registrations land
	if sys.MS.RegisteredSites() != 3 {
		t.Fatalf("registered = %d", sys.MS.RegisteredSites())
	}
	entry, ok, elapsed := resolveOnce(w, resolvers[0], netaddr.MustParseAddr("100.2.0.9"))
	if !ok || entry.EIDPrefix != w.sites[1].Prefix {
		t.Fatalf("resolution = %+v ok=%v", entry, ok)
	}
	if entry.Locators[0].Addr != w.sites[1].Addr {
		t.Fatalf("locator = %v", entry.Locators[0].Addr)
	}
	// Four legs: ITR->MR (15+10), MR->MS (10+12), MS->ETR (12+15),
	// ETR->ITR (15+15) = 104ms.
	want := 104 * time.Millisecond
	if elapsed != want {
		t.Fatalf("T_map = %v, want %v", elapsed, want)
	}
	// The record TTL must carry into the entry expiry.
	if entry.Expires == 0 {
		t.Fatal("entry must carry a TTL")
	}
}

func TestMSMRNegativeForUnknownEID(t *testing.T) {
	w := newMSWorld(t, 2)
	msNode, msAddr := w.addInfraNode("ms", 1, 10*time.Millisecond)
	mrNode, mrAddr := w.addInfraNode("mr", 2, 10*time.Millisecond)
	sys := NewMSMR(msNode, msAddr, mrNode, mrAddr, testKey)
	r0 := sys.AttachSite(w.sites[0])
	sys.AttachSite(w.sites[1])
	w.sim.RunFor(time.Second)
	_, ok, _ := resolveOnce(w, r0, netaddr.MustParseAddr("100.99.0.1"))
	if ok {
		t.Fatal("unknown EID must resolve negatively")
	}
	if sys.MS.Stats().Negatives != 1 {
		t.Fatalf("MS negatives = %d", sys.MS.Stats().Negatives)
	}
}

func TestMSMRBadAuthRejected(t *testing.T) {
	w := newMSWorld(t, 2)
	msNode, msAddr := w.addInfraNode("ms", 1, 10*time.Millisecond)
	mrNode, mrAddr := w.addInfraNode("mr", 2, 10*time.Millisecond)
	sys := NewMSMR(msNode, msAddr, mrNode, mrAddr, testKey)
	w.sites[0].AuthKey = []byte("wrong-key")
	r1 := sys.AttachSite(w.sites[1])
	sys.AttachSite(w.sites[0])
	w.sim.RunFor(time.Second)
	if sys.MS.Stats().BadAuth == 0 {
		t.Fatal("bad auth must be counted")
	}
	if sys.MS.RegisteredSites() != 1 {
		t.Fatalf("registered = %d, want only the valid site", sys.MS.RegisteredSites())
	}
	// Resolving the unregistered site fails.
	_, ok, _ := resolveOnce(w, r1, netaddr.MustParseAddr("100.1.0.1"))
	if ok {
		t.Fatal("unregistered site must not resolve")
	}
}

func TestMSMRPeriodicReregistration(t *testing.T) {
	w := newMSWorld(t, 1)
	msNode, msAddr := w.addInfraNode("ms", 1, 10*time.Millisecond)
	mrNode, mrAddr := w.addInfraNode("mr", 2, 10*time.Millisecond)
	sys := NewMSMR(msNode, msAddr, mrNode, mrAddr, testKey)
	sys.RegisterInterval = 30 * time.Second
	sys.AttachSite(w.sites[0])
	w.sim.RunUntil(100 * time.Second)
	// t=0, 30, 60, 90 => 4 registrations.
	if got := sys.MS.Stats().Registers; got != 4 {
		t.Fatalf("registers = %d, want 4", got)
	}
}

func TestRequesterRetryAndTimeout(t *testing.T) {
	w := newMSWorld(t, 2)
	msNode, msAddr := w.addInfraNode("ms", 1, 10*time.Millisecond)
	mrNode, mrAddr := w.addInfraNode("mr", 2, 10*time.Millisecond)
	sys := NewMSMR(msNode, msAddr, mrNode, mrAddr, testKey)
	r0 := sys.AttachSite(w.sites[0]).(*Requester)
	sys.AttachSite(w.sites[1])
	w.sim.RunFor(time.Second)
	// Cut the MR off: every attempt times out, then the requester gives up.
	for _, ifc := range mrNode.Ifaces() {
		cfg := ifc.Config()
		cfg.Loss = 1.0
		ifc.SetConfig(cfg)
	}
	_, ok, _ := resolveOnce(w, r0, netaddr.MustParseAddr("100.2.0.1"))
	if ok {
		t.Fatal("resolution through dead MR must fail")
	}
	if r0.Stats.Retries != uint64(r0.MaxRetries) || r0.Stats.Timeouts != 1 {
		t.Fatalf("retries=%d timeouts=%d", r0.Stats.Retries, r0.Stats.Timeouts)
	}
}

func TestALTResolution(t *testing.T) {
	w := newMSWorld(t, 4)
	alt := BuildALT(w.sim, OverlayConfig{
		Branching: 2, Depth: 2,
		LinkDelay: 20 * time.Millisecond, TunnelDelay: 10 * time.Millisecond,
	})
	if alt.Routers() != 7 {
		t.Fatalf("routers = %d, want 7 (1+2+4)", alt.Routers())
	}
	resolvers := make([]lisp.Resolver, len(w.sites))
	for i, site := range w.sites {
		resolvers[i] = alt.AttachSite(site)
	}
	w.sim.RunFor(time.Second) // announcements propagate
	if alt.RootTableSize() != 4 {
		t.Fatalf("root table = %d, want 4", alt.RootTableSize())
	}
	// Site 0 (leaf 0) resolves site 1 (leaf 1): common ancestor is the
	// depth-1 router. Path: tunnel(10) + leaf->parent(20) + parent->leaf(20)
	// + tunnel(10) = 60ms; native reply site1->site0 = 30ms. Total 90ms.
	entry, ok, elapsed := resolveOnce(w, resolvers[0], netaddr.MustParseAddr("100.2.0.7"))
	if !ok || entry.Locators[0].Addr != w.sites[1].Addr {
		t.Fatalf("ALT resolution = %+v ok=%v", entry, ok)
	}
	if want := 90 * time.Millisecond; !aboutEq(elapsed, want) {
		t.Fatalf("T_map = %v, want %v", elapsed, want)
	}
	// Site 0 resolves site 2 (leaf 2, other half of the tree): the
	// request must climb to the root. 10+20+20+20+20+10 = 100ms + 30ms.
	_, ok, elapsed = resolveOnce(w, resolvers[0], netaddr.MustParseAddr("100.3.0.7"))
	if !ok {
		t.Fatal("cross-subtree resolution failed")
	}
	if want := 130 * time.Millisecond; !aboutEq(elapsed, want) {
		t.Fatalf("cross-subtree T_map = %v, want %v", elapsed, want)
	}
}

func TestALTRootMiss(t *testing.T) {
	w := newMSWorld(t, 2)
	alt := BuildALT(w.sim, OverlayConfig{
		Branching: 2, Depth: 1, LinkDelay: 10 * time.Millisecond, NativeUplink: w.hub,
	})
	r0 := alt.AttachSite(w.sites[0])
	alt.AttachSite(w.sites[1])
	w.sim.Run()
	_, ok, _ := resolveOnce(w, r0, netaddr.MustParseAddr("100.77.0.1"))
	if ok {
		t.Fatal("unannounced EID must fail")
	}
	if alt.Stats.RootMisses != 1 {
		t.Fatalf("root misses = %d", alt.Stats.RootMisses)
	}
}

func TestCONSResolutionAndCaching(t *testing.T) {
	w := newMSWorld(t, 4)
	cons := BuildCONS(w.sim, OverlayConfig{
		Branching: 2, Depth: 2,
		LinkDelay: 20 * time.Millisecond, TunnelDelay: 10 * time.Millisecond,
	})
	resolvers := make([]lisp.Resolver, len(w.sites))
	for i, site := range w.sites {
		resolvers[i] = cons.AttachSite(site)
	}
	w.sim.Run()
	// Cold: site 0 -> site 1 (sibling CARs). Request: tunnel(10) +
	// CAR->CDR(20) + CDR->CAR1(20); CAR1 answers from its database; reply
	// retraces: 20+20+10. Total 100ms.
	entry, ok, elapsed := resolveOnce(w, resolvers[0], netaddr.MustParseAddr("100.2.0.1"))
	if !ok || entry.Locators[0].Addr != w.sites[1].Addr {
		t.Fatalf("CONS resolution = %+v ok=%v", entry, ok)
	}
	if want := 100 * time.Millisecond; !aboutEq(elapsed, want) {
		t.Fatalf("cold T_map = %v, want %v", elapsed, want)
	}
	if cons.Stats.AuthoritativeAnswers != 1 {
		t.Fatalf("authoritative answers = %d", cons.Stats.AuthoritativeAnswers)
	}
	// Site 2 (other subtree) now asks for the same prefix: the answer was
	// cached along the first reply's path at the depth-1 CDR... but that
	// CDR is in subtree 0. Site 2's request climbs to the root, which has
	// no cache, then descends to subtree 0's CDR where the cache hits.
	_, ok, _ = resolveOnce(w, resolvers[2], netaddr.MustParseAddr("100.2.0.2"))
	if !ok {
		t.Fatal("second resolution failed")
	}
	if cons.Stats.CacheAnswers == 0 {
		t.Fatal("expected an intermediate cache answer")
	}
	// Same query from site 0 again: its own CAR cached the reply, so the
	// resolution is a single tunnel round trip (20ms).
	_, ok, elapsed = resolveOnce(w, resolvers[0], netaddr.MustParseAddr("100.2.0.3"))
	if !ok {
		t.Fatal("third resolution failed")
	}
	if want := 20 * time.Millisecond; !aboutEq(elapsed, want) {
		t.Fatalf("cached T_map = %v, want %v", elapsed, want)
	}
}

func TestCONSCacheExpiry(t *testing.T) {
	w := newMSWorld(t, 2)
	cons := BuildCONS(w.sim, OverlayConfig{Branching: 2, Depth: 1, LinkDelay: 10 * time.Millisecond})
	cons.CacheTTL = 5 * time.Second
	r0 := cons.AttachSite(w.sites[0])
	cons.AttachSite(w.sites[1])
	w.sim.Run()
	resolveOnce(w, r0, netaddr.MustParseAddr("100.2.0.1"))
	auth := cons.Stats.AuthoritativeAnswers
	w.sim.RunFor(10 * time.Second) // past the cache TTL
	resolveOnce(w, r0, netaddr.MustParseAddr("100.2.0.1"))
	if cons.Stats.AuthoritativeAnswers != auth+1 {
		t.Fatalf("expired cache must fall back to authoritative: %+v", cons.Stats)
	}
}

func TestNERDPushAndStaleness(t *testing.T) {
	w := newMSWorld(t, 3)
	authNode, authAddr := w.addInfraNode("nerd", 1, 10*time.Millisecond)
	authority := NewNERD(authNode, authAddr, testKey)
	authority.PollInterval = 30 * time.Second
	sys := NewNERDSystem(authority, testKey)

	// Give site 0 a data-plane xTR fed by the poller.
	xtr := lisp.InstallXTR(w.sites[0].Node, lisp.XTRConfig{
		RLOC:      w.sites[0].Addr,
		LocalEIDs: w.sites[0].Prefix,
		EIDSpace:  netaddr.MustParsePrefix("100.0.0.0/8"),
	})
	sys.AttachSite(w.sites[0])
	sys.AttachSite(w.sites[1])
	sys.WireXTR(xtr)
	w.sim.RunFor(2 * time.Second)
	if authority.DatabaseSize() != 2 {
		t.Fatalf("database = %d", authority.DatabaseSize())
	}
	// First poll already delivered both records.
	if xtr.Cache.Len() != 2 {
		t.Fatalf("cache = %d after first poll", xtr.Cache.Len())
	}
	// A site registered later is invisible until the next poll: the
	// staleness window.
	sys.AttachSite(w.sites[2])
	w.sim.RunFor(5 * time.Second)
	if xtr.Cache.Len() != 2 {
		t.Fatalf("cache = %d, new site must be stale before the poll", xtr.Cache.Len())
	}
	w.sim.RunFor(30 * time.Second)
	if xtr.Cache.Len() != 3 {
		t.Fatalf("cache = %d after poll, want 3", xtr.Cache.Len())
	}
	// Deltas: the second poll must not resend old records.
	p := sys.pollers[w.sites[0].Node]
	if p.Stats.RecordsInstalled != 3 {
		t.Fatalf("records installed = %d, want 3 (deltas only)", p.Stats.RecordsInstalled)
	}
	if p.Version() != authority.Version() {
		t.Fatalf("poller version %d != authority %d", p.Version(), authority.Version())
	}
}

func TestNERDBadAuth(t *testing.T) {
	w := newMSWorld(t, 1)
	authNode, authAddr := w.addInfraNode("nerd", 1, 10*time.Millisecond)
	authority := NewNERD(authNode, authAddr, testKey)
	sys := NewNERDSystem(authority, []byte("attacker-key"))
	sys.AttachSite(w.sites[0])
	w.sim.RunFor(time.Second)
	if authority.DatabaseSize() != 0 || authority.Stats.BadAuth != 1 {
		t.Fatalf("db=%d badauth=%d", authority.DatabaseSize(), authority.Stats.BadAuth)
	}
}

func TestControlAgentECMUnwrap(t *testing.T) {
	w := newMSWorld(t, 2)
	agent0 := NewControlAgent(w.sites[0].Node, w.sites[0].Addr)
	agent1 := NewControlAgent(w.sites[1].Node, w.sites[1].Addr)
	var gotSrc netaddr.Addr
	var gotNonce uint64
	agent1.OnMapRequest = func(src netaddr.Addr, m *packet.LISPMapRequest) {
		gotSrc, gotNonce = src, m.Nonce
	}
	req := &packet.LISPMapRequest{
		Nonce:       777,
		ITRRLOCs:    []netaddr.Addr{w.sites[0].Addr},
		EIDPrefixes: []netaddr.Prefix{netaddr.MustParsePrefix("100.2.0.0/16")},
	}
	agent0.SendECM(w.sites[1].Addr, req)
	w.sim.Run()
	if gotNonce != 777 {
		t.Fatalf("nonce = %d", gotNonce)
	}
	// The handler sees the *inner* source: the original requester.
	if gotSrc != w.sites[0].Addr {
		t.Fatalf("inner source = %v", gotSrc)
	}
}

func TestControlAgentMalformed(t *testing.T) {
	w := newMSWorld(t, 2)
	agent1 := NewControlAgent(w.sites[1].Node, w.sites[1].Addr)
	w.sites[0].Node.SendUDP(w.sites[0].Addr, w.sites[1].Addr,
		packet.PortLISPControl, packet.PortLISPControl, packet.Payload([]byte{0xff, 0x00}))
	w.sim.Run()
	if agent1.Stats.Malformed != 1 {
		t.Fatalf("malformed = %d", agent1.Stats.Malformed)
	}
}

func TestSystemNames(t *testing.T) {
	w := newMSWorld(t, 1)
	msNode, msAddr := w.addInfraNode("ms", 1, time.Millisecond)
	mrNode, mrAddr := w.addInfraNode("mr", 2, time.Millisecond)
	if got := NewMSMR(msNode, msAddr, mrNode, mrAddr, testKey).Name(); got != "MS/MR" {
		t.Fatalf("MSMR name = %q", got)
	}
	w2 := newMSWorld(t, 1)
	if got := BuildALT(w2.sim, OverlayConfig{Branching: 2, Depth: 1, LinkDelay: time.Millisecond}).Name(); got != "ALT" {
		t.Fatalf("ALT name = %q", got)
	}
	w3 := newMSWorld(t, 1)
	if got := BuildCONS(w3.sim, OverlayConfig{Branching: 2, Depth: 1, LinkDelay: time.Millisecond}).Name(); got != "CONS" {
		t.Fatalf("CONS name = %q", got)
	}
	w4 := newMSWorld(t, 1)
	authNode, authAddr := w4.addInfraNode("nerd", 1, time.Millisecond)
	if got := NewNERDSystem(NewNERD(authNode, authAddr, testKey), testKey).Name(); got != "NERD" {
		t.Fatalf("NERD name = %q", got)
	}
}

func TestRecordToEntry(t *testing.T) {
	s := simnet.New(1)
	rec := packet.LISPMapRecord{
		TTL: 60, EIDPrefix: netaddr.MustParsePrefix("100.1.0.0/16"),
		Locators: []packet.LISPLocator{{Priority: 1, Weight: 1, Reachable: true, Addr: 5}},
	}
	e := RecordToEntry(s, rec)
	if e.Expires != 60*time.Second {
		t.Fatalf("expires = %v", e.Expires)
	}
	rec.TTL = 0
	if RecordToEntry(s, rec).Expires != 0 {
		t.Fatal("zero TTL must be immortal")
	}
}

func BenchmarkMSMRResolution(b *testing.B) {
	w := newMSWorld(b, 8)
	msNode, msAddr := w.addInfraNode("ms", 1, 10*time.Millisecond)
	mrNode, mrAddr := w.addInfraNode("mr", 2, 10*time.Millisecond)
	sys := NewMSMR(msNode, msAddr, mrNode, mrAddr, testKey)
	resolvers := make([]lisp.Resolver, len(w.sites))
	for i, site := range w.sites {
		resolvers[i] = sys.AttachSite(site)
	}
	w.sim.RunFor(time.Second)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eid := netaddr.AddrFrom4(100, byte(1+(i+1)%8), 0, 9)
		ok := false
		resolvers[i%8].Resolve(eid, func(e *lisp.MapEntry, success bool) { ok = success })
		w.sim.RunFor(5 * time.Second)
		if !ok {
			b.Fatal("resolution failed")
		}
	}
}

// TestLocatorWatchFlipsAndRefreshes: a watched site's locator R bit
// follows its interface state, RefreshSite propagates the change to the
// system's stored copy, and a fresh resolution returns the pruned set.
func TestLocatorWatchFlipsAndRefreshes(t *testing.T) {
	w := newMSWorld(t, 2)
	msNode, msAddr := w.addInfraNode("ms", 1, 12*time.Millisecond)
	mrNode, mrAddr := w.addInfraNode("mr", 2, 10*time.Millisecond)
	sys := NewMSMR(msNode, msAddr, mrNode, mrAddr, testKey)
	resolvers := make([]lisp.Resolver, len(w.sites))
	for i, site := range w.sites {
		resolvers[i] = sys.AttachSite(site)
	}
	site1 := w.sites[1]
	ifc := site1.Node.IfaceByAddr(site1.Addr)
	refreshed := 0
	lw := WatchSiteLocators(w.sim, site1, []*simnet.Iface{ifc}, func() {
		refreshed++
		sys.RefreshSite(site1)
	})
	lw.Start()
	w.sim.RunFor(2 * time.Second)
	if refreshed != 0 || lw.Changes != 0 {
		t.Fatalf("healthy site refreshed %d times", refreshed)
	}

	ifc.SetUp(false)
	w.sim.RunFor(2 * time.Second)
	if lw.Changes != 1 || refreshed != 1 {
		t.Fatalf("changes=%d refreshed=%d after iface down, want 1/1", lw.Changes, refreshed)
	}
	if site1.Locators[0].Reachable {
		t.Fatal("site record still advertises the dead locator as reachable")
	}
	// A fresh resolution now returns the record with the R bit cleared,
	// so an ITR's SelectLocator refuses it.
	ifc.SetUp(true) // restore the path so the reply can travel
	w.sim.RunFor(2 * time.Second)
	if lw.Changes != 2 || !site1.Locators[0].Reachable {
		t.Fatalf("recovery not observed: changes=%d", lw.Changes)
	}
}

// TestNERDRefreshBumpsVersion: re-announcing a site advances the
// authority database version so pollers fetch the updated record.
func TestNERDRefreshBumpsVersion(t *testing.T) {
	w := newMSWorld(t, 2)
	authNode, authAddr := w.addInfraNode("authority", 3, 15*time.Millisecond)
	authority := NewNERD(authNode, authAddr, testKey)
	sys := NewNERDSystem(authority, testKey)
	for _, site := range w.sites {
		sys.AttachSite(site)
	}
	w.sim.RunFor(time.Second)
	v0 := authority.Version()
	if v0 == 0 {
		t.Fatal("no registrations landed")
	}
	// Refresh of a never-attached site is ignored.
	sys.RefreshSite(&Site{Prefix: w.sites[0].Prefix, Node: w.sim.NewNode("stranger")})
	w.sim.RunFor(time.Second)
	if authority.Version() != v0 {
		t.Fatal("unattached refresh reached the authority")
	}
	w.sites[0].Locators[0].Reachable = false
	sys.RefreshSite(w.sites[0])
	w.sim.RunFor(time.Second)
	if authority.Version() <= v0 {
		t.Fatalf("version %d did not advance past %d on refresh", authority.Version(), v0)
	}
}
