package mapsys

import (
	"time"

	"github.com/pcelisp/pcelisp/internal/lisp"
	"github.com/pcelisp/pcelisp/internal/netaddr"
	"github.com/pcelisp/pcelisp/internal/packet"
	"github.com/pcelisp/pcelisp/internal/simnet"
)

// NERD implements the push-database mapping system of
// draft-lear-lisp-nerd: a central authority compiles the full EID-to-RLOC
// database; every ITR periodically pulls the delta since its last version
// and installs it into an unbounded local cache. ITRs therefore (almost)
// never miss — at the cost of global state at every ITR and a staleness
// window for new prefixes, both measured in experiments E5 and E7.
//
// The original NERD distributes a signed flat file over HTTP. The
// simulation keeps the same pull-delta semantics over LISP control
// messages: the poll is a Map-Request for 0.0.0.0/0 whose nonce carries
// the requester's database version, answered by Map-Replies carrying the
// newer records (paged, 255 records per message) whose nonce carries the
// new version.
type NERD struct {
	agent   *ControlAgent
	authKey []byte
	records []versionedRecord
	version uint64

	// PollInterval is how often ITRs pull deltas (default 60s).
	PollInterval simnet.Time

	// ReplySignKey, when non-nil, signs database pages — the simulation's
	// stand-in for the signed flat file of the original NERD.
	ReplySignKey []byte

	// Stats counts authority activity.
	Stats NERDStats
}

// NERDStats counts authority activity.
type NERDStats struct {
	Registers   uint64
	BadAuth     uint64
	Polls       uint64
	RecordsSent uint64
}

type versionedRecord struct {
	version uint64
	record  packet.LISPMapRecord
}

// nerdPageSize is the maximum records per Map-Reply page.
const nerdPageSize = 255

// NewNERD attaches the authority to node at addr.
func NewNERD(node *simnet.Node, addr netaddr.Addr, authKey []byte) *NERD {
	n := &NERD{
		agent:        NewControlAgent(node, addr),
		authKey:      authKey,
		PollInterval: 60 * time.Second,
	}
	n.agent.OnMapRegister = n.onRegister
	n.agent.OnMapRequest = n.onPoll
	return n
}

// Addr returns the authority's address.
func (n *NERD) Addr() netaddr.Addr { return n.agent.addr }

// Version returns the current database version.
func (n *NERD) Version() uint64 { return n.version }

// DatabaseSize returns the number of records in the database.
func (n *NERD) DatabaseSize() int { return len(n.records) }

func (n *NERD) onRegister(src netaddr.Addr, m *packet.LISPMapRegister) {
	if !m.VerifyAuth(n.authKey) {
		n.Stats.BadAuth++
		return
	}
	n.Stats.Registers++
	for _, r := range m.Records {
		n.version++
		n.records = append(n.records, versionedRecord{version: n.version, record: r})
	}
}

func (n *NERD) onPoll(src netaddr.Addr, m *packet.LISPMapRequest) {
	if len(m.EIDPrefixes) == 0 || m.EIDPrefixes[0].Bits() != 0 {
		return // not a database poll
	}
	n.Stats.Polls++
	since := m.Nonce
	var page []packet.LISPMapRecord
	flush := func() {
		if len(page) == 0 {
			return
		}
		n.Stats.RecordsSent += uint64(len(page))
		n.agent.Send(src, &packet.LISPMapReply{Nonce: n.version, KeyID: 1, AuthKey: n.ReplySignKey, Records: page})
		page = nil
	}
	for _, vr := range n.records {
		if vr.version <= since {
			continue
		}
		page = append(page, vr.record)
		if len(page) == nerdPageSize {
			flush()
		}
	}
	flush()
	if since >= n.version {
		// Nothing new: still answer so the poller can observe liveness.
		n.agent.Send(src, &packet.LISPMapReply{Nonce: n.version, KeyID: 1, AuthKey: n.ReplySignKey})
	}
}

// NERDPoller runs on an ITR node: it pulls deltas from the authority and
// installs every record into the xTR's (unbounded) map-cache.
type NERDPoller struct {
	agent     *ControlAgent
	xtr       *lisp.XTR
	authority netaddr.Addr
	interval  simnet.Time
	version   uint64

	// OnInstall, when set, fires for every record installed (experiment
	// instrumentation: mapping-readiness timing).
	OnInstall func(prefix netaddr.Prefix)

	// VerifyKey, when non-nil, rejects unsigned or mis-signed pages —
	// without it the source-address check below is the poller's only
	// guard, and source addresses are trivially spoofable.
	VerifyKey []byte

	// Stats counts poller activity.
	Stats NERDPollerStats
}

// NERDPollerStats counts poller activity.
type NERDPollerStats struct {
	Polls            uint64
	RecordsInstalled uint64
	BytesReceived    uint64
	// AuthRejects counts pages dropped for a missing or bad signature.
	AuthRejects uint64
}

// NewNERDPoller starts polling after firstDelay (a booting ITR waits for
// the database to exist) and then every interval.
func NewNERDPoller(agent *ControlAgent, xtr *lisp.XTR, authority netaddr.Addr, firstDelay, interval simnet.Time) *NERDPoller {
	p := &NERDPoller{agent: agent, xtr: xtr, authority: authority, interval: interval}
	agent.OnMapReply = p.onReply
	agent.node.Sim().ScheduleTimer(firstDelay, p, simnet.TimerArg{})
	return p
}

// OnTimer implements simnet.TimerHandler: the periodic database poll.
func (p *NERDPoller) OnTimer(simnet.TimerArg) { p.poll() }

// Version returns the last database version seen.
func (p *NERDPoller) Version() uint64 { return p.version }

func (p *NERDPoller) poll() {
	p.Stats.Polls++
	req := &packet.LISPMapRequest{
		Nonce:       p.version,
		ITRRLOCs:    []netaddr.Addr{p.agent.addr},
		EIDPrefixes: []netaddr.Prefix{netaddr.PrefixFrom(0, 0)},
	}
	p.agent.Send(p.authority, req)
	p.agent.node.Sim().ScheduleTimer(p.interval, p, simnet.TimerArg{})
}

func (p *NERDPoller) onReply(src netaddr.Addr, m *packet.LISPMapReply) {
	if p.VerifyKey != nil && !m.VerifyAuth(p.VerifyKey) {
		p.Stats.AuthRejects++
		return
	}
	if src != p.authority {
		return
	}
	if m.Nonce > p.version {
		p.version = m.Nonce
	}
	for _, r := range m.Records {
		p.Stats.RecordsInstalled++
		// NERD records are authoritative database state, not cache
		// entries: install without TTL so they never age out.
		p.xtr.Cache.Insert(r.EIDPrefix, r.Locators, 0)
		if p.OnInstall != nil {
			p.OnInstall(r.EIDPrefix)
		}
	}
}

// NERDSystem is the deployment wrapper implementing System.
type NERDSystem struct {
	// Authority is the central database.
	Authority *NERD
	// FirstPoll delays each ITR's initial database pull so boot-time
	// registrations land first (default 1s).
	FirstPoll simnet.Time
	authKey   []byte
	agents    map[*simnet.Node]*ControlAgent
	pollers   map[*simnet.Node]*NERDPoller
}

// NewNERDSystem wraps an authority as a System.
func NewNERDSystem(authority *NERD, authKey []byte) *NERDSystem {
	return &NERDSystem{
		Authority: authority,
		FirstPoll: time.Second,
		authKey:   authKey,
		agents:    make(map[*simnet.Node]*ControlAgent),
		pollers:   make(map[*simnet.Node]*NERDPoller),
	}
}

// Name implements System.
func (s *NERDSystem) Name() string { return "NERD" }

// ControlTotals sums control traffic across the authority and every site
// agent.
func (s *NERDSystem) ControlTotals() ControlStats {
	agents := []*ControlAgent{s.Authority.agent}
	for _, a := range s.agents {
		agents = append(agents, a)
	}
	return SumControlStats(agents)
}

// AttachSite registers the site's prefix with the authority. The returned
// resolver is nil: NERD ITRs never resolve on demand — use WireXTR to
// start the poller that fills their caches.
func (s *NERDSystem) AttachSite(site *Site) lisp.Resolver {
	agent := s.agentFor(site.Node, site.Addr)
	key := site.AuthKey
	if key == nil {
		key = s.authKey
	}
	reg := &packet.LISPMapRegister{
		Nonce:   agent.node.Sim().Rand().Uint64(),
		KeyID:   1,
		AuthKey: key,
		Records: []packet.LISPMapRecord{site.Record()},
	}
	agent.Send(s.Authority.Addr(), reg)
	return nil
}

// RefreshSite implements System: re-register the site's record with the
// authority, bumping the database version so every poller picks up the
// change on its next delta poll — NERD's reconvergence horizon.
func (s *NERDSystem) RefreshSite(site *Site) {
	if _, ok := s.agents[site.Node]; !ok {
		return // never attached
	}
	s.AttachSite(site)
}

// WireXTR starts the delta poller feeding the xTR's map-cache.
func (s *NERDSystem) WireXTR(xtr *lisp.XTR) *NERDPoller {
	node := xtr.Node()
	if p, ok := s.pollers[node]; ok {
		return p
	}
	agent := s.agentFor(node, xtr.RLOC())
	p := NewNERDPoller(agent, xtr, s.Authority.Addr(), s.FirstPoll, s.Authority.PollInterval)
	s.pollers[node] = p
	return p
}

func (s *NERDSystem) agentFor(node *simnet.Node, addr netaddr.Addr) *ControlAgent {
	if a, ok := s.agents[node]; ok {
		return a
	}
	a := NewControlAgent(node, addr)
	s.agents[node] = a
	return a
}
