package mapsys

import (
	"time"

	"github.com/pcelisp/pcelisp/internal/lisp"
	"github.com/pcelisp/pcelisp/internal/netaddr"
	"github.com/pcelisp/pcelisp/internal/packet"
	"github.com/pcelisp/pcelisp/internal/simnet"
)

// CONS implements the Content distribution Overlay Network Service for
// LISP (draft-meyer-lisp-cons): a hierarchy of Content Access Routers
// (CARs, the leaves sites attach to) and Content Distribution Routers
// (CDRs, the interior). Unlike ALT, answers flow back *through the
// overlay* along the reverse request path, and intermediate routers cache
// them — so popular prefixes resolve at nearby routers while cold ones pay
// the full climb.
type CONS struct {
	tree       *overlayTree
	byOverlay  map[*overlayRouter]*consRouter
	siteAgents []*ControlAgent
	siteCARs   map[*Site]*consRouter

	// CacheTTL bounds intermediate answer caching (default 60s).
	CacheTTL simnet.Time

	// ReplySignKey, when non-nil, signs every reply the overlay
	// originates (CAR databases, intermediate caches, root misses) —
	// CONS routers are the plane's trusted infrastructure, so they share
	// one plane key.
	ReplySignKey []byte

	// Stats counts overlay activity.
	Stats CONSStats
}

// CONSStats counts overlay activity.
type CONSStats struct {
	// RequestsForwarded counts request hops across the overlay.
	RequestsForwarded uint64
	// CacheAnswers counts requests answered from an intermediate cache.
	CacheAnswers uint64
	// AuthoritativeAnswers counts requests answered from a CAR database.
	AuthoritativeAnswers uint64
	// RootMisses counts requests that died at the root.
	RootMisses uint64
}

type consCached struct {
	record  packet.LISPMapRecord
	expires simnet.Time
}

// consRouter augments the shared overlay router with the CONS database,
// answer cache and reverse-path state.
type consRouter struct {
	*overlayRouter
	db      *netaddr.Trie[packet.LISPMapRecord]
	cache   *netaddr.Trie[consCached]
	pending map[uint64]netaddr.Addr // nonce -> previous hop
}

// BuildCONS constructs the CONS overlay inside sim.
func BuildCONS(sim *simnet.Sim, cfg OverlayConfig) *CONS {
	t := buildOverlayTree(sim, "cons", cfg)
	c := &CONS{
		tree:      t,
		byOverlay: make(map[*overlayRouter]*consRouter),
		siteCARs:  make(map[*Site]*consRouter),
		CacheTTL:  60 * time.Second,
	}
	for _, r := range t.routers {
		cr := &consRouter{
			overlayRouter: r,
			db:            netaddr.NewTrie[packet.LISPMapRecord](),
			cache:         netaddr.NewTrie[consCached](),
			pending:       make(map[uint64]netaddr.Addr),
		}
		r.agent = NewControlAgent(r.node, r.addr)
		r.agent.OnMapRegister = cr.onAnnounce
		r.agent.OnMapRequest = func(src netaddr.Addr, m *packet.LISPMapRequest) {
			c.handleRequest(cr, src, m)
		}
		r.agent.OnMapReply = func(src netaddr.Addr, m *packet.LISPMapReply) {
			c.handleReply(cr, m)
		}
		c.byOverlay[r] = cr
	}
	return c
}

func (c *CONS) handleRequest(r *consRouter, src netaddr.Addr, m *packet.LISPMapRequest) {
	if len(m.EIDPrefixes) == 0 {
		return
	}
	eid := m.EIDPrefixes[0].Addr()
	if rec, _, ok := r.db.Lookup(eid); ok {
		c.Stats.AuthoritativeAnswers++
		r.agent.Send(src, &packet.LISPMapReply{Nonce: m.Nonce, KeyID: 1, AuthKey: c.ReplySignKey, Records: []packet.LISPMapRecord{rec}})
		return
	}
	if e, p, ok := r.cache.Lookup(eid); ok {
		if r.node.Sim().Now() < e.expires {
			c.Stats.CacheAnswers++
			r.agent.Send(src, &packet.LISPMapReply{Nonce: m.Nonce, KeyID: 1, AuthKey: c.ReplySignKey, Records: []packet.LISPMapRecord{e.record}})
			return
		}
		r.cache.Delete(netaddr.PrefixFrom(eid, p.Bits()))
	}
	next, ok := r.routeFor(eid)
	if !ok {
		c.Stats.RootMisses++
		r.agent.Send(src, &packet.LISPMapReply{Nonce: m.Nonce, KeyID: 1, AuthKey: c.ReplySignKey})
		return
	}
	c.Stats.RequestsForwarded++
	r.pending[m.Nonce] = src
	r.agent.Send(next, m)
}

func (c *CONS) handleReply(r *consRouter, m *packet.LISPMapReply) {
	prev, ok := r.pending[m.Nonce]
	if !ok {
		return
	}
	delete(r.pending, m.Nonce)
	for _, rec := range m.Records {
		r.cache.Insert(rec.EIDPrefix, consCached{
			record:  rec,
			expires: r.node.Sim().Now() + c.CacheTTL,
		})
	}
	r.agent.Send(prev, m)
}

// Name implements System.
func (c *CONS) Name() string { return "CONS" }

// AttachSite tunnels the site to a CAR, stores its record in the CAR
// database, announces reachability up the CDR hierarchy, and returns the
// ITR-side resolver targeting the CAR. CONS answers authoritatively from
// the overlay, so no ETR responder is installed.
func (c *CONS) AttachSite(site *Site) lisp.Resolver {
	leaf := c.tree.attachSite(site)
	cr := c.byOverlay[leaf]
	c.siteCARs[site] = cr
	cr.db.Insert(site.Prefix, site.Record())
	// Ancestors learn to route the prefix down to this CAR, which answers
	// from its database; the CAR itself keeps no table entry (the db
	// lookup comes first, so no self-loop is possible).
	if leaf.parent != nil {
		reg := &packet.LISPMapRegister{
			Nonce:   uint64(site.Prefix.Addr())<<8 | uint64(site.Prefix.Bits()),
			Records: []packet.LISPMapRecord{{EIDPrefix: site.Prefix}},
		}
		leaf.agent.Send(leaf.parent.addr, reg)
	}

	agent := NewControlAgent(site.Node, site.Addr)
	c.siteAgents = append(c.siteAgents, agent)
	req := NewRequester(agent)
	carAddr := leaf.addr
	req.Target = func(netaddr.Addr) netaddr.Addr { return carAddr }
	return req
}

// RefreshSite implements System: the CAR database holds a snapshot of
// the site record (Site.Record copies the locator set), so a changed
// record must be re-inserted. Intermediate answer caches keep serving
// the stale copy until CacheTTL — CONS's own extra reconvergence lag.
func (c *CONS) RefreshSite(site *Site) {
	if cr, ok := c.siteCARs[site]; ok {
		cr.db.Insert(site.Prefix, site.Record())
	}
}

// RootTableSize returns the prefix count at the overlay root.
func (c *CONS) RootTableSize() int { return c.tree.tableSize(0) }

// ControlTotals sums control traffic across overlay routers and site
// agents.
func (c *CONS) ControlTotals() ControlStats {
	agents := append([]*ControlAgent(nil), c.siteAgents...)
	for _, r := range c.tree.routers {
		agents = append(agents, r.agent)
	}
	return SumControlStats(agents)
}
