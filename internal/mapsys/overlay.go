package mapsys

import (
	"fmt"
	"time"

	"github.com/pcelisp/pcelisp/internal/netaddr"
	"github.com/pcelisp/pcelisp/internal/packet"
	"github.com/pcelisp/pcelisp/internal/simnet"
)

// OverlayConfig shapes the router tree shared by the ALT and CONS
// overlays.
type OverlayConfig struct {
	// Branching is the number of children per router (>=1).
	Branching int
	// Depth is the number of levels below the root; leaves sit at Depth.
	Depth int
	// LinkDelay is the one-way delay of each overlay hop (a GRE tunnel
	// across providers in the real systems, so tens of milliseconds).
	LinkDelay simnet.Time
	// TunnelDelay is the one-way delay of the site-to-leaf attachment.
	TunnelDelay simnet.Time
	// AddrBase allocates overlay router addresses (defaults to
	// 198.18.0.0/15, the benchmarking range).
	AddrBase netaddr.Prefix
	// NativeUplink, when set, connects the overlay root to the native
	// internet (a core node) so routers can send packets to non-overlay
	// addresses — ALT roots answer unresolvable Map-Requests natively.
	NativeUplink *simnet.Node
	// NativeDelay is the one-way delay of the uplink (defaults to
	// LinkDelay).
	NativeDelay simnet.Time
}

func (c *OverlayConfig) fill() {
	if c.Branching < 1 {
		c.Branching = 2
	}
	if c.Depth < 1 {
		c.Depth = 1
	}
	if c.AddrBase == (netaddr.Prefix{}) {
		c.AddrBase = netaddr.MustParsePrefix("198.18.0.0/15")
	}
	if c.TunnelDelay == 0 {
		c.TunnelDelay = c.LinkDelay
	}
}

// overlayRouter is one node of the shared tree.
type overlayRouter struct {
	node   *simnet.Node
	agent  *ControlAgent
	addr   netaddr.Addr
	parent *overlayRouter
	depth  int
	// table routes prefixes downward: next-hop address of the child (or
	// attached site) that announced them.
	table *netaddr.Trie[netaddr.Addr]
}

// overlayTree builds and owns the router hierarchy.
type overlayTree struct {
	sim      *simnet.Sim
	cfg      OverlayConfig
	prefix   string // node-name prefix ("alt"/"cons")
	root     *overlayRouter
	leaves   []*overlayRouter
	routers  []*overlayRouter
	nextLeaf int
	attached int
}

// Overlay hops and site tunnels each get a distinct sub-microsecond
// delay offset on top of the configured delay. Perfectly round hop
// delays make overlay round-trips land exactly on ITR retry-timer
// instants, and two events at one instant have no defined order across
// the sharded engine's partitions — physically distinct propagation
// delays keep every arrival off every timer, so the same schedule plays
// out at any shard count (cf. the jittered core-link delays in topo).
const (
	overlayHopJitter    = 271 * time.Nanosecond
	overlayTunnelJitter = 313 * time.Nanosecond
)

// buildOverlayTree constructs the tree with links and underlay routes:
// each router has host routes to its direct neighbours and a default
// route toward its parent, which is all hop-by-hop overlay forwarding
// needs.
func buildOverlayTree(sim *simnet.Sim, namePrefix string, cfg OverlayConfig) *overlayTree {
	cfg.fill()
	t := &overlayTree{sim: sim, cfg: cfg, prefix: namePrefix}
	next := 0
	alloc := func() netaddr.Addr {
		a := cfg.AddrBase.NthHost(next + 1)
		next++
		return a
	}
	var build func(parent *overlayRouter, depth, idx int) *overlayRouter
	build = func(parent *overlayRouter, depth, idx int) *overlayRouter {
		name := fmt.Sprintf("%s-%d-%d", namePrefix, depth, idx)
		r := &overlayRouter{
			node:  sim.NewNode(name),
			addr:  alloc(),
			depth: depth,
			table: netaddr.NewTrie[netaddr.Addr](),
		}
		r.node.AddAddr(r.addr)
		t.routers = append(t.routers, r)
		if parent != nil {
			r.parent = parent
			delay := cfg.LinkDelay + simnet.Time(len(t.routers))*overlayHopJitter
			l := simnet.Connect(r.node, parent.node, simnet.LinkConfig{Delay: delay})
			r.node.SetDefaultRoute(l.A())
			parent.node.AddRoute(netaddr.HostPrefix(r.addr), l.B())
			// The parent reaches deeper descendants hop-by-hop only: every
			// overlay hop re-addresses to its direct neighbour, so host
			// routes to children suffice.
		}
		if depth == cfg.Depth {
			t.leaves = append(t.leaves, r)
			return r
		}
		for c := 0; c < cfg.Branching; c++ {
			build(r, depth+1, idx*cfg.Branching+c)
		}
		return r
	}
	t.root = build(nil, 0, 0)
	if cfg.NativeUplink != nil {
		delay := cfg.NativeDelay
		if delay == 0 {
			delay = cfg.LinkDelay
		}
		l := simnet.Connect(t.root.node, cfg.NativeUplink, simnet.LinkConfig{Delay: delay})
		t.root.node.SetDefaultRoute(l.A())
	}
	return t
}

// leafForNextSite assigns sites to leaves round-robin, keeping attachment
// deterministic.
func (t *overlayTree) leafForNextSite() *overlayRouter {
	l := t.leaves[t.nextLeaf%len(t.leaves)]
	t.nextLeaf++
	return l
}

// attachSite tunnels a site's node to a leaf router and returns that leaf.
// The site gains a host route to the leaf (the "GRE tunnel") and the leaf
// gains one back.
func (t *overlayTree) attachSite(site *Site) *overlayRouter {
	leaf := t.leafForNextSite()
	delay := t.cfg.TunnelDelay + simnet.Time(t.attached)*overlayTunnelJitter
	t.attached++
	l := simnet.Connect(site.Node, leaf.node, simnet.LinkConfig{Delay: delay})
	site.Node.AddRoute(netaddr.HostPrefix(leaf.addr), l.A())
	leaf.node.AddRoute(netaddr.HostPrefix(site.Addr), l.B())
	return leaf
}

// announceUp installs prefix->via at r and propagates the announcement to
// ancestors with hop-by-hop Map-Register messages (unauthenticated:
// overlay peers are mutually trusted infrastructure in both drafts).
func (r *overlayRouter) announceUp(prefix netaddr.Prefix, via netaddr.Addr) {
	r.table.Insert(prefix, via)
	if r.parent == nil {
		return
	}
	reg := &packet.LISPMapRegister{
		Nonce:   uint64(prefix.Addr())<<8 | uint64(prefix.Bits()),
		Records: []packet.LISPMapRecord{{EIDPrefix: prefix}},
	}
	r.agent.Send(r.parent.addr, reg)
}

// onAnnounce handles an announcement from a child: record the child as
// next hop and keep propagating up.
func (r *overlayRouter) onAnnounce(src netaddr.Addr, m *packet.LISPMapRegister) {
	for _, rec := range m.Records {
		r.announceUp(rec.EIDPrefix, src)
	}
}

// routeFor returns where to forward a request for eid: the announced
// next hop below, otherwise the parent, otherwise nothing (root miss).
func (r *overlayRouter) routeFor(eid netaddr.Addr) (netaddr.Addr, bool) {
	if via, _, ok := r.table.Lookup(eid); ok {
		return via, true
	}
	if r.parent != nil {
		return r.parent.addr, true
	}
	return 0, false
}

// TableSize returns the routing table size of router index i (root is 0),
// used by the scalability experiment E7.
func (t *overlayTree) tableSize(i int) int { return t.routers[i].table.Len() }
