package mapsys

import (
	"testing"
	"time"

	"github.com/pcelisp/pcelisp/internal/lisp"
	"github.com/pcelisp/pcelisp/internal/netaddr"
	"github.com/pcelisp/pcelisp/internal/packet"
	"github.com/pcelisp/pcelisp/internal/simnet"
)

// pendingNonce reads the single outstanding nonce of a requester — the
// tests below use it to play a nonce-knowing (on-path) forger.
func pendingNonce(t *testing.T, r *Requester) uint64 {
	t.Helper()
	if len(r.pending) != 1 {
		t.Fatalf("pending resolutions = %d, want 1", len(r.pending))
	}
	for n := range r.pending {
		return n
	}
	return 0
}

// TestForgedNegativeRequiresExactNonce pins the negative-cache defense:
// a forged "no mapping" Map-Reply must not seed a negative entry unless
// its nonce matches the outstanding request — even on a sloppy requester
// that gleans unsolicited positives. Only the nonce-verified negative
// (here the authoritative one, arriving a full resolution round later)
// may complete the resolution.
func TestForgedNegativeRequiresExactNonce(t *testing.T) {
	w := newMSWorld(t, 2)
	msNode, msAddr := w.addInfraNode("ms", 1, 10*time.Millisecond)
	mrNode, mrAddr := w.addInfraNode("mr", 2, 10*time.Millisecond)
	sys := NewMSMR(msNode, msAddr, mrNode, mrAddr, testKey)
	r0 := sys.AttachSite(w.sites[0]).(*Requester)
	sys.AttachSite(w.sites[1])
	// Worst-case requester: sloppy nonce handling with gleaning enabled.
	// Negatives must still demand the exact nonce.
	r0.StrictNonce = false
	r0.OnUnsolicited = func(*lisp.MapEntry) {}
	rogue, rogueAddr := w.addInfraNode("rogue", 66, time.Millisecond)
	w.sim.RunFor(time.Second)

	eid := netaddr.MustParseAddr("100.99.0.1")
	var entry *lisp.MapEntry
	var done, ok bool
	var doneAt simnet.Time
	start := w.sim.Now()
	r0.Resolve(eid, func(e *lisp.MapEntry, success bool) {
		entry, ok, done, doneAt = e, success, true, w.sim.Now()
	})
	// Race a forged negative with a wrong nonce: it reaches the requester
	// ~17ms in, long before the authoritative negative can (>=47ms of
	// link delay alone).
	w.sim.ScheduleFunc(time.Millisecond, func() {
		rogue.SendUDP(rogueAddr, w.sites[0].Addr, packet.PortLISPControl,
			packet.PortLISPControl, &packet.LISPMapReply{Nonce: 0xbadbad})
	})
	w.sim.RunFor(20 * time.Second)
	if !done || ok || entry == nil || !entry.Negative {
		t.Fatalf("resolution = %+v ok=%v done=%v, want authoritative negative", entry, ok, done)
	}
	if forged := doneAt - start; forged < 47*time.Millisecond {
		t.Fatalf("negative completed at +%v — the forged reply short-circuited resolution", forged)
	}
	if r0.Stats.NonceMismatch != 1 {
		t.Fatalf("NonceMismatch = %d, want the forged negative counted", r0.Stats.NonceMismatch)
	}
	if r0.Stats.Negatives != 1 {
		t.Fatalf("Negatives = %d, want exactly the authoritative one", r0.Stats.Negatives)
	}

	// The converse: a negative echoing the live nonce is accepted at face
	// value (the nonce is the only authenticator without signatures) —
	// which is precisely why on-path attackers force the signature layer.
	eid2 := netaddr.MustParseAddr("100.2.0.9")
	done2 := false
	var ok2 bool
	start2 := w.sim.Now()
	var at2 simnet.Time
	r0.Resolve(eid2, func(e *lisp.MapEntry, success bool) {
		ok2, done2, at2 = success, true, w.sim.Now()
	})
	nonce := pendingNonce(t, r0)
	w.sim.ScheduleFunc(time.Millisecond, func() {
		rogue.SendUDP(rogueAddr, w.sites[0].Addr, packet.PortLISPControl,
			packet.PortLISPControl, &packet.LISPMapReply{Nonce: nonce})
	})
	w.sim.RunFor(20 * time.Second)
	if !done2 || ok2 {
		t.Fatalf("nonce-echoing forged negative not accepted: done=%v ok=%v", done2, ok2)
	}
	if at2-start2 > 30*time.Millisecond {
		t.Fatalf("forged negative landed at +%v, expected the early forged arrival", at2-start2)
	}
	if r0.Stats.Negatives != 2 {
		t.Fatalf("Negatives = %d after nonce-echoing forgery, want 2", r0.Stats.Negatives)
	}
}

// TestSloppyGleaningVersusStrictNonce pins the two requester postures
// against the same unsolicited forged positive: strict nonce echo drops
// it as a mismatch; the sloppy historical mode gleans it straight into
// the cache hook — the hole E13's off-path spoofing drives through.
func TestSloppyGleaningVersusStrictNonce(t *testing.T) {
	attack := func(strict bool) (*Requester, *lisp.MapEntry) {
		w := newMSWorld(t, 2)
		msNode, msAddr := w.addInfraNode("ms", 1, 10*time.Millisecond)
		mrNode, mrAddr := w.addInfraNode("mr", 2, 10*time.Millisecond)
		sys := NewMSMR(msNode, msAddr, mrNode, mrAddr, testKey)
		r0 := sys.AttachSite(w.sites[0]).(*Requester)
		sys.AttachSite(w.sites[1])
		var gleaned *lisp.MapEntry
		r0.StrictNonce = strict
		r0.OnUnsolicited = func(e *lisp.MapEntry) { gleaned = e }
		rogue, rogueAddr := w.addInfraNode("rogue", 66, time.Millisecond)
		w.sim.RunFor(time.Second)
		rogue.SendUDP(rogueAddr, w.sites[0].Addr, packet.PortLISPControl,
			packet.PortLISPControl, &packet.LISPMapReply{
				Nonce: 0xf00d,
				Records: []packet.LISPMapRecord{{
					EIDPrefix: w.sites[1].Prefix,
					TTL:       60,
					Locators: []packet.LISPLocator{
						{Priority: 1, Weight: 100, Reachable: true, Addr: rogueAddr},
					},
				}},
			})
		w.sim.RunFor(time.Second)
		return r0, gleaned
	}

	strict, gleaned := attack(true)
	if gleaned != nil {
		t.Fatalf("strict requester gleaned %+v", gleaned)
	}
	if strict.Stats.NonceMismatch != 1 || strict.Stats.Unsolicited != 0 {
		t.Fatalf("strict: NonceMismatch=%d Unsolicited=%d, want 1/0",
			strict.Stats.NonceMismatch, strict.Stats.Unsolicited)
	}

	sloppy, gleaned := attack(false)
	if gleaned == nil {
		t.Fatal("sloppy requester did not glean the unsolicited reply")
	}
	if gleaned.Locators[0].Addr != netaddr.AddrFrom4(198, 51, 66, 1) {
		t.Fatalf("gleaned locator = %v, want the rogue's", gleaned.Locators[0].Addr)
	}
	if sloppy.Stats.Unsolicited != 1 {
		t.Fatalf("sloppy: Unsolicited = %d, want 1", sloppy.Stats.Unsolicited)
	}
}

// TestSignedRepliesDefeatNonceKnowingForger pins the signature layer: a
// forger who echoes the live nonce (an on-path observer) still fails
// against a requester that demands the reply-plane HMAC, and the
// resolution completes with the legitimate, signed answer.
func TestSignedRepliesDefeatNonceKnowingForger(t *testing.T) {
	signKey := []byte("reply-plane-key")
	w := newMSWorld(t, 2)
	msNode, msAddr := w.addInfraNode("ms", 1, 10*time.Millisecond)
	mrNode, mrAddr := w.addInfraNode("mr", 2, 10*time.Millisecond)
	sys := NewMSMR(msNode, msAddr, mrNode, mrAddr, testKey)
	sys.MS.ReplySignKey = signKey
	for _, site := range w.sites {
		site.ReplySignKey = signKey
	}
	r0 := sys.AttachSite(w.sites[0]).(*Requester)
	sys.AttachSite(w.sites[1])
	r0.VerifyKey = signKey
	rogue, rogueAddr := w.addInfraNode("rogue", 66, time.Millisecond)
	w.sim.RunFor(time.Second)

	eid := netaddr.MustParseAddr("100.2.0.9")
	var entry *lisp.MapEntry
	var ok bool
	r0.Resolve(eid, func(e *lisp.MapEntry, success bool) { entry, ok = e, success })
	nonce := pendingNonce(t, r0)
	w.sim.ScheduleFunc(time.Millisecond, func() {
		rogue.SendUDP(rogueAddr, w.sites[0].Addr, packet.PortLISPControl,
			packet.PortLISPControl, &packet.LISPMapReply{
				Nonce: nonce,
				Records: []packet.LISPMapRecord{{
					EIDPrefix: w.sites[1].Prefix,
					TTL:       60,
					Locators: []packet.LISPLocator{
						{Priority: 1, Weight: 100, Reachable: true, Addr: rogueAddr},
					},
				}},
			})
	})
	w.sim.RunFor(20 * time.Second)
	if r0.Stats.AuthRejects != 1 {
		t.Fatalf("AuthRejects = %d, want the unsigned forgery rejected", r0.Stats.AuthRejects)
	}
	if !ok || entry == nil {
		t.Fatalf("legitimate signed resolution failed: %+v ok=%v", entry, ok)
	}
	if entry.Locators[0].Addr != w.sites[1].Addr {
		t.Fatalf("locator = %v, want the legitimate ETR %v", entry.Locators[0].Addr, w.sites[1].Addr)
	}
}
