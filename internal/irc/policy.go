package irc

import "sort"

// MinLatency prefers the lowest-latency provider, keeping the others as
// backups one priority level down.
type MinLatency struct{}

// Name implements Policy.
func (MinLatency) Name() string { return "min-latency" }

// Rank implements Policy.
func (MinLatency) Rank(providers []ProviderState) []Choice {
	if len(providers) == 0 {
		return nil
	}
	best := 0
	for i, p := range providers {
		if p.LatencyMs < providers[best].LatencyMs {
			best = i
		}
	}
	out := []Choice{{Index: providers[best].Index, Priority: 1, Weight: 100}}
	for i, p := range providers {
		if i != best {
			out = append(out, Choice{Index: p.Index, Priority: 2, Weight: 100})
		}
	}
	return out
}

// LoadBalance splits traffic across providers proportionally to residual
// capacity, the classic IRC utilization-balancing behaviour the paper's
// TE claims build on.
type LoadBalance struct{}

// Name implements Policy.
func (LoadBalance) Name() string { return "load-balance" }

// Rank implements Policy.
func (LoadBalance) Rank(providers []ProviderState) []Choice {
	if len(providers) == 0 {
		return nil
	}
	// Residual capacity share; floor at 5% so a saturated provider still
	// receives a trickle and its recovery is observable.
	weights := make([]float64, len(providers))
	var total float64
	for i, p := range providers {
		residual := (1 - p.EgressUtil) * float64(p.CapacityBps)
		if residual < 0.05*float64(p.CapacityBps) {
			residual = 0.05 * float64(p.CapacityBps)
		}
		weights[i] = residual
		total += residual
	}
	out := make([]Choice, len(providers))
	for i, p := range providers {
		w := int(weights[i] / total * 100)
		if w < 1 {
			w = 1
		}
		if w > 255 {
			w = 255
		}
		out[i] = Choice{Index: p.Index, Priority: 1, Weight: uint8(w)}
	}
	return out
}

// CostAware fills providers from cheapest to most expensive, spilling to
// the next tier when a provider crosses the spill threshold.
type CostAware struct {
	// SpillAt is the utilization above which traffic spills to the next
	// cheapest provider (default 0.8).
	SpillAt float64
}

// Name implements Policy.
func (CostAware) Name() string { return "cost-aware" }

// Rank implements Policy.
func (c CostAware) Rank(providers []ProviderState) []Choice {
	if len(providers) == 0 {
		return nil
	}
	spill := c.SpillAt
	if spill == 0 {
		spill = 0.8
	}
	byCost := append([]ProviderState(nil), providers...)
	sort.SliceStable(byCost, func(i, j int) bool {
		if byCost[i].CostPerMbps != byCost[j].CostPerMbps {
			return byCost[i].CostPerMbps < byCost[j].CostPerMbps
		}
		return byCost[i].Index < byCost[j].Index
	})
	out := make([]Choice, 0, len(byCost))
	prio := uint8(1)
	for _, p := range byCost {
		if p.EgressUtil >= spill {
			// Saturated cheap provider: keep it at this priority with low
			// weight and open the next tier.
			out = append(out, Choice{Index: p.Index, Priority: prio, Weight: 5})
			prio++
			continue
		}
		out = append(out, Choice{Index: p.Index, Priority: prio, Weight: 100})
		prio++
	}
	// The cheapest unsaturated provider ends up with the lowest priority
	// value; others are spill tiers.
	return out
}

// EqualSplit spreads traffic evenly — the reference point TE experiments
// compare against.
type EqualSplit struct{}

// Name implements Policy.
func (EqualSplit) Name() string { return "equal-split" }

// Rank implements Policy.
func (EqualSplit) Rank(providers []ProviderState) []Choice {
	return equalSplit(providers)
}

// WeightTable announces an explicit priority/weight vector, indexed by
// provider — how the closed-loop TE optimizer's solved splits drive the
// engine. Choices for providers that are currently down are dropped (the
// engine pre-filters them from the snapshot); an empty survivor set
// falls back to the engine's equal split.
type WeightTable struct {
	// Choices is the vector to announce, in the desired order.
	Choices []Choice
}

// Name implements Policy.
func (WeightTable) Name() string { return "weight-table" }

// Rank implements Policy.
func (t WeightTable) Rank(providers []ProviderState) []Choice {
	up := make(map[int]bool, len(providers))
	for _, p := range providers {
		up[p.Index] = true
	}
	out := make([]Choice, 0, len(t.Choices))
	for _, c := range t.Choices {
		if up[c.Index] {
			out = append(out, c)
		}
	}
	return out
}

// Pinned always selects one provider — how the symmetric-LISP baseline
// behaves when the ITR is fixed (claim iii's foil).
type Pinned struct {
	// Index is the pinned provider.
	Index int
}

// Name implements Policy.
func (Pinned) Name() string { return "pinned" }

// Rank implements Policy.
func (p Pinned) Rank(providers []ProviderState) []Choice {
	for _, s := range providers {
		if s.Index == p.Index {
			return []Choice{{Index: s.Index, Priority: 1, Weight: 100}}
		}
	}
	return nil
}
