// Package irc implements the Intelligent Route Control engine the paper
// leans on twice: in step 1, PCES computes the local (ingress) RLOC for
// the reverse direction of a new flow "based on TE constraints ... the
// algorithms used to determine the ingress RLOC are inherently the same
// used today by Intelligent Route Control (IRC) techniques"; and in step
// 6, the egress mapping PCED hands out "is made by an online IRC engine
// running in background, so the mapping is always known aforehand".
//
// The engine watches the domain's provider links (EWMA-smoothed latency
// and measured utilization), applies a pluggable ranking policy, and keeps
// a precomputed locator set ready so the PCE answers at line rate.
package irc

import (
	"fmt"
	"time"

	"github.com/pcelisp/pcelisp/internal/netaddr"
	"github.com/pcelisp/pcelisp/internal/packet"
	"github.com/pcelisp/pcelisp/internal/runtime"
	"github.com/pcelisp/pcelisp/internal/simnet"
)

// EWMA is an exponentially weighted moving average.
type EWMA struct {
	alpha float64
	value float64
	ready bool
}

// NewEWMA builds an EWMA with smoothing factor alpha in (0,1]; higher
// alpha weights recent samples more.
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha > 1 {
		panic(fmt.Sprintf("irc: bad EWMA alpha %v", alpha))
	}
	return &EWMA{alpha: alpha}
}

// Update folds in a sample.
func (e *EWMA) Update(x float64) {
	if !e.ready {
		e.value, e.ready = x, true
		return
	}
	e.value = e.alpha*x + (1-e.alpha)*e.value
}

// Value returns the current average (0 before any sample).
func (e *EWMA) Value() float64 { return e.value }

// Ready reports whether at least one sample arrived.
func (e *EWMA) Ready() bool { return e.ready }

// Provider describes one upstream link of a multihomed domain.
type Provider struct {
	// Name labels the provider in tables ("Provider A").
	Name string
	// RLOC is the locator address traffic uses via this provider.
	RLOC netaddr.Addr
	// Egress is the interface carrying outbound traffic to the provider;
	// its counters feed the utilization estimate.
	Egress *simnet.Iface
	// CapacityBps is the provisioned capacity in bits per second.
	CapacityBps int64
	// CostPerMbps is the billing rate for the cost-aware policy.
	CostPerMbps float64
	// BaseLatency seeds the latency estimate before measurements arrive.
	BaseLatency simnet.Time
}

// ProviderState is a point-in-time snapshot handed to policies.
type ProviderState struct {
	// Index is the provider's position in the engine's provider list.
	Index int
	// Name and RLOC identify the provider.
	Name string
	RLOC netaddr.Addr
	// LatencyMs is the smoothed one-way latency estimate.
	LatencyMs float64
	// EgressUtil and IngressUtil are fractions of capacity in [0,1+).
	EgressUtil, IngressUtil float64
	// CapacityBps and CostPerMbps echo the configuration.
	CapacityBps int64
	CostPerMbps float64
	// Up is false while the provider is administratively or
	// observationally down; policies must skip it.
	Up bool
}

// Choice is one ranked locator produced by a policy.
type Choice struct {
	// Index is the chosen provider's index.
	Index int
	// Priority and Weight follow LISP locator semantics: lower priority
	// preferred, weights split within a priority level.
	Priority uint8
	Weight   uint8
}

// Policy ranks providers for a traffic direction.
type Policy interface {
	// Name labels the policy in experiment tables.
	Name() string
	// Rank returns the locator choices given provider snapshots. Down
	// providers are pre-filtered. An empty result means "no preference":
	// the engine falls back to equal split.
	Rank(providers []ProviderState) []Choice
}

// monState tracks per-provider measurement state.
type monState struct {
	latency     *EWMA
	egressUtil  *EWMA
	ingressUtil *EWMA
	lastTxBytes uint64
	lastRxBytes uint64
	up          bool
}

// Engine is a per-domain IRC engine.
type Engine struct {
	rt        runtime.Runtime
	providers []*Provider
	policy    Policy
	mon       []*monState

	// SampleInterval is the utilization sampling period (default 1s).
	SampleInterval simnet.Time

	// OnRecompute, when set, fires after every background recomputation —
	// the PCE uses it to know fresh mappings are available.
	OnRecompute func()

	egress  []packet.LISPLocator // precomputed egress locator set
	ingress []Choice             // precomputed ingress ranking

	// Stats counts engine activity.
	Stats EngineStats
}

// EngineStats counts engine activity.
type EngineStats struct {
	Samples    uint64
	Recomputes uint64
	Failovers  uint64
}

// NewEngine builds an engine over the given providers with a policy. It
// takes the runtime contract, so the same engine samples under the sim
// (pass the *simnet.Sim) and under the daemon's real-time loop.
func NewEngine(rt runtime.Runtime, providers []*Provider, policy Policy) *Engine {
	if len(providers) == 0 {
		panic("irc: engine needs at least one provider")
	}
	e := &Engine{
		rt:             rt,
		providers:      providers,
		policy:         policy,
		SampleInterval: time.Second,
	}
	for _, p := range providers {
		ms := &monState{
			latency:     NewEWMA(0.3),
			egressUtil:  NewEWMA(0.5),
			ingressUtil: NewEWMA(0.5),
			up:          true,
		}
		ms.latency.Update(float64(p.BaseLatency) / float64(time.Millisecond))
		e.mon = append(e.mon, ms)
	}
	e.recompute()
	return e
}

// Start begins background sampling and recomputation, the paper's "online
// IRC engine running in background".
func (e *Engine) Start() {
	e.sampleAndRecompute()
}

func (e *Engine) sampleAndRecompute() {
	e.Sample()
	e.recompute()
	e.rt.ScheduleTimer(e.SampleInterval, e, simnet.TimerArg{})
}

// OnTimer implements simnet.TimerHandler: the background sampling tick.
func (e *Engine) OnTimer(simnet.TimerArg) { e.sampleAndRecompute() }

// Sample reads link counters once and updates utilization estimates.
func (e *Engine) Sample() {
	e.Stats.Samples++
	dt := float64(e.SampleInterval) / float64(time.Second)
	for i, p := range e.providers {
		ms := e.mon[i]
		if p.Egress == nil || p.CapacityBps == 0 {
			continue
		}
		// Offered load on purpose (TxBytes, not DeliveredBytes): the
		// engine ranks providers by pressure on the link, and offered
		// load is the overload signal — goodput saturates at capacity.
		// The te.Tracker reads goodput for the experiment figures.
		tx := p.Egress.Counters().TxBytes
		rx := p.Egress.Peer().Counters().TxBytes
		if e.Stats.Samples > 1 {
			ms.egressUtil.Update(float64(tx-ms.lastTxBytes) * 8 / dt / float64(p.CapacityBps))
			ms.ingressUtil.Update(float64(rx-ms.lastRxBytes) * 8 / dt / float64(p.CapacityBps))
		}
		ms.lastTxBytes, ms.lastRxBytes = tx, rx
	}
}

// ReportLatency feeds a latency measurement for a provider (e.g. from
// control-plane RTTs observed by the PCE).
func (e *Engine) ReportLatency(index int, d simnet.Time) {
	e.mon[index].latency.Update(float64(d) / float64(time.Millisecond))
}

// SetProviderUp marks a provider usable or failed. Marking the active
// provider down triggers immediate recomputation — IRC failover.
func (e *Engine) SetProviderUp(index int, up bool) {
	if e.mon[index].up == up {
		return
	}
	e.mon[index].up = up
	if !up {
		e.Stats.Failovers++
	}
	e.recompute()
}

// Snapshot returns current provider states in index order.
func (e *Engine) Snapshot() []ProviderState {
	out := make([]ProviderState, len(e.providers))
	for i, p := range e.providers {
		ms := e.mon[i]
		out[i] = ProviderState{
			Index: i, Name: p.Name, RLOC: p.RLOC,
			LatencyMs:   ms.latency.Value(),
			EgressUtil:  ms.egressUtil.Value(),
			IngressUtil: ms.ingressUtil.Value(),
			CapacityBps: p.CapacityBps,
			CostPerMbps: p.CostPerMbps,
			Up:          ms.up,
		}
	}
	return out
}

func (e *Engine) recompute() {
	e.Stats.Recomputes++
	states := make([]ProviderState, 0, len(e.providers))
	for _, s := range e.Snapshot() {
		if s.Up {
			states = append(states, s)
		}
	}
	if len(states) == 0 {
		e.egress, e.ingress = nil, nil
		return
	}
	choices := e.policy.Rank(states)
	if len(choices) == 0 {
		choices = equalSplit(states)
	}
	e.ingress = choices
	e.egress = e.choicesToLocators(choices)
	if e.OnRecompute != nil {
		e.OnRecompute()
	}
}

func (e *Engine) choicesToLocators(choices []Choice) []packet.LISPLocator {
	out := make([]packet.LISPLocator, 0, len(choices))
	for _, c := range choices {
		out = append(out, packet.LISPLocator{
			Priority: c.Priority, Weight: c.Weight,
			Local: true, Reachable: true,
			Addr: e.providers[c.Index].RLOC,
		})
	}
	return out
}

// MappingLocators returns the precomputed locator set advertising how
// this domain wants to be reached — what PCED embeds in the encapsulated
// DNS reply ("the mapping is always known aforehand"). The slice is
// shared; callers must not mutate it.
func (e *Engine) MappingLocators() []packet.LISPLocator { return e.egress }

// IngressRLOC picks the inbound locator for a new flow (the paper's step
// 1): the best-priority choice, weighted by the flow hash so concurrent
// flows spread per the policy's weights.
func (e *Engine) IngressRLOC(flowHash uint64) (netaddr.Addr, bool) {
	if len(e.ingress) == 0 {
		return 0, false
	}
	best := e.ingress[0].Priority
	var total uint32
	for _, c := range e.ingress {
		if c.Priority != best {
			continue
		}
		w := uint32(c.Weight)
		if w == 0 {
			w = 1
		}
		total += w
	}
	target := uint32(flowHash % uint64(total))
	for _, c := range e.ingress {
		if c.Priority != best {
			continue
		}
		w := uint32(c.Weight)
		if w == 0 {
			w = 1
		}
		if target < w {
			return e.providers[c.Index].RLOC, true
		}
		target -= w
	}
	return e.providers[e.ingress[0].Index].RLOC, true
}

// Providers returns the configured providers.
func (e *Engine) Providers() []*Provider { return e.providers }

// Policy returns the active policy.
func (e *Engine) Policy() Policy { return e.policy }

// SetPolicy swaps the policy and recomputes.
func (e *Engine) SetPolicy(p Policy) {
	e.policy = p
	e.recompute()
}

func equalSplit(states []ProviderState) []Choice {
	out := make([]Choice, len(states))
	for i, s := range states {
		out[i] = Choice{Index: s.Index, Priority: 1, Weight: uint8(100 / len(states))}
	}
	return out
}
