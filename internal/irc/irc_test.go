package irc

import (
	"testing"
	"time"

	"github.com/pcelisp/pcelisp/internal/netaddr"
	"github.com/pcelisp/pcelisp/internal/packet"
	"github.com/pcelisp/pcelisp/internal/simnet"
)

func TestEWMA(t *testing.T) {
	e := NewEWMA(0.5)
	if e.Ready() || e.Value() != 0 {
		t.Fatal("fresh EWMA must be unready and zero")
	}
	e.Update(10)
	if !e.Ready() || e.Value() != 10 {
		t.Fatalf("first sample = %v", e.Value())
	}
	e.Update(20)
	if e.Value() != 15 {
		t.Fatalf("after 20: %v", e.Value())
	}
	e.Update(15)
	if e.Value() != 15 {
		t.Fatalf("after 15: %v", e.Value())
	}
}

func TestEWMABadAlphaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("alpha 0 must panic")
		}
	}()
	NewEWMA(0)
}

// twoProviderWorld builds a domain node with two provider links of given
// rates, returning the engine providers wired to real interfaces.
func twoProviderWorld(t testing.TB, rateA, rateB int64) (*simnet.Sim, *simnet.Node, []*Provider) {
	t.Helper()
	s := simnet.New(1)
	dom := s.NewNode("domain")
	provA := s.NewNode("provA")
	provB := s.NewNode("provB")
	la := simnet.Connect(dom, provA, simnet.LinkConfig{Delay: 10 * time.Millisecond, RateBps: rateA})
	lb := simnet.Connect(dom, provB, simnet.LinkConfig{Delay: 30 * time.Millisecond, RateBps: rateB})
	la.A().SetAddr(netaddr.MustParseAddr("10.0.0.1"))
	la.B().SetAddr(netaddr.MustParseAddr("10.0.0.2"))
	lb.A().SetAddr(netaddr.MustParseAddr("11.0.0.1"))
	lb.B().SetAddr(netaddr.MustParseAddr("11.0.0.2"))
	dom.AddRoute(netaddr.MustParsePrefix("10.0.0.0/8"), la.A())
	dom.AddRoute(netaddr.MustParsePrefix("11.0.0.0/8"), lb.A())
	providers := []*Provider{
		{Name: "A", RLOC: netaddr.MustParseAddr("10.0.0.1"), Egress: la.A(),
			CapacityBps: rateA, CostPerMbps: 1, BaseLatency: 10 * time.Millisecond},
		{Name: "B", RLOC: netaddr.MustParseAddr("11.0.0.1"), Egress: lb.A(),
			CapacityBps: rateB, CostPerMbps: 3, BaseLatency: 30 * time.Millisecond},
	}
	return s, dom, providers
}

func TestEngineMinLatency(t *testing.T) {
	s, _, providers := twoProviderWorld(t, 1e6, 1e6)
	e := NewEngine(s, providers, MinLatency{})
	locs := e.MappingLocators()
	if len(locs) != 2 {
		t.Fatalf("locators = %d", len(locs))
	}
	if locs[0].Addr != providers[0].RLOC || locs[0].Priority != 1 {
		t.Fatalf("primary = %+v", locs[0])
	}
	if locs[1].Priority != 2 {
		t.Fatalf("backup = %+v", locs[1])
	}
	// New latency reports flip the preference.
	e.ReportLatency(0, 100*time.Millisecond)
	e.ReportLatency(0, 100*time.Millisecond)
	e.ReportLatency(0, 100*time.Millisecond)
	e.SetPolicy(MinLatency{}) // force recompute
	if got := e.MappingLocators()[0].Addr; got != providers[1].RLOC {
		t.Fatalf("after degradation primary = %v", got)
	}
}

func TestEngineFailover(t *testing.T) {
	s, _, providers := twoProviderWorld(t, 1e6, 1e6)
	e := NewEngine(s, providers, MinLatency{})
	e.SetProviderUp(0, false)
	locs := e.MappingLocators()
	if len(locs) != 1 || locs[0].Addr != providers[1].RLOC {
		t.Fatalf("failover locators = %+v", locs)
	}
	if e.Stats.Failovers != 1 {
		t.Fatalf("failovers = %d", e.Stats.Failovers)
	}
	// Idempotent down, then recovery.
	e.SetProviderUp(0, false)
	if e.Stats.Failovers != 1 {
		t.Fatal("repeated down must not double count")
	}
	e.SetProviderUp(0, true)
	if len(e.MappingLocators()) != 2 {
		t.Fatal("recovery must restore both providers")
	}
	// All providers down: no locators.
	e.SetProviderUp(0, false)
	e.SetProviderUp(1, false)
	if e.MappingLocators() != nil {
		t.Fatal("all-down must yield no locators")
	}
	if _, ok := e.IngressRLOC(1); ok {
		t.Fatal("all-down must yield no ingress RLOC")
	}
}

func TestEngineUtilizationSampling(t *testing.T) {
	s, dom, providers := twoProviderWorld(t, 800_000, 800_000)
	e := NewEngine(s, providers, LoadBalance{})
	e.Start()
	// Drive ~50% load through provider A: 800kbps link, send 50kB/s.
	payload := make([]byte, 1000)
	var pump func()
	pump = func() {
		for i := 0; i < 50; i++ {
			dom.SendUDP(providers[0].RLOC, netaddr.MustParseAddr("10.0.0.2"), 1, 2, packet.Payload(payload))
		}
		s.ScheduleFunc(time.Second, pump)
	}
	s.ScheduleFunc(0, pump)
	s.RunUntil(10 * time.Second)
	st := e.Snapshot()
	if st[0].EgressUtil < 0.4 || st[0].EgressUtil > 0.65 {
		t.Fatalf("provider A egress util = %v, want ~0.5", st[0].EgressUtil)
	}
	if st[1].EgressUtil > 0.05 {
		t.Fatalf("provider B egress util = %v, want ~0", st[1].EgressUtil)
	}
	// LoadBalance must now weight B over A.
	locs := e.MappingLocators()
	var wA, wB uint8
	for _, l := range locs {
		switch l.Addr {
		case providers[0].RLOC:
			wA = l.Weight
		case providers[1].RLOC:
			wB = l.Weight
		}
	}
	if wB <= wA {
		t.Fatalf("load balance weights: A=%d B=%d, want B heavier", wA, wB)
	}
}

func TestIngressRLOCWeightedSpread(t *testing.T) {
	s, _, providers := twoProviderWorld(t, 1e6, 1e6)
	e := NewEngine(s, providers, EqualSplit{})
	counts := map[netaddr.Addr]int{}
	for h := uint64(0); h < 1000; h++ {
		rloc, ok := e.IngressRLOC(h * 2654435761)
		if !ok {
			t.Fatal("no ingress RLOC")
		}
		counts[rloc]++
	}
	if counts[providers[0].RLOC] < 350 || counts[providers[0].RLOC] > 650 {
		t.Fatalf("ingress spread = %v", counts)
	}
}

func TestCostAwareSpill(t *testing.T) {
	cheap := ProviderState{Index: 0, Name: "cheap", CostPerMbps: 1, Up: true}
	pricey := ProviderState{Index: 1, Name: "pricey", CostPerMbps: 5, Up: true}
	p := CostAware{SpillAt: 0.8}

	// Below the spill point the cheap provider carries priority 1.
	out := p.Rank([]ProviderState{pricey, cheap})
	if out[0].Index != 0 || out[0].Priority != 1 || out[0].Weight != 100 {
		t.Fatalf("unsaturated rank = %+v", out)
	}
	// Saturated cheap provider spills: pricey gets the real weight at the
	// next tier.
	cheap.EgressUtil = 0.9
	out = p.Rank([]ProviderState{pricey, cheap})
	if out[0].Index != 0 || out[0].Weight != 5 {
		t.Fatalf("saturated cheap = %+v", out[0])
	}
	if out[1].Index != 1 || out[1].Priority != 2 || out[1].Weight != 100 {
		t.Fatalf("spill target = %+v", out[1])
	}
}

func TestPinnedPolicy(t *testing.T) {
	s, _, providers := twoProviderWorld(t, 1e6, 1e6)
	e := NewEngine(s, providers, Pinned{Index: 1})
	locs := e.MappingLocators()
	if len(locs) != 1 || locs[0].Addr != providers[1].RLOC {
		t.Fatalf("pinned locators = %+v", locs)
	}
	// Pinned provider down: Rank returns nil, engine falls back to equal
	// split over the survivors.
	e.SetProviderUp(1, false)
	locs = e.MappingLocators()
	if len(locs) != 1 || locs[0].Addr != providers[0].RLOC {
		t.Fatalf("pinned fallback = %+v", locs)
	}
}

func TestPolicyNames(t *testing.T) {
	cases := map[string]Policy{
		"min-latency":  MinLatency{},
		"load-balance": LoadBalance{},
		"cost-aware":   CostAware{},
		"equal-split":  EqualSplit{},
		"pinned":       Pinned{},
	}
	for want, p := range cases {
		if p.Name() != want {
			t.Errorf("%T.Name() = %q", p, p.Name())
		}
	}
}

func TestOnRecomputeHook(t *testing.T) {
	s, _, providers := twoProviderWorld(t, 1e6, 1e6)
	e := NewEngine(s, providers, EqualSplit{})
	fired := 0
	e.OnRecompute = func() { fired++ }
	e.SetPolicy(MinLatency{})
	if fired != 1 {
		t.Fatalf("OnRecompute fired %d times", fired)
	}
}

func TestEngineRequiresProviders(t *testing.T) {
	s := simnet.New(1)
	defer func() {
		if recover() == nil {
			t.Fatal("empty provider list must panic")
		}
	}()
	NewEngine(s, nil, EqualSplit{})
}
