package netaddr

import (
	"testing"
	"testing/quick"
)

func TestAddrFrom4(t *testing.T) {
	a := AddrFrom4(192, 0, 2, 1)
	if got := a.String(); got != "192.0.2.1" {
		t.Fatalf("String() = %q, want 192.0.2.1", got)
	}
	if o := a.Octets(); o != [4]byte{192, 0, 2, 1} {
		t.Fatalf("Octets() = %v", o)
	}
}

func TestParseAddr(t *testing.T) {
	cases := []struct {
		in   string
		want Addr
		ok   bool
	}{
		{"0.0.0.0", 0, true},
		{"255.255.255.255", 0xffffffff, true},
		{"10.0.0.1", AddrFrom4(10, 0, 0, 1), true},
		{"1.2.3", 0, false},
		{"1.2.3.4.5", 0, false},
		{"256.0.0.1", 0, false},
		{"-1.0.0.1", 0, false},
		{"01.0.0.1", 0, false}, // leading zero rejected
		{"a.b.c.d", 0, false},
		{"", 0, false},
	}
	for _, c := range cases {
		got, err := ParseAddr(c.in)
		if (err == nil) != c.ok {
			t.Errorf("ParseAddr(%q) err = %v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && got != c.want {
			t.Errorf("ParseAddr(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestParseAddrRoundTrip(t *testing.T) {
	f := func(u uint32) bool {
		a := Addr(u)
		back, err := ParseAddr(a.String())
		return err == nil && back == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddrBytesRoundTrip(t *testing.T) {
	f := func(u uint32) bool {
		a := Addr(u)
		b := a.AppendBytes(nil)
		if len(b) != 4 {
			return false
		}
		var fixed [4]byte
		a.PutBytes(fixed[:])
		return AddrFromBytes(b) == a && AddrFromBytes(fixed[:]) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddrPredicates(t *testing.T) {
	if Addr(0).IsValid() {
		t.Error("0.0.0.0 must be invalid")
	}
	if !MustParseAddr("10.0.0.1").IsValid() {
		t.Error("10.0.0.1 must be valid")
	}
	if !MustParseAddr("224.0.0.1").IsMulticast() {
		t.Error("224.0.0.1 must be multicast")
	}
	if !MustParseAddr("239.255.255.255").IsMulticast() {
		t.Error("239.255.255.255 must be multicast")
	}
	if MustParseAddr("223.255.255.255").IsMulticast() {
		t.Error("223.255.255.255 must not be multicast")
	}
	if MustParseAddr("240.0.0.0").IsMulticast() {
		t.Error("240.0.0.0 must not be multicast")
	}
}

func TestAddrNextAndLess(t *testing.T) {
	a := MustParseAddr("10.0.0.1")
	if a.Next() != MustParseAddr("10.0.0.2") {
		t.Errorf("Next() = %v", a.Next())
	}
	if !a.Less(a.Next()) || a.Next().Less(a) {
		t.Error("Less ordering broken")
	}
}

func TestParsePrefix(t *testing.T) {
	cases := []struct {
		in   string
		want string
		ok   bool
	}{
		{"10.0.0.0/8", "10.0.0.0/8", true},
		{"10.1.2.3/8", "10.0.0.0/8", true}, // host bits masked off
		{"192.0.2.1/32", "192.0.2.1/32", true},
		{"0.0.0.0/0", "0.0.0.0/0", true},
		{"10.0.0.0/33", "", false},
		{"10.0.0.0/-1", "", false},
		{"10.0.0.0", "", false},
		{"bogus/8", "", false},
	}
	for _, c := range cases {
		got, err := ParsePrefix(c.in)
		if (err == nil) != c.ok {
			t.Errorf("ParsePrefix(%q) err = %v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && got.String() != c.want {
			t.Errorf("ParsePrefix(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestPrefixContains(t *testing.T) {
	p := MustParsePrefix("10.0.0.0/8")
	if !p.Contains(MustParseAddr("10.255.0.1")) {
		t.Error("10/8 must contain 10.255.0.1")
	}
	if p.Contains(MustParseAddr("11.0.0.1")) {
		t.Error("10/8 must not contain 11.0.0.1")
	}
	all := MustParsePrefix("0.0.0.0/0")
	if !all.Contains(MustParseAddr("203.0.113.9")) {
		t.Error("default route contains everything")
	}
	host := HostPrefix(MustParseAddr("192.0.2.7"))
	if !host.Contains(MustParseAddr("192.0.2.7")) || host.Contains(MustParseAddr("192.0.2.8")) {
		t.Error("host prefix must contain exactly itself")
	}
}

func TestPrefixContainsMaskConsistency(t *testing.T) {
	f := func(u uint32, v uint32, bits uint8) bool {
		b := int(bits % 33)
		p := PrefixFrom(Addr(u), b)
		a := Addr(v)
		// Contains must agree with prefix-of-masked-address equality.
		want := PrefixFrom(a, b).Addr() == p.Addr()
		return p.Contains(a) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPrefixOverlaps(t *testing.T) {
	p8 := MustParsePrefix("10.0.0.0/8")
	p16 := MustParsePrefix("10.5.0.0/16")
	q := MustParsePrefix("11.0.0.0/8")
	if !p8.Overlaps(p16) || !p16.Overlaps(p8) {
		t.Error("nested prefixes overlap")
	}
	if p8.Overlaps(q) || q.Overlaps(p8) {
		t.Error("disjoint prefixes must not overlap")
	}
	if !p8.Overlaps(p8) {
		t.Error("prefix overlaps itself")
	}
}

func TestPrefixSupernet(t *testing.T) {
	p := MustParsePrefix("10.128.0.0/9")
	if got := p.Supernet(); got != MustParsePrefix("10.0.0.0/8") {
		t.Errorf("Supernet = %v", got)
	}
	def := MustParsePrefix("0.0.0.0/0")
	if def.Supernet() != def {
		t.Error("supernet of /0 is /0")
	}
}

func TestPrefixNthHost(t *testing.T) {
	p := MustParsePrefix("10.0.0.0/24")
	if got := p.NthHost(5); got != MustParseAddr("10.0.0.5") {
		t.Errorf("NthHost(5) = %v", got)
	}
	if got := HostPrefix(MustParseAddr("10.0.0.9")).NthHost(0); got != MustParseAddr("10.0.0.9") {
		t.Errorf("NthHost(0) of /32 = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("NthHost out of range must panic")
		}
	}()
	p.NthHost(256)
}

func TestPrefixSubnet(t *testing.T) {
	p := MustParsePrefix("10.0.0.0/8")
	if got := p.Subnet(24, 5); got != MustParsePrefix("10.0.5.0/24") {
		t.Errorf("Subnet(24,5) = %v", got)
	}
	if got := p.Subnet(8, 0); got != p {
		t.Errorf("Subnet(8,0) = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("Subnet with shorter newBits must panic")
		}
	}()
	p.Subnet(4, 0)
}

func TestPrefixSubnetIndexRange(t *testing.T) {
	p := MustParsePrefix("10.0.0.0/8")
	defer func() {
		if recover() == nil {
			t.Error("Subnet index overflow must panic")
		}
	}()
	p.Subnet(9, 2) // only indexes 0 and 1 fit
}

func TestPrefixIsSingleIP(t *testing.T) {
	if !HostPrefix(MustParseAddr("1.2.3.4")).IsSingleIP() {
		t.Error("/32 is a single IP")
	}
	if MustParsePrefix("1.2.3.0/24").IsSingleIP() {
		t.Error("/24 is not a single IP")
	}
}
