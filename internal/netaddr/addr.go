// Package netaddr provides the IPv4 address, prefix and longest-prefix-match
// primitives used throughout the LISP/PCE control-plane reproduction.
//
// LISP (draft-farinacci-lisp-08) separates Endpoint Identifiers (EIDs) from
// Routing Locators (RLOCs); both are plain IPv4 addresses drawn from
// disjoint prefixes. This package deliberately implements IPv4 only — the
// paper, its examples (10.0.0.0/8 … 13.0.0.0/8) and the 2008-era drafts are
// all IPv4 — and keeps Addr a comparable value type so it can key maps and
// ride inside packets without allocation.
package netaddr

import (
	"fmt"
	"strconv"
	"strings"
)

// Addr is an IPv4 address stored in host byte order. The zero value is the
// unspecified address 0.0.0.0, which is treated as invalid almost
// everywhere.
type Addr uint32

// AddrFrom4 builds an Addr from four octets, a.b.c.d.
func AddrFrom4(a, b, c, d byte) Addr {
	return Addr(uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d))
}

// AddrFromBytes decodes a 4-byte big-endian slice. It panics if b is shorter
// than 4 bytes; callers decode from fixed-size packet fields.
func AddrFromBytes(b []byte) Addr {
	_ = b[3]
	return Addr(uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3]))
}

// ParseAddr parses dotted-quad notation ("192.0.2.1").
func ParseAddr(s string) (Addr, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return 0, fmt.Errorf("netaddr: %q is not dotted-quad", s)
	}
	var a Addr
	for _, p := range parts {
		n, err := strconv.Atoi(p)
		if err != nil || n < 0 || n > 255 || (len(p) > 1 && p[0] == '0') {
			return 0, fmt.Errorf("netaddr: %q is not dotted-quad", s)
		}
		a = a<<8 | Addr(n)
	}
	return a, nil
}

// MustParseAddr is ParseAddr for constants in tests and topology builders;
// it panics on malformed input.
func MustParseAddr(s string) Addr {
	a, err := ParseAddr(s)
	if err != nil {
		panic(err)
	}
	return a
}

// IsValid reports whether a is a usable unicast address (not 0.0.0.0).
func (a Addr) IsValid() bool { return a != 0 }

// IsMulticast reports whether a falls in 224.0.0.0/4. The PCE control plane
// uses a multicast group to distribute reverse mappings among sibling ETRs.
func (a Addr) IsMulticast() bool { return a>>28 == 0xe }

// Octets returns the four address bytes, most significant first.
func (a Addr) Octets() [4]byte {
	return [4]byte{byte(a >> 24), byte(a >> 16), byte(a >> 8), byte(a)}
}

// AppendBytes appends the 4-byte big-endian encoding of a to b.
func (a Addr) AppendBytes(b []byte) []byte {
	return append(b, byte(a>>24), byte(a>>16), byte(a>>8), byte(a))
}

// PutBytes writes the 4-byte big-endian encoding of a into b.
func (a Addr) PutBytes(b []byte) {
	_ = b[3]
	b[0], b[1], b[2], b[3] = byte(a>>24), byte(a>>16), byte(a>>8), byte(a)
}

// String renders a in dotted-quad notation.
func (a Addr) String() string {
	o := a.Octets()
	// Hand-rolled to avoid fmt in data-path logging.
	buf := make([]byte, 0, 15)
	for i, b := range o {
		if i > 0 {
			buf = append(buf, '.')
		}
		buf = strconv.AppendUint(buf, uint64(b), 10)
	}
	return string(buf)
}

// Less orders addresses numerically; useful for deterministic iteration.
func (a Addr) Less(b Addr) bool { return a < b }

// Next returns the numerically following address, wrapping at the top of
// the space. Topology builders use it to hand out host addresses.
func (a Addr) Next() Addr { return a + 1 }

// Prefix is an IPv4 CIDR prefix. Bits beyond the mask length are kept
// zeroed so Prefix values compare correctly with ==.
type Prefix struct {
	addr Addr
	bits uint8
}

// PrefixFrom masks addr to bits and returns the prefix. bits outside
// [0,32] are clamped.
func PrefixFrom(addr Addr, bits int) Prefix {
	if bits < 0 {
		bits = 0
	}
	if bits > 32 {
		bits = 32
	}
	return Prefix{addr: addr.mask(uint8(bits)), bits: uint8(bits)}
}

// HostPrefix returns the /32 prefix covering exactly addr.
func HostPrefix(addr Addr) Prefix { return Prefix{addr: addr, bits: 32} }

// ParsePrefix parses CIDR notation ("10.0.0.0/8").
func ParsePrefix(s string) (Prefix, error) {
	slash := strings.LastIndexByte(s, '/')
	if slash < 0 {
		return Prefix{}, fmt.Errorf("netaddr: %q is not CIDR", s)
	}
	a, err := ParseAddr(s[:slash])
	if err != nil {
		return Prefix{}, err
	}
	bits, err := strconv.Atoi(s[slash+1:])
	if err != nil || bits < 0 || bits > 32 {
		return Prefix{}, fmt.Errorf("netaddr: %q has bad prefix length", s)
	}
	return PrefixFrom(a, bits), nil
}

// MustParsePrefix is ParsePrefix that panics on malformed input.
func MustParsePrefix(s string) Prefix {
	p, err := ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p
}

func (a Addr) mask(bits uint8) Addr {
	if bits == 0 {
		return 0
	}
	return a & Addr(^uint32(0)<<(32-bits))
}

// Addr returns the (masked) network address of p.
func (p Prefix) Addr() Addr { return p.addr }

// Bits returns the prefix length.
func (p Prefix) Bits() int { return int(p.bits) }

// IsValid reports whether p was built by a constructor (a zero Prefix is
// the default route 0.0.0.0/0, which is valid; use IsZero to detect the
// unset value where the distinction matters).
func (p Prefix) IsValid() bool { return p.bits <= 32 }

// IsSingleIP reports whether p covers exactly one address.
func (p Prefix) IsSingleIP() bool { return p.bits == 32 }

// Contains reports whether a is inside p.
func (p Prefix) Contains(a Addr) bool { return a.mask(p.bits) == p.addr }

// Overlaps reports whether p and q share any address.
func (p Prefix) Overlaps(q Prefix) bool {
	if p.bits <= q.bits {
		return p.Contains(q.addr)
	}
	return q.Contains(p.addr)
}

// String renders p in CIDR notation.
func (p Prefix) String() string {
	return p.addr.String() + "/" + strconv.Itoa(int(p.bits))
}

// Supernet returns the prefix one bit shorter than p. Supernet of /0 is /0.
func (p Prefix) Supernet() Prefix {
	if p.bits == 0 {
		return p
	}
	return PrefixFrom(p.addr, int(p.bits)-1)
}

// NthHost returns the n-th address inside p (n=0 is the network address).
// It panics if n does not fit in the host part; builders size prefixes to
// their populations up front.
func (p Prefix) NthHost(n int) Addr {
	host := uint32(n)
	if p.bits < 32 && host>>(32-p.bits) != 0 {
		panic(fmt.Sprintf("netaddr: host %d does not fit in %s", n, p))
	}
	if p.bits == 32 && n != 0 {
		panic(fmt.Sprintf("netaddr: host %d does not fit in %s", n, p))
	}
	return p.addr + Addr(host)
}

// Subnet carves the i-th subnet of length newBits out of p.
// Example: MustParsePrefix("10.0.0.0/8").Subnet(24, 5) == 10.0.5.0/24.
func (p Prefix) Subnet(newBits, i int) Prefix {
	if newBits < int(p.bits) || newBits > 32 {
		panic(fmt.Sprintf("netaddr: cannot carve /%d out of %s", newBits, p))
	}
	span := newBits - int(p.bits)
	if span < 32 && uint32(i)>>span != 0 {
		panic(fmt.Sprintf("netaddr: subnet index %d does not fit in %s -> /%d", i, p, newBits))
	}
	return PrefixFrom(p.addr+Addr(uint32(i)<<(32-newBits)), newBits)
}
