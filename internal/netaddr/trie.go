package netaddr

// Trie is a binary radix trie mapping prefixes to values, supporting exact
// insert/delete and longest-prefix-match lookup. It backs every forwarding
// table in the reproduction: simulator IP routing, ITR map-caches, ALT
// overlay routing and the PCE mapping databases.
//
// The implementation is a path-uncompressed binary trie: simple, allocation
// light on lookup (zero), and fast enough that the simulator's per-hop
// lookups never show up in profiles. Depth is bounded by 32.
//
// Trie is not safe for concurrent mutation; the simulator is single
// threaded by design and real-socket users wrap it in their own lock.
type Trie[V any] struct {
	root *trieNode[V]
	size int
}

type trieNode[V any] struct {
	child [2]*trieNode[V]
	val   V
	set   bool
}

// NewTrie returns an empty trie.
func NewTrie[V any]() *Trie[V] { return &Trie[V]{root: &trieNode[V]{}} }

// Len returns the number of prefixes stored.
func (t *Trie[V]) Len() int { return t.size }

// Insert stores v under p, replacing any existing value. It reports whether
// the prefix was newly added.
func (t *Trie[V]) Insert(p Prefix, v V) bool {
	n := t.root
	a := uint32(p.addr)
	for i := 0; i < p.Bits(); i++ {
		b := (a >> (31 - uint(i))) & 1
		if n.child[b] == nil {
			n.child[b] = &trieNode[V]{}
		}
		n = n.child[b]
	}
	added := !n.set
	n.val, n.set = v, true
	if added {
		t.size++
	}
	return added
}

// Delete removes the exact prefix p. It reports whether p was present.
// Interior nodes are left in place; tries in this codebase grow to a
// working set and stay there, so eager pruning buys nothing.
func (t *Trie[V]) Delete(p Prefix) bool {
	n := t.root
	a := uint32(p.addr)
	for i := 0; i < p.Bits(); i++ {
		b := (a >> (31 - uint(i))) & 1
		if n.child[b] == nil {
			return false
		}
		n = n.child[b]
	}
	if !n.set {
		return false
	}
	var zero V
	n.val, n.set = zero, false
	t.size--
	return true
}

// Get returns the value stored under exactly p.
func (t *Trie[V]) Get(p Prefix) (V, bool) {
	n := t.root
	a := uint32(p.addr)
	for i := 0; i < p.Bits(); i++ {
		b := (a >> (31 - uint(i))) & 1
		if n.child[b] == nil {
			var zero V
			return zero, false
		}
		n = n.child[b]
	}
	return n.val, n.set
}

// Lookup returns the value of the longest prefix containing a, the matched
// prefix itself, and whether any prefix matched.
func (t *Trie[V]) Lookup(a Addr) (V, Prefix, bool) {
	n := t.root
	var (
		bestVal  V
		bestBits = -1
	)
	u := uint32(a)
	for i := 0; ; i++ {
		if n.set {
			bestVal, bestBits = n.val, i
		}
		if i == 32 {
			break
		}
		b := (u >> (31 - uint(i))) & 1
		if n.child[b] == nil {
			break
		}
		n = n.child[b]
	}
	if bestBits < 0 {
		var zero V
		return zero, Prefix{}, false
	}
	return bestVal, PrefixFrom(a, bestBits), true
}

// Walk visits every stored prefix in lexicographic (address, length) order
// of the trie walk, calling fn(prefix, value). Returning false stops the
// walk early. Determinism matters: experiment output is diffed across runs.
func (t *Trie[V]) Walk(fn func(Prefix, V) bool) {
	t.walk(t.root, 0, 0, fn)
}

func (t *Trie[V]) walk(n *trieNode[V], addr uint32, depth int, fn func(Prefix, V) bool) bool {
	if n == nil {
		return true
	}
	if n.set {
		if !fn(PrefixFrom(Addr(addr), depth), n.val) {
			return false
		}
	}
	if depth == 32 {
		return true
	}
	if !t.walk(n.child[0], addr, depth+1, fn) {
		return false
	}
	return t.walk(n.child[1], addr|1<<(31-uint(depth)), depth+1, fn)
}

// Prefixes returns all stored prefixes in walk order.
func (t *Trie[V]) Prefixes() []Prefix {
	out := make([]Prefix, 0, t.size)
	t.Walk(func(p Prefix, _ V) bool {
		out = append(out, p)
		return true
	})
	return out
}
