package netaddr

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTrieInsertGet(t *testing.T) {
	tr := NewTrie[string]()
	p := MustParsePrefix("10.0.0.0/8")
	if !tr.Insert(p, "ten") {
		t.Fatal("first insert must report added")
	}
	if tr.Insert(p, "ten-again") {
		t.Fatal("re-insert must not report added")
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d", tr.Len())
	}
	v, ok := tr.Get(p)
	if !ok || v != "ten-again" {
		t.Fatalf("Get = %q, %v", v, ok)
	}
	if _, ok := tr.Get(MustParsePrefix("10.0.0.0/9")); ok {
		t.Fatal("Get of absent prefix must miss")
	}
}

func TestTrieLookupLongestMatch(t *testing.T) {
	tr := NewTrie[string]()
	tr.Insert(MustParsePrefix("0.0.0.0/0"), "default")
	tr.Insert(MustParsePrefix("10.0.0.0/8"), "coarse")
	tr.Insert(MustParsePrefix("10.1.0.0/16"), "mid")
	tr.Insert(MustParsePrefix("10.1.2.0/24"), "fine")

	cases := []struct {
		addr string
		want string
		bits int
	}{
		{"10.1.2.3", "fine", 24},
		{"10.1.9.9", "mid", 16},
		{"10.200.0.1", "coarse", 8},
		{"192.0.2.1", "default", 0},
	}
	for _, c := range cases {
		v, p, ok := tr.Lookup(MustParseAddr(c.addr))
		if !ok || v != c.want || p.Bits() != c.bits {
			t.Errorf("Lookup(%s) = %q/%d ok=%v, want %q/%d", c.addr, v, p.Bits(), ok, c.want, c.bits)
		}
	}
}

func TestTrieLookupMiss(t *testing.T) {
	tr := NewTrie[int]()
	tr.Insert(MustParsePrefix("10.0.0.0/8"), 1)
	if _, _, ok := tr.Lookup(MustParseAddr("11.0.0.1")); ok {
		t.Fatal("lookup outside any prefix must miss")
	}
	empty := NewTrie[int]()
	if _, _, ok := empty.Lookup(MustParseAddr("10.0.0.1")); ok {
		t.Fatal("lookup in empty trie must miss")
	}
}

func TestTrieDelete(t *testing.T) {
	tr := NewTrie[int]()
	p8 := MustParsePrefix("10.0.0.0/8")
	p16 := MustParsePrefix("10.1.0.0/16")
	tr.Insert(p8, 8)
	tr.Insert(p16, 16)
	if !tr.Delete(p16) {
		t.Fatal("delete of present prefix must succeed")
	}
	if tr.Delete(p16) {
		t.Fatal("second delete must fail")
	}
	if tr.Delete(MustParsePrefix("10.2.0.0/16")) {
		t.Fatal("delete of absent prefix must fail")
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d after delete", tr.Len())
	}
	// The /8 must still answer for former /16 addresses.
	v, _, ok := tr.Lookup(MustParseAddr("10.1.2.3"))
	if !ok || v != 8 {
		t.Fatalf("Lookup after delete = %d, %v", v, ok)
	}
}

func TestTrieHostRoutes(t *testing.T) {
	tr := NewTrie[int]()
	a := MustParseAddr("192.0.2.55")
	tr.Insert(HostPrefix(a), 55)
	tr.Insert(MustParsePrefix("192.0.2.0/24"), 24)
	v, p, ok := tr.Lookup(a)
	if !ok || v != 55 || p.Bits() != 32 {
		t.Fatalf("host route lookup = %d/%d %v", v, p.Bits(), ok)
	}
	v, p, ok = tr.Lookup(a.Next())
	if !ok || v != 24 || p.Bits() != 24 {
		t.Fatalf("covering route lookup = %d/%d %v", v, p.Bits(), ok)
	}
}

func TestTrieWalkDeterministic(t *testing.T) {
	tr := NewTrie[int]()
	in := []string{"10.0.0.0/8", "0.0.0.0/0", "10.1.0.0/16", "192.0.2.0/24", "10.1.0.0/24"}
	for i, s := range in {
		tr.Insert(MustParsePrefix(s), i)
	}
	var got []string
	tr.Walk(func(p Prefix, _ int) bool {
		got = append(got, p.String())
		return true
	})
	want := []string{"0.0.0.0/0", "10.0.0.0/8", "10.1.0.0/16", "10.1.0.0/24", "192.0.2.0/24"}
	if len(got) != len(want) {
		t.Fatalf("walk visited %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("walk order %v, want %v", got, want)
		}
	}
	if got := tr.Prefixes(); len(got) != len(want) {
		t.Fatalf("Prefixes len = %d", len(got))
	}
}

func TestTrieWalkEarlyStop(t *testing.T) {
	tr := NewTrie[int]()
	tr.Insert(MustParsePrefix("10.0.0.0/8"), 1)
	tr.Insert(MustParsePrefix("11.0.0.0/8"), 2)
	n := 0
	tr.Walk(func(Prefix, int) bool { n++; return false })
	if n != 1 {
		t.Fatalf("early stop visited %d", n)
	}
}

// refLPM is the obviously-correct longest-prefix match used as the oracle.
func refLPM(entries map[Prefix]int, a Addr) (int, int, bool) {
	best, bestBits, ok := 0, -1, false
	for p, v := range entries {
		if p.Contains(a) && p.Bits() > bestBits {
			best, bestBits, ok = v, p.Bits(), true
		}
	}
	return best, bestBits, ok
}

// TestTrieMatchesLinearScan cross-checks trie LPM against a linear scan on
// randomized rule sets — the core correctness property of the package.
func TestTrieMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for round := 0; round < 50; round++ {
		tr := NewTrie[int]()
		entries := map[Prefix]int{}
		for i := 0; i < 60; i++ {
			p := PrefixFrom(Addr(rng.Uint32()), rng.Intn(33))
			entries[p] = i
			tr.Insert(p, i)
		}
		if tr.Len() != len(entries) {
			t.Fatalf("round %d: Len=%d want %d", round, tr.Len(), len(entries))
		}
		for i := 0; i < 200; i++ {
			var a Addr
			if i%2 == 0 {
				a = Addr(rng.Uint32())
			} else {
				// Bias half the probes into stored prefixes so matches happen.
				for p := range entries {
					a = p.Addr() + Addr(rng.Uint32()&0xff)
					break
				}
			}
			wantV, wantBits, wantOK := refLPM(entries, a)
			gotV, gotP, gotOK := tr.Lookup(a)
			if gotOK != wantOK {
				t.Fatalf("round %d: Lookup(%v) ok=%v want %v", round, a, gotOK, wantOK)
			}
			if wantOK && (gotV != wantV || gotP.Bits() != wantBits) {
				t.Fatalf("round %d: Lookup(%v) = %d/%d, want %d/%d",
					round, a, gotV, gotP.Bits(), wantV, wantBits)
			}
		}
	}
}

// TestTrieInsertDeleteQuick property: after any interleaving of inserts and
// deletes, Get agrees with a shadow map.
func TestTrieInsertDeleteQuick(t *testing.T) {
	f := func(ops []struct {
		Addr uint32
		Bits uint8
		Del  bool
	}) bool {
		tr := NewTrie[uint32]()
		shadow := map[Prefix]uint32{}
		for _, op := range ops {
			p := PrefixFrom(Addr(op.Addr), int(op.Bits%33))
			if op.Del {
				_, inShadow := shadow[p]
				if tr.Delete(p) != inShadow {
					return false
				}
				delete(shadow, p)
			} else {
				tr.Insert(p, op.Addr)
				shadow[p] = op.Addr
			}
		}
		if tr.Len() != len(shadow) {
			return false
		}
		for p, v := range shadow {
			got, ok := tr.Get(p)
			if !ok || got != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// sliceRef is the naive reference the fuzzer compares the trie against:
// a slice of route entries kept sorted by (address, bits), linear-scanned
// for longest-prefix match. Every operation is obviously correct, and the
// sorted order doubles as the expected Walk order.
type sliceRef struct {
	ps []Prefix
	vs []int
}

func (r *sliceRef) find(p Prefix) (int, bool) {
	lo, hi := 0, len(r.ps)
	for lo < hi {
		mid := (lo + hi) / 2
		q := r.ps[mid]
		if q.Addr() < p.Addr() || (q.Addr() == p.Addr() && q.Bits() < p.Bits()) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(r.ps) && r.ps[lo] == p
}

func (r *sliceRef) insert(p Prefix, v int) bool {
	i, found := r.find(p)
	if found {
		r.vs[i] = v
		return false
	}
	r.ps = append(r.ps, Prefix{})
	copy(r.ps[i+1:], r.ps[i:])
	r.ps[i] = p
	r.vs = append(r.vs, 0)
	copy(r.vs[i+1:], r.vs[i:])
	r.vs[i] = v
	return true
}

func (r *sliceRef) delete(p Prefix) bool {
	i, found := r.find(p)
	if !found {
		return false
	}
	r.ps = append(r.ps[:i], r.ps[i+1:]...)
	r.vs = append(r.vs[:i], r.vs[i+1:]...)
	return true
}

func (r *sliceRef) lookup(a Addr) (int, int, bool) {
	best, bestBits, ok := 0, -1, false
	for i, p := range r.ps {
		if p.Contains(a) && p.Bits() > bestBits {
			best, bestBits, ok = r.vs[i], p.Bits(), true
		}
	}
	return best, bestBits, ok
}

// FuzzTrieVsSliceRef drives the trie and the sorted-slice reference with
// the same operation stream decoded from the fuzz input: 6 bytes per op
// (opcode+bits, 4 address bytes, value). Inserts, deletes, exact gets,
// longest-prefix lookups and full walks must all agree at every step.
func FuzzTrieVsSliceRef(f *testing.F) {
	f.Add([]byte{0, 10, 0, 0, 0, 1})
	f.Add([]byte{0, 32, 192, 0, 2, 9, 1, 32, 192, 0, 2, 0, 2, 0, 192, 0, 2, 1})
	f.Add([]byte{0, 8, 10, 0, 0, 1, 0, 16, 10, 1, 0, 2, 2, 0, 10, 1, 2, 3, 1, 16, 10, 1, 0, 0, 2, 0, 10, 1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		tr := NewTrie[int]()
		ref := &sliceRef{}
		for len(data) >= 6 {
			op, bits := data[0]&3, int(data[0]>>2)%33
			a := Addr(data[1])<<24 | Addr(data[2])<<16 | Addr(data[3])<<8 | Addr(data[4])
			v := int(data[5])
			p := PrefixFrom(a, bits)
			data = data[6:]
			switch op {
			case 0:
				if got, want := tr.Insert(p, v), ref.insert(p, v); got != want {
					t.Fatalf("Insert(%v) added=%v, want %v", p, got, want)
				}
			case 1:
				if got, want := tr.Delete(p), ref.delete(p); got != want {
					t.Fatalf("Delete(%v) = %v, want %v", p, got, want)
				}
			case 2:
				wantV, wantBits, wantOK := ref.lookup(a)
				gotV, gotP, gotOK := tr.Lookup(a)
				if gotOK != wantOK || (wantOK && (gotV != wantV || gotP.Bits() != wantBits)) {
					t.Fatalf("Lookup(%v) = %d/%d ok=%v, want %d/%d ok=%v",
						a, gotV, gotP.Bits(), gotOK, wantV, wantBits, wantOK)
				}
			case 3:
				i, found := ref.find(p)
				gotV, gotOK := tr.Get(p)
				if gotOK != found || (found && gotV != ref.vs[i]) {
					t.Fatalf("Get(%v) = %d ok=%v, want ok=%v", p, gotV, gotOK, found)
				}
			}
		}
		if tr.Len() != len(ref.ps) {
			t.Fatalf("Len = %d, want %d", tr.Len(), len(ref.ps))
		}
		i := 0
		tr.Walk(func(p Prefix, v int) bool {
			if i >= len(ref.ps) || p != ref.ps[i] || v != ref.vs[i] {
				t.Fatalf("walk position %d = %v/%d, want %v/%d", i, p, v, ref.ps[i], ref.vs[i])
			}
			i++
			return true
		})
		if i != len(ref.ps) {
			t.Fatalf("walk visited %d of %d", i, len(ref.ps))
		}
	})
}

func BenchmarkTrieLookup(b *testing.B) {
	tr := NewTrie[int]()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 10000; i++ {
		tr.Insert(PrefixFrom(Addr(rng.Uint32()), 8+rng.Intn(25)), i)
	}
	addrs := make([]Addr, 1024)
	for i := range addrs {
		addrs[i] = Addr(rng.Uint32())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Lookup(addrs[i&1023])
	}
}

// BenchmarkTrieLookup1M is the internet-scale variant backing the E12
// world: longest-prefix matches against a database of one million
// disjoint /28s (the E12 EID layout), probed uniformly.
func BenchmarkTrieLookup1M(b *testing.B) {
	tr := NewTrie[int]()
	for i := 0; i < 1_000_000; i++ {
		tr.Insert(PrefixFrom(Addr(uint32(40)<<24+uint32(i)*16), 28), i)
	}
	rng := rand.New(rand.NewSource(7))
	addrs := make([]Addr, 4096)
	for i := range addrs {
		addrs[i] = Addr(uint32(40)<<24 + rng.Uint32()%16_000_000)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Lookup(addrs[i&4095])
	}
}
