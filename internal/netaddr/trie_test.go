package netaddr

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTrieInsertGet(t *testing.T) {
	tr := NewTrie[string]()
	p := MustParsePrefix("10.0.0.0/8")
	if !tr.Insert(p, "ten") {
		t.Fatal("first insert must report added")
	}
	if tr.Insert(p, "ten-again") {
		t.Fatal("re-insert must not report added")
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d", tr.Len())
	}
	v, ok := tr.Get(p)
	if !ok || v != "ten-again" {
		t.Fatalf("Get = %q, %v", v, ok)
	}
	if _, ok := tr.Get(MustParsePrefix("10.0.0.0/9")); ok {
		t.Fatal("Get of absent prefix must miss")
	}
}

func TestTrieLookupLongestMatch(t *testing.T) {
	tr := NewTrie[string]()
	tr.Insert(MustParsePrefix("0.0.0.0/0"), "default")
	tr.Insert(MustParsePrefix("10.0.0.0/8"), "coarse")
	tr.Insert(MustParsePrefix("10.1.0.0/16"), "mid")
	tr.Insert(MustParsePrefix("10.1.2.0/24"), "fine")

	cases := []struct {
		addr string
		want string
		bits int
	}{
		{"10.1.2.3", "fine", 24},
		{"10.1.9.9", "mid", 16},
		{"10.200.0.1", "coarse", 8},
		{"192.0.2.1", "default", 0},
	}
	for _, c := range cases {
		v, p, ok := tr.Lookup(MustParseAddr(c.addr))
		if !ok || v != c.want || p.Bits() != c.bits {
			t.Errorf("Lookup(%s) = %q/%d ok=%v, want %q/%d", c.addr, v, p.Bits(), ok, c.want, c.bits)
		}
	}
}

func TestTrieLookupMiss(t *testing.T) {
	tr := NewTrie[int]()
	tr.Insert(MustParsePrefix("10.0.0.0/8"), 1)
	if _, _, ok := tr.Lookup(MustParseAddr("11.0.0.1")); ok {
		t.Fatal("lookup outside any prefix must miss")
	}
	empty := NewTrie[int]()
	if _, _, ok := empty.Lookup(MustParseAddr("10.0.0.1")); ok {
		t.Fatal("lookup in empty trie must miss")
	}
}

func TestTrieDelete(t *testing.T) {
	tr := NewTrie[int]()
	p8 := MustParsePrefix("10.0.0.0/8")
	p16 := MustParsePrefix("10.1.0.0/16")
	tr.Insert(p8, 8)
	tr.Insert(p16, 16)
	if !tr.Delete(p16) {
		t.Fatal("delete of present prefix must succeed")
	}
	if tr.Delete(p16) {
		t.Fatal("second delete must fail")
	}
	if tr.Delete(MustParsePrefix("10.2.0.0/16")) {
		t.Fatal("delete of absent prefix must fail")
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d after delete", tr.Len())
	}
	// The /8 must still answer for former /16 addresses.
	v, _, ok := tr.Lookup(MustParseAddr("10.1.2.3"))
	if !ok || v != 8 {
		t.Fatalf("Lookup after delete = %d, %v", v, ok)
	}
}

func TestTrieHostRoutes(t *testing.T) {
	tr := NewTrie[int]()
	a := MustParseAddr("192.0.2.55")
	tr.Insert(HostPrefix(a), 55)
	tr.Insert(MustParsePrefix("192.0.2.0/24"), 24)
	v, p, ok := tr.Lookup(a)
	if !ok || v != 55 || p.Bits() != 32 {
		t.Fatalf("host route lookup = %d/%d %v", v, p.Bits(), ok)
	}
	v, p, ok = tr.Lookup(a.Next())
	if !ok || v != 24 || p.Bits() != 24 {
		t.Fatalf("covering route lookup = %d/%d %v", v, p.Bits(), ok)
	}
}

func TestTrieWalkDeterministic(t *testing.T) {
	tr := NewTrie[int]()
	in := []string{"10.0.0.0/8", "0.0.0.0/0", "10.1.0.0/16", "192.0.2.0/24", "10.1.0.0/24"}
	for i, s := range in {
		tr.Insert(MustParsePrefix(s), i)
	}
	var got []string
	tr.Walk(func(p Prefix, _ int) bool {
		got = append(got, p.String())
		return true
	})
	want := []string{"0.0.0.0/0", "10.0.0.0/8", "10.1.0.0/16", "10.1.0.0/24", "192.0.2.0/24"}
	if len(got) != len(want) {
		t.Fatalf("walk visited %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("walk order %v, want %v", got, want)
		}
	}
	if got := tr.Prefixes(); len(got) != len(want) {
		t.Fatalf("Prefixes len = %d", len(got))
	}
}

func TestTrieWalkEarlyStop(t *testing.T) {
	tr := NewTrie[int]()
	tr.Insert(MustParsePrefix("10.0.0.0/8"), 1)
	tr.Insert(MustParsePrefix("11.0.0.0/8"), 2)
	n := 0
	tr.Walk(func(Prefix, int) bool { n++; return false })
	if n != 1 {
		t.Fatalf("early stop visited %d", n)
	}
}

// refLPM is the obviously-correct longest-prefix match used as the oracle.
func refLPM(entries map[Prefix]int, a Addr) (int, int, bool) {
	best, bestBits, ok := 0, -1, false
	for p, v := range entries {
		if p.Contains(a) && p.Bits() > bestBits {
			best, bestBits, ok = v, p.Bits(), true
		}
	}
	return best, bestBits, ok
}

// TestTrieMatchesLinearScan cross-checks trie LPM against a linear scan on
// randomized rule sets — the core correctness property of the package.
func TestTrieMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for round := 0; round < 50; round++ {
		tr := NewTrie[int]()
		entries := map[Prefix]int{}
		for i := 0; i < 60; i++ {
			p := PrefixFrom(Addr(rng.Uint32()), rng.Intn(33))
			entries[p] = i
			tr.Insert(p, i)
		}
		if tr.Len() != len(entries) {
			t.Fatalf("round %d: Len=%d want %d", round, tr.Len(), len(entries))
		}
		for i := 0; i < 200; i++ {
			var a Addr
			if i%2 == 0 {
				a = Addr(rng.Uint32())
			} else {
				// Bias half the probes into stored prefixes so matches happen.
				for p := range entries {
					a = p.Addr() + Addr(rng.Uint32()&0xff)
					break
				}
			}
			wantV, wantBits, wantOK := refLPM(entries, a)
			gotV, gotP, gotOK := tr.Lookup(a)
			if gotOK != wantOK {
				t.Fatalf("round %d: Lookup(%v) ok=%v want %v", round, a, gotOK, wantOK)
			}
			if wantOK && (gotV != wantV || gotP.Bits() != wantBits) {
				t.Fatalf("round %d: Lookup(%v) = %d/%d, want %d/%d",
					round, a, gotV, gotP.Bits(), wantV, wantBits)
			}
		}
	}
}

// TestTrieInsertDeleteQuick property: after any interleaving of inserts and
// deletes, Get agrees with a shadow map.
func TestTrieInsertDeleteQuick(t *testing.T) {
	f := func(ops []struct {
		Addr uint32
		Bits uint8
		Del  bool
	}) bool {
		tr := NewTrie[uint32]()
		shadow := map[Prefix]uint32{}
		for _, op := range ops {
			p := PrefixFrom(Addr(op.Addr), int(op.Bits%33))
			if op.Del {
				_, inShadow := shadow[p]
				if tr.Delete(p) != inShadow {
					return false
				}
				delete(shadow, p)
			} else {
				tr.Insert(p, op.Addr)
				shadow[p] = op.Addr
			}
		}
		if tr.Len() != len(shadow) {
			return false
		}
		for p, v := range shadow {
			got, ok := tr.Get(p)
			if !ok || got != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkTrieLookup(b *testing.B) {
	tr := NewTrie[int]()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 10000; i++ {
		tr.Insert(PrefixFrom(Addr(rng.Uint32()), 8+rng.Intn(25)), i)
	}
	addrs := make([]Addr, 1024)
	for i := range addrs {
		addrs[i] = Addr(rng.Uint32())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Lookup(addrs[i&1023])
	}
}
