package wire

import (
	"sync"
	"testing"
	"time"

	"github.com/pcelisp/pcelisp/internal/netaddr"
	"github.com/pcelisp/pcelisp/internal/packet"
	"github.com/pcelisp/pcelisp/internal/simnet"
)

func TestSimTransportRoundTrip(t *testing.T) {
	s := simnet.New(1)
	a := s.NewNode("a")
	b := s.NewNode("b")
	l := simnet.Connect(a, b, simnet.LinkConfig{Delay: time.Millisecond})
	addrA := netaddr.MustParseAddr("10.0.0.1")
	addrB := netaddr.MustParseAddr("10.0.0.2")
	l.A().SetAddr(addrA)
	l.B().SetAddr(addrB)
	a.SetDefaultRoute(l.A())
	b.SetDefaultRoute(l.B())

	ta := NewSimTransport(a, addrA, packet.PortPCECP)
	tb := NewSimTransport(b, addrB, packet.PortPCECP)
	if ta.LocalAddr() != addrA {
		t.Fatalf("LocalAddr = %v", ta.LocalAddr())
	}
	var gotSrc netaddr.Addr
	var gotPayload string
	tb.SetHandler(func(src netaddr.Addr, payload []byte) {
		gotSrc, gotPayload = src, string(payload)
	})
	if err := ta.Send(addrB, []byte("over the sim")); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if gotSrc != addrA || gotPayload != "over the sim" {
		t.Fatalf("got %v %q", gotSrc, gotPayload)
	}
	if err := ta.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestUDPTransportRoundTrip(t *testing.T) {
	reg := NewRegistry()
	addrA := netaddr.MustParseAddr("10.0.0.1")
	addrB := netaddr.MustParseAddr("10.0.0.2")
	ta, err := NewUDPTransport(addrA, reg)
	if err != nil {
		t.Fatal(err)
	}
	defer ta.Close()
	tb, err := NewUDPTransport(addrB, reg)
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()

	var mu sync.Mutex
	var gotSrc netaddr.Addr
	var gotPayload []byte
	done := make(chan struct{})
	tb.SetHandler(func(src netaddr.Addr, payload []byte) {
		mu.Lock()
		gotSrc, gotPayload = src, payload
		mu.Unlock()
		close(done)
	})
	// Send a real PCECP message across localhost.
	msg := &packet.PCECP{
		Version: packet.PCECPVersion, Type: packet.PCECPMappingPush,
		Nonce: 42, PCEAddr: addrA,
	}
	if err := ta.Send(addrB, packet.Serialize(msg)); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("datagram never arrived")
	}
	mu.Lock()
	defer mu.Unlock()
	if gotSrc != addrA {
		t.Fatalf("src = %v", gotSrc)
	}
	p := packet.NewPacket(gotPayload, packet.LayerTypePCECP, packet.Default)
	out := p.Layer(packet.LayerTypePCECP)
	if out == nil || out.(*packet.PCECP).Nonce != 42 {
		t.Fatalf("PCECP did not survive the real socket: %v", p.String())
	}
}

func TestUDPTransportUnknownDestination(t *testing.T) {
	reg := NewRegistry()
	ta, err := NewUDPTransport(netaddr.MustParseAddr("10.0.0.1"), reg)
	if err != nil {
		t.Fatal(err)
	}
	defer ta.Close()
	if err := ta.Send(netaddr.MustParseAddr("10.9.9.9"), []byte("x")); err == nil {
		t.Fatal("send to unregistered address must fail")
	}
}

func TestRegistry(t *testing.T) {
	reg := NewRegistry()
	a := netaddr.MustParseAddr("10.0.0.1")
	if _, ok := reg.Lookup(a); ok {
		t.Fatal("empty registry must miss")
	}
	ta, err := NewUDPTransport(a, reg)
	if err != nil {
		t.Fatal(err)
	}
	defer ta.Close()
	real, ok := reg.Lookup(a)
	if !ok || real.Port == 0 {
		t.Fatalf("lookup = %v, %v", real, ok)
	}
}

func TestUDPTransportShortFrameIgnored(t *testing.T) {
	reg := NewRegistry()
	addrA := netaddr.MustParseAddr("10.0.0.1")
	addrB := netaddr.MustParseAddr("10.0.0.2")
	ta, _ := NewUDPTransport(addrA, reg)
	defer ta.Close()
	tb, _ := NewUDPTransport(addrB, reg)
	defer tb.Close()
	got := make(chan struct{}, 1)
	tb.SetHandler(func(netaddr.Addr, []byte) { got <- struct{}{} })
	// Raw 2-byte frame, below the virtual-address header: must be dropped.
	real, _ := reg.Lookup(addrB)
	ta.conn.WriteToUDP([]byte{1, 2}, real)
	// A valid frame afterwards still arrives.
	ta.Send(addrB, []byte("ok"))
	select {
	case <-got:
	case <-time.After(5 * time.Second):
		t.Fatal("valid frame lost after runt")
	}
	select {
	case <-got:
		t.Fatal("runt frame delivered")
	case <-time.After(50 * time.Millisecond):
	}
}

// TestTransportCarriesTelemetryMessages sends the closed-loop TE wire
// additions — a LoadReport and a MappingUpdate — across the real-socket
// transport and decodes them on the far side, proving the new codecs
// are not simulator-bound either.
func TestTransportCarriesTelemetryMessages(t *testing.T) {
	reg := NewRegistry()
	addrA := netaddr.MustParseAddr("10.0.0.1")
	addrB := netaddr.MustParseAddr("10.0.0.2")
	ta, err := NewUDPTransport(addrA, reg)
	if err != nil {
		t.Fatal(err)
	}
	defer ta.Close()
	tb, err := NewUDPTransport(addrB, reg)
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()

	var mu sync.Mutex
	var got []*packet.PCECP
	done := make(chan struct{}, 2)
	tb.SetHandler(func(_ netaddr.Addr, payload []byte) {
		p := packet.NewPacket(payload, packet.LayerTypePCECP, packet.Default)
		if l := p.Layer(packet.LayerTypePCECP); l != nil {
			mu.Lock()
			got = append(got, l.(*packet.PCECP))
			mu.Unlock()
		}
		done <- struct{}{}
	})

	report := &packet.PCECP{
		Version: packet.PCECPVersion, Type: packet.PCECPLoadReport, Nonce: 21,
		Loads: []packet.PCELoadRecord{{
			RLOC: addrA, OutBytes: 1000, InBytes: 2000, CapacityBps: 4_000_000, WindowMs: 1000,
		}},
	}
	update := &packet.PCECP{
		Version: packet.PCECPVersion, Type: packet.PCECPMappingUpdate, Nonce: 22, PCEAddr: addrA,
		Prefixes: []packet.PCEPrefixMapping{{
			Prefix: netaddr.MustParsePrefix("100.1.0.0/16"), TTL: 300,
			Locators: []packet.LISPLocator{
				{Priority: 1, Weight: 66, Reachable: true, Addr: addrA},
				{Priority: 1, Weight: 34, Reachable: true, Addr: addrB},
			},
		}},
	}
	for _, msg := range []*packet.PCECP{report, update} {
		if err := ta.Send(addrB, packet.Serialize(msg)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("telemetry datagram never arrived")
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 2 {
		t.Fatalf("decoded %d messages", len(got))
	}
	// UDP may reorder even on loopback; index by type.
	byType := map[packet.PCECPType]*packet.PCECP{}
	for _, m := range got {
		byType[m.Type] = m
	}
	r, u := byType[packet.PCECPLoadReport], byType[packet.PCECPMappingUpdate]
	if r == nil || len(r.Loads) != 1 || r.Loads[0].InBytes != 2000 {
		t.Fatalf("LoadReport mangled: %+v", r)
	}
	if u == nil || len(u.Prefixes) != 1 || u.Prefixes[0].Locators[0].Weight != 66 {
		t.Fatalf("MappingUpdate mangled: %+v", u)
	}
}

// TestTransportCarriesSignedMessages round-trips E13's authenticated
// wire formats over real UDP sockets: a signed Map-Reply (the S-bit auth
// block) and a signed PCECP MapFetch must survive the socket path intact
// and verify under the shared key — and under no other.
func TestTransportCarriesSignedMessages(t *testing.T) {
	reg := NewRegistry()
	addrA := netaddr.MustParseAddr("10.0.0.1")
	addrB := netaddr.MustParseAddr("10.0.0.2")
	ta, err := NewUDPTransport(addrA, reg)
	if err != nil {
		t.Fatal(err)
	}
	defer ta.Close()
	tb, err := NewUDPTransport(addrB, reg)
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()

	key := []byte("wire-sign-key")
	var mu sync.Mutex
	var reply *packet.LISPMapReply
	var fetch *packet.PCECP
	done := make(chan struct{}, 2)
	tb.SetHandler(func(_ netaddr.Addr, payload []byte) {
		mu.Lock()
		// The two formats share no type byte: try LISP control first,
		// fall back to PCECP.
		if p := packet.NewPacket(payload, packet.LayerTypeLISPControl, packet.Default); p.ErrorLayer() == nil {
			if l := p.Layer(packet.LayerTypeLISPMapReply); l != nil {
				reply = l.(*packet.LISPMapReply)
			}
		}
		if p := packet.NewPacket(payload, packet.LayerTypePCECP, packet.Default); p.ErrorLayer() == nil {
			if l := p.Layer(packet.LayerTypePCECP); l != nil {
				fetch = l.(*packet.PCECP)
			}
		}
		mu.Unlock()
		done <- struct{}{}
	})

	signedReply := &packet.LISPMapReply{
		Nonce: 31, KeyID: 1, AuthKey: key,
		Records: []packet.LISPMapRecord{{
			TTL: 300, EIDPrefix: netaddr.MustParsePrefix("100.2.0.0/16"), Authoritative: true,
			Locators: []packet.LISPLocator{{Priority: 1, Weight: 100, Reachable: true, Addr: addrA}},
		}},
	}
	signedFetch := &packet.PCECP{
		Version: packet.PCECPVersion, Type: packet.PCECPMapFetch, Nonce: 32, PCEAddr: addrA,
		KeyID: 1, AuthKey: key,
		Flows: []packet.PCEFlowMapping{{DstEID: netaddr.MustParseAddr("100.2.0.9"), SrcRLOC: addrA}},
	}
	for _, msg := range []packet.SerializableLayer{signedReply, signedFetch} {
		if err := ta.Send(addrB, packet.Serialize(msg)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("signed datagram never arrived")
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if reply == nil || !reply.Security || reply.Nonce != 31 {
		t.Fatalf("signed Map-Reply mangled: %+v", reply)
	}
	if !reply.VerifyAuth(key) {
		t.Fatal("Map-Reply auth broken by the socket path")
	}
	if reply.VerifyAuth([]byte("not-the-key")) {
		t.Fatal("Map-Reply verifies under the wrong key")
	}
	if reply.Records[0].Locators[0].Addr != addrA {
		t.Fatalf("record mangled: %+v", reply.Records[0])
	}
	if fetch == nil || fetch.Type != packet.PCECPMapFetch || fetch.Nonce != 32 {
		t.Fatalf("signed MapFetch mangled: %+v", fetch)
	}
	if !fetch.VerifyAuth(key) {
		t.Fatal("MapFetch auth broken by the socket path")
	}
	if fetch.VerifyAuth([]byte("not-the-key")) {
		t.Fatal("MapFetch verifies under the wrong key")
	}
}

// TestConcurrentHandlerSwap hammers SetHandler from several goroutines
// while the UDP read loop is delivering datagrams. Under -race this
// proves the atomic handler pin: no torn reads, and every delivery runs
// exactly one complete handler (old or new, never a mix).
func TestConcurrentHandlerSwap(t *testing.T) {
	reg := NewRegistry()
	addrA := netaddr.MustParseAddr("10.9.0.1")
	addrB := netaddr.MustParseAddr("10.9.0.2")
	ta, err := NewUDPTransport(addrA, reg)
	if err != nil {
		t.Fatal(err)
	}
	defer ta.Close()
	tb, err := NewUDPTransport(addrB, reg)
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()

	var delivered sync.WaitGroup
	delivered.Add(1)
	var once sync.Once
	mkHandler := func(gen int) Handler {
		return func(src netaddr.Addr, payload []byte) {
			if src != addrA {
				t.Errorf("handler gen %d: src = %v", gen, src)
			}
			once.Do(delivered.Done)
		}
	}
	tb.SetHandler(mkHandler(0))

	stop := make(chan struct{})
	var swappers sync.WaitGroup
	for g := 0; g < 4; g++ {
		swappers.Add(1)
		go func(g int) {
			defer swappers.Done()
			for i := 1; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				tb.SetHandler(mkHandler(g*1_000_000 + i))
			}
		}(g)
	}
	for i := 0; i < 200; i++ {
		if err := ta.Send(addrB, []byte("swap-storm")); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan struct{})
	go func() { delivered.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("no datagram delivered during handler swap storm")
	}
	close(stop)
	swappers.Wait()

	// The sim transport shares the same pin; swap it concurrently with
	// scheduled deliveries too (the sim itself runs single-threaded, so
	// this exercises SetHandler racing the dispatch closure's Load).
	s := simnet.New(7)
	a := s.NewNode("a")
	b := s.NewNode("b")
	l := simnet.Connect(a, b, simnet.LinkConfig{Delay: time.Millisecond})
	l.A().SetAddr(addrA)
	l.B().SetAddr(addrB)
	a.SetDefaultRoute(l.A())
	b.SetDefaultRoute(l.B())
	sa := NewSimTransport(a, addrA, packet.PortPCECP)
	sb := NewSimTransport(b, addrB, packet.PortPCECP)
	var simGot int
	sb.SetHandler(func(src netaddr.Addr, payload []byte) { simGot++ })
	swapDone := make(chan struct{})
	go func() {
		defer close(swapDone)
		for i := 0; i < 10_000; i++ {
			sb.SetHandler(func(src netaddr.Addr, payload []byte) { simGot++ })
		}
	}()
	for i := 0; i < 50; i++ {
		if err := sa.Send(addrB, []byte("sim-swap")); err != nil {
			t.Fatal(err)
		}
	}
	<-swapDone
	s.Run()
	if simGot != 50 {
		t.Fatalf("sim deliveries = %d, want 50", simGot)
	}
}
