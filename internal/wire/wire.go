// Package wire abstracts datagram transport so the PCE control-plane
// codecs run identically over the simulator and over real UDP sockets.
// examples/udp-overlay uses the UDP transport to exchange genuine PCECP
// messages between goroutines on localhost, demonstrating that nothing in
// the control plane is simulator-bound.
package wire

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"github.com/pcelisp/pcelisp/internal/netaddr"
	"github.com/pcelisp/pcelisp/internal/packet"
	"github.com/pcelisp/pcelisp/internal/runtime"
	"github.com/pcelisp/pcelisp/internal/simnet"
)

// Handler consumes a received datagram. It is an alias (not a defined
// type) so Transport implementations also satisfy runtime.Endpoint.
type Handler = func(src netaddr.Addr, payload []byte)

// Transport delivers opaque datagrams between virtual addresses.
type Transport interface {
	// LocalAddr returns the endpoint's virtual address.
	LocalAddr() netaddr.Addr
	// Send transmits payload to the endpoint registered under dst.
	Send(dst netaddr.Addr, payload []byte) error
	// SetHandler installs the receive callback (replacing any previous).
	SetHandler(h Handler)
	// Close releases resources.
	Close() error
}

// SimTransport adapts a simnet node + UDP port to the Transport interface.
// The receive handler is pinned with an atomic pointer: the dispatch path
// loads it lock-free, and SetHandler swaps it without ever letting a
// concurrent dispatch observe a torn or half-installed callback.
type SimTransport struct {
	node *simnet.Node
	addr netaddr.Addr
	port uint16
	h    atomic.Pointer[Handler]
}

// NewSimTransport binds a transport to node:port at addr.
func NewSimTransport(node *simnet.Node, addr netaddr.Addr, port uint16) *SimTransport {
	t := &SimTransport{node: node, addr: addr, port: port}
	node.ListenUDP(port, func(d *simnet.Delivery, udp *packet.UDP) {
		if h := t.h.Load(); h != nil && *h != nil {
			(*h)(d.IPv4().SrcIP, udp.LayerPayload())
		}
	})
	return t
}

// LocalAddr implements Transport.
func (t *SimTransport) LocalAddr() netaddr.Addr { return t.addr }

// Send implements Transport.
func (t *SimTransport) Send(dst netaddr.Addr, payload []byte) error {
	return t.node.SendUDP(t.addr, dst, t.port, t.port, packet.Payload(payload))
}

// SetHandler implements Transport. The swap is atomic: in-flight
// dispatches finish on whichever handler they pinned.
func (t *SimTransport) SetHandler(h Handler) { t.h.Store(&h) }

// Close implements Transport (no-op; the simulation owns the node).
func (t *SimTransport) Close() error { return nil }

// Registry maps virtual addresses to real UDP endpoints so UDPTransports
// can find each other on localhost.
type Registry struct {
	mu sync.RWMutex
	m  map[netaddr.Addr]*net.UDPAddr
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{m: make(map[netaddr.Addr]*net.UDPAddr)}
}

// Register binds a virtual address to a real endpoint.
func (r *Registry) Register(a netaddr.Addr, real *net.UDPAddr) {
	r.mu.Lock()
	r.m[a] = real
	r.mu.Unlock()
}

// Lookup resolves a virtual address.
func (r *Registry) Lookup(a netaddr.Addr) (*net.UDPAddr, bool) {
	r.mu.RLock()
	real, ok := r.m[a]
	r.mu.RUnlock()
	return real, ok
}

// udpHeaderLen is the framing prefix: the 4-byte virtual source address.
const udpHeaderLen = 4

// UDPTransport carries datagrams over a real net.UDPConn on localhost.
// Each datagram is framed with the sender's virtual address, since real
// ephemeral ports don't map back to virtual addresses.
type UDPTransport struct {
	addr netaddr.Addr
	reg  *Registry
	conn *net.UDPConn
	h    atomic.Pointer[Handler]
	done chan struct{}
}

// NewUDPTransport binds a real UDP socket on 127.0.0.1 and registers the
// virtual address.
func NewUDPTransport(addr netaddr.Addr, reg *Registry) (*UDPTransport, error) {
	conn, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return nil, fmt.Errorf("wire: bind: %w", err)
	}
	t := &UDPTransport{addr: addr, reg: reg, conn: conn, done: make(chan struct{})}
	reg.Register(addr, conn.LocalAddr().(*net.UDPAddr))
	go t.readLoop()
	return t, nil
}

func (t *UDPTransport) readLoop() {
	buf := make([]byte, 64*1024)
	for {
		n, _, err := t.conn.ReadFromUDP(buf)
		if err != nil {
			select {
			case <-t.done:
				return
			default:
				return // socket error: stop reading
			}
		}
		if n < udpHeaderLen {
			continue
		}
		src := netaddr.AddrFromBytes(buf[:udpHeaderLen])
		payload := make([]byte, n-udpHeaderLen)
		copy(payload, buf[udpHeaderLen:n])
		if h := t.h.Load(); h != nil && *h != nil {
			(*h)(src, payload)
		}
	}
}

// LocalAddr implements Transport.
func (t *UDPTransport) LocalAddr() netaddr.Addr { return t.addr }

// Send implements Transport.
func (t *UDPTransport) Send(dst netaddr.Addr, payload []byte) error {
	real, ok := t.reg.Lookup(dst)
	if !ok {
		return fmt.Errorf("wire: no endpoint registered for %v", dst)
	}
	frame := make([]byte, 0, udpHeaderLen+len(payload))
	frame = t.addr.AppendBytes(frame)
	frame = append(frame, payload...)
	_, err := t.conn.WriteToUDP(frame, real)
	return err
}

// SetHandler implements Transport. Safe to call concurrently with the
// read loop: the pointer swap is atomic and the loop pins the handler it
// loaded for the duration of one dispatch.
func (t *UDPTransport) SetHandler(h Handler) { t.h.Store(&h) }

// Close implements Transport.
func (t *UDPTransport) Close() error {
	close(t.done)
	return t.conn.Close()
}

// Both transports satisfy the runtime endpoint contract, so control-plane
// code written against runtime.Endpoint rides either one.
var (
	_ runtime.Endpoint = (*SimTransport)(nil)
	_ runtime.Endpoint = (*UDPTransport)(nil)
	_ Transport        = (*SimTransport)(nil)
	_ Transport        = (*UDPTransport)(nil)
)
