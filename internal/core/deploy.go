package core

import (
	"hash/fnv"

	"github.com/pcelisp/pcelisp/internal/irc"
	"github.com/pcelisp/pcelisp/internal/netaddr"
	"github.com/pcelisp/pcelisp/internal/obs"
	"github.com/pcelisp/pcelisp/internal/topo"
)

// flowStringHash hashes (client, qname) for step-1 ingress selection,
// before ED is known.
func flowStringHash(client netaddr.Addr, qname string) uint64 {
	h := fnv.New64a()
	var b [4]byte
	client.PutBytes(b[:])
	h.Write(b[:])
	h.Write([]byte(qname))
	return h.Sum64()
}

// Engine returns the PCE's IRC engine.
func (p *PCE) Engine() *irc.Engine { return p.cfg.Engine }

// DeployDomain wires a full PCE control plane into a built topology
// domain: an IRC engine over the domain's providers, the PCE on the DNS
// path, the resolver IPC hooks and every xTR. The engine's background
// sampling is NOT started — call pce.Engine().Start() when the scenario
// needs live utilization tracking (it keeps the event queue busy forever).
func DeployDomain(d *topo.Domain, policy irc.Policy) *PCE {
	return DeployDomainTTL(d, policy, 0)
}

// DeployDomainTTL is DeployDomain with an explicit mapping TTL in
// seconds (0 = the 300s default) — the knob the failure experiments
// sweep to give pull-based control planes a finite reconvergence
// horizon to compare against.
func DeployDomainTTL(d *topo.Domain, policy irc.Policy, mappingTTL uint32) *PCE {
	return DeployDomainOpts(d, policy, DeployOptions{MappingTTL: mappingTTL})
}

// DeployOptions carries the optional knobs of DeployDomainOpts.
type DeployOptions struct {
	// MappingTTL is the pushed-mapping lifetime in seconds (0 = default).
	MappingTTL uint32
	// AuthKey enables PCECP signing and verification (see Config.AuthKey).
	AuthKey []byte
	// FetchServiceRate, FetchQueueCap and FetchQuotaLimit bound the PCED
	// MapFetch service (see Config).
	FetchServiceRate int
	FetchQueueCap    int
	FetchQuotaLimit  int
	// Obs and Recorder wire the PCE's counters and flight events (see
	// Config.Obs / Config.Recorder).
	Obs      *obs.Registry
	Recorder *obs.FlightRecorder
}

// DeployDomainOpts is DeployDomain with the full option set — the entry
// point the adversarial experiments use to provision per-plane keys and
// flood defenses.
func DeployDomainOpts(d *topo.Domain, policy irc.Policy, opts DeployOptions) *PCE {
	providers := make([]*irc.Provider, len(d.Providers))
	for i, prov := range d.Providers {
		providers[i] = &irc.Provider{
			Name:        prov.Name,
			RLOC:        prov.RLOC,
			Egress:      prov.EgressIface,
			CapacityBps: prov.CapacityBps,
			BaseLatency: prov.CoreDelay,
		}
	}
	engine := irc.NewEngine(d.PCENode.Sim(), providers, policy)
	pce := New(d.PCENode, Config{
		Addr:             d.PCEAddr,
		EIDPrefix:        d.EIDPrefix,
		DNSAddr:          d.Resolver.Addr(),
		Engine:           engine,
		Group:            d.Group,
		MappingTTL:       opts.MappingTTL,
		AuthKey:          opts.AuthKey,
		FetchServiceRate: opts.FetchServiceRate,
		FetchQueueCap:    opts.FetchQueueCap,
		FetchQuotaLimit:  opts.FetchQuotaLimit,
		Obs:              opts.Obs,
		Recorder:         opts.Recorder,
	})
	pce.AttachResolver(d.Resolver)
	for _, x := range d.XTRs {
		pce.WireXTR(x)
	}
	// Register the provider egress watches with the owning xTRs so a
	// later EnableProbing reports local link failures back to the PCE.
	for _, prov := range d.Providers {
		prov.XTR.WatchEgress(prov.RLOC)
	}
	return pce
}
