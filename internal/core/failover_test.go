package core

import (
	"testing"
	"time"

	"github.com/pcelisp/pcelisp/internal/irc"
	"github.com/pcelisp/pcelisp/internal/lisp"
	"github.com/pcelisp/pcelisp/internal/netaddr"
	"github.com/pcelisp/pcelisp/internal/packet"
	"github.com/pcelisp/pcelisp/internal/simnet"
	"github.com/pcelisp/pcelisp/internal/topo"
)

// topoSpecHosts is defaultSpec with more hosts in the source domain.
func topoSpecHosts(n int) topo.Spec {
	spec := defaultSpec()
	spec.Domains[0].Hosts = n
	return spec
}

func flowKeyFor(src, dst netaddr.Addr) lisp.FlowKey {
	return lisp.FlowKey{Src: src, Dst: dst}
}

// TestProviderFailoverChangesAdvertisedMapping: when the destination
// domain's preferred provider dies, the IRC failover recomputes the
// locator set, and the next flow's mapping points at the survivor — the
// "online IRC engine running in background" keeping the mapping fresh.
func TestProviderFailoverChangesAdvertisedMapping(t *testing.T) {
	w := newPCEWorld(t, defaultSpec())
	sim := w.in.Sim
	d0, d1 := w.in.Domain(0), w.in.Domain(1)

	// First flow: note which RLOC the mapping used.
	var firstRLOC netaddr.Addr
	d0.Hosts[0].DNS.Lookup(d1.Hosts[0].Name, func(netaddr.Addr, simnet.Time, bool) {})
	sim.RunFor(2 * time.Second)
	if e, ok := w.pces[0].RemoteMappings().Lookup(d1.Hosts[0].Addr); ok {
		if loc, found := e.SelectLocator(1); found {
			firstRLOC = loc.Addr
		}
	}
	if !firstRLOC.IsValid() {
		t.Fatal("no mapping learned")
	}
	// Find and fail that provider at the destination.
	failed := -1
	for i, p := range d1.Providers {
		if p.RLOC == firstRLOC {
			failed = i
		}
	}
	if failed < 0 {
		t.Fatalf("mapping RLOC %v is not a d1 provider", firstRLOC)
	}
	w.pces[1].Engine().SetProviderUp(failed, false)

	// A new flow from a different host (cold DNS name? same name is
	// cached — the PCES database also has the stale mapping, so force a
	// fresh fetch by expiring it).
	w.pces[0].RemoteMappings().Delete(d1.EIDPrefix)
	d0.Hosts[1].DNS.Lookup(d1.Hosts[1].Name, func(netaddr.Addr, simnet.Time, bool) {})
	sim.RunFor(2 * time.Second)

	e, ok := w.pces[0].RemoteMappings().Lookup(d1.Hosts[1].Addr)
	if !ok {
		t.Fatal("no refreshed mapping")
	}
	for _, l := range e.Locators {
		if l.Addr == firstRLOC {
			t.Fatalf("failed provider %v still advertised: %+v", firstRLOC, e.Locators)
		}
	}
	// Data still flows via the survivor.
	delivered := false
	d1.Hosts[1].Node.ListenUDP(9700, func(*simnet.Delivery, *packet.UDP) { delivered = true })
	d0.Hosts[1].Node.SendUDP(d0.Hosts[1].Addr, d1.Hosts[1].Addr, 1, 9700, packet.Payload("survivor"))
	sim.RunFor(time.Second)
	if !delivered {
		t.Fatal("data did not flow after failover")
	}
}

// TestAllProvidersDownPassthrough: with every destination provider down,
// PCED has no mapping to advertise and must let the plain DNS reply
// through (counted as passthrough) so at least name resolution survives.
func TestAllProvidersDownPassthrough(t *testing.T) {
	w := newPCEWorld(t, defaultSpec())
	sim := w.in.Sim
	for i := range w.in.Domain(1).Providers {
		w.pces[1].Engine().SetProviderUp(i, false)
	}
	ok := false
	w.in.Domain(0).Hosts[0].DNS.Lookup(w.in.HostName(1, 0), func(a netaddr.Addr, _ simnet.Time, success bool) {
		ok = success
	})
	sim.RunFor(5 * time.Second)
	if !ok {
		t.Fatal("DNS must survive a mapping blackout")
	}
	if w.pces[1].Stats().PassthroughReplies != 1 {
		t.Fatalf("passthroughs = %d", w.pces[1].Stats().PassthroughReplies)
	}
	if w.pces[1].Stats().EncapRepliesSent != 0 {
		t.Fatal("no mapping should have been advertised")
	}
}

// TestMappingTTLExpiryAtITR: pushed flow entries age out; a flow that
// outlives its mapping TTL falls back cleanly (drop under MissDrop)
// rather than using a stale tuple forever.
func TestMappingTTLExpiryAtITR(t *testing.T) {
	in := defaultSpec()
	w := newPCEWorld(t, in)
	sim := w.in.Sim
	d0, d1 := w.in.Domain(0), w.in.Domain(1)
	src, dst := d0.Hosts[0], d1.Hosts[0]

	src.DNS.Lookup(dst.Name, func(netaddr.Addr, simnet.Time, bool) {})
	sim.RunFor(2 * time.Second)
	delivered := 0
	dst.Node.ListenUDP(9800, func(*simnet.Delivery, *packet.UDP) { delivered++ })
	src.Node.SendUDP(src.Addr, dst.Addr, 1, 9800, packet.Payload("fresh"))
	sim.RunFor(time.Second)
	if delivered != 1 {
		t.Fatal("fresh mapping failed")
	}
	// Default MappingTTL is 300s; jump past it. The prefix entry and the
	// flow tuple both expire.
	sim.RunFor(400 * time.Second)
	src.Node.SendUDP(src.Addr, dst.Addr, 1, 9800, packet.Payload("stale"))
	sim.RunFor(time.Second)
	if delivered != 1 {
		t.Fatalf("delivered = %d; stale mapping must not deliver", delivered)
	}
	if d0.XTRs[0].Stats().CacheMissDrops != 1 {
		t.Fatalf("drops = %d, want 1 after TTL expiry", d0.XTRs[0].Stats().CacheMissDrops)
	}
}

// TestTwoFlowsDistinctIngress: with an equal-split policy, different
// flows from the same domain get different engineered ingress RLOCs —
// the per-flow granularity that prefix-based mappings cannot express.
func TestTwoFlowsDistinctIngress(t *testing.T) {
	w := newPCEWorld(t, topoSpecHosts(8), irc.EqualSplit{}, irc.MinLatency{})
	sim := w.in.Sim
	d0, d1 := w.in.Domain(0), w.in.Domain(1)
	for i := range d0.Hosts {
		i := i
		d0.Hosts[i].DNS.Lookup(d1.Hosts[0].Name, func(netaddr.Addr, simnet.Time, bool) {})
		_ = i
	}
	sim.RunFor(3 * time.Second)
	seen := map[netaddr.Addr]int{}
	for _, h := range d0.Hosts {
		fe, ok := d0.XTRs[0].Flows.Lookup(flowKeyFor(h.Addr, d1.Hosts[0].Addr))
		if !ok {
			t.Fatalf("flow for %v missing", h.Addr)
		}
		seen[fe.SrcRLOC]++
	}
	if len(seen) < 2 {
		t.Fatalf("all %d flows share one ingress RLOC: %v", len(d0.Hosts), seen)
	}
}
