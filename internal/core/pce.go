// Package core implements the paper's contribution: a PCE-based control
// plane for LISP. One PCE runs per domain, colocated with the domain's DNS
// servers and sitting in their data path. It plays both of the paper's
// roles at once:
//
//   - PCES (source role, steps 1 and 7): learns (ES, qname) from the local
//     resolver by IPC when a host starts a lookup, precomputes the ingress
//     RLOC for the flow's reverse direction with the IRC engine, intercepts
//     the port-P encapsulated DNS reply coming back from the remote PCED,
//     forwards the inner DNS answer to DNSS (7a), and pushes the mapping
//     tuple (ES, ED, RLOCS, RLOCD) to all local ITRs (7b) — before DNSS has
//     even answered the host, so the first data packet finds the mapping
//     installed.
//
//   - PCED (destination role, step 6): watches authoritative DNS replies
//     leaving the domain; when one carries an A record inside the local EID
//     prefix, it replaces the reply with a UDP message to the querying DNSS
//     on the special port P whose payload carries both the EID-to-RLOC
//     mapping (precomputed by the background IRC engine) and the original
//     DNS reply.
//
// The package also implements the paper's closing mechanism: on the first
// data packet of a flow, the receiving ETR learns the reverse mapping
// (ES -> RLOCS, from the outer header) and distributes it to its sibling
// ETRs and the PCE database via multicast, completing two-way resolution
// without a second lookup.
//
// Beyond the paper's text, two robustness paths are implemented and
// measured by experiment E8: a MapFetch exchange for flows whose DNS
// answer came from the resolver cache (so no reply ever crossed PCED), and
// transparent fallback to a classic mapping system when no PCE answers.
package core

import (
	"fmt"
	"sort"
	"time"

	"github.com/pcelisp/pcelisp/internal/dnssim"
	"github.com/pcelisp/pcelisp/internal/irc"
	"github.com/pcelisp/pcelisp/internal/lisp"
	"github.com/pcelisp/pcelisp/internal/netaddr"
	"github.com/pcelisp/pcelisp/internal/obs"
	"github.com/pcelisp/pcelisp/internal/packet"
	"github.com/pcelisp/pcelisp/internal/runtime"
	"github.com/pcelisp/pcelisp/internal/simnet"
)

// Config configures a domain's PCE.
type Config struct {
	// Addr is the PCE's own address.
	Addr netaddr.Addr
	// EIDPrefix is the domain's EID prefix.
	EIDPrefix netaddr.Prefix
	// DNSAddr is the colocated resolver's (DNSS) address; port-P traffic
	// toward it is intercepted.
	DNSAddr netaddr.Addr
	// Engine is the domain's IRC engine.
	Engine *irc.Engine
	// Group is the domain's ETR-synchronization multicast group.
	Group netaddr.Addr
	// MappingTTL is the lifetime, in seconds, of pushed mappings
	// (default 300).
	MappingTTL uint32
	// PendingTTL bounds how long a step-1 flow waits for its mapping
	// before being abandoned to the fallback path (default 10s).
	PendingTTL simnet.Time
	// AuthKey, when non-nil, signs every PCECP message this PCE (and its
	// wired xTRs) originates and rejects every inbound PCECP message that
	// does not verify against it. It models the per-plane key
	// distribution the paper assumes between cooperating PCEs: unlike the
	// open pull planes, the push channel is provisioned, so mutual
	// authentication has a natural rollout path.
	AuthKey []byte
	// FetchServiceRate bounds how many MapFetch queries per second the
	// PCED side can answer (0 = unbounded). With it set, fetches queue
	// behind a deterministic service budget — the PCE as a single point
	// of attack under flooding, modeled honestly.
	FetchServiceRate int
	// FetchQueueCap bounds the fetch service backlog in requests
	// (default 64 when FetchServiceRate is set). Arrivals beyond it drop.
	FetchQueueCap int
	// FetchQuotaLimit, when >0, caps MapFetch queries per source address
	// per second before they reach the service queue.
	FetchQuotaLimit int
	// Obs, when set, registers the PCE's metric set (and its remote
	// mapping database's cache metrics) with the registry.
	Obs *obs.Registry
	// Recorder, when set, receives control-plane decision events (weight
	// pushes, fetch activity, defense rejections).
	Recorder *obs.FlightRecorder
}

// Stats counts PCE activity for the experiments.
type Stats struct {
	// IPCQueries counts step-1 notifications from the resolver.
	IPCQueries uint64
	// EncapRepliesSent counts step-6 encapsulated DNS replies (PCED).
	EncapRepliesSent uint64
	// EncapRepliesReceived counts step-7 interceptions (PCES).
	EncapRepliesReceived uint64
	// PassthroughReplies counts authoritative replies PCED let through
	// unmodified because no mapping was available.
	PassthroughReplies uint64
	// MappingPushes counts step-7b pushes to the ITRs.
	MappingPushes uint64
	// FlowsPushed counts flow tuples across all pushes.
	FlowsPushed uint64
	// ReversePushes counts ETR reverse-mapping multicasts observed at the
	// PCE (database updates).
	ReversePushes uint64
	// MapFetches and MapFetchReplies count the cache-hit fallback;
	// MapFetchRetries counts fetches re-sent after going unanswered (a
	// shed query against a flooded PCED service queue).
	MapFetches      uint64
	MapFetchReplies uint64
	MapFetchRetries uint64
	// PendingExpired counts step-1 flows abandoned without a mapping.
	PendingExpired uint64
	// CacheHitPushes counts flows served from the PCE's own remote-mapping
	// database on DNS cache hits, with no remote exchange at all.
	CacheHitPushes uint64
	// TxControlMessages and TxControlBytes count PCECP traffic originated
	// by this PCE (experiment E5).
	TxControlMessages uint64
	TxControlBytes    uint64
	// ReachabilityReports counts probe-state and egress-state reports
	// consumed from the wired xTRs (the failure-injection subsystem).
	ReachabilityReports uint64
	// FailoverRepushes counts Repush rounds triggered by a reachability
	// report that actually moved flows.
	FailoverRepushes uint64
	// LoadReports counts xTR telemetry messages consumed (the inbound TE
	// optimizer's input).
	LoadReports uint64
	// WeightUpdatesSent counts MappingUpdate announcements to subscriber
	// PCEs after the optimizer changed locator weights.
	WeightUpdatesSent uint64
	// WeightUpdatesReceived counts MappingUpdate messages consumed from
	// remote PCEs (each triggers a Repush of affected flows).
	WeightUpdatesReceived uint64
	// WeightRepushes counts Repush rounds triggered by a received
	// MappingUpdate that actually moved flows.
	WeightRepushes uint64
	// AuthRejects counts inbound PCECP messages dropped for a missing or
	// bad signature (only counted when Config.AuthKey is set).
	AuthRejects uint64
	// FetchQueueDrops and FetchQuotaDrops count MapFetch queries shed by
	// the bounded service queue and the per-source quota.
	FetchQueueDrops uint64
	FetchQuotaDrops uint64
}

// pceMetrics is the PCE's live metric set: one obs counter per Stats
// field, embedded by value so control-plane handlers pay a plain atomic
// add. Stats() renders it back into the legacy snapshot struct.
type pceMetrics struct {
	IPCQueries            obs.Counter
	EncapRepliesSent      obs.Counter
	EncapRepliesReceived  obs.Counter
	PassthroughReplies    obs.Counter
	MappingPushes         obs.Counter
	FlowsPushed           obs.Counter
	ReversePushes         obs.Counter
	MapFetches            obs.Counter
	MapFetchReplies       obs.Counter
	MapFetchRetries       obs.Counter
	PendingExpired        obs.Counter
	CacheHitPushes        obs.Counter
	TxControlMessages     obs.Counter
	TxControlBytes        obs.Counter
	ReachabilityReports   obs.Counter
	FailoverRepushes      obs.Counter
	LoadReports           obs.Counter
	WeightUpdatesSent     obs.Counter
	WeightUpdatesReceived obs.Counter
	WeightRepushes        obs.Counter
	AuthRejects           obs.Counter
	FetchQueueDrops       obs.Counter
	FetchQuotaDrops       obs.Counter

	// FetchQueueDepth gauges the bounded MapFetch service backlog (in
	// queued requests) as of the last arrival — the operator's view of
	// the PCED under fetch pressure.
	FetchQueueDepth obs.Gauge
}

// register wires every metric into r (no-op when r is nil) under the
// pcelisp_pce_* family names, labeled by hosting node.
func (m *pceMetrics) register(r *obs.Registry, node string) {
	if r == nil {
		return
	}
	l := obs.Label{Key: "node", Value: node}
	c := func(name, help string, ctr *obs.Counter) {
		r.RegisterCounter("pcelisp_pce_"+name, help, ctr, l)
	}
	c("ipc_queries_total", "Step-1 notifications from the colocated resolver.", &m.IPCQueries)
	c("encap_replies_sent_total", "Step-6 encapsulated DNS replies (PCED).", &m.EncapRepliesSent)
	c("encap_replies_received_total", "Step-7 interceptions (PCES).", &m.EncapRepliesReceived)
	c("passthrough_replies_total", "Authoritative replies passed through unmapped.", &m.PassthroughReplies)
	c("mapping_pushes_total", "Step-7b mapping pushes to the ITRs.", &m.MappingPushes)
	c("flows_pushed_total", "Flow tuples across all mapping pushes.", &m.FlowsPushed)
	c("reverse_pushes_total", "ETR reverse-mapping multicasts consumed.", &m.ReversePushes)
	c("map_fetches_total", "Cache-hit fallback MapFetch queries sent.", &m.MapFetches)
	c("map_fetch_replies_total", "MapFetch replies received.", &m.MapFetchReplies)
	c("map_fetch_retries_total", "MapFetch queries re-sent after going unanswered.", &m.MapFetchRetries)
	c("pending_expired_total", "Step-1 flows abandoned without a mapping.", &m.PendingExpired)
	c("cache_hit_pushes_total", "Flows served from the local remote-mapping database.", &m.CacheHitPushes)
	c("tx_control_messages_total", "PCECP messages originated.", &m.TxControlMessages)
	c("tx_control_bytes_total", "PCECP bytes originated.", &m.TxControlBytes)
	c("reachability_reports_total", "Probe/egress state reports consumed from wired xTRs.", &m.ReachabilityReports)
	c("failover_repushes_total", "Repush rounds triggered by reachability reports.", &m.FailoverRepushes)
	c("load_reports_total", "xTR link-load telemetry messages consumed.", &m.LoadReports)
	c("weight_updates_sent_total", "MappingUpdate announcements to subscriber PCEs.", &m.WeightUpdatesSent)
	c("weight_updates_received_total", "MappingUpdate messages consumed from remote PCEs.", &m.WeightUpdatesReceived)
	c("weight_repushes_total", "Repush rounds triggered by received MappingUpdates.", &m.WeightRepushes)
	c("auth_rejects_total", "Inbound PCECP messages dropped for bad signatures.", &m.AuthRejects)
	c("fetch_queue_drops_total", "MapFetch queries shed by the bounded service queue.", &m.FetchQueueDrops)
	c("fetch_quota_drops_total", "MapFetch queries shed by the per-source quota.", &m.FetchQuotaDrops)
	r.RegisterGauge("pcelisp_pce_fetch_queue_depth", "Bounded MapFetch service backlog at last arrival.", &m.FetchQueueDepth, l)
}

// snapshot renders the live counters as the legacy stats struct.
func (m *pceMetrics) snapshot() Stats {
	return Stats{
		IPCQueries:            m.IPCQueries.Load(),
		EncapRepliesSent:      m.EncapRepliesSent.Load(),
		EncapRepliesReceived:  m.EncapRepliesReceived.Load(),
		PassthroughReplies:    m.PassthroughReplies.Load(),
		MappingPushes:         m.MappingPushes.Load(),
		FlowsPushed:           m.FlowsPushed.Load(),
		ReversePushes:         m.ReversePushes.Load(),
		MapFetches:            m.MapFetches.Load(),
		MapFetchReplies:       m.MapFetchReplies.Load(),
		MapFetchRetries:       m.MapFetchRetries.Load(),
		PendingExpired:        m.PendingExpired.Load(),
		CacheHitPushes:        m.CacheHitPushes.Load(),
		TxControlMessages:     m.TxControlMessages.Load(),
		TxControlBytes:        m.TxControlBytes.Load(),
		ReachabilityReports:   m.ReachabilityReports.Load(),
		FailoverRepushes:      m.FailoverRepushes.Load(),
		LoadReports:           m.LoadReports.Load(),
		WeightUpdatesSent:     m.WeightUpdatesSent.Load(),
		WeightUpdatesReceived: m.WeightUpdatesReceived.Load(),
		WeightRepushes:        m.WeightRepushes.Load(),
		AuthRejects:           m.AuthRejects.Load(),
		FetchQueueDrops:       m.FetchQueueDrops.Load(),
		FetchQuotaDrops:       m.FetchQuotaDrops.Load(),
	}
}

// EventKind classifies PCE events for the OnEvent hook.
type EventKind int

// Event kinds.
const (
	// EvEncapReplySent is PCED replacing a DNS reply (step 6).
	EvEncapReplySent EventKind = iota
	// EvEncapReplyReceived is PCES intercepting port P (step 7).
	EvEncapReplyReceived
	// EvMappingPushed is the step-7b push to the ITRs.
	EvMappingPushed
	// EvFlowInstalled is an ITR installing a pushed flow tuple.
	EvFlowInstalled
	// EvReversePushed is an ETR multicasting a reverse mapping.
	EvReversePushed
	// EvReverseInstalled is a sibling installing the reverse mapping.
	EvReverseInstalled
	// EvMapFetchSent is the cache-hit fallback query.
	EvMapFetchSent
	// EvPassthrough is PCED letting a reply through unmapped.
	EvPassthrough
)

// Event is one PCE control-plane milestone.
type Event struct {
	Kind EventKind
	At   simnet.Time
	Node string
	// SrcEID/DstEID identify the flow when applicable.
	SrcEID, DstEID netaddr.Addr
}

// pendingFlow is a step-1 record awaiting its mapping.
type pendingFlow struct {
	client  netaddr.Addr
	ingress netaddr.Addr
	born    simnet.Time
}

// PCE is one domain's Path Computation Element.
type PCE struct {
	// rt and host are the runtime seam — the PCE state machine reads the
	// clock, arms timers and emits frames only through them, so the same
	// code runs under the sim and the real-time daemon.
	rt   runtime.Runtime
	host runtime.Host
	// node is the hosting sim node (nil in real mode); kept for sim-only
	// call sites in experiments.
	node *simnet.Node
	cfg  Config
	xtrs []*lisp.XTR

	pending map[string][]pendingFlow // qname -> waiting flows
	// remote caches learned remote prefix mappings (the PCES database).
	remote *lisp.MapCache
	// peers maps remote EID prefixes to their PCED address.
	peers *netaddr.Trie[netaddr.Addr]
	// fetches tracks outstanding MapFetch nonces.
	fetches map[uint64]fetchCtx
	// pushed tracks live pushed flows for TE re-pushes.
	pushed map[lisp.FlowKey]pushedFlow
	// lastOuter tracks the last outer source seen per flow at local ETRs,
	// so an upstream TE shift (new RLOCS) re-triggers the reverse push.
	lastOuter map[lisp.FlowKey]outerSeen
	// subscribers tracks, per remote DNSS address (as a host prefix), when
	// this PCED last handed out its own mapping toward it — the audience
	// for unsolicited MappingUpdate announcements when the TE optimizer
	// changes locator weights. Entries idle longer than the mapping TTL
	// are pruned by the maintenance sweep (the remote copy has expired
	// anyway). A trie rather than a map: its walk yields addresses in
	// ascending order, so announcement fan-out needs no sort to be
	// deterministic.
	subscribers *netaddr.Trie[simnet.Time]
	// fetchBusyUntil is when the bounded MapFetch service queue drains
	// (the MapResolver service model, applied to the PCED side).
	fetchBusyUntil simnet.Time
	// fetchQuota rate-limits MapFetch queries per source.
	fetchQuota *lisp.SourceQuota
	// maintArmed marks an outstanding maintenance sweep. The sweep prunes
	// pushed/lastOuter/subscriber/ETR first-packet state older than
	// MappingTTL and re-arms only while state remains, so long-running
	// simulations hold steady memory without keeping the event queue
	// alive forever.
	maintArmed bool

	// OnEvent, when set, receives control-plane milestones (experiment
	// instrumentation).
	OnEvent func(Event)
	// OnLoadReport, when set, receives xTR link-load telemetry — the
	// inbound TE optimizer consumes it.
	OnLoadReport func(src netaddr.Addr, loads []packet.PCELoadRecord)

	// met holds the live metric set (see pceMetrics); Stats() snapshots
	// it. rec is the control-plane flight recorder (nil-safe).
	met pceMetrics
	rec *obs.FlightRecorder
}

// Stats snapshots the PCE's activity counters — the legacy stats view,
// now a thin read over the live obs metric set.
func (p *PCE) Stats() Stats { return p.met.snapshot() }

type pushedFlow struct {
	src     netaddr.Addr // SrcRLOC in use (the ingress choice)
	dst     netaddr.Addr // DstRLOC in use
	expires simnet.Time
}

// outerSeen is one lastOuter record: the outer source RLOC last observed
// for a flow and when, so stale records can be aged out.
type outerSeen struct {
	src  netaddr.Addr
	seen simnet.Time
}

// fetchCtx remembers what a MapFetch was for.
type fetchCtx struct {
	qname string
	ed    netaddr.Addr
	pced  netaddr.Addr
	tries int
}

// The MapFetch retry clock: a fetch shed by a flooded (or lossy) PCED
// service queue is re-sent a few times before the pending flows are left
// to age out — without it one dropped query strands every flow behind
// its qname for the full PendingTTL.
const (
	fetchRetryInterval = 2500 * time.Millisecond
	fetchMaxTries      = 4 // one initial send plus three retries
)

// New attaches a PCE to a simulator node. The node must already forward
// the domain's DNS traffic (be "in the data path of the DNS servers").
// It registers the sim-native sniffer and listener forms so the pooled
// Delivery decode keeps serving the per-frame inspection hot path.
func New(node *simnet.Node, cfg Config) *PCE {
	p := newPCE(node.Sim(), node, cfg)
	p.node = node
	node.AddSniffer(p.sniff)
	node.ListenUDP(packet.PortPCECP, func(d *simnet.Delivery, udp *packet.UDP) {
		ip := d.IPv4()
		p.HandleControl(ip.SrcIP, ip.DstIP, udp)
	})
	if cfg.Group.IsValid() {
		node.Join(cfg.Group)
	}
	return p
}

// NewWithRuntime builds a PCE against the runtime contract — the real-time
// daemon's entry point. The host must carry the domain's DNS traffic
// through its sniffer chain (the "PCE in the data path of the DNS
// servers" placement).
func NewWithRuntime(rt runtime.Runtime, host runtime.Host, cfg Config) *PCE {
	p := newPCE(rt, host, cfg)
	host.AddFrameSniffer(p.SniffFrame)
	host.BindUDP(cfg.Addr, packet.PortPCECP, p.HandleControl)
	if cfg.Group.IsValid() {
		host.JoinGroup(cfg.Group)
	}
	return p
}

// newPCE holds the construction shared by both engines.
func newPCE(rt runtime.Runtime, host runtime.Host, cfg Config) *PCE {
	if cfg.MappingTTL == 0 {
		cfg.MappingTTL = 300
	}
	if cfg.PendingTTL == 0 {
		cfg.PendingTTL = 10 * time.Second
	}
	if cfg.FetchServiceRate > 0 && cfg.FetchQueueCap == 0 {
		cfg.FetchQueueCap = 64
	}
	p := &PCE{
		rt:          rt,
		host:        host,
		cfg:         cfg,
		pending:     make(map[string][]pendingFlow),
		remote:      lisp.NewMapCache(rt, 0),
		peers:       netaddr.NewTrie[netaddr.Addr](),
		fetches:     make(map[uint64]fetchCtx),
		pushed:      make(map[lisp.FlowKey]pushedFlow),
		lastOuter:   make(map[lisp.FlowKey]outerSeen),
		subscribers: netaddr.NewTrie[simnet.Time](),
	}
	if cfg.FetchQuotaLimit > 0 {
		p.fetchQuota = &lisp.SourceQuota{Limit: cfg.FetchQuotaLimit}
	}
	p.rec = cfg.Recorder
	p.met.register(cfg.Obs, host.HostName())
	p.remote.RegisterMetrics(cfg.Obs, host.HostName(), obs.Label{Key: "cache", Value: "pce-remote"})
	return p
}

// Node returns the PCE's sim node (nil when running in real time).
func (p *PCE) Node() *simnet.Node { return p.node }

// Addr returns the PCE's address.
func (p *PCE) Addr() netaddr.Addr { return p.cfg.Addr }

// RemoteMappings returns the PCES database of learned remote mappings.
func (p *PCE) RemoteMappings() *lisp.MapCache { return p.remote }

// AttachResolver wires the paper's step-1 IPC: the resolver notifies the
// PCE of every client query (and of every answer, for the cache-hit
// fallback).
func (p *PCE) AttachResolver(r *dnssim.Resolver) {
	r.OnClientQuery = p.NoteClientQuery
	r.OnAnswer = p.NoteAnswer
}

// NoteClientQuery is the step-1 IPC entry point: the local resolver (sim
// dnssim.Resolver or the daemon's DNS front end) reports that client
// started resolving qname, and the PCE precomputes the flow's ingress
// RLOC while the lookup is in flight.
func (p *PCE) NoteClientQuery(client netaddr.Addr, qname string) {
	p.met.IPCQueries.Inc()
	if !p.cfg.EIDPrefix.Contains(client) {
		return // not an end-host flow (infrastructure lookup)
	}
	h := flowStringHash(client, qname)
	ingress, _ := p.cfg.Engine.IngressRLOC(h)
	p.pending[qname] = append(p.pending[qname], pendingFlow{
		client: client, ingress: ingress, born: p.rt.Now(),
	})
	p.rt.ScheduleTimer(p.cfg.PendingTTL, p,
		simnet.TimerArg{Kind: pceTimerPendingExpire, S: qname})
}

// NoteAnswer is the answer half of the resolver IPC: cache hits bypass
// PCED entirely, so the PCE serves the mapping from its own database or
// fetches it from the known peer (experiment E8's fallback paths).
func (p *PCE) NoteAnswer(client netaddr.Addr, qname string, addr netaddr.Addr, fromCache bool) {
	if !fromCache || !p.cfg.EIDPrefix.Contains(client) {
		return
	}
	if p.cfg.EIDPrefix.Contains(addr) || !addr.IsValid() {
		p.dropPending(qname, client)
		return
	}
	// The answer came from the DNSS cache, so no reply crossed PCED.
	// Serve from our own database, or fetch from the known peer.
	if _, ok := p.remote.Lookup(addr); ok {
		p.met.CacheHitPushes.Inc()
		p.pushFlowsFor(qname, addr)
		return
	}
	if pced, _, ok := p.peers.Lookup(addr); ok {
		p.sendMapFetch(pced, addr, qname)
		return
	}
	// Unknown peer: leave it to the ITR's fallback resolver.
	p.dropPending(qname, client)
}

func (p *PCE) expirePending(qname string) {
	now := p.rt.Now()
	kept := p.pending[qname][:0]
	for _, pf := range p.pending[qname] {
		if now-pf.born < p.cfg.PendingTTL {
			kept = append(kept, pf)
		} else {
			p.met.PendingExpired.Inc()
		}
	}
	if len(kept) == 0 {
		delete(p.pending, qname)
	} else {
		p.pending[qname] = kept
	}
}

func (p *PCE) dropPending(qname string, client netaddr.Addr) {
	kept := p.pending[qname][:0]
	for _, pf := range p.pending[qname] {
		if pf.client != client {
			kept = append(kept, pf)
		}
	}
	if len(kept) == 0 {
		delete(p.pending, qname)
	} else {
		p.pending[qname] = kept
	}
}

// WireXTR connects a local tunnel router: it joins the ETR sync group,
// receives mapping pushes on port P, and multicasts reverse mappings on
// first (or re-routed) decapsulated packets.
func (p *PCE) WireXTR(x *lisp.XTR) {
	p.xtrs = append(p.xtrs, x)
	x.SetSeenTTL(p.mappingTTL())
	host := x.Host()
	if p.cfg.Group.IsValid() {
		host.JoinGroup(p.cfg.Group)
	}
	host.BindUDP(x.RLOC(), packet.PortPCECP, func(src, dst netaddr.Addr, udp *packet.UDP) {
		p.handleXTRPCECP(x, udp)
	})
	x.OnDecap = func(info lisp.DecapInfo) {
		p.onDecap(x, info)
	}
	// Reachability consumption: when the xTR's prober flips a remote
	// locator or observes a local egress transition, recompute locator
	// sets and re-push the affected flows — the reaction pull-based
	// control planes can only have after TTL expiry.
	x.OnReachability = func(rloc netaddr.Addr, up bool) {
		p.onReachability(x, rloc, up, false)
	}
	x.OnEgressState = func(rloc netaddr.Addr, up bool) {
		p.onReachability(x, rloc, up, true)
	}
}

// onReachability consumes one xTR liveness report. Local egress
// transitions feed the IRC engine (recomputing the advertised and
// ingress locator sets); remote locator transitions flip the R bits in
// the PCES database and every sibling ITR's cache. Both end in a Repush
// so live flows move off (or back onto) the affected RLOC immediately.
func (p *PCE) onReachability(from *lisp.XTR, rloc netaddr.Addr, up bool, local bool) {
	p.met.ReachabilityReports.Inc()
	if local {
		for i, prov := range p.cfg.Engine.Providers() {
			if prov.RLOC == rloc {
				p.cfg.Engine.SetProviderUp(i, up)
			}
		}
	} else {
		p.remote.SetLocatorReachable(rloc, up)
		for _, x := range p.xtrs {
			if x != from {
				x.Cache.SetLocatorReachable(rloc, up)
			}
		}
	}
	if p.Repush() > 0 {
		p.met.FailoverRepushes.Inc()
	}
}

// XTRs returns the wired tunnel routers.
func (p *PCE) XTRs() []*lisp.XTR { return p.xtrs }

// handleXTRPCECP processes port-P messages at an xTR: mapping pushes from
// the PCE and reverse pushes from sibling ETRs.
func (p *PCE) handleXTRPCECP(x *lisp.XTR, udp *packet.UDP) {
	msg, ok := decodePCECP(udp.LayerPayload())
	if !ok || !p.verified(msg) {
		return
	}
	switch msg.Type {
	case packet.PCECPMappingPush, packet.PCECPReverseMapPush:
		for _, f := range msg.Flows {
			x.InstallFlow(f.SrcEID, f.DstEID, f.SrcRLOC, f.DstRLOC, f.TTL)
			kind := EvFlowInstalled
			if msg.Type == packet.PCECPReverseMapPush {
				kind = EvReverseInstalled
			}
			p.emit(Event{Kind: kind, Node: x.HostName(), SrcEID: f.SrcEID, DstEID: f.DstEID})
		}
		for _, pm := range msg.Prefixes {
			x.InstallMapping(prefixToEntry(p.rt, pm))
		}
	}
}

// onDecap implements the paper's ETR behaviour: on the first data packet
// of a flow (or when the peer's ingress RLOC visibly changed), learn the
// reverse mapping from the outer header and multicast it to the sibling
// ETRs and the PCE database.
func (p *PCE) onDecap(x *lisp.XTR, info lisp.DecapInfo) {
	fk := lisp.FlowKey{Src: info.InnerSrc, Dst: info.InnerDst}
	changed := p.lastOuter[fk].src != info.OuterSrc
	p.lastOuter[fk] = outerSeen{src: info.OuterSrc, seen: p.rt.Now()}
	p.armMaintenance()
	if !info.First && !changed {
		return
	}
	// Reverse direction: local InnerDst replies to remote InnerSrc using
	// our RLOC (the outer destination the sender chose from our mapping)
	// as source and the sender's engineered RLOCS as destination.
	rev := packet.PCEFlowMapping{
		TTL:     p.cfg.MappingTTL,
		SrcEID:  info.InnerDst,
		DstEID:  info.InnerSrc,
		SrcRLOC: info.OuterDst,
		DstRLOC: info.OuterSrc,
	}
	x.InstallFlow(rev.SrcEID, rev.DstEID, rev.SrcRLOC, rev.DstRLOC, rev.TTL)
	p.emit(Event{Kind: EvReversePushed, Node: x.HostName(), SrcEID: rev.SrcEID, DstEID: rev.DstEID})
	if !p.cfg.Group.IsValid() {
		return
	}
	msg := &packet.PCECP{
		Version: packet.PCECPVersion, Type: packet.PCECPReverseMapPush,
		Nonce: p.rt.Rand().Uint64(), PCEAddr: p.cfg.Addr,
		Flows: []packet.PCEFlowMapping{rev},
	}
	if p.cfg.AuthKey != nil {
		msg.KeyID = 1
		msg.AuthKey = p.cfg.AuthKey
	}
	x.Host().OutputUDP(x.RLOC(), p.cfg.Group, packet.PortPCECP, packet.PortPCECP, msg)
}

// sniff is the sim-native inspector form, riding the pooled Delivery
// decode so per-frame inspection on the PCE node stays allocation-free.
func (p *PCE) sniff(d *simnet.Delivery) simnet.SnifferVerdict {
	ip := d.IPv4()
	if ip == nil || ip.Protocol != packet.IPProtocolUDP {
		return simnet.SnifferPass
	}
	udpl := d.Packet().Layer(packet.LayerTypeUDP)
	if udpl == nil {
		return simnet.SnifferPass
	}
	if p.sniffUDP(ip, udpl.(*packet.UDP)) {
		return simnet.SnifferConsume
	}
	return simnet.SnifferPass
}

// SniffFrame is the bump-in-the-wire inspector in runtime.FrameSniffer
// form, decoding the frame itself — the real-time host registers this one.
func (p *PCE) SniffFrame(data []byte) runtime.Verdict {
	pk := packet.NewPacket(data, packet.LayerTypeIPv4, packet.NoCopy)
	ipl := pk.Layer(packet.LayerTypeIPv4)
	if ipl == nil {
		return runtime.VerdictPass
	}
	ip := ipl.(*packet.IPv4)
	if ip.Protocol != packet.IPProtocolUDP {
		return runtime.VerdictPass
	}
	udpl := pk.Layer(packet.LayerTypeUDP)
	if udpl == nil {
		return runtime.VerdictPass
	}
	if p.sniffUDP(ip, udpl.(*packet.UDP)) {
		return runtime.VerdictConsume
	}
	return runtime.VerdictPass
}

// sniffUDP is the shared sniffer decision core; it reports whether the
// frame was consumed.
func (p *PCE) sniffUDP(ip *packet.IPv4, udp *packet.UDP) bool {
	// PCES: encapsulated replies and fetch replies to our DNSS on port P.
	if udp.DstPort == packet.PortPCECP && ip.DstIP == p.cfg.DNSAddr {
		return p.handlePortP(udp.LayerPayload())
	}

	// PCED: authoritative replies leaving the domain with local EIDs.
	if udp.SrcPort == packet.PortDNS && ip.DstIP != p.cfg.DNSAddr &&
		!p.cfg.EIDPrefix.Contains(ip.DstIP) {
		return p.maybeEncapReply(ip, udp)
	}
	return false
}

// maybeEncapReply implements step 6; it reports whether the reply was
// replaced (consumed).
func (p *PCE) maybeEncapReply(ip *packet.IPv4, udp *packet.UDP) bool {
	dns := &packet.DNS{}
	if err := dns.DecodeFromBytes(udp.LayerPayload()); err != nil || !dns.QR || !dns.AA {
		return false
	}
	ed, ok := dns.FirstA()
	if !ok || !p.cfg.EIDPrefix.Contains(ed) {
		return false
	}
	locators := p.cfg.Engine.MappingLocators()
	if len(locators) == 0 {
		// No usable provider: let the plain reply through; data will fall
		// back to the classic mapping system.
		p.met.PassthroughReplies.Inc()
		p.emit(Event{Kind: EvPassthrough, DstEID: ed})
		return false
	}
	p.met.EncapRepliesSent.Inc()
	p.emit(Event{Kind: EvEncapReplySent, DstEID: ed})
	p.addSubscriber(ip.DstIP)
	msg := &packet.PCECP{
		Version: packet.PCECPVersion, Type: packet.PCECPEncapDNSReply,
		Nonce: p.rt.Rand().Uint64(), PCEAddr: p.cfg.Addr,
		Prefixes: []packet.PCEPrefixMapping{{
			Prefix: p.cfg.EIDPrefix, TTL: p.cfg.MappingTTL, Locators: locators,
		}},
	}
	// The original DNS reply rides as the inner payload; the outer
	// message goes to the same DNSS that the reply was addressed to.
	p.sendControl(ip.DstIP, msg, packet.Payload(udp.LayerPayload()))
	return true
}

// handlePortP implements step 7 (PCES side). It reports whether the
// message was consumed.
func (p *PCE) handlePortP(payload []byte) bool {
	msg, ok := decodePCECP(payload)
	if !ok {
		return false
	}
	if !p.verified(msg) {
		// Consume forged port-P traffic so it never reaches DNSS either.
		return true
	}
	switch msg.Type {
	case packet.PCECPEncapDNSReply:
		p.met.EncapRepliesReceived.Inc()
		p.learnMappings(msg)
		inner := msg.LayerPayload()
		if len(inner) == 0 {
			return true
		}
		// 7a: forward the inner DNS reply to DNSS.
		p.host.OutputUDP(p.cfg.Addr, p.cfg.DNSAddr,
			packet.PortDNS, packet.PortDNS, packet.Payload(inner))
		// 7b: push the mapping for every pending flow of this qname.
		dns := &packet.DNS{}
		if err := dns.DecodeFromBytes(inner); err == nil && len(dns.Questions) > 0 {
			if ed, found := dns.FirstA(); found {
				p.emit(Event{Kind: EvEncapReplyReceived, DstEID: ed})
				p.pushFlowsFor(dnssim.CanonicalName(dns.Questions[0].Name), ed)
			}
		}
		return true
	case packet.PCECPMapFetchReply:
		p.learnMappings(msg)
		ctx, ok := p.fetches[msg.Nonce]
		if !ok {
			return true
		}
		delete(p.fetches, msg.Nonce)
		p.met.MapFetchReplies.Inc()
		p.pushFlowsFor(ctx.qname, ctx.ed)
		return true
	case packet.PCECPMappingUpdate:
		// A remote TE optimizer changed its locator weights: refresh the
		// PCES database and the ITR caches, then re-push every live flow
		// whose engineered RLOC pair moved — the one-RTT reaction that
		// pull planes only get at TTL expiry.
		p.met.WeightUpdatesReceived.Inc()
		p.learnMappings(msg)
		p.push(nil, msg.Prefixes)
		if p.Repush() > 0 {
			p.met.WeightRepushes.Inc()
		}
		return true
	}
	return false
}

// HandleControl processes port-P messages addressed to the PCE itself:
// MapFetch queries (PCED side) and multicast database updates. src is the
// outer IPv4 source (the fetch quota key).
func (p *PCE) HandleControl(src, dst netaddr.Addr, udp *packet.UDP) {
	msg, ok := decodePCECP(udp.LayerPayload())
	if !ok {
		return
	}
	// MapFetch signatures are verified at service time, inside answerFetch:
	// checking a MAC costs the same bounded control-plane budget as
	// answering, so a flood of unverifiable fetches still consumes PCED
	// capacity — the PCE is honestly a single point of attack, and only
	// the per-source quota (a cheap pre-filter) shields the queue itself.
	if msg.Type != packet.PCECPMapFetch && !p.verified(msg) {
		return
	}
	switch msg.Type {
	case packet.PCECPMapFetch:
		p.met.MapFetches.Inc()
		// A truncated or malformed fetch carries no flow record (the
		// record's SrcRLOC is the reply target); answering would
		// dereference nothing and a crash here takes down the whole
		// domain's control plane.
		if len(msg.Flows) == 0 || !msg.Flows[0].SrcRLOC.IsValid() {
			return
		}
		now := p.rt.Now()
		if p.fetchQuota != nil && !p.fetchQuota.Allow(now, src) {
			p.met.FetchQuotaDrops.Inc()
			p.rec.Record(obs.Event{
				At: time.Duration(now), Kind: obs.KDefenseReject, Node: p.host.HostName(),
				RLOC: src, Note: "fetch-quota",
			})
			return
		}
		if p.cfg.FetchServiceRate <= 0 {
			p.answerFetch(msg)
			return
		}
		// Bounded service queue, the MapResolver model: each fetch costs
		// 1/rate seconds of a single deterministic server; arrivals that
		// would wait past QueueCap service slots are shed.
		cost := simnet.Time(time.Second) / simnet.Time(p.cfg.FetchServiceRate)
		start := p.fetchBusyUntil
		if start < now {
			start = now
		}
		if start-now > cost*simnet.Time(p.cfg.FetchQueueCap) {
			p.met.FetchQueueDrops.Inc()
			p.rec.Record(obs.Event{
				At: time.Duration(now), Kind: obs.KDefenseReject, Node: p.host.HostName(),
				RLOC: src, Note: "fetch-queue-full",
			})
			return
		}
		p.fetchBusyUntil = start + cost
		p.met.FetchQueueDepth.Set(int64((p.fetchBusyUntil - now) / cost))
		p.rt.ScheduleTimer(p.fetchBusyUntil-now, p,
			simnet.TimerArg{Kind: pceTimerFetchService, P: msg})
	case packet.PCECPReverseMapPush:
		p.met.ReversePushes.Inc()
		// Database update: remember the flows (metrics only; the PCED
		// database is consulted by TE tooling).
		now := p.rt.Now()
		for _, f := range msg.Flows {
			p.lastOuter[lisp.FlowKey{Src: f.DstEID, Dst: f.SrcEID}] = outerSeen{src: f.DstRLOC, seen: now}
		}
		if len(msg.Flows) > 0 {
			p.armMaintenance()
		}
	case packet.PCECPLoadReport:
		p.met.LoadReports.Inc()
		if p.OnLoadReport != nil {
			p.OnLoadReport(src, msg.Loads)
		}
	case packet.PCECPMappingPush:
		// Multicast copy of our own push (head-end replication excludes
		// the sender, so this only happens for pushes from sibling PCEs
		// in shared-group deployments); nothing to do.
	}
}

// answerFetch serves one MapFetch query (after any service delay),
// verifying its signature first — the deferred check handleLocalPCECP
// documents.
func (p *PCE) answerFetch(msg *packet.PCECP) {
	if !p.verified(msg) {
		return
	}
	locators := p.cfg.Engine.MappingLocators()
	reply := &packet.PCECP{
		Version: packet.PCECPVersion, Type: packet.PCECPMapFetchReply,
		Nonce: msg.Nonce, PCEAddr: p.cfg.Addr,
	}
	if len(locators) > 0 {
		reply.Prefixes = []packet.PCEPrefixMapping{{
			Prefix: p.cfg.EIDPrefix, TTL: p.cfg.MappingTTL, Locators: locators,
		}}
	}
	// The reply goes to the querying PCES "toward its DNSS" like the
	// encapsulated replies, so the same interception path handles it.
	p.addSubscriber(msg.Flows[0].SrcRLOC)
	p.sendControl(msg.Flows[0].SrcRLOC, reply)
}

// verified enforces Config.AuthKey on an inbound PCECP message.
func (p *PCE) verified(msg *packet.PCECP) bool {
	if p.cfg.AuthKey == nil || msg.VerifyAuth(p.cfg.AuthKey) {
		return true
	}
	p.met.AuthRejects.Inc()
	p.rec.Record(obs.Event{
		At: time.Duration(p.rt.Now()), Kind: obs.KDefenseReject, Node: p.host.HostName(),
		RLOC: msg.PCEAddr, Note: "pcecp-auth",
	})
	return false
}

// addSubscriber remembers a remote DNSS that received this domain's
// mapping, refreshing its announcement lease.
func (p *PCE) addSubscriber(dnss netaddr.Addr) {
	if !dnss.IsValid() {
		return
	}
	p.subscribers.Insert(netaddr.HostPrefix(dnss), p.rt.Now())
	p.armMaintenance()
}

// Subscribers returns the number of live announcement targets.
func (p *PCE) Subscribers() int { return p.subscribers.Len() }

// ApplyProviderWeights installs a new locator priority/weight vector,
// indexed by provider: the IRC engine's policy is replaced by the
// explicit table (recomputing the advertised and ingress locator sets),
// the update is announced to every subscriber PCE, and live local flows
// are re-pushed so the outbound ingress choice follows too. This is the
// actuator of the closed-loop inbound TE optimizer. It returns the
// number of subscribers notified.
func (p *PCE) ApplyProviderWeights(weights []uint8) int {
	choices := make([]irc.Choice, len(weights))
	for i, w := range weights {
		choices[i] = irc.Choice{Index: i, Priority: 1, Weight: w}
	}
	p.cfg.Engine.SetPolicy(irc.WeightTable{Choices: choices})
	n := p.AnnounceMappingUpdate()
	p.Repush()
	return n
}

// AnnounceMappingUpdate pushes the current advertised mapping to every
// subscriber PCE as an unsolicited PCECPMappingUpdate. The subscriber
// trie walks in ascending address order, so the transmission order (and
// thus every downstream byte) is deterministic without sorting.
func (p *PCE) AnnounceMappingUpdate() int {
	locators := p.cfg.Engine.MappingLocators()
	if len(locators) == 0 || p.subscribers.Len() == 0 {
		return 0
	}
	targets := make([]netaddr.Addr, 0, p.subscribers.Len())
	p.subscribers.Walk(func(np netaddr.Prefix, _ simnet.Time) bool {
		targets = append(targets, np.Addr())
		return true
	})
	now := p.rt.Now()
	p.rec.Record(obs.Event{
		At: time.Duration(now), Kind: obs.KWeightPush, Node: p.host.HostName(),
		EID: p.cfg.EIDPrefix, Note: fmt.Sprintf("subscribers=%d", len(targets)),
	})
	for _, dnss := range targets {
		msg := &packet.PCECP{
			Version: packet.PCECPVersion, Type: packet.PCECPMappingUpdate,
			Nonce: p.rt.Rand().Uint64(), PCEAddr: p.cfg.Addr,
			Prefixes: []packet.PCEPrefixMapping{{
				Prefix: p.cfg.EIDPrefix, TTL: p.cfg.MappingTTL, Locators: locators,
			}},
		}
		p.met.WeightUpdatesSent.Inc()
		p.subscribers.Insert(netaddr.HostPrefix(dnss), now)
		p.sendControl(dnss, msg)
	}
	return len(targets)
}

// sendMapFetch issues the cache-hit fallback query toward a known PCED.
func (p *PCE) sendMapFetch(pced, ed netaddr.Addr, qname string) {
	nonce := p.rt.Rand().Uint64()
	p.fetches[nonce] = fetchCtx{qname: qname, ed: ed, pced: pced, tries: 1}
	p.met.MapFetches.Inc()
	p.rec.Record(obs.Event{
		At: time.Duration(p.rt.Now()), Kind: obs.KMapRequest, Node: p.host.HostName(),
		EID: netaddr.PrefixFrom(ed, 32), Note: "map-fetch",
	})
	p.emit(Event{Kind: EvMapFetchSent, DstEID: ed})
	p.transmitFetch(pced, ed, nonce)
	p.rt.ScheduleTimer(fetchRetryInterval, p,
		simnet.TimerArg{Kind: pceTimerFetchRetry, N: int64(nonce)})
}

// transmitFetch sends (or re-sends) the MapFetch query for nonce.
func (p *PCE) transmitFetch(pced, ed netaddr.Addr, nonce uint64) {
	msg := &packet.PCECP{
		Version: packet.PCECPVersion, Type: packet.PCECPMapFetch,
		Nonce: nonce, PCEAddr: p.cfg.Addr,
		// The queried EID and our DNSS (for reply interception) ride in a
		// flow record: SrcRLOC carries the reply target.
		Flows: []packet.PCEFlowMapping{{SrcEID: 0, DstEID: ed, SrcRLOC: p.cfg.DNSAddr}},
	}
	p.sendControl(pced, msg)
}

// retryFetch re-sends an unanswered MapFetch or gives up after
// fetchMaxTries, leaving the pending flows to expire on their own TTL.
func (p *PCE) retryFetch(nonce uint64) {
	ctx, ok := p.fetches[nonce]
	if !ok {
		return // answered — nothing to do
	}
	if ctx.tries >= fetchMaxTries {
		delete(p.fetches, nonce)
		return
	}
	ctx.tries++
	p.fetches[nonce] = ctx
	p.met.MapFetchRetries.Inc()
	p.transmitFetch(ctx.pced, ctx.ed, nonce)
	p.rt.ScheduleTimer(fetchRetryInterval, p,
		simnet.TimerArg{Kind: pceTimerFetchRetry, N: int64(nonce)})
}

// learnMappings ingests the prefix mappings of a PCECP message into the
// PCES database and the peer table.
func (p *PCE) learnMappings(msg *packet.PCECP) {
	for _, pm := range msg.Prefixes {
		p.remote.Insert(pm.Prefix, pm.Locators, pm.TTL)
		if msg.PCEAddr.IsValid() {
			p.peers.Insert(pm.Prefix, msg.PCEAddr)
		}
	}
}

// pushFlowsFor builds and pushes flow tuples for every pending flow of
// qname toward destination ED.
func (p *PCE) pushFlowsFor(qname string, ed netaddr.Addr) {
	entry, ok := p.remote.Lookup(ed)
	if !ok {
		return
	}
	waiting := p.pending[qname]
	if len(waiting) == 0 {
		return
	}
	delete(p.pending, qname)
	flows := make([]packet.PCEFlowMapping, 0, len(waiting))
	for _, pf := range waiting {
		flows = append(flows, p.buildFlow(pf.client, ed, pf.ingress, entry))
	}
	p.push(flows, []packet.PCEPrefixMapping{{
		Prefix: entry.EIDPrefix, TTL: p.cfg.MappingTTL, Locators: entry.Locators,
	}})
}

func (p *PCE) buildFlow(es, ed, ingress netaddr.Addr, entry *lisp.MapEntry) packet.PCEFlowMapping {
	h := packet.NewFlow(packet.NewIPv4Endpoint(es), packet.NewIPv4Endpoint(ed)).FastHash()
	dst := netaddr.Addr(0)
	if loc, ok := entry.SelectLocator(h); ok {
		dst = loc.Addr
	}
	if !ingress.IsValid() && len(p.xtrs) > 0 {
		ingress = p.xtrs[0].RLOC()
	}
	fk := lisp.FlowKey{Src: es, Dst: ed}
	p.pushed[fk] = pushedFlow{
		src:     ingress,
		dst:     dst,
		expires: p.rt.Now() + p.mappingTTL(),
	}
	p.armMaintenance()
	return packet.PCEFlowMapping{
		TTL: p.cfg.MappingTTL, SrcEID: es, DstEID: ed, SrcRLOC: ingress, DstRLOC: dst,
	}
}

// mappingTTL returns the configured mapping lifetime as virtual time.
func (p *PCE) mappingTTL() simnet.Time {
	return simnet.Time(p.cfg.MappingTTL) * simnet.Time(time.Second)
}

// armMaintenance schedules one maintenance sweep MappingTTL from now, if
// none is outstanding.
func (p *PCE) armMaintenance() {
	if p.maintArmed {
		return
	}
	p.maintArmed = true
	p.rt.ScheduleTimer(p.mappingTTL(), p, simnet.TimerArg{Kind: pceTimerMaintenance})
}

// The PCE's typed timers, discriminated by TimerArg.Kind.
const (
	// pceTimerPendingExpire ages out pending flows for the qname in
	// TimerArg.S.
	pceTimerPendingExpire = iota
	// pceTimerMaintenance runs the periodic state sweep.
	pceTimerMaintenance
	// pceTimerFetchService answers the queued MapFetch in TimerArg.P.
	pceTimerFetchService
	// pceTimerFetchRetry re-sends the unanswered MapFetch whose nonce is
	// in TimerArg.N.
	pceTimerFetchRetry
)

// OnTimer implements simnet.TimerHandler for the PCE's timers.
func (p *PCE) OnTimer(arg simnet.TimerArg) {
	switch arg.Kind {
	case pceTimerPendingExpire:
		p.expirePending(arg.S)
	case pceTimerMaintenance:
		p.runMaintenance()
	case pceTimerFetchService:
		p.answerFetch(arg.P.(*packet.PCECP))
	case pceTimerFetchRetry:
		p.retryFetch(uint64(arg.N))
	}
}

// runMaintenance ages out control-plane state tied to expired mappings:
// pushed flows past their TTL, lastOuter records idle longer than the
// TTL, announcement subscribers whose copy of our mapping has expired,
// and the ETRs' first-packet flow records (pruned by the xTRs' own
// timers, counted here only for the re-arm decision). Unrefreshed
// entries live at most 2×MappingTTL — one full sweep interval past their
// expiry. The sweep re-arms only while state remains, so a drained
// simulation's event queue still empties.
func (p *PCE) runMaintenance() {
	p.maintArmed = false
	now := p.rt.Now()
	ttl := p.mappingTTL()
	for fk, os := range p.lastOuter {
		if now-os.seen >= ttl {
			delete(p.lastOuter, fk)
		}
	}
	for fk, pf := range p.pushed {
		if now >= pf.expires {
			delete(p.pushed, fk)
		}
	}
	var idle []netaddr.Prefix
	p.subscribers.Walk(func(np netaddr.Prefix, seen simnet.Time) bool {
		if now-seen >= ttl {
			idle = append(idle, np)
		}
		return true
	})
	for _, np := range idle {
		p.subscribers.Delete(np)
	}
	remaining := len(p.lastOuter) + len(p.pushed) + p.subscribers.Len()
	for _, x := range p.xtrs {
		remaining += x.SeenSources()
	}
	if remaining > 0 {
		p.armMaintenance()
	}
}

// push multicasts a MappingPush to all local ITRs (step 7b: "the
// advantage of pushing the mapping to all ITRs is that PCES can carry out
// local TE actions ... without caring whether a mapping will be in place
// in the relevant ITRs").
func (p *PCE) push(flows []packet.PCEFlowMapping, prefixes []packet.PCEPrefixMapping) {
	if len(flows) == 0 && len(prefixes) == 0 {
		return
	}
	p.met.MappingPushes.Inc()
	p.met.FlowsPushed.Add(uint64(len(flows)))
	for _, f := range flows {
		p.emit(Event{Kind: EvMappingPushed, SrcEID: f.SrcEID, DstEID: f.DstEID})
	}
	msg := &packet.PCECP{
		Version: packet.PCECPVersion, Type: packet.PCECPMappingPush,
		Nonce: p.rt.Rand().Uint64(), PCEAddr: p.cfg.Addr,
		Flows: flows, Prefixes: prefixes,
	}
	if p.cfg.Group.IsValid() {
		p.sendControl(p.cfg.Group, msg)
		return
	}
	for _, x := range p.xtrs {
		p.sendControl(x.RLOC(), msg)
	}
}

// sendControl transmits a port-P message from the PCE, counting it for
// the overhead experiments.
func (p *PCE) sendControl(dst netaddr.Addr, layers ...packet.SerializableLayer) {
	if msg, ok := layers[0].(*packet.PCECP); ok && p.cfg.AuthKey != nil && msg.AuthKey == nil {
		msg.KeyID = 1
		msg.AuthKey = p.cfg.AuthKey
	}
	n := p.host.OutputUDP(p.cfg.Addr, dst, packet.PortPCECP, packet.PortPCECP, layers...)
	p.met.TxControlMessages.Inc()
	p.met.TxControlBytes.Add(uint64(n))
}

// Repush recomputes every live pushed flow against the current control
// state — the ingress RLOC from the IRC engine, the destination RLOC
// from the (reachability-updated) PCES database — and re-pushes the
// changed ones. This is both the paper's dynamic mapping management
// ("move part of its internal traffic") and the failover reaction to a
// probe-detected locator loss. It returns the number of flows moved.
func (p *PCE) Repush() int {
	now := p.rt.Now()
	// Walk the pushed flows in sorted key order: the moved flows are
	// serialized into one PCECP message, and map iteration order must
	// not leak into wire bytes (determinism guarantee).
	keys := make([]lisp.FlowKey, 0, len(p.pushed))
	for fk := range p.pushed {
		keys = append(keys, fk)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Src != keys[j].Src {
			return keys[i].Src < keys[j].Src
		}
		return keys[i].Dst < keys[j].Dst
	})
	var flows []packet.PCEFlowMapping
	for _, fk := range keys {
		pf := p.pushed[fk]
		if now >= pf.expires {
			delete(p.pushed, fk)
			continue
		}
		h := packet.NewFlow(packet.NewIPv4Endpoint(fk.Src), packet.NewIPv4Endpoint(fk.Dst)).FastHash()
		ingress, ok := p.cfg.Engine.IngressRLOC(h)
		if !ok {
			ingress = pf.src // engine has no usable provider: keep
		}
		dst := pf.dst
		if entry, ok := p.remote.Lookup(fk.Dst); ok {
			if loc, usable := entry.SelectLocator(h); usable {
				dst = loc.Addr
			}
		}
		if ingress == pf.src && dst == pf.dst {
			continue // nothing to move for this flow
		}
		pf.src, pf.dst = ingress, dst
		p.pushed[fk] = pf
		flows = append(flows, packet.PCEFlowMapping{
			TTL: p.cfg.MappingTTL, SrcEID: fk.Src, DstEID: fk.Dst,
			SrcRLOC: ingress, DstRLOC: dst,
		})
	}
	if len(flows) > 0 {
		p.push(flows, nil)
	}
	return len(flows)
}

func (p *PCE) emit(ev Event) {
	if p.OnEvent == nil {
		return
	}
	ev.At = p.rt.Now()
	if ev.Node == "" {
		ev.Node = p.host.HostName()
	}
	p.OnEvent(ev)
}

// decodePCECP parses a PCECP message from raw bytes.
func decodePCECP(payload []byte) (*packet.PCECP, bool) {
	pk := packet.NewPacket(payload, packet.LayerTypePCECP, packet.NoCopy)
	l := pk.Layer(packet.LayerTypePCECP)
	if l == nil {
		return nil, false
	}
	return l.(*packet.PCECP), true
}

// prefixToEntry converts a wire prefix mapping to a map-cache entry.
func prefixToEntry(rt runtime.Runtime, pm packet.PCEPrefixMapping) *lisp.MapEntry {
	e := &lisp.MapEntry{EIDPrefix: pm.Prefix, Locators: pm.Locators}
	if pm.TTL > 0 {
		e.Expires = rt.Now() + simnet.Time(pm.TTL)*simnet.Time(time.Second)
	}
	return e
}
