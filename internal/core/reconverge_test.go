package core

import (
	"testing"
	"time"

	"github.com/pcelisp/pcelisp/internal/lisp"
	"github.com/pcelisp/pcelisp/internal/netaddr"
	"github.com/pcelisp/pcelisp/internal/packet"
	"github.com/pcelisp/pcelisp/internal/simnet"
)

// enableProbing turns on RLOC probing at every xTR of the world with
// fast test settings.
func (w *pceWorld) enableProbing() {
	for _, d := range w.in.Domains {
		for _, x := range d.XTRs {
			x.EnableProbing(lisp.ProbeConfig{Interval: time.Second, FailAfter: 2, RecoverAfter: 2})
		}
	}
}

// establishFlow resolves dst from src and pushes one data packet through
// so both directions' mappings are installed, then returns the flow
// entry at the source ITR.
func establishFlow(t *testing.T, w *pceWorld) lisp.FlowEntry {
	t.Helper()
	d0, d1 := w.in.Domain(0), w.in.Domain(1)
	src, dst := d0.Hosts[0], d1.Hosts[0]
	src.DNS.Lookup(dst.Name, func(netaddr.Addr, simnet.Time, bool) {})
	w.in.Sim.RunFor(2 * time.Second)
	src.Node.SendUDP(src.Addr, dst.Addr, 1, 9900, packet.Payload("warm"))
	w.in.Sim.RunFor(time.Second)
	fe, ok := d0.XTRs[0].Flows.Lookup(lisp.FlowKey{Src: src.Addr, Dst: dst.Addr})
	if !ok {
		t.Fatal("flow never installed")
	}
	return fe
}

// TestProbeDrivenFailoverRepushesFlow: cutting the destination provider
// link carrying a live flow makes the source xTR's prober flip the
// locator, the PCE consume the report and re-push the flow onto the
// surviving RLOC — data keeps flowing without any TTL expiry.
func TestProbeDrivenFailoverRepushesFlow(t *testing.T) {
	w := newPCEWorld(t, defaultSpec())
	sim := w.in.Sim
	w.enableProbing()
	fe := establishFlow(t, w)
	d0, d1 := w.in.Domain(0), w.in.Domain(1)
	src, dst := d0.Hosts[0], d1.Hosts[0]

	// Cut the d1 provider carrying the flow's destination RLOC.
	var cut, survivor netaddr.Addr
	plan := simnet.NewFailurePlan(sim)
	for _, prov := range d1.Providers {
		if prov.RLOC == fe.DstRLOC {
			cut = prov.RLOC
			plan.LinkDown(sim.Now(), prov.Link)
		} else {
			survivor = prov.RLOC
		}
	}
	if !cut.IsValid() || !survivor.IsValid() {
		t.Fatalf("flow DstRLOC %v is not a d1 provider", fe.DstRLOC)
	}
	plan.Schedule()
	sim.RunFor(5 * time.Second) // FailAfter=2 at 1s interval, plus push RTT

	fe2, ok := d0.XTRs[0].Flows.Lookup(lisp.FlowKey{Src: src.Addr, Dst: dst.Addr})
	if !ok {
		t.Fatal("flow entry lost during failover")
	}
	if fe2.DstRLOC != survivor {
		t.Fatalf("flow DstRLOC = %v after cut, want survivor %v", fe2.DstRLOC, survivor)
	}
	if w.pces[0].Stats().ReachabilityReports == 0 || w.pces[0].Stats().FailoverRepushes == 0 {
		t.Fatalf("PCE consumed no reports: %+v", w.pces[0].Stats())
	}
	// Data still arrives.
	delivered := 0
	dst.Node.ListenUDP(9901, func(*simnet.Delivery, *packet.UDP) { delivered++ })
	src.Node.SendUDP(src.Addr, dst.Addr, 1, 9901, packet.Payload("post-failover"))
	sim.RunFor(time.Second)
	if delivered != 1 {
		t.Fatal("data blackholed after probe-driven failover")
	}
}

// TestEgressFlapFailover: downing the source xTR's in-use egress
// interface raises an egress-state report; the PCE marks the provider
// down in the IRC engine and re-pushes the flow with the surviving
// ingress RLOC, so outbound traffic leaves via the other provider while
// the interface is down.
func TestEgressFlapFailover(t *testing.T) {
	w := newPCEWorld(t, defaultSpec())
	sim := w.in.Sim
	w.enableProbing()
	fe := establishFlow(t, w)
	d0, d1 := w.in.Domain(0), w.in.Domain(1)
	src, dst := d0.Hosts[0], d1.Hosts[0]

	egress := d0.XTRs[0].Node().IfaceByAddr(fe.SrcRLOC)
	if egress == nil {
		t.Fatalf("no egress iface owns %v", fe.SrcRLOC)
	}
	egress.SetUp(false)
	sim.RunFor(3 * time.Second)

	fe2, ok := d0.XTRs[0].Flows.Lookup(lisp.FlowKey{Src: src.Addr, Dst: dst.Addr})
	if !ok {
		t.Fatal("flow entry lost during flap")
	}
	if fe2.SrcRLOC == fe.SrcRLOC {
		t.Fatalf("flow still pinned to dead egress %v", fe.SrcRLOC)
	}
	delivered := 0
	dst.Node.ListenUDP(9902, func(*simnet.Delivery, *packet.UDP) { delivered++ })
	src.Node.SendUDP(src.Addr, dst.Addr, 1, 9902, packet.Payload("via survivor"))
	sim.RunFor(time.Second)
	if delivered != 1 {
		t.Fatal("data blackholed during egress flap")
	}

	// Recovery: the engine learns the provider is back; no stale state.
	egress.SetUp(true)
	sim.RunFor(3 * time.Second)
	up := 0
	for _, s := range w.pces[0].Engine().Snapshot() {
		if s.Up {
			up++
		}
	}
	if up != len(d0.Providers) {
		t.Fatalf("%d of %d providers up after recovery", up, len(d0.Providers))
	}
}
