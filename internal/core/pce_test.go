package core

import (
	"testing"
	"time"

	"github.com/pcelisp/pcelisp/internal/irc"
	"github.com/pcelisp/pcelisp/internal/lisp"
	"github.com/pcelisp/pcelisp/internal/netaddr"
	"github.com/pcelisp/pcelisp/internal/packet"
	"github.com/pcelisp/pcelisp/internal/simnet"
	"github.com/pcelisp/pcelisp/internal/topo"
)

// pceWorld is the paper's Fig. 1: two multihomed LISP domains with PCEs
// deployed on their DNS paths.
type pceWorld struct {
	in   *topo.Internet
	pces []*PCE
}

func newPCEWorld(t testing.TB, spec topo.Spec, policies ...irc.Policy) *pceWorld {
	t.Helper()
	in := topo.Build(spec)
	w := &pceWorld{in: in}
	for i, d := range in.Domains {
		policy := irc.Policy(irc.MinLatency{})
		if i < len(policies) && policies[i] != nil {
			policy = policies[i]
		}
		w.pces = append(w.pces, DeployDomain(d, policy))
	}
	return w
}

func defaultSpec() topo.Spec {
	return topo.Spec{
		Seed: 7,
		Domains: []topo.DomainSpec{
			{Hosts: 2, Providers: 2, MissPolicy: lisp.MissDrop},
			{Hosts: 2, Providers: 2, MissPolicy: lisp.MissDrop},
		},
	}
}

func TestStepsOneToEight(t *testing.T) {
	w := newPCEWorld(t, defaultSpec())
	sim := w.in.Sim
	d0, d1 := w.in.Domain(0), w.in.Domain(1)
	src, dst := d0.Hosts[0], d1.Hosts[0]

	var installAt, answerAt simnet.Time
	w.pces[0].OnEvent = func(ev Event) {
		if ev.Kind == EvFlowInstalled && installAt == 0 {
			installAt = ev.At
		}
	}
	var resolved netaddr.Addr
	ok := false
	src.DNS.Lookup(dst.Name, func(a netaddr.Addr, d simnet.Time, success bool) {
		resolved, answerAt, ok = a, sim.Now(), success
	})
	sim.RunFor(5 * time.Second)

	// Step 8: the host got the right answer through the re-encapsulated
	// path (7a did not corrupt the reply).
	if !ok || resolved != dst.Addr {
		t.Fatalf("DNS through PCE path: %v ok=%v", resolved, ok)
	}
	// Step 6 happened exactly once at the destination PCE.
	if w.pces[1].Stats().EncapRepliesSent != 1 {
		t.Fatalf("PCED encap replies = %d", w.pces[1].Stats().EncapRepliesSent)
	}
	// Step 7 happened at the source PCE.
	if w.pces[0].Stats().EncapRepliesReceived != 1 {
		t.Fatalf("PCES interceptions = %d", w.pces[0].Stats().EncapRepliesReceived)
	}
	// Step 1 IPC fired.
	if w.pces[0].Stats().IPCQueries == 0 {
		t.Fatal("step-1 IPC never fired")
	}
	// The headline property: the mapping was installed at the ITRs BEFORE
	// the host received its DNS answer.
	if installAt == 0 {
		t.Fatal("flow mapping never installed")
	}
	if installAt >= answerAt {
		t.Fatalf("mapping installed at %v, after DNS answer at %v", installAt, answerAt)
	}

	// Claim (i): the first data packet is neither dropped nor queued.
	delivered := 0
	dst.Node.ListenUDP(9000, func(*simnet.Delivery, *packet.UDP) { delivered++ })
	src.Node.SendUDP(src.Addr, dst.Addr, 40000, 9000, packet.Payload("first packet"))
	sim.RunFor(time.Second)
	if delivered != 1 {
		t.Fatalf("delivered = %d", delivered)
	}
	x0 := d0.XTRs[0]
	if x0.Stats().CacheMissDrops != 0 || x0.Stats().QueuedPackets != 0 {
		t.Fatalf("drops=%d queued=%d, claim (i) violated",
			x0.Stats().CacheMissDrops, x0.Stats().QueuedPackets)
	}
	if x0.Stats().FlowMappingsUsed != 1 {
		t.Fatalf("flow mappings used = %d", x0.Stats().FlowMappingsUsed)
	}

	// The ETR learned and distributed the reverse mapping; the PCED
	// database heard the multicast.
	if w.pces[1].Stats().ReversePushes == 0 {
		t.Fatal("reverse mapping never reached the PCED database")
	}
	// Two-way resolution: the return path needs no lookup and no drops.
	returned := 0
	src.Node.ListenUDP(9001, func(*simnet.Delivery, *packet.UDP) { returned++ })
	dst.Node.SendUDP(dst.Addr, src.Addr, 9000, 9001, packet.Payload("reply"))
	sim.RunFor(time.Second)
	if returned != 1 {
		t.Fatalf("returned = %d", returned)
	}
	x1 := d1.XTRs[0]
	if x1.Stats().CacheMissDrops != 0 {
		t.Fatalf("return-path drops = %d", x1.Stats().CacheMissDrops)
	}
	if x1.Stats().FlowMappingsUsed == 0 {
		t.Fatal("return path did not use the reverse flow mapping")
	}
}

func TestTdnsUnchangedByPCE(t *testing.T) {
	// Claim (ii): TDNS + Tmap ~= TDNS. The PCE path must not lengthen DNS
	// resolution: compare lookup latency with and without PCEs on an
	// otherwise identical world.
	measure := func(deploy bool) simnet.Time {
		in := topo.Build(defaultSpec())
		if deploy {
			for _, d := range in.Domains {
				DeployDomain(d, irc.MinLatency{})
			}
		}
		var tdns simnet.Time
		in.Domain(0).Hosts[0].DNS.Lookup(in.HostName(1, 0), func(a netaddr.Addr, d simnet.Time, ok bool) {
			if !ok {
				t.Fatal("lookup failed")
			}
			tdns = d
		})
		in.Sim.RunFor(5 * time.Second)
		return tdns
	}
	plain := measure(false)
	withPCE := measure(true)
	if plain == 0 || withPCE == 0 {
		t.Fatal("lookups did not complete")
	}
	// The PCE path adds two sniffer re-injections on the same links but
	// no extra round trips; allow a tiny constant for the PCE->DNSS hop
	// it replaces.
	if withPCE > plain+2*time.Millisecond {
		t.Fatalf("TDNS with PCE = %v, without = %v", withPCE, plain)
	}
}

func TestRepeatFlowFromPCEDatabase(t *testing.T) {
	// Second flow to the same destination, DNS answered from cache: the
	// PCES database serves the mapping with no remote exchange (and no
	// drops).
	w := newPCEWorld(t, defaultSpec())
	sim := w.in.Sim
	d0, d1 := w.in.Domain(0), w.in.Domain(1)

	d0.Hosts[0].DNS.Lookup(d1.Hosts[0].Name, func(netaddr.Addr, simnet.Time, bool) {})
	sim.RunFor(2 * time.Second)
	encapsBefore := w.pces[1].Stats().EncapRepliesSent

	// A different host, same destination name: resolver cache hit.
	done := false
	d0.Hosts[1].DNS.Lookup(d1.Hosts[0].Name, func(a netaddr.Addr, d simnet.Time, ok bool) { done = ok })
	sim.RunFor(2 * time.Second)
	if !done {
		t.Fatal("cached lookup failed")
	}
	if w.pces[1].Stats().EncapRepliesSent != encapsBefore {
		t.Fatal("cache-hit flow must not traverse PCED again")
	}
	if w.pces[0].Stats().CacheHitPushes != 1 {
		t.Fatalf("CacheHitPushes = %d", w.pces[0].Stats().CacheHitPushes)
	}
	// The new flow's tuple is installed: data flows without drops.
	delivered := false
	d1.Hosts[0].Node.ListenUDP(9100, func(*simnet.Delivery, *packet.UDP) { delivered = true })
	d0.Hosts[1].Node.SendUDP(d0.Hosts[1].Addr, d1.Hosts[0].Addr, 1, 9100, packet.Payload("x"))
	sim.RunFor(time.Second)
	if !delivered || d0.XTRs[0].Stats().CacheMissDrops != 0 {
		t.Fatalf("delivered=%v drops=%d", delivered, d0.XTRs[0].Stats().CacheMissDrops)
	}
}

func TestMapFetchFallback(t *testing.T) {
	// DNS cache hit + expired PCES database, but peer known: MapFetch.
	w := newPCEWorld(t, defaultSpec())
	sim := w.in.Sim
	d0, d1 := w.in.Domain(0), w.in.Domain(1)

	d0.Hosts[0].DNS.Lookup(d1.Hosts[0].Name, func(netaddr.Addr, simnet.Time, bool) {})
	sim.RunFor(2 * time.Second)

	// Force the database entry out (simulates mapping TTL expiry while
	// the DNS record is still cached).
	if !w.pces[0].RemoteMappings().Delete(d1.EIDPrefix) {
		t.Fatal("expected a learned mapping to delete")
	}
	done := false
	d0.Hosts[1].DNS.Lookup(d1.Hosts[0].Name, func(a netaddr.Addr, d simnet.Time, ok bool) { done = ok })
	sim.RunFor(2 * time.Second)
	if !done {
		t.Fatal("lookup failed")
	}
	if w.pces[0].Stats().MapFetches == 0 || w.pces[0].Stats().MapFetchReplies == 0 {
		t.Fatalf("fetches=%d replies=%d", w.pces[0].Stats().MapFetches, w.pces[0].Stats().MapFetchReplies)
	}
	if w.pces[1].Stats().MapFetches == 0 {
		t.Fatal("PCED never answered the fetch")
	}
	// The fetched mapping unblocks the flow.
	delivered := false
	d1.Hosts[0].Node.ListenUDP(9200, func(*simnet.Delivery, *packet.UDP) { delivered = true })
	d0.Hosts[1].Node.SendUDP(d0.Hosts[1].Addr, d1.Hosts[0].Addr, 1, 9200, packet.Payload("fetched"))
	sim.RunFor(time.Second)
	if !delivered {
		t.Fatal("data after MapFetch failed")
	}
}

func TestLegacyDestinationInterop(t *testing.T) {
	// Only the source domain deploys a PCE. DNS must still work (the
	// plain reply passes through) and nothing is pushed.
	in := topo.Build(defaultSpec())
	pce0 := DeployDomain(in.Domain(0), irc.MinLatency{})
	var ok bool
	in.Domain(0).Hosts[0].DNS.Lookup(in.HostName(1, 0), func(a netaddr.Addr, d simnet.Time, success bool) {
		ok = success
	})
	in.Sim.RunFor(5 * time.Second)
	if !ok {
		t.Fatal("lookup against legacy destination failed")
	}
	if pce0.Stats().EncapRepliesReceived != 0 || pce0.Stats().MappingPushes != 0 {
		t.Fatalf("unexpected PCE activity: %+v", pce0.Stats())
	}
	// Data falls back to the miss policy (drop here): claim (i) does not
	// hold without the control plane, which is the point of E1.
	in.Domain(0).Hosts[0].Node.SendUDP(in.Domain(0).Hosts[0].Addr, in.Domain(1).Hosts[0].Addr, 1, 9, packet.Payload("x"))
	in.Sim.RunFor(time.Second)
	if in.Domain(0).XTRs[0].Stats().CacheMissDrops != 1 {
		t.Fatalf("drops = %d", in.Domain(0).XTRs[0].Stats().CacheMissDrops)
	}
}

func TestSplitXTRsReverseSync(t *testing.T) {
	spec := defaultSpec()
	spec.Domains[1].SplitXTRs = true
	w := newPCEWorld(t, spec)
	sim := w.in.Sim
	d0, d1 := w.in.Domain(0), w.in.Domain(1)
	src, dst := d0.Hosts[0], d1.Hosts[0]

	src.DNS.Lookup(dst.Name, func(netaddr.Addr, simnet.Time, bool) {})
	sim.RunFor(2 * time.Second)
	dst.Node.ListenUDP(9300, func(*simnet.Delivery, *packet.UDP) {})
	src.Node.SendUDP(src.Addr, dst.Addr, 1, 9300, packet.Payload("first"))
	sim.RunFor(time.Second)

	// The reverse mapping must be installed at BOTH of d1's xTRs: the one
	// that decapsulated and its multicast sibling.
	fk := lisp.FlowKey{Src: dst.Addr, Dst: src.Addr}
	for i, x := range d1.XTRs {
		if _, ok := x.Flows.Lookup(fk); !ok {
			t.Fatalf("xTR %d missing the reverse mapping", i)
		}
	}
}

func TestIndependentOneWayTunnels(t *testing.T) {
	// Claim (iii): the source domain's ingress choice (RLOCS) differs
	// from the ITR's own RLOC, and return traffic follows it.
	spec := defaultSpec()
	// Pin d0's ingress to provider 1 while its xTR's own RLOC is
	// provider 0's address.
	w := newPCEWorld(t, spec, irc.Pinned{Index: 1}, irc.MinLatency{})
	sim := w.in.Sim
	d0, d1 := w.in.Domain(0), w.in.Domain(1)
	src, dst := d0.Hosts[0], d1.Hosts[0]

	src.DNS.Lookup(dst.Name, func(netaddr.Addr, simnet.Time, bool) {})
	sim.RunFor(2 * time.Second)

	fk := lisp.FlowKey{Src: src.Addr, Dst: dst.Addr}
	fe, ok := d0.XTRs[0].Flows.Lookup(fk)
	if !ok {
		t.Fatal("flow not installed")
	}
	if fe.SrcRLOC != d0.Providers[1].RLOC {
		t.Fatalf("engineered source RLOC = %v, want provider 1's %v", fe.SrcRLOC, d0.Providers[1].RLOC)
	}
	// Send data; the return packet must arrive via provider 1.
	dst.Node.ListenUDP(9400, func(*simnet.Delivery, *packet.UDP) {})
	src.Node.SendUDP(src.Addr, dst.Addr, 1, 9400, packet.Payload("fwd"))
	sim.RunFor(time.Second)
	before := d0.Providers[1].EgressIface.Peer().Counters().TxPackets
	src.Node.ListenUDP(9401, func(*simnet.Delivery, *packet.UDP) {})
	dst.Node.SendUDP(dst.Addr, src.Addr, 9400, 9401, packet.Payload("rev"))
	sim.RunFor(time.Second)
	after := d0.Providers[1].EgressIface.Peer().Counters().TxPackets
	if after != before+1 {
		t.Fatalf("return packets via provider 1: %d -> %d, want +1", before, after)
	}
}

func TestRepushMovesIngress(t *testing.T) {
	w := newPCEWorld(t, defaultSpec(), irc.Pinned{Index: 0}, irc.MinLatency{})
	sim := w.in.Sim
	d0, d1 := w.in.Domain(0), w.in.Domain(1)
	src, dst := d0.Hosts[0], d1.Hosts[0]

	src.DNS.Lookup(dst.Name, func(netaddr.Addr, simnet.Time, bool) {})
	sim.RunFor(2 * time.Second)
	fk := lisp.FlowKey{Src: src.Addr, Dst: dst.Addr}
	fe, _ := d0.XTRs[0].Flows.Lookup(fk)
	if fe.SrcRLOC != d0.Providers[0].RLOC {
		t.Fatalf("initial ingress = %v", fe.SrcRLOC)
	}

	// TE action: move inbound traffic to provider 1 and re-push.
	w.pces[0].Engine().SetPolicy(irc.Pinned{Index: 1})
	if n := w.pces[0].Repush(); n != 1 {
		t.Fatalf("repush moved %d flows", n)
	}
	sim.RunFor(time.Second)
	fe, _ = d0.XTRs[0].Flows.Lookup(fk)
	if fe.SrcRLOC != d0.Providers[1].RLOC {
		t.Fatalf("post-repush ingress = %v", fe.SrcRLOC)
	}

	// The next data packet carries the new RLOCS; the remote ETR detects
	// the change and re-announces the reverse mapping.
	reverseBefore := w.pces[1].Stats().ReversePushes
	dst.Node.ListenUDP(9500, func(*simnet.Delivery, *packet.UDP) {})
	src.Node.SendUDP(src.Addr, dst.Addr, 1, 9500, packet.Payload("a"))
	sim.RunFor(time.Second)
	src.Node.SendUDP(src.Addr, dst.Addr, 1, 9500, packet.Payload("b"))
	sim.RunFor(time.Second)
	if w.pces[1].Stats().ReversePushes <= reverseBefore {
		t.Fatal("RLOCS change did not re-trigger the reverse push")
	}
}

func TestPCEEngineAccessors(t *testing.T) {
	w := newPCEWorld(t, defaultSpec())
	p := w.pces[0]
	if p.Engine() == nil || p.Node() == nil || !p.Addr().IsValid() {
		t.Fatal("accessors broken")
	}
	if len(p.XTRs()) != 1 {
		t.Fatalf("xTRs = %d", len(p.XTRs()))
	}
}

func TestPendingExpiry(t *testing.T) {
	// A lookup whose mapping never arrives (legacy destination) must not
	// leak pending state.
	in := topo.Build(defaultSpec())
	pce0 := DeployDomain(in.Domain(0), irc.MinLatency{})
	in.Domain(0).Hosts[0].DNS.Lookup(in.HostName(1, 0), func(netaddr.Addr, simnet.Time, bool) {})
	in.Sim.RunFor(30 * time.Second)
	if pce0.Stats().PendingExpired == 0 {
		t.Fatal("pending flow never expired")
	}
	if len(pce0.pending) != 0 {
		t.Fatalf("pending map leaked %d entries", len(pce0.pending))
	}
}

func TestFlowStringHashStable(t *testing.T) {
	a := flowStringHash(netaddr.MustParseAddr("100.1.1.1"), "h0.d1.example")
	b := flowStringHash(netaddr.MustParseAddr("100.1.1.1"), "h0.d1.example")
	c := flowStringHash(netaddr.MustParseAddr("100.1.1.2"), "h0.d1.example")
	if a != b || a == c {
		t.Fatal("hash must be stable and client-sensitive")
	}
}

func BenchmarkFullPCEFlowSetup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		w := newPCEWorld(b, defaultSpec())
		done := false
		w.in.Domain(0).Hosts[0].DNS.Lookup(w.in.HostName(1, 0), func(netaddr.Addr, simnet.Time, bool) { done = true })
		w.in.Sim.RunFor(2 * time.Second)
		if !done {
			b.Fatal("setup failed")
		}
	}
}

// TestMapFetchEmptyFlowsNoPanic is the malformed-message regression: a
// truncated MapFetch that carries no flow record used to dereference
// msg.Flows[0] and crash the PCE node. It must be dropped after counting.
func TestMapFetchEmptyFlowsNoPanic(t *testing.T) {
	w := newPCEWorld(t, defaultSpec())
	sim := w.in.Sim
	msg := &packet.PCECP{
		Version: packet.PCECPVersion, Type: packet.PCECPMapFetch,
		Nonce: 42, PCEAddr: w.pces[1].Addr(),
		// Flows deliberately empty: the reply target is missing.
	}
	w.pces[1].Node().SendUDP(w.pces[1].Addr(), w.pces[0].Addr(),
		packet.PortPCECP, packet.PortPCECP, msg)
	sim.RunFor(2 * time.Second) // panics here without the guard
	if w.pces[0].Stats().MapFetches == 0 {
		t.Fatal("malformed fetch never reached the PCE")
	}
	// A fetch with a zero reply target is equally unanswerable.
	bad := &packet.PCECP{
		Version: packet.PCECPVersion, Type: packet.PCECPMapFetch,
		Nonce: 43, PCEAddr: w.pces[1].Addr(),
		Flows: []packet.PCEFlowMapping{{DstEID: w.in.Domain(0).Hosts[0].Addr}},
	}
	w.pces[1].Node().SendUDP(w.pces[1].Addr(), w.pces[0].Addr(),
		packet.PortPCECP, packet.PortPCECP, bad)
	sim.RunFor(2 * time.Second)
	// The PCE is still alive and serving: a real flow works end to end.
	delivered := false
	w.in.Domain(1).Hosts[0].Node.ListenUDP(9700, func(*simnet.Delivery, *packet.UDP) { delivered = true })
	w.in.Domain(0).Hosts[0].DNS.Lookup(w.in.HostName(1, 0), func(a netaddr.Addr, _ simnet.Time, ok bool) {
		if ok {
			w.in.Domain(0).Hosts[0].Node.SendUDP(w.in.Domain(0).Hosts[0].Addr, a, 1, 9700, packet.Payload("alive"))
		}
	})
	sim.RunFor(5 * time.Second)
	if !delivered {
		t.Fatal("PCE not serving after malformed fetches")
	}
}

// TestPCEStateMapsPruned is the unbounded-growth regression: pushed,
// lastOuter and the ETRs' first-packet records must drain after their
// mapping TTL passes with no traffic, so long-running simulations hold
// steady memory.
func TestPCEStateMapsPruned(t *testing.T) {
	w := newPCEWorld(t, defaultSpec())
	sim := w.in.Sim
	d0, d1 := w.in.Domain(0), w.in.Domain(1)
	src, dst := d0.Hosts[0], d1.Hosts[0]

	src.DNS.Lookup(dst.Name, func(netaddr.Addr, simnet.Time, bool) {})
	sim.RunFor(2 * time.Second)
	dst.Node.ListenUDP(9800, func(*simnet.Delivery, *packet.UDP) {})
	src.Node.SendUDP(src.Addr, dst.Addr, 1, 9800, packet.Payload("seed state"))
	sim.RunFor(2 * time.Second)

	if len(w.pces[0].pushed) == 0 {
		t.Fatal("no pushed-flow state to prune")
	}
	if len(w.pces[1].lastOuter) == 0 {
		t.Fatal("no lastOuter state to prune")
	}
	seen := 0
	for _, x := range d1.XTRs {
		seen += x.SeenSources()
	}
	if seen == 0 {
		t.Fatal("no first-packet state to prune")
	}

	// Two maintenance intervals (MappingTTL=300s) of silence: everything
	// tied to the expired mappings must be gone.
	sim.RunFor(700 * time.Second)
	for i, p := range w.pces {
		if n := len(p.pushed); n != 0 {
			t.Errorf("pce%d: pushed leaked %d entries", i, n)
		}
		if n := len(p.lastOuter); n != 0 {
			t.Errorf("pce%d: lastOuter leaked %d entries", i, n)
		}
	}
	for _, d := range w.in.Domains {
		for _, x := range d.XTRs {
			if n := x.SeenSources(); n != 0 {
				t.Errorf("%s: seenSources leaked %d entries", x.Node().Name(), n)
			}
		}
	}
}

// TestWeightUpdateMovesRemoteFlows drives the closed-loop TE actuator
// end to end: the destination PCE changes its locator weights, announces
// a MappingUpdate to its subscriber PCEs, and the source PCE re-pushes
// the live flow onto the new locator within one exchange — no TTL waits.
func TestWeightUpdateMovesRemoteFlows(t *testing.T) {
	// d1 pins its mapping to provider 0, so the flow's initial DstRLOC is
	// deterministic.
	w := newPCEWorld(t, defaultSpec(), irc.MinLatency{}, irc.Pinned{Index: 0})
	sim := w.in.Sim
	d0, d1 := w.in.Domain(0), w.in.Domain(1)
	src, dst := d0.Hosts[0], d1.Hosts[0]

	src.DNS.Lookup(dst.Name, func(netaddr.Addr, simnet.Time, bool) {})
	sim.RunFor(2 * time.Second)
	fk := lisp.FlowKey{Src: src.Addr, Dst: dst.Addr}
	fe, ok := d0.XTRs[0].Flows.Lookup(fk)
	if !ok || fe.DstRLOC != d1.Providers[0].RLOC {
		t.Fatalf("initial flow = %+v, %v", fe, ok)
	}
	if w.pces[1].Subscribers() == 0 {
		t.Fatal("destination PCE recorded no subscribers despite answering a lookup")
	}

	// TE action at the destination: tilt (nearly) all inbound weight onto
	// provider 1 and push the update.
	if n := w.pces[1].ApplyProviderWeights([]uint8{1, 255}); n == 0 {
		t.Fatal("ApplyProviderWeights announced to no subscribers")
	}
	sim.RunFor(time.Second)

	if got := w.pces[0].Stats().WeightUpdatesReceived; got != 1 {
		t.Fatalf("source PCE consumed %d weight updates", got)
	}
	if got := w.pces[0].Stats().WeightRepushes; got != 1 {
		t.Fatalf("weight repushes = %d", got)
	}
	fe, ok = d0.XTRs[0].Flows.Lookup(fk)
	if !ok || fe.DstRLOC != d1.Providers[1].RLOC {
		t.Fatalf("flow after weight update = %+v, %v (want DstRLOC %v)", fe, ok, d1.Providers[1].RLOC)
	}
	// The prefix-granularity state moved too: the source ITR cache holds
	// the updated vector for future flows.
	e, ok := d0.XTRs[0].Cache.Lookup(dst.Addr)
	if !ok || len(e.Locators) != 2 || e.Locators[1].Weight != 255 {
		t.Fatalf("cache entry after update = %+v, %v", e, ok)
	}

	// Subscribers are leased state: after a mapping lifetime of silence
	// the maintenance sweep must drop them.
	sim.RunFor(700 * time.Second)
	if n := w.pces[1].Subscribers(); n != 0 {
		t.Fatalf("subscribers leaked %d entries", n)
	}
}

// TestLoadReportReachesHook wires an xTR telemetry stream to the PCE and
// checks the OnLoadReport hook sees the samples.
func TestLoadReportReachesHook(t *testing.T) {
	w := newPCEWorld(t, defaultSpec())
	sim := w.in.Sim
	d0 := w.in.Domain(0)
	var got []packet.PCELoadRecord
	w.pces[0].OnLoadReport = func(_ netaddr.Addr, loads []packet.PCELoadRecord) {
		got = append(got, loads...)
	}
	links := make([]lisp.TelemetryLink, len(d0.Providers))
	for i, p := range d0.Providers {
		links[i] = lisp.TelemetryLink{RLOC: p.RLOC, Iface: p.EgressIface, CapacityBps: 4_000_000}
	}
	d0.XTRs[0].EnableTelemetry(lisp.TelemetryConfig{
		Collector: d0.PCEAddr, Interval: time.Second, Links: links,
	})
	sim.RunFor(3500 * time.Millisecond)
	if len(got) < 4 {
		t.Fatalf("hook saw %d load records, want one per link per interval", len(got))
	}
	if w.pces[0].Stats().LoadReports == 0 {
		t.Fatal("LoadReports stat not counted")
	}
	if d0.XTRs[0].Stats().TelemetryReports == 0 {
		t.Fatal("xTR telemetry stats not counted")
	}
	for _, lr := range got {
		if lr.CapacityBps != 4_000_000 || lr.WindowMs != 1000 {
			t.Fatalf("record = %+v", lr)
		}
	}
}
