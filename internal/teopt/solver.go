package teopt

// The weight solver: given the observed per-link demand and the link
// capacities, find a discrete LISP weight split that minimizes the
// maximum predicted link utilization. The traffic model is the one the
// LISP data plane implements: aggregate demand redistributes across
// links in proportion to their weights (flows stick to one locator via
// the flow hash, so the split holds in expectation, which is what a
// minute-scale optimizer steers on).
//
// The solver is a greedy seed plus a bounded local search, both
// deterministic (ties break toward the lower index) — a requirement of
// the byte-identical serial/parallel experiment contract, not just
// hygiene. It is exact for this objective in practice: assigning one
// weight unit at a time to the link whose utilization stays lowest is
// the classic min-max water-filling argument, and the local search only
// has to clean up the integer rounding at the end.

// PredictedMax returns the maximum per-link utilization if total demand
// were re-split in proportion to weights. Links with zero capacity are
// ignored.
func PredictedMax(totalBps float64, capacityBps []float64, weights []int) float64 {
	units := 0
	for _, w := range weights {
		units += w
	}
	if units == 0 {
		return 0
	}
	max := 0.0
	for i, c := range capacityBps {
		if c <= 0 {
			continue
		}
		if u := totalBps * float64(weights[i]) / float64(units) / c; u > max {
			max = u
		}
	}
	return max
}

// MaxUtil returns the maximum observed utilization of loadBps over
// capacityBps.
func MaxUtil(loadBps, capacityBps []float64) float64 {
	max := 0.0
	for i, c := range capacityBps {
		if c <= 0 {
			continue
		}
		if u := loadBps[i] / c; u > max {
			max = u
		}
	}
	return max
}

// Solve distributes `units` discrete weight quanta over the links to
// minimize the predicted maximum utilization of the observed total
// demand. Every link with capacity gets at least one unit (LISP treats
// weight 0 as 1, so a truly drained locator does not exist at a shared
// priority level — keeping the floor explicit keeps the model honest).
// The result is deterministic for identical inputs.
func Solve(loadBps, capacityBps []float64, units int) []int {
	n := len(capacityBps)
	weights := make([]int, n)
	if n == 0 || units <= 0 {
		return weights
	}
	total := 0.0
	for _, l := range loadBps {
		total += l
	}
	// With no demand the min-max objective is flat; split by capacity so
	// the split is sane when demand appears.
	demand := total
	if demand <= 0 {
		demand = 1
	}

	// Greedy seed: place each unit on the link whose utilization after
	// receiving it stays lowest.
	for u := 0; u < units; u++ {
		best, bestCost := -1, 0.0
		for i, c := range capacityBps {
			if c <= 0 {
				continue
			}
			cost := demand * float64(weights[i]+1) / c
			if best < 0 || cost < bestCost {
				best, bestCost = i, cost
			}
		}
		if best < 0 {
			return weights // no usable link
		}
		weights[best]++
	}

	// Floor: every usable link keeps at least one unit.
	for i, c := range capacityBps {
		if c <= 0 || weights[i] > 0 {
			continue
		}
		donor, donorW := -1, 1
		for j, w := range weights {
			if w > donorW {
				donor, donorW = j, w
			}
		}
		if donor < 0 {
			break
		}
		weights[donor]--
		weights[i]++
	}

	// Bounded local search: move one unit off the currently worst link
	// while doing so strictly lowers the predicted maximum. The greedy
	// seed is already near-optimal, so this terminates in a handful of
	// iterations; the explicit bound keeps the worst case honest.
	for iter := 0; iter < 2*units; iter++ {
		cur := PredictedMax(demand, capacityBps, weights)
		src := -1
		for i, c := range capacityBps {
			if c <= 0 || weights[i] <= 1 {
				continue
			}
			u := demand * float64(weights[i]) / float64(sum(weights)) / c
			if src < 0 || u > demand*float64(weights[src])/float64(sum(weights))/capacityBps[src] {
				src = i
			}
		}
		if src < 0 {
			break
		}
		bestDst, bestMax := -1, cur
		for j, c := range capacityBps {
			if c <= 0 || j == src {
				continue
			}
			weights[src]--
			weights[j]++
			if m := PredictedMax(demand, capacityBps, weights); m < bestMax {
				bestDst, bestMax = j, m
			}
			weights[src]++
			weights[j]--
		}
		if bestDst < 0 {
			break
		}
		weights[src]--
		weights[bestDst]++
	}
	return weights
}

func sum(xs []int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}
