package teopt

import (
	"testing"
	"time"

	"github.com/pcelisp/pcelisp/internal/netaddr"
	"github.com/pcelisp/pcelisp/internal/simnet"
)

func TestSolveEqualCapacities(t *testing.T) {
	w := Solve([]float64{3_000_000, 1_000_000}, []float64{4_000_000, 4_000_000}, 100)
	if w[0]+w[1] != 100 {
		t.Fatalf("weights %v do not sum to 100", w)
	}
	if w[0] != 50 || w[1] != 50 {
		t.Fatalf("equal capacities must split evenly, got %v", w)
	}
}

func TestSolveProportionalToCapacity(t *testing.T) {
	// 2:1 capacities: min-max puts 2/3 of the demand on the big pipe,
	// whatever the observed (mis)distribution was.
	for _, load := range [][]float64{
		{2_400_000, 2_400_000},
		{4_000_000, 800_000},
		{0, 4_800_000},
	} {
		w := Solve(load, []float64{4_000_000, 2_000_000}, 100)
		if w[0] < 65 || w[0] > 68 {
			t.Fatalf("load %v: want ~2/3 on the big pipe, got %v", load, w)
		}
		if w[0]+w[1] != 100 {
			t.Fatalf("weights %v do not sum to 100", w)
		}
	}
}

func TestSolveZeroDemandSplitsByCapacity(t *testing.T) {
	w := Solve([]float64{0, 0, 0}, []float64{3_000_000, 2_000_000, 1_000_000}, 60)
	if w[0] != 30 || w[1] != 20 || w[2] != 10 {
		t.Fatalf("idle split must be capacity-proportional, got %v", w)
	}
}

func TestSolveFloorsUsableLinks(t *testing.T) {
	// A tiny link must keep at least one unit (LISP reads weight 0 as 1,
	// so pretending it is drained would lie to the data plane).
	w := Solve([]float64{1_000_000, 1_000}, []float64{100_000_000, 1_000}, 100)
	if w[1] < 1 {
		t.Fatalf("small link drained to %d units", w[1])
	}
}

func TestSolveSkipsDeadCapacity(t *testing.T) {
	w := Solve([]float64{1_000_000, 0}, []float64{4_000_000, 0}, 100)
	if w[0] != 100 || w[1] != 0 {
		t.Fatalf("zero-capacity link must get nothing, got %v", w)
	}
}

func TestSolveDeterministic(t *testing.T) {
	load := []float64{1_234_567, 2_345_678, 345_678}
	caps := []float64{4_000_000, 3_000_000, 2_000_000}
	a := Solve(load, caps, 100)
	for i := 0; i < 50; i++ {
		b := Solve(load, caps, 100)
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("run %d diverged: %v vs %v", i, a, b)
			}
		}
	}
}

func TestPredictedMax(t *testing.T) {
	got := PredictedMax(6_000_000, []float64{4_000_000, 2_000_000}, []int{50, 50})
	if got < 1.49 || got > 1.51 {
		t.Fatalf("PredictedMax = %v, want 1.5 (half of 6M on a 2M pipe)", got)
	}
	if PredictedMax(1, []float64{1}, []int{0}) != 0 {
		t.Fatal("zero weights must predict 0")
	}
}

// optLinks builds a two-link optimizer fed by Observe.
func optLinks() []Link {
	return []Link{
		{Name: "A", RLOC: netaddr.MustParseAddr("10.0.0.1"), CapacityBps: 4_000_000},
		{Name: "B", RLOC: netaddr.MustParseAddr("10.0.1.1"), CapacityBps: 4_000_000},
	}
}

func feed(o *Optimizer, aBytes, bBytes uint64) {
	o.Observe(netaddr.MustParseAddr("10.0.0.1"), aBytes, time.Second)
	o.Observe(netaddr.MustParseAddr("10.0.1.1"), bBytes, time.Second)
}

func TestOptimizerAppliesOnImbalance(t *testing.T) {
	s := simnet.New(1)
	o := New(s, optLinks(), Config{Interval: time.Second, Alpha: 1, Ingress: true})
	o.SetCurrentWeights([]uint8{85, 15})
	var first []uint8
	o.Apply = func(w []uint8) {
		if first == nil {
			first = append([]uint8(nil), w...)
		}
	}
	o.Start()
	for i := 0; i < 5; i++ {
		feed(o, 475_000, 75_000) // 3.8 Mbps vs 0.6 Mbps
		s.RunFor(time.Second)
	}
	if first == nil {
		t.Fatal("optimizer never applied despite a 0.95-utilization link")
	}
	// The scripted feed stays hot whatever the optimizer does, so later
	// feedback nudges may follow — the model's first correction is the
	// one under test.
	if first[0] != 50 || first[1] != 50 {
		t.Fatalf("equal-capacity rebalance = %v, want 50/50", first)
	}
	if o.Stats.Applies == 0 || o.Stats.LastMaxUtil < 0.9 {
		t.Fatalf("stats = %+v", o.Stats)
	}
}

func TestOptimizerIdleBelowActivation(t *testing.T) {
	s := simnet.New(1)
	o := New(s, optLinks(), Config{Interval: time.Second, Alpha: 1, Ingress: true})
	o.Apply = func([]uint8) { t.Fatal("applied on balanced light load") }
	o.Start()
	for i := 0; i < 5; i++ {
		feed(o, 100_000, 80_000)
		s.RunFor(time.Second)
	}
	if o.Stats.Ticks == 0 {
		t.Fatal("optimizer never ticked")
	}
}

func TestOptimizerHoldThrottlesApplies(t *testing.T) {
	s := simnet.New(1)
	o := New(s, optLinks(), Config{
		Interval: time.Second, Alpha: 1, Ingress: true, Hold: time.Hour,
	})
	o.SetCurrentWeights([]uint8{85, 15})
	applies := 0
	o.Apply = func([]uint8) { applies++ }
	o.Start()
	for i := 0; i < 10; i++ {
		// Keep the load hot whatever the optimizer does: at most the
		// first apply may fire, the hour-long hold blocks the rest.
		feed(o, 480_000, 480_000)
		s.RunFor(time.Second)
	}
	if applies > 1 {
		t.Fatalf("hold violated: %d applies", applies)
	}
}

func TestOptimizerFeedbackNudgesGranularity(t *testing.T) {
	s := simnet.New(1)
	o := New(s, optLinks(), Config{Interval: time.Second, Alpha: 1, Ingress: true, Hold: time.Second})
	// Already at the model optimum (50/50 over equal pipes)...
	o.SetCurrentWeights([]uint8{50, 50})
	var got []uint8
	o.Apply = func(w []uint8) { got = append([]uint8(nil), w...) }
	o.Start()
	// ...but observed load stays lumpy-hot on A: only the feedback stage
	// can react.
	for i := 0; i < 6; i++ {
		feed(o, 490_000, 250_000)
		s.RunFor(time.Second)
	}
	if o.Stats.Nudges == 0 {
		t.Fatalf("no feedback nudge despite persistent hot link: %+v", o.Stats)
	}
	if got == nil || got[0] >= 50 {
		t.Fatalf("nudge must shift weight off the hot link, got %v", got)
	}
}

func TestOptimizerDirectIfaceSampling(t *testing.T) {
	s := simnet.New(1)
	a := s.NewNode("a")
	b := s.NewNode("b")
	l := simnet.Connect(a, b, simnet.LinkConfig{Delay: time.Millisecond})
	links := []Link{
		{Name: "A", RLOC: netaddr.MustParseAddr("10.0.0.1"), CapacityBps: 4_000_000, Iface: l.A()},
	}
	o := New(s, links, Config{Interval: time.Second, Alpha: 1})
	o.Start()
	s.RunFor(3 * time.Second)
	// No traffic: primed, zero load, no solver activity.
	if o.Stats.LastMaxUtil != 0 || o.Stats.Applies != 0 {
		t.Fatalf("stats = %+v", o.Stats)
	}
}

func TestConfigCapsUnitsAtUint8(t *testing.T) {
	s := simnet.New(1)
	o := New(s, optLinks(), Config{Interval: time.Second, Alpha: 1, Units: 1000})
	o.SetCurrentWeights([]uint8{70, 30})
	w := o.CurrentWeights()
	// With uncapped units the 70/30 ratio would flatten to 255/255.
	if int(w[0])+int(w[1]) > 255 || w[0] <= w[1]*2 {
		t.Fatalf("weights %v lost the 70/30 ratio under large Units", w)
	}
}
