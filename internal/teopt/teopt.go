// Package teopt implements the PCE-side closed-loop inbound
// traffic-engineering optimizer: the piece that turns the paper's "the
// mappings can be recomputed and pushed at any time" into a running
// control loop. Border routers stream cheap per-provider-link goodput
// telemetry (or, for a site-local deployment, the optimizer samples the
// interfaces itself); the optimizer smooths the samples into EWMA
// utilizations, and when the worst link crosses the activation
// threshold it solves for a new discrete locator weight split
// (solver.go) and hands it to an Apply hook — core.PCE applies it to
// the mapping database, announces it to subscriber PCEs and re-pushes
// live flows, while a pull-based site can only refresh its own record
// and wait for remote caches to expire.
//
// The split of labor mirrors LazyCtrl's central/local divide: the xTRs
// do nothing but a counter subtraction per interval, the centralized
// optimizer owns all policy.
package teopt

import (
	"time"

	"github.com/pcelisp/pcelisp/internal/irc"
	"github.com/pcelisp/pcelisp/internal/netaddr"
	"github.com/pcelisp/pcelisp/internal/simnet"
)

// Link is one provider attachment under optimization.
type Link struct {
	// Name labels the link in diagnostics.
	Name string
	// RLOC identifies the link in telemetry reports.
	RLOC netaddr.Addr
	// CapacityBps is the provisioned capacity.
	CapacityBps int64
	// Iface, when set, is sampled directly each tick (site-local mode,
	// used where no telemetry stream exists). Egress reads the
	// interface's delivered counters, ingress its peer's — the same
	// goodput the xTR telemetry reports.
	Iface *simnet.Iface
}

// Config tunes the optimizer.
type Config struct {
	// Interval is the solve cadence (default 1s).
	Interval simnet.Time
	// Alpha is the EWMA smoothing factor for load samples (default 0.5):
	// high enough to chase a flash crowd within a couple of intervals,
	// low enough to ignore single-interval noise.
	Alpha float64
	// Units is the number of discrete weight quanta to split (default
	// 100; capped at 255 so a single locator's share fits LISP's uint8
	// weight).
	Units int
	// Activate is the max-utilization threshold below which the
	// optimizer stays idle (default 0.7): balanced-enough traffic is not
	// worth churning mappings over.
	Activate float64
	// MinGain is the minimum predicted improvement of max utilization
	// required to emit a new split (default 0.05) — the anti-oscillation
	// deadband.
	MinGain float64
	// Hold is the minimum time between applies (default 3s), giving each
	// pushed split one EWMA settling period before being judged.
	Hold simnet.Time
	// NudgeAt is the utilization above which the feedback stage engages
	// (default 0.9): when the deployed split already matches the model
	// optimum but a link still runs hot — flow-hash granularity the
	// aggregate model cannot see — quanta are shifted away from the
	// observed worst link instead.
	NudgeAt float64
	// NudgeStep is the quanta moved per feedback correction (default
	// Units/10 — wide enough that the shifted hash window almost surely
	// contains some flows).
	NudgeStep int
	// Ingress selects whether inbound (true) or outbound load drives the
	// optimization. Inbound is the paper's interesting direction: it is
	// the one only a mapping push can steer.
	Ingress bool
}

func (c *Config) fill() {
	if c.Interval == 0 {
		c.Interval = time.Second
	}
	if c.Alpha == 0 {
		c.Alpha = 0.5
	}
	if c.Units == 0 {
		c.Units = 100
	}
	if c.Units > 255 {
		// A locator weight is a uint8 on the wire; more quanta than 255
		// could not be represented and CurrentWeights would silently
		// flatten the solved ratio.
		c.Units = 255
	}
	if c.Activate == 0 {
		c.Activate = 0.7
	}
	if c.MinGain == 0 {
		c.MinGain = 0.05
	}
	if c.Hold == 0 {
		c.Hold = 3 * time.Second
	}
	if c.NudgeAt == 0 {
		c.NudgeAt = 0.9
	}
	if c.NudgeStep == 0 {
		c.NudgeStep = c.Units / 10
		if c.NudgeStep == 0 {
			c.NudgeStep = 1
		}
	}
}

// Stats counts optimizer activity.
type Stats struct {
	// Reports counts telemetry observations consumed.
	Reports uint64
	// Ticks counts solve-cadence timer fires.
	Ticks uint64
	// Solves counts solver runs (ticks past the activation threshold).
	Solves uint64
	// Applies counts weight vectors actually emitted.
	Applies uint64
	// Nudges counts the subset of Applies produced by the feedback
	// stage rather than the model solver.
	Nudges uint64
	// LastMaxUtil is the most recent smoothed maximum utilization.
	LastMaxUtil float64
	// LastPredicted is the predicted max utilization of the last emitted
	// split.
	LastPredicted float64
}

// linkState is one link's smoothed demand.
type linkState struct {
	load    *irc.EWMA // bps, goodput
	lastOut uint64    // direct-sampling counters
	lastIn  uint64
	primed  bool
}

// Optimizer is the closed-loop controller.
type Optimizer struct {
	sim   *simnet.Sim
	cfg   Config
	links []Link
	state []linkState
	cur   []int // current weight split, in units

	// Apply receives each newly solved weight vector, one uint8 weight
	// per link in registration order. It is the actuator: core.PCE's
	// ApplyProviderWeights for the push plane, a site-record update plus
	// RefreshSite for pull planes.
	Apply func(weights []uint8)

	lastApply simnet.Time
	started   bool
	// feedback latches once the first nudge fires: from then on the
	// observed utilizations own the loop and the aggregate model is not
	// consulted again — re-applying its optimum would undo the
	// granularity corrections and oscillate.
	feedback bool

	// Stats counts activity.
	Stats Stats
}

// New builds an optimizer over the given links. The initial weight
// split defaults to an even one; use SetCurrentWeights when the site
// starts from a different advertised vector.
func New(sim *simnet.Sim, links []Link, cfg Config) *Optimizer {
	cfg.fill()
	o := &Optimizer{sim: sim, cfg: cfg, links: links}
	o.state = make([]linkState, len(links))
	for i := range o.state {
		o.state[i].load = irc.NewEWMA(cfg.Alpha)
	}
	o.cur = make([]int, len(links))
	for i := range o.cur {
		o.cur[i] = cfg.Units / max(1, len(links))
	}
	return o
}

// SetCurrentWeights seeds the optimizer's view of the currently
// advertised split, scaled into its internal units, so the first solve
// compares against reality instead of an assumed even split.
func (o *Optimizer) SetCurrentWeights(weights []uint8) {
	total := 0
	for _, w := range weights {
		total += int(w)
	}
	if total == 0 || len(weights) != len(o.cur) {
		return
	}
	for i, w := range weights {
		o.cur[i] = int(w) * o.cfg.Units / total
	}
}

// CurrentWeights returns the split the optimizer believes is deployed,
// as uint8 weights.
func (o *Optimizer) CurrentWeights() []uint8 {
	out := make([]uint8, len(o.cur))
	for i, w := range o.cur {
		if w > 255 {
			w = 255
		}
		out[i] = uint8(w)
	}
	return out
}

// Observe consumes one telemetry sample for the link identified by
// rloc: bytes of goodput delivered over the window. Unknown RLOCs are
// ignored (a report can outlive a reconfiguration).
func (o *Optimizer) Observe(rloc netaddr.Addr, bytes uint64, window simnet.Time) {
	if window <= 0 {
		return
	}
	for i := range o.links {
		if o.links[i].RLOC != rloc {
			continue
		}
		o.Stats.Reports++
		bps := float64(bytes) * 8 / (float64(window) / float64(time.Second))
		o.state[i].load.Update(bps)
		return
	}
}

// Start begins the solve cadence (keeps the event queue alive forever;
// run the simulation with bounded windows).
func (o *Optimizer) Start() {
	if o.started {
		return
	}
	o.started = true
	o.sim.ScheduleTimer(o.cfg.Interval, o, simnet.TimerArg{})
}

// OnTimer implements simnet.TimerHandler: one optimization tick.
func (o *Optimizer) OnTimer(simnet.TimerArg) {
	o.tick()
	o.sim.ScheduleTimer(o.cfg.Interval, o, simnet.TimerArg{})
}

// tick samples direct-attached interfaces, then decides whether a new
// split is worth pushing.
func (o *Optimizer) tick() {
	o.Stats.Ticks++
	dt := float64(o.cfg.Interval) / float64(time.Second)
	for i := range o.links {
		l, st := &o.links[i], &o.state[i]
		if l.Iface == nil {
			continue // telemetry-fed
		}
		out := l.Iface.Counters().DeliveredBytes
		in := l.Iface.Peer().Counters().DeliveredBytes
		if st.primed {
			bytes := out - st.lastOut
			if o.cfg.Ingress {
				bytes = in - st.lastIn
			}
			st.load.Update(float64(bytes) * 8 / dt)
		}
		st.lastOut, st.lastIn, st.primed = out, in, true
	}

	load := make([]float64, len(o.links))
	caps := make([]float64, len(o.links))
	for i := range o.links {
		load[i] = o.state[i].load.Value()
		caps[i] = float64(o.links[i].CapacityBps)
	}
	o.Stats.LastMaxUtil = MaxUtil(load, caps)
	if o.Stats.LastMaxUtil < o.cfg.Activate {
		return
	}
	if o.lastApply != 0 && o.sim.Now()-o.lastApply < o.cfg.Hold {
		return
	}

	// Stage 1 — model: jump to the min-max optimum of the proportional
	// redistribution model. One jump does the bulk of a correction (a
	// flash crowd's worth of imbalance in a single push).
	if !o.feedback {
		o.Stats.Solves++
		solved := Solve(load, caps, o.cfg.Units)
		if !equalInts(solved, o.cur) {
			total := 0.0
			for _, l := range load {
				total += l
			}
			predicted := PredictedMax(total, caps, solved)
			if o.Stats.LastMaxUtil-predicted >= o.cfg.MinGain {
				o.cur = solved
				o.emit(predicted)
				return
			}
		}
	}

	// Stage 2 — feedback: the model is at its fixpoint (or has been
	// retired) but a link still runs hot, which means flow-hash
	// granularity, not the aggregate split, is the residual problem.
	// Shift quanta from the observed worst link toward the observed
	// best; each shift slides the hash boundary past a few more flows.
	if o.Stats.LastMaxUtil < o.cfg.NudgeAt {
		return
	}
	src, dst := -1, -1
	for i, c := range caps {
		if c <= 0 {
			continue
		}
		if src < 0 || load[i]/c > load[src]/caps[src] {
			src = i
		}
		if dst < 0 || load[i]/c < load[dst]/caps[dst] {
			dst = i
		}
	}
	if src < 0 || dst < 0 || src == dst || o.cur[src] <= o.cfg.NudgeStep {
		return
	}
	o.feedback = true
	o.cur[src] -= o.cfg.NudgeStep
	o.cur[dst] += o.cfg.NudgeStep
	o.Stats.Nudges++
	o.emit(o.Stats.LastMaxUtil)
}

// emit records an apply and hands the new split to the actuator.
func (o *Optimizer) emit(predicted float64) {
	o.lastApply = o.sim.Now()
	o.Stats.Applies++
	o.Stats.LastPredicted = predicted
	if o.Apply != nil {
		o.Apply(o.CurrentWeights())
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
