// Package overlay implements runtime.Host over one real UDP socket: the
// daemon's data and control planes ride full IPv4/UDP frames — the exact
// bytes runtime.EncodeUDP and the encap templates produce — carried as
// payloads between daemon sockets. Keeping the inner frames bit-identical
// to the simulator's wire format is what lets the differential tests
// compare sim and real traces, and lets the e2e tests check encap output
// against the packet codec goldens.
//
// One Host carries every protocol role of a daemon (xTR, PCE, DNS front
// end), which is why bindings are keyed by (address, port) where a sim
// node — one role per node — keys by port alone. Frames whose destination
// is not a host address are routed by longest-prefix match over the peer
// table to another socket (another daemon, or a test harness acting as an
// end host).
package overlay

import (
	"fmt"
	"log"
	"net"
	"sync"
	"sync/atomic"

	"github.com/pcelisp/pcelisp/internal/netaddr"
	"github.com/pcelisp/pcelisp/internal/obs"
	"github.com/pcelisp/pcelisp/internal/packet"
	"github.com/pcelisp/pcelisp/internal/runtime"
)

// Stats is a snapshot of host activity; read it via Host.Stats.
type Stats struct {
	RxFrames      uint64
	TxFrames      uint64
	Consumed      uint64 // frames consumed by a sniffer
	NoRoute       uint64 // frames with no local bind and no peer route
	Unhandled     uint64 // local frames with no matching binding
	Malformed     uint64 // frames that failed to decode
	MulticastDrop uint64
}

// hostMetrics is the live counter set behind Stats. The counters are
// atomic, so a scraping admin endpoint reads them without posting to the
// loop.
type hostMetrics struct {
	RxFrames      obs.Counter
	TxFrames      obs.Counter
	Consumed      obs.Counter
	NoRoute       obs.Counter
	Unhandled     obs.Counter
	DecodeErrors  obs.Counter
	MulticastDrop obs.Counter
}

func (m *hostMetrics) register(r *obs.Registry, node string) {
	l := obs.Label{Key: "node", Value: node}
	r.RegisterCounter("pcelisp_overlay_rx_frames_total", "Frames received by the host socket (including loopback deliveries).", &m.RxFrames, l)
	r.RegisterCounter("pcelisp_overlay_tx_frames_total", "Frames forwarded to a peer socket.", &m.TxFrames, l)
	r.RegisterCounter("pcelisp_overlay_consumed_total", "Frames consumed by a sniffer (PCE bump-in-the-wire).", &m.Consumed, l)
	r.RegisterCounter("pcelisp_overlay_no_route_drops_total", "Frames dropped with no local bind and no peer route.", &m.NoRoute, l)
	r.RegisterCounter("pcelisp_overlay_unhandled_total", "Local frames with no matching binding.", &m.Unhandled, l)
	r.RegisterCounter("pcelisp_overlay_decode_errors_total", "Frames dropped because IPv4/UDP decoding failed.", &m.DecodeErrors, l)
	r.RegisterCounter("pcelisp_overlay_multicast_drops_total", "Outbound multicast frames dropped (no multicast fabric).", &m.MulticastDrop, l)
}

func (m *hostMetrics) snapshot() Stats {
	return Stats{
		RxFrames:      m.RxFrames.Load(),
		TxFrames:      m.TxFrames.Load(),
		Consumed:      m.Consumed.Load(),
		NoRoute:       m.NoRoute.Load(),
		Unhandled:     m.Unhandled.Load(),
		Malformed:     m.DecodeErrors.Load(),
		MulticastDrop: m.MulticastDrop.Load(),
	}
}

type bindKey struct {
	addr netaddr.Addr // invalid = wildcard
	port uint16
}

// Host is the real-time runtime.Host. Protocol callbacks (bindings,
// sniffers, timer handlers) all run on the owning Loop's goroutine, so
// the protocol layer needs no locking — the same execution model the
// simulator provides.
type Host struct {
	name string
	loop *runtime.Loop
	conn *net.UDPConn

	// mu guards addrs and peers, the two tables Reload/SetPeer may touch
	// from outside the loop. Bindings and sniffers are registered during
	// setup, before Start, and are read-only afterwards.
	mu    sync.RWMutex
	addrs map[netaddr.Addr]struct{}
	peers *netaddr.Trie[*net.UDPAddr]

	sniffers []runtime.FrameSniffer
	binds    map[bindKey]runtime.UDPHandler
	rawBinds map[uint16]runtime.RawUDPHandler

	started   atomic.Bool
	closeOnce sync.Once
	readDone  chan struct{}

	met hostMetrics

	// Logf, when set before Start, replaces log.Printf for the host's
	// once-per-source drop diagnostics (tests capture it).
	Logf func(format string, args ...any)

	// dropLogged dedups drop diagnostics: one log line per (reason,
	// source) pair, bounded so a spoofed-source flood cannot grow it
	// without limit. Loop-goroutine confined, like the drop paths.
	dropLogged map[dropKey]struct{}
}

type dropKey struct {
	reason string
	src    netaddr.Addr
}

// maxDropLogSources bounds dropLogged; past it, drops are still counted
// but no longer logged for new sources.
const maxDropLogSources = 1024

// New binds a host socket on listen (e.g. "127.0.0.1:0") attached to the
// given loop. Call AddAddr/SetPeer/Bind*/AddFrameSniffer, then Start.
func New(name string, loop *runtime.Loop, listen string) (*Host, error) {
	la, err := net.ResolveUDPAddr("udp4", listen)
	if err != nil {
		return nil, fmt.Errorf("overlay: resolve %q: %w", listen, err)
	}
	conn, err := net.ListenUDP("udp4", la)
	if err != nil {
		return nil, fmt.Errorf("overlay: bind %q: %w", listen, err)
	}
	return &Host{
		name:       name,
		loop:       loop,
		conn:       conn,
		addrs:      make(map[netaddr.Addr]struct{}),
		peers:      netaddr.NewTrie[*net.UDPAddr](),
		binds:      make(map[bindKey]runtime.UDPHandler),
		rawBinds:   make(map[uint16]runtime.RawUDPHandler),
		readDone:   make(chan struct{}),
		dropLogged: make(map[dropKey]struct{}),
	}, nil
}

// Stats returns a snapshot of the host's counters.
func (h *Host) Stats() Stats { return h.met.snapshot() }

// RegisterMetrics publishes the host's counters on r under
// pcelisp_overlay_* with a node label. Call before Start.
func (h *Host) RegisterMetrics(r *obs.Registry) {
	h.met.register(r, h.name)
}

// logDrop emits one diagnostic line per (reason, source) pair — a silent
// NoRoute++ hid a whole class of misconfigured peer tables, while
// per-frame logging would melt under a flood.
func (h *Host) logDrop(reason string, data []byte) {
	src, _ := packet.PeekIPv4Src(data) // invalid addr = "unparseable source"
	k := dropKey{reason: reason, src: src}
	if _, seen := h.dropLogged[k]; seen || len(h.dropLogged) >= maxDropLogSources {
		return
	}
	h.dropLogged[k] = struct{}{}
	logf := h.Logf
	if logf == nil {
		logf = log.Printf
	}
	logf("overlay %s: dropping frames from %v: %s (further drops from this source counted but not logged)", h.name, src, reason)
}

// RealAddr returns the socket's real address (for peering other hosts).
func (h *Host) RealAddr() *net.UDPAddr { return h.conn.LocalAddr().(*net.UDPAddr) }

// AddAddr declares a an address owned by this host.
func (h *Host) AddAddr(a netaddr.Addr) {
	h.mu.Lock()
	h.addrs[a] = struct{}{}
	h.mu.Unlock()
}

// SetPeer routes frames destined into p to the socket at ra. Longest
// prefix wins, so a broad "remote domain" route and a narrow "this client
// host" route compose.
func (h *Host) SetPeer(p netaddr.Prefix, ra *net.UDPAddr) {
	h.mu.Lock()
	h.peers.Insert(p, ra)
	h.mu.Unlock()
}

// PeerRoute is one peer-table entry, as reported by Peers.
type PeerRoute struct {
	Prefix   string `json:"prefix"`
	Endpoint string `json:"endpoint"`
}

// Peers snapshots the peer table (the admin endpoint's /statusz view).
func (h *Host) Peers() []PeerRoute {
	h.mu.RLock()
	defer h.mu.RUnlock()
	var out []PeerRoute
	h.peers.Walk(func(p netaddr.Prefix, ra *net.UDPAddr) bool {
		out = append(out, PeerRoute{Prefix: p.String(), Endpoint: ra.String()})
		return true
	})
	return out
}

// Start launches the socket reader. Frames are copied off the read buffer
// and posted to the loop, so every protocol callback runs serialized.
func (h *Host) Start() {
	if !h.started.CompareAndSwap(false, true) {
		return
	}
	go h.readLoop()
}

// Close shuts the socket and waits for the reader to exit. The loop keeps
// running (it may serve other hosts); stop it separately.
func (h *Host) Close() error {
	var err error
	h.closeOnce.Do(func() {
		err = h.conn.Close()
		if h.started.Load() {
			<-h.readDone
		}
	})
	return err
}

func (h *Host) readLoop() {
	defer close(h.readDone)
	buf := make([]byte, 64*1024)
	for {
		n, _, err := h.conn.ReadFromUDP(buf)
		if err != nil {
			return // closed (or fatal socket error): stop reading
		}
		frame := make([]byte, n)
		copy(frame, buf[:n])
		h.loop.Post(func() { h.receive(frame) })
	}
}

// receive handles one inbound frame on the loop goroutine: sniffers
// first (ingress inspection — the PCE's bump-in-the-wire placement), then
// local delivery or peer forwarding.
func (h *Host) receive(data []byte) {
	h.met.RxFrames.Inc()
	for _, s := range h.sniffers {
		if s(data) == runtime.VerdictConsume {
			h.met.Consumed.Inc()
			return
		}
	}
	dst, ok := packet.PeekIPv4Dst(data)
	if !ok {
		h.met.DecodeErrors.Inc()
		h.logDrop("frame decode failure", data)
		return
	}
	if h.HasAddr(dst) {
		h.deliver(dst, data)
		return
	}
	// Transit: the sniffers already inspected this frame; route it on
	// without a second pass (the sim equivalent is a router node's
	// forwarding path).
	h.forward(dst, data)
}

// deliver dispatches a local frame to its binding: raw fast path first
// (LISP data port), then decoded (addr, port) bindings with wildcard
// fallback — mirroring simnet.Node.deliverLocal.
func (h *Host) deliver(dst netaddr.Addr, data []byte) {
	if len(h.rawBinds) != 0 {
		if _, dport, payload, ok := packet.PeekUDPPayload(data); ok {
			if rh, ok := h.rawBinds[dport]; ok {
				rh(data, payload)
				return
			}
		}
	}
	pk := packet.NewPacket(data, packet.LayerTypeIPv4, packet.NoCopy)
	ipl := pk.Layer(packet.LayerTypeIPv4)
	if ipl == nil {
		h.met.DecodeErrors.Inc()
		h.logDrop("frame decode failure", data)
		return
	}
	ip := ipl.(*packet.IPv4)
	if ip.Protocol != packet.IPProtocolUDP {
		h.met.Unhandled.Inc()
		return
	}
	udpl := pk.Layer(packet.LayerTypeUDP)
	if udpl == nil {
		h.met.DecodeErrors.Inc()
		h.logDrop("frame decode failure", data)
		return
	}
	udp := udpl.(*packet.UDP)
	if bh, ok := h.binds[bindKey{addr: dst, port: udp.DstPort}]; ok {
		bh(ip.SrcIP, ip.DstIP, udp)
		return
	}
	if bh, ok := h.binds[bindKey{port: udp.DstPort}]; ok {
		bh(ip.SrcIP, ip.DstIP, udp)
		return
	}
	h.met.Unhandled.Inc()
}

// forward routes a frame to the peer owning its destination.
func (h *Host) forward(dst netaddr.Addr, data []byte) {
	h.mu.RLock()
	ra, _, ok := h.peers.Lookup(dst)
	h.mu.RUnlock()
	if !ok {
		h.met.NoRoute.Inc()
		h.logDrop("no peer route", data)
		return
	}
	h.met.TxFrames.Inc()
	h.conn.WriteToUDP(data, ra)
}

// HostName implements runtime.Host.
func (h *Host) HostName() string { return h.name }

// HasAddr implements runtime.Host.
func (h *Host) HasAddr(a netaddr.Addr) bool {
	h.mu.RLock()
	_, ok := h.addrs[a]
	h.mu.RUnlock()
	return ok
}

// EgressByAddr implements runtime.Host. The single-socket host has no
// per-egress structure; everything routes by destination.
func (h *Host) EgressByAddr(netaddr.Addr) runtime.Egress { return nil }

// AddrUp implements runtime.Host: a real socket has no per-address link
// state, so an owned address is an up address.
func (h *Host) AddrUp(a netaddr.Addr) bool { return h.HasAddr(a) }

// RouteUp implements runtime.Host: reachable means local or peered.
func (h *Host) RouteUp(dst netaddr.Addr) bool {
	if h.HasAddr(dst) {
		return true
	}
	h.mu.RLock()
	_, _, ok := h.peers.Lookup(dst)
	h.mu.RUnlock()
	return ok
}

// Output implements runtime.Host. Locally addressed frames loop back
// through the posted receive path (so sniffers inspect them exactly once,
// like the sim's evDeliver loopback); outbound frames pass the sniffer
// chain as egress inspection — that is where a co-located PCED sees its
// DNS front end's authoritative replies leaving the daemon — and are then
// routed to a peer.
func (h *Host) Output(data []byte) error {
	dst, ok := packet.PeekIPv4Dst(data)
	if !ok {
		h.met.DecodeErrors.Inc()
		h.logDrop("frame decode failure", data)
		return fmt.Errorf("overlay: malformed frame")
	}
	if dst.IsMulticast() {
		// No multicast fabric: daemons run with an invalid group so the
		// control plane unicasts instead; anything else is dropped.
		h.met.MulticastDrop.Inc()
		return nil
	}
	if h.HasAddr(dst) {
		h.loop.Post(func() { h.receive(data) })
		return nil
	}
	for _, s := range h.sniffers {
		if s(data) == runtime.VerdictConsume {
			h.met.Consumed.Inc()
			return nil
		}
	}
	h.forward(dst, data)
	return nil
}

// OutputVia implements runtime.Host; with no egress structure it is
// Output.
func (h *Host) OutputVia(_ runtime.Egress, data []byte) { h.Output(data) }

// OutputUDP implements runtime.Host.
func (h *Host) OutputUDP(src, dst netaddr.Addr, sport, dport uint16, app ...packet.SerializableLayer) int {
	data := runtime.EncodeUDP(src, dst, sport, dport, app...)
	h.Output(data)
	return len(data)
}

// BindUDP implements runtime.Host. An invalid addr is the port wildcard.
func (h *Host) BindUDP(addr netaddr.Addr, port uint16, fn runtime.UDPHandler) {
	k := bindKey{addr: addr, port: port}
	if _, dup := h.binds[k]; dup {
		panic(fmt.Sprintf("overlay: duplicate bind %v:%d on %s", addr, port, h.name))
	}
	h.binds[k] = fn
}

// BindUDPRaw implements runtime.Host.
func (h *Host) BindUDPRaw(port uint16, fn runtime.RawUDPHandler) {
	if _, dup := h.rawBinds[port]; dup {
		panic(fmt.Sprintf("overlay: duplicate raw bind :%d on %s", port, h.name))
	}
	h.rawBinds[port] = fn
}

// AddFrameSniffer implements runtime.Host.
func (h *Host) AddFrameSniffer(s runtime.FrameSniffer) {
	h.sniffers = append(h.sniffers, s)
}

// JoinGroup implements runtime.Host: no multicast fabric, best-effort
// no-op. Daemon configs use an invalid group so the PCE unicasts pushes.
func (h *Host) JoinGroup(netaddr.Addr) {}

var _ runtime.Host = (*Host)(nil)
