package overlay

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"github.com/pcelisp/pcelisp/internal/netaddr"
	"github.com/pcelisp/pcelisp/internal/obs"
	"github.com/pcelisp/pcelisp/internal/runtime"
)

// testHost builds a started loop + host pair with a log capture hook and
// a metrics registry wired in.
func testHost(t *testing.T) (*Host, *obs.Registry, func() []string) {
	t.Helper()
	loop := runtime.NewLoop(1)
	h, err := New("h1", loop, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var lines []string
	h.Logf = func(format string, args ...any) {
		mu.Lock()
		lines = append(lines, fmt.Sprintf(format, args...))
		mu.Unlock()
	}
	reg := obs.NewRegistry()
	h.RegisterMetrics(reg)
	loop.Start()
	t.Cleanup(func() { h.Close(); loop.Stop() })
	return h, reg, func() []string {
		mu.Lock()
		defer mu.Unlock()
		return append([]string(nil), lines...)
	}
}

// sync waits until every previously posted thunk has run.
func loopSync(h *Host) {
	done := make(chan struct{})
	h.loop.Post(func() { close(done) })
	<-done
}

// TestNoRouteDropCountedAndLoggedOnce is the regression test for the
// silent-drop bug: frames with no local bind and no peer route must be
// counted (Stats and registry) and logged exactly once per source.
func TestNoRouteDropCountedAndLoggedOnce(t *testing.T) {
	h, reg, logs := testHost(t)

	srcA := netaddr.MustParseAddr("10.0.0.1")
	srcB := netaddr.MustParseAddr("10.0.0.2")
	dst := netaddr.MustParseAddr("192.0.2.1") // not owned, no peer route
	frameA := runtime.EncodeUDP(srcA, dst, 4000, 4001)
	frameB := runtime.EncodeUDP(srcB, dst, 4000, 4001)

	for i := 0; i < 3; i++ {
		h.loop.Post(func() { h.receive(frameA) })
	}
	h.loop.Post(func() { h.receive(frameB) })
	loopSync(h)

	if got := h.Stats().NoRoute; got != 4 {
		t.Fatalf("NoRoute = %d, want 4", got)
	}
	if v, ok := reg.Value("pcelisp_overlay_no_route_drops_total", obs.Label{Key: "node", Value: "h1"}); !ok || v != 4 {
		t.Fatalf("registry no_route_drops = %v, %v; want 4, true", v, ok)
	}
	var aLines, bLines int
	for _, l := range logs() {
		if !strings.Contains(l, "no peer route") {
			t.Fatalf("unexpected log line %q", l)
		}
		if strings.Contains(l, srcA.String()) {
			aLines++
		}
		if strings.Contains(l, srcB.String()) {
			bLines++
		}
	}
	if aLines != 1 || bLines != 1 {
		t.Fatalf("drop log lines: srcA=%d srcB=%d, want exactly 1 each\n%v", aLines, bLines, logs())
	}
}

// TestDecodeFailureCounted: undecodable frames must hit the decode-error
// counter (they used to be counted only on some paths) and log once.
func TestDecodeFailureCounted(t *testing.T) {
	h, reg, logs := testHost(t)

	junk := []byte{0x45, 0x00, 0x01} // truncated IPv4 header
	h.loop.Post(func() { h.receive(junk) })
	h.loop.Post(func() { h.receive(junk) })
	loopSync(h)

	if got := h.Stats().Malformed; got != 2 {
		t.Fatalf("Malformed = %d, want 2", got)
	}
	if v, ok := reg.Value("pcelisp_overlay_decode_errors_total", obs.Label{Key: "node", Value: "h1"}); !ok || v != 2 {
		t.Fatalf("registry decode_errors = %v, %v; want 2, true", v, ok)
	}
	var decodeLines int
	for _, l := range logs() {
		if strings.Contains(l, "decode failure") {
			decodeLines++
		}
	}
	if decodeLines != 1 {
		t.Fatalf("decode-failure log lines = %d, want 1 (once per source)\n%v", decodeLines, logs())
	}
}

// TestDropLogBounded: a spoofed-source flood must not grow the log-dedup
// table past its bound, while the drop counter keeps counting.
func TestDropLogBounded(t *testing.T) {
	h, _, logs := testHost(t)

	dst := netaddr.MustParseAddr("192.0.2.1")
	const flood = maxDropLogSources + 100
	h.loop.Post(func() {
		for i := 0; i < flood; i++ {
			src := netaddr.Addr(0x0a000000 + uint32(i)) // 10.0.0.0 + i
			h.receive(runtime.EncodeUDP(src, dst, 4000, 4001))
		}
	})
	loopSync(h)

	if got := h.Stats().NoRoute; got != flood {
		t.Fatalf("NoRoute = %d, want %d (counting must not stop at the log bound)", got, flood)
	}
	if got := len(logs()); got != maxDropLogSources {
		t.Fatalf("log lines = %d, want %d (bounded)", got, maxDropLogSources)
	}
	if got := len(h.dropLogged); got != maxDropLogSources {
		t.Fatalf("dropLogged = %d entries, want bounded at %d", got, maxDropLogSources)
	}
}
