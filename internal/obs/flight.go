// The control-plane flight recorder: a fixed ring of typed decision
// events. Protocol code Records control-plane decisions as they happen
// (never per-packet work); the ring keeps the most recent window, and
// Dump reconstructs it oldest-first for the admin endpoint or an
// experiment driver. Timestamps come from the caller's runtime clock —
// virtual time in the simulator, monotonic time in the daemon — so sim
// and real traces are directly comparable.
package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"

	"github.com/pcelisp/pcelisp/internal/netaddr"
)

// EventKind classifies a flight-recorder event.
type EventKind uint8

// The decision points the recorder captures.
const (
	// KMapRequest: a resolution left the xTR/requester toward the
	// mapping system (or a PCED MapFetch toward a PCES).
	KMapRequest EventKind = iota
	// KMapReply: a mapping answer arrived and was accepted.
	KMapReply
	// KMappingInstall: a mapping entered an ITR cache.
	KMappingInstall
	// KMappingReject: an install was refused (overclaim floor, bad
	// prefix).
	KMappingReject
	// KProbeUp / KProbeDown: RLOC probing flipped a locator's
	// reachability.
	KProbeUp
	KProbeDown
	// KWeightPush: the PCE announced new locator weights.
	KWeightPush
	// KDefenseReject: a defense layer discarded control traffic (auth
	// failure, quota, queue overflow, glean rate limit).
	KDefenseReject
)

var kindNames = [...]string{
	KMapRequest:     "map-request",
	KMapReply:       "map-reply",
	KMappingInstall: "mapping-install",
	KMappingReject:  "mapping-reject",
	KProbeUp:        "probe-up",
	KProbeDown:      "probe-down",
	KWeightPush:     "weight-push",
	KDefenseReject:  "defense-reject",
}

// String returns the stable wire name of the kind.
func (k EventKind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// Event is one recorded control-plane decision.
type Event struct {
	// At is the runtime clock at the decision (virtual time in the sim,
	// time since daemon start for real runs).
	At time.Duration
	// Kind classifies the decision.
	Kind EventKind
	// Node names the host that decided.
	Node string
	// EID is the prefix the decision concerns (zero when inapplicable).
	EID netaddr.Prefix
	// RLOC is the locator involved (zero when inapplicable).
	RLOC netaddr.Addr
	// Note carries kind-specific detail (reject reason, weight vector).
	Note string
}

// MarshalJSON renders the event with human-readable kind and addresses.
func (e Event) MarshalJSON() ([]byte, error) {
	type wire struct {
		At   string `json:"at"`
		Kind string `json:"kind"`
		Node string `json:"node,omitempty"`
		EID  string `json:"eid,omitempty"`
		RLOC string `json:"rloc,omitempty"`
		Note string `json:"note,omitempty"`
	}
	w := wire{At: e.At.String(), Kind: e.Kind.String(), Node: e.Node, Note: e.Note}
	if e.EID.Bits() > 0 || e.EID.Addr().IsValid() {
		w.EID = e.EID.String()
	}
	if e.RLOC.IsValid() {
		w.RLOC = e.RLOC.String()
	}
	return json.Marshal(w)
}

// FlightRecorder is a fixed-size ring of Events. A nil *FlightRecorder
// is valid and records nothing, so protocol code calls Record
// unconditionally. All methods are safe for concurrent use.
type FlightRecorder struct {
	mu    sync.Mutex
	ring  []Event
	total uint64 // events ever recorded; total % len(ring) is the next slot
}

// DefaultRingSize is the ring capacity NewFlightRecorder(0) uses.
const DefaultRingSize = 4096

// NewFlightRecorder returns a recorder keeping the last size events
// (DefaultRingSize when size <= 0).
func NewFlightRecorder(size int) *FlightRecorder {
	if size <= 0 {
		size = DefaultRingSize
	}
	return &FlightRecorder{ring: make([]Event, size)}
}

// Record appends one event, overwriting the oldest once the ring is
// full. No-op on a nil recorder.
func (r *FlightRecorder) Record(ev Event) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.ring[r.total%uint64(len(r.ring))] = ev
	r.total++
	r.mu.Unlock()
}

// TotalRecorded returns how many events were ever recorded (including
// ones the ring has since overwritten). Zero on a nil recorder.
func (r *FlightRecorder) TotalRecorded() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Dump returns the retained events oldest-first. Safe to call while
// recording continues; the snapshot is consistent. Nil on a nil
// recorder.
func (r *FlightRecorder) Dump() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.total
	cap64 := uint64(len(r.ring))
	if n > cap64 {
		n = cap64
	}
	out := make([]Event, 0, n)
	start := r.total - n
	for i := uint64(0); i < n; i++ {
		out = append(out, r.ring[(start+i)%cap64])
	}
	return out
}

// Filter returns the retained events of the given kind, oldest-first —
// the queryable-trace entry point experiment drivers use.
func (r *FlightRecorder) Filter(k EventKind) []Event {
	var out []Event
	for _, ev := range r.Dump() {
		if ev.Kind == k {
			out = append(out, ev)
		}
	}
	return out
}

// WriteJSON dumps the ring as a JSON document for the admin endpoint.
func (r *FlightRecorder) WriteJSON(w io.Writer) error {
	doc := struct {
		Total    uint64  `json:"total_recorded"`
		Retained int     `json:"retained"`
		Events   []Event `json:"events"`
	}{}
	doc.Events = r.Dump()
	doc.Total = r.TotalRecorded()
	doc.Retained = len(doc.Events)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
