// Package obs is the runtime-agnostic observability core shared by the
// deterministic simulator and the real daemon: a zero-alloc metrics
// registry (atomically-updated counters, gauges and fixed-bucket
// histograms, pre-registered at construction so the hot path is a plain
// atomic add) and a control-plane flight recorder (a fixed ring of typed
// decision events stamped from the runtime clock).
//
// Counters are value types meant to be embedded in a component's metric
// set: incrementing one is an atomic add with no pointer chase and no
// allocation, whether or not a Registry is watching. Registration hands
// the Registry a pointer into the live struct, so scraping reads the
// same memory the hot path writes — there is no sampling step and no
// snapshot copy until exposition time.
//
// Everything is safe to read concurrently with writers: counters and
// histogram buckets are atomics, and the flight-recorder ring is
// mutex-guarded. Neither draws randomness nor consults wall-clock time,
// so enabling observability cannot perturb a deterministic simulation.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is ready
// to use; embed it by value so incrementing never allocates.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current count.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is a metric that can go up and down. The zero value is ready.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the value by n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// histMaxBuckets bounds a histogram's bucket array so the whole
// histogram lives inline in its owner's struct.
const histMaxBuckets = 16

// Histogram is a fixed-bucket histogram. Init it once with its upper
// bounds (at most histMaxBuckets-1 of them; a +Inf bucket is implicit),
// then Observe values from any goroutine. The zero value counts
// observations into the implicit +Inf bucket until Init is called.
type Histogram struct {
	bounds  []float64 // immutable after Init; usually a shared package-level slice
	buckets [histMaxBuckets]atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64 // float64 bits, CAS-updated
}

// Init sets the bucket upper bounds. Bounds must be sorted ascending.
// Call before the histogram is shared; not safe concurrently with
// Observe.
func (h *Histogram) Init(bounds []float64) {
	if len(bounds) > histMaxBuckets-1 {
		panic(fmt.Sprintf("obs: histogram bounds %d exceed max %d", len(bounds), histMaxBuckets-1))
	}
	h.bounds = bounds
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Bucket returns the cumulative count of observations <= the i-th bound
// (i == len(bounds) is the +Inf bucket, equal to Count).
func (h *Histogram) Bucket(i int) uint64 {
	var cum uint64
	for j := 0; j <= i && j < histMaxBuckets; j++ {
		cum += h.buckets[j].Load()
	}
	return cum
}

// Label is one name/value pair attached to a series.
type Label struct{ Key, Value string }

// kind discriminates series types for exposition.
type kind uint8

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

// series is one registered time series: a metric pointer plus its
// identity (family name + label set).
type series struct {
	name   string
	labels []Label
	k      kind
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family groups series sharing a metric name.
type family struct {
	name   string
	help   string
	k      kind
	series []*series
}

// Registry indexes registered metrics for exposition and queries. A nil
// *Registry is valid: every method is a no-op (returning fresh,
// unregistered metrics where one is expected), so components register
// unconditionally and pay nothing when observability is off.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string // family names in registration order
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// seriesKey canonicalizes a label set for duplicate detection.
func seriesKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	for _, l := range labels {
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
		b.WriteByte(',')
	}
	return b.String()
}

// sortLabels returns labels sorted by key (copying to leave the
// caller's slice alone).
func sortLabels(labels []Label) []Label {
	if len(labels) == 0 {
		return nil
	}
	out := make([]Label, len(labels))
	copy(out, labels)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// register adds one series, panicking on a duplicate (same family name
// and label set) unless getOrCreate, in which case the existing series'
// metric is returned. Returns the series registered or found.
func (r *Registry) register(name, help string, k kind, s *series, getOrCreate bool) *series {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, k: k}
		r.families[name] = f
		r.order = append(r.order, name)
	} else if f.k != k {
		panic(fmt.Sprintf("obs: metric %q re-registered with a different type", name))
	}
	key := seriesKey(s.labels)
	for _, prev := range f.series {
		if seriesKey(prev.labels) == key {
			if getOrCreate {
				return prev
			}
			panic(fmt.Sprintf("obs: duplicate series %s{%s}", name, key))
		}
	}
	f.series = append(f.series, s)
	return s
}

// RegisterCounter registers a caller-owned counter (typically embedded
// in a component's metric set). Panics if the (name, labels) series
// already exists — pre-registered series are wired exactly once, at
// construction.
func (r *Registry) RegisterCounter(name, help string, c *Counter, labels ...Label) {
	if r == nil {
		return
	}
	r.register(name, help, kindCounter, &series{name: name, labels: sortLabels(labels), k: kindCounter, c: c}, false)
}

// RegisterGauge registers a caller-owned gauge. Panics on duplicates.
func (r *Registry) RegisterGauge(name, help string, g *Gauge, labels ...Label) {
	if r == nil {
		return
	}
	r.register(name, help, kindGauge, &series{name: name, labels: sortLabels(labels), k: kindGauge, g: g}, false)
}

// RegisterHistogram registers a caller-owned histogram. Panics on
// duplicates.
func (r *Registry) RegisterHistogram(name, help string, h *Histogram, labels ...Label) {
	if r == nil {
		return
	}
	r.register(name, help, kindHistogram, &series{name: name, labels: sortLabels(labels), k: kindHistogram, h: h}, false)
}

// Counter returns the counter for (name, labels), creating and
// registering it on first use. This is the dynamic-label path (e.g. a
// per-view DNS counter that must survive a config reload re-wiring the
// views): re-requesting the same series returns the same counter.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return &Counter{}
	}
	s := r.register(name, help, kindCounter, &series{name: name, labels: sortLabels(labels), k: kindCounter, c: &Counter{}}, true)
	return s.c
}

// Gauge returns the gauge for (name, labels), creating and registering
// it on first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return &Gauge{}
	}
	s := r.register(name, help, kindGauge, &series{name: name, labels: sortLabels(labels), k: kindGauge, g: &Gauge{}}, true)
	return s.g
}

// Value returns the current value of the counter or gauge series, and
// whether it exists. Intended for tests and experiment drivers reading
// E-series counters by name.
func (r *Registry) Value(name string, labels ...Label) (float64, bool) {
	if r == nil {
		return 0, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		return 0, false
	}
	key := seriesKey(sortLabels(labels))
	for _, s := range f.series {
		if seriesKey(s.labels) == key {
			switch s.k {
			case kindCounter:
				return float64(s.c.Load()), true
			case kindGauge:
				return float64(s.g.Load()), true
			}
		}
	}
	return 0, false
}

// labelString renders {k="v",...} with extra labels appended (used for
// histogram le labels). Values are escaped per the Prometheus text
// format.
func labelString(labels []Label, extra ...Label) string {
	all := append(append([]Label{}, labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range all {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		v := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`).Replace(l.Value)
		b.WriteString(v)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// WritePrometheus writes the registry in the Prometheus text exposition
// format (version 0.0.4): families in sorted-name order, each with HELP
// and TYPE lines, series in registration order within a family.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, len(r.order))
	copy(names, r.order)
	sort.Strings(names)
	fams := make([]*family, 0, len(names))
	for _, n := range names {
		fams = append(fams, r.families[n])
	}
	r.mu.Unlock()

	for _, f := range fams {
		typ := "counter"
		switch f.k {
		case kindGauge:
			typ = "gauge"
		case kindHistogram:
			typ = "histogram"
		}
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, typ); err != nil {
			return err
		}
		for _, s := range f.series {
			switch s.k {
			case kindCounter:
				if _, err := fmt.Fprintf(w, "%s%s %d\n", s.name, labelString(s.labels), s.c.Load()); err != nil {
					return err
				}
			case kindGauge:
				if _, err := fmt.Fprintf(w, "%s%s %d\n", s.name, labelString(s.labels), s.g.Load()); err != nil {
					return err
				}
			case kindHistogram:
				h := s.h
				for i, bound := range h.bounds {
					le := strings.TrimSuffix(fmt.Sprintf("%g", bound), ".0")
					if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", s.name, labelString(s.labels, Label{"le", le}), h.Bucket(i)); err != nil {
						return err
					}
				}
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", s.name, labelString(s.labels, Label{"le", "+Inf"}), h.Count()); err != nil {
					return err
				}
				if _, err := fmt.Fprintf(w, "%s_sum%s %g\n", s.name, labelString(s.labels), h.Sum()); err != nil {
					return err
				}
				if _, err := fmt.Fprintf(w, "%s_count%s %d\n", s.name, labelString(s.labels), h.Count()); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
