package obs

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/pcelisp/pcelisp/internal/netaddr"
)

func TestCounterGaugeBasics(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if got := c.Load(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	var g Gauge
	g.Set(7)
	g.Add(-3)
	if got := g.Load(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	h.Init([]float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if got := h.Sum(); got != 56.05 {
		t.Fatalf("sum = %g, want 56.05", got)
	}
	// Cumulative: <=0.1 → 1, <=1 → 3, <=10 → 4, +Inf → 5.
	for i, want := range []uint64{1, 3, 4} {
		if got := h.Bucket(i); got != want {
			t.Fatalf("bucket[%d] = %d, want %d", i, got, want)
		}
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	var a, b Counter
	r.RegisterCounter("x_total", "x", &a, Label{"node", "n1"})
	r.RegisterCounter("x_total", "x", &b, Label{"node", "n2"}) // distinct labels OK
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate series")
		}
	}()
	r.RegisterCounter("x_total", "x", &b, Label{"node", "n1"})
}

func TestRegistryTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	var c Counter
	r.RegisterCounter("y_total", "y", &c)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on type mismatch")
		}
	}()
	var g Gauge
	r.RegisterGauge("y_total", "y", &g)
}

func TestGetOrCreateReturnsSameSeries(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("dns_queries_total", "q", Label{"view", "internal"})
	a.Add(3)
	// Same (name, labels) after e.g. a config reload: same live counter.
	b := r.Counter("dns_queries_total", "q", Label{"view", "internal"})
	if a != b {
		t.Fatal("get-or-create returned a different counter for the same series")
	}
	if b.Load() != 3 {
		t.Fatalf("counter lost its value across re-registration: %d", b.Load())
	}
	if v, ok := r.Value("dns_queries_total", Label{"view", "internal"}); !ok || v != 3 {
		t.Fatalf("Value = %v, %v; want 3, true", v, ok)
	}
}

func TestNilRegistryIsSafe(t *testing.T) {
	var r *Registry
	var c Counter
	r.RegisterCounter("n_total", "n", &c)
	r.Counter("m_total", "m").Inc()
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Value("n_total"); ok {
		t.Fatal("nil registry claims to hold a value")
	}
}

// TestPrometheusExposition parses every line of the exposition and
// checks the text-format conventions: HELP/TYPE precede samples, names
// and label keys are legal, counter families end in _total, histograms
// emit _bucket/_sum/_count with a +Inf bucket, and families appear in
// sorted order.
func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	var c1, c2 Counter
	var g Gauge
	var h Histogram
	h.Init([]float64{0.01, 0.1, 1})
	r.RegisterCounter("pcelisp_b_packets_total", "b packets", &c1, Label{"node", "a"}, Label{"dir", "rx"})
	r.RegisterCounter("pcelisp_b_packets_total", "b packets", &c2, Label{"node", "a"}, Label{"dir", "tx"})
	r.RegisterGauge("pcelisp_a_queue_depth", "queue depth", &g)
	r.RegisterHistogram("pcelisp_c_latency_seconds", "latency", &h, Label{"node", "a"})
	c1.Add(2)
	g.Set(-1)
	h.Observe(0.05)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()

	sawType := map[string]string{}
	var familyOrder []string
	var sampleCount int
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if line == "" {
			t.Fatal("blank line in exposition")
		}
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			parts := strings.SplitN(line, " ", 4)
			if len(parts) < 4 {
				t.Fatalf("malformed comment line %q", line)
			}
			if parts[1] == "TYPE" {
				sawType[parts[2]] = parts[3]
				familyOrder = append(familyOrder, parts[2])
			}
			continue
		}
		sampleCount++
		// name{labels} value
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		for _, r := range name {
			if !(r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9')) {
				t.Fatalf("illegal metric name char %q in %q", r, line)
			}
		}
		fam := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if strings.HasSuffix(name, suf) && sawType[strings.TrimSuffix(name, suf)] == "histogram" {
				fam = strings.TrimSuffix(name, suf)
			}
		}
		typ, ok := sawType[fam]
		if !ok {
			t.Fatalf("sample %q precedes its TYPE line", line)
		}
		if typ == "counter" && !strings.HasSuffix(fam, "_total") {
			t.Fatalf("counter family %q does not end in _total", fam)
		}
		if i := strings.IndexByte(line, '{'); i >= 0 {
			j := strings.IndexByte(line, '}')
			if j < i {
				t.Fatalf("unbalanced braces in %q", line)
			}
			for _, pair := range strings.Split(line[i+1:j], ",") {
				kv := strings.SplitN(pair, "=", 2)
				if len(kv) != 2 || !strings.HasPrefix(kv[1], `"`) || !strings.HasSuffix(kv[1], `"`) {
					t.Fatalf("malformed label %q in %q", pair, line)
				}
			}
		}
		if !strings.Contains(line, " ") {
			t.Fatalf("sample line %q has no value", line)
		}
	}
	if got := len(familyOrder); got != 3 {
		t.Fatalf("family count = %d, want 3", got)
	}
	for i := 1; i < len(familyOrder); i++ {
		if familyOrder[i-1] >= familyOrder[i] {
			t.Fatalf("families out of order: %v", familyOrder)
		}
	}
	// 2 counters + 1 gauge + histogram (3 bounds + Inf + sum + count).
	if want := 2 + 1 + 6; sampleCount != want {
		t.Fatalf("sample lines = %d, want %d\n%s", sampleCount, want, text)
	}
	if !strings.Contains(text, `le="+Inf"`) {
		t.Fatal("histogram missing +Inf bucket")
	}
	if !strings.Contains(text, `pcelisp_b_packets_total{dir="rx",node="a"} 2`) {
		t.Fatalf("counter sample missing or labels unsorted:\n%s", text)
	}
}

func TestCounterHotPathZeroAlloc(t *testing.T) {
	r := NewRegistry()
	var c Counter
	var h Histogram
	h.Init([]float64{0.01, 0.1, 1})
	r.RegisterCounter("z_total", "z", &c)
	r.RegisterHistogram("z_seconds", "z", &h)
	if n := testing.AllocsPerRun(100, func() {
		c.Inc()
		c.Add(3)
		h.Observe(0.5)
	}); n != 0 {
		t.Fatalf("metric update allocates %v/op, want 0", n)
	}
	var rec *FlightRecorder
	if n := testing.AllocsPerRun(100, func() { rec.Record(Event{Kind: KMapReply}) }); n != 0 {
		t.Fatalf("nil recorder Record allocates %v/op, want 0", n)
	}
}

func TestFlightRecorderWraparound(t *testing.T) {
	r := NewFlightRecorder(4)
	for i := 0; i < 10; i++ {
		r.Record(Event{At: time.Duration(i), Kind: KMappingInstall, Note: fmt.Sprintf("ev%d", i)})
	}
	if got := r.TotalRecorded(); got != 10 {
		t.Fatalf("total = %d, want 10", got)
	}
	evs := r.Dump()
	if len(evs) != 4 {
		t.Fatalf("retained = %d, want 4", len(evs))
	}
	for i, ev := range evs {
		if want := time.Duration(6 + i); ev.At != want {
			t.Fatalf("dump[%d].At = %v, want %v (oldest-first)", i, ev.At, want)
		}
	}
}

func TestFlightRecorderPartialRing(t *testing.T) {
	r := NewFlightRecorder(8)
	r.Record(Event{At: 1, Kind: KProbeDown})
	r.Record(Event{At: 2, Kind: KProbeUp})
	evs := r.Dump()
	if len(evs) != 2 || evs[0].At != 1 || evs[1].At != 2 {
		t.Fatalf("partial dump wrong: %+v", evs)
	}
	if got := len(r.Filter(KProbeUp)); got != 1 {
		t.Fatalf("Filter(KProbeUp) = %d events, want 1", got)
	}
}

// TestFlightRecorderConcurrentDump hammers the ring from writer
// goroutines while a reader dumps continuously — the -race guard for
// live /flightrecorder scrapes of a running daemon.
func TestFlightRecorderConcurrentDump(t *testing.T) {
	r := NewFlightRecorder(64)
	const perWriter = 500
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ev := Event{Kind: KWeightPush, Node: "n", RLOC: netaddr.MustParseAddr("10.0.0.1")}
			for i := 0; i < perWriter; i++ {
				ev.At = time.Duration(i)
				r.Record(ev)
			}
		}(w)
	}
	for i := 0; i < 200; i++ {
		evs := r.Dump()
		if len(evs) > 64 {
			t.Errorf("dump retained %d > ring size", len(evs))
			break
		}
		_ = r.TotalRecorded()
	}
	wg.Wait()
	if got := r.TotalRecorded(); got != 4*perWriter {
		t.Fatalf("total recorded = %d, want %d", got, 4*perWriter)
	}
	var sb strings.Builder
	if err := r.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"kind": "weight-push"`) {
		t.Fatalf("JSON dump missing events:\n%.300s", sb.String())
	}
}
