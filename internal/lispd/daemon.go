package lispd

import (
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/pcelisp/pcelisp/internal/core"
	"github.com/pcelisp/pcelisp/internal/irc"
	"github.com/pcelisp/pcelisp/internal/lisp"
	"github.com/pcelisp/pcelisp/internal/netaddr"
	"github.com/pcelisp/pcelisp/internal/obs"
	"github.com/pcelisp/pcelisp/internal/overlay"
	"github.com/pcelisp/pcelisp/internal/runtime"
)

// Daemon is one running lispd instance: a runtime.Loop driving the
// protocol state machines over an overlay.Host socket. The same xTR and
// PCE code that runs under the deterministic simulator runs here — the
// daemon only assembles and configures it.
type Daemon struct {
	cfg  *Config
	loop *runtime.Loop
	host *overlay.Host

	xtr    *lisp.XTR
	pce    *core.PCE
	engine *irc.Engine
	fe     *dnsFrontEnd

	reg   *obs.Registry
	rec   *obs.FlightRecorder
	admin *adminServer // nil unless cfg.Admin is set

	mu      sync.Mutex
	started bool
	closed  bool
}

// New validates cfg and assembles a daemon. Nothing runs until Start.
func New(cfg *Config) (*Daemon, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	loop := runtime.NewLoop(seed)
	host, err := overlay.New(cfg.Name, loop, cfg.Listen)
	if err != nil {
		return nil, err
	}
	d := &Daemon{
		cfg:  cfg,
		loop: loop,
		host: host,
		reg:  obs.NewRegistry(),
		rec:  obs.NewFlightRecorder(obs.DefaultRingSize),
	}
	host.RegisterMetrics(d.reg)

	eidSpace := netaddr.MustParsePrefix(cfg.EIDSpace)

	// xTR role: the data plane. Registered first so the encap fast path
	// is the first sniffer inbound data traffic meets.
	if cfg.Site != nil {
		miss := lisp.MissDrop
		if cfg.Site.MissPolicy == "queue" {
			miss = lisp.MissQueue
		}
		for _, l := range cfg.Site.Locators {
			host.AddAddr(netaddr.MustParseAddr(l.RLOC))
		}
		d.xtr = lisp.NewXTR(loop, host, lisp.XTRConfig{
			RLOC:           netaddr.MustParseAddr(cfg.Site.Locators[0].RLOC),
			LocalEIDs:      netaddr.MustParsePrefix(cfg.Site.EIDPrefix),
			EIDSpace:       eidSpace,
			CacheCapacity:  cfg.Site.CacheCapacity,
			MissPolicy:     miss,
			OverclaimFloor: cfg.Defense.OverclaimFloor,
			GleanRateLimit: cfg.Defense.GleanRateLimit,
			Obs:            d.reg,
			Recorder:       d.rec,
		})
	}

	// PCE role: PCED+PCES on the DNS path, plus the IRC engine ranking
	// the site's locators.
	if cfg.PCE != nil {
		pceAddr := netaddr.MustParseAddr(cfg.PCE.Addr)
		dnsAddr := netaddr.MustParseAddr(cfg.PCE.DNSAddr)
		host.AddAddr(pceAddr)
		host.AddAddr(dnsAddr)

		var providers []*irc.Provider
		if cfg.Site != nil {
			for _, l := range cfg.Site.Locators {
				base := time.Duration(l.BaseLatencyMillis) * time.Millisecond
				if base == 0 {
					base = 10 * time.Millisecond
				}
				providers = append(providers, &irc.Provider{
					Name:        l.Name,
					RLOC:        netaddr.MustParseAddr(l.RLOC),
					CapacityBps: l.CapacityBps,
					BaseLatency: base,
					// Egress stays nil: the real host has no per-provider
					// interface counters; Sample() nil-guards.
				})
			}
		}
		if len(providers) == 0 {
			return nil, fmt.Errorf("lispd: pce role needs site locators to rank")
		}
		d.engine = irc.NewEngine(loop, providers, policyByName(cfg.PCE.Policy))

		var sitePrefix netaddr.Prefix
		if cfg.Site != nil {
			sitePrefix = netaddr.MustParsePrefix(cfg.Site.EIDPrefix)
		}
		d.pce = core.NewWithRuntime(loop, host, core.Config{
			Addr:      pceAddr,
			EIDPrefix: sitePrefix,
			DNSAddr:   dnsAddr,
			Engine:    d.engine,
			// Group stays invalid: no multicast fabric, pushes unicast.
			MappingTTL:       cfg.PCE.MappingTTL,
			PendingTTL:       cfg.PCE.PendingTTL(),
			AuthKey:          cfg.AuthKey(),
			FetchServiceRate: cfg.Defense.FetchServiceRate,
			FetchQueueCap:    cfg.Defense.FetchQueueCap,
			FetchQuotaLimit:  cfg.Defense.FetchQuotaLimit,
			Obs:              d.reg,
			Recorder:         d.rec,
		})
		if d.xtr != nil {
			d.pce.WireXTR(d.xtr)
		}
	}

	// DNS front end (required with a PCE role, optional without).
	if cfg.DNS != nil {
		addr := d.dnsAddr()
		if !addr.IsValid() {
			return nil, fmt.Errorf("lispd: dns front end needs pce.dnsAddr (or a pce role)")
		}
		host.AddAddr(addr)
		d.fe = newDNSFrontEnd(host, addr, cfg.DNS, d.pce, d.reg)
	}

	for _, p := range cfg.Peers {
		ra, err := net.ResolveUDPAddr("udp4", p.Endpoint)
		if err != nil {
			return nil, fmt.Errorf("lispd: peer %q: %w", p.Endpoint, err)
		}
		host.SetPeer(netaddr.MustParsePrefix(p.Prefix), ra)
	}

	// Admin endpoint: the listener binds at construction (so a bad
	// address fails New, and tests can read AdminAddr before Start), but
	// serving starts with the daemon.
	if cfg.Admin != "" {
		admin, err := newAdminServer(d, cfg.Admin)
		if err != nil {
			host.Close()
			return nil, err
		}
		d.admin = admin
	}
	return d, nil
}

func (d *Daemon) dnsAddr() netaddr.Addr {
	if d.cfg.PCE != nil {
		return netaddr.MustParseAddr(d.cfg.PCE.DNSAddr)
	}
	return netaddr.Addr(0)
}

func policyByName(name string) irc.Policy {
	switch name {
	case "", "min-latency":
		return irc.MinLatency{}
	case "load-balance":
		return irc.LoadBalance{}
	case "cost-aware":
		return irc.CostAware{}
	case "equal-split":
		return irc.EqualSplit{}
	}
	panic("lispd: unvalidated policy " + name) // Validate rejects earlier
}

// Start launches the event loop and the socket reader.
func (d *Daemon) Start() {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.started || d.closed {
		return
	}
	d.started = true
	d.loop.Start()
	d.host.Start()
	if d.admin != nil {
		d.admin.start()
	}
}

// Close stops the socket and the loop.
func (d *Daemon) Close() {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return
	}
	d.closed = true
	if d.admin != nil {
		d.admin.close()
	}
	d.host.Close()
	d.loop.Stop()
}

// Reload applies a new configuration. Only the DNS front end (records,
// views, forwarders) swaps at runtime — structural fields (listen
// address, site, pce addressing, keys) are immutable per process and a
// change is rejected whole, so a bad reload never half-applies. The swap
// is atomic and in-flight resolutions keep working across it.
func (d *Daemon) Reload(cfg *Config) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	if cfg.Listen != d.cfg.Listen || cfg.Name != d.cfg.Name {
		return fmt.Errorf("lispd: reload cannot change listen/name (restart required)")
	}
	if cfg.Admin != d.cfg.Admin {
		return fmt.Errorf("lispd: reload cannot change admin address (restart required)")
	}
	if (cfg.Site == nil) != (d.cfg.Site == nil) || (cfg.PCE == nil) != (d.cfg.PCE == nil) {
		return fmt.Errorf("lispd: reload cannot change roles (restart required)")
	}
	if cfg.Site != nil && cfg.Site.EIDPrefix != d.cfg.Site.EIDPrefix {
		return fmt.Errorf("lispd: reload cannot change site.eidPrefix (restart required)")
	}
	if cfg.DNS == nil {
		return fmt.Errorf("lispd: reload cannot drop the dns front end")
	}
	if d.fe == nil {
		return fmt.Errorf("lispd: no dns front end to reload")
	}
	d.fe.swap(cfg.DNS)
	for _, p := range cfg.Peers {
		ra, err := net.ResolveUDPAddr("udp4", p.Endpoint)
		if err != nil {
			return fmt.Errorf("lispd: peer %q: %w", p.Endpoint, err)
		}
		d.host.SetPeer(netaddr.MustParsePrefix(p.Prefix), ra)
	}
	d.mu.Lock()
	d.cfg = cfg
	d.mu.Unlock()
	return nil
}

// RealAddr returns the daemon socket's real address, for peering.
func (d *Daemon) RealAddr() *net.UDPAddr { return d.host.RealAddr() }

// SetPeer routes a destination prefix to a real socket (tests register
// themselves as end hosts this way).
func (d *Daemon) SetPeer(p netaddr.Prefix, ra *net.UDPAddr) { d.host.SetPeer(p, ra) }

// Loop exposes the daemon's event loop (tests post probes through it).
func (d *Daemon) Loop() *runtime.Loop { return d.loop }

// Host exposes the overlay host.
func (d *Daemon) Host() *overlay.Host { return d.host }

// XTR returns the daemon's tunnel router (nil without a site role).
func (d *Daemon) XTR() *lisp.XTR { return d.xtr }

// PCE returns the daemon's PCE (nil without a pce role).
func (d *Daemon) PCE() *core.PCE { return d.pce }

// FrontEndStats snapshots the DNS front end counters (atomic, safe while
// running).
func (d *Daemon) FrontEndStats() FrontEndStats { return d.fe.Stats() }

// Registry exposes the daemon's metrics registry (what /metrics serves).
func (d *Daemon) Registry() *obs.Registry { return d.reg }

// Recorder exposes the daemon's control-plane flight recorder.
func (d *Daemon) Recorder() *obs.FlightRecorder { return d.rec }

// AdminAddr returns the admin endpoint's real listen address, or "" when
// the endpoint is disabled.
func (d *Daemon) AdminAddr() string {
	if d.admin == nil {
		return ""
	}
	return d.admin.ln.Addr().String()
}
