package lispd

import (
	"strings"
	"sync/atomic"

	"github.com/pcelisp/pcelisp/internal/core"
	"github.com/pcelisp/pcelisp/internal/dnssim"
	"github.com/pcelisp/pcelisp/internal/netaddr"
	"github.com/pcelisp/pcelisp/internal/packet"
	"github.com/pcelisp/pcelisp/internal/runtime"
)

// dnsView is one compiled split-horizon view.
type dnsView struct {
	name      string
	cidrs     []netaddr.Prefix
	recursion bool
	hosts     map[string]netaddr.Addr // canonical name -> override answer
}

// dnsZone is the compiled, immutable DNS state a front end serves. Reload
// builds a fresh one and swaps the pointer; queries in flight keep the
// version they started with, and the pending table lives outside it, so a
// swap never drops an in-flight resolution.
type dnsZone struct {
	zone    string
	records map[string]netaddr.Addr
	ttls    map[string]uint32
	views   []dnsView
	forward []struct {
		zone   string
		server netaddr.Addr
	}
}

func compileZone(cfg *DNSConfig) *dnsZone {
	z := &dnsZone{
		records: make(map[string]netaddr.Addr),
		ttls:    make(map[string]uint32),
	}
	if cfg == nil {
		return z
	}
	z.zone = dnssim.CanonicalName(cfg.Zone)
	for _, r := range cfg.Records {
		name := dnssim.CanonicalName(r.Name)
		z.records[name] = netaddr.MustParseAddr(r.Addr)
		ttl := r.TTL
		if ttl == 0 {
			ttl = 300
		}
		z.ttls[name] = ttl
	}
	for _, v := range cfg.Views {
		cv := dnsView{name: v.Name, recursion: v.Recursion}
		for _, c := range v.CIDRs {
			cv.cidrs = append(cv.cidrs, netaddr.MustParsePrefix(c))
		}
		if len(v.Hosts) > 0 {
			cv.hosts = make(map[string]netaddr.Addr, len(v.Hosts))
			for name, addr := range v.Hosts {
				cv.hosts[dnssim.CanonicalName(name)] = netaddr.MustParseAddr(addr)
			}
		}
		z.views = append(z.views, cv)
	}
	for _, f := range cfg.Forward {
		z.forward = append(z.forward, struct {
			zone   string
			server netaddr.Addr
		}{dnssim.CanonicalName(f.Zone), netaddr.MustParseAddr(f.Server)})
	}
	return z
}

// viewFor picks the first view whose ACL matches the client source.
func (z *dnsZone) viewFor(src netaddr.Addr) *dnsView {
	for i := range z.views {
		for _, c := range z.views[i].cidrs {
			if c.Contains(src) {
				return &z.views[i]
			}
		}
	}
	return nil
}

// nameUnder reports whether name equals zone or is a subdomain of it.
func nameUnder(name, zone string) bool {
	if zone == "" {
		return true
	}
	return name == zone || strings.HasSuffix(name, "."+zone)
}

// FrontEndStats counts front-end activity (loop-goroutine confined).
type FrontEndStats struct {
	Queries    uint64
	Answered   uint64 // authoritative / view answers
	Forwarded  uint64
	Returned   uint64 // forwarded answers relayed back to clients
	Refused    uint64 // no view matched, or recursion denied
	NXDomain   uint64
	Orphaned   uint64 // replies matching no pending query
	ViewHits   uint64 // answers served from a view's hosts override
	DroppedFwd uint64 // forward target had no route
}

// pendingQuery is one client resolution in flight through a forwarder.
type pendingQuery struct {
	client netaddr.Addr
	port   uint16
	qname  string
}

// dnsFrontEnd is the daemon's DNS server: authoritative for the local
// zone, split-horizon by source view, and a forwarder toward remote
// authoritative servers for everything else. It is the daemon analogue of
// the sim's DNSS+DNSD pair, and it feeds the PCE the same two IPC signals
// the sim resolver does (NoteClientQuery on forwarded queries, the
// answers coming back through the PCES sniffer).
type dnsFrontEnd struct {
	host  runtime.Host
	addr  netaddr.Addr
	zone  atomic.Pointer[dnsZone]
	pce   *core.PCE // nil when the daemon has no PCE role
	pend  map[uint16]pendingQuery
	Stats FrontEndStats
}

func newDNSFrontEnd(host runtime.Host, addr netaddr.Addr, cfg *DNSConfig, pce *core.PCE) *dnsFrontEnd {
	fe := &dnsFrontEnd{
		host: host,
		addr: addr,
		pce:  pce,
		pend: make(map[uint16]pendingQuery),
	}
	fe.zone.Store(compileZone(cfg))
	host.BindUDP(addr, packet.PortDNS, fe.handle)
	return fe
}

// swap atomically installs a new compiled zone. In-flight resolutions
// (fe.pend) are untouched: replies arriving after the swap still reach
// their clients.
func (fe *dnsFrontEnd) swap(cfg *DNSConfig) { fe.zone.Store(compileZone(cfg)) }

func (fe *dnsFrontEnd) handle(src, dst netaddr.Addr, udp *packet.UDP) {
	msg := &packet.DNS{}
	if err := msg.DecodeFromBytes(udp.LayerPayload()); err != nil || len(msg.Questions) == 0 {
		return
	}
	if msg.QR {
		fe.handleReply(msg)
		return
	}
	fe.handleQuery(src, udp.SrcPort, msg)
}

func (fe *dnsFrontEnd) handleQuery(src netaddr.Addr, sport uint16, q *packet.DNS) {
	fe.Stats.Queries++
	z := fe.zone.Load()
	name := dnssim.CanonicalName(q.Questions[0].Name)

	view := z.viewFor(src)
	if view == nil {
		fe.Stats.Refused++
		fe.reply(src, sport, refused(q))
		return
	}

	// Split horizon: the view's host overrides come first, then the
	// shared authoritative records.
	if q.Questions[0].Type == packet.DNSTypeA {
		if addr, ok := view.hosts[name]; ok {
			fe.Stats.ViewHits++
			fe.Stats.Answered++
			fe.reply(src, sport, answerA(q, name, addr, 300))
			return
		}
		if addr, ok := z.records[name]; ok {
			fe.Stats.Answered++
			fe.reply(src, sport, answerA(q, name, addr, z.ttls[name]))
			return
		}
	}

	if nameUnder(name, z.zone) && z.zone != "" {
		// Authoritatively nonexistent.
		fe.Stats.NXDomain++
		fe.reply(src, sport, nxdomain(q, true))
		return
	}

	// Off-zone: forward if the view permits recursion and a forwarder
	// covers the name.
	if !view.recursion {
		fe.Stats.Refused++
		fe.reply(src, sport, refused(q))
		return
	}
	for _, f := range z.forward {
		if !nameUnder(name, f.zone) {
			continue
		}
		// Step 1: tell the PCE a local client is resolving a remote name
		// before the query leaves (the resolver IPC of the paper).
		if fe.pce != nil {
			fe.pce.NoteClientQuery(src, name)
		}
		fe.pend[q.ID] = pendingQuery{client: src, port: sport, qname: name}
		fe.Stats.Forwarded++
		if !fe.host.RouteUp(f.server) {
			fe.Stats.DroppedFwd++
		}
		fe.host.OutputUDP(fe.addr, f.server, packet.PortDNS, packet.PortDNS, q)
		return
	}
	fe.Stats.NXDomain++
	fe.reply(src, sport, nxdomain(q, false))
}

// handleReply relays a forwarded answer back to its waiting client. The
// reply normally arrives re-originated by the local PCES (step 7a, after
// the mapping rode in on port P); with no PCE in the path it arrives
// straight from the remote server. Either way it matches by DNS ID.
func (fe *dnsFrontEnd) handleReply(msg *packet.DNS) {
	p, ok := fe.pend[msg.ID]
	if !ok {
		fe.Stats.Orphaned++
		return
	}
	delete(fe.pend, msg.ID)
	fe.Stats.Returned++
	if fe.pce != nil {
		if addr, ok := msg.FirstA(); ok {
			fe.pce.NoteAnswer(p.client, p.qname, addr, false)
		}
	}
	fe.host.OutputUDP(fe.addr, p.client, packet.PortDNS, p.port, msg)
}

func (fe *dnsFrontEnd) reply(dst netaddr.Addr, dport uint16, msg *packet.DNS) {
	fe.host.OutputUDP(fe.addr, dst, packet.PortDNS, dport, msg)
}

func answerA(q *packet.DNS, name string, addr netaddr.Addr, ttl uint32) *packet.DNS {
	return &packet.DNS{
		ID: q.ID, QR: true, AA: true, OpCode: q.OpCode, RD: q.RD,
		Questions: q.Questions,
		Answers: []packet.DNSResourceRecord{{
			Name: name, Type: packet.DNSTypeA, Class: packet.DNSClassIN, TTL: ttl, IP: addr,
		}},
	}
}

func nxdomain(q *packet.DNS, authoritative bool) *packet.DNS {
	return &packet.DNS{
		ID: q.ID, QR: true, AA: authoritative, OpCode: q.OpCode, RD: q.RD,
		Questions: q.Questions, RCode: packet.DNSRCodeNXDomain,
	}
}

func refused(q *packet.DNS) *packet.DNS {
	return &packet.DNS{
		ID: q.ID, QR: true, OpCode: q.OpCode, RD: q.RD,
		Questions: q.Questions, RCode: packet.DNSRCodeServFail,
	}
}
