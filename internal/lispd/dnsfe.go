package lispd

import (
	"strings"
	"sync/atomic"

	"github.com/pcelisp/pcelisp/internal/core"
	"github.com/pcelisp/pcelisp/internal/dnssim"
	"github.com/pcelisp/pcelisp/internal/netaddr"
	"github.com/pcelisp/pcelisp/internal/obs"
	"github.com/pcelisp/pcelisp/internal/packet"
	"github.com/pcelisp/pcelisp/internal/runtime"
)

// dnsView is one compiled split-horizon view.
type dnsView struct {
	name      string
	cidrs     []netaddr.Prefix
	recursion bool
	hosts     map[string]netaddr.Addr // canonical name -> override answer
	// queries is the view's per-series query counter, resolved through
	// the registry's get-or-create path so a view surviving a config
	// reload keeps its running count.
	queries *obs.Counter
}

// dnsZone is the compiled, immutable DNS state a front end serves. Reload
// builds a fresh one and swaps the pointer; queries in flight keep the
// version they started with, and the pending table lives outside it, so a
// swap never drops an in-flight resolution.
type dnsZone struct {
	zone    string
	records map[string]netaddr.Addr
	ttls    map[string]uint32
	views   []dnsView
	forward []struct {
		zone   string
		server netaddr.Addr
	}
}

func compileZone(cfg *DNSConfig) *dnsZone {
	z := &dnsZone{
		records: make(map[string]netaddr.Addr),
		ttls:    make(map[string]uint32),
	}
	if cfg == nil {
		return z
	}
	z.zone = dnssim.CanonicalName(cfg.Zone)
	for _, r := range cfg.Records {
		name := dnssim.CanonicalName(r.Name)
		z.records[name] = netaddr.MustParseAddr(r.Addr)
		ttl := r.TTL
		if ttl == 0 {
			ttl = 300
		}
		z.ttls[name] = ttl
	}
	for _, v := range cfg.Views {
		cv := dnsView{name: v.Name, recursion: v.Recursion}
		for _, c := range v.CIDRs {
			cv.cidrs = append(cv.cidrs, netaddr.MustParsePrefix(c))
		}
		if len(v.Hosts) > 0 {
			cv.hosts = make(map[string]netaddr.Addr, len(v.Hosts))
			for name, addr := range v.Hosts {
				cv.hosts[dnssim.CanonicalName(name)] = netaddr.MustParseAddr(addr)
			}
		}
		z.views = append(z.views, cv)
	}
	for _, f := range cfg.Forward {
		z.forward = append(z.forward, struct {
			zone   string
			server netaddr.Addr
		}{dnssim.CanonicalName(f.Zone), netaddr.MustParseAddr(f.Server)})
	}
	return z
}

// viewFor picks the first view whose ACL matches the client source.
func (z *dnsZone) viewFor(src netaddr.Addr) *dnsView {
	for i := range z.views {
		for _, c := range z.views[i].cidrs {
			if c.Contains(src) {
				return &z.views[i]
			}
		}
	}
	return nil
}

// nameUnder reports whether name equals zone or is a subdomain of it.
func nameUnder(name, zone string) bool {
	if zone == "" {
		return true
	}
	return name == zone || strings.HasSuffix(name, "."+zone)
}

// FrontEndStats is a snapshot of front-end activity.
type FrontEndStats struct {
	Queries    uint64
	Answered   uint64 // authoritative / view answers
	Forwarded  uint64
	Returned   uint64 // forwarded answers relayed back to clients
	Refused    uint64 // no view matched, or recursion denied
	NXDomain   uint64
	Orphaned   uint64 // replies matching no pending query
	ViewHits   uint64 // answers served from a view's hosts override
	DroppedFwd uint64 // forward target had no route
	Reloads    uint64 // zone swaps applied
}

// feMetrics is the live counter set behind FrontEndStats.
type feMetrics struct {
	Queries    obs.Counter
	Answered   obs.Counter
	Forwarded  obs.Counter
	Returned   obs.Counter
	Refused    obs.Counter
	NXDomain   obs.Counter
	Orphaned   obs.Counter
	ViewHits   obs.Counter
	DroppedFwd obs.Counter
	Reloads    obs.Counter
}

func (m *feMetrics) register(r *obs.Registry, node string) {
	l := obs.Label{Key: "node", Value: node}
	r.RegisterCounter("pcelisp_dnsfe_queries_total", "DNS queries received by the front end.", &m.Queries, l)
	r.RegisterCounter("pcelisp_dnsfe_answered_total", "Queries answered authoritatively (zone records or view overrides).", &m.Answered, l)
	r.RegisterCounter("pcelisp_dnsfe_forwarded_total", "Queries forwarded toward a remote authoritative server.", &m.Forwarded, l)
	r.RegisterCounter("pcelisp_dnsfe_returned_total", "Forwarded answers relayed back to clients.", &m.Returned, l)
	r.RegisterCounter("pcelisp_dnsfe_refused_total", "Queries refused (no matching view, or recursion denied).", &m.Refused, l)
	r.RegisterCounter("pcelisp_dnsfe_nxdomain_total", "NXDOMAIN answers sent.", &m.NXDomain, l)
	r.RegisterCounter("pcelisp_dnsfe_orphaned_total", "Replies matching no pending query.", &m.Orphaned, l)
	r.RegisterCounter("pcelisp_dnsfe_view_hits_total", "Answers served from a view's host overrides.", &m.ViewHits, l)
	r.RegisterCounter("pcelisp_dnsfe_dropped_fwd_total", "Forwarded queries whose target had no route.", &m.DroppedFwd, l)
	r.RegisterCounter("pcelisp_dnsfe_reloads_total", "DNS zone reloads applied.", &m.Reloads, l)
}

func (m *feMetrics) snapshot() FrontEndStats {
	return FrontEndStats{
		Queries:    m.Queries.Load(),
		Answered:   m.Answered.Load(),
		Forwarded:  m.Forwarded.Load(),
		Returned:   m.Returned.Load(),
		Refused:    m.Refused.Load(),
		NXDomain:   m.NXDomain.Load(),
		Orphaned:   m.Orphaned.Load(),
		ViewHits:   m.ViewHits.Load(),
		DroppedFwd: m.DroppedFwd.Load(),
		Reloads:    m.Reloads.Load(),
	}
}

// pendingQuery is one client resolution in flight through a forwarder.
type pendingQuery struct {
	client netaddr.Addr
	port   uint16
	qname  string
}

// dnsFrontEnd is the daemon's DNS server: authoritative for the local
// zone, split-horizon by source view, and a forwarder toward remote
// authoritative servers for everything else. It is the daemon analogue of
// the sim's DNSS+DNSD pair, and it feeds the PCE the same two IPC signals
// the sim resolver does (NoteClientQuery on forwarded queries, the
// answers coming back through the PCES sniffer).
type dnsFrontEnd struct {
	host runtime.Host
	addr netaddr.Addr
	zone atomic.Pointer[dnsZone]
	pce  *core.PCE // nil when the daemon has no PCE role
	pend map[uint16]pendingQuery
	met  feMetrics
	reg  *obs.Registry // per-view counters resolve through get-or-create
}

func newDNSFrontEnd(host runtime.Host, addr netaddr.Addr, cfg *DNSConfig, pce *core.PCE, reg *obs.Registry) *dnsFrontEnd {
	fe := &dnsFrontEnd{
		host: host,
		addr: addr,
		pce:  pce,
		pend: make(map[uint16]pendingQuery),
		reg:  reg,
	}
	fe.met.register(reg, host.HostName())
	fe.zone.Store(fe.compile(cfg))
	host.BindUDP(addr, packet.PortDNS, fe.handle)
	return fe
}

// compile builds the zone and resolves each view's query counter. A view
// with the same name after a reload maps to the same registry series, so
// its count survives the swap.
func (fe *dnsFrontEnd) compile(cfg *DNSConfig) *dnsZone {
	z := compileZone(cfg)
	for i := range z.views {
		z.views[i].queries = fe.reg.Counter("pcelisp_dnsfe_view_queries_total",
			"DNS queries handled per split-horizon view.",
			obs.Label{Key: "node", Value: fe.host.HostName()},
			obs.Label{Key: "view", Value: z.views[i].name})
	}
	return z
}

// Stats returns a snapshot of the front end's counters.
func (fe *dnsFrontEnd) Stats() FrontEndStats { return fe.met.snapshot() }

// swap atomically installs a new compiled zone. In-flight resolutions
// (fe.pend) are untouched: replies arriving after the swap still reach
// their clients.
func (fe *dnsFrontEnd) swap(cfg *DNSConfig) {
	fe.zone.Store(fe.compile(cfg))
	fe.met.Reloads.Inc()
}

func (fe *dnsFrontEnd) handle(src, dst netaddr.Addr, udp *packet.UDP) {
	msg := &packet.DNS{}
	if err := msg.DecodeFromBytes(udp.LayerPayload()); err != nil || len(msg.Questions) == 0 {
		return
	}
	if msg.QR {
		fe.handleReply(msg)
		return
	}
	fe.handleQuery(src, udp.SrcPort, msg)
}

func (fe *dnsFrontEnd) handleQuery(src netaddr.Addr, sport uint16, q *packet.DNS) {
	fe.met.Queries.Inc()
	z := fe.zone.Load()
	name := dnssim.CanonicalName(q.Questions[0].Name)

	view := z.viewFor(src)
	if view == nil {
		fe.met.Refused.Inc()
		fe.reply(src, sport, refused(q))
		return
	}
	view.queries.Inc()

	// Split horizon: the view's host overrides come first, then the
	// shared authoritative records.
	if q.Questions[0].Type == packet.DNSTypeA {
		if addr, ok := view.hosts[name]; ok {
			fe.met.ViewHits.Inc()
			fe.met.Answered.Inc()
			fe.reply(src, sport, answerA(q, name, addr, 300))
			return
		}
		if addr, ok := z.records[name]; ok {
			fe.met.Answered.Inc()
			fe.reply(src, sport, answerA(q, name, addr, z.ttls[name]))
			return
		}
	}

	if nameUnder(name, z.zone) && z.zone != "" {
		// Authoritatively nonexistent.
		fe.met.NXDomain.Inc()
		fe.reply(src, sport, nxdomain(q, true))
		return
	}

	// Off-zone: forward if the view permits recursion and a forwarder
	// covers the name.
	if !view.recursion {
		fe.met.Refused.Inc()
		fe.reply(src, sport, refused(q))
		return
	}
	for _, f := range z.forward {
		if !nameUnder(name, f.zone) {
			continue
		}
		// Step 1: tell the PCE a local client is resolving a remote name
		// before the query leaves (the resolver IPC of the paper).
		if fe.pce != nil {
			fe.pce.NoteClientQuery(src, name)
		}
		fe.pend[q.ID] = pendingQuery{client: src, port: sport, qname: name}
		fe.met.Forwarded.Inc()
		if !fe.host.RouteUp(f.server) {
			fe.met.DroppedFwd.Inc()
		}
		fe.host.OutputUDP(fe.addr, f.server, packet.PortDNS, packet.PortDNS, q)
		return
	}
	fe.met.NXDomain.Inc()
	fe.reply(src, sport, nxdomain(q, false))
}

// handleReply relays a forwarded answer back to its waiting client. The
// reply normally arrives re-originated by the local PCES (step 7a, after
// the mapping rode in on port P); with no PCE in the path it arrives
// straight from the remote server. Either way it matches by DNS ID.
func (fe *dnsFrontEnd) handleReply(msg *packet.DNS) {
	p, ok := fe.pend[msg.ID]
	if !ok {
		fe.met.Orphaned.Inc()
		return
	}
	delete(fe.pend, msg.ID)
	fe.met.Returned.Inc()
	if fe.pce != nil {
		if addr, ok := msg.FirstA(); ok {
			fe.pce.NoteAnswer(p.client, p.qname, addr, false)
		}
	}
	fe.host.OutputUDP(fe.addr, p.client, packet.PortDNS, p.port, msg)
}

func (fe *dnsFrontEnd) reply(dst netaddr.Addr, dport uint16, msg *packet.DNS) {
	fe.host.OutputUDP(fe.addr, dst, packet.PortDNS, dport, msg)
}

func answerA(q *packet.DNS, name string, addr netaddr.Addr, ttl uint32) *packet.DNS {
	return &packet.DNS{
		ID: q.ID, QR: true, AA: true, OpCode: q.OpCode, RD: q.RD,
		Questions: q.Questions,
		Answers: []packet.DNSResourceRecord{{
			Name: name, Type: packet.DNSTypeA, Class: packet.DNSClassIN, TTL: ttl, IP: addr,
		}},
	}
}

func nxdomain(q *packet.DNS, authoritative bool) *packet.DNS {
	return &packet.DNS{
		ID: q.ID, QR: true, AA: authoritative, OpCode: q.OpCode, RD: q.RD,
		Questions: q.Questions, RCode: packet.DNSRCodeNXDomain,
	}
}

func refused(q *packet.DNS) *packet.DNS {
	return &packet.DNS{
		ID: q.ID, QR: true, OpCode: q.OpCode, RD: q.RD,
		Questions: q.Questions, RCode: packet.DNSRCodeServFail,
	}
}
