// Package lispd assembles the runtime-independent protocol core —
// internal/lisp xTRs, the internal/core PCE and the internal/irc engine —
// into a real-time daemon: one overlay host on one UDP socket, driven by
// a runtime.Loop, configured from a declarative JSON file. cmd/lispd is a
// thin main around this package; the loopback e2e and sim-vs-real
// differential tests drive it in-process.
package lispd

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"github.com/pcelisp/pcelisp/internal/netaddr"
)

// Config is the daemon's declarative configuration. A daemon runs an xTR
// role (Site set), a PCE role (PCE set), or both; field names follow the
// JSON file.
type Config struct {
	// Name labels the daemon in traces and events.
	Name string `json:"name"`
	// Listen is the real UDP socket to bind ("127.0.0.1:0").
	Listen string `json:"listen"`
	// Admin, when set, serves the observability endpoint on this TCP
	// address ("127.0.0.1:9090"): Prometheus /metrics, /healthz,
	// /statusz, /debug/pprof/ and /flightrecorder. Empty disables it.
	Admin string `json:"admin,omitempty"`
	// Seed drives the daemon's deterministic random stream (nonces,
	// locator draws). Daemons in a differential test pin it.
	Seed int64 `json:"seed"`
	// EIDSpace is the global EID space ("100.0.0.0/8").
	EIDSpace string `json:"eidSpace"`
	// Site is the xTR role: the local EID prefix and its locators.
	Site *SiteConfig `json:"site,omitempty"`
	// PCE is the control-plane role (PCED+PCES colocated).
	PCE *PCEConfig `json:"pce,omitempty"`
	// Keys declares the control-plane authentication keys by ID.
	Keys []KeyConfig `json:"keys,omitempty"`
	// AuthKeyID names the key (from Keys) signing and verifying PCECP
	// messages. Empty disables authentication.
	AuthKeyID string `json:"authKeyId,omitempty"`
	// Defense is the flood-defense profile (PR 6/8 knobs).
	Defense DefenseConfig `json:"defense"`
	// DNS is the split-horizon DNS front end.
	DNS *DNSConfig `json:"dns,omitempty"`
	// Peers statically routes destination prefixes to other daemon
	// sockets ("100.2.0.0/16" -> "127.0.0.1:4010").
	Peers []PeerConfig `json:"peers,omitempty"`
}

// SiteConfig is the xTR role: one site, one EID prefix, its locators.
type SiteConfig struct {
	// EIDPrefix is the site's EID prefix ("100.1.0.0/16").
	EIDPrefix string `json:"eidPrefix"`
	// Locators are the site's provider attachments, in priority order;
	// the first is the xTR's own default RLOC.
	Locators []LocatorConfig `json:"locators"`
	// MissPolicy is "drop" (default) or "queue".
	MissPolicy string `json:"missPolicy,omitempty"`
	// CacheCapacity bounds the map-cache (0 = unbounded).
	CacheCapacity int `json:"cacheCapacity,omitempty"`
}

// LocatorConfig is one provider attachment.
type LocatorConfig struct {
	// Name labels the provider ("P0").
	Name string `json:"name"`
	// RLOC is the locator address ("10.0.0.1").
	RLOC string `json:"rloc"`
	// CapacityBps is the provisioned capacity (0 = unlimited).
	CapacityBps int64 `json:"capacityBps,omitempty"`
	// BaseLatencyMillis seeds the latency estimate (default 10).
	BaseLatencyMillis int64 `json:"baseLatencyMillis,omitempty"`
}

// PCEConfig is the PCE role.
type PCEConfig struct {
	// Addr is the PCE's own address ("172.16.1.1").
	Addr string `json:"addr"`
	// DNSAddr is the colocated DNS front end's address; port-P traffic
	// toward it is intercepted (PCES), and replies leaving it are
	// encapsulated (PCED).
	DNSAddr string `json:"dnsAddr"`
	// MappingTTL is the pushed-mapping lifetime in seconds (default 300).
	MappingTTL uint32 `json:"mappingTtl,omitempty"`
	// PendingTTLMillis bounds step-1 flow wait (default 10000).
	PendingTTLMillis int64 `json:"pendingTtlMillis,omitempty"`
	// Policy names the IRC policy: "min-latency" (default),
	// "load-balance", "cost-aware", "equal-split".
	Policy string `json:"policy,omitempty"`
}

// KeyConfig declares one control-plane key.
type KeyConfig struct {
	ID     string `json:"id"`
	Secret string `json:"secret"`
}

// DefenseConfig is the layered-defense profile: zero values mean the
// defense is off (the open-plane baseline).
type DefenseConfig struct {
	// FetchServiceRate bounds PCED MapFetch service (queries/s).
	FetchServiceRate int `json:"fetchServiceRate,omitempty"`
	// FetchQueueCap bounds the fetch backlog (default 64 when rated).
	FetchQueueCap int `json:"fetchQueueCap,omitempty"`
	// FetchQuotaLimit caps fetches per source per second.
	FetchQuotaLimit int `json:"fetchQuotaLimit,omitempty"`
	// OverclaimFloor rejects mappings broader than this prefix length.
	OverclaimFloor int `json:"overclaimFloor,omitempty"`
	// GleanRateLimit bounds decap-path gleaning (new flows/s).
	GleanRateLimit int `json:"gleanRateLimit,omitempty"`
}

// DNSConfig is the split-horizon DNS front end: authoritative records for
// the local zone, client views selected by source CIDR, and forwarding
// rules toward remote authoritative servers.
type DNSConfig struct {
	// Zone is the local authoritative zone ("d0.example").
	Zone string `json:"zone"`
	// Records are the zone's A records.
	Records []RecordConfig `json:"records,omitempty"`
	// Views partition clients by source CIDR; the first matching view
	// wins. A query matching no view is refused.
	Views []ViewConfig `json:"views"`
	// Forward routes query suffixes to remote authoritative servers.
	Forward []ForwardConfig `json:"forward,omitempty"`
}

// RecordConfig is one A record.
type RecordConfig struct {
	Name string `json:"name"`
	Addr string `json:"addr"`
	TTL  uint32 `json:"ttl,omitempty"`
}

// ViewConfig is one split-horizon view (the CoreDNS view pattern: a
// source-address ACL choosing which zone contents and recursion behavior
// a client sees).
type ViewConfig struct {
	// Name labels the view ("internal", "external").
	Name string `json:"name"`
	// CIDRs are the client source prefixes selecting this view.
	CIDRs []string `json:"cidrs"`
	// Recursion permits forwarding for this view's clients. Authoritative
	// answers are always served.
	Recursion bool `json:"recursion"`
	// Hosts overrides answers per name for this view — the split-horizon
	// knob (internal clients can see internal addresses).
	Hosts map[string]string `json:"hosts,omitempty"`
}

// ForwardConfig routes queries under a zone suffix to a server address
// (an address routable via Peers, typically a remote daemon's DNS front
// end).
type ForwardConfig struct {
	Zone   string `json:"zone"`
	Server string `json:"server"`
}

// PeerConfig statically routes a destination prefix to a real socket.
type PeerConfig struct {
	Prefix   string `json:"prefix"`
	Endpoint string `json:"endpoint"`
}

// Load reads and validates a config file.
func Load(path string) (*Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	cfg := &Config{}
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("lispd: parse %s: %w", path, err)
	}
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("lispd: %s: %w", path, err)
	}
	return cfg, nil
}

// Validate checks the configuration's internal consistency. It is called
// by Load and by Daemon.Reload before any state is touched, so a bad
// config never half-applies.
func (c *Config) Validate() error {
	if c.Name == "" {
		return fmt.Errorf("name is required")
	}
	if c.Listen == "" {
		return fmt.Errorf("listen is required")
	}
	if c.Site == nil && c.PCE == nil {
		return fmt.Errorf("at least one role (site or pce) is required")
	}
	eidSpace, err := netaddr.ParsePrefix(c.EIDSpace)
	if err != nil {
		return fmt.Errorf("eidSpace: %w", err)
	}

	keys := make(map[string]struct{}, len(c.Keys))
	for _, k := range c.Keys {
		if k.ID == "" || k.Secret == "" {
			return fmt.Errorf("key needs id and secret")
		}
		if _, dup := keys[k.ID]; dup {
			return fmt.Errorf("duplicate key id %q", k.ID)
		}
		keys[k.ID] = struct{}{}
	}
	if c.AuthKeyID != "" {
		if _, ok := keys[c.AuthKeyID]; !ok {
			return fmt.Errorf("authKeyId %q references no declared key", c.AuthKeyID)
		}
	}

	var sitePrefix netaddr.Prefix
	if c.Site != nil {
		sitePrefix, err = netaddr.ParsePrefix(c.Site.EIDPrefix)
		if err != nil {
			return fmt.Errorf("site.eidPrefix: %w", err)
		}
		if !eidSpace.Contains(sitePrefix.Addr()) {
			return fmt.Errorf("site.eidPrefix %v lies outside eidSpace %v", sitePrefix, eidSpace)
		}
		if len(c.Site.Locators) == 0 {
			return fmt.Errorf("site %v has zero locators", sitePrefix)
		}
		for _, l := range c.Site.Locators {
			rloc, err := netaddr.ParseAddr(l.RLOC)
			if err != nil {
				return fmt.Errorf("locator %q: %w", l.RLOC, err)
			}
			if eidSpace.Contains(rloc) {
				return fmt.Errorf("locator %v lies inside the EID space %v", rloc, eidSpace)
			}
		}
		switch c.Site.MissPolicy {
		case "", "drop", "queue":
		default:
			return fmt.Errorf("site.missPolicy %q (want drop or queue)", c.Site.MissPolicy)
		}
	}

	if c.PCE != nil {
		if _, err := netaddr.ParseAddr(c.PCE.Addr); err != nil {
			return fmt.Errorf("pce.addr: %w", err)
		}
		if _, err := netaddr.ParseAddr(c.PCE.DNSAddr); err != nil {
			return fmt.Errorf("pce.dnsAddr: %w", err)
		}
		switch c.PCE.Policy {
		case "", "min-latency", "load-balance", "cost-aware", "equal-split":
		default:
			return fmt.Errorf("pce.policy %q unknown", c.PCE.Policy)
		}
		if c.PCE.DNSAddr != "" && c.DNS == nil {
			return fmt.Errorf("pce role requires a dns front end (pce.dnsAddr is watched traffic)")
		}
	}

	if c.DNS != nil {
		for _, r := range c.DNS.Records {
			if _, err := netaddr.ParseAddr(r.Addr); err != nil {
				return fmt.Errorf("dns record %q: %w", r.Name, err)
			}
		}
		for _, v := range c.DNS.Views {
			if len(v.CIDRs) == 0 {
				return fmt.Errorf("dns view %q has no cidrs", v.Name)
			}
			for _, cidr := range v.CIDRs {
				if _, err := netaddr.ParsePrefix(cidr); err != nil {
					return fmt.Errorf("dns view %q cidr %q: %w", v.Name, cidr, err)
				}
			}
			for name, addr := range v.Hosts {
				if _, err := netaddr.ParseAddr(addr); err != nil {
					return fmt.Errorf("dns view %q host %q: %w", v.Name, name, err)
				}
			}
		}
		for _, f := range c.DNS.Forward {
			if _, err := netaddr.ParseAddr(f.Server); err != nil {
				return fmt.Errorf("dns forward %q: %w", f.Zone, err)
			}
		}
	}

	for _, p := range c.Peers {
		pfx, err := netaddr.ParsePrefix(p.Prefix)
		if err != nil {
			return fmt.Errorf("peer prefix %q: %w", p.Prefix, err)
		}
		// Peer routes INSIDE the site prefix are interior host attachments
		// and legitimate (narrower always wins LPM); a broader route that
		// swallows the site prefix would hand the site's own EID space to
		// a remote socket.
		if c.Site != nil && pfx.Bits() < sitePrefix.Bits() && pfx.Contains(sitePrefix.Addr()) {
			return fmt.Errorf("peer prefix %v overlaps the site's own EID prefix %v", pfx, sitePrefix)
		}
	}
	return nil
}

// AuthKey resolves the selected control-plane key bytes (nil when
// authentication is off).
func (c *Config) AuthKey() []byte {
	if c.AuthKeyID == "" {
		return nil
	}
	for _, k := range c.Keys {
		if k.ID == c.AuthKeyID {
			return []byte(k.Secret)
		}
	}
	return nil
}

// PendingTTL returns the configured pending TTL as a duration.
func (p *PCEConfig) PendingTTL() time.Duration {
	if p.PendingTTLMillis <= 0 {
		return 0
	}
	return time.Duration(p.PendingTTLMillis) * time.Millisecond
}
