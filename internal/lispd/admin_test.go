package lispd

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"github.com/pcelisp/pcelisp/internal/netaddr"
	"github.com/pcelisp/pcelisp/internal/packet"
	"github.com/pcelisp/pcelisp/internal/runtime"
)

func adminGet(t *testing.T, base, path string) (int, string) {
	t.Helper()
	resp, err := http.Get("http://" + base + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", path, err)
	}
	return resp.StatusCode, string(body)
}

// TestAdminEndpoint boots a daemon with the admin listener enabled,
// drives one DNS query through it, and scrapes every endpoint group:
// /metrics (format-checked, all migrated subsystems present), /healthz,
// /statusz (secrets redacted), /flightrecorder and /debug/pprof/.
func TestAdminEndpoint(t *testing.T) {
	cfg := testConfig(0)
	cfg.Admin = "127.0.0.1:0"
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)

	base := d.AdminAddr()
	if base == "" {
		t.Fatal("AdminAddr empty with admin configured")
	}
	d.Start()

	// One authoritative query from an internal client bumps the overlay
	// and dnsfe counters the scrape asserts on.
	client := newEndHost(t)
	es := netaddr.MustParseAddr("100.1.1.1")
	dnsA := netaddr.MustParseAddr("172.16.0.2")
	d.SetPeer(netaddr.HostPrefix(es), client.addr())
	q := &packet.DNS{
		ID: 7, RD: true,
		Questions: []packet.DNSQuestion{{Name: "h0.d0.example", Type: packet.DNSTypeA, Class: packet.DNSClassIN}},
	}
	client.send(d.RealAddr(), runtime.EncodeUDP(es, dnsA, 5353, packet.PortDNS, q))
	client.recv(5 * time.Second)

	t.Run("healthz", func(t *testing.T) {
		code, body := adminGet(t, base, "/healthz")
		if code != http.StatusOK || strings.TrimSpace(body) != "ok" {
			t.Fatalf("healthz = %d %q", code, body)
		}
	})

	t.Run("metrics", func(t *testing.T) {
		code, body := adminGet(t, base, "/metrics")
		if code != http.StatusOK {
			t.Fatalf("metrics status = %d", code)
		}
		// Every line is a comment or a "name{labels} value" sample.
		for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
			if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
				continue
			}
			if line == "" || !strings.Contains(line, " ") {
				t.Fatalf("malformed exposition line %q", line)
			}
		}
		// Every migrated subsystem shows up in one daemon's exposition.
		for _, series := range []string{
			"pcelisp_overlay_rx_frames_total",
			"pcelisp_overlay_no_route_drops_total",
			"pcelisp_overlay_decode_errors_total",
			"pcelisp_xtr_encap_packets_total",
			"pcelisp_xtr_resolution_seconds_bucket",
			"pcelisp_mapcache_hits_total",
			"pcelisp_pce_ipc_queries_total",
			"pcelisp_pce_fetch_queue_depth",
			"pcelisp_dnsfe_queries_total",
			"pcelisp_dnsfe_nxdomain_total",
			"pcelisp_dnsfe_reloads_total",
		} {
			if !strings.Contains(body, series) {
				t.Errorf("exposition missing %s", series)
			}
		}
		// The served query is visible: total and per-view counters moved.
		if !strings.Contains(body, `pcelisp_dnsfe_queries_total{node="d0"} 1`) {
			t.Errorf("dnsfe query not counted:\n%s", grepLines(body, "dnsfe_queries"))
		}
		if !strings.Contains(body, `pcelisp_dnsfe_view_queries_total{node="d0",view="internal"} 1`) {
			t.Errorf("per-view query not counted:\n%s", grepLines(body, "view_queries"))
		}
	})

	t.Run("statusz", func(t *testing.T) {
		code, body := adminGet(t, base, "/statusz")
		if code != http.StatusOK {
			t.Fatalf("statusz status = %d", code)
		}
		var st statusSnapshot
		if err := json.Unmarshal([]byte(body), &st); err != nil {
			t.Fatalf("statusz is not JSON: %v\n%s", err, body)
		}
		if st.Name != "d0" {
			t.Errorf("statusz name = %q", st.Name)
		}
		if want := []string{"site", "pce", "dns"}; fmt.Sprint(st.Roles) != fmt.Sprint(want) {
			t.Errorf("roles = %v, want %v", st.Roles, want)
		}
		if st.Config == nil || len(st.Config.Keys) == 0 || st.Config.Keys[0].Secret != "<redacted>" {
			t.Errorf("statusz leaks or drops key material: %+v", st.Config)
		}
		if len(st.Peers) == 0 {
			t.Errorf("statusz peer table empty after SetPeer")
		}
		if st.Cache == nil {
			t.Errorf("statusz cache summary missing for a site daemon")
		}
		if st.DNS == nil || st.DNS.Queries != 1 {
			t.Errorf("statusz dns stats = %+v, want 1 query", st.DNS)
		}
	})

	t.Run("flightrecorder", func(t *testing.T) {
		code, body := adminGet(t, base, "/flightrecorder")
		if code != http.StatusOK {
			t.Fatalf("flightrecorder status = %d", code)
		}
		var dump struct {
			TotalRecorded uint64            `json:"total_recorded"`
			Retained      int               `json:"retained"`
			Events        []json.RawMessage `json:"events"`
		}
		if err := json.Unmarshal([]byte(body), &dump); err != nil {
			t.Fatalf("flightrecorder is not JSON: %v\n%.300s", err, body)
		}
		if len(dump.Events) != dump.Retained {
			t.Errorf("retained = %d but %d events dumped", dump.Retained, len(dump.Events))
		}
	})

	t.Run("pprof", func(t *testing.T) {
		code, body := adminGet(t, base, "/debug/pprof/")
		if code != http.StatusOK || !strings.Contains(body, "goroutine") {
			t.Fatalf("pprof index = %d %.100q", code, body)
		}
		code, _ = adminGet(t, base, "/debug/pprof/cmdline")
		if code != http.StatusOK {
			t.Fatalf("pprof cmdline = %d", code)
		}
	})
}

// grepLines returns the lines of s containing sub (test-failure context).
func grepLines(s, sub string) string {
	var out []string
	for _, l := range strings.Split(s, "\n") {
		if strings.Contains(l, sub) {
			out = append(out, l)
		}
	}
	return strings.Join(out, "\n")
}

// TestAdminDisabled: no admin config, no listener.
func TestAdminDisabled(t *testing.T) {
	d, err := New(testConfig(0))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	if got := d.AdminAddr(); got != "" {
		t.Fatalf("AdminAddr = %q without admin config", got)
	}
}

// TestAdminReloadImmutable: a reload changing the admin address is
// rejected whole.
func TestAdminReloadImmutable(t *testing.T) {
	cfg := testConfig(0)
	cfg.Admin = "127.0.0.1:0"
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	d.Start()

	next := testConfig(0)
	next.Admin = "127.0.0.1:1"
	if err := d.Reload(next); err == nil || !strings.Contains(err.Error(), "admin") {
		t.Fatalf("reload with changed admin address: err = %v, want rejection", err)
	}
}
