package lispd

// The admin endpoint: a config-gated HTTP listener exposing the daemon's
// observability surface — Prometheus metrics, liveness, a status snapshot
// of the running configuration and protocol state, the Go profiler, and
// the control-plane flight recorder. Read-only by construction: every
// handler serves a snapshot; none mutates daemon state.

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"github.com/pcelisp/pcelisp/internal/lisp"
	"github.com/pcelisp/pcelisp/internal/overlay"
)

// adminServer owns the admin HTTP listener. The listener binds in New
// (bad addresses fail fast); Serve runs from Daemon.Start.
type adminServer struct {
	d   *Daemon
	ln  net.Listener
	srv *http.Server
}

func newAdminServer(d *Daemon, addr string) (*adminServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("lispd: admin listen %q: %w", addr, err)
	}
	a := &adminServer{d: d, ln: ln}

	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", a.metrics)
	mux.HandleFunc("/healthz", a.healthz)
	mux.HandleFunc("/statusz", a.statusz)
	mux.HandleFunc("/flightrecorder", a.flightRecorder)
	// pprof's default-mux registrations are skipped (we never touch
	// http.DefaultServeMux), so wire the handlers explicitly.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	a.srv = &http.Server{Handler: mux}
	return a, nil
}

func (a *adminServer) start() { go a.srv.Serve(a.ln) }

func (a *adminServer) close() { a.srv.Close() }

func (a *adminServer) metrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	a.d.reg.WritePrometheus(w)
}

func (a *adminServer) healthz(w http.ResponseWriter, _ *http.Request) {
	a.d.mu.Lock()
	healthy := a.d.started && !a.d.closed
	a.d.mu.Unlock()
	if !healthy {
		http.Error(w, "not running", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (a *adminServer) flightRecorder(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	a.d.rec.WriteJSON(w)
}

// cacheSummary is /statusz's view of the xTR map-cache.
type cacheSummary struct {
	Entries int                `json:"entries"`
	Stats   lisp.MapCacheStats `json:"stats"`
}

// statusSnapshot is the /statusz document.
type statusSnapshot struct {
	Name   string              `json:"name"`
	Listen string              `json:"listen"`
	Roles  []string            `json:"roles"`
	Config *Config             `json:"config"`
	Peers  []overlay.PeerRoute `json:"peers"`
	Cache  *cacheSummary       `json:"cache,omitempty"`
	DNS    *FrontEndStats      `json:"dns,omitempty"`
}

// statusz reports the active config (secrets redacted), the peer table,
// and protocol summaries. Cache internals are read on the loop goroutine
// via a posted thunk; the timeout covers a daemon torn down mid-request,
// whose loop will never run the thunk.
func (a *adminServer) statusz(w http.ResponseWriter, _ *http.Request) {
	d := a.d
	st := statusSnapshot{
		Name:   d.cfg.Name,
		Listen: d.host.RealAddr().String(),
		Config: redactConfig(d.cfg),
		Peers:  d.host.Peers(),
	}
	if d.xtr != nil {
		st.Roles = append(st.Roles, "site")
	}
	if d.pce != nil {
		st.Roles = append(st.Roles, "pce")
	}
	if d.fe != nil {
		st.Roles = append(st.Roles, "dns")
		fes := d.fe.Stats()
		st.DNS = &fes
	}
	if d.xtr != nil {
		done := make(chan struct{})
		var cs cacheSummary
		d.loop.Post(func() {
			cs = cacheSummary{Entries: d.xtr.Cache.Len(), Stats: d.xtr.Cache.Stats()}
			close(done)
		})
		select {
		case <-done:
			st.Cache = &cs
		case <-time.After(2 * time.Second):
			http.Error(w, "loop unresponsive", http.StatusServiceUnavailable)
			return
		}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(st)
}

// redactConfig copies the active config with key secrets blanked: the
// endpoint reports which keys exist, never their material.
func redactConfig(cfg *Config) *Config {
	out := *cfg
	if len(cfg.Keys) > 0 {
		out.Keys = make([]KeyConfig, len(cfg.Keys))
		for i, k := range cfg.Keys {
			out.Keys[i] = KeyConfig{ID: k.ID, Secret: "<redacted>"}
		}
	}
	return &out
}
