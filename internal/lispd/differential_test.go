package lispd

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"github.com/pcelisp/pcelisp/internal/core"
	"github.com/pcelisp/pcelisp/internal/irc"
	"github.com/pcelisp/pcelisp/internal/lisp"
	"github.com/pcelisp/pcelisp/internal/netaddr"
	"github.com/pcelisp/pcelisp/internal/packet"
	"github.com/pcelisp/pcelisp/internal/runtime"
	"github.com/pcelisp/pcelisp/internal/simnet"
	"github.com/pcelisp/pcelisp/internal/topo"
)

// evKey is a control-plane event normalized for sim-vs-real comparison:
// the decision (kind + flow EIDs) without the carrier-specific parts
// (virtual timestamps, node names).
type evKey struct {
	kind     core.EventKind
	src, dst netaddr.Addr
}

// normalizeTrace keeps the deterministic decision milestones shared by
// both runtimes. Passthrough/observation events differ structurally (the
// sim has a full iterative DNS hierarchy; the daemons forward directly)
// and are dropped.
func normalizeTrace(evs []core.Event) []evKey {
	keep := map[core.EventKind]bool{
		core.EvEncapReplySent:     true,
		core.EvEncapReplyReceived: true,
		core.EvMappingPushed:      true,
		core.EvFlowInstalled:      true,
	}
	var out []evKey
	for _, ev := range evs {
		if keep[ev.Kind] {
			out = append(out, evKey{kind: ev.Kind, src: ev.SrcEID, dst: ev.DstEID})
		}
	}
	return out
}

type flowRow struct {
	src, dst, srcRLOC, dstRLOC netaddr.Addr
}

// diffConfig derives a daemon config from a built sim domain, so both
// runtimes run the identical addressing, locator set and policy inputs.
// Only the latency encoding differs (the config speaks milliseconds); the
// test asserts the truncation preserves the latency order MinLatency
// ranks by.
func diffConfig(d, other *topo.Domain) *Config {
	cfg := &Config{
		Name:     d.Name,
		Listen:   "127.0.0.1:0",
		Seed:     int64(d.Index) + 1,
		EIDSpace: "100.0.0.0/8",
		Site: &SiteConfig{
			EIDPrefix: d.EIDPrefix.String(),
		},
		PCE: &PCEConfig{
			Addr:    d.PCEAddr.String(),
			DNSAddr: d.Resolver.Addr().String(),
		},
		DNS: &DNSConfig{
			Zone: d.Zone,
			Views: []ViewConfig{
				{Name: "internal", CIDRs: []string{d.EIDPrefix.String()}, Recursion: true},
				{Name: "infra", CIDRs: []string{"172.16.0.0/12"}, Recursion: false},
			},
			Forward: []ForwardConfig{
				{Zone: other.Zone, Server: other.Resolver.Addr().String()},
			},
		},
	}
	for _, p := range d.Providers {
		cfg.Site.Locators = append(cfg.Site.Locators, LocatorConfig{
			Name:              p.Name,
			RLOC:              p.RLOC.String(),
			CapacityBps:       p.CapacityBps,
			BaseLatencyMillis: int64(p.CoreDelay / time.Millisecond),
		})
	}
	for _, h := range d.Hosts {
		cfg.DNS.Records = append(cfg.DNS.Records, RecordConfig{Name: h.Name, Addr: h.Addr.String()})
	}
	return cfg
}

// TestSimRealDifferential runs the same scenario — a client in d0
// resolving and reaching a host in d1 — once under the deterministic
// simulator and once across two real UDP daemons on loopback, and asserts
// the control planes made the same decisions: the same event trace, the
// same installed flow tuple, the same exported locator set.
func TestSimRealDifferential(t *testing.T) {
	const seed = 7
	inter := topo.Build(topo.Spec{
		Seed:    seed,
		Domains: []topo.DomainSpec{{Hosts: 1, Providers: 2}, {Hosts: 1, Providers: 2}},
	})
	d0, d1 := inter.Domains[0], inter.Domains[1]

	// MinLatency ranks providers by latency order only; the config carries
	// milliseconds, so the drawn delays must not tie after truncation.
	for _, d := range inter.Domains {
		ms := map[int64]bool{}
		for _, p := range d.Providers {
			m := int64(p.CoreDelay / time.Millisecond)
			if ms[m] {
				t.Fatalf("seed %d draws a provider-latency tie in %s after ms truncation; pick another seed", seed, d.Name)
			}
			ms[m] = true
		}
	}

	// ---- Simulated run ----
	pce0 := core.DeployDomain(d0, irc.MinLatency{})
	pce1 := core.DeployDomain(d1, irc.MinLatency{})
	var simEv0, simEv1 []core.Event
	pce0.OnEvent = func(ev core.Event) { simEv0 = append(simEv0, ev) }
	pce1.OnEvent = func(ev core.Event) { simEv1 = append(simEv1, ev) }

	var simAddr netaddr.Addr
	var simOK bool
	d0.Hosts[0].DNS.Lookup(d1.Hosts[0].Name, func(addr netaddr.Addr, _ simnet.Time, ok bool) {
		simAddr, simOK = addr, ok
	})
	// Run long enough for the resolution, short enough that the pushed
	// flow (mapping TTL 300s) has not expired when we read the table.
	inter.Sharded.RunFor(2 * simnet.Time(time.Second))
	if !simOK || simAddr != d1.Hosts[0].Addr {
		t.Fatalf("sim resolution = %v (ok=%v), want %v", simAddr, simOK, d1.Hosts[0].Addr)
	}

	var simFlows []flowRow
	d0.XTRs[0].Flows.Walk(func(k lisp.FlowKey, e lisp.FlowEntry) {
		simFlows = append(simFlows, flowRow{src: k.Src, dst: k.Dst, srcRLOC: e.SrcRLOC, dstRLOC: e.DstRLOC})
	})
	simLocs := pce1.Engine().MappingLocators()

	// ---- Real run: two daemons on loopback, configs derived from the
	// same built world ----
	da, err := New(diffConfig(d0, d1))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(da.Close)
	db, err := New(diffConfig(d1, d0))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(db.Close)

	var realEvA, realEvB []core.Event // loop-goroutine confined until the barrier below
	da.PCE().OnEvent = func(ev core.Event) { realEvA = append(realEvA, ev) }
	db.PCE().OnEvent = func(ev core.Event) { realEvB = append(realEvB, ev) }

	da.SetPeer(d1.EIDPrefix, db.RealAddr())
	da.SetPeer(netaddr.MustParsePrefix(fmt.Sprintf("172.16.%d.0/24", d1.Index)), db.RealAddr())
	db.SetPeer(d0.EIDPrefix, da.RealAddr())
	db.SetPeer(netaddr.MustParsePrefix(fmt.Sprintf("172.16.%d.0/24", d0.Index)), da.RealAddr())

	client := newEndHost(t)
	es := d0.Hosts[0].Addr
	da.SetPeer(netaddr.HostPrefix(es), client.addr())

	da.Start()
	db.Start()

	q := &packet.DNS{
		ID: 9, RD: true,
		Questions: []packet.DNSQuestion{{Name: d1.Hosts[0].Name, Type: packet.DNSTypeA, Class: packet.DNSClassIN}},
	}
	client.send(da.RealAddr(), runtime.EncodeUDP(es, d0.Resolver.Addr(), 5353, packet.PortDNS, q))

	reply := client.recv(5 * time.Second)
	rp := packet.NewPacket(reply, packet.LayerTypeIPv4, packet.Default)
	ans := rp.Layer(packet.LayerTypeDNS).(*packet.DNS)
	if got, ok := ans.FirstA(); !ok || got != d1.Hosts[0].Addr {
		t.Fatalf("real resolution = %v (ok=%v), want %v", got, ok, d1.Hosts[0].Addr)
	}

	// Barrier: drain both loops so every event (the flow install runs as
	// a posted thunk) and table write has landed before we read.
	var realFlows []flowRow
	var realLocsB []packet.LISPLocator
	doneA, doneB := make(chan struct{}), make(chan struct{})
	da.Loop().Post(func() {
		da.XTR().Flows.Walk(func(k lisp.FlowKey, e lisp.FlowEntry) {
			realFlows = append(realFlows, flowRow{src: k.Src, dst: k.Dst, srcRLOC: e.SrcRLOC, dstRLOC: e.DstRLOC})
		})
		close(doneA)
	})
	db.Loop().Post(func() {
		realLocsB = append(realLocsB, db.PCE().Engine().MappingLocators()...)
		close(doneB)
	})
	<-doneA
	<-doneB

	// 1. Same decision trace per control plane.
	if got, want := normalizeTrace(realEvA), normalizeTrace(simEv0); !reflect.DeepEqual(got, want) {
		t.Errorf("d0 PCE trace diverges:\n real %+v\n sim  %+v", got, want)
	}
	if got, want := normalizeTrace(realEvB), normalizeTrace(simEv1); !reflect.DeepEqual(got, want) {
		t.Errorf("d1 PCE trace diverges:\n real %+v\n sim  %+v", got, want)
	}

	// 2. Same flow tuple installed at the ITR.
	if !reflect.DeepEqual(realFlows, simFlows) {
		t.Errorf("installed flows diverge:\n real %+v\n sim  %+v", realFlows, simFlows)
	}
	if len(simFlows) == 0 {
		t.Error("sim installed no flows — the scenario did not exercise the push path")
	}

	// 3. Same exported locator set (priorities and weights included).
	if !reflect.DeepEqual(realLocsB, simLocs) {
		t.Errorf("d1 locator sets diverge:\n real %+v\n sim  %+v", realLocsB, simLocs)
	}
}
