package lispd

import (
	"bytes"
	"fmt"
	"net"
	"testing"
	"time"

	"github.com/pcelisp/pcelisp/internal/lisp"
	"github.com/pcelisp/pcelisp/internal/netaddr"
	"github.com/pcelisp/pcelisp/internal/packet"
	"github.com/pcelisp/pcelisp/internal/runtime"
)

// testConfig builds the canonical two-domain test config for domain idx
// (0 or 1), mirroring the topo address plan: domain d owns
// 100.(d+1).0.0/16, RLOCs 10.d.p.1, infra 172.16.d.{1,2}.
func testConfig(idx int) *Config {
	other := 1 - idx
	return &Config{
		Name:     fmt.Sprintf("d%d", idx),
		Listen:   "127.0.0.1:0",
		Seed:     int64(idx) + 1,
		EIDSpace: "100.0.0.0/8",
		Site: &SiteConfig{
			EIDPrefix: fmt.Sprintf("100.%d.0.0/16", idx+1),
			Locators: []LocatorConfig{
				{Name: fmt.Sprintf("P%d.0", idx), RLOC: fmt.Sprintf("10.%d.0.1", idx), BaseLatencyMillis: 12},
				{Name: fmt.Sprintf("P%d.1", idx), RLOC: fmt.Sprintf("10.%d.1.1", idx), BaseLatencyMillis: 25},
			},
		},
		PCE: &PCEConfig{
			Addr:    fmt.Sprintf("172.16.%d.1", idx),
			DNSAddr: fmt.Sprintf("172.16.%d.2", idx),
		},
		Keys:      []KeyConfig{{ID: "plane", Secret: "pce-plane-key"}},
		AuthKeyID: "plane",
		DNS: &DNSConfig{
			Zone: fmt.Sprintf("d%d.example", idx),
			Records: []RecordConfig{
				{Name: fmt.Sprintf("h0.d%d.example", idx), Addr: fmt.Sprintf("100.%d.1.1", idx+1)},
			},
			Views: []ViewConfig{
				{Name: "internal", CIDRs: []string{fmt.Sprintf("100.%d.0.0/16", idx+1)}, Recursion: true},
				{Name: "infra", CIDRs: []string{"172.16.0.0/12"}, Recursion: false},
			},
			Forward: []ForwardConfig{
				{Zone: fmt.Sprintf("d%d.example", other), Server: fmt.Sprintf("172.16.%d.2", other)},
			},
		},
	}
}

// TestLoad parses the reference config from disk, pinning the JSON
// field names the README documents.
func TestLoad(t *testing.T) {
	cfg, err := Load("testdata/site-a.json")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Name != "site-a" || cfg.Site == nil || cfg.PCE == nil || cfg.DNS == nil {
		t.Fatalf("roles missing after load: %+v", cfg)
	}
	if len(cfg.Site.Locators) != 2 || cfg.Site.Locators[1].BaseLatencyMillis != 25 {
		t.Fatalf("locators = %+v", cfg.Site.Locators)
	}
	if cfg.Defense.FetchQueueCap != 64 || cfg.Defense.OverclaimFloor != 16 {
		t.Fatalf("defense = %+v", cfg.Defense)
	}
	if len(cfg.DNS.Views) != 2 || cfg.DNS.Views[0].Hosts["intranet.d0.example"] != "100.1.0.10" {
		t.Fatalf("views = %+v", cfg.DNS.Views)
	}
	if string(cfg.AuthKey()) != "pce-plane-key" {
		t.Fatalf("auth key = %q", cfg.AuthKey())
	}
	if cfg.Admin != "127.0.0.1:0" {
		t.Fatalf("admin = %q", cfg.Admin)
	}
	if d, err := New(cfg); err != nil {
		t.Fatalf("daemon refuses the reference config: %v", err)
	} else {
		d.Close()
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
		want   string // substring of the error ("" = valid)
	}{
		{"valid", func(c *Config) {}, ""},
		{"zero locators", func(c *Config) { c.Site.Locators = nil }, "zero locators"},
		{"unknown key id", func(c *Config) { c.AuthKeyID = "nope" }, "references no declared key"},
		{"peer route swallowing the site prefix", func(c *Config) {
			c.Peers = []PeerConfig{{Prefix: "100.0.0.0/12", Endpoint: "127.0.0.1:4000"}}
		}, "overlaps the site's own EID prefix"},
		{"interior host route accepted", func(c *Config) {
			c.Peers = []PeerConfig{{Prefix: "100.1.2.0/24", Endpoint: "127.0.0.1:4000"}}
		}, ""},
		{"whole-site interior route accepted", func(c *Config) {
			c.Peers = []PeerConfig{{Prefix: "100.1.0.0/16", Endpoint: "127.0.0.1:4000"}}
		}, ""},
		{"site outside eid space", func(c *Config) { c.Site.EIDPrefix = "99.1.0.0/16" }, "outside eidSpace"},
		{"locator inside eid space", func(c *Config) { c.Site.Locators[0].RLOC = "100.3.0.1" }, "inside the EID space"},
		{"no roles", func(c *Config) { c.Site = nil; c.PCE = nil }, "at least one role"},
		{"bad policy", func(c *Config) { c.PCE.Policy = "clairvoyant" }, "unknown"},
		{"bad view cidr", func(c *Config) { c.DNS.Views[0].CIDRs = []string{"not-a-prefix"} }, "cidr"},
		{"view without cidrs", func(c *Config) { c.DNS.Views[0].CIDRs = nil }, "no cidrs"},
		{"bad miss policy", func(c *Config) { c.Site.MissPolicy = "hope" }, "missPolicy"},
		{"duplicate key id", func(c *Config) {
			c.Keys = append(c.Keys, KeyConfig{ID: "plane", Secret: "again"})
		}, "duplicate key id"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := testConfig(0)
			tc.mutate(cfg)
			err := cfg.Validate()
			if tc.want == "" {
				if err != nil {
					t.Fatalf("valid config rejected: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("invalid config accepted")
			}
			if !bytes.Contains([]byte(err.Error()), []byte(tc.want)) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// endHost is a test harness playing one end host: a real UDP socket that
// exchanges full IPv4/UDP frames with a daemon, the way a site-interior
// network would.
type endHost struct {
	t    *testing.T
	conn *net.UDPConn
	rx   chan []byte
}

func newEndHost(t *testing.T) *endHost {
	t.Helper()
	conn, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	h := &endHost{t: t, conn: conn, rx: make(chan []byte, 64)}
	go func() {
		buf := make([]byte, 64*1024)
		for {
			n, _, err := conn.ReadFromUDP(buf)
			if err != nil {
				close(h.rx)
				return
			}
			frame := make([]byte, n)
			copy(frame, buf[:n])
			h.rx <- frame
		}
	}()
	t.Cleanup(func() { conn.Close() })
	return h
}

func (h *endHost) addr() *net.UDPAddr { return h.conn.LocalAddr().(*net.UDPAddr) }

func (h *endHost) send(to *net.UDPAddr, frame []byte) {
	if _, err := h.conn.WriteToUDP(frame, to); err != nil {
		h.t.Error(err)
	}
}

func (h *endHost) recv(timeout time.Duration) []byte {
	select {
	case frame, ok := <-h.rx:
		if !ok {
			h.t.Fatal("end host socket closed")
		}
		return frame
	case <-time.After(timeout):
		h.t.Fatal("timed out waiting for a frame")
	}
	return nil
}

// startPair boots the two test daemons and wires their peer routes.
func startPair(t *testing.T) (*Daemon, *Daemon) {
	t.Helper()
	da, err := New(testConfig(0))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(da.Close)
	db, err := New(testConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(db.Close)

	// Cross-wire: each daemon reaches the other's EIDs, RLOCs and infra.
	da.SetPeer(netaddr.MustParsePrefix("100.2.0.0/16"), db.RealAddr())
	da.SetPeer(netaddr.MustParsePrefix("10.1.0.0/16"), db.RealAddr())
	da.SetPeer(netaddr.MustParsePrefix("172.16.1.0/24"), db.RealAddr())
	db.SetPeer(netaddr.MustParsePrefix("100.1.0.0/16"), da.RealAddr())
	db.SetPeer(netaddr.MustParsePrefix("10.0.0.0/16"), da.RealAddr())
	db.SetPeer(netaddr.MustParsePrefix("172.16.0.0/24"), da.RealAddr())

	da.Start()
	db.Start()
	return da, db
}

// TestLoopbackE2E runs the paper's full sequence across two real daemons
// on loopback: a client DNS query triggers the PCED/PCES exchange, the
// MappingPush installs a per-flow tuple at the ITR, and a data packet is
// encapsulated — bit-exactly per the packet codec — tunneled, decapped
// and delivered.
func TestLoopbackE2E(t *testing.T) {
	da, db := startPair(t)

	client := newEndHost(t) // h0.d0 = 100.1.1.1, attached to daemon A
	sink := newEndHost(t)   // h0.d1 = 100.2.1.1, attached to daemon B
	tap := newEndHost(t)    // the "wire" between A and B's RLOC networks

	es := netaddr.MustParseAddr("100.1.1.1")
	ed := netaddr.MustParseAddr("100.2.1.1")
	dnsA := netaddr.MustParseAddr("172.16.0.2")

	da.SetPeer(netaddr.HostPrefix(es), client.addr())
	db.SetPeer(netaddr.HostPrefix(ed), sink.addr())
	// Divert A's routes toward B's RLOCs through the tap so the test can
	// inspect the encapsulated outer frames in flight.
	da.SetPeer(netaddr.MustParsePrefix("10.1.0.0/16"), tap.addr())

	// Step 1-7: the client resolves the remote host's name.
	q := &packet.DNS{
		ID: 41, RD: true,
		Questions: []packet.DNSQuestion{{Name: "h0.d1.example", Type: packet.DNSTypeA, Class: packet.DNSClassIN}},
	}
	client.send(da.RealAddr(), runtime.EncodeUDP(es, dnsA, 5353, packet.PortDNS, q))

	reply := client.recv(5 * time.Second)
	rp := packet.NewPacket(reply, packet.LayerTypeIPv4, packet.Default)
	dnsl := rp.Layer(packet.LayerTypeDNS)
	if dnsl == nil {
		t.Fatalf("client got a non-DNS frame: % x", reply)
	}
	ans := dnsl.(*packet.DNS)
	if ans.ID != 41 || !ans.QR {
		t.Fatalf("bad reply: %+v", ans)
	}
	got, ok := ans.FirstA()
	if !ok || got != ed {
		t.Fatalf("answer = %v (ok=%v), want %v", got, ok, ed)
	}

	// The MappingPush must have installed the flow tuple at A's ITR.
	type flowRow struct {
		src, dst, srcRLOC, dstRLOC netaddr.Addr
	}
	var flows []flowRow
	{
		done := make(chan struct{})
		da.Loop().Post(func() {
			da.XTR().Flows.Walk(func(k lisp.FlowKey, e lisp.FlowEntry) {
				flows = append(flows, flowRow{src: k.Src, dst: k.Dst, srcRLOC: e.SrcRLOC, dstRLOC: e.DstRLOC})
			})
			close(done)
		})
		<-done
	}
	if len(flows) != 1 {
		t.Fatalf("ITR flow table has %d entries, want 1: %+v", len(flows), flows)
	}
	f := flows[0]
	if f.src != es || f.dst != ed {
		t.Fatalf("flow key = %v->%v, want %v->%v", f.src, f.dst, es, ed)
	}
	aRLOCs := map[netaddr.Addr]bool{netaddr.MustParseAddr("10.0.0.1"): true, netaddr.MustParseAddr("10.0.1.1"): true}
	bRLOCs := map[netaddr.Addr]bool{netaddr.MustParseAddr("10.1.0.1"): true, netaddr.MustParseAddr("10.1.1.1"): true}
	if !aRLOCs[f.srcRLOC] || !bRLOCs[f.dstRLOC] {
		t.Fatalf("flow RLOCs %v->%v not drawn from the sites' locator sets", f.srcRLOC, f.dstRLOC)
	}

	// Data plane: the client sends an inner packet; A encapsulates it.
	inner := runtime.EncodeUDP(es, ed, 7777, 8888, packet.Payload([]byte("across the tunnel")))
	client.send(da.RealAddr(), inner)

	outer := tap.recv(5 * time.Second)
	op := packet.NewPacket(outer, packet.LayerTypeIPv4, packet.Default)
	oip := op.Layer(packet.LayerTypeIPv4).(*packet.IPv4)
	lispL := op.Layer(packet.LayerTypeLISP)
	if lispL == nil {
		t.Fatalf("tapped frame is not LISP-encapsulated: % x", outer)
	}
	nonce := lispL.(*packet.LISP).Nonce
	if oip.SrcIP != f.srcRLOC || oip.DstIP != f.dstRLOC {
		t.Fatalf("outer header %v->%v, want %v->%v", oip.SrcIP, oip.DstIP, f.srcRLOC, f.dstRLOC)
	}

	// Bit-exactness: the encap fast path must emit exactly the bytes the
	// layer-by-layer codec serializes (the EncapTemplate contract).
	oipGold := &packet.IPv4{TTL: packet.DefaultTTL, Protocol: packet.IPProtocolUDP, SrcIP: f.srcRLOC, DstIP: f.dstRLOC}
	udpGold := &packet.UDP{SrcPort: packet.PortLISPData, DstPort: packet.PortLISPData}
	udpGold.SetNetworkLayerForChecksum(oipGold)
	golden := packet.Serialize(oipGold, udpGold,
		&packet.LISP{NonceP: true, Nonce: nonce}, packet.Payload(inner))
	if !bytes.Equal(outer, golden) {
		t.Fatalf("encap output is not bit-identical to the codec golden:\n got % x\nwant % x", outer, golden)
	}

	// Forward the tapped frame on to B, which must decap and deliver the
	// inner frame bit-identically.
	tap.send(db.RealAddr(), outer)
	delivered := sink.recv(5 * time.Second)
	if !bytes.Equal(delivered, inner) {
		t.Fatalf("decapped inner differs from the original:\n got % x\nwant % x", delivered, inner)
	}

	// The control message ledger saw the exchange on both sides.
	var aStats, bStats struct{ pushes, encapSent uint64 }
	done := make(chan struct{}, 2)
	da.Loop().Post(func() { aStats.pushes = da.PCE().Stats().MappingPushes; done <- struct{}{} })
	db.Loop().Post(func() { bStats.encapSent = db.PCE().Stats().EncapRepliesSent; done <- struct{}{} })
	<-done
	<-done
	if aStats.pushes == 0 {
		t.Fatal("A's PCE pushed no mappings")
	}
	if bStats.encapSent == 0 {
		t.Fatal("B's PCED encapsulated no replies")
	}
}

// TestReloadInFlight proves a SIGHUP-style reload swaps the DNS config
// atomically without dropping an in-flight resolution: a query forwarded
// before the reload still reaches its client after it, and new queries
// see the new records.
func TestReloadInFlight(t *testing.T) {
	cfgA := testConfig(0)
	// Point d0's forwarder at a black hole so the resolution stays
	// in flight until the test releases the answer.
	da, err := New(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(da.Close)

	auth := newEndHost(t) // plays d1's authoritative server at 172.16.1.2
	client := newEndHost(t)
	es := netaddr.MustParseAddr("100.1.1.1")
	dnsA := netaddr.MustParseAddr("172.16.0.2")
	authAddr := netaddr.MustParseAddr("172.16.1.2")

	da.SetPeer(netaddr.HostPrefix(es), client.addr())
	da.SetPeer(netaddr.MustParsePrefix("172.16.1.0/24"), auth.addr())
	da.Start()

	// Query leaves for the (slow) remote auth server.
	q := &packet.DNS{
		ID: 99, RD: true,
		Questions: []packet.DNSQuestion{{Name: "h0.d1.example", Type: packet.DNSTypeA, Class: packet.DNSClassIN}},
	}
	client.send(da.RealAddr(), runtime.EncodeUDP(es, dnsA, 5353, packet.PortDNS, q))
	fwd := auth.recv(5 * time.Second) // the forwarded query, held in flight

	// Reload with changed records and an extra view host override.
	next := testConfig(0)
	next.DNS.Records = append(next.DNS.Records, RecordConfig{Name: "new.d0.example", Addr: "100.1.9.9"})
	if err := da.Reload(next); err != nil {
		t.Fatalf("reload: %v", err)
	}

	// Structural changes must be rejected whole.
	bad := testConfig(0)
	bad.Site.EIDPrefix = "100.3.0.0/16"
	if err := da.Reload(bad); err == nil {
		t.Fatal("reload accepted a site prefix change")
	}

	// Release the held answer: the pre-reload resolution completes.
	fp := packet.NewPacket(fwd, packet.LayerTypeIPv4, packet.Default)
	fq := fp.Layer(packet.LayerTypeDNS).(*packet.DNS)
	if fq.ID != 99 {
		t.Fatalf("forwarded query ID = %d", fq.ID)
	}
	ed := netaddr.MustParseAddr("100.2.1.1")
	ansMsg := &packet.DNS{
		ID: fq.ID, QR: true, AA: true, RD: fq.RD, Questions: fq.Questions,
		Answers: []packet.DNSResourceRecord{{
			Name: "h0.d1.example", Type: packet.DNSTypeA, Class: packet.DNSClassIN, TTL: 300, IP: ed,
		}},
	}
	auth.send(da.RealAddr(), runtime.EncodeUDP(authAddr, dnsA, packet.PortDNS, packet.PortDNS, ansMsg))

	reply := client.recv(5 * time.Second)
	rp := packet.NewPacket(reply, packet.LayerTypeIPv4, packet.Default)
	ans := rp.Layer(packet.LayerTypeDNS).(*packet.DNS)
	if got, ok := ans.FirstA(); !ok || got != ed {
		t.Fatalf("in-flight resolution lost across reload: %+v", ans)
	}

	// And the new record is live.
	q2 := &packet.DNS{
		ID: 100, RD: true,
		Questions: []packet.DNSQuestion{{Name: "new.d0.example", Type: packet.DNSTypeA, Class: packet.DNSClassIN}},
	}
	client.send(da.RealAddr(), runtime.EncodeUDP(es, dnsA, 5353, packet.PortDNS, q2))
	reply2 := client.recv(5 * time.Second)
	rp2 := packet.NewPacket(reply2, packet.LayerTypeIPv4, packet.Default)
	ans2 := rp2.Layer(packet.LayerTypeDNS).(*packet.DNS)
	if got, ok := ans2.FirstA(); !ok || got != netaddr.MustParseAddr("100.1.9.9") {
		t.Fatalf("reloaded record not served: %+v", ans2)
	}
}
