package runtime

import (
	"math/rand"
	"sync"
	"time"
)

// Loop is the real-time Runtime implementation: a single goroutine that
// serializes timer callbacks and posted thunks, backed by the wall clock
// and one reusable time.Timer. It mirrors the simulator's execution
// model — at most one protocol callback runs at a time, timers fire in
// (deadline, arming order) — so protocol code written for the sim needs
// no extra locking to run here.
//
// ScheduleTimer/TimerAt/Post are safe to call from any goroutine (unlike
// the sim, whose callers are already inside the event loop); everything
// they arm runs on the loop goroutine.
type Loop struct {
	start time.Time

	mu      sync.Mutex
	rng     *rand.Rand
	posted  []func()
	timers  loopTimerHeap
	seq     uint64
	running bool
	stopped bool
	wake    chan struct{}
	done    chan struct{}
}

// loopTimer is one armed timer, ordered by (deadline, arming sequence) —
// the same FIFO contract the sim scheduler preserves.
type loopTimer struct {
	at  Time
	seq uint64
	h   TimerHandler
	arg TimerArg
}

type loopTimerHeap []loopTimer

func (h loopTimerHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h *loopTimerHeap) push(t loopTimer) {
	*h = append(*h, t)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		(*h)[i], (*h)[parent] = (*h)[parent], (*h)[i]
		i = parent
	}
}

func (h *loopTimerHeap) pop() loopTimer {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	old[n] = loopTimer{}
	*h = old[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && (*h).less(l, small) {
			small = l
		}
		if r < n && (*h).less(r, small) {
			small = r
		}
		if small == i {
			break
		}
		(*h)[i], (*h)[small] = (*h)[small], (*h)[i]
		i = small
	}
	return top
}

// NewLoop creates a stopped loop whose clock starts at zero now and whose
// random stream is seeded deterministically.
func NewLoop(seed int64) *Loop {
	return &Loop{
		start: time.Now(),
		rng:   rand.New(rand.NewSource(seed)),
		wake:  make(chan struct{}, 1),
		done:  make(chan struct{}),
	}
}

// Now returns the time elapsed since the loop was created.
func (l *Loop) Now() Time { return time.Since(l.start) }

// Rand returns the loop's seeded random stream. Draws are serialized by
// the loop goroutine in normal operation; the loop does not add locking.
func (l *Loop) Rand() Rand { return l.rng }

// ScheduleTimer arms h.OnTimer(arg) to fire after delay d on the loop
// goroutine.
func (l *Loop) ScheduleTimer(d Time, h TimerHandler, arg TimerArg) {
	if d < 0 {
		d = 0
	}
	l.TimerAt(l.Now()+d, h, arg)
}

// TimerAt arms h.OnTimer(arg) to fire at absolute loop time t.
func (l *Loop) TimerAt(t Time, h TimerHandler, arg TimerArg) {
	l.mu.Lock()
	l.seq++
	l.timers.push(loopTimer{at: t, seq: l.seq, h: h, arg: arg})
	l.mu.Unlock()
	l.poke()
}

// Post enqueues fn to run on the loop goroutine, after anything already
// queued. It is the bridge from reader goroutines (UDP sockets, signal
// handlers) into the serialized protocol context.
func (l *Loop) Post(fn func()) {
	l.mu.Lock()
	if l.stopped {
		l.mu.Unlock()
		return
	}
	l.posted = append(l.posted, fn)
	l.mu.Unlock()
	l.poke()
}

func (l *Loop) poke() {
	select {
	case l.wake <- struct{}{}:
	default:
	}
}

// Start launches the loop goroutine. It may be called once.
func (l *Loop) Start() {
	l.mu.Lock()
	if l.running || l.stopped {
		l.mu.Unlock()
		return
	}
	l.running = true
	l.mu.Unlock()
	go l.run()
}

// Stop halts the loop and waits for the loop goroutine to exit. Pending
// thunks and timers are discarded.
func (l *Loop) Stop() {
	l.mu.Lock()
	if l.stopped {
		l.mu.Unlock()
		return
	}
	l.stopped = true
	wasRunning := l.running
	l.mu.Unlock()
	l.poke()
	if wasRunning {
		<-l.done
	}
}

func (l *Loop) run() {
	defer close(l.done)
	idle := time.NewTimer(time.Hour)
	defer idle.Stop()
	var batch []func()
	for {
		l.mu.Lock()
		if l.stopped {
			l.mu.Unlock()
			return
		}
		// Drain posted thunks first: they carry packet arrivals, which in
		// the sim likewise sort ahead of later-armed timers.
		batch, l.posted = l.posted, batch[:0]
		now := l.Now()
		var due []loopTimer
		for len(l.timers) > 0 && l.timers[0].at <= now {
			due = append(due, l.timers.pop())
		}
		var next Time = -1
		if len(l.timers) > 0 {
			next = l.timers[0].at
		}
		l.mu.Unlock()

		for _, fn := range batch {
			fn()
		}
		for i := range due {
			due[i].h.OnTimer(due[i].arg)
		}
		if len(batch) > 0 || len(due) > 0 {
			continue // running work may have queued more
		}

		if !idle.Stop() {
			select {
			case <-idle.C:
			default:
			}
		}
		if next >= 0 {
			d := next - l.Now()
			if d < 0 {
				d = 0
			}
			idle.Reset(d)
		} else {
			idle.Reset(time.Hour)
		}
		select {
		case <-l.wake:
		case <-idle.C:
		}
	}
}

var _ Runtime = (*Loop)(nil)
