// Package runtime defines the execution contract the protocol layer
// (internal/lisp, internal/core, internal/mapsys) is written against:
// a monotonic clock with a typed-timer scheduler, and a host that can
// emit and receive IPv4/UDP frames. Two implementations exist:
//
//   - the deterministic discrete-event engine (*simnet.Sim / *simnet.Node),
//     which satisfies these interfaces unchanged — the simulator's
//     byte-identity and zero-alloc guarantees are part of this contract;
//   - a real-time engine (Loop + the overlay host in internal/overlay)
//     backed by Go timers and net.UDPConn, used by cmd/lispd.
//
// The protocol state machines hold a Runtime and a Host and never import
// simnet directly; everything else (packet codecs, address types) is
// shared between both worlds already.
package runtime

import (
	"math/rand"
	"time"

	"github.com/pcelisp/pcelisp/internal/netaddr"
	"github.com/pcelisp/pcelisp/internal/packet"
)

// Time is a monotonic instant measured from an arbitrary per-runtime
// origin (simulation start, daemon start).
type Time = time.Duration

// TimerHandler is the typed-timer callback. A component implements it
// once and discriminates its own timers via TimerArg.Kind, so arming a
// timer stores an interface pair (type, receiver pointer) instead of
// allocating a fresh closure per event.
type TimerHandler interface {
	OnTimer(arg TimerArg)
}

// TimerArg is the fixed-size argument block carried by a typed timer.
// All fields are optional; their meaning belongs to the handler.
//
// P must only hold pointer-shaped values (pointers, funcs, maps): those
// are stored directly in the interface word, keeping ScheduleTimer
// allocation-free. Boxing a plain struct or int into P would allocate.
type TimerArg struct {
	// Kind discriminates between a handler's different timers. A handler
	// with a single timer may reuse it as a second small numeric payload
	// (a generation counter, say).
	Kind int32
	// N is a numeric payload (an address, a bucket index, a nonce...).
	N int64
	// S is a string payload (a DNS qname...). String headers copy without
	// allocating.
	S string
	// P is a pointer payload (a pending-request struct...).
	P any
}

// Rand is the runtime's deterministic random stream. Both engines back
// it with math/rand and an explicit seed, so the same seed yields the
// same draw sequence in sim and real time — RNG draw order is part of
// the determinism contract the differential tests rely on.
type Rand = *rand.Rand

// Runtime is the clock + scheduler half of the contract. *simnet.Sim
// implements it natively; Loop implements it over Go timers. All methods
// must be called from the runtime's own event context (timer callbacks,
// packet handlers, or posted thunks) — neither implementation is safe
// for bare cross-goroutine use.
type Runtime interface {
	// Now returns the current monotonic time.
	Now() Time
	// Rand returns the runtime's seeded random stream.
	Rand() Rand
	// ScheduleTimer arms h.OnTimer(arg) to fire after delay d.
	ScheduleTimer(d Time, h TimerHandler, arg TimerArg)
	// TimerAt arms h.OnTimer(arg) to fire at absolute time t.
	TimerAt(t Time, h TimerHandler, arg TimerArg)
}

// Egress is an opaque handle to a host egress port (a *simnet.Iface in
// the simulator, nil in the single-socket overlay host). The protocol
// layer only stores and passes it back; a nil Egress means "route by
// destination".
type Egress = any

// Verdict is a frame sniffer's decision, numerically identical to
// simnet.SnifferVerdict so the sim adapter is a plain conversion.
type Verdict uint8

const (
	// VerdictPass lets the frame continue to the next sniffer / delivery.
	VerdictPass Verdict = iota
	// VerdictConsume swallows the frame.
	VerdictConsume
)

// FrameSniffer inspects a raw IPv4 frame traversing the host and either
// passes or consumes it. Sniffers run in registration order; the frame
// bytes must not be retained past the call.
type FrameSniffer func(data []byte) Verdict

// UDPHandler receives a decoded UDP datagram addressed to a bound
// (addr, port). src/dst are the outer IPv4 addresses; udp (including its
// payload view) is only valid for the duration of the call.
type UDPHandler func(src, dst netaddr.Addr, udp *packet.UDP)

// RawUDPHandler receives the raw payload of a UDP datagram without layer
// decoding — the data-plane fast path (LISP encap on port 4341). outer is
// the full outer frame; payload aliases into it.
type RawUDPHandler func(outer []byte, payload []byte)

// Host is the datagram-endpoint half of the contract: one addressable
// entity that owns a set of IPv4 addresses, can emit full IPv4 frames,
// and dispatches inbound traffic to bound handlers and sniffers. The
// simulator's *simnet.Node implements it; internal/overlay implements it
// over one real UDP socket.
type Host interface {
	// HostName identifies the host in traces and events.
	HostName() string
	// HasAddr reports whether a is one of the host's own addresses.
	HasAddr(a netaddr.Addr) bool

	// EgressByAddr returns the egress handle carrying address a, or nil
	// (an untyped nil — callers compare with ==) when none does or the
	// host has no per-egress structure.
	EgressByAddr(a netaddr.Addr) Egress
	// AddrUp reports whether the egress carrying a is administratively
	// and physically up. Hosts without link state report HasAddr(a).
	AddrUp(a netaddr.Addr) bool
	// RouteUp reports whether the host currently has a usable (routed,
	// link-up) path toward dst.
	RouteUp(dst netaddr.Addr) bool

	// Output transmits a full IPv4 frame, routing by its destination
	// header. Ownership of data passes to the host.
	Output(data []byte) error
	// OutputVia transmits a full IPv4 frame out a specific egress handle
	// previously obtained from EgressByAddr.
	OutputVia(e Egress, data []byte)
	// OutputUDP serializes and sends an IPv4/UDP datagram and returns the
	// number of frame bytes emitted (for stats).
	OutputUDP(src, dst netaddr.Addr, sport, dport uint16, app ...packet.SerializableLayer) int

	// BindUDP registers h for UDP datagrams to (addr, port). An invalid
	// addr binds the port on every host address (the simulator, whose
	// nodes hold one protocol role each, always binds this way). Binding
	// the same (addr, port) twice panics: it is a wiring bug.
	BindUDP(addr netaddr.Addr, port uint16, h UDPHandler)
	// BindUDPRaw registers the undecoded fast-path handler for a port.
	BindUDPRaw(port uint16, h RawUDPHandler)
	// AddFrameSniffer appends a sniffer to the host's inspection chain.
	AddFrameSniffer(s FrameSniffer)
	// JoinGroup subscribes the host to a multicast group (best effort —
	// the overlay host has no multicast fabric and treats it as a no-op).
	JoinGroup(g netaddr.Addr)
}

// EncodeUDP serializes an IPv4/UDP frame with computed lengths and
// checksums around the given application layers. Both the simulator and
// the overlay host emit frames in exactly this shape, which is what makes
// sim and real wire bytes directly comparable.
func EncodeUDP(src, dst netaddr.Addr, sport, dport uint16, app ...packet.SerializableLayer) []byte {
	ip := &packet.IPv4{TTL: packet.DefaultTTL, Protocol: packet.IPProtocolUDP, SrcIP: src, DstIP: dst}
	udp := &packet.UDP{SrcPort: sport, DstPort: dport}
	udp.SetNetworkLayerForChecksum(ip)
	layers := make([]packet.SerializableLayer, 0, 2+len(app))
	layers = append(layers, ip, udp)
	for _, l := range app {
		if l != nil { // tolerate "no payload" call sites
			layers = append(layers, l)
		}
	}
	return packet.Serialize(layers...)
}

// Endpoint is a minimal datagram transport between control-plane peers,
// generalizing wire.Transport: Send delivers an opaque payload to a peer
// address, and the handler receives payloads with their source. It exists
// so code written for the loopback wire harness can also ride a Host.
type Endpoint interface {
	// LocalAddr returns the endpoint's own address.
	LocalAddr() netaddr.Addr
	// Send delivers payload to the peer at dst.
	Send(dst netaddr.Addr, payload []byte) error
	// SetHandler installs the receive callback. Implementations must pin
	// the handler atomically: a concurrent swap may not tear a call.
	SetHandler(h func(src netaddr.Addr, payload []byte))
	// Close releases the endpoint.
	Close() error
}
