// Package te provides the traffic-engineering orchestration layer on top
// of the IRC engine: continuous per-provider utilization tracking for the
// experiment figures, and a rebalancer that triggers the PCE's dynamic
// mapping re-pushes when provider load drifts out of balance — the
// paper's "upstream/downstream TE through the dynamic management of the
// mappings".
package te

import (
	"time"

	"github.com/pcelisp/pcelisp/internal/irc"
	"github.com/pcelisp/pcelisp/internal/metrics"
	"github.com/pcelisp/pcelisp/internal/simnet"
)

// TrackedLink is one monitored provider link.
type TrackedLink struct {
	// Name labels the series.
	Name string
	// Iface is the egress interface whose counters are sampled.
	Iface *simnet.Iface
	// CapacityBps normalizes byte counts to utilization.
	CapacityBps int64
}

// Tracker samples link utilizations into time series. The per-tick hot
// state lives in parallel slices indexed by the link's Add order (a
// struct-of-arrays layout), so the sampling loop walks contiguous memory
// instead of chasing one heap object per link.
type Tracker struct {
	sim *simnet.Sim
	// Interval is the sampling period (default 1s).
	Interval simnet.Time

	links []TrackedLink
	// lastTx / lastRx are the previous DeliveredBytes snapshots, parallel
	// to links.
	lastTx []uint64
	lastRx []uint64
	// primed marks that lastTx/lastRx hold a real snapshot. A link added
	// after Start() joins with primed=false, so its first sample only
	// snapshots the counters instead of charging the whole cumulative
	// count to one interval.
	primed []bool
	// Egress and Ingress hold one series per tracked link, in Add order.
	Egress  []*metrics.Series
	Ingress []*metrics.Series

	started bool
	samples int
}

// NewTracker builds an idle tracker.
func NewTracker(sim *simnet.Sim) *Tracker {
	return &Tracker{sim: sim, Interval: time.Second}
}

// Add registers a link to track.
func (t *Tracker) Add(name string, iface *simnet.Iface, capacityBps int64) {
	t.links = append(t.links, TrackedLink{Name: name, Iface: iface, CapacityBps: capacityBps})
	t.lastTx = append(t.lastTx, 0)
	t.lastRx = append(t.lastRx, 0)
	t.primed = append(t.primed, false)
	t.Egress = append(t.Egress, metrics.NewSeries(name+"/egress"))
	t.Ingress = append(t.Ingress, metrics.NewSeries(name+"/ingress"))
}

// Start begins periodic sampling. The tracker keeps the event queue alive
// forever; run the simulation with bounded windows.
func (t *Tracker) Start() {
	if t.started {
		return
	}
	t.started = true
	t.sample()
}

func (t *Tracker) sample() {
	dt := float64(t.Interval) / float64(time.Second)
	now := t.sim.Now()
	for i := range t.links {
		l := &t.links[i]
		// Goodput, not offered load: DeliveredBytes excludes frames the
		// link destroyed (random loss, admin-down), so a lossy provider
		// reads as carrying less traffic, not more.
		tx := l.Iface.Counters().DeliveredBytes
		rx := l.Iface.Peer().Counters().DeliveredBytes
		// Priming is per link, not per tracker: a link registered while
		// the sampler is already live must not book its entire cumulative
		// counter as one interval's traffic.
		if t.primed[i] && l.CapacityBps > 0 {
			t.Egress[i].Add(now, float64(tx-t.lastTx[i])*8/dt/float64(l.CapacityBps))
			t.Ingress[i].Add(now, float64(rx-t.lastRx[i])*8/dt/float64(l.CapacityBps))
		}
		t.lastTx[i], t.lastRx[i], t.primed[i] = tx, rx, true
	}
	t.samples++
	t.sim.ScheduleTimer(t.Interval, t, simnet.TimerArg{})
}

// OnTimer implements simnet.TimerHandler: the periodic utilization sample.
func (t *Tracker) OnTimer(simnet.TimerArg) { t.sample() }

// LastEgress returns the latest egress utilizations in Add order.
func (t *Tracker) LastEgress() []float64 {
	out := make([]float64, len(t.Egress))
	for i, s := range t.Egress {
		out[i] = s.Last()
	}
	return out
}

// LastIngress returns the latest ingress utilizations in Add order.
func (t *Tracker) LastIngress() []float64 {
	out := make([]float64, len(t.Ingress))
	for i, s := range t.Ingress {
		out[i] = s.Last()
	}
	return out
}

// MaxEgress returns the current maximum egress utilization.
func (t *Tracker) MaxEgress() float64 {
	m := 0.0
	for _, u := range t.LastEgress() {
		if u > m {
			m = u
		}
	}
	return m
}

// JainEgress returns Jain's fairness index over current egress loads.
func (t *Tracker) JainEgress() float64 { return metrics.Jain(t.LastEgress()) }

// JainIngress returns Jain's fairness index over current ingress loads.
func (t *Tracker) JainIngress() float64 { return metrics.Jain(t.LastIngress()) }

// Repusher re-announces current mappings; implemented by core.PCE.
type Repusher interface {
	// Repush re-pushes live flows with fresh IRC choices, returning how
	// many moved.
	Repush() int
}

// RebalancerStats counts rebalancer activity.
type RebalancerStats struct {
	Checks     uint64
	Rebalances uint64
	FlowsMoved uint64
}

// Rebalancer watches provider imbalance and triggers mapping re-pushes.
type Rebalancer struct {
	engine *irc.Engine
	target Repusher
	sim    *simnet.Sim // set by Start

	// Threshold is the max-min utilization spread that triggers a
	// rebalance (default 0.2).
	Threshold float64
	// Interval is the check period (default 5s).
	Interval simnet.Time
	// Ingress selects whether inbound (true) or outbound utilization
	// drives the decision.
	Ingress bool

	// Stats counts activity.
	Stats RebalancerStats
}

// NewRebalancer builds a rebalancer around an engine and a re-push target.
func NewRebalancer(engine *irc.Engine, target Repusher) *Rebalancer {
	return &Rebalancer{engine: engine, target: target, Threshold: 0.2, Interval: 5 * time.Second}
}

// Start begins periodic checks (keeps the event queue alive forever).
func (r *Rebalancer) Start(sim *simnet.Sim) {
	r.sim = sim
	sim.ScheduleTimer(r.Interval, r, simnet.TimerArg{})
}

// OnTimer implements simnet.TimerHandler: the periodic imbalance check.
func (r *Rebalancer) OnTimer(simnet.TimerArg) {
	r.Check()
	r.sim.ScheduleTimer(r.Interval, r, simnet.TimerArg{})
}

// Check inspects the imbalance once and re-pushes if above threshold. It
// reports whether a rebalance fired.
func (r *Rebalancer) Check() bool {
	r.Stats.Checks++
	lo, hi := 0.0, 0.0
	first := true
	for _, s := range r.engine.Snapshot() {
		if !s.Up {
			continue
		}
		u := s.EgressUtil
		if r.Ingress {
			u = s.IngressUtil
		}
		if first {
			lo, hi, first = u, u, false
			continue
		}
		if u < lo {
			lo = u
		}
		if u > hi {
			hi = u
		}
	}
	if first || hi-lo < r.Threshold {
		return false
	}
	moved := r.target.Repush()
	if moved > 0 {
		r.Stats.Rebalances++
		r.Stats.FlowsMoved += uint64(moved)
	}
	return moved > 0
}
