package te

import (
	"testing"
	"time"

	"github.com/pcelisp/pcelisp/internal/irc"
	"github.com/pcelisp/pcelisp/internal/netaddr"
	"github.com/pcelisp/pcelisp/internal/packet"
	"github.com/pcelisp/pcelisp/internal/simnet"
	"github.com/pcelisp/pcelisp/internal/workload"
)

// teWorld: one domain node with two rate-limited provider links.
type teWorld struct {
	sim       *simnet.Sim
	dom       *simnet.Node
	providers []*irc.Provider
}

func newTEWorld(t testing.TB) *teWorld {
	t.Helper()
	s := simnet.New(1)
	dom := s.NewNode("dom")
	w := &teWorld{sim: s, dom: dom}
	for i, name := range []string{"A", "B"} {
		prov := s.NewNode("prov" + name)
		l := simnet.Connect(dom, prov, simnet.LinkConfig{Delay: 10 * time.Millisecond, RateBps: 800_000})
		rloc := netaddr.AddrFrom4(10, byte(i), 0, 1)
		l.A().SetAddr(rloc)
		l.B().SetAddr(netaddr.AddrFrom4(10, byte(i), 0, 2))
		dom.AddRoute(netaddr.PrefixFrom(netaddr.AddrFrom4(10, byte(i), 0, 0), 24), l.A())
		prov.SetDefaultRoute(l.B())
		w.providers = append(w.providers, &irc.Provider{
			Name: name, RLOC: rloc, Egress: l.A(), CapacityBps: 800_000,
		})
	}
	return w
}

func TestTrackerUtilization(t *testing.T) {
	w := newTEWorld(t)
	tr := NewTracker(w.sim)
	for _, p := range w.providers {
		tr.Add(p.Name, p.Egress, p.CapacityBps)
	}
	tr.Start()
	// 400kbps through provider A = 50% utilization.
	pump := workload.NewPump(w.dom, w.providers[0].RLOC, netaddr.AddrFrom4(10, 0, 0, 2), 9, 400_000, 1000)
	pump.Start()
	w.sim.RunUntil(10 * time.Second)
	utils := tr.LastEgress()
	if utils[0] < 0.4 || utils[0] > 0.6 {
		t.Fatalf("provider A util = %v, want ~0.5", utils[0])
	}
	if utils[1] > 0.05 {
		t.Fatalf("provider B util = %v, want ~0", utils[1])
	}
	if tr.MaxEgress() != utils[0] {
		t.Fatalf("MaxEgress = %v", tr.MaxEgress())
	}
	// Jain over (0.5, 0) is ~0.5; over equal loads it approaches 1.
	if j := tr.JainEgress(); j > 0.6 {
		t.Fatalf("Jain = %v for one-sided load", j)
	}
	if len(tr.Egress[0].Points) < 8 {
		t.Fatalf("series points = %d", len(tr.Egress[0].Points))
	}
	if tr.JainIngress() == 0 {
		t.Fatal("ingress Jain must be defined (vacuously fair)")
	}
	// Ingress on provider A reflects return traffic (none here beyond
	// zero), so LastIngress stays ~0.
	for _, u := range tr.LastIngress() {
		if u > 0.05 {
			t.Fatalf("ingress util = %v", u)
		}
	}
	// Double-start is a no-op.
	tr.Start()
}

// fakeRepusher counts Repush calls.
type fakeRepusher struct{ calls, moved int }

func (f *fakeRepusher) Repush() int { f.calls++; return f.moved }

// TestTrackerMeasuresGoodputNotOfferedLoad is the delivered-bytes
// regression: with Loss=1.0 every frame is offered to the wire but none
// arrives, and the tracker must report zero utilization (the old TxBytes
// sampling reported ~50% — offered load, not goodput).
func TestTrackerMeasuresGoodputNotOfferedLoad(t *testing.T) {
	w := newTEWorld(t)
	ifA := w.providers[0].Egress
	cfg := ifA.Config()
	cfg.Loss = 1.0
	ifA.SetConfig(cfg)

	tr := NewTracker(w.sim)
	for _, p := range w.providers {
		tr.Add(p.Name, p.Egress, p.CapacityBps)
	}
	tr.Start()
	pump := workload.NewPump(w.dom, w.providers[0].RLOC, netaddr.AddrFrom4(10, 0, 0, 2), 9, 400_000, 1000)
	pump.Start()
	w.sim.RunUntil(10 * time.Second)
	if util := tr.LastEgress()[0]; util != 0 {
		t.Fatalf("provider A util = %v on a fully lossy link, want 0 (offered load leaked in)", util)
	}
	if c := ifA.Counters(); c.TxBytes == 0 || c.DeliveredBytes != 0 {
		t.Fatalf("counters inconsistent with Loss=1.0: %+v", c)
	}
}

func TestRebalancerTriggersOnImbalance(t *testing.T) {
	w := newTEWorld(t)
	engine := irc.NewEngine(w.sim, w.providers, irc.LoadBalance{})
	engine.Start()
	pump := workload.NewPump(w.dom, w.providers[0].RLOC, netaddr.AddrFrom4(10, 0, 0, 2), 9, 600_000, 1000)
	pump.Start()
	w.sim.RunUntil(5 * time.Second)

	fr := &fakeRepusher{moved: 3}
	rb := NewRebalancer(engine, fr)
	rb.Threshold = 0.3
	if !rb.Check() {
		t.Fatal("75% vs 0% imbalance must trigger")
	}
	if fr.calls != 1 || rb.Stats.Rebalances != 1 || rb.Stats.FlowsMoved != 3 {
		t.Fatalf("stats = %+v calls=%d", rb.Stats, fr.calls)
	}
}

func TestRebalancerQuietWhenBalanced(t *testing.T) {
	w := newTEWorld(t)
	engine := irc.NewEngine(w.sim, w.providers, irc.LoadBalance{})
	fr := &fakeRepusher{moved: 1}
	rb := NewRebalancer(engine, fr)
	if rb.Check() {
		t.Fatal("balanced (idle) providers must not trigger")
	}
	if fr.calls != 0 {
		t.Fatal("no repush expected")
	}
}

func TestRebalancerPeriodic(t *testing.T) {
	w := newTEWorld(t)
	engine := irc.NewEngine(w.sim, w.providers, irc.LoadBalance{})
	fr := &fakeRepusher{}
	rb := NewRebalancer(engine, fr)
	rb.Interval = 2 * time.Second
	rb.Start(w.sim)
	w.sim.RunUntil(11 * time.Second)
	if rb.Stats.Checks != 5 {
		t.Fatalf("checks = %d, want 5", rb.Stats.Checks)
	}
}

func TestRebalancerIngressMode(t *testing.T) {
	w := newTEWorld(t)
	engine := irc.NewEngine(w.sim, w.providers, irc.LoadBalance{})
	engine.Start()
	// Inbound traffic: pump from the provider side toward the domain.
	prov := w.providers[0].Egress.Peer().Node()
	pump := workload.NewPump(prov, netaddr.AddrFrom4(10, 0, 0, 2), w.providers[0].RLOC, 9, 600_000, 1000)
	w.dom.ListenUDP(9, func(*simnet.Delivery, *packet.UDP) {})
	pump.Start()
	w.sim.RunUntil(5 * time.Second)

	fr := &fakeRepusher{moved: 1}
	rb := NewRebalancer(engine, fr)
	rb.Ingress = true
	rb.Threshold = 0.3
	if !rb.Check() {
		t.Fatal("ingress imbalance must trigger in ingress mode")
	}
}

// TestTrackerAddAfterStart is the live-registration regression: a link
// added while the sampling timer is already running used to have its
// entire cumulative byte counter charged to its first interval (the
// priming gate was tracker-global, not per-link), producing an absurd
// utilization spike. The late link must prime silently and then report
// sane values.
func TestTrackerAddAfterStart(t *testing.T) {
	w := newTEWorld(t)
	tr := NewTracker(w.sim)
	tr.Add(w.providers[0].Name, w.providers[0].Egress, w.providers[0].CapacityBps)
	tr.Start()
	// Load both providers from t=0 so provider B accumulates counters
	// before it is ever tracked.
	workload.NewPump(w.dom, w.providers[0].RLOC, netaddr.AddrFrom4(10, 0, 0, 2), 9, 400_000, 1000).Start()
	workload.NewPump(w.dom, w.providers[1].RLOC, netaddr.AddrFrom4(10, 1, 0, 2), 9, 400_000, 1000).Start()
	w.sim.RunUntil(10 * time.Second)

	tr.Add(w.providers[1].Name, w.providers[1].Egress, w.providers[1].CapacityBps)
	w.sim.RunUntil(15 * time.Second)

	bSeries := tr.Egress[1]
	if len(bSeries.Points) == 0 {
		t.Fatal("late link never sampled")
	}
	// Every emitted point must be a per-interval rate (~0.5), not the
	// 10 seconds of backlog (~5.0) the unprimed subtraction produced.
	for _, pt := range bSeries.Points {
		if pt.Value > 1.0 {
			t.Fatalf("late link booked %v utilization at %v — cumulative counter charged to one interval", pt.Value, pt.At)
		}
	}
	if u := tr.LastEgress()[1]; u < 0.4 || u > 0.6 {
		t.Fatalf("late link util = %v, want ~0.5", u)
	}
	// The early link's series is longer: it was sampled the whole time.
	if len(tr.Egress[0].Points) <= len(bSeries.Points) {
		t.Fatalf("series lengths %d vs %d", len(tr.Egress[0].Points), len(bSeries.Points))
	}
}
