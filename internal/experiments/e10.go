package experiments

import (
	"encoding/binary"
	"fmt"
	"time"

	"github.com/pcelisp/pcelisp/internal/lisp"
	"github.com/pcelisp/pcelisp/internal/metrics"
	"github.com/pcelisp/pcelisp/internal/netaddr"
	"github.com/pcelisp/pcelisp/internal/packet"
	"github.com/pcelisp/pcelisp/internal/runner"
	"github.com/pcelisp/pcelisp/internal/simnet"
)

// E10 measures reconvergence after runtime failures — the claim behind
// the paper's "online IRC engine": a push-based control plane that
// *knows* about locator loss (RLOC probing at the ITRs, interface
// watches at the border) re-pushes affected flows within a probe
// interval, while pull-based planes keep blackholing into the stale
// cached mapping until its TTL expires and a re-resolution fetches the
// pruned locator set.
//
// One metered flow runs from domain 0 to domain 1 at a fixed packet
// rate; at Tfail a scripted FailurePlan injects one of three scenarios
// against the RLOC the flow is actually using:
//
//   - provider-cut: the destination's in-use provider customer link goes
//     down permanently;
//   - egress-flap: the source xTR's in-use egress interface goes down,
//     then recovers;
//   - brown-out: the destination's in-use provider link runs at 90%
//     loss for a window, then heals.
//
// Per cell we report packets blackholed after Tfail, the reconvergence
// time (Tfail until the last lost packet — censored at the window end
// for planes that never recover), and the control traffic spent during
// the failure window. Under the PCE control plane probing is enabled
// and reports feed Repush; under every other plane the only recovery
// paths are TTL expiry plus re-resolution (the site's own watch has
// already pruned its advertised record) or, for NERD, the next database
// poll. The idealized preinstalled plane has no control plane at all
// and bounds the do-nothing case.

// e10Scenario names one failure script.
type e10Scenario struct {
	key  string
	desc string
}

var e10Scenarios = []e10Scenario{
	{key: "provider-cut", desc: "destination provider customer link cut permanently"},
	{key: "egress-flap", desc: "source xTR egress interface down, later recovered"},
	{key: "brown-out", desc: "destination provider link at 90% loss, later healed"},
}

// e10Params sizes the sweep.
type e10Params struct {
	ttl      uint32      // mapping TTL seconds
	period   simnet.Time // metered-flow packet spacing
	tFail    simnet.Time // failure injection time
	flapLen  simnet.Time // egress-flap down time
	brownLen simnet.Time // brown-out duration
	tEnd     simnet.Time // simulation end (sending stops 2s earlier)
	nerdPoll simnet.Time // NERD authority poll interval
}

func e10Scale(quick bool) e10Params {
	if quick {
		return e10Params{ttl: 12, period: 50 * time.Millisecond, tFail: 8 * time.Second,
			flapLen: 10 * time.Second, brownLen: 10 * time.Second, tEnd: 28 * time.Second,
			nerdPoll: 4 * time.Second}
	}
	return e10Params{ttl: 20, period: 25 * time.Millisecond, tFail: 10 * time.Second,
		flapLen: 12 * time.Second, brownLen: 15 * time.Second, tEnd: 40 * time.Second,
		nerdPoll: 4 * time.Second}
}

// e10Result is one (scenario, control plane) cell outcome.
type e10Result struct {
	cp         CP
	scenario   string
	sent       int
	delivered  int
	preFail    int         // packets lost before the failure (cold-start)
	blackholed int         // packets sent after Tfail and never delivered
	reconv     simnet.Time // Tfail -> last post-fail loss (censored at window end)
	ctlMsgs    uint64      // control messages during the failure window
	probeMsgs  uint64      // probe/echo messages during the failure window
}

// e10Sender paces the metered flow with a typed timer, stamping each
// packet with its sequence number.
type e10Sender struct {
	node     *simnet.Node
	src, dst netaddr.Addr
	period   simnet.Time
	stopAt   simnet.Time
	sentAt   []simnet.Time
	payload  [8]byte
}

// OnTimer implements simnet.TimerHandler: send one packet, re-arm.
func (s *e10Sender) OnTimer(simnet.TimerArg) {
	now := s.node.Sim().Now()
	if now > s.stopAt {
		return
	}
	binary.BigEndian.PutUint64(s.payload[:], uint64(len(s.sentAt)))
	s.sentAt = append(s.sentAt, now)
	s.node.SendUDP(s.src, s.dst, 40000, e10Port, packet.Payload(s.payload[:]))
	s.node.Sim().ScheduleTimer(s.period, s, simnet.TimerArg{})
}

const e10Port = 7100

// e10FlowRLOCs returns the outer (src, dst) RLOC pair the source ITR
// would stamp right now for the metered flow — the failure scripts
// target what the data plane actually uses, not a fixed provider.
func e10FlowRLOCs(w *World, src, dst netaddr.Addr) (netaddr.Addr, netaddr.Addr) {
	x := w.In.Domains[0].XTRs[0]
	if fe, ok := x.Flows.Lookup(lisp.FlowKey{Src: src, Dst: dst}); ok {
		return fe.SrcRLOC, fe.DstRLOC
	}
	if e, ok := x.Cache.Lookup(dst); ok {
		h := packet.NewFlow(packet.NewIPv4Endpoint(src), packet.NewIPv4Endpoint(dst)).FastHash()
		if loc, usable := e.SelectLocator(h); usable {
			return x.RLOC(), loc.Addr
		}
	}
	return x.RLOC(), 0
}

// e10RunCell runs one control plane through one failure scenario.
func e10RunCell(cp CP, scenario string, seed int64, ps e10Params) e10Result {
	// The shortened TTL is the *pull-cache staleness horizon* — the axis
	// under test. The PCE keeps its default push TTL: its staleness
	// bound is the probe interval, not the record lifetime (shortening
	// it would only make its pushed flows expire mid-window with no
	// resolver to fall back to, measuring TTL policy instead of
	// reconvergence).
	ttl := ps.ttl
	if cp == CPPCE {
		ttl = 0
	}
	w := BuildWorld(WorldConfig{
		CP: cp, Domains: 2, HostsPerDomain: 1, Seed: seed,
		MissPolicy: lisp.MissDrop,
		MappingTTL: ttl, NERDPoll: ps.nerdPoll, WatchSites: true,
	})
	w.Settle()
	if cp == CPPCE {
		w.EnableProbing(lisp.ProbeConfig{Interval: time.Second, FailAfter: 2, RecoverAfter: 2})
	}
	d0, d1 := w.In.Domains[0], w.In.Domains[1]
	src, dst := d0.Hosts[0], d1.Hosts[0]

	// The listener runs on the destination's shard, so it must read that
	// shard's clock; the map is only read back after the run.
	dstSim := dst.Node.Sim()
	recvAt := make(map[uint64]simnet.Time)
	dst.Node.ListenUDP(e10Port, func(d *simnet.Delivery, udp *packet.UDP) {
		p := udp.LayerPayload()
		if len(p) >= 8 {
			recvAt[binary.BigEndian.Uint64(p)] = dstSim.Now()
		}
	})

	sender := &e10Sender{
		node: src.Node, src: src.Addr, dst: dst.Addr,
		period: ps.period, stopAt: ps.tEnd - 2*time.Second,
	}
	src.DNS.Lookup(dst.Name, func(_ netaddr.Addr, _ simnet.Time, ok bool) {
		if ok {
			sender.OnTimer(simnet.TimerArg{})
		}
	})

	// Just before Tfail, inspect which RLOCs the flow rides and script
	// the failure against them. The inspection is a world-wide snapshot,
	// so it runs at a global barrier: every shard quiescent, and the
	// FailurePlan free to arm timers on whichever shards own the targets.
	var ctl0, probe0 uint64
	w.At(ps.tFail-50*time.Millisecond, func() {
		srcRLOC, dstRLOC := e10FlowRLOCs(w, src.Addr, dst.Addr)
		plan := simnet.NewFailurePlan(w.Sim)
		switch scenario {
		case "provider-cut":
			for _, p := range d1.Providers {
				if p.RLOC == dstRLOC {
					plan.LinkDown(ps.tFail, p.Link)
				}
			}
		case "egress-flap":
			if ifc := d0.XTRs[0].Node().IfaceByAddr(srcRLOC); ifc != nil {
				plan.IfaceDown(ps.tFail, ifc)
				plan.IfaceUp(ps.tFail+ps.flapLen, ifc)
			}
		case "brown-out":
			for _, p := range d1.Providers {
				if p.RLOC == dstRLOC {
					plan.SetLoss(ps.tFail, p.Link, 0.9)
					plan.SetLoss(ps.tFail+ps.brownLen, p.Link, 0)
				}
			}
		}
		plan.Schedule()
		msgs, _ := w.ControlTotals()
		ctl0, probe0 = msgs, w.ProbeMessages()
	})
	w.RunUntil(ps.tEnd)

	res := e10Result{cp: cp, scenario: scenario, sent: len(sender.sentAt)}
	lastLoss := simnet.Time(-1)
	// Packets sent just before Tfail can still be destroyed by it (they
	// are in flight when the link cuts), so the failure gets charged for
	// losses within one path-delay bound of the injection instant;
	// cold-start losses happen seconds earlier and cannot be confused.
	const pathGrace = 250 * time.Millisecond
	for seq, at := range sender.sentAt {
		if _, ok := recvAt[uint64(seq)]; ok {
			res.delivered++
			continue
		}
		if at < ps.tFail-pathGrace {
			res.preFail++
			continue
		}
		res.blackholed++
		if at > lastLoss {
			lastLoss = at
		}
	}
	if lastLoss >= 0 {
		if res.reconv = lastLoss + ps.period - ps.tFail; res.reconv < 0 {
			res.reconv = 0 // only in-flight losses at the cut instant
		}
	}
	msgs, _ := w.ControlTotals()
	res.ctlMsgs = msgs - ctl0
	res.probeMsgs = w.ProbeMessages() - probe0
	return res
}

// e10Experiment decomposes the sweep into one cell per
// (scenario, control plane) pair.
func e10Experiment(seed int64, quick bool) ([]Cell, MergeFunc) {
	ps := e10Scale(quick)
	var cells []Cell
	for _, sc := range e10Scenarios {
		for _, cp := range AllCPs {
			sc, cp := sc, cp
			cells = append(cells, Cell{
				Label: fmt.Sprintf("%s/%s", sc.key, cp),
				CP:    cp,
				Run:   func() interface{} { return e10RunCell(cp, sc.key, seed, ps) },
			})
		}
	}
	merge := tableMerge(func(results []interface{}) *metrics.Table {
		tbl := metrics.NewTable(
			"E10: blackholing and reconvergence after runtime failures (one metered flow)",
			"scenario", "control plane", "sent", "delivered", "cold-start loss",
			"blackholed", "reconverge s", "ctl msgs", "probe msgs")
		for _, r := range results {
			if r == nil {
				continue
			}
			c := r.(e10Result)
			tbl.AddRow(c.scenario, string(c.cp), c.sent, c.delivered, c.preFail,
				c.blackholed, float64(c.reconv)/float64(time.Second), c.ctlMsgs, c.probeMsgs)
		}
		tbl.AddNote("failure at t=%v against the RLOC the flow is using; packets every %v until t=%v; pull mapping TTL %ds (PCE pushes keep their default TTL), NERD poll %v",
			ps.tFail, ps.period, ps.tEnd-2*time.Second, ps.ttl, ps.nerdPoll)
		tbl.AddNote("reconverge = failure to last lost packet (window end = never recovered); PCE-CP probes every 1s and re-pushes, pull planes wait for TTL expiry, ideal does nothing")
		tbl.AddNote("ctl/probe msgs counted from the failure instant to the window end")
		return tbl
	})
	return cells, merge
}

// E10FailureReconvergence runs E10 serially and returns its table.
func E10FailureReconvergence(seed int64, quick bool) *metrics.Table {
	cells, merge := e10Experiment(seed, quick)
	return merge(runCells("E10", cells, runner.Serial))[0]
}
