package experiments

import (
	"testing"
)

// TestE10PCEBeatsPullOnProviderCut encodes the experiment's acceptance
// criterion: in the provider-cut scenario the PCE control plane must
// show strictly lower reconvergence time and strictly fewer blackholed
// packets than every pull-based control plane.
func TestE10PCEBeatsPullOnProviderCut(t *testing.T) {
	ps := e10Scale(true)
	pce := e10RunCell(CPPCE, "provider-cut", 1, ps)
	if pce.blackholed == 0 {
		t.Fatal("suspicious: the cut blackholed nothing under PCE-CP (did the failure land?)")
	}
	for _, cp := range []CP{CPALT, CPCONS, CPMSMR} {
		pull := e10RunCell(cp, "provider-cut", 1, ps)
		if pce.reconv >= pull.reconv {
			t.Errorf("%s: PCE reconvergence %v not strictly below %v", cp, pce.reconv, pull.reconv)
		}
		if pce.blackholed >= pull.blackholed {
			t.Errorf("%s: PCE blackholed %d not strictly below %d", cp, pce.blackholed, pull.blackholed)
		}
	}
}

// TestE10ProbingOnlyUnderPCE: the probing advantage must come from the
// PCE cells alone — pull cells spend no probe messages.
func TestE10ProbingOnlyUnderPCE(t *testing.T) {
	ps := e10Scale(true)
	if r := e10RunCell(CPMSMR, "provider-cut", 1, ps); r.probeMsgs != 0 {
		t.Fatalf("MS/MR cell sent %d probe messages", r.probeMsgs)
	}
	if r := e10RunCell(CPPCE, "provider-cut", 1, ps); r.probeMsgs == 0 {
		t.Fatal("PCE cell sent no probe messages")
	}
}

// TestE10EveryCPSurvivesEveryScenario smoke-runs the full grid at quick
// scale: every cell must send and deliver something (no world wiring
// panics, no totally dead flows outside the expected blackhole windows).
func TestE10EveryCPSurvivesEveryScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("full E10 grid")
	}
	ps := e10Scale(true)
	for _, sc := range e10Scenarios {
		for _, cp := range AllCPs {
			r := e10RunCell(cp, sc.key, 7, ps)
			if r.sent == 0 {
				t.Errorf("%s/%s: nothing sent", sc.key, cp)
			}
			if r.delivered == 0 {
				t.Errorf("%s/%s: nothing delivered", sc.key, cp)
			}
			if r.sent != r.delivered+r.preFail+r.blackholed {
				t.Errorf("%s/%s: accounting broken: %+v", sc.key, cp, r)
			}
		}
	}
}
