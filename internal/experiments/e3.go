package experiments

import (
	"math/rand"
	"time"

	"github.com/pcelisp/pcelisp/internal/metrics"
	"github.com/pcelisp/pcelisp/internal/workload"
)

// E3MappingWithinDNS quantifies claim (ii): (TDNS + Tmap) / TDNS ~= 1 for
// the PCE control plane. For every flow we measure when the destination
// mapping became usable at the source ITR relative to the flow's own DNS
// resolution, and report the distribution of the ratio.
//
// Workload: flows arrive as a Poisson process from the source domain's
// hosts toward Zipf-popular destinations, so the mix includes both cold
// resolutions and DNS-cache hits, as in a live network.
func E3MappingWithinDNS(seed int64, domains, flows int) (*metrics.Table, map[CP][]metrics.CDFPoint) {
	if domains < 2 {
		domains = 6
	}
	if flows == 0 {
		flows = 60
	}
	tbl := metrics.NewTable(
		"E3: mapping readiness vs DNS time, ratio (TDNS+Tmap)/TDNS",
		"control plane", "flows", "ratio p50", "ratio p95", "ratio max", "flows at 1.0 (%)")
	cdfs := make(map[CP][]metrics.CDFPoint)

	for _, cp := range []CP{CPALT, CPCONS, CPMSMR, CPNERD, CPPCE} {
		w := BuildWorld(WorldConfig{CP: cp, Domains: domains, Seed: seed, HostsPerDomain: 2})
		w.Settle()
		rng := rand.New(rand.NewSource(seed + 17))
		arrivals := workload.NewPoisson(rng, 4)
		zipf := workload.NewZipf(rng, domains-1, 1.3)

		ratios := metrics.NewSummary("ratio")
		atOne := 0
		done := 0
		var at time.Duration
		for i := 0; i < flows; i++ {
			at += arrivals.Next()
			srcH := i % len(w.In.Domains[0].Hosts)
			dstD := 1 + zipf.Next()
			w.Sim.Schedule(at, func() {
				w.StartFlow(0, srcH, dstD, 0, func(res FlowResult) {
					done++
					if res.TDNS <= 0 || res.MappingReady < 0 {
						return
					}
					r := res.Ratio()
					ratios.Add(r)
					if r <= 1.0001 {
						atOne++
					}
				})
			})
		}
		w.Sim.RunFor(at + 60*time.Second)
		tbl.AddRow(string(cp), ratios.Count(),
			ratios.Quantile(0.5), ratios.P95(), ratios.Max(),
			100*float64(atOne)/float64(max(ratios.Count(), 1)))
		cdfs[cp] = ratios.CDF()
	}
	tbl.AddNote("ratio 1.0 means the mapping was ready no later than the DNS answer — the paper's target")
	return tbl, cdfs
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
