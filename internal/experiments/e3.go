package experiments

import (
	"math/rand"
	"time"

	"github.com/pcelisp/pcelisp/internal/metrics"
	"github.com/pcelisp/pcelisp/internal/runner"
	"github.com/pcelisp/pcelisp/internal/workload"
)

// E3 quantifies claim (ii): (TDNS + Tmap) / TDNS ~= 1 for the PCE control
// plane. For every flow we measure when the destination mapping became
// usable at the source ITR relative to the flow's own DNS resolution, and
// report the distribution of the ratio.
//
// Workload: flows arrive as a Poisson process from the source domain's
// hosts toward Zipf-popular destinations, so the mix includes both cold
// resolutions and DNS-cache hits, as in a live network.

// e3Result is one control plane's ratio distribution.
type e3Result struct {
	cp     CP
	ratios *metrics.Summary
	atOne  int
}

// e3Experiment decomposes E3 into one cell per control plane.
func e3Experiment(seed int64, domains, flows int) ([]Cell, MergeFunc) {
	if domains < 2 {
		domains = 6
	}
	if flows == 0 {
		flows = 60
	}
	cells := make([]Cell, len(comparisonCPs))
	for i, cp := range comparisonCPs {
		cp := cp
		cells[i] = Cell{Label: string(cp), CP: cp, Run: func() interface{} {
			return e3RunCell(cp, seed, domains, flows)
		}}
	}
	merge := tableMerge(func(results []interface{}) *metrics.Table {
		tbl := metrics.NewTable(
			"E3: mapping readiness vs DNS time, ratio (TDNS+Tmap)/TDNS",
			"control plane", "flows", "ratio p50", "ratio p95", "ratio max", "flows at 1.0 (%)")
		for _, r := range results {
			if r == nil {
				continue
			}
			c := r.(e3Result)
			tbl.AddRow(string(c.cp), c.ratios.Count(),
				c.ratios.Quantile(0.5), c.ratios.P95(), c.ratios.Max(),
				100*float64(c.atOne)/float64(max(c.ratios.Count(), 1)))
		}
		tbl.AddNote("ratio 1.0 means the mapping was ready no later than the DNS answer — the paper's target")
		return tbl
	})
	return cells, merge
}

// e3RunCell runs the Poisson/Zipf flow mix against one control plane.
func e3RunCell(cp CP, seed int64, domains, flows int) e3Result {
	w := BuildWorld(WorldConfig{CP: cp, Domains: domains, Seed: seed, HostsPerDomain: 2})
	w.Settle()
	rng := rand.New(rand.NewSource(seed + 17))
	arrivals := workload.NewPoisson(rng, 4)
	zipf := workload.NewZipf(rng, domains-1, 1.3)

	res := e3Result{cp: cp, ratios: metrics.NewSummary("ratio")}
	var at time.Duration
	for i := 0; i < flows; i++ {
		at += arrivals.Next()
		srcH := i % len(w.In.Domains[0].Hosts)
		dstD := 1 + zipf.Next()
		w.Sim.ScheduleFunc(at, func() {
			w.StartFlow(0, srcH, dstD, 0, func(fr FlowResult) {
				if fr.TDNS <= 0 || fr.MappingReady < 0 {
					return
				}
				r := fr.Ratio()
				res.ratios.Add(r)
				if r <= 1.0001 {
					res.atOne++
				}
			})
		})
	}
	w.RunFor(at + 60*time.Second)
	return res
}

// E3MappingWithinDNS runs E3 serially, returning the table and the
// per-control-plane ratio CDFs.
func E3MappingWithinDNS(seed int64, domains, flows int) (*metrics.Table, map[CP][]metrics.CDFPoint) {
	cells, merge := e3Experiment(seed, domains, flows)
	results := runCells("E3", cells, runner.Serial)
	cdfs := make(map[CP][]metrics.CDFPoint)
	for _, r := range results {
		if c, ok := r.(e3Result); ok {
			cdfs[c.cp] = c.ratios.CDF()
		}
	}
	return merge(results)[0], cdfs
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
