package experiments

import (
	"time"

	"github.com/pcelisp/pcelisp/internal/core"
	"github.com/pcelisp/pcelisp/internal/lisp"
	"github.com/pcelisp/pcelisp/internal/metrics"
	"github.com/pcelisp/pcelisp/internal/netaddr"
	"github.com/pcelisp/pcelisp/internal/simnet"
)

// E8RaceMargin measures the design-choice the PCE architecture hinges on:
// the mapping push (step 7b) must beat the host's first packet to the
// ITR. The margin is the time between mapping installation and the SYN's
// arrival at the ITR; a negative margin would mean a race lost.
func E8RaceMargin(seed int64, trials int) *metrics.Table {
	if trials == 0 {
		trials = 10
	}
	margins := metrics.NewSummary("margin")
	lost := 0
	for trial := 0; trial < trials; trial++ {
		w := BuildWorld(WorldConfig{CP: CPPCE, Domains: 2, Seed: seed + int64(trial)})
		w.Settle()
		var installAt simnet.Time
		w.PCEs[0].OnEvent = func(ev core.Event) {
			if ev.Kind == core.EvFlowInstalled && installAt == 0 {
				installAt = w.Sim.Now()
			}
		}
		var synAtITR simnet.Time
		x0 := w.In.Domains[0].XTRs[0]
		done := false
		w.StartFlow(0, 0, 1, 0, func(res FlowResult) { done = res.OK })
		// Sample the SYN arrival via the encapsulation counter: the first
		// encap after installAt is the SYN.
		var poll func()
		poll = func() {
			if x0.Stats.EncapPackets > 0 && synAtITR == 0 {
				synAtITR = w.Sim.Now()
				return
			}
			w.Sim.Schedule(100*time.Microsecond, poll)
		}
		w.Sim.Schedule(0, poll)
		w.Sim.RunFor(10 * time.Second)
		if !done || installAt == 0 || synAtITR == 0 {
			lost++
			continue
		}
		margin := synAtITR - installAt
		if margin < 0 {
			lost++
			continue
		}
		margins.AddDuration(margin)
	}
	tbl := metrics.NewTable(
		"E8a: push-vs-first-SYN race margin at the ITR",
		"trials", "races won", "races lost", "margin min", "margin mean", "margin max")
	tbl.AddRow(trials, margins.Count(), lost,
		metrics.FormatMs(margins.Min()), metrics.FormatMs(margins.Mean()), metrics.FormatMs(margins.Max()))
	tbl.AddNote("the sampling resolution is 0.1ms; a lost race would appear in the 'races lost' column")
	return tbl
}

// E8PCEFailureFallback measures graceful degradation: the destination
// domain has no PCE, so flows fall back to the underlying MS/MR mapping
// system (with queueing ITRs). The cost is the classic Tmap; nothing
// breaks.
func E8PCEFailureFallback(seed int64) *metrics.Table {
	tbl := metrics.NewTable(
		"E8b: setup latency when the destination PCE is absent (fallback to MS/MR)",
		"deployment", "flow ok", "setup", "PCE pushes", "fallback resolutions")

	run := func(label string, pceDomains []int) {
		w := BuildWorld(WorldConfig{
			CP: CPPCE, Domains: 2, Seed: seed,
			MissPolicy: lisp.MissQueue, FallbackMSMR: true, PCEDomains: pceDomains,
		})
		w.Settle()
		var res FlowResult
		w.StartFlow(0, 0, 1, 0, func(r FlowResult) { res = r })
		w.Sim.RunFor(30 * time.Second)
		pushes := uint64(0)
		if w.PCEs[0] != nil {
			pushes = w.PCEs[0].Stats.MappingPushes
		}
		resolutions := uint64(0)
		for _, d := range w.In.Domains {
			for _, x := range d.XTRs {
				resolutions += x.Stats.ResolutionsStarted
			}
		}
		tbl.AddRow(label, res.OK, metrics.FormatMs(float64(res.Setup)/float64(time.Millisecond)), pushes, resolutions)
	}
	run("PCE both domains", nil)
	run("PCE source only", []int{0})
	tbl.AddNote("queue-policy ITRs; with the destination PCE missing, the SYN waits out one MS/MR resolution")
	return tbl
}

// E8QueueMemory measures the queue-policy palliative's cost the paper
// alludes to: buffered packets at the ITR during a burst of cold flows.
func E8QueueMemory(seed int64, burst int) *metrics.Table {
	if burst == 0 {
		burst = 8
	}
	tbl := metrics.NewTable(
		"E8c: ITR buffering under a cold-flow burst (queue-policy ITRs)",
		"control plane", "burst flows", "packets queued", "queue timeouts", "replayed")

	for _, cp := range []CP{CPMSMR, CPPCE} {
		domains := burst + 1
		w := BuildWorld(WorldConfig{CP: cp, Domains: domains, Seed: seed, MissPolicy: lisp.MissQueue})
		w.Settle()
		// All flows start at the same instant: worst-case burst.
		for dd := 1; dd <= burst; dd++ {
			dd := dd
			src := w.In.Domains[0].Hosts[0]
			dst := w.In.Domains[dd].Hosts[0]
			src.DNS.Lookup(dst.Name, func(addr netaddr.Addr, _ simnet.Time, ok bool) {
				if !ok {
					return
				}
				for i := 0; i < 4; i++ {
					i := i
					w.Sim.Schedule(time.Duration(i)*10*time.Millisecond, func() {
						src.Node.SendUDP(src.Addr, addr, 40000, 9000, nil)
					})
				}
			})
		}
		w.Sim.RunFor(30 * time.Second)
		x := w.In.Domains[0].XTRs[0]
		tbl.AddRow(string(cp), burst, x.Stats.QueuedPackets, x.Stats.QueueTimeouts, x.Stats.Replayed)
	}
	tbl.AddNote("under PCE-CP the mappings precede the packets, so nothing needs buffering")
	return tbl
}
