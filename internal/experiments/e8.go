package experiments

import (
	"fmt"
	"time"

	"github.com/pcelisp/pcelisp/internal/core"
	"github.com/pcelisp/pcelisp/internal/lisp"
	"github.com/pcelisp/pcelisp/internal/metrics"
	"github.com/pcelisp/pcelisp/internal/netaddr"
	"github.com/pcelisp/pcelisp/internal/runner"
	"github.com/pcelisp/pcelisp/internal/simnet"
)

// E8a measures the design-choice the PCE architecture hinges on: the
// mapping push (step 7b) must beat the host's first packet to the ITR.
// The margin is the time between mapping installation and the SYN's
// arrival at the ITR; a negative margin would mean a race lost.

// e8aResult is one trial's race outcome.
type e8aResult struct {
	won    bool
	margin simnet.Time
}

// e8aExperiment decomposes the race measurement into one cell per trial.
func e8aExperiment(seed int64, trials int) ([]Cell, MergeFunc) {
	if trials == 0 {
		trials = 10
	}
	cells := make([]Cell, trials)
	for trial := 0; trial < trials; trial++ {
		trial := trial
		cells[trial] = Cell{Label: fmt.Sprintf("race#%d", trial), CP: CPPCE,
			Run: func() interface{} { return e8aRunCell(seed + int64(trial)) }}
	}
	merge := tableMerge(func(results []interface{}) *metrics.Table {
		margins := metrics.NewSummary("margin")
		ran, lost := 0, 0
		for _, r := range results {
			c, ok := r.(e8aResult)
			if !ok {
				continue
			}
			ran++
			if !c.won {
				lost++
				continue
			}
			margins.AddDuration(c.margin)
		}
		tbl := metrics.NewTable(
			"E8a: push-vs-first-SYN race margin at the ITR",
			"trials", "races won", "races lost", "margin min", "margin mean", "margin max")
		if ran > 0 {
			tbl.AddRow(ran, margins.Count(), lost,
				metrics.FormatMs(margins.Min()), metrics.FormatMs(margins.Mean()), metrics.FormatMs(margins.Max()))
		}
		tbl.AddNote("the sampling resolution is 0.1ms; a lost race would appear in the 'races lost' column")
		return tbl
	})
	return cells, merge
}

// e8aRunCell runs one race trial in a fresh world.
func e8aRunCell(seed int64) e8aResult {
	w := BuildWorld(WorldConfig{CP: CPPCE, Domains: 2, Seed: seed})
	w.Settle()
	var installAt simnet.Time
	w.PCEs[0].OnEvent = func(ev core.Event) {
		if ev.Kind == core.EvFlowInstalled && installAt == 0 {
			installAt = w.Sim.Now()
		}
	}
	var synAtITR simnet.Time
	x0 := w.In.Domains[0].XTRs[0]
	done := false
	w.StartFlow(0, 0, 1, 0, func(res FlowResult) { done = res.OK })
	// Sample the SYN arrival via the encapsulation counter: the first
	// encap after installAt is the SYN.
	var poll func()
	poll = func() {
		if x0.Stats().EncapPackets > 0 && synAtITR == 0 {
			synAtITR = w.Sim.Now()
			return
		}
		w.Sim.ScheduleFunc(100*time.Microsecond, poll)
	}
	w.Sim.ScheduleFunc(0, poll)
	w.RunFor(10 * time.Second)
	if !done || installAt == 0 || synAtITR == 0 {
		return e8aResult{}
	}
	margin := synAtITR - installAt
	if margin < 0 {
		return e8aResult{}
	}
	return e8aResult{won: true, margin: margin}
}

// E8RaceMargin runs E8a serially and returns its table.
func E8RaceMargin(seed int64, trials int) *metrics.Table {
	cells, merge := e8aExperiment(seed, trials)
	return merge(runCells("E8a", cells, runner.Serial))[0]
}

// E8b measures graceful degradation: the destination domain has no PCE,
// so flows fall back to the underlying MS/MR mapping system (with
// queueing ITRs). The cost is the classic Tmap; nothing breaks.

// e8bResult is one deployment's fallback measurement.
type e8bResult struct {
	label       string
	ok          bool
	setup       simnet.Time
	pushes      uint64
	resolutions uint64
}

// e8bExperiment decomposes the fallback ablation into one cell per
// deployment shape.
func e8bExperiment(seed int64) ([]Cell, MergeFunc) {
	type deployment struct {
		label      string
		pceDomains []int
	}
	deployments := []deployment{
		{"PCE both domains", nil},
		{"PCE source only", []int{0}},
	}
	cells := make([]Cell, len(deployments))
	for i, dep := range deployments {
		dep := dep
		cells[i] = Cell{Label: dep.label, CP: CPPCE, Run: func() interface{} {
			return e8bRunCell(seed, dep.label, dep.pceDomains)
		}}
	}
	merge := tableMerge(func(results []interface{}) *metrics.Table {
		tbl := metrics.NewTable(
			"E8b: setup latency when the destination PCE is absent (fallback to MS/MR)",
			"deployment", "flow ok", "setup", "PCE pushes", "fallback resolutions")
		for _, r := range results {
			if r == nil {
				continue
			}
			c := r.(e8bResult)
			tbl.AddRow(c.label, c.ok, metrics.FormatMs(float64(c.setup)/float64(time.Millisecond)),
				c.pushes, c.resolutions)
		}
		tbl.AddNote("queue-policy ITRs; with the destination PCE missing, the SYN waits out one MS/MR resolution")
		return tbl
	})
	return cells, merge
}

// e8bRunCell runs one deployment shape.
func e8bRunCell(seed int64, label string, pceDomains []int) e8bResult {
	w := BuildWorld(WorldConfig{
		CP: CPPCE, Domains: 2, Seed: seed,
		MissPolicy: lisp.MissQueue, FallbackMSMR: true, PCEDomains: pceDomains,
	})
	w.Settle()
	var res FlowResult
	w.StartFlow(0, 0, 1, 0, func(r FlowResult) { res = r })
	w.RunFor(30 * time.Second)
	pushes := uint64(0)
	if w.PCEs[0] != nil {
		pushes = w.PCEs[0].Stats().MappingPushes
	}
	resolutions := uint64(0)
	for _, d := range w.In.Domains {
		for _, x := range d.XTRs {
			resolutions += x.Stats().ResolutionsStarted
		}
	}
	return e8bResult{label: label, ok: res.OK, setup: res.Setup,
		pushes: pushes, resolutions: resolutions}
}

// E8PCEFailureFallback runs E8b serially and returns its table.
func E8PCEFailureFallback(seed int64) *metrics.Table {
	cells, merge := e8bExperiment(seed)
	return merge(runCells("E8b", cells, runner.Serial))[0]
}

// E8c measures the queue-policy palliative's cost the paper alludes to:
// buffered packets at the ITR during a burst of cold flows.

// e8cResult is one control plane's burst buffering counters.
type e8cResult struct {
	cp      CP
	queued  uint64
	timeout uint64
	replay  uint64
}

// e8cExperiment decomposes the burst ablation into one cell per control
// plane.
func e8cExperiment(seed int64, burst int) ([]Cell, MergeFunc) {
	if burst == 0 {
		burst = 8
	}
	cps := []CP{CPMSMR, CPPCE}
	cells := make([]Cell, len(cps))
	for i, cp := range cps {
		cp := cp
		cells[i] = Cell{Label: string(cp), CP: cp, Run: func() interface{} {
			return e8cRunCell(cp, seed, burst)
		}}
	}
	merge := tableMerge(func(results []interface{}) *metrics.Table {
		tbl := metrics.NewTable(
			"E8c: ITR buffering under a cold-flow burst (queue-policy ITRs)",
			"control plane", "burst flows", "packets queued", "queue timeouts", "replayed")
		for _, r := range results {
			if r == nil {
				continue
			}
			c := r.(e8cResult)
			tbl.AddRow(string(c.cp), burst, c.queued, c.timeout, c.replay)
		}
		tbl.AddNote("under PCE-CP the mappings precede the packets, so nothing needs buffering")
		return tbl
	})
	return cells, merge
}

// e8cRunCell runs the worst-case cold-flow burst against one control
// plane.
func e8cRunCell(cp CP, seed int64, burst int) e8cResult {
	domains := burst + 1
	w := BuildWorld(WorldConfig{CP: cp, Domains: domains, Seed: seed, MissPolicy: lisp.MissQueue})
	w.Settle()
	// All flows start at the same instant: worst-case burst.
	for dd := 1; dd <= burst; dd++ {
		dd := dd
		src := w.In.Domains[0].Hosts[0]
		dst := w.In.Domains[dd].Hosts[0]
		src.DNS.Lookup(dst.Name, func(addr netaddr.Addr, _ simnet.Time, ok bool) {
			if !ok {
				return
			}
			for i := 0; i < 4; i++ {
				i := i
				w.Sim.ScheduleFunc(time.Duration(i)*10*time.Millisecond, func() {
					src.Node.SendUDP(src.Addr, addr, 40000, 9000, nil)
				})
			}
		})
	}
	w.RunFor(30 * time.Second)
	x := w.In.Domains[0].XTRs[0]
	return e8cResult{cp: cp, queued: x.Stats().QueuedPackets,
		timeout: x.Stats().QueueTimeouts, replay: x.Stats().Replayed}
}

// E8QueueMemory runs E8c serially and returns its table.
func E8QueueMemory(seed int64, burst int) *metrics.Table {
	cells, merge := e8cExperiment(seed, burst)
	return merge(runCells("E8c", cells, runner.Serial))[0]
}
