package experiments

import (
	"strconv"
	"strings"
	"testing"
	"time"

	"github.com/pcelisp/pcelisp/internal/lisp"
)

// rowFor returns the first table row whose first cell equals name.
func rowFor(t *testing.T, rows [][]string, name string) []string {
	t.Helper()
	for _, r := range rows {
		if r[0] == name {
			return r
		}
	}
	t.Fatalf("no row for %q in %v", name, rows)
	return nil
}

func cellFloat(t *testing.T, row []string, idx int) float64 {
	t.Helper()
	s := row[idx]
	s = strings.TrimSuffix(s, "ms")
	mult := 1.0
	if strings.HasSuffix(s, "s") {
		s = strings.TrimSuffix(s, "s")
		mult = 1000
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q is not numeric: %v", row[idx], err)
	}
	return v * mult
}

// TestE1ClaimNoDropsUnderPCE is the reproduction's headline assertion for
// claim (i): PCE-CP and the ideal reference lose nothing; every pull CP
// loses the head of cold flows.
func TestE1ClaimNoDropsUnderPCE(t *testing.T) {
	tbl := E1DropsDuringResolution(3, 4, 8, 20*time.Millisecond)
	rows := tbl.Rows()

	for _, cp := range []string{"ideal", "PCE-CP", "NERD"} {
		row := rowFor(t, rows, cp)
		if lost := cellFloat(t, row, 4); lost != 0 {
			t.Errorf("%s lost %v packets, want 0", cp, lost)
		}
	}
	for _, cp := range []string{"ALT", "CONS", "MS/MR"} {
		row := rowFor(t, rows, cp)
		if lost := cellFloat(t, row, 4); lost == 0 {
			t.Errorf("%s lost nothing on cold flows — resolution must cost packets", cp)
		}
	}
}

// TestE2ClaimSetupLatency checks the latency ordering the paper predicts:
// PCE-CP ~= ideal reference << queue policy << drop policy (RTO-bound).
func TestE2ClaimSetupLatency(t *testing.T) {
	tbl := E2HandshakeLatency(3, 4)
	rows := tbl.Rows()

	ideal := cellFloat(t, rowFor(t, rows, "ideal"), 3)
	pce := cellFloat(t, rowFor(t, rows, "PCE-CP"), 3)
	if pce > ideal*1.05 {
		t.Errorf("PCE-CP mean setup %vms exceeds ideal %vms by more than 5%%", pce, ideal)
	}

	var altDrop, altQueue float64
	for _, r := range rows {
		if r[0] == "ALT" && r[1] == "drop" {
			altDrop = cellFloat(t, r, 3)
		}
		if r[0] == "ALT" && r[1] == "queue" {
			altQueue = cellFloat(t, r, 3)
		}
	}
	// Drop policy pays the RFC 6298 RTO (>= 1s); queue policy pays Tmap.
	if altDrop < 1000 {
		t.Errorf("ALT/drop mean setup %vms; expected the 1s RTO to dominate", altDrop)
	}
	if altQueue >= altDrop {
		t.Errorf("ALT/queue (%vms) should beat ALT/drop (%vms)", altQueue, altDrop)
	}
	if altQueue <= ideal {
		t.Errorf("ALT/queue (%vms) cannot beat the ideal reference (%vms)", altQueue, ideal)
	}
	// SYN retransmissions: none under PCE, some under drop policies.
	if rtx := cellFloat(t, rowFor(t, rows, "PCE-CP"), 6); rtx != 0 {
		t.Errorf("PCE-CP retransmits/flow = %v, want 0", rtx)
	}
}

// TestE3ClaimRatioOne checks claim (ii): the PCE's mapping-readiness
// ratio is pinned at 1.0; pull CPs exceed it.
func TestE3ClaimRatioOne(t *testing.T) {
	tbl, cdfs := E3MappingWithinDNS(3, 4, 20)
	rows := tbl.Rows()

	pce := rowFor(t, rows, "PCE-CP")
	if p95 := cellFloat(t, pce, 3); p95 > 1.0001 {
		t.Errorf("PCE-CP ratio p95 = %v, want 1.0", p95)
	}
	if pct := cellFloat(t, pce, 5); pct < 99 {
		t.Errorf("PCE-CP flows at ratio 1.0 = %v%%, want ~100%%", pct)
	}
	alt := rowFor(t, rows, "ALT")
	if p95 := cellFloat(t, alt, 3); p95 <= 1.01 {
		t.Errorf("ALT ratio p95 = %v; pull resolution must exceed TDNS", p95)
	}
	if len(cdfs[CPPCE]) == 0 {
		t.Error("missing PCE CDF")
	}
}

// TestE4ClaimTEBalance checks claim (iii): after the policy flip and
// re-push, both directions of load spread across providers.
func TestE4ClaimTEBalance(t *testing.T) {
	tbl := E4TrafficEngineering(3, 3)
	rows := tbl.Rows()
	phase1 := rows[0]
	phase2 := rows[1]

	// Phase 1: everything on provider 0.
	if in1 := cellFloat(t, phase1, 6); in1 > 0.2 {
		t.Errorf("phase 1 ingress on P1 = %v, want ~0 (pinned)", in1)
	}
	// Phase 2: provider 1 carries real load and fairness improves.
	if in1 := cellFloat(t, phase2, 6); in1 < 0.2 {
		t.Errorf("phase 2 ingress on P1 = %v, rebalance did not move inbound traffic", in1)
	}
	j1 := cellFloat(t, phase1, 7)
	j2 := cellFloat(t, phase2, 7)
	if j2 <= j1 {
		t.Errorf("ingress Jain did not improve: %v -> %v", j1, j2)
	}
	if reb := cellFloat(t, phase2, 8); reb == 0 {
		t.Error("no rebalances fired")
	}
}

// TestE5OverheadShape checks the structural expectations: NERD holds
// global state at ITRs; PCE state is per-active-flow; per-flow message
// cost is bounded for all CPs.
func TestE5OverheadShape(t *testing.T) {
	tbl := E5ControlOverhead(3, 4)
	rows := tbl.Rows()

	nerdState := cellFloat(t, rowFor(t, rows, "NERD"), 5)
	pceState := cellFloat(t, rowFor(t, rows, "PCE-CP"), 5)
	if nerdState <= 0 {
		t.Error("NERD must hold database state at ITRs")
	}
	// NERD: every ITR holds every prefix (domains * domains entries).
	if nerdState < 16 {
		t.Errorf("NERD ITR state = %v, want >= domains^2 = 16", nerdState)
	}
	if pceState <= 0 {
		t.Error("PCE-CP must hold per-flow state")
	}
	for _, cp := range []string{"ALT", "CONS", "MS/MR", "PCE-CP"} {
		if msgs := cellFloat(t, rowFor(t, rows, cp), 4); msgs <= 0 || msgs > 50 {
			t.Errorf("%s msgs/flow = %v, implausible", cp, msgs)
		}
	}
}

// TestE6TwoWayFasterUnderPCE checks that PCE two-way completion beats the
// pull baseline.
func TestE6TwoWayFasterUnderPCE(t *testing.T) {
	tbl := E6TwoWayResolution(3, 2)
	rows := tbl.Rows()
	msmr := cellFloat(t, rowFor(t, rows, "MS/MR"), 3)
	pce := cellFloat(t, rowFor(t, rows, "PCE-CP"), 3)
	if msmr == 0 || pce == 0 {
		t.Fatalf("missing measurements: MS/MR=%v PCE=%v", msmr, pce)
	}
	if pce >= msmr {
		t.Errorf("PCE two-way %vms not faster than MS/MR %vms", pce, msmr)
	}
}

// TestE7ScalingShape checks the growth directions: ALT root state and
// NERD database grow linearly with domains; PCE's source-side state does
// not.
func TestE7ScalingShape(t *testing.T) {
	tbl := E7Scalability(3, []int{4, 8}, 3)
	rows := tbl.Rows()

	find := func(cp string, domains string) []string {
		for _, r := range rows {
			if r[0] == cp && r[1] == domains {
				return r
			}
		}
		t.Fatalf("missing row %s/%s", cp, domains)
		return nil
	}
	alt4 := cellFloat(t, find("ALT", "4"), 3)
	alt8 := cellFloat(t, find("ALT", "8"), 3)
	if alt8 != 8 || alt4 != 4 {
		t.Errorf("ALT root prefixes = %v/%v, want 4/8", alt4, alt8)
	}
	nerd8 := cellFloat(t, find("NERD", "8"), 4)
	if nerd8 < 8 {
		t.Errorf("NERD ITR state per domain = %v, want >= domains", nerd8)
	}
	pce4 := cellFloat(t, find("PCE-CP", "4"), 4)
	if pce4 > 6 {
		t.Errorf("PCE per-domain state = %v, should track active flows only", pce4)
	}
}

// TestE8RaceAlwaysWon checks the architectural invariant: the push beats
// the SYN in every trial.
func TestE8RaceAlwaysWon(t *testing.T) {
	tbl := E8RaceMargin(3, 4)
	row := tbl.Rows()[0]
	if lost := cellFloat(t, row, 2); lost != 0 {
		t.Errorf("races lost = %v, want 0", lost)
	}
	if won := cellFloat(t, row, 1); won != 4 {
		t.Errorf("races won = %v, want 4", won)
	}
	if minMargin := cellFloat(t, row, 3); minMargin <= 0 {
		t.Errorf("minimum margin = %vms, want > 0", minMargin)
	}
}

// TestE8FallbackWorks checks graceful degradation without the remote PCE.
func TestE8FallbackWorks(t *testing.T) {
	tbl := E8PCEFailureFallback(3)
	rows := tbl.Rows()
	full := rowFor(t, rows, "PCE both domains")
	degraded := rowFor(t, rows, "PCE source only")
	if full[1] != "true" || degraded[1] != "true" {
		t.Fatalf("flows must succeed in both deployments: %v / %v", full, degraded)
	}
	if cellFloat(t, degraded, 2) <= cellFloat(t, full, 2) {
		t.Error("fallback should cost extra latency")
	}
	if cellFloat(t, degraded, 4) == 0 {
		t.Error("fallback must have used the MS/MR resolver")
	}
}

// TestE8QueueMemoryShape checks that PCE-CP needs no buffering where the
// queue palliative does.
func TestE8QueueMemoryShape(t *testing.T) {
	tbl := E8QueueMemory(3, 3)
	rows := tbl.Rows()
	msmr := rowFor(t, rows, "MS/MR")
	pce := rowFor(t, rows, "PCE-CP")
	if q := cellFloat(t, msmr, 2); q == 0 {
		t.Error("MS/MR burst must queue packets")
	}
	if q := cellFloat(t, pce, 2); q != 0 {
		t.Errorf("PCE-CP queued %v packets, want 0", q)
	}
}

// TestRegistry sanity-checks the experiment index.
func TestRegistry(t *testing.T) {
	all := All()
	if len(all) != 13 {
		t.Fatalf("experiments = %d", len(all))
	}
	seen := map[string]bool{}
	for _, e := range all {
		if e.ID == "" || e.Title == "" || e.Claim == "" || e.Build == nil {
			t.Errorf("incomplete experiment %+v", e)
		}
		if len(e.Cells(1, true)) == 0 {
			t.Errorf("%s: no cells", e.ID)
		}
		if seen[e.ID] {
			t.Errorf("duplicate ID %s", e.ID)
		}
		seen[e.ID] = true
	}
	if _, ok := ByID("E3"); !ok {
		t.Error("ByID(E3) failed")
	}
	if _, ok := ByID("E99"); ok {
		t.Error("ByID(E99) should fail")
	}
}

// TestWorldBuilders exercises every CP through the harness at tiny scale.
func TestWorldBuilders(t *testing.T) {
	for _, cp := range AllCPs {
		w := BuildWorld(WorldConfig{CP: cp, Domains: 2, Seed: 5, MissPolicy: lisp.MissQueue})
		w.Settle()
		var res FlowResult
		w.StartFlow(0, 0, 1, 0, func(r FlowResult) { res = r })
		w.Sim.RunFor(30 * time.Second)
		if !res.OK {
			t.Errorf("%s: flow failed: %+v", cp, res)
		}
		if res.TDNS <= 0 || res.Setup < res.Handshake {
			t.Errorf("%s: inconsistent timings: %+v", cp, res)
		}
	}
}

func TestWorldUnknownCPPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown CP must panic")
		}
	}()
	BuildWorld(WorldConfig{CP: "bogus"})
}
