package experiments

import (
	"testing"

	"github.com/pcelisp/pcelisp/internal/simnet"
)

// TestSchedulerEnginesProduceIdenticalTables is the end-to-end ordering
// guarantee for the timing-wheel event core: whole experiments rendered
// under the production wheel must be byte-identical to the golden output
// of the reference heap scheduler. E1 exercises the DNS + handshake +
// miss-policy machinery across every control plane; E9 exercises the
// cache TTL wheel, Zipf/Poisson generators and capacity sweeps.
func TestSchedulerEnginesProduceIdenticalTables(t *testing.T) {
	render := func(engine simnet.Engine, id string) string {
		prev := simnet.SetDefaultEngine(engine)
		defer simnet.SetDefaultEngine(prev)
		e, ok := ByID(id)
		if !ok {
			t.Fatalf("missing experiment %s", id)
		}
		s := ""
		for _, tbl := range e.Run(11, true) {
			s += tbl.String()
		}
		return s
	}
	for _, id := range []string{"E1", "E9"} {
		golden := render(simnet.EngineHeap, id)
		wheel := render(simnet.EngineWheel, id)
		if golden == "" {
			t.Fatalf("%s: reference run rendered nothing", id)
		}
		if golden != wheel {
			t.Errorf("%s: wheel output diverged from reference-heap golden:\n%s\nvs\n%s",
				id, wheel, golden)
		}
	}
}
