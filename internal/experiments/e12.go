package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"github.com/pcelisp/pcelisp/internal/lisp"
	"github.com/pcelisp/pcelisp/internal/metrics"
	"github.com/pcelisp/pcelisp/internal/netaddr"
	"github.com/pcelisp/pcelisp/internal/packet"
	"github.com/pcelisp/pcelisp/internal/runner"
	"github.com/pcelisp/pcelisp/internal/simnet"
	"github.com/pcelisp/pcelisp/internal/workload"
)

// E12 exercises the sharded engine at internet scale: the miss-rate-vs-
// cache-capacity power law of Coras et al. measured on a world too large
// for the full per-domain topology builder — up to 100k EID prefixes
// ("domains") and 1M EIDs. A fixed set of ITR sites, spread round-robin
// over the shards, runs independent Zipf/Poisson lookup workloads
// against LRU map-caches; misses resolve over the network against one
// central trie-backed mapping database. Under a Zipf(s) popularity
// distribution the steady-state miss rate falls as a power of the cache
// capacity; the merge fits the log-log slope across the capacity sweep.
//
// The construction is shard-invariant by design: each site's draw
// sequence comes from its own seeded rng, the resolver is stateless
// (trie reads only), and every site's access link has a distinct
// propagation delay, so no two sites' events contend at the same
// instant. Any shard count — including one — produces byte-identical
// tables.

// e12ReqPort and e12RespPort carry the map-request/map-reply exchange.
const (
	e12ReqPort  = 7300
	e12RespPort = 7301
)

// e12Params sizes the sweep.
type e12Params struct {
	prefixes int     // EID-prefix population ("domains")
	eidsPer  int     // EIDs drawn per prefix (population = prefixes * eidsPer)
	sites    int     // ITR sites, spread round-robin over shards
	perSite  int     // lookups per site
	rate     float64 // per-site Poisson lookup rate, per second
	skew     float64 // Zipf skew
	ttl      uint32  // mapping TTL seconds

	capacities []int
}

func e12Scale(quick bool) e12Params {
	if quick {
		return e12Params{prefixes: 1000, eidsPer: 4, sites: 8, perSite: 400,
			rate: 50, skew: 1.3, ttl: 30, capacities: []int{16, 64, 256}}
	}
	// 100k prefixes x 10 EIDs = 1M EIDs; 32 sites x 31250 = 1M lookups
	// per capacity point.
	return e12Params{prefixes: 100_000, eidsPer: 10, sites: 32, perSite: 31_250,
		rate: 200, skew: 1.3, ttl: 120, capacities: []int{64, 256, 1024, 4096, 16384}}
}

// e12Prefix returns prefix i: a /28 under 100.0.0.0/8, 16 addresses
// apart, so 100k prefixes stay disjoint and longest-prefix lookups have
// real work to do.
func e12Prefix(i int) netaddr.Prefix {
	base := uint32(100) << 24
	return netaddr.PrefixFrom(netaddr.Addr(base+uint32(i)*16), 28)
}

// e12Result is one capacity point.
type e12Result struct {
	capacity int
	stats    lisp.MapCacheStats
	resolved uint64 // map-replies installed across all sites
	liveLen  int    // summed cache occupancy at the last arrival
}

// e12Site is one ITR site: a node on some shard, its LRU map-cache, its
// private workload draws, and the in-flight resolution set.
type e12Site struct {
	sim       *simnet.Sim
	node      *simnet.Node
	addr      netaddr.Addr
	cache     *lisp.MapCache
	rng       *rand.Rand
	zipf      *workload.Zipf
	poisson   *workload.Poisson
	resolving map[netaddr.Prefix]bool
	resolver  netaddr.Addr
	eidsPer   int
	ttl       uint32
	left      int
	resolved  uint64
	liveLen   int
}

// step is one Poisson arrival: draw a destination EID, look it up, and
// on a cold miss send a map-request toward the central resolver.
func (s *e12Site) step() {
	if s.left == 0 {
		return
	}
	s.left--
	i := s.zipf.Next()
	p := e12Prefix(i)
	eid := p.NthHost(1 + s.rng.Intn(s.eidsPer))
	if _, hit := s.cache.Lookup(eid); !hit && !s.resolving[p] {
		s.resolving[p] = true
		var req [4]byte
		eid.PutBytes(req[:])
		s.node.SendUDP(s.addr, s.resolver, e12RespPort, e12ReqPort, packet.Payload(req[:]))
	}
	if s.left == 0 {
		// Occupancy while the workload is still hot; once arrivals stop
		// the timing wheel drains the cache to zero.
		s.liveLen = s.cache.Len()
		return
	}
	s.sim.ScheduleFunc(s.poisson.Next(), s.step)
}

// onReply installs the mapping carried by a map-reply.
func (s *e12Site) onReply(_ *simnet.Delivery, udp *packet.UDP) {
	pl := udp.LayerPayload()
	if len(pl) < 9 {
		return
	}
	p := netaddr.PrefixFrom(netaddr.AddrFromBytes(pl[:4]), int(pl[4]))
	locs := []packet.LISPLocator{{Priority: 1, Weight: 100, Reachable: true,
		Addr: netaddr.AddrFromBytes(pl[5:9])}}
	s.cache.Insert(p, locs, s.ttl)
	delete(s.resolving, p)
	s.resolved++
}

// e12RunCell runs one capacity point: a sharded mini-internet with
// ps.sites ITR sites resolving against one trie-backed database.
func e12RunCell(seed int64, capacity int, ps e12Params) e12Result {
	ss := simnet.NewSharded(seed, worldShards)
	sim0 := ss.Shard(0)

	// The central mapping system: one node on shard 0 holding the full
	// EID->RLOC database in a trie. One locator slice is shared by every
	// record (entries copy on write, and E12 never flips reachability).
	resolver := sim0.NewNode("e12-resolver")
	resolverAddr := netaddr.AddrFrom4(10, 0, 0, 1)
	resolver.AddAddr(resolverAddr)
	db := netaddr.NewTrie[netaddr.Addr]()
	for i := 0; i < ps.prefixes; i++ {
		db.Insert(e12Prefix(i), netaddr.AddrFrom4(10, 1, byte(i>>8), byte(i)))
	}

	sites := make([]*e12Site, ps.sites)
	for j := 0; j < ps.sites; j++ {
		sim := ss.Shard(j % ss.NumShards())
		node := sim.NewNode(fmt.Sprintf("e12-site-%d", j))
		s := &e12Site{
			sim: sim, node: node, addr: netaddr.AddrFrom4(10, 2, byte(j), 1),
			cache:     lisp.NewMapCache(sim, capacity),
			rng:       rand.New(rand.NewSource(seed*1_000_003 + int64(j)*7919)),
			resolving: make(map[netaddr.Prefix]bool),
			resolver:  resolverAddr, eidsPer: ps.eidsPer, ttl: ps.ttl,
			left: ps.perSite,
		}
		s.zipf = workload.NewZipf(s.rng, ps.prefixes, ps.skew)
		s.poisson = workload.NewPoisson(s.rng, ps.rate)
		// A distinct per-site propagation delay keeps any two sites'
		// request/reply events off the same instant — the construction
		// that makes the run shard-invariant without global ordering.
		delay := 15*time.Millisecond + simnet.Time(j)*37*time.Microsecond
		link := simnet.Connect(node, resolver, simnet.LinkConfig{Delay: delay})
		link.A().SetAddr(s.addr)
		link.B().SetAddr(netaddr.AddrFrom4(10, 3, byte(j), 1))
		node.SetDefaultRoute(link.A())
		resolver.AddRoute(netaddr.HostPrefix(s.addr), link.B())
		node.ListenUDP(e12RespPort, s.onReply)
		sites[j] = s
		s.sim.ScheduleFunc(0, s.step)
	}

	// The resolver answers every map-request from the trie: stateless,
	// so concurrent requests from different shards cannot interact.
	resolver.ListenUDP(e12ReqPort, func(d *simnet.Delivery, udp *packet.UDP) {
		pl := udp.LayerPayload()
		if len(pl) < 4 {
			return
		}
		eid := netaddr.AddrFromBytes(pl[:4])
		loc, p, ok := db.Lookup(eid)
		if !ok {
			return
		}
		var resp [9]byte
		p.Addr().PutBytes(resp[:4])
		resp[4] = byte(p.Bits())
		loc.PutBytes(resp[5:9])
		ip := d.IPv4()
		resolver.SendUDP(resolverAddr, ip.SrcIP, e12ReqPort, e12RespPort, packet.Payload(resp[:]))
	})

	ss.Run()

	// Fold per-site counters in site order — the partition-independent
	// reduction.
	res := e12Result{capacity: capacity}
	for _, s := range sites {
		st := s.cache.Stats()
		res.stats.Hits += st.Hits
		res.stats.Misses += st.Misses
		res.stats.Expired += st.Expired
		res.stats.Evictions += st.Evictions
		res.stats.Inserts += st.Inserts
		res.resolved += s.resolved
		res.liveLen += s.liveLen
	}
	return res
}

// e12Experiment decomposes the sweep into one cell per capacity.
func e12Experiment(seed int64, quick bool) ([]Cell, MergeFunc) {
	ps := e12Scale(quick)
	cells := make([]Cell, len(ps.capacities))
	for i, capacity := range ps.capacities {
		capacity := capacity
		cells[i] = Cell{
			Label: fmt.Sprintf("cap=%d", capacity),
			Run:   func() interface{} { return e12RunCell(seed, capacity, ps) },
		}
	}
	merge := tableMerge(func(results []interface{}) *metrics.Table {
		tbl := metrics.NewTable(
			fmt.Sprintf("E12: miss rate vs cache capacity at scale (%d prefixes, %d EIDs, %d ITR sites)",
				ps.prefixes, ps.prefixes*ps.eidsPer, ps.sites),
			"capacity", "lookups", "miss %", "resolved", "evictions", "live at last arrival")
		type pt struct{ c, m float64 }
		var pts []pt
		for _, r := range results {
			if r == nil {
				continue
			}
			c := r.(e12Result)
			total := c.stats.Hits + c.stats.Misses
			missPct := 0.0
			if total > 0 {
				missPct = 100 * float64(c.stats.Misses) / float64(total)
			}
			// Only capacity-limited points (evictions happened) belong to
			// the power-law fit: once the per-site working set fits, the
			// miss rate sits on the TTL-driven compulsory-miss floor and
			// no longer depends on capacity.
			if missPct > 0 && c.stats.Evictions > 0 {
				pts = append(pts, pt{c: float64(c.capacity), m: missPct / 100})
			}
			tbl.AddRow(c.capacity, total, missPct, c.resolved, c.stats.Evictions, c.liveLen)
		}
		tbl.AddNote("Zipf(s=%.1f) destination popularity, %d Poisson lookups/site at %.0f/s, LRU caches, TTL %ds",
			ps.skew, ps.perSite, ps.rate, ps.ttl)
		// Fit miss ~ capacity^b in log-log space (least squares) over the
		// capacity-limited points: the Coras power law; b should be
		// negative and roughly constant across the sweep's straight
		// section. Rows without evictions sit on the compulsory floor.
		if len(pts) >= 2 {
			var sx, sy, sxx, sxy float64
			for _, p := range pts {
				x, y := math.Log(p.c), math.Log(p.m)
				sx += x
				sy += y
				sxx += x * x
				sxy += x * y
			}
			n := float64(len(pts))
			b := (n*sxy - sx*sy) / (n*sxx - sx*sx)
			tbl.AddNote("fitted power law: miss rate ~ capacity^%.3f over the %d capacity-limited points", b, len(pts))
		}
		return tbl
	})
	return cells, merge
}

// E12ScaleSweep runs E12 serially and returns its table.
func E12ScaleSweep(seed int64, quick bool) *metrics.Table {
	cells, merge := e12Experiment(seed, quick)
	return merge(runCells("E12", cells, runner.Serial))[0]
}
