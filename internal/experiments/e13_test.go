package experiments

import (
	"testing"
	"time"
)

// TestE13DefensesGatePoisoning encodes the experiment's acceptance
// criterion: with defenses off, every pull-based control plane's
// poisoned-cache rate strictly exceeds the PCE plane's (which must be
// zero — its channel is keyed in every profile); with nonce+signature
// defenses on, poisoning drops to zero for every plane.
func TestE13DefensesGatePoisoning(t *testing.T) {
	ps := e13Scale(true)
	// Off-path spoofing poisons every pull plane when defenses are off.
	pce := e13RunPoisonCell(CPPCE, "spoof-offpath", "off", 1, ps)
	if pce.poisoned != 0 {
		t.Errorf("spoof-offpath/off: PCE-CP poisoned %d/%d pairs — the keyed channel must not poison",
			pce.poisoned, pce.pairs)
	}
	for _, cp := range []CP{CPALT, CPCONS, CPMSMR, CPNERD} {
		pull := e13RunPoisonCell(cp, "spoof-offpath", "off", 1, ps)
		if pull.poisoned <= pce.poisoned {
			t.Errorf("spoof-offpath/off: %s poisoned %d/%d pairs, not strictly above PCE-CP's %d",
				cp, pull.poisoned, pull.pairs, pce.poisoned)
		}
		if pull.blackKB <= 0 {
			t.Errorf("spoof-offpath/off: %s poisoned but blackholed nothing", cp)
		}
	}
	// On-path overclaiming hijacks the planes whose resolution crosses
	// the core and answers queries with cache entries (ALT, MS/MR).
	for _, cp := range []CP{CPALT, CPMSMR} {
		pull := e13RunPoisonCell(cp, "overclaim", "off", 1, ps)
		if pull.poisoned <= 0 || pull.blackKB <= 0 {
			t.Errorf("overclaim/off: %s poisoned %d/%d, blackholed %.1fKB — covering reply did not hijack",
				cp, pull.poisoned, pull.pairs, pull.blackKB)
		}
	}
	// Two structural immunities worth pinning: CONS resolution rides
	// provisioned overlay tunnels a core tap never sees, and NERD's
	// immortal exact-prefix database records always out-LPM a covering /8.
	if r := e13RunPoisonCell(CPCONS, "overclaim", "off", 1, ps); r.poisoned != 0 || r.forged != 0 {
		t.Errorf("overclaim/off: CONS should be invisible to a core tap, got poisoned=%d forged=%d",
			r.poisoned, r.forged)
	}
	if r := e13RunPoisonCell(CPNERD, "overclaim", "off", 1, ps); r.poisoned != 0 {
		t.Errorf("overclaim/off: NERD's exact database records should out-LPM the /8, got %d/%d",
			r.poisoned, r.pairs)
	}
	// Nonce+signature defenses zero out poisoning everywhere.
	for _, sc := range []string{"spoof-offpath", "spoof-onpath", "overclaim", "replay"} {
		for _, cp := range append([]CP{CPPCE}, CPALT, CPCONS, CPMSMR, CPNERD) {
			hard := e13RunPoisonCell(cp, sc, "nonce+sig", 1, ps)
			if hard.poisoned != 0 {
				t.Errorf("%s/nonce+sig: %s still poisoned %d/%d pairs",
					sc, cp, hard.poisoned, hard.pairs)
			}
		}
	}
	// And the defense layers visibly fired where the attack reached them.
	if r := e13RunPoisonCell(CPMSMR, "spoof-offpath", "nonce+sig", 1, ps); r.rejected == 0 {
		t.Error("spoof-offpath/nonce+sig: MS/MR rejected no forgeries — did the attack run?")
	}
}

// TestE13NonceEchoLimits pins the layer-by-layer story: strict nonce
// echo stops blind off-path forgeries but not on-path racing (the
// attacker echoes the observed nonce), and it never was a defense for
// the NERD poll channel — only signatures close those holes.
func TestE13NonceEchoLimits(t *testing.T) {
	ps := e13Scale(true)
	if r := e13RunPoisonCell(CPMSMR, "spoof-offpath", "nonce", 1, ps); r.poisoned != 0 {
		t.Errorf("nonce echo failed to stop blind off-path spoofing: %d/%d", r.poisoned, r.pairs)
	}
	if r := e13RunPoisonCell(CPMSMR, "spoof-onpath", "nonce", 1, ps); r.poisoned == 0 {
		t.Error("on-path spoofing with the observed nonce should defeat nonce echo")
	}
	if r := e13RunPoisonCell(CPMSMR, "spoof-onpath", "nonce+sig", 1, ps); r.poisoned != 0 {
		t.Errorf("signatures failed to stop on-path spoofing: %d/%d", r.poisoned, r.pairs)
	}
	if r := e13RunPoisonCell(CPNERD, "spoof-offpath", "nonce", 1, ps); r.poisoned == 0 {
		t.Error("the NERD poll channel has no nonce: source-spoofed pages should still land")
	}
	if r := e13RunPoisonCell(CPMSMR, "replay", "nonce", 1, ps); r.poisoned == 0 {
		t.Error("replayed records carry a live nonce: replay should defeat nonce echo")
	}
	if r := e13RunPoisonCell(CPMSMR, "replay", "nonce+sig", 1, ps); r.poisoned != 0 {
		t.Errorf("mutated replays must fail signature verification: %d/%d", r.poisoned, r.pairs)
	}
}

// TestE13FloodDegradationPoint quantifies the PCE's single point of
// attack: a MapFetch flood under the PCED service rate leaves the
// legitimate flow fast; an overwhelming flood visibly degrades it; the
// per-source quota restores it.
func TestE13FloodDegradationPoint(t *testing.T) {
	ps := e13Scale(true)
	calm := e13RunFloodCell(CPPCE, e13FloodVar{rate: 100, attackers: 1}, 1, ps)
	if !calm.ok {
		t.Fatal("sub-capacity flood: legitimate flow failed")
	}
	storm := e13RunFloodCell(CPPCE, e13FloodVar{rate: 2000, attackers: 1}, 1, ps)
	if storm.drops == 0 {
		t.Error("over-capacity flood shed nothing — is the service bound wired?")
	}
	if storm.ok && storm.setup < 4*calm.setup {
		t.Errorf("over-capacity flood barely degraded setup: %v vs %v", storm.setup, calm.setup)
	}
	guarded := e13RunFloodCell(CPPCE, e13FloodVar{rate: 2000, attackers: 1, quota: true}, 1, ps)
	if !guarded.ok {
		t.Fatal("per-source quota failed to protect the legitimate flow")
	}
	if guarded.setup > calm.setup+2*time.Second {
		t.Errorf("quota-guarded setup %v far above calm %v", guarded.setup, calm.setup)
	}
	if guarded.quotaHits == 0 {
		t.Error("quota never fired during the flood")
	}
}
