package experiments

import (
	"time"

	"github.com/pcelisp/pcelisp/internal/irc"
	"github.com/pcelisp/pcelisp/internal/metrics"
	"github.com/pcelisp/pcelisp/internal/netaddr"
	"github.com/pcelisp/pcelisp/internal/packet"
	"github.com/pcelisp/pcelisp/internal/runner"
	"github.com/pcelisp/pcelisp/internal/simnet"
	"github.com/pcelisp/pcelisp/internal/te"
	"github.com/pcelisp/pcelisp/internal/workload"
)

// E4 quantifies claim (iii): the PCE control plane engineers both
// directions of traffic by dynamically re-pushing mappings, where
// symmetric LISP is stuck with whatever the first resolution chose.
//
// Setup: domain 0 is dual-homed with rate-limited providers. Each remote
// domain runs one bidirectional elephant flow with a domain-0 host.
// Phase 1 pins domain 0's ingress and egress to provider 0 — the
// symmetric-LISP analogue. Phase 2 switches the IRC policy to load
// balancing; the rebalancer re-pushes live mappings, the new source RLOCs
// steer outbound packets onto provider 1 and tell the remote ETRs to send
// the inbound direction there too. No flow endpoint notices anything.
//
// E4's two phases share one evolving world, so it stays a single cell:
// its parallelism comes from running alongside other experiments' cells.

// e4Experiment wraps the TE world in a one-cell decomposition.
func e4Experiment(seed int64, remoteDomains int) ([]Cell, MergeFunc) {
	cells := []Cell{{Label: "PCE TE", Run: func() interface{} {
		return e4RunCell(seed, remoteDomains)
	}}}
	merge := tableMerge(func(results []interface{}) *metrics.Table {
		if len(results) == 0 || results[0] == nil {
			return metrics.NewTable("E4: provider utilization before/after PCE mapping re-push (dual-homed domain)")
		}
		return results[0].(*metrics.Table)
	})
	return cells, merge
}

// e4RunCell runs both TE phases and renders the table directly — the
// phases are sequential by design, so the cell result is the table.
func e4RunCell(seed int64, remoteDomains int) *metrics.Table {
	if remoteDomains == 0 {
		remoteDomains = 4
	}
	capacity := int64(4_000_000)
	inboundRate := int64(1_200_000)
	outboundRate := int64(1_000_000)

	w := BuildWorld(WorldConfig{
		CP: CPPCE, Domains: remoteDomains + 1, Seed: seed,
		HostsPerDomain: remoteDomains, CapacityBps: capacity,
		Policy: irc.Pinned{Index: 0},
	})
	w.Settle()
	d0 := w.In.Domains[0]
	pce0 := w.PCEs[0]
	pce0.Engine().Start()

	tracker := te.NewTracker(w.Sim)
	for _, p := range d0.Providers {
		tracker.Add(p.Name, p.EgressIface, capacity)
	}
	tracker.Start()

	// Launch one bidirectional flow per remote domain. Listeners are
	// registered before the run (each node's state belongs to its own
	// shard), and the remote's inbound pump is started by the remote shard
	// itself when the first packet arrives — a shard-0 callback may not
	// mutate remote-domain state mid-run.
	for i := 0; i < remoteDomains; i++ {
		i := i
		src := d0.Hosts[i]
		remote := w.In.Domains[i+1].Hosts[0]
		src.Node.ListenUDP(7001, func(*simnet.Delivery, *packet.UDP) {})
		remoteSim := remote.Node.Sim()
		started := false
		remote.Node.ListenUDP(7000, func(*simnet.Delivery, *packet.UDP) {
			if started {
				return
			}
			started = true
			// The first packet established the reverse mapping at the
			// remote ETRs; pump the inbound direction after the same
			// settling delay as the outbound one.
			remoteSim.ScheduleFunc(time.Second, func() {
				workload.NewPump(remote.Node, remote.Addr, src.Addr, 7001, inboundRate, 1000).Start()
			})
		})
		w.Sim.ScheduleFunc(time.Duration(i)*200*time.Millisecond, func() {
			src.DNS.Lookup(remote.Name, func(addr netaddr.Addr, _ simnet.Time, ok bool) {
				if !ok {
					return
				}
				src.Node.SendUDP(src.Addr, addr, 40000, 7000, packet.Payload("hello"))
				w.Sim.ScheduleFunc(time.Second, func() {
					workload.NewPump(src.Node, src.Addr, addr, 7000, outboundRate, 1000).Start()
				})
			})
		})
	}

	// Phase 1: pinned, 20 seconds.
	w.RunUntil(20 * time.Second)
	p1Eg := tracker.LastEgress()
	p1In := tracker.LastIngress()
	p1JainEg, p1JainIn := tracker.JainEgress(), tracker.JainIngress()

	// Phase 2: flip to hash-based equal splitting and let the rebalancer
	// re-push. (Residual-capacity weighting oscillates under full
	// saturation of one link — the classic IRC instability — so the
	// balanced policy for equal-capacity providers is the equal split.)
	pce0.Engine().SetPolicy(irc.EqualSplit{})
	rb := te.NewRebalancer(pce0.Engine(), pce0)
	rb.Ingress = true
	rb.Threshold = 0.35
	rb.Interval = 2 * time.Second
	rb.Start(w.Sim)
	w.RunUntil(60 * time.Second)
	p2Eg := tracker.LastEgress()
	p2In := tracker.LastIngress()
	p2JainEg, p2JainIn := tracker.JainEgress(), tracker.JainIngress()

	tbl := metrics.NewTable(
		"E4: provider utilization before/after PCE mapping re-push (dual-homed domain)",
		"phase", "policy", "egress P0", "egress P1", "Jain eg", "ingress P0", "ingress P1", "Jain in", "rebalances")
	tbl.AddRow("1 (symmetric)", "pinned P0", p1Eg[0], p1Eg[1], p1JainEg, p1In[0], p1In[1], p1JainIn, 0)
	tbl.AddRow("2 (PCE TE)", "equal-split", p2Eg[0], p2Eg[1], p2JainEg, p2In[0], p2In[1], p2JainIn, rb.Stats.Rebalances)
	tbl.AddNote("%d bidirectional flows, %.1f Mbps in + %.1f Mbps out each, provider capacity %.0f Mbps",
		remoteDomains, float64(inboundRate)/1e6, float64(outboundRate)/1e6, float64(capacity)/1e6)
	return tbl
}

// E4TrafficEngineering runs E4 and returns its table.
func E4TrafficEngineering(seed int64, remoteDomains int) *metrics.Table {
	cells, merge := e4Experiment(seed, remoteDomains)
	return merge(runCells("E4", cells, runner.Serial))[0]
}
