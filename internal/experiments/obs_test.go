package experiments

import (
	"strings"
	"testing"
	"time"

	"github.com/pcelisp/pcelisp/internal/obs"
)

// TestWorldRegistry pins the EXPERIMENTS.md recipe for reading E-series
// counters straight from a registry: arm WorldConfig.Obs, drive a flow,
// and the registered series agree with the components' own Stats()
// snapshots — same cells, two views.
func TestWorldRegistry(t *testing.T) {
	reg := obs.NewRegistry()
	w := BuildWorld(WorldConfig{CP: CPPCE, Domains: 2, Seed: 3, Obs: reg})
	w.Settle()
	var res FlowResult
	w.StartFlow(0, 0, 1, 0, func(r FlowResult) { res = r })
	w.Sim.RunFor(10 * time.Second)
	if !res.OK {
		t.Fatal("flow failed")
	}

	itr := w.In.Domains[0].XTRs[0]
	stats := itr.Stats()
	if stats.EncapPackets == 0 {
		t.Fatal("no encapsulated packets after a completed flow — scenario too weak to test the registry")
	}
	encap, ok := reg.Value("pcelisp_xtr_encap_packets_total",
		obs.Label{Key: "node", Value: itr.Node().Name()})
	if !ok || uint64(encap) != stats.EncapPackets {
		t.Errorf("registry encap = %v (ok=%v), Stats() = %d", encap, ok, stats.EncapPackets)
	}

	var sb strings.Builder
	reg.WritePrometheus(&sb)
	for _, series := range []string{
		"pcelisp_mapcache_hits_total",
		"pcelisp_xtr_encap_packets_total",
		"pcelisp_pce_ipc_queries_total",
	} {
		if !strings.Contains(sb.String(), series) {
			t.Errorf("world exposition missing %s", series)
		}
	}
}

// TestWorldRegistryMSMR covers the mapping-system side of the same
// recipe: a MS/MR world registers the map-server and map-resolver
// counters, and a resolved flow shows up in them.
func TestWorldRegistryMSMR(t *testing.T) {
	reg := obs.NewRegistry()
	w := BuildWorld(WorldConfig{CP: CPMSMR, Domains: 2, Seed: 3, Obs: reg})
	w.Settle()
	var res FlowResult
	w.StartFlow(0, 0, 1, 0, func(r FlowResult) { res = r })
	w.Sim.RunFor(30 * time.Second)
	if !res.OK {
		t.Fatal("flow failed")
	}
	fwd, ok := reg.Value("pcelisp_mr_forwarded_total", obs.Label{Key: "node", Value: "map-resolver"})
	if !ok || fwd == 0 {
		t.Errorf("mr forwarded = %v (ok=%v), want > 0", fwd, ok)
	}
	if got := w.MSMR.MR.Stats().Forwarded; uint64(fwd) != got {
		t.Errorf("registry forwarded = %v, Stats() = %d", fwd, got)
	}
}
