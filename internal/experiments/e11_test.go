package experiments

import (
	"testing"
)

// TestE11PCEBeatsPullOnFlashCrowd encodes the experiment's acceptance
// criterion: in the flash-crowd scenario the PCE control plane must
// rebalance strictly faster (lower time-to-rebalance) and hold a
// strictly lower peak utilization than every pull-based control plane.
func TestE11PCEBeatsPullOnFlashCrowd(t *testing.T) {
	ps := e11Scale(true)
	pce := e11RunCell(CPPCE, "flash-crowd", 1, ps)
	if pce.applies == 0 {
		t.Fatal("suspicious: the PCE optimizer never pushed weights (did the flash land?)")
	}
	if pce.telMsgs == 0 {
		t.Fatal("suspicious: no telemetry streamed under PCE-CP")
	}
	for _, cp := range []CP{CPALT, CPCONS, CPMSMR, CPNERD} {
		pull := e11RunCell(cp, "flash-crowd", 1, ps)
		if pce.reconv >= pull.reconv {
			t.Errorf("%s: PCE time-to-rebalance %v not strictly below %v", cp, pce.reconv, pull.reconv)
		}
		if pce.peak >= pull.peak {
			t.Errorf("%s: PCE peak utilization %.3f not strictly below %.3f", cp, pce.peak, pull.peak)
		}
	}
}

// TestE11TelemetryOnlyUnderPCE: the pull planes' site optimizer samples
// its own border interfaces for free; only the PCE deployment spends
// telemetry messages (and only it may push MappingUpdates).
func TestE11TelemetryOnlyUnderPCE(t *testing.T) {
	ps := e11Scale(true)
	if r := e11RunCell(CPMSMR, "flash-crowd", 1, ps); r.telMsgs != 0 {
		t.Fatalf("MS/MR cell streamed %d telemetry messages", r.telMsgs)
	}
	if r := e11RunCell(CPPCE, "flash-crowd", 1, ps); r.telMsgs == 0 {
		t.Fatal("PCE cell streamed no telemetry")
	}
}

// TestE11EveryCPSurvivesEveryScenario smoke-runs the full grid at quick
// scale: every cell must carry traffic and account sanely.
func TestE11EveryCPSurvivesEveryScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("full E11 grid")
	}
	ps := e11Scale(true)
	for _, sc := range e11Scenarios {
		for _, cp := range AllCPs {
			r := e11RunCell(cp, sc.key, 7, ps)
			if r.delivered == 0 {
				t.Errorf("%s/%s: no inbound goodput", sc.key, cp)
			}
			if r.peak <= 0 {
				t.Errorf("%s/%s: peak utilization %v", sc.key, cp, r.peak)
			}
			if cp == CPPreinstalled && r.applies != 0 {
				t.Errorf("%s/ideal ran an optimizer: %d applies", sc.key, r.applies)
			}
		}
	}
}
