package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/pcelisp/pcelisp/internal/lisp"
	"github.com/pcelisp/pcelisp/internal/metrics"
	"github.com/pcelisp/pcelisp/internal/netaddr"
	"github.com/pcelisp/pcelisp/internal/packet"
	"github.com/pcelisp/pcelisp/internal/runner"
	"github.com/pcelisp/pcelisp/internal/simnet"
	"github.com/pcelisp/pcelisp/internal/workload"
)

// E9 measures map-cache scalability, the question Coras et al. (On the
// Scalability of LISP Mapping Caches) identify as the scaling limit of
// any pull-or-push LISP control plane: how does the miss rate move with
// cache size, eviction policy, and control plane under a Zipf-popularity,
// Poisson-arrival workload?
//
// E9a drives a bare MapCache (no network) through a synthetic
// resolver loop and sweeps capacity × eviction policy, reproducing the
// Coras-style miss-rate-vs-cache-size curves, with TTL expiry handled by
// the timing wheel and failed resolutions absorbed by the negative
// cache. E9b puts the same workload shape on full simulated worlds and
// sweeps control plane × capacity, reporting where each control plane's
// ITR state actually lives (prefix cache vs per-flow table) and what
// cache pressure does to it: pull planes (ALT/CONS/MS-MR) churn their
// prefix cache, NERD's pushed database stops fitting, and PCE-CP's
// per-flow entries track only active destinations.

// e9aResult is one (policy, capacity) sweep point of the synthetic cache
// driver.
type e9aResult struct {
	policy     string
	capacity   int
	stats      lisp.MapCacheStats
	workingSet int
	finalLen   int
}

// e9aParams sizes the synthetic sweep.
type e9aParams struct {
	prefixes   int     // destination population
	arrivals   int     // total lookups
	rate       float64 // Poisson arrivals per second
	skew       float64 // Zipf skew
	ttl        uint32  // mapping TTL seconds
	failProb   float64 // resolution failure probability
	capacities []int
}

func e9aScale(quick bool) e9aParams {
	if quick {
		return e9aParams{prefixes: 128, arrivals: 4000, rate: 200, skew: 1.2,
			ttl: 15, failProb: 0.02, capacities: []int{8, 16, 32}}
	}
	return e9aParams{prefixes: 512, arrivals: 30000, rate: 200, skew: 1.2,
		ttl: 60, failProb: 0.02, capacities: []int{16, 32, 64, 128}}
}

// e9aExperiment decomposes the synthetic sweep into one cell per
// (eviction policy, capacity) point. The cells are not CP-specific, so
// they run under any control-plane filter.
func e9aExperiment(seed int64, quick bool) ([]Cell, MergeFunc) {
	ps := e9aScale(quick)
	var cells []Cell
	idx := int64(0)
	for _, policy := range lisp.PolicyNames() {
		for _, capacity := range ps.capacities {
			policy, capacity, cellSeed := policy, capacity, seed*1009+idx
			idx++
			cells = append(cells, Cell{
				Label: fmt.Sprintf("%s/cap=%d", policy, capacity),
				Run:   func() interface{} { return e9aRunCell(cellSeed, policy, capacity, ps) },
			})
		}
	}
	merge := tableMerge(func(results []interface{}) *metrics.Table {
		tbl := metrics.NewTable(
			"E9a: miss rate vs cache size and eviction policy (synthetic Zipf/Poisson workload)",
			"policy", "capacity", "lookups", "miss %", "evictions", "expired", "neg hits", "working set", "live at last arrival")
		for _, r := range results {
			if r == nil {
				continue
			}
			c := r.(e9aResult)
			total := c.stats.Hits + c.stats.Misses
			missPct := 0.0
			if total > 0 {
				missPct = 100 * float64(c.stats.Misses) / float64(total)
			}
			tbl.AddRow(c.policy, c.capacity, total, missPct, c.stats.Evictions,
				c.stats.Expired, c.stats.NegativeHits, c.workingSet, c.finalLen)
		}
		tbl.AddNote("%d Zipf(s=%.1f) destinations, %d Poisson arrivals at %.0f/s, TTL %ds, %.0f%% resolution failures",
			ps.prefixes, ps.skew, ps.arrivals, ps.rate, ps.ttl, 100*ps.failProb)
		tbl.AddNote("expired counts timing-wheel batch retirements plus in-window lazy collections; neg hits are misses answered by the negative cache")
		return tbl
	})
	return cells, merge
}

// e9aRunCell drives one MapCache configuration through the synthetic
// workload: every miss starts a 100ms mock resolution (deduplicated, as
// an ITR would), a slice of which fail and land in the negative cache.
func e9aRunCell(seed int64, policy string, capacity int, ps e9aParams) e9aResult {
	sim := simnet.New(seed)
	factory, ok := lisp.PolicyByName(policy)
	if !ok {
		panic("e9: unknown policy " + policy)
	}
	cache := lisp.NewMapCacheWithPolicy(sim, capacity, factory(capacity))
	rng := sim.Rand()
	zipf := workload.NewZipf(rng, ps.prefixes, ps.skew)
	poisson := workload.NewPoisson(rng, ps.rate)
	locators := []packet.LISPLocator{{Priority: 1, Weight: 100, Reachable: true,
		Addr: netaddr.AddrFrom4(10, 99, 0, 1)}}
	prefixOf := func(i int) netaddr.Prefix {
		return netaddr.PrefixFrom(netaddr.AddrFrom4(100, byte(1+i/256), byte(i%256), 0), 24)
	}
	touched := make(map[int]bool)
	resolving := make(map[int]bool)
	done := 0
	liveAtEnd := 0
	var step func()
	step = func() {
		if done >= ps.arrivals {
			return
		}
		done++
		if done == ps.arrivals {
			// Occupancy while the workload is still hot; once arrivals
			// stop, the timing wheel (honestly) drains the cache to zero.
			defer func() { liveAtEnd = cache.Len() }()
		}
		i := zipf.Next()
		touched[i] = true
		eid := prefixOf(i).NthHost(1)
		if _, hit := cache.Lookup(eid); !hit {
			if !resolving[i] && !cache.HasNegative(eid) {
				resolving[i] = true
				fail := rng.Float64() < ps.failProb
				sim.ScheduleFunc(100*time.Millisecond, func() {
					delete(resolving, i)
					if fail {
						cache.InsertNegative(eid, 5)
					} else {
						cache.Insert(prefixOf(i), locators, ps.ttl)
					}
				})
			}
		}
		sim.ScheduleFunc(poisson.Next(), step)
	}
	sim.ScheduleFunc(0, step)
	sim.Run()
	return e9aResult{policy: policy, capacity: capacity, stats: cache.Stats(),
		workingSet: len(touched), finalLen: liveAtEnd}
}

// e9bResult is one (control plane, capacity) sweep point on a full
// world.
type e9bResult struct {
	cp         CP
	capacity   int
	cache      lisp.MapCacheStats
	cacheLen   int
	flowLen    int
	workingSet int
	drops      uint64
}

// e9bParams sizes the world sweep.
type e9bParams struct {
	domains    int
	arrivals   int
	rate       float64
	skew       float64
	cps        []CP
	capacities []int // 0 = unbounded baseline
}

func e9bScale(quick bool) e9bParams {
	if quick {
		return e9bParams{domains: 5, arrivals: 24, rate: 2, skew: 1.3,
			cps: []CP{CPMSMR, CPNERD, CPPCE}, capacities: []int{2, 0}}
	}
	return e9bParams{domains: 10, arrivals: 80, rate: 2, skew: 1.3,
		cps: comparisonCPs, capacities: []int{3, 0}}
}

// e9bExperiment decomposes the world sweep into one cell per (CP,
// capacity).
func e9bExperiment(seed int64, quick bool) ([]Cell, MergeFunc) {
	ps := e9bScale(quick)
	var cells []Cell
	for _, cp := range ps.cps {
		for _, capacity := range ps.capacities {
			cp, capacity := cp, capacity
			cells = append(cells, Cell{
				Label: fmt.Sprintf("%s/cap=%s", cp, capLabel(capacity)), CP: cp,
				Run: func() interface{} { return e9bRunCell(cp, seed, capacity, ps) },
			})
		}
	}
	merge := tableMerge(func(results []interface{}) *metrics.Table {
		tbl := metrics.NewTable(
			"E9b: per-control-plane ITR state under cache pressure (Zipf/Poisson flows from one domain)",
			"control plane", "capacity", "cache miss %", "evictions", "ITR cache", "ITR flows", "working set", "drops")
		for _, r := range results {
			if r == nil {
				continue
			}
			c := r.(e9bResult)
			total := c.cache.Hits + c.cache.Misses
			missPct := 0.0
			if total > 0 {
				missPct = 100 * float64(c.cache.Misses) / float64(total)
			}
			tbl.AddRow(string(c.cp), capLabel(c.capacity), missPct, c.cache.Evictions,
				c.cacheLen, c.flowLen, c.workingSet, c.drops)
		}
		tbl.AddNote("%d domains, %d Zipf(s=%.1f) destination draws at %.0f/s Poisson from domain 0; ITR columns are domain 0's xTR after the run",
			ps.domains, ps.arrivals, ps.skew, ps.rate)
		tbl.AddNote("working set = distinct destination domains drawn; drops = miss-policy losses (queue overflow/timeout)")
		return tbl
	})
	return cells, merge
}

func capLabel(capacity int) string {
	if capacity == 0 {
		return "inf"
	}
	return fmt.Sprintf("%d", capacity)
}

// e9bRunCell runs the Zipf/Poisson flow workload from domain 0 against
// one control plane at one cache capacity.
func e9bRunCell(cp CP, seed int64, capacity int, ps e9bParams) e9bResult {
	w := BuildWorld(WorldConfig{
		CP: cp, Domains: ps.domains, Seed: seed, HostsPerDomain: 1,
		MissPolicy: lisp.MissQueue, CacheCapacity: capacity,
	})
	w.Settle()
	// A dedicated deterministic source keeps the workload draw sequence
	// independent of how much randomness the control plane itself burns.
	rng := rand.New(rand.NewSource(seed*7919 + int64(capacity)*31 + 17))
	zipf := workload.NewZipf(rng, ps.domains-1, ps.skew)
	poisson := workload.NewPoisson(rng, ps.rate)
	touched := make(map[int]bool)
	launched := 0
	src := w.In.Domains[0].Hosts[0]
	var step func()
	step = func() {
		if launched >= ps.arrivals {
			return
		}
		launched++
		dd := 1 + zipf.Next()
		touched[dd] = true
		dst := w.In.Domains[dd].Hosts[0]
		src.DNS.Lookup(dst.Name, func(addr netaddr.Addr, _ simnet.Time, ok bool) {
			if ok {
				src.Node.SendUDP(src.Addr, addr, 40000, 9000, nil)
			}
		})
		w.Sim.ScheduleFunc(poisson.Next(), step)
	}
	w.Sim.ScheduleFunc(0, step)
	// The arrival chain is sequential; 2x the expected duration plus a
	// drain window covers the Poisson tail.
	w.RunFor(time.Duration(float64(ps.arrivals)/ps.rate)*2*time.Second + 30*time.Second)

	x := w.In.Domains[0].XTRs[0]
	return e9bResult{
		cp: cp, capacity: capacity,
		cache: x.Cache.Stats(), cacheLen: x.Cache.Len(), flowLen: x.Flows.Len(),
		workingSet: len(touched), drops: w.ITRDrops(),
	}
}

// E9CacheScalability runs E9 serially and returns its tables.
func E9CacheScalability(seed int64, quick bool) []*metrics.Table {
	e, _ := ByID("E9")
	cells, merge := e.Build(seed, quick)
	return merge(runCells("E9", cells, runner.Serial))
}
