package experiments

import (
	"fmt"
	"time"

	"github.com/pcelisp/pcelisp/internal/adversary"
	"github.com/pcelisp/pcelisp/internal/lisp"
	"github.com/pcelisp/pcelisp/internal/metrics"
	"github.com/pcelisp/pcelisp/internal/netaddr"
	"github.com/pcelisp/pcelisp/internal/packet"
	"github.com/pcelisp/pcelisp/internal/runner"
	"github.com/pcelisp/pcelisp/internal/simnet"
)

// E13 measures adversarial robustness: how each control plane holds up
// against an attacker inside the network, and what each defense layer
// buys. The paper's architectural claim is qualitative — the PCE's push
// channel runs between provisioned, mutually known elements, while the
// pull planes answer anyone who asks — so this experiment makes it
// quantitative along two axes:
//
// Cache poisoning. An adversary node (internal/adversary) mounts four
// attacks against the mappings domain 0 holds for domain 1: off-path
// Map-Reply spoofing (blind unsolicited forgeries), on-path spoofing
// (forgeries racing the legitimate reply with the observed nonce),
// on-path prefix overclaiming (a covering /8 answer hijacking a /16
// query), and on-path replay (captured legitimate records with mutated
// locators). Each attack runs against three defense profiles:
//
//   - "off":       nonce checking sloppy (pre-RFC-6830 gleaning), no
//     signatures — the exposure window of early implementations;
//   - "nonce":     strict nonce echo (the RFC 6830 default);
//   - "nonce+sig": strict nonces plus HMAC-signed replies and an
//     overclaim floor at /16.
//
// The PCECP channel keeps its provisioned key in every profile: per-plane
// key distribution is part of the PCE deployment story (the push channel
// is configured infrastructure), whereas the pull planes' signature
// profile models a PKI they historically did not have. The poisoned-cache
// rate is measured structurally — the fraction of (source ITR, remote
// host) pairs whose installed mapping steers to the attacker's locator —
// and corroborated by the bytes a post-attack data blast delivers
// straight into the attacker's blackhole.
//
// Flooding. The bounded-resolver model (MR service queue, PCED MapFetch
// service) is attacked directly: attackers drive rotating-EID requests at
// the resolution server of the plane under test while a legitimate flow
// tries to resolve mid-flood. The sweep crosses flood rate, attacker
// count and the per-source quota defense, and reports the legitimate
// flow's setup latency — quantifying the PCE's own single point of
// attack honestly: unverifiable MapFetch floods still consume PCED
// service budget, because signature checking happens at service time,
// not for free at the queue head.

// e13Scenario names one poisoning attack.
type e13Scenario struct {
	key    string
	kind   adversary.Kind
	onPath bool
	desc   string
}

var e13Scenarios = []e13Scenario{
	{key: "spoof-offpath", kind: adversary.Spoof, onPath: false,
		desc: "blind unsolicited forged Map-Replies at the ITR control addresses"},
	{key: "spoof-onpath", kind: adversary.Spoof, onPath: true,
		desc: "forgeries racing the legitimate reply with the observed nonce"},
	{key: "overclaim", kind: adversary.Overclaim, onPath: true,
		desc: "covering /8 answers hijacking /16 queries"},
	{key: "replay", kind: adversary.Replay, onPath: true,
		desc: "captured legitimate records replayed with mutated locators"},
}

// e13Profile names one defense profile.
type e13Profile struct {
	key string
	def DefenseConfig
}

// e13Profiles returns the defense sweep. PCEAuth stays on everywhere —
// the PCECP key is provisioned infrastructure, not an optional add-on.
func e13Profiles() []e13Profile {
	return []e13Profile{
		{key: "off", def: DefenseConfig{SloppyNonce: true, PCEAuth: true}},
		{key: "nonce", def: DefenseConfig{PCEAuth: true}},
		{key: "nonce+sig", def: DefenseConfig{
			SignReplies: true, PCEAuth: true, OverclaimFloor: 16}},
	}
}

// e13FloodVar is one flood sweep point.
type e13FloodVar struct {
	rate      int  // total flood requests/s across all attackers
	attackers int  // attacker nodes splitting the rate
	quota     bool // per-source quota defense on
}

// e13Params sizes the sweep.
type e13Params struct {
	hosts     int
	cps       []CP // poisoning control planes
	blindRate int  // off-path blind forgery rounds per second
	ttl       uint32
	nerdPoll  time.Duration
	tAttack   simnet.Time // attack window opens
	tWave1    simnet.Time // first flow wave (legitimate resolutions)
	tWave2    simnet.Time // second wave, after mapping TTL expiry
	tBlast    simnet.Time // data blast measuring blackholed bytes
	tEndP     simnet.Time // poisoning cell end
	blastPkts int         // blast packets per (src, dst) host pair

	floodCPs    []CP // planes with a bounded-resolver model
	floodVars   []e13FloodVar
	floodTTL    uint32
	serviceRate int // resolver/PCED service requests per second
	quota       int // per-source quota when the defense is on
	tFloodOn    simnet.Time
	tFloodOff   simnet.Time
	fWave1      simnet.Time // pre-flood resolution (seeds DNS + peer state)
	fWave2      simnet.Time // mid-flood resolution, the measured one
	tEndF       simnet.Time
}

func e13Scale(quick bool) e13Params {
	ps := e13Params{
		hosts: 2, cps: comparisonCPs, blindRate: 20,
		ttl: 6, nerdPoll: 4 * time.Second,
		tAttack: 3 * time.Second, tWave1: 4 * time.Second,
		tWave2: 11 * time.Second, tBlast: 13500 * time.Millisecond,
		tEndP: 15 * time.Second, blastPkts: 10,

		floodCPs: []CP{CPMSMR, CPPCE},
		floodVars: []e13FloodVar{
			{rate: 100, attackers: 1}, {rate: 400, attackers: 1},
			{rate: 2000, attackers: 1}, {rate: 2000, attackers: 4},
			{rate: 2000, attackers: 1, quota: true},
			{rate: 2000, attackers: 4, quota: true},
		},
		floodTTL: 5, serviceRate: 200, quota: 20,
		tFloodOn: 8 * time.Second, tFloodOff: 16 * time.Second,
		fWave1: 4 * time.Second, fWave2: 10 * time.Second,
		tEndF: 21 * time.Second,
	}
	if quick {
		ps.cps = []CP{CPMSMR, CPPCE}
		ps.floodVars = []e13FloodVar{
			{rate: 100, attackers: 1}, {rate: 2000, attackers: 1},
			{rate: 2000, attackers: 1, quota: true},
			{rate: 2000, attackers: 4, quota: true},
		}
	}
	return ps
}

// e13PoisonResult is one (scenario, profile, control plane) cell outcome.
type e13PoisonResult struct {
	cp       CP
	scenario string
	profile  string
	pairs    int // (source host, remote host) pairs measured
	poisoned int // pairs steered to the attacker's locator
	blackKB  float64
	flowsOK  int
	flows    int
	forged   uint64 // forged/replayed control messages sent
	rejected uint64 // forgeries stopped by a defense layer
	ctlKB    float64
}

// e13Overclaim is the covering prefix the overclaim attack asserts: the
// whole 100/8 EID space over the per-domain /16 sites.
var e13Overclaim = netaddr.PrefixFrom(netaddr.AddrFrom4(100, 0, 0, 0), 8)

const e13BlastPort = 7300

// e13PairPoisoned reports whether the mapping xtr would use for
// src -> dst steers the flow to the attacker.
func e13PairPoisoned(x *lisp.XTR, atk, src, dst netaddr.Addr) bool {
	if fe, ok := x.Flows.Lookup(lisp.FlowKey{Src: src, Dst: dst}); ok {
		return fe.DstRLOC == atk
	}
	if e, ok := x.Cache.Lookup(dst); ok {
		h := packet.NewFlow(packet.NewIPv4Endpoint(src), packet.NewIPv4Endpoint(dst)).FastHash()
		if loc, usable := e.SelectLocator(h); usable {
			return loc.Addr == atk
		}
	}
	return false
}

// e13Rejected sums the defense rejection counters over the whole world:
// ITR install rejections (overclaim floor, zero-locator), requester
// nonce/signature rejections, NERD poller page rejections, and PCECP
// auth rejections.
func e13Rejected(w *World) uint64 {
	var n uint64
	for _, d := range w.In.Domains {
		for _, x := range d.XTRs {
			n += x.Stats().MappingsRejected
		}
	}
	for _, req := range w.Requesters {
		if req != nil {
			n += req.Stats.AuthRejects + req.Stats.NonceMismatch
		}
	}
	for _, ps := range w.Pollers {
		for _, p := range ps {
			n += p.Stats.AuthRejects
		}
	}
	for _, p := range w.PCEs {
		if p != nil {
			n += p.Stats().AuthRejects
		}
	}
	return n
}

// e13CtlKB returns total control bytes sent by the world's control plane.
func e13CtlKB(w *World) float64 {
	_, bytes := w.ControlTotals()
	for _, p := range w.PCEs {
		if p != nil {
			bytes += p.Stats().TxControlBytes
		}
	}
	return float64(bytes) / 1024
}

// e13RunPoisonCell runs one control plane through one attack under one
// defense profile.
func e13RunPoisonCell(cp CP, scKey, prKey string, seed int64, ps e13Params) e13PoisonResult {
	var sc e13Scenario
	for _, s := range e13Scenarios {
		if s.key == scKey {
			sc = s
		}
	}
	var def DefenseConfig
	for _, p := range e13Profiles() {
		if p.key == prKey {
			def = p.def
		}
	}
	w := BuildWorld(WorldConfig{
		CP: cp, Domains: 2, HostsPerDomain: ps.hosts, Seed: seed,
		MissPolicy: lisp.MissQueue, MappingTTL: ps.ttl, NERDPoll: ps.nerdPoll,
		Defenses: def,
	})
	d0, d1 := w.In.Domains[0], w.In.Domains[1]

	var targets []netaddr.Addr
	for _, x := range d0.XTRs {
		targets = append(targets, x.RLOC())
	}
	acfg := adversary.Config{
		Kind: sc.kind, Octet: 60, OnPath: sc.onPath,
		Victims: []netaddr.Prefix{d1.EIDPrefix},
		Targets: targets, Start: ps.tAttack,
	}
	if sc.kind == adversary.Overclaim {
		acfg.ClaimPrefix = e13Overclaim
	}
	if !sc.onPath {
		acfg.Rate = ps.blindRate
	}
	if cp == CPNERD {
		// The poller's only keyless guard is a source check; spoof it.
		acfg.SpoofSrc = w.NERD.Authority.Addr()
	}
	atk := adversary.Attach(w.In, acfg)

	res := e13PoisonResult{cp: cp, scenario: scKey, profile: prKey}
	// Two flow waves: the first resolves legitimately, the second (after
	// the short mapping TTL expires) re-resolves inside the attack window
	// — the exchange the on-path attacker races.
	launch := func(at simnet.Time, off int) {
		for i := 0; i < ps.hosts; i++ {
			i := i
			w.Sim.AtFunc(at, func() {
				res.flows++
				w.StartFlow(0, i, 1, (i+off)%ps.hosts, func(r FlowResult) {
					if r.OK {
						res.flowsOK++
					}
				})
			})
		}
	}
	launch(ps.tWave1, 0)
	launch(ps.tWave2, 1)
	// The blast: every source host fires UDP at every remote host; bytes
	// at the attacker's data port were stolen by a poisoned mapping.
	w.Sim.AtFunc(ps.tBlast, func() {
		payload := make([]byte, 600)
		for _, src := range d0.Hosts {
			for _, dst := range d1.Hosts {
				for k := 0; k < ps.blastPkts; k++ {
					src.Node.SendUDP(src.Addr, dst.Addr, 40100, e13BlastPort,
						packet.Payload(payload))
				}
			}
		}
	})
	w.Settle()
	w.RunUntil(ps.tEndP)

	for _, src := range d0.Hosts {
		for _, dst := range d1.Hosts {
			res.pairs++
			for _, x := range d0.XTRs {
				if e13PairPoisoned(x, atk.Addr(), src.Addr, dst.Addr) {
					res.poisoned++
					break
				}
			}
		}
	}
	res.blackKB = float64(atk.Stats.BlackholedBytes) / 1024
	res.forged = atk.Stats.Forged
	res.rejected = e13Rejected(w)
	res.ctlKB = e13CtlKB(w)
	return res
}

// e13FloodResult is one flood sweep point outcome.
type e13FloodResult struct {
	cp        CP
	v         e13FloodVar
	ok        bool
	setup     simnet.Time // the mid-flood legitimate flow's setup (-1 = never)
	drops     uint64      // requests shed at the resolution server
	quotaHits uint64      // of which by the per-source quota
	floodSent uint64
}

// e13RunFloodCell floods the plane's resolution server while a
// legitimate flow resolves mid-window.
func e13RunFloodCell(cp CP, v e13FloodVar, seed int64, ps e13Params) e13FloodResult {
	def := DefenseConfig{PCEAuth: true, ResolverServiceRate: ps.serviceRate}
	if v.quota {
		def.SourceQuota = ps.quota
	}
	w := BuildWorld(WorldConfig{
		CP: cp, Domains: 2, HostsPerDomain: 2, Seed: seed,
		MissPolicy: lisp.MissQueue, MappingTTL: ps.floodTTL, Defenses: def,
	})
	var target netaddr.Addr
	if cp == CPPCE {
		target = w.PCEs[1].Addr() // the destination PCED answers MapFetch
	} else {
		target = w.MSMR.MR.Addr()
	}
	attackers := make([]*adversary.Attacker, v.attackers)
	for i := range attackers {
		attackers[i] = adversary.Attach(w.In, adversary.Config{
			Kind: adversary.Flood, Name: fmt.Sprintf("attacker-%d", i),
			Octet: byte(60 + i), Rate: v.rate / v.attackers,
			FloodTarget: target, FloodECM: cp != CPPCE, FloodPCECP: cp == CPPCE,
			Start: ps.tFloodOn, Stop: ps.tFloodOff,
		})
	}

	res := e13FloodResult{cp: cp, v: v, setup: -1}
	// Wave 1 seeds DNS caches, peer tables and (briefly) the mapping
	// caches; the short TTL expires them before wave 2, whose resolution
	// then has to traverse the flooded server: MS/MR re-resolves through
	// the MR, the PCE serves the cache-hit DNS answer via MapFetch.
	w.Sim.AtFunc(ps.fWave1, func() {
		w.StartFlow(0, 0, 1, 0, func(FlowResult) {})
	})
	done := false
	w.Sim.AtFunc(ps.fWave2, func() {
		w.StartFlow(0, 1, 1, 0, func(r FlowResult) {
			done, res.ok, res.setup = true, r.OK, r.Setup
		})
	})
	w.Settle()
	w.RunUntil(ps.tEndF)
	if !done {
		res.ok, res.setup = false, -1
	}
	for _, a := range attackers {
		res.floodSent += a.Stats.FloodSent
	}
	if cp == CPPCE {
		p := w.PCEs[1]
		res.drops = p.Stats().FetchQueueDrops + p.Stats().FetchQuotaDrops
		res.quotaHits = p.Stats().FetchQuotaDrops
	} else {
		mr := w.MSMR.MR
		res.drops = mr.Stats().QueueDrops + mr.Stats().QuotaDrops
		res.quotaHits = mr.Stats().QuotaDrops
	}
	return res
}

// e13PoisonExperiment decomposes the poisoning sweep into one cell per
// (scenario, profile, control plane).
func e13PoisonExperiment(seed int64, ps e13Params) ([]Cell, MergeFunc) {
	var cells []Cell
	for _, sc := range e13Scenarios {
		for _, pr := range e13Profiles() {
			for _, cp := range ps.cps {
				sc, pr, cp := sc, pr, cp
				cells = append(cells, Cell{
					Label: fmt.Sprintf("%s+%s/%s", sc.key, pr.key, cp),
					CP:    cp,
					Run: func() interface{} {
						return e13RunPoisonCell(cp, sc.key, pr.key, seed, ps)
					},
				})
			}
		}
	}
	merge := tableMerge(func(results []interface{}) *metrics.Table {
		tbl := metrics.NewTable(
			"E13a: control-plane cache poisoning by attack and defense profile",
			"attack", "defenses", "control plane", "poisoned", "blackholed KB",
			"flows ok", "forged", "rejected", "ctl KB")
		for _, r := range results {
			if r == nil {
				continue
			}
			c := r.(e13PoisonResult)
			tbl.AddRow(c.scenario, c.profile, string(c.cp),
				fmt.Sprintf("%d/%d", c.poisoned, c.pairs),
				fmt.Sprintf("%.1f", c.blackKB),
				fmt.Sprintf("%d/%d", c.flowsOK, c.flows),
				c.forged, c.rejected, fmt.Sprintf("%.1f", c.ctlKB))
		}
		tbl.AddNote("poisoned = (source ITR, remote host) pairs whose installed mapping steers to the attacker; blackholed = bytes of a post-attack data blast delivered to the attacker's locator")
		tbl.AddNote("defenses off = sloppy nonces + reply gleaning; nonce = strict nonce echo (RFC 6830); nonce+sig adds HMAC-signed replies and a /16 overclaim floor; the PCECP channel keeps its provisioned key in every profile")
		tbl.AddNote("rejected sums floor/zero-locator install refusals, nonce and signature reply rejections, NERD page rejections and PCECP auth rejections")
		return tbl
	})
	return cells, merge
}

// e13FloodExperiment decomposes the flood sweep into one cell per
// (variant, control plane).
func e13FloodExperiment(seed int64, ps e13Params) ([]Cell, MergeFunc) {
	var cells []Cell
	for _, v := range ps.floodVars {
		for _, cp := range ps.floodCPs {
			v, cp := v, cp
			q := "off"
			if v.quota {
				q = "on"
			}
			cells = append(cells, Cell{
				Label: fmt.Sprintf("flood-r%d-a%d-q%s/%s", v.rate, v.attackers, q, cp),
				CP:    cp,
				Run: func() interface{} {
					return e13RunFloodCell(cp, v, seed, ps)
				},
			})
		}
	}
	merge := tableMerge(func(results []interface{}) *metrics.Table {
		tbl := metrics.NewTable(
			"E13b: resolution under control-plane flooding (legitimate flow mid-flood)",
			"control plane", "flood req/s", "attackers", "quota", "flow ok",
			"setup s", "server drops", "quota drops", "flood sent")
		for _, r := range results {
			if r == nil {
				continue
			}
			c := r.(e13FloodResult)
			q := "off"
			if c.v.quota {
				q = "on"
			}
			setup := "never"
			if c.setup >= 0 {
				setup = fmt.Sprintf("%.2f", float64(c.setup)/float64(time.Second))
			}
			ok := "no"
			if c.ok {
				ok = "yes"
			}
			tbl.AddRow(string(c.cp), c.v.rate, c.v.attackers, q, ok, setup,
				c.drops, c.quotaHits, c.floodSent)
		}
		tbl.AddNote("resolver/PCED service bounded at %d req/s (queue 64); flood window %v-%v against the MR (MS/MR) or the remote PCED's MapFetch service (PCE-CP); the measured flow resolves at %v",
			ps.serviceRate, ps.tFloodOn, ps.tFloodOff, ps.fWave2)
		tbl.AddNote("quota = per-source limit of %d req/s in front of the service queue; unverifiable PCECP floods still cost PCED service (signatures check at service time), so only the quota shields the queue",
			ps.quota)
		return tbl
	})
	return cells, merge
}

// e13Experiment assembles the two sweeps (E8-style composite).
func e13Experiment(seed int64, quick bool) ([]Cell, MergeFunc) {
	ps := e13Scale(quick)
	pCells, pMerge := e13PoisonExperiment(seed, ps)
	fCells, fMerge := e13FloodExperiment(seed, ps)
	cells := make([]Cell, 0, len(pCells)+len(fCells))
	cells = append(cells, pCells...)
	cells = append(cells, fCells...)
	np := len(pCells)
	merge := func(results []interface{}) []*metrics.Table {
		var out []*metrics.Table
		out = append(out, pMerge(results[:np])...)
		out = append(out, fMerge(results[np:])...)
		return out
	}
	return cells, merge
}

// E13AdversarialRobustness runs E13 serially and returns its tables.
func E13AdversarialRobustness(seed int64, quick bool) []*metrics.Table {
	cells, merge := e13Experiment(seed, quick)
	return merge(runCells("E13", cells, runner.Serial))
}
