package experiments

import (
	"time"

	"github.com/pcelisp/pcelisp/internal/metrics"
	"github.com/pcelisp/pcelisp/internal/runner"
)

// Experiment is one entry of the reproduction's evaluation suite. An
// experiment is defined by its cell decomposition: Build returns the
// independent units of work (one simulated world each) plus the merge
// that folds their results into paper-style tables. Run and RunWorkers
// are thin serial-or-parallel dispatchers over that decomposition.
type Experiment struct {
	// ID is the experiment identifier ("E1" ... "E9").
	ID string
	// Title describes what it measures.
	Title string
	// Claim ties it to the paper.
	Claim string
	// Build returns the experiment's cells in canonical table order at
	// the given scale (quick = the test-suite settings), and the merge
	// folding cell results into tables.
	Build func(seed int64, quick bool) ([]Cell, MergeFunc)
}

// Cells exposes the experiment's cell decomposition without running it.
func (e Experiment) Cells(seed int64, quick bool) []Cell {
	cells, _ := e.Build(seed, quick)
	return cells
}

// Run executes the experiment serially and returns its tables — the
// historical monolithic entry point, kept as a dispatcher over the cells.
func (e Experiment) Run(seed int64, quick bool) []*metrics.Table {
	return e.RunWorkers(seed, quick, runner.Serial)
}

// RunWorkers fans the experiment's independent cells across a worker pool
// (runner.Auto sizes it to GOMAXPROCS) and merges the results in
// canonical order. For a given seed the rendered tables are byte-identical
// to Run's, whatever the worker count.
func (e Experiment) RunWorkers(seed int64, quick bool, workers int) []*metrics.Table {
	cells, merge := e.Build(seed, quick)
	return merge(runCells(e.ID, cells, workers))
}

// RunCPs is RunWorkers restricted to cells whose control plane is in
// keep; cells not tied to a CP always run. The merge sees nil results for
// skipped cells and omits their rows. An empty keep set runs everything.
func (e Experiment) RunCPs(seed int64, quick bool, workers int, keep []CP) []*metrics.Table {
	cells, merge := e.Build(seed, quick)
	if len(keep) == 0 {
		return merge(runCells(e.ID, cells, workers))
	}
	want := make(map[CP]bool, len(keep))
	for _, cp := range keep {
		want[cp] = true
	}
	var selected []Cell
	var position []int
	for i, c := range cells {
		if c.CP == "" || want[c.CP] {
			selected = append(selected, c)
			position = append(position, i)
		}
	}
	values := runCells(e.ID, selected, workers)
	full := make([]interface{}, len(cells))
	for i, v := range values {
		full[position[i]] = v
	}
	return merge(full)
}

// All returns the experiment suite in order.
func All() []Experiment {
	return []Experiment{
		{
			ID:    "E1",
			Title: "Packet loss during mapping resolution",
			Claim: "claim (i): no drops or queueing during resolution",
			Build: func(seed int64, quick bool) ([]Cell, MergeFunc) {
				domains := 6
				if quick {
					domains = 3
				}
				return e1Experiment(seed, domains, 10, 20*time.Millisecond)
			},
		},
		{
			ID:    "E2",
			Title: "TCP connection setup latency",
			Claim: "weakness W2 / claim (ii): setup inflates by Tmap (or an RTO) without the PCE",
			Build: func(seed int64, quick bool) ([]Cell, MergeFunc) {
				domains := 6
				if quick {
					domains = 3
				}
				return e2Experiment(seed, domains)
			},
		},
		{
			ID:    "E3",
			Title: "Mapping readiness within DNS time",
			Claim: "claim (ii): (TDNS + Tmap)/TDNS ~= 1",
			Build: func(seed int64, quick bool) ([]Cell, MergeFunc) {
				domains, flows := 6, 60
				if quick {
					domains, flows = 3, 15
				}
				return e3Experiment(seed, domains, flows)
			},
		},
		{
			ID:    "E4",
			Title: "Upstream/downstream traffic engineering",
			Claim: "claim (iii): both directions engineered by re-pushing mappings",
			Build: func(seed int64, quick bool) ([]Cell, MergeFunc) {
				remotes := 4
				if quick {
					remotes = 2
				}
				return e4Experiment(seed, remotes)
			},
		},
		{
			ID:    "E5",
			Title: "Control-plane overhead",
			Claim: "comparison against ALT/CONS/NERD/MS-MR message and state cost",
			Build: func(seed int64, quick bool) ([]Cell, MergeFunc) {
				domains := 8
				if quick {
					domains = 4
				}
				return e5Experiment(seed, domains)
			},
		},
		{
			ID:    "E6",
			Title: "Two-way mapping resolution time",
			Claim: "ETR multicast completes both directions on the first data packet",
			Build: func(seed int64, quick bool) ([]Cell, MergeFunc) {
				trials := 5
				if quick {
					trials = 2
				}
				return e6Experiment(seed, trials)
			},
		},
		{
			ID:    "E7",
			Title: "Scalability with domain count",
			Claim: "substrate comparison: where each control plane's cost grows",
			Build: func(seed int64, quick bool) ([]Cell, MergeFunc) {
				counts := []int{8, 16, 32}
				if quick {
					counts = []int{4, 8}
				}
				return e7Experiment(seed, counts, 5)
			},
		},
		{
			ID:    "E8",
			Title: "Robustness ablations",
			Claim: "race margin, PCE-failure fallback, queue-palliative memory",
			Build: func(seed int64, quick bool) ([]Cell, MergeFunc) {
				trials, burst := 10, 8
				if quick {
					trials, burst = 3, 4
				}
				aCells, aMerge := e8aExperiment(seed, trials)
				bCells, bMerge := e8bExperiment(seed)
				cCells, cMerge := e8cExperiment(seed, burst)
				cells := make([]Cell, 0, len(aCells)+len(bCells)+len(cCells))
				cells = append(cells, aCells...)
				cells = append(cells, bCells...)
				cells = append(cells, cCells...)
				na, nb := len(aCells), len(bCells)
				merge := func(results []interface{}) []*metrics.Table {
					var out []*metrics.Table
					out = append(out, aMerge(results[:na])...)
					out = append(out, bMerge(results[na:na+nb])...)
					out = append(out, cMerge(results[na+nb:])...)
					return out
				}
				return cells, merge
			},
		},
		{
			ID:    "E9",
			Title: "Map-cache scalability under Zipf/Poisson load",
			Claim: "Coras et al.: miss rate vs cache size is the scaling question; sweep capacity x eviction policy x control plane",
			Build: func(seed int64, quick bool) ([]Cell, MergeFunc) {
				aCells, aMerge := e9aExperiment(seed, quick)
				bCells, bMerge := e9bExperiment(seed, quick)
				cells := make([]Cell, 0, len(aCells)+len(bCells))
				cells = append(cells, aCells...)
				cells = append(cells, bCells...)
				na := len(aCells)
				merge := func(results []interface{}) []*metrics.Table {
					var out []*metrics.Table
					out = append(out, aMerge(results[:na])...)
					out = append(out, bMerge(results[na:])...)
					return out
				}
				return cells, merge
			},
		},
		{
			ID:    "E10",
			Title: "Failure injection and reconvergence",
			Claim: "probe-fed mapping pushes reconverge in seconds; pull caches blackhole until TTL expiry",
			Build: func(seed int64, quick bool) ([]Cell, MergeFunc) {
				return e10Experiment(seed, quick)
			},
		},
		{
			ID:    "E11",
			Title: "Closed-loop inbound TE under congestion",
			Claim: "load-driven weight recomputation reaches remote encapsulators in one RTT via mapping pushes; pull planes wait out TTLs",
			Build: func(seed int64, quick bool) ([]Cell, MergeFunc) {
				return e11Experiment(seed, quick)
			},
		},
		{
			ID:    "E12",
			Title: "Miss rate vs cache capacity at internet scale",
			Claim: "Coras et al. power law reproduced on a sharded 100k-prefix/1M-EID world",
			Build: func(seed int64, quick bool) ([]Cell, MergeFunc) {
				return e12Experiment(seed, quick)
			},
		},
		{
			ID:    "E13",
			Title: "Adversarial robustness: poisoning and flooding",
			Claim: "open pull planes are poisonable without nonce+signature defenses; the provisioned PCECP channel is not, and its flood exposure is the bounded PCED service",
			Build: func(seed int64, quick bool) ([]Cell, MergeFunc) {
				return e13Experiment(seed, quick)
			},
		},
	}
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}
