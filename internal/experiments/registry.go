package experiments

import (
	"time"

	"github.com/pcelisp/pcelisp/internal/metrics"
)

// Experiment is one entry of the reproduction's evaluation suite.
type Experiment struct {
	// ID is the experiment identifier ("E1" ... "E8").
	ID string
	// Title describes what it measures.
	Title string
	// Claim ties it to the paper.
	Claim string
	// Run executes the experiment at the given scale (0 = default) and
	// returns its tables.
	Run func(seed int64, quick bool) []*metrics.Table
}

// All returns the experiment suite in order.
func All() []Experiment {
	return []Experiment{
		{
			ID:    "E1",
			Title: "Packet loss during mapping resolution",
			Claim: "claim (i): no drops or queueing during resolution",
			Run: func(seed int64, quick bool) []*metrics.Table {
				domains := 6
				if quick {
					domains = 3
				}
				return []*metrics.Table{E1DropsDuringResolution(seed, domains, 10, 20*time.Millisecond)}
			},
		},
		{
			ID:    "E2",
			Title: "TCP connection setup latency",
			Claim: "weakness W2 / claim (ii): setup inflates by Tmap (or an RTO) without the PCE",
			Run: func(seed int64, quick bool) []*metrics.Table {
				domains := 6
				if quick {
					domains = 3
				}
				return []*metrics.Table{E2HandshakeLatency(seed, domains)}
			},
		},
		{
			ID:    "E3",
			Title: "Mapping readiness within DNS time",
			Claim: "claim (ii): (TDNS + Tmap)/TDNS ~= 1",
			Run: func(seed int64, quick bool) []*metrics.Table {
				domains, flows := 6, 60
				if quick {
					domains, flows = 3, 15
				}
				tbl, _ := E3MappingWithinDNS(seed, domains, flows)
				return []*metrics.Table{tbl}
			},
		},
		{
			ID:    "E4",
			Title: "Upstream/downstream traffic engineering",
			Claim: "claim (iii): both directions engineered by re-pushing mappings",
			Run: func(seed int64, quick bool) []*metrics.Table {
				remotes := 4
				if quick {
					remotes = 2
				}
				return []*metrics.Table{E4TrafficEngineering(seed, remotes)}
			},
		},
		{
			ID:    "E5",
			Title: "Control-plane overhead",
			Claim: "comparison against ALT/CONS/NERD/MS-MR message and state cost",
			Run: func(seed int64, quick bool) []*metrics.Table {
				domains := 8
				if quick {
					domains = 4
				}
				return []*metrics.Table{E5ControlOverhead(seed, domains)}
			},
		},
		{
			ID:    "E6",
			Title: "Two-way mapping resolution time",
			Claim: "ETR multicast completes both directions on the first data packet",
			Run: func(seed int64, quick bool) []*metrics.Table {
				trials := 5
				if quick {
					trials = 2
				}
				return []*metrics.Table{E6TwoWayResolution(seed, trials)}
			},
		},
		{
			ID:    "E7",
			Title: "Scalability with domain count",
			Claim: "substrate comparison: where each control plane's cost grows",
			Run: func(seed int64, quick bool) []*metrics.Table {
				counts := []int{8, 16, 32}
				if quick {
					counts = []int{4, 8}
				}
				return []*metrics.Table{E7Scalability(seed, counts, 5)}
			},
		},
		{
			ID:    "E8",
			Title: "Robustness ablations",
			Claim: "race margin, PCE-failure fallback, queue-palliative memory",
			Run: func(seed int64, quick bool) []*metrics.Table {
				trials, burst := 10, 8
				if quick {
					trials, burst = 3, 4
				}
				return []*metrics.Table{
					E8RaceMargin(seed, trials),
					E8PCEFailureFallback(seed),
					E8QueueMemory(seed, burst),
				}
			},
		},
	}
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}
