package experiments

import (
	"github.com/pcelisp/pcelisp/internal/metrics"
	"github.com/pcelisp/pcelisp/internal/runner"
)

// Cell is one independent unit of an experiment. Each cell builds and
// owns its own simulation world, which is what makes the parallel engine
// safe: cells share nothing but the seed arithmetic that created them.
type Cell struct {
	// Label identifies the cell within its experiment — usually the
	// control plane under test, plus a variant or trial suffix.
	Label string
	// CP is the control plane the cell exercises. Empty means the cell is
	// not CP-specific (like E4's single TE world) and always runs, even
	// under a control-plane filter.
	CP CP
	// Run executes the cell and returns its partial result for the
	// experiment's merge step.
	Run func() interface{}
}

// MergeFunc folds per-cell results — ordered exactly as the cells were,
// with nil where a cell was filtered out — into rendered tables. Merging
// in canonical cell order is what keeps parallel output byte-identical to
// the serial path.
type MergeFunc func(results []interface{}) []*metrics.Table

// runCells executes cells across `workers` goroutines (runner.Serial for
// the classic in-order path) and returns their values in canonical order.
func runCells(experiment string, cells []Cell, workers int) []interface{} {
	rcs := make([]runner.Cell, len(cells))
	for i, c := range cells {
		rcs[i] = runner.Cell{Experiment: experiment, Label: c.Label, Run: c.Run}
	}
	return runner.Values(runner.Run(rcs, workers))
}

// tableMerge lifts a single-table merge into a MergeFunc.
func tableMerge(m func(results []interface{}) *metrics.Table) MergeFunc {
	return func(results []interface{}) []*metrics.Table {
		return []*metrics.Table{m(results)}
	}
}
