package experiments

import (
	"time"

	"github.com/pcelisp/pcelisp/internal/lisp"
	"github.com/pcelisp/pcelisp/internal/metrics"
)

// E2HandshakeLatency quantifies the paper's latency analysis (weakness W2
// and claim ii): TCP connection setup time per control plane, against the
// idealized reference TDNS + 2*OWD(S,D) + OWD(D,S).
//
// Under drop-policy ITRs, a cold flow's SYN dies at the ITR and pays the
// RFC 6298 1-second RTO — the hidden cost the paper highlights. Under
// queue policy the SYN waits out Tmap. Under PCE-CP the mapping precedes
// the SYN, so setup matches the reference.
func E2HandshakeLatency(seed int64, domains int) *metrics.Table {
	if domains < 2 {
		domains = 6
	}
	tbl := metrics.NewTable(
		"E2: TCP connection setup on cold flows (DNS start -> established)",
		"control plane", "miss policy", "flows ok", "mean setup", "p95 setup", "mean handshake", "SYN rtx/flow")

	type variant struct {
		cp     CP
		policy lisp.MissPolicy
	}
	variants := []variant{
		{CPPreinstalled, lisp.MissDrop},
		{CPALT, lisp.MissDrop},
		{CPALT, lisp.MissQueue},
		{CPCONS, lisp.MissDrop},
		{CPMSMR, lisp.MissDrop},
		{CPMSMR, lisp.MissQueue},
		{CPNERD, lisp.MissDrop},
		{CPPCE, lisp.MissDrop},
	}
	for _, v := range variants {
		w := BuildWorld(WorldConfig{CP: v.cp, Domains: domains, Seed: seed, MissPolicy: v.policy})
		w.Settle()
		setup := metrics.NewSummary("setup")
		handshake := metrics.NewSummary("handshake")
		rtx := 0
		okFlows := 0
		for dd := 1; dd < domains; dd++ {
			dd := dd
			w.Sim.Schedule(time.Duration(dd-1)*3*time.Second, func() {
				w.StartFlow(0, 0, dd, 0, func(res FlowResult) {
					if !res.OK {
						return
					}
					okFlows++
					setup.AddDuration(res.Setup)
					handshake.AddDuration(res.Handshake)
					rtx += res.Retransmits
				})
			})
		}
		w.Sim.RunFor(time.Duration(domains*3+30) * time.Second)
		tbl.AddRow(string(v.cp), v.policy.String(), okFlows,
			metrics.FormatMs(setup.Mean()), metrics.FormatMs(setup.P95()),
			metrics.FormatMs(handshake.Mean()),
			float64(rtx)/float64(max(okFlows, 1)))
	}
	tbl.AddNote("reference row 'ideal' is TDNS + 3 one-way delays; the paper's claim is that PCE-CP matches it")
	return tbl
}
