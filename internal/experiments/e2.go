package experiments

import (
	"time"

	"github.com/pcelisp/pcelisp/internal/lisp"
	"github.com/pcelisp/pcelisp/internal/metrics"
	"github.com/pcelisp/pcelisp/internal/runner"
)

// E2 quantifies the paper's latency analysis (weakness W2 and claim ii):
// TCP connection setup time per control plane, against the idealized
// reference TDNS + 2*OWD(S,D) + OWD(D,S).
//
// Under drop-policy ITRs, a cold flow's SYN dies at the ITR and pays the
// RFC 6298 1-second RTO — the hidden cost the paper highlights. Under
// queue policy the SYN waits out Tmap. Under PCE-CP the mapping precedes
// the SYN, so setup matches the reference.

// e2Result is one (control plane, miss policy) variant's setup latencies.
type e2Result struct {
	cp        CP
	policy    lisp.MissPolicy
	okFlows   int
	setup     *metrics.Summary
	handshake *metrics.Summary
	rtx       int
}

// e2Experiment decomposes E2 into one cell per (CP, miss-policy) variant.
func e2Experiment(seed int64, domains int) ([]Cell, MergeFunc) {
	if domains < 2 {
		domains = 6
	}
	type variant struct {
		cp     CP
		policy lisp.MissPolicy
	}
	variants := []variant{
		{CPPreinstalled, lisp.MissDrop},
		{CPALT, lisp.MissDrop},
		{CPALT, lisp.MissQueue},
		{CPCONS, lisp.MissDrop},
		{CPMSMR, lisp.MissDrop},
		{CPMSMR, lisp.MissQueue},
		{CPNERD, lisp.MissDrop},
		{CPPCE, lisp.MissDrop},
	}
	cells := make([]Cell, len(variants))
	for i, v := range variants {
		v := v
		cells[i] = Cell{Label: string(v.cp) + "/" + v.policy.String(), CP: v.cp, Run: func() interface{} {
			return e2RunCell(v.cp, v.policy, seed, domains)
		}}
	}
	merge := tableMerge(func(results []interface{}) *metrics.Table {
		tbl := metrics.NewTable(
			"E2: TCP connection setup on cold flows (DNS start -> established)",
			"control plane", "miss policy", "flows ok", "mean setup", "p95 setup", "mean handshake", "SYN rtx/flow")
		for _, r := range results {
			if r == nil {
				continue
			}
			c := r.(e2Result)
			tbl.AddRow(string(c.cp), c.policy.String(), c.okFlows,
				metrics.FormatMs(c.setup.Mean()), metrics.FormatMs(c.setup.P95()),
				metrics.FormatMs(c.handshake.Mean()),
				float64(c.rtx)/float64(max(c.okFlows, 1)))
		}
		tbl.AddNote("reference row 'ideal' is TDNS + 3 one-way delays; the paper's claim is that PCE-CP matches it")
		return tbl
	})
	return cells, merge
}

// e2RunCell measures setup latency for one variant's world.
func e2RunCell(cp CP, policy lisp.MissPolicy, seed int64, domains int) e2Result {
	w := BuildWorld(WorldConfig{CP: cp, Domains: domains, Seed: seed, MissPolicy: policy})
	w.Settle()
	res := e2Result{cp: cp, policy: policy,
		setup: metrics.NewSummary("setup"), handshake: metrics.NewSummary("handshake")}
	for dd := 1; dd < domains; dd++ {
		dd := dd
		w.Sim.ScheduleFunc(time.Duration(dd-1)*3*time.Second, func() {
			w.StartFlow(0, 0, dd, 0, func(fr FlowResult) {
				if !fr.OK {
					return
				}
				res.okFlows++
				res.setup.AddDuration(fr.Setup)
				res.handshake.AddDuration(fr.Handshake)
				res.rtx += fr.Retransmits
			})
		})
	}
	w.RunFor(time.Duration(domains*3+30) * time.Second)
	return res
}

// E2HandshakeLatency runs E2 serially and returns its table.
func E2HandshakeLatency(seed int64, domains int) *metrics.Table {
	cells, merge := e2Experiment(seed, domains)
	return merge(runCells("E2", cells, runner.Serial))[0]
}
