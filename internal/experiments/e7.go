package experiments

import (
	"fmt"
	"time"

	"github.com/pcelisp/pcelisp/internal/metrics"
	"github.com/pcelisp/pcelisp/internal/netaddr"
	"github.com/pcelisp/pcelisp/internal/runner"
	"github.com/pcelisp/pcelisp/internal/simnet"
)

// E7 sweeps the number of domains and reports how each control plane's
// latency and state scale: ALT resolution grows with overlay depth and
// concentrates prefixes at the root; NERD state at every ITR grows with
// the whole internet; PCE-CP latency stays flat (it rides DNS) and its
// per-domain state tracks only active destinations.

// e7CPs lists the control planes E7 sweeps, in table order.
var e7CPs = []CP{CPALT, CPNERD, CPPCE}

// e7Result is one (CP, domain count) sweep point.
type e7Result struct {
	cp       CP
	domains  int
	ready    *metrics.Summary
	rootSize int
	state    int
	bytes    uint64
}

// e7Experiment decomposes the sweep into one cell per (CP, domain count);
// the biggest worlds no longer serialize behind each other.
func e7Experiment(seed int64, domainCounts []int, sampleFlows int) ([]Cell, MergeFunc) {
	if len(domainCounts) == 0 {
		domainCounts = []int{8, 16, 32}
	}
	if sampleFlows == 0 {
		sampleFlows = 5
	}
	var cells []Cell
	for _, cp := range e7CPs {
		cp := cp
		for _, n := range domainCounts {
			n := n
			cells = append(cells, Cell{Label: fmt.Sprintf("%s@%d", cp, n), CP: cp,
				Run: func() interface{} { return e7RunCell(cp, seed, n, sampleFlows) }})
		}
	}
	merge := tableMerge(func(results []interface{}) *metrics.Table {
		tbl := metrics.NewTable(
			"E7: scaling with the number of domains",
			"control plane", "domains", "mapping-ready mean", "root/DB prefixes", "ITR state/domain", "ctl KB total")
		for _, r := range results {
			if r == nil {
				continue
			}
			c := r.(e7Result)
			tbl.AddRow(string(c.cp), c.domains, metrics.FormatMs(c.ready.Mean()), c.rootSize,
				float64(c.state)/float64(c.domains), float64(c.bytes)/1024)
		}
		tbl.AddNote("mapping-ready = flow start (DNS query) to usable mapping at the source ITR, %d sampled cold flows", sampleFlows)
		return tbl
	})
	return cells, merge
}

// e7RunCell measures one control plane at one internet size.
func e7RunCell(cp CP, seed int64, n, sampleFlows int) e7Result {
	w := BuildWorld(WorldConfig{CP: cp, Domains: n, Seed: seed, HostsPerDomain: 1})
	w.Settle()
	ready := metrics.NewSummary("ready")
	for i := 0; i < sampleFlows; i++ {
		dd := 1 + (i*(n-1))/sampleFlows
		if dd >= n {
			dd = n - 1
		}
		w.Sim.ScheduleFunc(time.Duration(i)*2*time.Second, func() {
			start := w.Sim.Now()
			src := w.In.Domains[0].Hosts[0]
			dst := w.In.Domains[dd].Hosts[0]
			src.DNS.Lookup(dst.Name, func(addr netaddr.Addr, _ simnet.Time, ok bool) {
				if !ok {
					return
				}
				// Kick resolution with a data packet; readiness is
				// recorded by the harness instrumentation.
				src.Node.SendUDP(src.Addr, addr, 40000, 9000, nil)
				w.Sim.ScheduleFunc(20*time.Second, func() {
					if at, found := w.MappingReadyAt(dst.Addr); found {
						d := at - start
						if d < 0 {
							d = 0 // ready before the flow began (NERD push)
						}
						ready.AddDuration(d)
					}
				})
			})
		})
	}
	w.RunFor(time.Duration(sampleFlows)*2*time.Second + 30*time.Second)

	rootSize := 0
	switch {
	case w.ALT != nil:
		rootSize = w.ALT.RootTableSize()
	case w.NERD != nil:
		rootSize = w.NERD.Authority.DatabaseSize()
	default:
		// PCE-CP has no global component; count the source PCE's learned
		// remote mappings.
		rootSize = w.PCEs[0].RemoteMappings().Len()
	}
	_, bytes := w.ControlTotals()
	return e7Result{cp: cp, domains: n, ready: ready, rootSize: rootSize,
		state: w.ITRStateEntries(), bytes: bytes}
}

// E7Scalability runs E7 serially and returns its table.
func E7Scalability(seed int64, domainCounts []int, sampleFlows int) *metrics.Table {
	cells, merge := e7Experiment(seed, domainCounts, sampleFlows)
	return merge(runCells("E7", cells, runner.Serial))[0]
}
