package experiments

import (
	"time"

	"github.com/pcelisp/pcelisp/internal/metrics"
	"github.com/pcelisp/pcelisp/internal/netaddr"
	"github.com/pcelisp/pcelisp/internal/simnet"
)

// E7Scalability sweeps the number of domains and reports how each control
// plane's latency and state scale: ALT resolution grows with overlay
// depth and concentrates prefixes at the root; NERD state at every ITR
// grows with the whole internet; PCE-CP latency stays flat (it rides DNS)
// and its per-domain state tracks only active destinations.
func E7Scalability(seed int64, domainCounts []int, sampleFlows int) *metrics.Table {
	if len(domainCounts) == 0 {
		domainCounts = []int{8, 16, 32}
	}
	if sampleFlows == 0 {
		sampleFlows = 5
	}
	tbl := metrics.NewTable(
		"E7: scaling with the number of domains",
		"control plane", "domains", "mapping-ready mean", "root/DB prefixes", "ITR state/domain", "ctl KB total")

	for _, cp := range []CP{CPALT, CPNERD, CPPCE} {
		for _, n := range domainCounts {
			w := BuildWorld(WorldConfig{CP: cp, Domains: n, Seed: seed, HostsPerDomain: 1})
			w.Settle()
			ready := metrics.NewSummary("ready")
			for i := 0; i < sampleFlows; i++ {
				dd := 1 + (i*(n-1))/sampleFlows
				if dd >= n {
					dd = n - 1
				}
				w.Sim.Schedule(time.Duration(i)*2*time.Second, func() {
					start := w.Sim.Now()
					src := w.In.Domains[0].Hosts[0]
					dst := w.In.Domains[dd].Hosts[0]
					src.DNS.Lookup(dst.Name, func(addr netaddr.Addr, _ simnet.Time, ok bool) {
						if !ok {
							return
						}
						// Kick resolution with a data packet; readiness is
						// recorded by the harness instrumentation.
						src.Node.SendUDP(src.Addr, addr, 40000, 9000, nil)
						w.Sim.Schedule(20*time.Second, func() {
							if at, found := w.MappingReadyAt(dst.Addr); found {
								d := at - start
								if d < 0 {
									d = 0 // ready before the flow began (NERD push)
								}
								ready.AddDuration(d)
							}
						})
					})
				})
			}
			w.Sim.RunFor(time.Duration(sampleFlows)*2*time.Second + 30*time.Second)

			rootSize := 0
			switch {
			case w.ALT != nil:
				rootSize = w.ALT.RootTableSize()
			case w.NERD != nil:
				rootSize = w.NERD.Authority.DatabaseSize()
			default:
				// PCE-CP has no global component; count the source PCE's
				// learned remote mappings.
				rootSize = w.PCEs[0].RemoteMappings().Len()
			}
			_, bytes := w.ControlTotals()
			tbl.AddRow(string(cp), n, metrics.FormatMs(ready.Mean()), rootSize,
				float64(w.ITRStateEntries())/float64(n), float64(bytes)/1024)
		}
	}
	tbl.AddNote("mapping-ready = flow start (DNS query) to usable mapping at the source ITR, %d sampled cold flows", sampleFlows)
	return tbl
}
