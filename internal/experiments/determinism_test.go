package experiments

import (
	"testing"
	"time"

	"github.com/pcelisp/pcelisp/internal/lisp"
	"github.com/pcelisp/pcelisp/internal/metrics"
	"github.com/pcelisp/pcelisp/internal/obs"
	"github.com/pcelisp/pcelisp/internal/runner"
)

// TestDeterministicWorlds is the reproduction's reproducibility guarantee:
// identical seeds produce identical experiment outcomes, down to every
// rendered digit, for every control plane.
func TestDeterministicWorlds(t *testing.T) {
	for _, cp := range AllCPs {
		run := func() FlowResult {
			w := BuildWorld(WorldConfig{CP: cp, Domains: 3, Seed: 99, MissPolicy: lisp.MissQueue})
			w.Settle()
			var res FlowResult
			w.StartFlow(0, 0, 2, 0, func(r FlowResult) { res = r })
			w.Sim.RunFor(30 * time.Second)
			return res
		}
		a, b := run(), run()
		if a != b {
			t.Errorf("%s: runs diverged:\n  %+v\n  %+v", cp, a, b)
		}
	}
}

// TestDeterministicTables repeats a whole experiment and compares the
// rendered tables byte for byte.
func TestDeterministicTables(t *testing.T) {
	a := E1DropsDuringResolution(7, 3, 5, 20*time.Millisecond).String()
	b := E1DropsDuringResolution(7, 3, 5, 20*time.Millisecond).String()
	if a != b {
		t.Fatalf("E1 output diverged:\n%s\nvs\n%s", a, b)
	}
}

// TestParallelMatchesSerial is the parallel engine's regression guarantee:
// fanning an experiment's cells across a worker pool renders tables
// byte-identical to the serial path for the same seed. E1 exercises the
// per-CP decomposition, E5 the overhead comparison, E9 the cache
// scalability sweep (mixed synthetic and world cells), E10 the
// failure-injection sweep (probing, watches and scripted FailurePlans),
// E11 the congestion sweep (telemetry, the TE optimizer's weight pushes
// and the per-CP dissemination paths), E13 the adversarial sweep
// (attacker taps, forgery races and bounded-resolver floods).
func TestParallelMatchesSerial(t *testing.T) {
	render := func(tables []*metrics.Table) string {
		s := ""
		for _, tbl := range tables {
			s += tbl.String()
		}
		return s
	}
	for _, id := range []string{"E1", "E5", "E9", "E10", "E11", "E13"} {
		e, ok := ByID(id)
		if !ok {
			t.Fatalf("missing experiment %s", id)
		}
		serial := render(e.Run(11, true))
		for _, workers := range []int{runner.Auto, 3, 8} {
			parallel := render(e.RunWorkers(11, true, workers))
			if parallel != serial {
				t.Errorf("%s: %d-worker output diverged from serial:\n%s\nvs\n%s",
					id, workers, parallel, serial)
			}
		}
	}
}

// TestShardByteIdentity is the sharded engine's core guarantee: one
// logical world partitioned over any number of lock-step shards renders
// byte-identical experiment tables. E1 exercises the per-CP cold-flow
// worlds, E9 the cache sweeps, E10 scripted failures (split cut-link
// timers), E11 the TE loop (telemetry, barrier snapshots, remote
// launches), E12 the purpose-built scale world, and E13 the adversarial
// sweep (core taps and attacker timers on shard 0, victims elsewhere).
func TestShardByteIdentity(t *testing.T) {
	defer SetWorldShards(SetWorldShards(1))
	render := func(tables []*metrics.Table) string {
		s := ""
		for _, tbl := range tables {
			s += tbl.String()
		}
		return s
	}
	counts := []int{2, 4, 8}
	if testing.Short() {
		counts = []int{2}
	}
	for _, id := range []string{"E1", "E9", "E10", "E11", "E12", "E13"} {
		e, ok := ByID(id)
		if !ok {
			t.Fatalf("missing experiment %s", id)
		}
		SetWorldShards(1)
		base := render(e.Run(11, true))
		for _, n := range counts {
			SetWorldShards(n)
			out := render(e.Run(11, true))
			if out != base {
				t.Errorf("%s: %d-shard output diverged from 1 shard:\n%s\nvs\n%s",
					id, n, out, base)
			}
		}
	}
}

// TestRecordingByteIdentity is the flight recorder's determinism
// guarantee: arming a recorder on every world in an experiment changes
// nothing in the rendered tables — recording never draws from the
// simulation RNG or timers. It re-runs the parallel and sharded paths
// with recording on and compares against a recording-off baseline, then
// checks the recorder actually captured control-plane events (an empty
// ring would make the identity vacuous).
func TestRecordingByteIdentity(t *testing.T) {
	render := func(tables []*metrics.Table) string {
		s := ""
		for _, tbl := range tables {
			s += tbl.String()
		}
		return s
	}
	for _, id := range []string{"E1", "E13"} {
		e, ok := ByID(id)
		if !ok {
			t.Fatalf("missing experiment %s", id)
		}
		base := render(e.Run(11, true))

		rec := obs.NewFlightRecorder(obs.DefaultRingSize)
		prev := SetWorldRecorder(rec)
		serial := render(e.Run(11, true))
		parallel := render(e.RunWorkers(11, true, 3))
		prevShards := SetWorldShards(2)
		sharded := render(e.Run(11, true))
		SetWorldShards(prevShards)
		SetWorldRecorder(prev)

		if serial != base {
			t.Errorf("%s: recording changed serial output:\n%s\nvs\n%s", id, serial, base)
		}
		if parallel != base {
			t.Errorf("%s: recording changed parallel output:\n%s\nvs\n%s", id, parallel, base)
		}
		if sharded != base {
			t.Errorf("%s: recording changed 2-shard output:\n%s\nvs\n%s", id, sharded, base)
		}
		if rec.TotalRecorded() == 0 {
			t.Errorf("%s: recorder captured no events — identity check is vacuous", id)
		}
	}
}

// TestScaleSmoke drives the E12 scale world end to end at a small size —
// the short-mode CI job runs it under the race detector with two shards.
func TestScaleSmoke(t *testing.T) {
	defer SetWorldShards(SetWorldShards(2))
	ps := e12Scale(true)
	res := e12RunCell(3, 64, ps)
	if got, want := res.stats.Hits+res.stats.Misses, uint64(ps.sites*ps.perSite); got != want {
		t.Fatalf("lookups = %d, want %d", got, want)
	}
	if res.stats.Misses == 0 || res.resolved == 0 {
		t.Fatalf("no misses resolved: %+v", res)
	}
}

// TestSeedSensitivity guards against accidentally ignoring the seed:
// different seeds must change something measurable (core delays are
// drawn from the seed).
func TestSeedSensitivity(t *testing.T) {
	run := func(seed int64) FlowResult {
		w := BuildWorld(WorldConfig{CP: CPPCE, Domains: 2, Seed: seed})
		w.Settle()
		var res FlowResult
		w.StartFlow(0, 0, 1, 0, func(r FlowResult) { res = r })
		w.Sim.RunFor(10 * time.Second)
		return res
	}
	if run(1).TDNS == run(2).TDNS {
		t.Fatal("different seeds produced identical TDNS — seed plumbing broken")
	}
}

// TestClaimInvariantAcrossSeeds re-asserts the headline claim (i) across
// several seeds: zero drops under PCE-CP is an invariant, not a lucky
// seed.
func TestClaimInvariantAcrossSeeds(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		w := BuildWorld(WorldConfig{CP: CPPCE, Domains: 2, Seed: seed, MissPolicy: lisp.MissDrop})
		w.Settle()
		var res FlowResult
		w.StartFlow(0, 0, 1, 0, func(r FlowResult) { res = r })
		w.Sim.RunFor(10 * time.Second)
		if !res.OK {
			t.Errorf("seed %d: flow failed", seed)
		}
		if drops := w.ITRDrops(); drops != 0 {
			t.Errorf("seed %d: %d drops under PCE-CP", seed, drops)
		}
		if res.Retransmits != 0 {
			t.Errorf("seed %d: %d SYN retransmits under PCE-CP", seed, res.Retransmits)
		}
		if r := res.Ratio(); r > 1.0001 {
			t.Errorf("seed %d: readiness ratio %v > 1", seed, r)
		}
	}
}

// TestManyDomainsSmoke pushes the harness to a 48-domain internet under
// the PCE control plane — scale beyond the benchmarks — and verifies a
// sample of flows still sets up losslessly.
func TestManyDomainsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("large world")
	}
	w := BuildWorld(WorldConfig{CP: CPPCE, Domains: 48, Seed: 4, HostsPerDomain: 1})
	w.Settle()
	okFlows := 0
	for i := 0; i < 8; i++ {
		srcD := i * 6 % 48
		dstD := (srcD + 7) % 48
		w.StartFlow(srcD, 0, dstD, 0, func(r FlowResult) {
			if r.OK {
				okFlows++
			}
		})
	}
	w.Sim.RunFor(30 * time.Second)
	if okFlows != 8 {
		t.Fatalf("flows ok = %d/8", okFlows)
	}
	if drops := w.ITRDrops(); drops != 0 {
		t.Fatalf("drops = %d at 48 domains", drops)
	}
}
