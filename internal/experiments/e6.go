package experiments

import (
	"fmt"
	"time"

	"github.com/pcelisp/pcelisp/internal/core"
	"github.com/pcelisp/pcelisp/internal/lisp"
	"github.com/pcelisp/pcelisp/internal/metrics"
	"github.com/pcelisp/pcelisp/internal/netaddr"
	"github.com/pcelisp/pcelisp/internal/packet"
	"github.com/pcelisp/pcelisp/internal/runner"
	"github.com/pcelisp/pcelisp/internal/simnet"
)

// E6 measures how long after a flow starts BOTH directions have usable
// mappings at their tunnel routers — the paper's "two-way mapping
// resolution" completed by the ETR multicast on the first data packet,
// versus a pull control plane where the reverse direction pays its own
// resolution when the first reply packet misses.
//
// Destination domains use split xTRs (one per provider), so the PCE
// number includes multicast distribution to the sibling ETR.

// e6CPs lists the control planes E6 compares, in table order.
var e6CPs = []CP{CPMSMR, CPPCE}

// e6Result is one trial's readiness times (0 = never completed).
type e6Result struct {
	cp                    CP
	fwdReady, twoWayReady simnet.Time
}

// e6Experiment decomposes E6 into one cell per (CP, trial): every trial
// builds its own world, so all trials run concurrently.
func e6Experiment(seed int64, trials int) ([]Cell, MergeFunc) {
	if trials == 0 {
		trials = 5
	}
	var cells []Cell
	for _, cp := range e6CPs {
		cp := cp
		for trial := 0; trial < trials; trial++ {
			trial := trial
			cells = append(cells, Cell{Label: fmt.Sprintf("%s#%d", cp, trial), CP: cp,
				Run: func() interface{} { return e6RunCell(cp, seed+int64(trial)) }})
		}
	}
	merge := tableMerge(func(results []interface{}) *metrics.Table {
		tbl := metrics.NewTable(
			"E6: time until two-way mapping resolution completes (flow start = DNS query)",
			"control plane", "trials", "fwd ready mean", "two-way ready mean", "two-way p95")
		for _, cp := range e6CPs {
			fwd := metrics.NewSummary("fwd")
			both := metrics.NewSummary("both")
			seen := false
			for _, r := range results {
				c, ok := r.(e6Result)
				if !ok || c.cp != cp {
					continue
				}
				seen = true
				if c.fwdReady > 0 {
					fwd.AddDuration(c.fwdReady)
				}
				if c.twoWayReady > 0 {
					both.AddDuration(c.twoWayReady)
				}
			}
			if !seen {
				continue
			}
			tbl.AddRow(string(cp), trials,
				metrics.FormatMs(fwd.Mean()), metrics.FormatMs(both.Mean()), metrics.FormatMs(both.P95()))
		}
		tbl.AddNote("destination domains run split xTRs; PCE two-way includes the ETR multicast to the sibling")
		return tbl
	})
	return cells, merge
}

// e6RunCell runs one trial: a fresh two-domain world, one echo flow, and
// instrumentation for when each direction's mapping became usable.
func e6RunCell(cp CP, seed int64) e6Result {
	w := BuildWorld(WorldConfig{
		CP: cp, Domains: 2, Seed: seed, SplitXTRs: true,
		MissPolicy: lisp.MissQueue,
	})
	w.Settle()
	d0, d1 := w.In.Domains[0], w.In.Domains[1]
	src, dst := d0.Hosts[0], d1.Hosts[0]
	start := w.Sim.Now()
	fk := lisp.FlowKey{Src: dst.Addr, Dst: src.Addr} // reverse direction

	var fwdReady, twoWayReady simnet.Time
	if cp == CPPCE {
		w.PCEs[0].OnEvent = func(ev core.Event) {
			if ev.Kind == core.EvFlowInstalled && fwdReady == 0 {
				fwdReady = w.Sim.Now() - start
			}
		}
		// Two-way completion: every destination xTR has the reverse
		// entry. Poll each reverse-install event. PCE 1 lives on domain
		// 1's shard, so its callback reads that shard's clock.
		sim1 := w.SimOf(1)
		installed := map[string]bool{}
		w.PCEs[1].OnEvent = func(ev core.Event) {
			if ev.Kind == core.EvReversePushed || ev.Kind == core.EvReverseInstalled {
				installed[ev.Node] = true
				if len(installed) >= len(d1.XTRs) && twoWayReady == 0 {
					twoWayReady = sim1.Now() - start
				}
			}
		}
	}

	// Run the flow: DNS, then one data packet each way (an echo).
	dst.Node.ListenUDP(7000, func(d *simnet.Delivery, udp *packet.UDP) {
		ip := d.IPv4()
		dst.Node.SendUDP(dst.Addr, ip.SrcIP, 7000, 7001, packet.Payload("echo"))
	})
	src.Node.ListenUDP(7001, func(*simnet.Delivery, *packet.UDP) {})
	src.DNS.Lookup(dst.Name, func(addr netaddr.Addr, _ simnet.Time, ok bool) {
		if ok {
			src.Node.SendUDP(src.Addr, addr, 40000, 7000, packet.Payload("ping"))
		}
	})
	w.RunFor(30 * time.Second)

	if cp == CPMSMR {
		// Pull CPs: two-way ready when both directions' mappings resolved
		// at their ITRs.
		if at, ok := w.MappingReadyAt(dst.Addr); ok {
			fwdReady = at - start
		}
		if at, ok := w.MappingReadyAt(src.Addr); ok {
			rev := at - start
			if rev > fwdReady {
				twoWayReady = rev
			} else {
				twoWayReady = fwdReady
			}
		}
	} else {
		// PCE: ensure the reverse entries really exist.
		for _, x := range d1.XTRs {
			if _, ok := x.Flows.Lookup(fk); !ok {
				twoWayReady = 0
			}
		}
	}
	return e6Result{cp: cp, fwdReady: fwdReady, twoWayReady: twoWayReady}
}

// E6TwoWayResolution runs E6 serially and returns its table.
func E6TwoWayResolution(seed int64, trials int) *metrics.Table {
	cells, merge := e6Experiment(seed, trials)
	return merge(runCells("E6", cells, runner.Serial))[0]
}
