package experiments

import (
	"fmt"
	"time"

	"github.com/pcelisp/pcelisp/internal/irc"
	"github.com/pcelisp/pcelisp/internal/lisp"
	"github.com/pcelisp/pcelisp/internal/metrics"
	"github.com/pcelisp/pcelisp/internal/netaddr"
	"github.com/pcelisp/pcelisp/internal/packet"
	"github.com/pcelisp/pcelisp/internal/runner"
	"github.com/pcelisp/pcelisp/internal/simnet"
	"github.com/pcelisp/pcelisp/internal/te"
	"github.com/pcelisp/pcelisp/internal/teopt"
	"github.com/pcelisp/pcelisp/internal/topo"
	"github.com/pcelisp/pcelisp/internal/workload"
)

// E11 measures the closed-loop inbound TE claim: a PCE that observes
// provider-link load (cheap xTR telemetry) can recompute locator
// weights and *push* them — to its own ITRs and to every subscriber PCE,
// which re-pushes affected live flows within one RTT — while pull-based
// mapping systems can only refresh their own site record and wait for
// remote caches to expire (or, for NERD, for the next database poll).
//
// Domain 0 is dual-homed with rate-limited provider links and receives
// inbound elephant flows from several remote domains. Every control
// plane runs the *same* site-local optimizer (internal/teopt) over the
// same congestion scenario; the only difference under test is how fast
// a recomputed weight vector reaches the remote encapsulators:
//
//   - steady-zipf: heavy-tailed (truncated-harmonic) flow sizes split
//     equally over asymmetric provider capacities; the equal split
//     drowns the half-rate provider from the start.
//   - flash-crowd: a skewed initial split (fine for light traffic) meets
//     a staggered burst of new heavy flows; the favored provider
//     saturates until the weights move.
//   - diurnal: load ramps up wave by wave and back down under a skewed
//     split — continuous adaptation instead of one correction.
//
// Per cell we report the peak offered utilization of the worst provider
// link after the event, the time until inbound load drops back under
// the congestion threshold (time-to-rebalance), the overload volume
// (offered bytes above capacity — what a real link would have queued or
// dropped), Jain's fairness over the provider goodput at window end,
// and the control traffic spent: mapping-system messages, telemetry
// reports, and optimizer weight pushes. The idealized preinstalled
// plane runs no optimizer at all and bounds the do-nothing case.

// e11Scenario names one congestion script.
type e11Scenario struct {
	key     string
	desc    string
	weights []uint8 // initial advertised split
}

var e11Scenarios = []e11Scenario{
	// Equal weights over unequal capacities: the equal split drowns the
	// half-rate provider from the start; the capacity-proportional split
	// the solver finds must still travel to the remote encapsulators.
	{key: "steady-zipf", desc: "heavy-tailed steady load, equal split over asymmetric capacities", weights: []uint8{50, 50}},
	{key: "flash-crowd", desc: "staggered heavy-flow burst onto the favored provider", weights: []uint8{85, 15}},
	{key: "diurnal", desc: "wave ramp up and down, skewed split", weights: []uint8{65, 35}},
}

// e11Params sizes the sweep.
type e11Params struct {
	remotes  int    // source domains
	hosts    int    // hosts per domain = flows per source domain
	capacity int64  // provider link rate, bps
	ttl      uint32 // pull-plane mapping TTL, seconds
	nerdPoll time.Duration
	sample   simnet.Time // monitor/telemetry/optimizer cadence
	tEvent   simnet.Time // flash/ramp start; metric window start
	tEnd     simnet.Time
	flowStep simnet.Time // base-flow start stagger

	baseRate    int64 // per base flow, bps
	steadyTotal int64 // aggregate demand in steady-zipf
	flashRate   int64 // per flash pump, bps
	flashFlows  int
	flashStep   simnet.Time
	waveRate    int64 // per diurnal wave pump, bps
	waves       int
	wavePeriod  simnet.Time
	pkt         int
}

// e11Scale sizes the sweep. Flow count matters more than flow size:
// LISP weights move load by sliding the flow-hash boundary, so the
// aggregate-proportional model the solver uses only holds when many
// small flows straddle every boundary — with a handful of elephants a
// ten-point weight shift can move nothing at all. Both scales therefore
// run dozens of modest flows.
func e11Scale(quick bool) e11Params {
	if quick {
		return e11Params{
			remotes: 3, hosts: 8, capacity: 4_000_000, ttl: 15,
			nerdPoll: 7 * time.Second, sample: time.Second,
			tEvent: 10 * time.Second, tEnd: 36 * time.Second,
			flowStep: 150 * time.Millisecond,
			baseRate: 100_000, steadyTotal: 4_800_000,
			flashRate: 400_000, flashFlows: 8, flashStep: 700 * time.Millisecond,
			waveRate: 150_000, waves: 3, wavePeriod: 4 * time.Second,
			pkt: 1000,
		}
	}
	return e11Params{
		remotes: 4, hosts: 12, capacity: 4_000_000, ttl: 20,
		nerdPoll: 9 * time.Second, sample: time.Second,
		tEvent: 12 * time.Second, tEnd: 50 * time.Second,
		flowStep: 100 * time.Millisecond,
		baseRate: 50_000, steadyTotal: 4_800_000,
		flashRate: 300_000, flashFlows: 10, flashStep: 800 * time.Millisecond,
		waveRate: 75_000, waves: 3, wavePeriod: 6 * time.Second,
		pkt: 1000,
	}
}

// e11Capacities returns the per-provider capacities for a scenario:
// steady-zipf halves provider 1 (equal weights over unequal pipes is
// the congestion), the others run symmetric links.
func e11Capacities(scenario string, ps e11Params, providers int) []int64 {
	caps := make([]int64, providers)
	for i := range caps {
		caps[i] = ps.capacity
	}
	if scenario == "steady-zipf" && providers > 1 {
		caps[1] = ps.capacity / 2
	}
	return caps
}

// e11Result is one (scenario, control plane) cell outcome.
type e11Result struct {
	cp        CP
	scenario  string
	peak      float64     // max offered utilization of the worst link, t >= tEvent
	reconv    simnet.Time // tEvent -> last congested sample (censored at window end)
	overload  float64     // offered bytes above capacity, summed over links
	jain      float64     // Jain over provider ingress goodput at window end
	ctlMsgs   uint64      // mapping-system + PCE control messages after tEvent
	telMsgs   uint64      // telemetry reports after tEvent
	applies   uint64      // optimizer weight pushes over the whole run
	delivered uint64      // inbound goodput bytes over both links (sanity)
}

// e11Port is the inbound elephant-flow destination port.
const e11Port = 7200

// e11CongestedAt is the offered-utilization threshold that counts a
// provider link as congested for the time-to-rebalance metric.
const e11CongestedAt = 0.95

// e11Monitor samples the offered inbound load of domain 0's provider
// links on a typed timer: TxBytes of the provider-side interface is
// what the provider tries to deliver to the site — queued and dropped
// bytes included — so saturation shows up above 1.0 instead of being
// censored at link rate the way goodput is.
type e11Monitor struct {
	sim      *simnet.Sim
	ifaces   []*simnet.Iface // provider-side (peer) interfaces
	caps     []float64       // per-link capacity, bps
	interval simnet.Time
	stopAt   simnet.Time
	tEvent   simnet.Time

	lastTx   []uint64
	primed   bool
	peak     float64
	lastBad  simnet.Time
	overload float64 // bytes offered above capacity
}

func newE11Monitor(w *World, d0 *topo.Domain, caps []int64, ps e11Params) *e11Monitor {
	m := &e11Monitor{
		sim: w.Sim, interval: ps.sample,
		stopAt: ps.tEnd, tEvent: ps.tEvent, lastBad: -1,
	}
	for i, p := range d0.Providers {
		m.ifaces = append(m.ifaces, p.EgressIface.Peer())
		m.caps = append(m.caps, float64(caps[i]))
	}
	m.lastTx = make([]uint64, len(m.ifaces))
	m.sim.ScheduleTimer(m.interval, m, simnet.TimerArg{})
	return m
}

// OnTimer implements simnet.TimerHandler: one offered-load sample.
func (m *e11Monitor) OnTimer(simnet.TimerArg) {
	now := m.sim.Now()
	dt := float64(m.interval) / float64(time.Second)
	maxUtil := 0.0
	for i, ifc := range m.ifaces {
		tx := ifc.Counters().TxBytes
		if m.primed {
			bps := float64(tx-m.lastTx[i]) * 8 / dt
			if u := bps / m.caps[i]; u > maxUtil {
				maxUtil = u
			}
			if excess := bps - m.caps[i]; excess > 0 && now >= m.tEvent {
				m.overload += excess * dt / 8
			}
		}
		m.lastTx[i] = tx
	}
	m.primed = true
	if now >= m.tEvent {
		if maxUtil > m.peak {
			m.peak = maxUtil
		}
		if maxUtil >= e11CongestedAt {
			m.lastBad = now
		}
	}
	if now < m.stopAt {
		m.sim.ScheduleTimer(m.interval, m, simnet.TimerArg{})
	}
}

// reconverge returns tEvent -> end of the last congested sample (0 when
// the link never congested; the full window when it never recovered).
func (m *e11Monitor) reconverge() simnet.Time {
	if m.lastBad < 0 {
		return 0
	}
	r := m.lastBad + m.interval - m.tEvent
	if r < 0 {
		r = 0
	}
	return r
}

// e11Flow is one inbound elephant flow and its pumps.
type e11Flow struct {
	src, dst *topo.Host
	addr     netaddr.Addr // resolved destination (zero until DNS answers)
	pumps    []*workload.Pump
}

// startPump attaches one pump at rate to the flow once its DNS
// resolution has completed; before that the flow cannot be
// encapsulated, so the pump would only measure the resolver.
func (f *e11Flow) startPump(ps e11Params, rate int64) {
	if !f.addr.IsValid() {
		return
	}
	p := workload.NewPump(f.src.Node, f.src.Addr, f.addr, e11Port, rate, ps.pkt)
	p.Start()
	f.pumps = append(f.pumps, p)
}

// stopLastPump halts the most recently started pump (the diurnal
// down-ramp).
func (f *e11Flow) stopLastPump() {
	if n := len(f.pumps) - 1; n >= 0 {
		f.pumps[n].Stop()
		f.pumps = f.pumps[:n]
	}
}

// e11BaseRate returns flow j's steady sending rate for the scenario.
func e11BaseRate(scenario string, ps e11Params, j, flows int) int64 {
	if scenario != "steady-zipf" {
		return ps.baseRate
	}
	// Harmonic (Zipf s=1) sizes with the head truncated at 30% of a
	// uniform share budget: a single flow bigger than the small
	// provider's headroom could never be rebalanced by weights at all
	// (a flow is atomic), which would measure flow atomicity instead of
	// control-plane dissemination.
	w := func(k int) float64 { return min(1/float64(k+1), 0.3) }
	h := 0.0
	for k := 0; k < flows; k++ {
		h += w(k)
	}
	return int64(float64(ps.steadyTotal) * w(j) / h)
}

// e11RunCell runs one control plane through one congestion scenario.
func e11RunCell(cp CP, scenario string, seed int64, ps e11Params) e11Result {
	var sc e11Scenario
	for _, s := range e11Scenarios {
		if s.key == scenario {
			sc = s
		}
	}
	// The shortened TTL is the pull-plane staleness horizon under test;
	// the PCE keeps its default push TTL — its staleness bound is the
	// telemetry interval, not the record lifetime (same reasoning as
	// E10).
	ttl := ps.ttl
	var policy irc.Policy
	if cp == CPPCE {
		ttl = 0
		choices := make([]irc.Choice, len(sc.weights))
		for i, wt := range sc.weights {
			choices[i] = irc.Choice{Index: i, Priority: 1, Weight: wt}
		}
		policy = irc.WeightTable{Choices: choices}
	}
	w := BuildWorld(WorldConfig{
		CP: cp, Domains: 1 + ps.remotes, HostsPerDomain: ps.hosts,
		Seed: seed, MissPolicy: lisp.MissDrop,
		CapacityBps: ps.capacity, MappingTTL: ttl,
		NERDPoll: ps.nerdPoll, SiteWeights: sc.weights, Policy: policy,
	})
	w.Settle()
	d0 := w.In.Domains[0]
	caps := e11Capacities(scenario, ps, len(d0.Providers))
	for i, p := range d0.Providers {
		if caps[i] == ps.capacity {
			continue
		}
		// Scenario capacity asymmetry: re-rate both directions of the
		// provider link (the topo builder provisions symmetric domains).
		for _, ifc := range []*simnet.Iface{p.EgressIface, p.EgressIface.Peer()} {
			cfg := ifc.Config()
			cfg.RateBps = caps[i]
			ifc.SetConfig(cfg)
		}
	}

	// Sink the elephant flows.
	for _, h := range d0.Hosts {
		h.Node.ListenUDP(e11Port, func(*simnet.Delivery, *packet.UDP) {})
	}

	// Goodput tracker (Jain, sanity) and offered-load monitor.
	tracker := te.NewTracker(w.Sim)
	tracker.Interval = ps.sample
	for i, p := range d0.Providers {
		tracker.Add(p.Name, p.EgressIface, caps[i])
	}
	tracker.Start()
	mon := newE11Monitor(w, d0, caps, ps)

	// The optimizer: identical policy logic for every control plane;
	// only the sensing path, the actuator and the hold time differ. The
	// smoothing is deliberately twitchy (alpha 0.7, activation at 0.6) —
	// the loop must outrun a flash crowd's ramp, and the deadband plus
	// hold timer, not a sluggish filter, provide the stability. The hold
	// must cover the plane's own dissemination delay (a controller that
	// reacts faster than its actuation propagates just oscillates), so
	// the pull planes are held a full TTL — or a poll interval for NERD —
	// while the PCE only needs an RTT-scale settling period. This is the
	// paper's asymmetry expressed as loop gain.
	hold := 3 * time.Second
	switch cp {
	case CPNERD:
		hold = ps.nerdPoll + 2*time.Second
	case CPALT, CPCONS, CPMSMR:
		hold = time.Duration(ps.ttl)*time.Second + 2*time.Second
	}
	optCfg := teopt.Config{
		Interval: ps.sample, Ingress: true, Alpha: 0.7,
		Activate: 0.6, MinGain: 0.03, Hold: hold,
	}
	links := make([]teopt.Link, len(d0.Providers))
	for i, p := range d0.Providers {
		links[i] = teopt.Link{Name: p.Name, RLOC: p.RLOC, CapacityBps: caps[i]}
	}
	var opt *teopt.Optimizer
	switch {
	case cp == CPPCE:
		// Sensing: xTR telemetry streamed to the PCE. Actuation: apply to
		// the engine, announce to subscriber PCEs, re-push.
		pce0 := w.PCEs[0]
		opt = teopt.New(w.Sim, links, optCfg)
		opt.SetCurrentWeights(sc.weights)
		pce0.OnLoadReport = func(_ netaddr.Addr, loads []packet.PCELoadRecord) {
			for _, lr := range loads {
				opt.Observe(lr.RLOC, lr.InBytes, simnet.Time(lr.WindowMs)*simnet.Time(time.Millisecond))
			}
		}
		opt.Apply = func(wts []uint8) { pce0.ApplyProviderWeights(wts) }
		byXTR := make(map[*lisp.XTR][]lisp.TelemetryLink)
		for i, p := range d0.Providers {
			byXTR[p.XTR] = append(byXTR[p.XTR], lisp.TelemetryLink{
				RLOC: p.RLOC, Iface: p.EgressIface, CapacityBps: caps[i],
			})
		}
		for _, x := range d0.XTRs {
			if tls := byXTR[x]; len(tls) > 0 {
				x.EnableTelemetry(lisp.TelemetryConfig{
					Collector: d0.PCEAddr, Interval: ps.sample, Links: tls,
				})
			}
		}
		opt.Start()
	case w.MapSystem() != nil:
		// Pull planes: the site samples its own border interfaces (free
		// local knowledge) and can only refresh its own record — remote
		// caches keep the old weights until TTL expiry or the next poll.
		sys, site := w.MapSystem(), w.Sites[0]
		for i, p := range d0.Providers {
			links[i].Iface = p.EgressIface
		}
		opt = teopt.New(w.Sim, links, optCfg)
		opt.SetCurrentWeights(sc.weights)
		opt.Apply = func(wts []uint8) {
			for i := range site.Locators {
				if i < len(wts) {
					site.Locators[i].Weight = wts[i]
				}
			}
			sys.RefreshSite(site)
		}
		opt.Start()
		// CPPreinstalled: no mapping system, no optimizer — the bound on
		// doing nothing.
	}

	// Launch the inbound flows: host h of remote domain r pumps to host
	// h of domain 0, staggered so resolutions do not synchronize.
	flows := make([]*e11Flow, 0, ps.remotes*ps.hosts)
	for r := 1; r <= ps.remotes; r++ {
		for h := 0; h < ps.hosts; h++ {
			flows = append(flows, &e11Flow{src: w.In.Domains[r].Hosts[h], dst: d0.Hosts[h]})
		}
	}
	// Launch timers, pump starts and pump stops all mutate source-host
	// state, so each is armed on the shard owning that source domain
	// (arming is safe here: the world is quiescent before RunUntil).
	for j, f := range flows {
		j, f := j, f
		rate := e11BaseRate(scenario, ps, j, len(flows))
		f.src.Node.Sim().ScheduleFunc(2*time.Second+simnet.Time(j)*ps.flowStep, func() {
			f.src.DNS.Lookup(f.dst.Name, func(addr netaddr.Addr, _ simnet.Time, ok bool) {
				if !ok {
					return
				}
				f.addr = addr
				f.startPump(ps, rate)
			})
		})
	}

	// Scenario events.
	switch scenario {
	case "flash-crowd":
		for i := 0; i < ps.flashFlows; i++ {
			f := flows[i%len(flows)]
			f.src.Node.Sim().AtFunc(ps.tEvent+simnet.Time(i)*ps.flashStep, func() {
				f.startPump(ps, ps.flashRate)
			})
		}
	case "diurnal":
		// Wave k loads every waves-th flow, interleaved across source
		// domains so the ramp stresses the destination links rather than
		// any single remote's egress.
		for k := 0; k < ps.waves; k++ {
			up := ps.tEvent + simnet.Time(k)*ps.wavePeriod
			down := ps.tEvent + simnet.Time(2*ps.waves-k)*ps.wavePeriod
			for j := k; j < len(flows); j += ps.waves {
				f := flows[j]
				f.src.Node.Sim().AtFunc(up, func() { f.startPump(ps, ps.waveRate) })
				f.src.Node.Sim().AtFunc(down, func() { f.stopLastPump() })
			}
		}
	}

	// Control-overhead baseline at the event instant — a world-wide
	// snapshot, so it reads at a global barrier.
	var ctl0, tel0 uint64
	w.At(ps.tEvent, func() {
		ctl0, _ = w.ControlTotals()
		tel0 = w.TelemetryMessages()
	})
	w.RunUntil(ps.tEnd)

	res := e11Result{cp: cp, scenario: scenario}
	res.peak = mon.peak
	res.reconv = mon.reconverge()
	res.overload = mon.overload
	res.jain = tracker.JainIngress()
	msgs, _ := w.ControlTotals()
	res.ctlMsgs = msgs - ctl0
	res.telMsgs = w.TelemetryMessages() - tel0
	if opt != nil {
		res.applies = opt.Stats.Applies
	}
	for _, p := range d0.Providers {
		res.delivered += p.EgressIface.Peer().Counters().DeliveredBytes
	}
	return res
}

// e11Experiment decomposes the sweep into one cell per
// (scenario, control plane) pair.
func e11Experiment(seed int64, quick bool) ([]Cell, MergeFunc) {
	ps := e11Scale(quick)
	var cells []Cell
	for _, sc := range e11Scenarios {
		for _, cp := range AllCPs {
			sc, cp := sc, cp
			cells = append(cells, Cell{
				Label: fmt.Sprintf("%s/%s", sc.key, cp),
				CP:    cp,
				Run:   func() interface{} { return e11RunCell(cp, sc.key, seed, ps) },
			})
		}
	}
	merge := tableMerge(func(results []interface{}) *metrics.Table {
		tbl := metrics.NewTable(
			"E11: closed-loop inbound TE under congestion (dual-homed destination domain)",
			"scenario", "control plane", "peak util", "rebalance s", "overload KB",
			"Jain in", "ctl msgs", "telemetry", "wt pushes")
		for _, r := range results {
			if r == nil {
				continue
			}
			c := r.(e11Result)
			tbl.AddRow(c.scenario, string(c.cp), c.peak,
				float64(c.reconv)/float64(time.Second), c.overload/1024,
				c.jain, c.ctlMsgs, c.telMsgs, c.applies)
		}
		tbl.AddNote("every plane runs the same min-max weight optimizer at the destination site; only dissemination differs: PCE-CP pushes MappingUpdates to subscriber PCEs (one-RTT re-push), pull planes refresh their record and wait for TTL expiry (NERD: next poll), ideal does nothing")
		tbl.AddNote("peak/rebalance from offered inbound load sampled every %v after the event at t=%v; congested above %.2f of the %.0f Mbps provider links (steady-zipf halves provider 1); pull mapping TTL %ds, NERD poll %v",
			ps.sample, ps.tEvent, e11CongestedAt, float64(ps.capacity)/1e6, ps.ttl, ps.nerdPoll)
		tbl.AddNote("overload = offered bytes above link capacity (what a real link queues or drops); ctl/telemetry msgs counted from the event instant")
		return tbl
	})
	return cells, merge
}

// E11InboundTE runs E11 serially and returns its table.
func E11InboundTE(seed int64, quick bool) *metrics.Table {
	cells, merge := e11Experiment(seed, quick)
	return merge(runCells("E11", cells, runner.Serial))[0]
}
