package experiments

import (
	"time"

	"github.com/pcelisp/pcelisp/internal/metrics"
	"github.com/pcelisp/pcelisp/internal/netaddr"
	"github.com/pcelisp/pcelisp/internal/packet"
	"github.com/pcelisp/pcelisp/internal/simnet"
)

// E1DropsDuringResolution quantifies claim (i): packets are neither
// dropped nor queued during mapping resolution under the PCE control
// plane, while every pull-based control plane loses (or delays) the head
// of each cold flow.
//
// Workload: from one source domain, one cold flow per destination domain,
// staggered 500ms apart; after the DNS answer arrives the host emits
// packetsPerFlow data packets at the given spacing — what an application
// sends right after resolution. We count arrivals at the destinations.
func E1DropsDuringResolution(seed int64, domains, packetsPerFlow int, spacing time.Duration) *metrics.Table {
	if domains < 2 {
		domains = 6
	}
	if packetsPerFlow == 0 {
		packetsPerFlow = 10
	}
	if spacing == 0 {
		spacing = 20 * time.Millisecond
	}
	tbl := metrics.NewTable(
		"E1: packet loss during mapping resolution (cold flows, drop-policy ITRs)",
		"control plane", "flows", "data pkts", "delivered", "lost", "loss %", "ITR drops")

	for _, cp := range AllCPs {
		w := BuildWorld(WorldConfig{CP: cp, Domains: domains, Seed: seed})
		w.Settle()
		delivered := 0
		for dd := 1; dd < domains; dd++ {
			port := uint16(9000 + dd)
			w.In.Domains[dd].Hosts[0].Node.ListenUDP(port, func(*simnet.Delivery, *packet.UDP) {
				delivered++
			})
		}
		for dd := 1; dd < domains; dd++ {
			dd := dd
			w.Sim.Schedule(time.Duration(dd-1)*500*time.Millisecond, func() {
				src := w.In.Domains[0].Hosts[0]
				dst := w.In.Domains[dd].Hosts[0]
				src.DNS.Lookup(dst.Name, func(addr netaddr.Addr, _ simnet.Time, ok bool) {
					if !ok {
						return
					}
					for i := 0; i < packetsPerFlow; i++ {
						i := i
						w.Sim.Schedule(time.Duration(i)*spacing, func() {
							src.Node.SendUDP(src.Addr, addr, 40000, uint16(9000+dd),
								packet.Payload("data"))
						})
					}
				})
			})
		}
		w.Sim.RunFor(time.Duration(domains) * time.Second)

		flows := domains - 1
		sent := flows * packetsPerFlow
		lost := sent - delivered
		tbl.AddRow(string(cp), flows, sent, delivered, lost,
			100*float64(lost)/float64(sent), w.ITRDrops())
	}
	tbl.AddNote("packets sent %s apart starting at the DNS answer; loss under pull CPs is the resolution window", spacing)
	return tbl
}
