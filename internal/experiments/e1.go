package experiments

import (
	"time"

	"github.com/pcelisp/pcelisp/internal/metrics"
	"github.com/pcelisp/pcelisp/internal/netaddr"
	"github.com/pcelisp/pcelisp/internal/packet"
	"github.com/pcelisp/pcelisp/internal/runner"
	"github.com/pcelisp/pcelisp/internal/simnet"
)

// E1 quantifies claim (i): packets are neither dropped nor queued during
// mapping resolution under the PCE control plane, while every pull-based
// control plane loses (or delays) the head of each cold flow.
//
// Workload: from one source domain, one cold flow per destination domain,
// staggered 500ms apart; after the DNS answer arrives the host emits
// packetsPerFlow data packets at the given spacing — what an application
// sends right after resolution. We count arrivals at the destinations.

// e1Result is one control plane's loss count.
type e1Result struct {
	cp                     CP
	flows, sent, delivered int
	drops                  uint64
}

// e1Experiment decomposes E1 into one cell per control plane.
func e1Experiment(seed int64, domains, packetsPerFlow int, spacing time.Duration) ([]Cell, MergeFunc) {
	if domains < 2 {
		domains = 6
	}
	if packetsPerFlow == 0 {
		packetsPerFlow = 10
	}
	if spacing == 0 {
		spacing = 20 * time.Millisecond
	}
	cells := make([]Cell, len(AllCPs))
	for i, cp := range AllCPs {
		cp := cp
		cells[i] = Cell{Label: string(cp), CP: cp, Run: func() interface{} {
			return e1RunCell(cp, seed, domains, packetsPerFlow, spacing)
		}}
	}
	merge := tableMerge(func(results []interface{}) *metrics.Table {
		tbl := metrics.NewTable(
			"E1: packet loss during mapping resolution (cold flows, drop-policy ITRs)",
			"control plane", "flows", "data pkts", "delivered", "lost", "loss %", "ITR drops")
		for _, r := range results {
			if r == nil {
				continue
			}
			c := r.(e1Result)
			lost := c.sent - c.delivered
			tbl.AddRow(string(c.cp), c.flows, c.sent, c.delivered, lost,
				100*float64(lost)/float64(c.sent), c.drops)
		}
		tbl.AddNote("packets sent %s apart starting at the DNS answer; loss under pull CPs is the resolution window", spacing)
		return tbl
	})
	return cells, merge
}

// e1RunCell runs one control plane's world: cold flows toward every
// destination domain, counting arrivals.
func e1RunCell(cp CP, seed int64, domains, packetsPerFlow int, spacing time.Duration) e1Result {
	w := BuildWorld(WorldConfig{CP: cp, Domains: domains, Seed: seed})
	w.Settle()
	// One arrival counter per destination domain: each is written only by
	// the shard hosting that domain, so counting is race-free and the sum
	// (taken after the final barrier) is partition-independent.
	deliveredBy := make([]int, domains)
	for dd := 1; dd < domains; dd++ {
		dd := dd
		port := uint16(9000 + dd)
		w.In.Domains[dd].Hosts[0].Node.ListenUDP(port, func(*simnet.Delivery, *packet.UDP) {
			deliveredBy[dd]++
		})
	}
	for dd := 1; dd < domains; dd++ {
		dd := dd
		// Launch closures touch only shard-0 state (the source host and
		// its DNS chain), so they schedule on shard 0 directly.
		w.Sim.ScheduleFunc(time.Duration(dd-1)*500*time.Millisecond, func() {
			src := w.In.Domains[0].Hosts[0]
			dst := w.In.Domains[dd].Hosts[0]
			src.DNS.Lookup(dst.Name, func(addr netaddr.Addr, _ simnet.Time, ok bool) {
				if !ok {
					return
				}
				for i := 0; i < packetsPerFlow; i++ {
					i := i
					w.Sim.ScheduleFunc(time.Duration(i)*spacing, func() {
						src.Node.SendUDP(src.Addr, addr, 40000, uint16(9000+dd),
							packet.Payload("data"))
					})
				}
			})
		})
	}
	w.RunFor(time.Duration(domains) * time.Second)

	delivered := 0
	for _, n := range deliveredBy {
		delivered += n
	}
	flows := domains - 1
	return e1Result{cp: cp, flows: flows, sent: flows * packetsPerFlow,
		delivered: delivered, drops: w.ITRDrops()}
}

// E1DropsDuringResolution runs E1 serially and returns its table.
func E1DropsDuringResolution(seed int64, domains, packetsPerFlow int, spacing time.Duration) *metrics.Table {
	cells, merge := e1Experiment(seed, domains, packetsPerFlow, spacing)
	return merge(runCells("E1", cells, runner.Serial))[0]
}
