// Package experiments builds and runs the evaluation the paper implies:
// the quantified versions of its three claims and the comparisons against
// the control planes it cites. Every experiment produces paper-style
// tables; cmd/experiments prints them and bench_test.go regenerates them
// under `go test -bench`.
//
// The shared harness builds a multihomed LISP internet (internal/topo),
// deploys one control plane across every domain — ALT, CONS, MS/MR, NERD,
// the paper's PCE-CP, or an idealized "preinstalled" reference — and runs
// instrumented flows (iterative DNS lookup, TCP handshake with RFC 6298
// retransmission, then data) while recording when mappings become usable
// at the ITRs.
//
// Execution is organized as a parallel scenario engine: every experiment
// decomposes into independent cells (one world, one simulation each; see
// Cell and Experiment.Build), which internal/runner fans across
// GOMAXPROCS workers. Because results merge in canonical cell order, a
// parallel run renders byte-identical tables to a serial run of the same
// seed.
package experiments

import (
	"fmt"
	"sync"
	"time"

	"github.com/pcelisp/pcelisp/internal/core"
	"github.com/pcelisp/pcelisp/internal/irc"
	"github.com/pcelisp/pcelisp/internal/lisp"
	"github.com/pcelisp/pcelisp/internal/mapsys"
	"github.com/pcelisp/pcelisp/internal/netaddr"
	"github.com/pcelisp/pcelisp/internal/obs"
	"github.com/pcelisp/pcelisp/internal/packet"
	"github.com/pcelisp/pcelisp/internal/simnet"
	"github.com/pcelisp/pcelisp/internal/topo"
	"github.com/pcelisp/pcelisp/internal/workload"
)

// CP names a control plane under test.
type CP string

// The control planes.
const (
	// CPPreinstalled is the idealized reference: every mapping preloaded
	// everywhere, so flows pay only tunneling. It bounds what any control
	// plane can achieve.
	CPPreinstalled CP = "ideal"
	// CPALT is the LISP+ALT overlay.
	CPALT CP = "ALT"
	// CPCONS is the LISP+CONS hierarchy.
	CPCONS CP = "CONS"
	// CPMSMR is the map-server/map-resolver infrastructure.
	CPMSMR CP = "MS/MR"
	// CPNERD is the push database.
	CPNERD CP = "NERD"
	// CPPCE is the paper's PCE-based control plane.
	CPPCE CP = "PCE-CP"
)

// AllCPs lists the control planes in canonical table order.
var AllCPs = []CP{CPPreinstalled, CPALT, CPCONS, CPMSMR, CPNERD, CPPCE}

// comparisonCPs is AllCPs minus the preinstalled reference — the set the
// overhead and readiness comparisons (E3, E5) sweep.
var comparisonCPs = []CP{CPALT, CPCONS, CPMSMR, CPNERD, CPPCE}

// authKey authenticates registrations in every deployment.
var authKey = []byte("pcelisp-experiments")

// replySignKey is the per-plane mapping-signature key provisioned when a
// world's defense profile enables SignReplies, and pcecpKey the PCECP
// channel key under PCEAuth. The E13 attacker holds neither.
var (
	replySignKey = []byte("pcelisp-reply-plane")
	pcecpKey     = []byte("pcelisp-pcecp-plane")
)

// WorldConfig shapes a harness world.
type WorldConfig struct {
	// CP selects the control plane.
	CP CP
	// Domains, HostsPerDomain, Providers shape the internet.
	Domains        int
	HostsPerDomain int
	Providers      int
	// MissPolicy applies to every ITR.
	MissPolicy lisp.MissPolicy
	// CacheCapacity bounds every ITR map-cache (0 = unbounded) and
	// CachePolicy selects its eviction policy ("" = LRU) — the cache
	// pressure axis experiment E9 sweeps.
	CacheCapacity int
	CachePolicy   string
	// Seed drives all randomness.
	Seed int64
	// CoreDelayMin/Max bound provider-core delays.
	CoreDelayMin, CoreDelayMax time.Duration
	// SplitXTRs builds one xTR per provider instead of one multihomed.
	SplitXTRs bool
	// CapacityBps rate-limits provider links (0 = unlimited).
	CapacityBps int64
	// Policy is the IRC policy for PCE domains (default MinLatency).
	Policy irc.Policy
	// PCEDomains restricts PCE deployment to these domain indexes
	// (nil = all); used by the interop/fallback ablations.
	PCEDomains []int
	// FallbackMSMR additionally deploys MS/MR as the underlying mapping
	// system ITRs fall back to (E8).
	FallbackMSMR bool
	// DNSRecordTTL overrides host record TTLs.
	DNSRecordTTL uint32
	// MappingTTL overrides the mapping lifetime in seconds for every
	// control plane (0 = the 300s default): site record TTLs for the
	// pull planes, push TTLs for the PCE. The failure experiment E10
	// shortens it to give pull-based reconvergence a finite horizon.
	MappingTTL uint32
	// NERDPoll overrides the NERD authority poll interval (0 = 60s).
	NERDPoll time.Duration
	// WatchSites starts a mapsys.LocatorWatch per baseline/NERD site,
	// flipping advertised R bits from provider link state and refreshing
	// the mapping system (keeps the event queue alive forever; use
	// bounded run windows).
	WatchSites bool
	// SiteWeights sets the initial advertised locator weights, indexed
	// by provider (nil = the equal split). It shapes the starting
	// traffic split every control plane announces — the congestion
	// experiment E11 starts some scenarios from a deliberately skewed
	// vector.
	SiteWeights []uint8
	// Shards partitions the world into lock-step simulation shards
	// (0 = the package default set by SetWorldShards, itself defaulting
	// to 1). Experiment output is byte-identical for every shard count.
	Shards int
	// Defenses selects the control-plane defense profile the adversarial
	// experiment E13 sweeps. The zero value leaves every layer in its
	// historical default (strict nonces, no signatures, no floors, no
	// quotas) — byte-identical to pre-E13 worlds.
	Defenses DefenseConfig
	// Recorder captures control-plane flight events from every xTR and
	// PCE in the world (nil = the package default set by
	// SetWorldRecorder, itself defaulting to off). Recording never draws
	// from the simulation RNG or timers, so experiment output is
	// byte-identical with it on or off.
	Recorder *obs.FlightRecorder
	// Obs registers every component's counters (map-cache, xTR, PCE,
	// mapping systems) in one registry, labeled by node name. Series
	// names collide across worlds (node names repeat), so a registry
	// serves at most one world — there is deliberately no package-wide
	// default. Nil leaves components on private orphan cells.
	Obs *obs.Registry
}

// DefenseConfig turns individual control-plane defense layers on or off.
type DefenseConfig struct {
	// SloppyNonce reverts requesters to pre-RFC-6830 permissiveness:
	// positive replies are matched by EID when the nonce misses, and
	// unsolicited positive replies are gleaned straight into the ITR
	// caches — the exposure profile the off-path attacker needs.
	SloppyNonce bool
	// SignReplies provisions the per-plane reply signing key: every
	// mapping-system responder (ETRs, MS negatives, ALT root, CONS
	// routers, the NERD authority) signs and every requester/poller
	// verifies.
	SignReplies bool
	// PCEAuth provisions the PCECP channel key: PCEs and their xTRs sign
	// every push and reject unverified port-P traffic.
	PCEAuth bool
	// OverclaimFloor rejects installed mappings with prefixes shorter
	// than this many bits at every ITR (0 = off).
	OverclaimFloor int
	// GleanRateLimit bounds per-ETR data-plane gleaning per second
	// (0 = off).
	GleanRateLimit int
	// ResolverServiceRate bounds the Map-Resolver (and PCED MapFetch)
	// service to this many requests per second (0 = infinite).
	ResolverServiceRate int
	// ResolverQueueCap bounds the service backlog (0 = default 64).
	ResolverQueueCap int
	// SourceQuota caps resolution requests per source per second in
	// front of the service queue (0 = off).
	SourceQuota int
}

// worldShards is the package-wide default shard count applied when a
// WorldConfig leaves Shards zero — how the -shards flag and the
// determinism tests re-shard every experiment without threading a
// parameter through each cell builder.
var worldShards = 1

// SetWorldShards sets the default shard count for subsequently built
// worlds and returns the previous value. Not safe concurrently with
// world construction; intended for test setup and cmd flag parsing.
func SetWorldShards(n int) int {
	prev := worldShards
	if n < 1 {
		n = 1
	}
	worldShards = n
	return prev
}

// worldRecorder is the package-wide default flight recorder applied when
// a WorldConfig leaves Recorder nil — how the determinism tests (and any
// debugging session) arm recording across every experiment without
// threading a parameter through each cell builder. A single recorder is
// safe to share across concurrently built worlds: Record is
// mutex-guarded and never registers names.
var worldRecorder *obs.FlightRecorder

// SetWorldRecorder sets the default flight recorder for subsequently
// built worlds and returns the previous value (nil = recording off).
// Not safe concurrently with world construction; intended for test
// setup and cmd flag parsing.
func SetWorldRecorder(rec *obs.FlightRecorder) *obs.FlightRecorder {
	prev := worldRecorder
	worldRecorder = rec
	return prev
}

func (c *WorldConfig) fill() {
	if c.Domains == 0 {
		c.Domains = 2
	}
	if c.HostsPerDomain == 0 {
		c.HostsPerDomain = 2
	}
	if c.Providers == 0 {
		c.Providers = 2
	}
	if c.Policy == nil {
		c.Policy = irc.MinLatency{}
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Shards == 0 {
		c.Shards = worldShards
	}
	if c.Recorder == nil {
		c.Recorder = worldRecorder
	}
}

// World is a built harness world.
type World struct {
	Cfg WorldConfig
	In  *topo.Internet
	// Sharded coordinates the world's lock-step shards; all run control
	// goes through the World wrappers (RunFor/RunUntil/Run/At) so a
	// driver works unchanged at any shard count.
	Sharded *simnet.ShardedSim
	// Sim is shard 0 — where the core, the DNS/mapping infrastructure
	// and domain 0 live. Drivers may schedule directly on it only for
	// work that touches shard-0 state exclusively.
	Sim *simnet.Sim

	// PCEs holds one PCE per domain under CPPCE (nil entries where the
	// domain is PCE-less).
	PCEs []*core.PCE
	// ALT/CONS/MSMR/NERD hold the baseline deployment when active.
	ALT  *mapsys.ALT
	CONS *mapsys.CONS
	MSMR *mapsys.MSMR
	NERD *mapsys.NERDSystem

	// TCP holds per-domain, per-host TCP endpoints; every host listens on
	// port 80.
	TCP [][]*workload.TCPHost

	// Sites holds the per-domain mapping-system site records under the
	// baseline and NERD control planes (nil entries otherwise) — the
	// failure experiments mutate their locator R bits through watches.
	Sites []*mapsys.Site

	// Requesters holds the per-domain ITR-side requesters under the
	// baseline control planes (nil entries otherwise), and Pollers the
	// per-domain NERD pollers — the adversarial experiment reads their
	// defense counters.
	Requesters []*mapsys.Requester
	Pollers    [][]*mapsys.NERDPoller

	// readyMu guards mappingReady/prefixReady: readiness is reported
	// from whichever shard hosts the acting node, concurrently during an
	// epoch.
	readyMu sync.Mutex
	// mappingReady records, per destination EID, when a usable mapping
	// first became installable at a source ITR (resolver completion or
	// PCE push).
	mappingReady map[netaddr.Addr]simnet.Time
	// prefixReady records prefix-granularity readiness (NERD pushes).
	prefixReady *netaddr.Trie[simnet.Time]
}

// timingResolver wraps a baseline resolver to record completion times.
// sim is the shard hosting the domain's xTRs — completion callbacks run
// on its event loop, so its clock (not shard 0's) stamps readiness.
type timingResolver struct {
	inner lisp.Resolver
	w     *World
	sim   *simnet.Sim
}

// Resolve implements lisp.Resolver.
func (t *timingResolver) Resolve(eid netaddr.Addr, done func(*lisp.MapEntry, bool)) {
	t.inner.Resolve(eid, func(e *lisp.MapEntry, ok bool) {
		if ok {
			t.w.markReadyAt(eid, t.sim.Now())
		}
		done(e, ok)
	})
}

// markReadyAt records when eid's mapping first became usable. Keeping
// the minimum reported time (not the first caller's) makes the record
// independent of cross-shard callback interleaving: within one shard
// time is monotone, so min-time equals first-write exactly as in a
// single-Sim world.
func (w *World) markReadyAt(eid netaddr.Addr, at simnet.Time) {
	w.readyMu.Lock()
	if prev, seen := w.mappingReady[eid]; !seen || at < prev {
		w.mappingReady[eid] = at
	}
	w.readyMu.Unlock()
}

// MappingReadyAt returns when eid's mapping first became usable.
func (w *World) MappingReadyAt(eid netaddr.Addr) (simnet.Time, bool) {
	w.readyMu.Lock()
	defer w.readyMu.Unlock()
	if at, ok := w.mappingReady[eid]; ok {
		return at, true
	}
	at, _, ok := w.prefixReady.Lookup(eid)
	return at, ok
}

// BuildWorld constructs the internet and deploys the selected control
// plane.
func BuildWorld(cfg WorldConfig) *World {
	cfg.fill()
	spec := topo.Spec{
		Seed:         cfg.Seed,
		Shards:       cfg.Shards,
		CoreDelayMin: cfg.CoreDelayMin,
		CoreDelayMax: cfg.CoreDelayMax,
		DNSRecordTTL: cfg.DNSRecordTTL,
		Obs:          cfg.Obs,
		Recorder:     cfg.Recorder,
	}
	for i := 0; i < cfg.Domains; i++ {
		spec.Domains = append(spec.Domains, topo.DomainSpec{
			Hosts:               cfg.HostsPerDomain,
			Providers:           cfg.Providers,
			MissPolicy:          cfg.MissPolicy,
			CacheCapacity:       cfg.CacheCapacity,
			CachePolicy:         cfg.CachePolicy,
			SplitXTRs:           cfg.SplitXTRs,
			ProviderCapacityBps: cfg.CapacityBps,
			OverclaimFloor:      cfg.Defenses.OverclaimFloor,
			GleanRateLimit:      cfg.Defenses.GleanRateLimit,
		})
	}
	in := topo.Build(spec)
	w := &World{
		Cfg: cfg, In: in, Sharded: in.Sharded, Sim: in.Sim,
		PCEs:         make([]*core.PCE, cfg.Domains),
		Sites:        make([]*mapsys.Site, cfg.Domains),
		Requesters:   make([]*mapsys.Requester, cfg.Domains),
		Pollers:      make([][]*mapsys.NERDPoller, cfg.Domains),
		mappingReady: make(map[netaddr.Addr]simnet.Time),
		prefixReady:  netaddr.NewTrie[simnet.Time](),
	}

	switch cfg.CP {
	case CPPreinstalled:
		w.preinstallAll()
	case CPALT:
		w.ALT = mapsys.BuildALT(in.Sim, overlayConfigFor(cfg, in))
		if cfg.Defenses.SignReplies {
			w.ALT.ReplySignKey = replySignKey
		}
		w.attachBaseline(w.ALT)
	case CPCONS:
		w.CONS = mapsys.BuildCONS(in.Sim, overlayConfigFor(cfg, in))
		if cfg.MappingTTL > 0 {
			// Overlay answer caches must not outlive the site TTL, or a
			// re-resolution after expiry gets the stale cached record.
			w.CONS.CacheTTL = time.Duration(cfg.MappingTTL) * time.Second
		}
		if cfg.Defenses.SignReplies {
			w.CONS.ReplySignKey = replySignKey
		}
		w.attachBaseline(w.CONS)
	case CPMSMR:
		w.MSMR = w.buildMSMR()
		w.attachBaseline(w.MSMR)
	case CPNERD:
		authNode, authAddr := w.addInfraNode("nerd-authority", 50, 15*time.Millisecond)
		authority := mapsys.NewNERD(authNode, authAddr, authKey)
		authority.PollInterval = 60 * time.Second
		if cfg.NERDPoll > 0 {
			authority.PollInterval = cfg.NERDPoll
		}
		if cfg.Defenses.SignReplies {
			authority.ReplySignKey = replySignKey
		}
		w.NERD = mapsys.NewNERDSystem(authority, authKey)
		for _, d := range in.Domains {
			// NERD records are database rows, not cache entries: they
			// live until a version update replaces them, so the record
			// TTL is immortal and staleness is bounded by polling.
			site := siteFor(d, 0, cfg.SiteWeights)
			site.TTL = 0
			w.Sites[d.Index] = site
			w.NERD.AttachSite(site)
			w.watchSite(w.NERD, d, site)
			for _, x := range d.XTRs {
				p := w.NERD.WireXTR(x)
				w.Pollers[d.Index] = append(w.Pollers[d.Index], p)
				if cfg.Defenses.SignReplies {
					p.VerifyKey = replySignKey
				}
				xs := x.Node().Sim() // install callbacks run on the xTR's shard
				p.OnInstall = func(prefix netaddr.Prefix) {
					at := xs.Now()
					w.readyMu.Lock()
					if prev, _, seen := w.prefixReady.Lookup(prefix.Addr()); !seen || at < prev {
						w.prefixReady.Insert(prefix, at)
					}
					w.readyMu.Unlock()
				}
			}
		}
	case CPPCE:
		if cfg.FallbackMSMR {
			w.MSMR = w.buildMSMR()
			w.attachBaseline(w.MSMR)
		}
		deployOn := cfg.PCEDomains
		if deployOn == nil {
			for i := range in.Domains {
				deployOn = append(deployOn, i)
			}
		}
		opts := core.DeployOptions{
			MappingTTL:       cfg.MappingTTL,
			FetchServiceRate: cfg.Defenses.ResolverServiceRate,
			FetchQueueCap:    cfg.Defenses.ResolverQueueCap,
			FetchQuotaLimit:  cfg.Defenses.SourceQuota,
			Obs:              cfg.Obs,
			Recorder:         cfg.Recorder,
		}
		if cfg.Defenses.PCEAuth {
			opts.AuthKey = pcecpKey
		}
		for _, i := range deployOn {
			pce := core.DeployDomainOpts(in.Domains[i], cfg.Policy, opts)
			pce.OnEvent = w.pceEvent
			w.PCEs[i] = pce
		}
	default:
		panic(fmt.Sprintf("experiments: unknown CP %q", cfg.CP))
	}

	// TCP endpoints everywhere; every host serves port 80.
	for _, d := range in.Domains {
		var hosts []*workload.TCPHost
		for _, h := range d.Hosts {
			th := workload.NewTCPHost(h.Node, h.Addr)
			th.Listen(80)
			hosts = append(hosts, th)
		}
		w.TCP = append(w.TCP, hosts)
	}
	return w
}

func (w *World) pceEvent(ev core.Event) {
	if ev.Kind == core.EvFlowInstalled || ev.Kind == core.EvMappingPushed {
		w.markReadyAt(ev.DstEID, ev.At)
	}
}

// overlayConfigFor sizes the ALT/CONS tree to the domain count.
func overlayConfigFor(cfg WorldConfig, in *topo.Internet) mapsys.OverlayConfig {
	depth := 1
	for leaves := 4; leaves < cfg.Domains && depth < 6; leaves *= 4 {
		depth++
	}
	return mapsys.OverlayConfig{
		Branching:    4,
		Depth:        depth,
		LinkDelay:    20 * time.Millisecond,
		TunnelDelay:  10 * time.Millisecond,
		NativeUplink: in.Core,
	}
}

// siteFor converts a topo domain to a mapping-system site with all
// providers as equal-priority locators, weighted by weights (nil = the
// equal split). ttl overrides the 300s record default when non-zero.
func siteFor(d *topo.Domain, ttl uint32, weights []uint8) *mapsys.Site {
	locs := make([]packet.LISPLocator, len(d.Providers))
	for i, p := range d.Providers {
		locs[i] = packet.LISPLocator{
			Priority: 1, Weight: siteWeight(weights, i, len(d.Providers)),
			Reachable: true, Addr: p.RLOC,
		}
	}
	if ttl == 0 {
		ttl = 300
	}
	return &mapsys.Site{
		Prefix:   d.EIDPrefix,
		Locators: locs,
		Node:     d.XTRs[0].Node(),
		Addr:     d.XTRs[0].RLOC(),
		TTL:      ttl,
		AuthKey:  authKey,
	}
}

// siteWeight returns the i-th initial locator weight: the configured
// vector when one is set, the historical equal split otherwise.
func siteWeight(weights []uint8, i, n int) uint8 {
	if i < len(weights) {
		return weights[i]
	}
	return uint8(100 / n)
}

// attachBaseline wires a pull-based mapping system into every domain.
func (w *World) attachBaseline(sys mapsys.System) {
	def := w.Cfg.Defenses
	for _, d := range w.In.Domains {
		site := siteFor(d, w.Cfg.MappingTTL, w.Cfg.SiteWeights)
		if def.SignReplies {
			site.ReplySignKey = replySignKey
		}
		w.Sites[d.Index] = site
		resolver := sys.AttachSite(site)
		w.watchSite(sys, d, site)
		if resolver == nil {
			continue
		}
		if req, ok := resolver.(*mapsys.Requester); ok {
			w.Requesters[d.Index] = req
			if def.SloppyNonce {
				req.StrictNonce = false
				xtrs := d.XTRs
				req.OnUnsolicited = func(e *lisp.MapEntry) {
					for _, x := range xtrs {
						x.InstallMapping(e)
					}
				}
			}
			if def.SignReplies {
				req.VerifyKey = replySignKey
			}
		}
		timed := &timingResolver{inner: resolver, w: w, sim: d.XTRs[0].Node().Sim()}
		for _, x := range d.XTRs {
			x.SetResolver(timed)
		}
	}
}

// watchSite starts the site's locator watch when the world asks for one:
// the domain's border sees its own provider links die and re-announces
// the pruned locator set — remote caches still wait out their TTLs.
func (w *World) watchSite(sys mapsys.System, d *topo.Domain, site *mapsys.Site) {
	if !w.Cfg.WatchSites {
		return
	}
	ifaces := make([]*simnet.Iface, len(d.Providers))
	for i, p := range d.Providers {
		ifaces[i] = p.EgressIface
	}
	// The watch's timer must tick on the shard owning the watched ifaces
	// and the site's border node, not necessarily shard 0.
	mapsys.WatchSiteLocators(d.XTRs[0].Node().Sim(), site, ifaces, func() { sys.RefreshSite(site) }).Start()
}

// EnableProbing turns on RLOC probing at every xTR — the PCE control
// plane's liveness layer for experiment E10 (its reports reach the PCEs
// through the hooks DeployDomain wired).
func (w *World) EnableProbing(cfg lisp.ProbeConfig) {
	for _, d := range w.In.Domains {
		for _, x := range d.XTRs {
			x.EnableProbing(cfg)
		}
	}
}

// MapSystem returns the deployed pull-based mapping system, if any —
// the handle TE tooling needs to RefreshSite after a weight change.
func (w *World) MapSystem() mapsys.System {
	switch {
	case w.ALT != nil:
		return w.ALT
	case w.CONS != nil:
		return w.CONS
	case w.MSMR != nil:
		return w.MSMR
	case w.NERD != nil:
		return w.NERD
	}
	return nil
}

// TelemetryMessages sums link-load telemetry reports across all xTRs —
// the telemetry contribution to control overhead.
func (w *World) TelemetryMessages() uint64 {
	var total uint64
	for _, d := range w.In.Domains {
		for _, x := range d.XTRs {
			total += x.Stats().TelemetryReports
		}
	}
	return total
}

// ProbeMessages sums probe control messages (probes and echoes) across
// all xTRs — the probing contribution to control overhead.
func (w *World) ProbeMessages() uint64 {
	var total uint64
	for _, d := range w.In.Domains {
		for _, x := range d.XTRs {
			total += x.Stats().ProbesSent + x.Stats().ProbeRepliesSent
		}
	}
	return total
}

func (w *World) buildMSMR() *mapsys.MSMR {
	msNode, msAddr := w.addInfraNode("map-server", 51, 12*time.Millisecond)
	mrNode, mrAddr := w.addInfraNode("map-resolver", 52, 10*time.Millisecond)
	m := mapsys.NewMSMR(msNode, msAddr, mrNode, mrAddr, authKey)
	def := w.Cfg.Defenses
	if def.SignReplies {
		m.MS.ReplySignKey = replySignKey
	}
	m.MR.ServiceRate = def.ResolverServiceRate
	m.MR.QueueCap = def.ResolverQueueCap
	if def.SourceQuota > 0 {
		m.MR.Quota = &lisp.SourceQuota{Limit: def.SourceQuota}
	}
	m.MS.RegisterMetrics(w.Cfg.Obs)
	m.MR.RegisterMetrics(w.Cfg.Obs)
	return m
}

// addInfraNode hangs an infrastructure node off the core.
func (w *World) addInfraNode(name string, octet byte, delay time.Duration) (*simnet.Node, netaddr.Addr) {
	return w.In.AttachCoreStub(name, octet, delay)
}

// preinstallAll loads every cross-domain mapping into every ITR cache.
func (w *World) preinstallAll() {
	for _, src := range w.In.Domains {
		for _, dst := range w.In.Domains {
			if src == dst {
				continue
			}
			locs := make([]packet.LISPLocator, len(dst.Providers))
			for i, p := range dst.Providers {
				locs[i] = packet.LISPLocator{Priority: 1, Weight: siteWeight(w.Cfg.SiteWeights, i, len(dst.Providers)), Reachable: true, Addr: p.RLOC}
			}
			for _, x := range src.XTRs {
				x.Cache.Insert(dst.EIDPrefix, locs, 0)
			}
		}
		for _, h := range src.Hosts {
			w.markReadyAt(h.Addr, 0) // ready at t=0 by construction
		}
	}
}

// FlowResult records one instrumented flow.
type FlowResult struct {
	// OK is true when the TCP handshake completed.
	OK bool
	// TDNS is the DNS resolution time seen by the host.
	TDNS simnet.Time
	// Setup is DNS start to TCP established.
	Setup simnet.Time
	// Handshake is TCP connect to established.
	Handshake simnet.Time
	// Retransmits counts SYN retransmissions.
	Retransmits int
	// MappingReady is DNS start to mapping availability at the source ITR
	// (-1 when it never became ready).
	MappingReady simnet.Time
	// Src and Dst identify the flow.
	Src, Dst netaddr.Addr
}

// Ratio returns the paper's (TDNS+Tmap)/TDNS metric: how far mapping
// readiness extends past DNS resolution, as a multiple of TDNS.
func (f FlowResult) Ratio() float64 {
	if f.TDNS <= 0 {
		return 0
	}
	ready := f.MappingReady
	if ready < f.TDNS {
		ready = f.TDNS // mapping was ready before DNS finished
	}
	return float64(ready) / float64(f.TDNS)
}

// StartFlow runs DNS-then-TCP from host (srcD, srcH) to host (dstD, dstH)
// and calls done exactly once.
func (w *World) StartFlow(srcD, srcH, dstD, dstH int, done func(FlowResult)) {
	src := w.In.Domains[srcD].Hosts[srcH]
	dst := w.In.Domains[dstD].Hosts[dstH]
	srcSim := src.Node.Sim() // the flow's callbacks run on the source shard
	start := srcSim.Now()
	res := FlowResult{Src: src.Addr, Dst: dst.Addr, MappingReady: -1}
	src.DNS.Lookup(dst.Name, func(addr netaddr.Addr, tdns simnet.Time, ok bool) {
		res.TDNS = tdns
		if !ok {
			done(res)
			return
		}
		w.TCP[srcD][srcH].Connect(addr, 80, func(cr workload.ConnResult) {
			res.OK = cr.OK
			res.Handshake = cr.Elapsed
			res.Retransmits = cr.Retransmits
			res.Setup = srcSim.Now() - start
			if at, ready := w.MappingReadyAt(dst.Addr); ready {
				if at < start {
					res.MappingReady = 0
				} else {
					res.MappingReady = at - start
				}
			}
			done(res)
		})
	})
}

// Settle runs the simulation long enough for registrations, announcements
// and first NERD polls to complete.
func (w *World) Settle() { w.RunFor(2 * time.Second) }

// Run-control wrappers: every driver advances the world through these so
// the same code runs at any shard count. With one shard they are thin
// passthroughs to the lone Sim.

// Now returns the world's barrier clock.
func (w *World) Now() simnet.Time { return w.Sharded.Now() }

// RunFor advances the world a span of virtual time.
func (w *World) RunFor(d simnet.Time) { w.Sharded.RunFor(d) }

// RunUntil advances the world to an absolute virtual time.
func (w *World) RunUntil(t simnet.Time) { w.Sharded.RunUntil(t) }

// Run advances the world until every shard's event queue drains.
func (w *World) Run() { w.Sharded.Run() }

// At registers a global barrier callback: fn runs once every shard has
// processed every event with timestamp <= t, making cross-shard state
// (counters, control totals) coherent to read. This is the sharded
// equivalent of "take a snapshot at time t" — and, unlike Sim.AtFunc,
// fn runs after same-instant events regardless of shard count.
func (w *World) At(t simnet.Time, fn func()) { w.Sharded.At(t, fn) }

// After registers a barrier callback a duration from the barrier clock.
func (w *World) After(d simnet.Time, fn func()) { w.Sharded.After(d, fn) }

// SimOf returns the Sim hosting domain d — where driver work touching
// only that domain's state must be scheduled.
func (w *World) SimOf(d int) *simnet.Sim { return w.In.Domains[d].Router.Sim() }

// ControlTotals reports inter-CP control traffic (messages, bytes) for
// whichever system is deployed; PCE counts its PCECP traffic.
func (w *World) ControlTotals() (msgs, bytes uint64) {
	var cs mapsys.ControlStats
	switch {
	case w.ALT != nil:
		cs = w.ALT.ControlTotals()
	case w.CONS != nil:
		cs = w.CONS.ControlTotals()
	case w.MSMR != nil:
		cs = w.MSMR.ControlTotals()
	case w.NERD != nil:
		cs = w.NERD.ControlTotals()
	}
	msgs, bytes = cs.TxMessages, cs.TxBytes
	for _, pce := range w.PCEs {
		if pce != nil {
			msgs += pce.Stats().TxControlMessages
			bytes += pce.Stats().TxControlBytes
		}
	}
	return msgs, bytes
}

// ITRStateEntries sums mapping state (cache + flow entries) across all
// ITRs.
func (w *World) ITRStateEntries() int {
	total := 0
	for _, d := range w.In.Domains {
		for _, x := range d.XTRs {
			total += x.Cache.Len() + x.Flows.Len()
		}
	}
	return total
}

// ITRDrops sums miss-policy losses across all ITRs.
func (w *World) ITRDrops() uint64 {
	var total uint64
	for _, d := range w.In.Domains {
		for _, x := range d.XTRs {
			total += x.Stats().CacheMissDrops + x.Stats().QueueTimeouts + x.Stats().QueueOverflows
		}
	}
	return total
}
