package experiments

import (
	"time"

	"github.com/pcelisp/pcelisp/internal/metrics"
	"github.com/pcelisp/pcelisp/internal/netaddr"
	"github.com/pcelisp/pcelisp/internal/runner"
	"github.com/pcelisp/pcelisp/internal/simnet"
)

// E5 compares what each control plane costs: control messages and bytes
// originated, and mapping state held at ITRs, for the same all-pairs
// workload.
//
// The structural differences the table exposes: NERD pays a full database
// at every ITR regardless of traffic; ALT/CONS pay per-resolution
// overlay hops; MS/MR pays four legs per resolution; PCE-CP pays one
// in-band encapsulated reply plus local pushes, and per-flow state only
// for flows that exist.

// e5Result is one control plane's overhead totals.
type e5Result struct {
	cp    CP
	flows int
	msgs  uint64
	bytes uint64
	state int
}

// e5Experiment decomposes E5 into one cell per control plane.
func e5Experiment(seed int64, domains int) ([]Cell, MergeFunc) {
	if domains < 2 {
		domains = 8
	}
	cells := make([]Cell, len(comparisonCPs))
	for i, cp := range comparisonCPs {
		cp := cp
		cells[i] = Cell{Label: string(cp), CP: cp, Run: func() interface{} {
			return e5RunCell(cp, seed, domains)
		}}
	}
	merge := tableMerge(func(results []interface{}) *metrics.Table {
		tbl := metrics.NewTable(
			"E5: control-plane overhead for one cold flow between every domain pair",
			"control plane", "flows", "ctl msgs", "ctl KB", "msgs/flow", "ITR state entries")
		for _, r := range results {
			if r == nil {
				continue
			}
			c := r.(e5Result)
			tbl.AddRow(string(c.cp), c.flows, c.msgs, float64(c.bytes)/1024,
				float64(c.msgs)/float64(c.flows), c.state)
		}
		tbl.AddNote("message/byte counts exclude initial registration and announcement; state counted after all flows")
		return tbl
	})
	return cells, merge
}

// e5RunCell measures one control plane under the all-pairs cold-flow
// workload.
func e5RunCell(cp CP, seed int64, domains int) e5Result {
	w := BuildWorld(WorldConfig{CP: cp, Domains: domains, Seed: seed})
	w.Settle()
	baseMsgs, baseBytes := w.ControlTotals() // registration/announce cost

	flows := 0
	for s := 0; s < domains; s++ {
		for d := 0; d < domains; d++ {
			if s == d {
				continue
			}
			s, d := s, d
			flows++
			// The launch mutates the source host, so it is armed on the
			// shard owning domain s (safe pre-run: the world is quiescent).
			w.SimOf(s).ScheduleFunc(time.Duration(flows)*300*time.Millisecond, func() {
				src := w.In.Domains[s].Hosts[0]
				dst := w.In.Domains[d].Hosts[0]
				src.DNS.Lookup(dst.Name, func(addr netaddr.Addr, _ simnet.Time, ok bool) {
					if ok {
						src.Node.SendUDP(src.Addr, addr, 40000, 9000, nil)
					}
				})
			})
		}
	}
	w.RunFor(time.Duration(flows)*300*time.Millisecond + 30*time.Second)
	msgs, bytes := w.ControlTotals()
	return e5Result{cp: cp, flows: flows, msgs: msgs - baseMsgs,
		bytes: bytes - baseBytes, state: w.ITRStateEntries()}
}

// E5ControlOverhead runs E5 serially and returns its table.
func E5ControlOverhead(seed int64, domains int) *metrics.Table {
	cells, merge := e5Experiment(seed, domains)
	return merge(runCells("E5", cells, runner.Serial))[0]
}
