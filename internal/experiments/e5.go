package experiments

import (
	"time"

	"github.com/pcelisp/pcelisp/internal/metrics"
	"github.com/pcelisp/pcelisp/internal/netaddr"
	"github.com/pcelisp/pcelisp/internal/simnet"
)

// E5ControlOverhead compares what each control plane costs: control
// messages and bytes originated, and mapping state held at ITRs, for the
// same all-pairs workload.
//
// The structural differences the table exposes: NERD pays a full database
// at every ITR regardless of traffic; ALT/CONS pay per-resolution
// overlay hops; MS/MR pays four legs per resolution; PCE-CP pays one
// in-band encapsulated reply plus local pushes, and per-flow state only
// for flows that exist.
func E5ControlOverhead(seed int64, domains int) *metrics.Table {
	if domains < 2 {
		domains = 8
	}
	tbl := metrics.NewTable(
		"E5: control-plane overhead for one cold flow between every domain pair",
		"control plane", "flows", "ctl msgs", "ctl KB", "msgs/flow", "ITR state entries")

	for _, cp := range []CP{CPALT, CPCONS, CPMSMR, CPNERD, CPPCE} {
		w := BuildWorld(WorldConfig{CP: cp, Domains: domains, Seed: seed})
		w.Settle()
		baseMsgs, baseBytes := w.ControlTotals() // registration/announce cost

		flows := 0
		for s := 0; s < domains; s++ {
			for d := 0; d < domains; d++ {
				if s == d {
					continue
				}
				s, d := s, d
				flows++
				w.Sim.Schedule(time.Duration(flows)*300*time.Millisecond, func() {
					src := w.In.Domains[s].Hosts[0]
					dst := w.In.Domains[d].Hosts[0]
					src.DNS.Lookup(dst.Name, func(addr netaddr.Addr, _ simnet.Time, ok bool) {
						if ok {
							src.Node.SendUDP(src.Addr, addr, 40000, 9000, nil)
						}
					})
				})
			}
		}
		w.Sim.RunFor(time.Duration(flows)*300*time.Millisecond + 30*time.Second)
		msgs, bytes := w.ControlTotals()
		msgs -= baseMsgs
		bytes -= baseBytes
		tbl.AddRow(string(cp), flows, msgs, float64(bytes)/1024,
			float64(msgs)/float64(flows), w.ITRStateEntries())
	}
	tbl.AddNote("message/byte counts exclude initial registration and announcement; state counted after all flows")
	return tbl
}
