package metrics

import (
	"fmt"
	"strings"
)

// Table renders experiment results as aligned text, the way the paper
// would print them. Rendering is deterministic: rows appear in insertion
// order.
type Table struct {
	title   string
	headers []string
	rows    [][]string
	notes   []string
}

// NewTable creates a table with a title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// Title returns the table title.
func (t *Table) Title() string { return t.title }

// AddRow appends a row; cells are stringified with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = trimFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// AddNote appends a footnote line printed under the table.
func (t *Table) AddNote(format string, args ...interface{}) {
	t.notes = append(t.notes, fmt.Sprintf(format, args...))
}

// Rows returns the rendered cell values (for tests and EXPERIMENTS.md).
func (t *Table) Rows() [][]string { return t.rows }

// Headers returns the column headers.
func (t *Table) Headers() []string { return t.headers }

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	if t.title != "" {
		sb.WriteString(t.title)
		sb.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			if i < len(cells)-1 {
				sb.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	sb.WriteString(strings.Repeat("-", total-2))
	sb.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	for _, n := range t.notes {
		sb.WriteString("note: ")
		sb.WriteString(n)
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Markdown renders the table as GitHub-flavoured markdown.
func (t *Table) Markdown() string {
	var sb strings.Builder
	if t.title != "" {
		fmt.Fprintf(&sb, "**%s**\n\n", t.title)
	}
	sb.WriteString("| " + strings.Join(t.headers, " | ") + " |\n")
	sb.WriteString("|" + strings.Repeat("---|", len(t.headers)) + "\n")
	for _, row := range t.rows {
		sb.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	for _, n := range t.notes {
		sb.WriteString("\n_" + n + "_\n")
	}
	return sb.String()
}

// CSV renders the table as comma-separated values (headers first). Cells
// containing commas are quoted.
func (t *Table) CSV() string {
	var sb strings.Builder
	writeCSVRow(&sb, t.headers)
	for _, row := range t.rows {
		writeCSVRow(&sb, row)
	}
	return sb.String()
}

func writeCSVRow(sb *strings.Builder, cells []string) {
	for i, c := range cells {
		if i > 0 {
			sb.WriteByte(',')
		}
		if strings.ContainsAny(c, ",\"\n") {
			sb.WriteString(`"` + strings.ReplaceAll(c, `"`, `""`) + `"`)
		} else {
			sb.WriteString(c)
		}
	}
	sb.WriteByte('\n')
}

// trimFloat renders a float with up to 3 decimals, trimming zeros.
func trimFloat(v float64) string {
	s := fmt.Sprintf("%.3f", v)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	if s == "" || s == "-" {
		return "0"
	}
	return s
}
